package shuffledp

import (
	"math"
	"testing"
)

func TestEstimateHistogramAuto(t *testing.T) {
	const n, d = 30000, 64
	values := SyntheticDataset(n, d, 1.3, 1)
	res, err := EstimateHistogram(values, d, Options{EpsilonCentral: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mechanism != "SOLH" && res.Mechanism != "GRR" {
		t.Fatalf("mechanism %q", res.Mechanism)
	}
	if res.EpsilonLocal <= 1 {
		t.Fatalf("epsL = %v, expected amplification above epsC", res.EpsilonLocal)
	}
	// Estimates should track the head of the Zipf distribution.
	trueFreq := make([]float64, d)
	for _, v := range values {
		trueFreq[v] += 1.0 / n
	}
	tol := 6*math.Sqrt(res.PredictedMSE*float64(d)) + 0.02
	for v := 0; v < 5; v++ {
		if math.Abs(res.Estimates[v]-trueFreq[v]) > tol {
			t.Errorf("value %d: est %v, truth %v", v, res.Estimates[v], trueFreq[v])
		}
	}
}

func TestEstimateHistogramForcedMechanisms(t *testing.T) {
	values := SyntheticDataset(20000, 8, 1.1, 2)
	for _, kind := range []MechanismKind{GRR, SOLH} {
		res, err := EstimateHistogram(values, 8, Options{
			EpsilonCentral: 0.8,
			Mechanism:      kind,
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Mechanism != kind.String() {
			t.Fatalf("asked %v, got %s", kind, res.Mechanism)
		}
	}
}

func TestEstimateHistogramValidation(t *testing.T) {
	if _, err := EstimateHistogram([]int{1}, 4, Options{EpsilonCentral: 1}); err == nil {
		t.Error("single user accepted")
	}
	if _, err := EstimateHistogram([]int{1, 2}, 1, Options{EpsilonCentral: 1}); err == nil {
		t.Error("d=1 accepted")
	}
	if _, err := EstimateHistogram([]int{1, 9}, 4, Options{EpsilonCentral: 1}); err == nil {
		t.Error("out-of-range value accepted")
	}
	if _, err := EstimateHistogram([]int{1, 2}, 4, Options{}); err == nil {
		t.Error("zero epsilon accepted")
	}
}

// The Concurrency contract: for a fixed Seed, every worker count yields
// a bit-identical HistogramResult, for both oracles.
func TestEstimateHistogramDeterministicAcrossConcurrency(t *testing.T) {
	const n, d = 30000, 32
	values := SyntheticDataset(n, d, 1.2, 7)
	for _, kind := range []MechanismKind{GRR, SOLH} {
		var base *HistogramResult
		for _, workers := range []int{1, 2, 8} {
			res, err := EstimateHistogram(values, d, Options{
				EpsilonCentral: 1,
				Mechanism:      kind,
				Seed:           123,
				Concurrency:    workers,
			})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", kind, workers, err)
			}
			if base == nil {
				base = res
				continue
			}
			if res.Mechanism != base.Mechanism || res.EpsilonLocal != base.EpsilonLocal ||
				res.DPrime != base.DPrime || res.PredictedMSE != base.PredictedMSE {
				t.Fatalf("%v workers=%d: metadata differs", kind, workers)
			}
			for v := range base.Estimates {
				if res.Estimates[v] != base.Estimates[v] {
					t.Fatalf("%v workers=%d: estimate[%d] = %v, want bit-identical %v",
						kind, workers, v, res.Estimates[v], base.Estimates[v])
				}
			}
		}
	}
}

// Same contract for the TreeHist pipeline.
func TestFrequentStringsDeterministicAcrossConcurrency(t *testing.T) {
	const n = 20000
	values := make([]uint64, n)
	for i := range values {
		values[i] = uint64(i % 500)
	}
	var base []uint64
	for _, workers := range []int{1, 2, 8} {
		found, err := FrequentStrings(values, 16, FrequentStringsOptions{
			K:              8,
			EpsilonCentral: 2,
			Seed:           55,
			Concurrency:    workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = found
			continue
		}
		if len(found) != len(base) {
			t.Fatalf("workers=%d: %d strings, want %d", workers, len(found), len(base))
		}
		for i := range base {
			if found[i] != base[i] {
				t.Fatalf("workers=%d: found[%d] = %#x, want %#x", workers, i, found[i], base[i])
			}
		}
	}
}

func TestMechanismKindString(t *testing.T) {
	if Auto.String() != "Auto" || GRR.String() != "GRR" || SOLH.String() != "SOLH" {
		t.Fatal("bad MechanismKind strings")
	}
	if MechanismKind(42).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestAmplifiedEpsilonRoundTrip(t *testing.T) {
	const n, d = 100000, 1000
	epsL, dPrime, err := LocalEpsilonFor(0.5, d, n, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	back := AmplifiedEpsilon(epsL, dPrime, n, 1e-9)
	if math.Abs(back-0.5) > 1e-9 {
		t.Fatalf("roundtrip: %v", back)
	}
}

func TestFrequentStringsFindsHeavyHitters(t *testing.T) {
	// 16-bit strings, heavy mass on a few.
	const n = 60000
	values := make([]uint64, n)
	for i := range values {
		switch {
		case i < n/3:
			values[i] = 0xABCD
		case i < n/2:
			values[i] = 0x1234
		default:
			values[i] = uint64(i % 4096) // long tail
		}
	}
	found, err := FrequentStrings(values, 16, FrequentStringsOptions{
		K:              4,
		EpsilonCentral: 4, // generous so the test is deterministic-ish
	})
	if err != nil {
		t.Fatal(err)
	}
	has := func(x uint64) bool {
		for _, f := range found {
			if f == x {
				return true
			}
		}
		return false
	}
	if !has(0xABCD) || !has(0x1234) {
		t.Fatalf("heavy hitters missed: %x", found)
	}
}

func TestFrequentStringsValidation(t *testing.T) {
	if _, err := FrequentStrings([]uint64{1}, 15, FrequentStringsOptions{}); err == nil {
		t.Fatal("non-divisible bits accepted")
	}
}

func TestPlanPEOSAndRun(t *testing.T) {
	const n, d = 800, 16
	plan, err := PlanPEOS(0.9, 3, 6, n, d, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EpsilonServer > 0.91 || plan.EpsilonColludingUsers > 3.01 || plan.EpsilonLocal > 6.01 {
		t.Fatalf("plan violates budgets: %s", plan)
	}
	if plan.String() == "" {
		t.Fatal("empty plan string")
	}
	values := SyntheticDataset(n, d, 1.2, 3)
	res, err := RunPEOS(plan, values, PEOSRunConfig{Shufflers: 3, KeyBits: 768, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != d {
		t.Fatalf("estimates: %d", len(res.Estimates))
	}
	if res.CostReport == "" {
		t.Fatal("no cost report")
	}
	// Unbiasedness smoke check on the head value.
	trueFreq := make([]float64, d)
	for _, v := range values {
		trueFreq[v] += 1.0 / n
	}
	// n=800 with fakes: tolerate generous noise but reject garbage.
	if math.Abs(res.Estimates[0]-trueFreq[0]) > 0.35 {
		t.Fatalf("estimate %v vs truth %v", res.Estimates[0], trueFreq[0])
	}
}

func TestRunPEOSNilPlan(t *testing.T) {
	if _, err := RunPEOS(nil, []int{1}, PEOSRunConfig{}); err == nil {
		t.Fatal("nil plan accepted")
	}
}
