// Clickstream PEOS: a full hardened deployment. A web company wants
// the frequency of clicked items without trusting any single party:
// the server alone must learn within eps=1.5; even if every OTHER user
// colludes with the server the victim keeps eps=3; even if the server
// corrupts a majority of the shufflers each report stays eps=6-LDP.
//
// The example plans the deployment (§VI-D), runs the real PEOS protocol
// — secret shares, DGK encryption, encrypted oblivious shuffle — and
// prints the estimates plus each party's cost account.
//
//	go run ./examples/clickstream_peos
package main

import (
	"fmt"
	"log"

	"shuffledp"
)

func main() {
	const (
		n = 1200 // users (kept small: this runs the real cryptography)
		d = 16   // item catalogue
	)
	values := shuffledp.SyntheticDataset(n, d, 1.4, 11)

	// At this demo scale the users' own randomness contributes little
	// blanket, so the planner compensates with fake reports; production
	// n ~ 10^6 needs far fewer fakes per user (see cmd/table3).
	plan, err := shuffledp.PlanPEOS(1.5, 3, 6, n, d, 1e-9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployment plan:", plan)

	res, err := shuffledp.RunPEOS(plan, values, shuffledp.PEOSRunConfig{
		Shufflers: 3,
		KeyBits:   1024,
	})
	if err != nil {
		log.Fatal(err)
	}

	truth := make([]float64, d)
	for _, v := range values {
		truth[v] += 1.0 / n
	}
	fmt.Println("\nitem   true-freq   estimate")
	for v := 0; v < 6; v++ {
		fmt.Printf("%4d   %9.4f   %8.4f\n", v, truth[v], res.Estimates[v])
	}
	fmt.Println("\nper-party costs:")
	fmt.Print(res.CostReport)
}
