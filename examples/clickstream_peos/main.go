// Clickstream PEOS: a full hardened deployment. A web company wants
// the frequency of clicked items without trusting any single party:
// the server alone must learn within eps=1.5; even if every OTHER user
// colludes with the server the victim keeps eps=3; even if the server
// corrupts a majority of the shufflers each report stays eps=6-LDP.
//
// The example runs the deployment's two tiers:
//
//  1. The live collection tier — the planned mechanism streamed
//     through the concurrent ingestion service (internal/service):
//     encrypted reports over real connections, batch shuffling, and a
//     mid-stream Snapshot while clicks are still arriving. This is the
//     single-shuffler trust model of §III, the everyday dashboard.
//
//  2. The hardened PEOS protocol (§VI) over the same clicks — secret
//     shares, DGK encryption, encrypted oblivious shuffle — whose
//     estimate survives the three collusion scenarios above.
//
//     go run ./examples/clickstream_peos
package main

import (
	"fmt"
	"log"
	"net"

	"shuffledp"
	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/service"
	"shuffledp/internal/transport"
)

func main() {
	const (
		n = 1200 // users (kept small: this runs the real cryptography)
		d = 16   // item catalogue
	)
	values := shuffledp.SyntheticDataset(n, d, 1.4, 11)

	// At this demo scale the users' own randomness contributes little
	// blanket, so the planner compensates with fake reports; production
	// n ~ 10^6 needs far fewer fakes per user (see cmd/table3).
	plan, err := shuffledp.PlanPEOS(1.5, 3, 6, n, d, 1e-9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployment plan:", plan)

	// ---- Tier 1: live collection through the streaming service ----
	streamEst, meter, err := streamClicks(plan, values, d)
	if err != nil {
		log.Fatal(err)
	}

	// ---- Tier 2: the hardened PEOS run over the same clicks ----
	res, err := shuffledp.RunPEOS(plan, values, shuffledp.PEOSRunConfig{
		Shufflers: 3,
		KeyBits:   1024,
	})
	if err != nil {
		log.Fatal(err)
	}

	truth := make([]float64, d)
	for _, v := range values {
		truth[v] += 1.0 / n
	}
	fmt.Println("\nitem   true-freq   stream-est   peos-est")
	for v := 0; v < 6; v++ {
		fmt.Printf("%4d   %9.4f   %10.4f   %8.4f\n",
			v, truth[v], streamEst[v], res.Estimates[v])
	}
	fmt.Println("\nstreaming-tier transport costs:")
	fmt.Print(meter.String())
	fmt.Println("\nPEOS per-party costs:")
	fmt.Print(res.CostReport)
}

// streamClicks pushes the clicks through the concurrent ingestion
// service with the plan's local mechanism: the estimate any analyst
// can watch live, protected by the basic shuffle model.
func streamClicks(plan *shuffledp.PEOSPlan, values []int, d int) ([]float64, *transport.Meter, error) {
	var fo ldp.FrequencyOracle
	if plan.Mechanism == "GRR" {
		fo = ldp.NewGRR(d, plan.EpsilonLocal)
	} else {
		fo = ldp.NewSOLH(d, plan.DPrime, plan.EpsilonLocal)
	}
	key, err := ecies.GenerateKey()
	if err != nil {
		return nil, nil, err
	}
	var meter transport.Meter
	svc, err := service.New(service.Config{
		FO:          fo,
		Key:         key,
		BatchSize:   200,
		ShuffleSeed: 42,
		Meter:       &meter,
	})
	if err != nil {
		return nil, nil, err
	}
	defer svc.Close()

	clientSide, serverSide := net.Pipe()
	if err := svc.Ingest(serverSide); err != nil {
		return nil, nil, err
	}
	reports := ldp.RandomizeParallel(fo, values, 12, 0)
	// The aggregation tier speaks the batched session wire; Flush below
	// pushes the ragged half-day batch like any buffered writer.
	cl, err := service.NewSessionClient(fo, key.Public(), nil, clientSide, 0)
	if err != nil {
		return nil, nil, err
	}

	// First half of the day's clicks...
	half := len(reports) / 2
	for _, rep := range reports[:half] {
		if err := cl.SendReport(rep); err != nil {
			return nil, nil, err
		}
	}
	if err := cl.Flush(); err != nil {
		return nil, nil, err
	}
	// ...and the dashboard refreshes without stopping ingestion.
	snap := svc.Snapshot()
	fmt.Printf("\nmid-stream snapshot: %d reports in, %d aggregated, est[0]=%.4f\n",
		snap.Received, snap.Reports, snap.Estimates[0])

	for _, rep := range reports[half:] {
		if err := cl.SendReport(rep); err != nil {
			return nil, nil, err
		}
	}
	if err := cl.Close(); err != nil {
		return nil, nil, err
	}
	final, err := svc.Drain()
	if err != nil {
		return nil, nil, err
	}
	fmt.Printf("drained: %d reports over %d shuffled batches\n", final.Reports, final.Batches)
	return final.Estimates, &meter, nil
}
