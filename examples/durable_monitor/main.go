// Command durable_monitor demonstrates crash recovery in the durable
// continual-observation tier: the same drifting click-stream is run
// twice through the epochal service — once uninterrupted (the
// reference), once durably with the service hard-killed mid-stream
// (simulated power cut: no flush, no seal, no goodbye) and restarted
// with service.Recover. The client resumes from Snapshot().Received,
// the count of durably logged reports, so every report lands exactly
// once; the demo then asserts that the sliding-window estimate, the
// sealed-epoch history, and the remaining privacy budget are
// bit-identical to the run that never crashed, and exits non-zero if
// any of them drifted (the CI recovery smoke job runs it).
//
// Usage:
//
//	durable_monitor [-n per-epoch users] [-d domain] [-epochs e]
//	                [-kill fraction] [-fsync always|batch|none] [-seed s]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"shuffledp/internal/budget"
	"shuffledp/internal/composition"
	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/service"
	"shuffledp/internal/store"
)

func main() {
	n := flag.Int("n", 600, "users reporting per epoch")
	d := flag.Int("d", 32, "domain size")
	epochs := flag.Int("epochs", 3, "collection rounds")
	kill := flag.Float64("kill", 0.55, "fraction of the stream after which the service is killed")
	fsync := flag.String("fsync", "batch", "WAL fsync policy: always, batch, or none")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()
	if *epochs < 2 {
		*epochs = 2
	}

	const perEps = 1.0
	fo := ldp.NewOLH(*d, 2)
	key, err := ecies.GenerateKey()
	if err != nil {
		log.Fatal(err)
	}
	sync, err := store.ParseSyncPolicy(*fsync)
	if err != nil {
		log.Fatal(err)
	}

	// Pre-randomize the whole stream once: both runs must see the
	// exact same report multiset for bit-identity to be checkable.
	total := *n * *epochs
	values := make([]int, total)
	for i := range values {
		values[i] = (i*i + i/7) % *d
	}
	reports := ldp.RandomizeParallel(fo, values, *seed, 0)
	killAt := int(float64(total) * *kill)
	if killAt < 1 {
		killAt = 1
	}

	newLedger := func() *budget.Ledger {
		l, err := budget.NewLedger(
			composition.Guarantee{Eps: perEps * float64(*epochs), Delta: 1e-6},
			composition.Guarantee{Eps: perEps, Delta: 1e-9},
			budget.Naive{},
		)
		if err != nil {
			log.Fatal(err)
		}
		return l
	}
	config := func(ledger *budget.Ledger, dir string) service.Config {
		return service.Config{
			FO: fo, Key: key, BatchSize: 64, ShuffleSeed: *seed + 1,
			Ledger: ledger, DataDir: dir, Sync: sync,
		}
	}

	fmt.Printf("durable monitor: %d reports over %d epochs, kill at report %d, fsync=%s\n\n",
		total, *epochs, killAt, sync)

	// Run 1: the reference that never crashes.
	refLedger := newLedger()
	ref, err := service.New(config(refLedger, ""))
	if err != nil {
		log.Fatal(err)
	}
	refSnap := drive(ref, fo, key, reports, *n, -1)
	refWin := window(ref)
	fmt.Printf("reference:  %d epochs sealed, window est[0]=%.6f, drain est[0]=%.6f\n",
		len(ref.History()), refWin.Estimates[0], refSnap.Estimates[0])

	// Run 2: durable, killed mid-stream, recovered, resumed.
	dir, err := os.MkdirTemp("", "durable-monitor-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dir = filepath.Join(dir, "state")

	svc, err := service.New(config(newLedger(), dir))
	if err != nil {
		log.Fatal(err)
	}
	drive(svc, fo, key, reports, *n, killAt)
	fmt.Printf("\n*** hard-killing the service at report %d (no flush, no seal) ***\n", killAt)
	svc.Crash()

	recLedger := newLedger()
	svc, err = service.Recover(config(recLedger, dir))
	if err != nil {
		log.Fatalf("recovery failed: %v", err)
	}
	durable := svc.Snapshot().Received
	fmt.Printf("recovered: epoch %d open, %d of %d sent reports were durable, %d epochs sealed\n",
		svc.Epoch(), durable, killAt, len(svc.History()))
	fmt.Printf("resuming the stream at report %d\n\n", durable)
	snap := drive(svc, fo, key, reports, *n, -1)
	win := window(svc)
	fmt.Printf("recovered:  %d epochs sealed, window est[0]=%.6f, drain est[0]=%.6f\n",
		len(svc.History()), win.Estimates[0], snap.Estimates[0])

	// The whole point: bit-identical, not merely close.
	fail := false
	check := func(label string, got, want []float64) {
		for v := range want {
			if got[v] != want[v] {
				fmt.Printf("MISMATCH %s[%d]: %v != %v\n", label, v, got[v], want[v])
				fail = true
				return
			}
		}
		fmt.Printf("ok: %s bit-identical across the crash\n", label)
	}
	check("window estimate", win.Estimates, refWin.Estimates)
	check("all-time estimate", snap.Estimates, refSnap.Estimates)
	if len(svc.History()) != len(ref.History()) {
		fmt.Printf("MISMATCH: %d sealed epochs vs reference %d\n", len(svc.History()), len(ref.History()))
		fail = true
	}
	if got, want := recLedger.Remaining(), refLedger.Remaining(); got != want {
		fmt.Printf("MISMATCH remaining budget: %+v != %+v\n", got, want)
		fail = true
	} else {
		fmt.Printf("ok: remaining budget (%.4g, %.3g) bit-identical across the crash\n", got.Eps, got.Delta)
	}
	if fail {
		os.Exit(1)
	}
}

// drive streams reports into svc, rotating every perEpoch reports,
// starting from the service's durable Received count. killAt >= 0
// stops after that many total reports without draining (the caller
// crashes the service); killAt < 0 finishes the stream and drains.
func drive(svc *service.Service, fo ldp.FrequencyOracle, key *ecies.PrivateKey, reports []ldp.Report, perEpoch, killAt int) service.Snapshot {
	sent := int(svc.Snapshot().Received)
	target := len(reports)
	if killAt >= 0 && killAt < target {
		target = killAt
	}
	for sent < target {
		// Epoch boundaries sit at multiples of perEpoch; rotations are
		// driven manually at exactly those counts so both runs cut the
		// stream identically.
		bound := (sent/perEpoch + 1) * perEpoch
		if bound > target {
			bound = target
		}
		send(svc, fo, key, reports[sent:bound])
		sent = bound
		if sent%perEpoch == 0 && sent < len(reports) {
			if _, err := svc.Rotate(); err != nil {
				log.Fatalf("rotating at %d: %v", sent, err)
			}
			fmt.Printf("  sealed epoch %d at report %d\n", svc.Epoch()-1, sent)
		}
	}
	if killAt >= 0 {
		return service.Snapshot{}
	}
	snap, err := svc.Drain()
	if err != nil {
		log.Fatal(err)
	}
	return snap
}

// send pushes one slice of reports over a fresh connection and waits
// until the service has accepted them all.
func send(svc *service.Service, fo ldp.FrequencyOracle, key *ecies.PrivateKey, reports []ldp.Report) {
	if len(reports) == 0 {
		return
	}
	before := svc.Snapshot().Received
	clientSide, serverSide := net.Pipe()
	if err := svc.Ingest(serverSide); err != nil {
		log.Fatal(err)
	}
	// Session wire: one handshake, then AEAD-sealed batches — the WAL
	// still never holds plaintext (session reports are re-sealed under
	// the at-rest storage key before logging).
	cl, err := service.NewSessionClient(fo, key.Public(), nil, clientSide, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range reports {
		if err := cl.SendReport(rep); err != nil {
			log.Fatal(err)
		}
	}
	if err := cl.Close(); err != nil {
		log.Fatal(err)
	}
	for svc.Snapshot().Received < before+int64(len(reports)) {
		time.Sleep(time.Millisecond)
	}
}

// window merges every sealed epoch.
func window(svc *service.Service) service.WindowSnapshot {
	win, err := svc.EstimateWindow(0)
	if err != nil {
		log.Fatal(err)
	}
	return win
}
