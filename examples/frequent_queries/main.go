// Frequent queries: the §VII-C succinct-histogram case study. The
// domain — 32-bit query identifiers here (48-bit in the paper) — is far
// too large to enumerate, so TreeHist walks a prefix tree, estimating
// prefix frequencies with the SOLH shuffle-model oracle at each level.
//
//	go run ./examples/frequent_queries
package main

import (
	"fmt"
	"log"

	"shuffledp"
	"shuffledp/internal/dataset"
	"shuffledp/internal/treehist"
)

func main() {
	// AOL-shaped data scaled down: 80k users over ~2000 distinct
	// 32-bit strings.
	ds := dataset.SyntheticStrings("queries", 80000, 2000, 32, 1.1, 5)
	const k = 16

	found, err := shuffledp.FrequentStrings(ds.Values, ds.Bits, shuffledp.FrequentStringsOptions{
		K:              k,
		EpsilonCentral: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	truth := ds.TopStrings(k)
	fmt.Printf("searched 2^%d strings with %d users (epsC = 1)\n", ds.Bits, ds.N())
	fmt.Printf("found %d candidates, precision vs true top-%d: %.2f\n\n",
		len(found), k, treehist.Precision(found, truth))
	fmt.Println("rank   true        found")
	for i := 0; i < 8; i++ {
		fmt.Printf("%4d   %08x    %08x\n", i, truth[i], found[i])
	}
}
