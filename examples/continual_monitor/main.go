// Command continual_monitor demonstrates the continual-observation
// tier: a population whose value distribution drifts is re-collected
// every epoch through the streaming service, a budget ledger composes
// the per-epoch privacy loss (advanced composition), and sliding-
// window queries smooth the per-epoch estimates into a trend. The
// monitor keeps collecting until the ledger refuses the next epoch —
// at which point the service rejects ingestion and the run shows
// exactly how many rounds the total budget bought.
//
// Usage:
//
//	continual_monitor [-n per-epoch users] [-d domain] [-eps per-epoch]
//	                  [-total total-eps] [-window k] [-seed s]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"shuffledp/internal/budget"
	"shuffledp/internal/composition"
	"shuffledp/internal/dataset"
	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
	"shuffledp/internal/service"
)

func main() {
	n := flag.Int("n", 800, "users reporting per epoch")
	d := flag.Int("d", 32, "domain size")
	eps := flag.Float64("eps", 1, "per-epoch central budget")
	total := flag.Float64("total", 4, "total budget across all epochs")
	window := flag.Int("window", 3, "sliding-window width (epochs)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	const delta = 1e-9
	ledger, err := budget.NewLedger(
		composition.Guarantee{Eps: *total, Delta: 1e-6},
		composition.Guarantee{Eps: *eps, Delta: delta},
		budget.Advanced{Slack: 5e-7},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ledger: total eps=%.1f, per-epoch eps=%.1f, %s accounting -> %d epochs\n",
		*total, *eps, ledger.AccountantName(), ledger.MaxEpochs())

	// OLH at the per-epoch budget; every epoch re-collects the same
	// population, so the budget ledger is what keeps the drift watch
	// honest over time.
	fo := ldp.NewOLH(*d, *eps)
	key, err := ecies.GenerateKey()
	if err != nil {
		log.Fatal(err)
	}
	svc, err := service.New(service.Config{
		FO:          fo,
		Key:         key,
		BatchSize:   128,
		ShuffleSeed: *seed,
		Ledger:      ledger,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// The tracked value's popularity drifts upward epoch over epoch —
	// the trend the monitor should surface.
	const tracked = 0
	trend := func(epoch int) []int {
		ds := dataset.Synthetic("drift", *n, *d, 1.2, *seed+uint64(100*epoch))
		values := ds.Values
		boost := *n / 20 * epoch // +5% of the population per epoch
		r := rng.Substream(*seed+7, uint64(epoch))
		for i := 0; i < boost && i < len(values); i++ {
			values[r.Intn(len(values))] = tracked
		}
		return values
	}

	fmt.Printf("\nepoch   reports   true f[%d]   epoch est   window est (last %d)\n", tracked, *window)
	for epoch := 0; ; epoch++ {
		values := trend(epoch)
		clientSide, serverSide := net.Pipe()
		if err := svc.Ingest(serverSide); err != nil {
			// The ledger refused this collection round: the population's
			// reports are never accepted, let alone aggregated.
			if errors.Is(err, budget.ErrExhausted) {
				fmt.Printf("\nepoch %d refused: %v\n", epoch, err)
				break
			}
			log.Fatal(err)
		}
		cl, err := service.NewSessionClient(fo, key.Public(), nil, clientSide, 0)
		if err != nil {
			log.Fatal(err)
		}
		sendErr := make(chan error, 1)
		go func() {
			defer clientSide.Close()
			for _, rep := range ldp.RandomizeParallel(fo, values, *seed+uint64(epoch), 0) {
				if err := cl.SendReport(rep); err != nil {
					sendErr <- err
					return
				}
			}
			sendErr <- cl.Close()
		}()
		if err := <-sendErr; err != nil {
			log.Fatal(err)
		}
		// Wait for the round's reports to be accepted, then cut the
		// epoch.
		for svc.Snapshot().Received < int64((epoch+1)**n) {
			time.Sleep(time.Millisecond)
		}
		sealed, err := svc.Rotate()
		exhausted := errors.Is(err, budget.ErrExhausted)
		if err != nil && !exhausted {
			log.Fatal(err)
		}

		k := *window
		if hist := svc.History(); k > len(hist) {
			k = len(hist)
		}
		win, werr := svc.EstimateWindow(k)
		if werr != nil {
			log.Fatal(werr)
		}
		truth := ldp.TrueFrequencies(values, *d)
		fmt.Printf("%5d   %7d   %9.4f   %9.4f   %10.4f\n",
			sealed.Epoch, sealed.Reports, truth[tracked], sealed.Estimates[tracked], win.Estimates[tracked])

		if exhausted {
			fmt.Printf("\nbudget exhausted after %d epochs: %v\n", len(svc.History()), err)
			break
		}
	}

	spent := ledger.Spent()
	fmt.Printf("ledger spent (%.2f, %.1e); service exhausted: %v\n", spent.Eps, spent.Delta, svc.Exhausted())
	if _, err := svc.Drain(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sealed epochs retained: %d\n", len(svc.History()))
}
