// Quickstart: estimate a private histogram in the shuffle model.
//
// 50,000 users each hold one of 100 values; we want the frequency of
// every value under a strong central guarantee (epsC = 0.5) without any
// user trusting the server with more than its locally-randomized
// report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"shuffledp"
)

func main() {
	const (
		n = 50000
		d = 100
	)
	// Synthetic user data: a Zipf-skewed distribution, like most
	// categorical telemetry.
	values := shuffledp.SyntheticDataset(n, d, 1.3, 42)

	res, err := shuffledp.EstimateHistogram(values, d, shuffledp.Options{
		EpsilonCentral: 0.5, // the (0.5, 1e-9)-DP guarantee after shuffling
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mechanism: %s  (epsilon_local=%.2f, d'=%d)\n",
		res.Mechanism, res.EpsilonLocal, res.DPrime)
	fmt.Printf("predicted per-value MSE: %.3e\n\n", res.PredictedMSE)

	// Compare the top of the estimated histogram with the truth.
	truth := make([]float64, d)
	for _, v := range values {
		truth[v] += 1.0 / n
	}
	fmt.Println("value   true-freq   estimate")
	for v := 0; v < 8; v++ {
		fmt.Printf("%5d   %9.4f   %8.4f\n", v, truth[v], res.Estimates[v])
	}
}
