// Census: the paper's motivating IPUMS workload — estimating how many
// census respondents live in each of 915 cities — comparing what each
// deployment model costs in accuracy at the same central budget:
//
//   - local DP only (OLH): no trusted party at all;
//
//   - the shuffle model with GRR (the prior art "SH");
//
//   - the shuffle model with SOLH (this paper);
//
//   - central DP (Laplace): full trust in the server.
//
//     go run ./examples/census
package main

import (
	"fmt"
	"log"

	"shuffledp/internal/dataset"
	"shuffledp/internal/experiment"
	"shuffledp/internal/rng"
)

func main() {
	// IPUMS-shaped data at 1/10 scale for a fast demo (same d = 915).
	ds := dataset.Scaled(dataset.IPUMS, 10, 7)
	fmt.Printf("census dataset: n=%d users, d=%d cities\n\n", ds.N(), ds.D)

	truth := ds.TrueFrequencies()
	counts := ds.Histogram()
	r := rng.New(99)
	const delta = 1e-9

	fmt.Println("model                    method   mean-squared-error")
	for _, row := range []struct {
		label, method string
	}{
		{"local DP (no trust)", "OLH"},
		{"shuffle, prior art", "SH"},
		{"shuffle, this paper", "SOLH"},
		{"central DP (full trust)", "Lap"},
	} {
		m, err := experiment.NewMethod(row.method, 0.5, delta, ds.N(), ds.D)
		if err != nil {
			log.Fatal(err)
		}
		mse := experiment.MeanMSE(m, counts, truth, 10, r)
		fmt.Printf("%-24s %-8s %.3e\n", row.label, row.method, mse)
	}
	fmt.Println("\nThe shuffle model with SOLH sits orders of magnitude below pure")
	fmt.Println("LDP while trusting the shuffler only not to collude with the server.")
}
