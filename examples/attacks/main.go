// Attacks: reproduces the §V threat analysis numerically.
//
//  1. User–server collusion (Adv_u): every other user hands the server
//     its report; the victim's report is exposed exactly — unless the
//     shufflers injected fake reports for it to hide among.
//
//  2. Data poisoning: a malicious shuffler pushes fake reports onto a
//     target value. Under the sequential shuffle the estimate inflates;
//     under PEOS the honest shufflers' shares mask it to uniform.
//
//     go run ./examples/attacks
package main

import (
	"fmt"

	"shuffledp/internal/attack"
	"shuffledp/internal/ldp"
)

func main() {
	const (
		d  = 16
		n  = 20000
		nr = 2000
	)
	fo := ldp.NewGRR(d, 4)

	fmt.Println("--- collusion: server + all users except the victim ---")
	res := attack.UserCollusion(fo, nr, 2000, 1)
	fmt.Printf("without fakes: victim's report exposed in %d/%d trials\n",
		res.ExposedNoFakes, res.Trials)
	fmt.Printf("with %d fakes: correct identification in %.1f%% of trials\n\n",
		nr, 100*float64(res.IdentifiedWithFakes)/float64(res.Trials))

	trueCounts := make([]int, d)
	for v := range trueCounts {
		trueCounts[v] = n / d
	}
	target := 3
	truth := float64(trueCounts[target]) / float64(n)

	fmt.Println("--- poisoning: one malicious shuffler, all fakes -> target ---")
	ss := attack.SSFakePoisoning(fo, trueCounts, nr, target, 50, 2)
	fmt.Printf("sequential shuffle: target freq %.4f estimated as %.4f (boost %+.4f)\n",
		truth, truth+ss.TargetBoost, ss.TargetBoost)

	peos := attack.PEOSFakePoisoning(fo, trueCounts, nr, target, 3, 50, 3)
	fmt.Printf("PEOS:               target freq %.4f estimated as %.4f (boost %+.4f)\n",
		truth, truth+peos.TargetBoost, peos.TargetBoost)
	fmt.Printf("PEOS combined fakes uniformity: chi2 = %.1f over %d dof (99.9%%-ile ~ %.0f)\n",
		peos.ChiSquare, peos.Dof, 37.7)
}
