// PEOS cluster: the paper's hardened protocol (§VI, Algorithm 1) run
// the way it would be deployed — one process-equivalent node per
// party, chained over real TCP listeners on loopback. R shuffler nodes
// accept secret-share columns from the clients, inject their joint
// fake-report shares, run the encrypted oblivious shuffle among
// themselves (hide-and-seek rounds as real peer messages), and forward
// the post-shuffle vectors to the analyzer node, which decrypts with
// the DGK private key and serves estimates. Nobody but the analyzer
// ever holds the private key; nobody but a single shuffler ever holds
// a share column.
//
// The demo asserts the security refactor changed nothing about the
// math: every collection's estimate must be BIT-IDENTICAL to the
// in-process reference protocol.PEOS.Run for the same seeds, and the
// cumulative estimate must equal the protocol estimator over all
// rounds' reports. Any drift exits non-zero.
//
// With -analyzers > 1 the analyzer tier itself is sharded by domain
// partition: shard 0 coordinates rounds and higher shards serve their
// domain window, and the demo additionally proves the merge — summing
// every shard's window tally reproduces the coordinator's counts.
//
// With -kill, the demo instead rehearses the failure drill the CI
// smoke job runs: one shuffler (or, when sharded, one analyzer shard)
// is hard-killed mid-stream, the round must fail with a clean protocol
// error (no hang, no partial estimate), and a rerun on a fresh cluster
// must complete and match the reference.
//
// With -chaos, the same run happens through a deterministic fault
// layer (internal/faultnet): the shuffler mesh takes a hard connection
// reset mid-shuffle and the client link to shuffler 0 is torn while it
// streams reports. Retry is enabled on the analyzer (round abort +
// re-seal) and the client (reconnect + resubmit), and the run must
// STILL end bit-identical to the in-process reference with every
// fault healed automatically — the self-healing demo.
//
//	go run ./examples/peos_cluster [-n 400] [-d 16] [-shufflers 2] [-analyzers 1]
//	                               [-fakes 24] [-collections 2] [-keybits 512]
//	                               [-seed 1] [-kill|-chaos]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"shuffledp/internal/ahe"
	"shuffledp/internal/cluster"
	"shuffledp/internal/faultnet"
	"shuffledp/internal/ldp"
	"shuffledp/internal/protocol"
	"shuffledp/internal/rng"
	"shuffledp/internal/secretshare"
)

var (
	nFlag       = flag.Int("n", 400, "users per collection round")
	dFlag       = flag.Int("d", 16, "value domain size")
	rFlag       = flag.Int("shufflers", 2, "shuffler nodes (R >= 2)")
	aFlag       = flag.Int("analyzers", 1, "analyzer shard nodes (1 = the classic single analyzer)")
	nrFlag      = flag.Int("fakes", 24, "joint fake reports per round")
	colFlag     = flag.Int("collections", 2, "collection rounds")
	keyBits     = flag.Int("keybits", 512, "DGK modulus bits (paper deploys 3072)")
	seedFlag    = flag.Uint64("seed", 1, "base seed for all deterministic streams")
	killFlag    = flag.Bool("kill", false, "kill shuffler 0 mid-stream, expect a clean error, rerun to completion")
	chaosFlag   = flag.Bool("chaos", false, "inject deterministic faults (mesh reset + client disconnect) and self-heal")
	workersFlag = flag.Int("shuffler-workers", 0, "goroutines per shuffler node's crypto passes (<=1 = serial)")
	chunkFlag   = flag.Int("chunk-words", 0, "stream shuffle vectors in windows of this many elements (0 = one frame)")
	timeoutFlag = flag.Duration("timeout", 60*time.Second, "per-phase safety timeout")
)

// meshNet carries the shuffler-mesh faults in -chaos mode (nil
// otherwise): connections dialed to shuffler 0 route through it.
var meshNet *faultnet.Network

// chaosDialTo routes dials to one target address through the fault
// network and leaves every other dial untouched.
func chaosDialTo(n *faultnet.Network, target string) cluster.DialFunc {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		if addr == target {
			return n.Dial(addr, timeout)
		}
		return net.DialTimeout("tcp", addr, timeout)
	}
}

// retryPolicy is the self-healing budget chaos mode runs under.
func retryPolicy() cluster.RetryPolicy {
	return cluster.RetryPolicy{Attempts: 6, BaseBackoff: 25 * time.Millisecond, MaxBackoff: 250 * time.Millisecond}
}

// nodes is one running cluster: listeners bound first so the topology
// carries real ports, then one goroutine per role. analyzers[0] is the
// coordinator; any further entries are passive window shards.
type nodes struct {
	topo      cluster.Topology
	analyzers []*cluster.Analyzer
	shufflers []*cluster.Shuffler
	runErr    []chan error
}

func (ns *nodes) analyzer() *cluster.Analyzer { return ns.analyzers[0] }

// mergedEstimates is the sharded tier's merge proof: sum every
// analyzer node's window tally and run the shared estimator over it —
// it must reproduce the coordinator's estimates exactly.
func (ns *nodes) mergedEstimates(fo ldp.FrequencyOracle) []float64 {
	shards := make([][]int, len(ns.analyzers))
	for s, a := range ns.analyzers {
		shards[s] = a.ShardCounts()
	}
	reals, fakes := ns.analyzer().Totals()
	return protocol.EstimateCounts(fo, protocol.MergeShardCounts(shards), reals, fakes)
}

// startNodes boots the analyzer tier and R shufflers on loopback.
// Collection c of shuffler j draws its fake shares from substream
// c*R+j of seed, the convention the in-process reference mirrors.
func startNodes(priv *ahe.DGKPrivateKey, fo ldp.FrequencyOracle, collection int) (*nodes, error) {
	r, a := *rFlag, *aFlag
	lns := make([]net.Listener, r)
	topo := cluster.Topology{Shufflers: make([]string, r), Analyzers: make([]string, a)}
	for j := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[j] = ln
		topo.Shufflers[j] = ln.Addr().String()
	}
	alns := make([]net.Listener, a)
	for s := range alns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		alns[s] = ln
		topo.Analyzers[s] = ln.Addr().String()
	}

	ns := &nodes{topo: topo}
	for s := 0; s < a; s++ {
		acfg := cluster.AnalyzerConfig{
			Topology:       topo,
			Listener:       alns[s],
			FO:             fo,
			NR:             *nrFlag,
			Priv:           priv,
			Shard:          s,
			CollectTimeout: *timeoutFlag,
		}
		if *chaosFlag {
			acfg.Retry = retryPolicy()
		}
		an, err := cluster.NewAnalyzer(acfg)
		if err != nil {
			return nil, err
		}
		ns.analyzers = append(ns.analyzers, an)
	}
	for j := 0; j < r; j++ {
		scfg := cluster.ShufflerConfig{
			Index:       j,
			Topology:    topo,
			Listener:    lns[j],
			NR:          *nrFlag,
			Pub:         ahe.PublicKey(priv),
			Source:      rng.Substream(*seedFlag, 5000+uint64(j)),
			FakeSource:  fakeSource(collection, j),
			SealTimeout: *timeoutFlag,
			Workers:     *workersFlag,
			ChunkWords:  *chunkFlag,
		}
		if meshNet != nil && j > 0 {
			// Only higher-index shufflers dial shuffler 0, so this is
			// exactly the mesh leg the chaos plan tears.
			scfg.Dial = chaosDialTo(meshNet, topo.Shufflers[0])
		}
		sh, err := cluster.NewShuffler(scfg)
		if err != nil {
			return nil, err
		}
		ns.shufflers = append(ns.shufflers, sh)
		errc := make(chan error, 1)
		ns.runErr = append(ns.runErr, errc)
		go func() { errc <- sh.Run() }()
	}
	return ns, nil
}

func (ns *nodes) stop() {
	for _, a := range ns.analyzers {
		a.Close()
	}
	for _, sh := range ns.shufflers {
		sh.Close()
	}
	for _, errc := range ns.runErr {
		select {
		case <-errc:
		case <-time.After(*timeoutFlag):
			log.Fatal("FAIL: a shuffler node did not shut down")
		}
	}
}

// fakeSource is the per-(collection, shuffler) fake-share stream.
func fakeSource(collection, j int) *rng.Rand {
	return rng.Substream(*seedFlag, uint64(collection*(*rFlag)+j))
}

// refRun is the in-process Algorithm 1 with fakes drawn from the
// given per-shuffler sources — aligned by the caller with the state of
// the cluster nodes' own fake streams.
func refRun(priv *ahe.DGKPrivateKey, fo ldp.FrequencyOracle, values []int, fs func(j int) secretshare.Source, collection int) (*protocol.Result, error) {
	p, err := protocol.NewPEOS(fo, *rFlag, *nrFlag, priv, rng.Substream(*seedFlag, 9000))
	if err != nil {
		return nil, err
	}
	p.FakeSource = fs
	return p.Run(values, rng.Substream(*seedFlag, 8000+uint64(collection)))
}

func synthValues(collection int) []int {
	src := rng.Substream(*seedFlag, 7000+uint64(collection))
	values := make([]int, *nFlag)
	for i := range values {
		values[i] = src.Intn(*dFlag)
	}
	return values
}

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func main() {
	flag.Parse()
	if *rFlag < 2 {
		log.Fatal("PEOS needs at least 2 shufflers")
	}
	fo := ldp.NewGRR(*dFlag, 2)
	fmt.Printf("generating DGK-%d key pair...\n", *keyBits)
	priv, err := ahe.GenerateDGK(*keyBits, 64)
	if err != nil {
		log.Fatal(err)
	}

	if *killFlag {
		runKillDrill(priv, fo)
		return
	}

	var clientNet *faultnet.Network
	if *chaosFlag {
		// Deterministic plans: the first mesh leg of each of the first
		// two collections takes a hard reset mid-shuffle, and the
		// client's first link to shuffler 0 is torn while it streams
		// reports. Everything else is clean.
		meshNet = faultnet.New(faultnet.Config{Seed: *seedFlag, Plan: func(conn int) faultnet.Fault {
			if conn == 0 || conn == 2 {
				return faultnet.Fault{ResetAfter: 200}
			}
			return faultnet.Fault{}
		}})
		clientNet = faultnet.New(faultnet.Config{Seed: *seedFlag + 1, Plan: func(conn int) faultnet.Fault {
			if conn == 0 {
				return faultnet.Fault{ResetAfter: 600}
			}
			return faultnet.Fault{}
		}})
		fmt.Println("chaos: mesh resets on connections 0 and 2 after 200 B, client reset on connection 0 after 600 B")
	}

	fmt.Printf("cluster: %d shufflers + %d analyzer shard(s) on loopback TCP, %d fakes/round, %d users/round\n",
		*rFlag, *aFlag, *nrFlag, *nFlag)
	ns, err := startNodes(priv, fo, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer ns.stop()
	ccfg := cluster.ClientConfig{
		Topology: ns.topo,
		FO:       fo,
		Pub:      ahe.PublicKey(priv),
		Source:   rng.Substream(*seedFlag, 6000),
	}
	if *chaosFlag {
		ccfg.Dial = clientNet.Dial
		ccfg.Retry = retryPolicy()
	}
	client, err := cluster.NewClient(ccfg)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// The shuffler nodes live across rounds, so their fake streams
	// continue from round to round; the reference mirrors that with
	// one persistent source per shuffler, handed to every refRun.
	refSrcs := make([]secretshare.Source, *rFlag)
	for j := range refSrcs {
		refSrcs[j] = fakeSource(0, j)
	}
	refFS := func(j int) secretshare.Source { return refSrcs[j] }
	var refAll []ldp.Report
	attempts := 0
	for c := 0; c < *colFlag; c++ {
		values := synthValues(c)
		client.SetCollection(c)
		if err := client.SendValues(0, values, rng.Substream(*seedFlag, 8000+uint64(c))); err != nil {
			log.Fatal(err)
		}
		if err := client.Flush(); err != nil {
			log.Fatal(err)
		}
		col, err := ns.analyzer().Collect(*nFlag)
		if err != nil {
			log.Fatalf("collection %d: %v", c, err)
		}
		ref, err := refRun(priv, fo, values, refFS, c)
		if err != nil {
			log.Fatal(err)
		}
		if !equal(col.Estimates, ref.Estimates) {
			log.Fatalf("FAIL: collection %d estimates diverged from protocol.PEOS.Run", c)
		}
		refAll = append(refAll, ref.Reports...)
		attempts += col.Attempts
		top := 4
		if top > len(col.Estimates) {
			top = len(col.Estimates)
		}
		fmt.Printf("  collection %d: %d users + %d fakes, %d attempt(s), est[:%d] = %.4f  == in-process PEOS ✓\n",
			c, col.Reports, col.Fakes, col.Attempts, top, col.Estimates[:top])
	}
	wantCum := protocol.Estimate(fo, refAll, *colFlag**nFlag, *colFlag**nrFlag)
	if !equal(ns.analyzer().Estimates(), wantCum) {
		log.Fatal("FAIL: cumulative estimate diverged from the protocol estimator")
	}
	fmt.Printf("cumulative over %d rounds bit-identical to the in-process reference ✓\n", *colFlag)
	if *aFlag > 1 {
		if !equal(ns.mergedEstimates(fo), ns.analyzer().Estimates()) {
			log.Fatal("FAIL: merged per-shard counts diverged from the coordinator")
		}
		fmt.Printf("merge proof: %d shards' window tallies re-sum to the coordinator's counts ✓\n", *aFlag)
	}

	if *chaosFlag {
		mesh, cl := meshNet.Stats(), clientNet.Stats()
		fmt.Printf("chaos healed: mesh %d conns / %d resets, client %d conns / %d resets, %d client reconnects, %d round attempts\n",
			mesh.Conns, mesh.Resets, cl.Conns, cl.Resets, client.Reconnects(), attempts)
		if mesh.Resets == 0 || cl.Resets == 0 {
			log.Fatal("FAIL: chaos plan injected no faults (byte budgets never reached?)")
		}
		if client.Reconnects() == 0 {
			log.Fatal("FAIL: client link was reset but never healed")
		}
		if attempts <= *colFlag {
			log.Fatal("FAIL: mesh was reset but no collection round retried")
		}
		fmt.Println("every injected fault healed without intervention ✓")
	}
}

// runKillDrill is the CI failure rehearsal: kill one node mid-stream
// (a window shard when the tier is sharded, shuffler 0 otherwise),
// demand a clean protocol error, then rerun to completion on a fresh
// cluster and demand bit-identity.
func runKillDrill(priv *ahe.DGKPrivateKey, fo ldp.FrequencyOracle) {
	if *aFlag > 1 {
		runShardKillDrill(priv, fo)
		return
	}
	fmt.Println("kill drill: shuffler 0 dies mid-stream")
	ns, err := startNodes(priv, fo, 0)
	if err != nil {
		log.Fatal(err)
	}
	client, err := cluster.DialClient(ns.topo, fo, ahe.PublicKey(priv), rng.Substream(*seedFlag, 6000), 0)
	if err != nil {
		log.Fatal(err)
	}
	values := synthValues(0)
	if err := client.SendValues(0, values[:len(values)/2], rng.Substream(*seedFlag, 8000)); err != nil {
		log.Fatal(err)
	}
	if err := client.Flush(); err != nil {
		log.Fatal(err)
	}
	ns.shufflers[0].Close()

	type res struct {
		err error
	}
	done := make(chan res, 1)
	go func() {
		_, err := ns.analyzer().Collect(*nFlag)
		done <- res{err}
	}()
	select {
	case r := <-done:
		if r.err == nil {
			log.Fatal("FAIL: Collect succeeded with a dead shuffler")
		}
		fmt.Printf("  round failed cleanly: %v\n", r.err)
	case <-time.After(*timeoutFlag):
		log.Fatal("FAIL: Collect hung on a dead shuffler")
	}
	client.Close()
	ns.stop()

	fmt.Println("rerun on a fresh cluster:")
	ns, err = startNodes(priv, fo, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer ns.stop()
	client, err = cluster.DialClient(ns.topo, fo, ahe.PublicKey(priv), rng.Substream(*seedFlag, 6001), 0)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	if err := client.SendValues(0, values, rng.Substream(*seedFlag, 8000)); err != nil {
		log.Fatal(err)
	}
	if err := client.Flush(); err != nil {
		log.Fatal(err)
	}
	col, err := ns.analyzer().Collect(*nFlag)
	if err != nil {
		log.Fatalf("rerun failed: %v", err)
	}
	ref, err := refRun(priv, fo, values, func(j int) secretshare.Source { return fakeSource(0, j) }, 0)
	if err != nil {
		log.Fatal(err)
	}
	if !equal(col.Estimates, ref.Estimates) {
		log.Fatal("FAIL: rerun estimates diverged from protocol.PEOS.Run")
	}
	fmt.Println("  rerun completed, estimates bit-identical to the in-process reference ✓")
}

// runShardKillDrill rehearses an analyzer-shard failure: the full
// round's reports are in flight, then a window shard is hard-killed.
// The coordinator must fail the round with a clean protocol error —
// never a hang, never a partial window commit — and a rerun on a
// fresh sharded cluster must match the reference and its merge proof.
func runShardKillDrill(priv *ahe.DGKPrivateKey, fo ldp.FrequencyOracle) {
	fmt.Printf("kill drill: analyzer shard 1 of %d dies mid-round\n", *aFlag)
	ns, err := startNodes(priv, fo, 0)
	if err != nil {
		log.Fatal(err)
	}
	client, err := cluster.DialClient(ns.topo, fo, ahe.PublicKey(priv), rng.Substream(*seedFlag, 6000), 0)
	if err != nil {
		log.Fatal(err)
	}
	values := synthValues(0)
	if err := client.SendValues(0, values, rng.Substream(*seedFlag, 8000)); err != nil {
		log.Fatal(err)
	}
	if err := client.Flush(); err != nil {
		log.Fatal(err)
	}
	ns.analyzers[1].Crash()

	type res struct {
		err error
	}
	done := make(chan res, 1)
	go func() {
		_, err := ns.analyzer().Collect(*nFlag)
		done <- res{err}
	}()
	select {
	case r := <-done:
		if r.err == nil {
			log.Fatal("FAIL: Collect succeeded with a dead analyzer shard")
		}
		fmt.Printf("  round failed cleanly: %v\n", r.err)
	case <-time.After(*timeoutFlag):
		log.Fatal("FAIL: Collect hung on a dead analyzer shard")
	}
	if ns.analyzer().Collections() != 0 {
		log.Fatal("FAIL: a failed round left a committed window behind")
	}
	client.Close()
	ns.stop()

	fmt.Println("rerun on a fresh sharded cluster:")
	ns, err = startNodes(priv, fo, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer ns.stop()
	client, err = cluster.DialClient(ns.topo, fo, ahe.PublicKey(priv), rng.Substream(*seedFlag, 6001), 0)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	if err := client.SendValues(0, values, rng.Substream(*seedFlag, 8000)); err != nil {
		log.Fatal(err)
	}
	if err := client.Flush(); err != nil {
		log.Fatal(err)
	}
	col, err := ns.analyzer().Collect(*nFlag)
	if err != nil {
		log.Fatalf("rerun failed: %v", err)
	}
	ref, err := refRun(priv, fo, values, func(j int) secretshare.Source { return fakeSource(0, j) }, 0)
	if err != nil {
		log.Fatal(err)
	}
	if !equal(col.Estimates, ref.Estimates) {
		log.Fatal("FAIL: rerun estimates diverged from protocol.PEOS.Run")
	}
	if !equal(ns.mergedEstimates(fo), ns.analyzer().Estimates()) {
		log.Fatal("FAIL: rerun merge proof failed")
	}
	fmt.Println("  rerun completed, estimates bit-identical to the in-process reference, merge proof holds ✓")
}
