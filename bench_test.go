package shuffledp

// One benchmark per table/figure of the paper's evaluation (§VII), plus
// the ablation benches DESIGN.md calls out. Each bench regenerates its
// artifact at a laptop scale (same d and skew, n scaled down; see
// DESIGN.md §2) and reports the headline quantity as a custom metric so
// `go test -bench=.` doubles as a shape check:
//
//	Table I   -> BenchmarkTable1Amplify
//	Figure 3  -> BenchmarkFigure3MSE        (metric: SOLH vs OLH MSE)
//	Table II  -> BenchmarkTable2Kosarak     (metric: optimal-d' MSE)
//	Figure 4  -> BenchmarkFigure4TreeHist   (metric: SOLH precision)
//	Table III -> BenchmarkTable3Protocols   (sub-bench per protocol)
//
// The cmd/ binaries print the full row-by-row artifacts; these benches
// are the perf- and regression-tracking entry points.

import (
	"net"
	"strconv"
	"sync"
	"testing"

	"shuffledp/internal/ahe"
	"shuffledp/internal/amplify"
	"shuffledp/internal/dataset"
	"shuffledp/internal/ecies"
	"shuffledp/internal/experiment"
	"shuffledp/internal/ldp"
	"shuffledp/internal/oblivious"
	"shuffledp/internal/protocol"
	"shuffledp/internal/rng"
	"shuffledp/internal/secretshare"
	"shuffledp/internal/service"
)

const benchDelta = 1e-9

func BenchmarkTable1Amplify(b *testing.B) {
	epsLs := []float64{0.1, 0.2, 0.3, 0.4, 1, 2, 4}
	var rows []experiment.Table1Row
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows = experiment.Table1(epsLs, 1000000, benchDelta)
	}
	b.ReportMetric(rows[len(rows)-1].BBGN, "epsC@epsL=4")
}

func BenchmarkFigure3MSE(b *testing.B) {
	ds := dataset.Scaled(dataset.IPUMS, 20, 1)
	cfg := experiment.Figure3Config{
		EpsCs:   []float64{0.2, 0.6, 1.0},
		Trials:  3,
		Delta:   benchDelta,
		Methods: []string{"Base", "OLH", "SH", "SOLH", "RAP_R", "Lap"},
		Seed:    1,
	}
	b.ResetTimer()
	var points []experiment.CurvePoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiment.Figure3(ds, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := points[len(points)-1]
	b.ReportMetric(last.MSE["SOLH"], "SOLH-MSE@1.0")
	b.ReportMetric(last.MSE["OLH"]/last.MSE["SOLH"], "OLH/SOLH")
}

func BenchmarkTable2Kosarak(b *testing.B) {
	ds := dataset.Scaled(dataset.Kosarak, 50, 2)
	cfg := experiment.Table2Config{
		EpsCs:   []float64{0.4, 0.8},
		FixedDs: []int{10, 1000},
		Trials:  3,
		Delta:   benchDelta,
		Seed:    2,
	}
	b.ResetTimer()
	var rows []experiment.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.Table2(ds, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].SOLH, "SOLH-MSE@0.8")
	b.ReportMetric(float64(rows[len(rows)-1].DPrime), "d'@0.8")
}

func BenchmarkFigure4TreeHist(b *testing.B) {
	ds := dataset.SyntheticStrings("aol-bench", 50000, 2000, 32, 1.05, 3)
	cfg := experiment.Figure4Config{
		EpsCs:   []float64{0.8},
		K:       16,
		Bits:    32,
		Round:   8,
		Trials:  1,
		Delta:   benchDelta,
		Methods: []string{"SOLH", "SH", "Lap"},
		Seed:    4,
	}
	b.ResetTimer()
	var points []experiment.Figure4Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiment.Figure4(ds, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points[0].Precision["SOLH"], "SOLH-precision")
}

func BenchmarkTable3Protocols(b *testing.B) {
	const n, nr, keyBits = 500, 50, 768
	values := make([]int, n)
	for i := range values {
		values[i] = i % 32
	}
	fo := ldp.NewSOLH(32, 8, 2)
	key, err := ahe.GenerateDGK(keyBits, 64)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range []int{3, 7} {
		b.Run("SS/r="+itoa(r), func(b *testing.B) {
			ss, err := protocol.NewSS(fo, r, nr)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ss.Run(values, rng.New(uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("PEOS/r="+itoa(r), func(b *testing.B) {
			p, err := protocol.NewPEOS(fo, r, nr, key, rng.New(9))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(values, rng.New(uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDPrime quantifies the Equation (5) design choice:
// SOLH at the optimal d' vs fixed d' (Table II's inner ablation).
func BenchmarkAblationDPrime(b *testing.B) {
	ds := dataset.Scaled(dataset.Kosarak, 100, 5)
	counts := ds.Histogram()
	truth := ds.TrueFrequencies()
	r := rng.New(6)
	epsC := 0.8
	opt, err := experiment.NewMethod("SOLH", epsC, benchDelta, ds.N(), ds.D)
	if err != nil {
		b.Fatal(err)
	}
	fixed, err := experiment.NewSOLHFixed(epsC, benchDelta, ds.N(), ds.D, 10)
	if err != nil {
		b.Fatal(err)
	}
	var mseOpt, mseFixed float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mseOpt = experiment.MeanMSE(opt, counts, truth, 2, r)
		mseFixed = experiment.MeanMSE(fixed, counts, truth, 2, r)
	}
	b.ReportMetric(mseFixed/mseOpt, "fixed/optimal-MSE")
}

// BenchmarkAblationGRRvsSOLH sweeps the domain size to locate the
// §IV-B3 crossover where hashing starts to win.
func BenchmarkAblationGRRvsSOLH(b *testing.B) {
	const n = 100000
	epsC := 0.5
	var crossover int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		crossover = 0
		for d := 2; d <= 1<<14; d *= 2 {
			if !amplify.PreferGRR(epsC, d, n, benchDelta) {
				crossover = d
				break
			}
		}
	}
	b.ReportMetric(float64(crossover), "crossover-d")
}

// BenchmarkAblationPlanner measures the §VI-D search and reports the
// fake-report budget it settles on.
func BenchmarkAblationPlanner(b *testing.B) {
	rq := amplify.Requirements{
		Eps1: 0.5, Eps2: 2, Eps3: 4,
		D: dataset.IPUMSD, N: dataset.IPUMSN, Delta: benchDelta,
	}
	var plan amplify.Plan
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		plan, err = amplify.PlanPEOS(rq)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(plan.NR), "planned-nr")
	b.ReportMetric(plan.Variance, "planned-MSE")
}

// BenchmarkAblationEOS isolates the AHE overhead: plain oblivious
// shuffle vs EOS with DGK vs EOS with Paillier, same vector length.
func BenchmarkAblationEOS(b *testing.B) {
	const n, r = 200, 3
	mod := secretshare.NewModulus(64)
	values := make([]uint64, n)
	for i := range values {
		values[i] = uint64(i)
	}
	dgk, err := ahe.GenerateDGK(768, 64)
	if err != nil {
		b.Fatal(err)
	}
	pai, err := ahe.GeneratePaillier(512, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("plain", func(b *testing.B) {
		src := rng.New(7)
		for i := 0; i < b.N; i++ {
			st := &oblivious.State{
				Plain:     secretshare.SplitVector(values, r, mod, src),
				EncHolder: -1,
			}
			if err := oblivious.Run(st, oblivious.Config{Mod: mod, Source: src}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, tc := range []struct {
		name string
		key  ahe.PrivateKey
		fast bool
	}{
		{"eos-dgk", dgk, false},
		{"eos-dgk-fast", dgk, true}, // the paper's Table III cost model
		{"eos-paillier", pai, false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			src := rng.New(8)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				shares := secretshare.SplitVector(values, r, mod, src)
				enc := make([]*ahe.Ciphertext, n)
				for j, s := range shares[r-1] {
					c, err := tc.key.Encrypt(s)
					if err != nil {
						b.Fatal(err)
					}
					enc[j] = c
				}
				shares[r-1] = nil
				st := &oblivious.State{Plain: shares, Enc: enc, EncHolder: r - 1}
				b.StartTimer()
				err := oblivious.Run(st, oblivious.Config{
					Mod: mod, Source: src, Pub: tc.key,
					SkipRerandomize: tc.fast,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAggregateSOLH tracks the SOLH server-side hot path — the
// O(n*d) hash-evaluation kernel — at n = 10^5 reports for a small and a
// large domain. It reports ns/report (one report costs d hash
// evaluations); allocs/op covers the whole aggregator lifecycle (the
// per-block fold itself is allocation-free — see BenchmarkCountSupport
// in internal/hash). cmd/bench runs the same workload against the
// seed's sequential baseline and records the speedup in
// BENCH_aggregate.json.
func BenchmarkAggregateSOLH(b *testing.B) {
	const n = 100000
	for _, d := range []int{1024, 65536} {
		b.Run("d="+strconv.Itoa(d), func(b *testing.B) {
			fo := ldp.NewSOLH(d, 128, 4)
			r := rng.New(1)
			reports := make([]ldp.Report, n)
			for i := range reports {
				reports[i] = fo.Randomize(i%d, r)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg := fo.NewAggregator()
				for _, rep := range reports {
					agg.Add(rep)
				}
				if est := agg.Estimates(); len(est) != d {
					b.Fatal("bad estimate length")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/report")
		})
	}
}

// BenchmarkAggregateSOLHParallel is the same workload through the
// sharded engine at GOMAXPROCS workers.
func BenchmarkAggregateSOLHParallel(b *testing.B) {
	const n, d = 100000, 1024
	fo := ldp.NewSOLH(d, 128, 4)
	r := rng.New(1)
	reports := make([]ldp.Report, n)
	for i := range reports {
		reports[i] = fo.Randomize(i%d, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := ldp.AggregateParallel(fo, reports, 0)
		if est := agg.Estimates(); len(est) != d {
			b.Fatal("bad estimate length")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/report")
}

// BenchmarkServiceThroughput measures the streaming ingestion tier end
// to end: concurrent client connections encrypt and frame
// pre-randomized SOLH reports over net.Pipe, the service batches,
// shuffles, decrypts, and aggregates, and the run drains to a final
// histogram. Reported as reports/s (the deployment-facing number);
// cmd/bench runs the same workload across client counts and records
// the curve in BENCH_service.json.
func BenchmarkServiceThroughput(b *testing.B) {
	const n, d, batch = 4000, 64, 256
	fo := ldp.NewSOLH(d, 16, 3)
	key, err := ecies.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	values := make([]int, n)
	for i := range values {
		values[i] = i % d
	}
	reports := ldp.RandomizeParallel(fo, values, 1, 0)
	for _, clients := range []int{1, 8} {
		b.Run("clients="+strconv.Itoa(clients), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				svc, err := service.New(service.Config{
					FO: fo, Key: key, BatchSize: batch, ShuffleSeed: uint64(i + 2),
				})
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					clientSide, serverSide := net.Pipe()
					if err := svc.Ingest(serverSide); err != nil {
						b.Fatal(err)
					}
					cl, err := service.NewClient(fo, key.Public(), nil, clientSide)
					if err != nil {
						b.Fatal(err)
					}
					wg.Add(1)
					go func(c int, cl *service.Client) {
						defer wg.Done()
						// Close on every exit path so a send error cannot
						// leave a reader open and hang Drain.
						defer clientSide.Close()
						for j := c; j < len(reports); j += clients {
							if err := cl.SendReport(reports[j]); err != nil {
								b.Error(err)
								return
							}
						}
						if err := cl.Close(); err != nil {
							b.Error(err)
						}
					}(c, cl)
				}
				snap, err := svc.Drain()
				if err != nil {
					b.Fatal(err)
				}
				wg.Wait()
				if snap.Reports != n {
					b.Fatalf("aggregated %d reports, want %d", snap.Reports, n)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "reports/s")
		})
	}
}

// BenchmarkPublicAPIEstimate measures the end-to-end facade.
func BenchmarkPublicAPIEstimate(b *testing.B) {
	values := SyntheticDataset(20000, 915, 1.1, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateHistogram(values, 915, Options{
			EpsilonCentral: 1,
			Seed:           uint64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(v int) string {
	if v == 3 {
		return "3"
	}
	if v == 7 {
		return "7"
	}
	return string(rune('0' + v))
}
