package shuffledp_test

import (
	"fmt"

	"shuffledp"
)

// The minimal shuffle-model pipeline: one call parameterizes the
// mechanism for the target central budget, randomizes, shuffles and
// estimates.
func ExampleEstimateHistogram() {
	// d = 500 puts GRR below its amplification threshold at this n and
	// budget, so the automatic §IV-B3 choice lands on SOLH.
	values := shuffledp.SyntheticDataset(50000, 500, 1.3, 7)
	res, err := shuffledp.EstimateHistogram(values, 500, shuffledp.Options{
		EpsilonCentral: 1,
		Seed:           7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("mechanism:", res.Mechanism)
	fmt.Printf("local budget exceeds central: %v\n", res.EpsilonLocal > 1)
	fmt.Printf("estimates cover the domain: %v\n", len(res.Estimates) == 500)
	// Output:
	// mechanism: SOLH
	// local budget exceeds central: true
	// estimates cover the domain: true
}

// Inverting Theorem 3: how much local budget do users need for a
// target central guarantee, and what hashed-domain size should SOLH
// use?
func ExampleLocalEpsilonFor() {
	epsL, dPrime, err := shuffledp.LocalEpsilonFor(1.0, 915, 602325, 1e-9)
	if err != nil {
		panic(err)
	}
	fmt.Printf("epsL=%.2f d'=%d\n", epsL, dPrime)
	// The forward direction recovers the central budget.
	back := shuffledp.AmplifiedEpsilon(epsL, dPrime, 602325, 1e-9)
	fmt.Printf("round trip: %.3f\n", back)
	// Output:
	// epsL=7.20 d'=670
	// round trip: 1.000
}

// Planning a hardened PEOS deployment against all three adversaries of
// the paper's §V.
func ExamplePlanPEOS() {
	plan, err := shuffledp.PlanPEOS(
		0.8, // vs the server
		3,   // vs the server + every other user
		6,   // vs the server + a majority of shufflers
		602325, 915, 1e-9)
	if err != nil {
		panic(err)
	}
	// (At these budgets the eps3 cap on the local budget makes GRR the
	// utility-optimal oracle; loosen eps3 and SOLH takes over.)
	fmt.Println("mechanism:", plan.Mechanism)
	fmt.Printf("budgets respected: %v %v %v\n",
		plan.EpsilonServer <= 0.8+1e-9,
		plan.EpsilonColludingUsers <= 3+1e-9,
		plan.EpsilonLocal <= 6+1e-9)
	fmt.Printf("fake reports planned: %v\n", plan.FakeReports > 0)
	// Output:
	// mechanism: GRR
	// budgets respected: true true true
	// fake reports planned: true
}
