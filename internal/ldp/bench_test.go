package ldp

import (
	"testing"

	"shuffledp/internal/rng"
)

func BenchmarkGRRRandomize(b *testing.B) {
	g := NewGRR(915, 1)
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Randomize(i%915, r)
	}
}

func BenchmarkSOLHRandomize(b *testing.B) {
	s := NewSOLH(42178, 705, 2)
	r := rng.New(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Randomize(i%42178, r)
	}
}

func BenchmarkHadamardRandomize(b *testing.B) {
	h := NewHadamard(42178, 1)
	r := rng.New(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Randomize(i%42178, r)
	}
}

func BenchmarkRAPRandomize(b *testing.B) {
	u := NewRAP(915, 1)
	r := rng.New(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.Randomize(i%915, r)
	}
}

// The server-side cost the paper quotes under Table II: "our machine
// can evaluate the hash function 1 million times within 0.1 second".
func BenchmarkSOLHServerSupportCount(b *testing.B) {
	const d = 915
	s := NewSOLH(d, 45, 2)
	r := rng.New(5)
	reports := make([]Report, 1000)
	for i := range reports {
		reports[i] = s.Randomize(i%d, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SupportCounts(s, reports)
	}
}

func BenchmarkSimulateEstimatesSOLH(b *testing.B) {
	const d, n = 42178, 990002
	s := NewSOLH(d, 705, 2)
	counts := make([]int, d)
	for v := range counts {
		counts[v] = n / d
	}
	r := rng.New(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulateEstimates(s, counts, r)
	}
}

func BenchmarkWordEncodeDecode(b *testing.B) {
	s := NewSOLH(42178, 705, 2)
	enc, err := NewWordEncoder(s)
	if err != nil {
		b.Fatal(err)
	}
	rep := Report{Seed: 12345, Value: 678}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := enc.Encode(rep)
		rep2 := enc.Decode(w)
		if rep2.Value != rep.Value {
			b.Fatal("roundtrip")
		}
	}
}
