package ldp

import (
	"math"

	"shuffledp/internal/hash"
	"shuffledp/internal/rng"
)

// LocalHash is the local-hashing mechanism family (§II-B "Local
// Hashing", §IV-B2): each user samples a hash function H (a 32-bit
// seed into the xxHash64 family), computes H(v) in [0, d'), and reports
// GRR_{d'}(H(v)) together with the seed.
//
// Two named instantiations differ only in how d' is chosen:
//
//   - OLH (Wang et al. 2017): d' = round(e^eps) + 1 minimizes the LDP
//     variance. Use NewOLH.
//   - SOLH (this paper, §IV-B): d' is chosen by the shuffle-model
//     analysis (internal/amplify.OptimalDPrime). Use NewSOLH with an
//     explicit d'.
type LocalHash struct {
	name   string
	d      int
	dPrime int
	eps    float64
	p      float64 // GRR_{d'} truthful probability
	family hash.Family
}

// NewOLH returns the LDP-optimal local-hashing oracle: d' = e^eps + 1
// rounded to the nearest integer, but never below 2.
func NewOLH(d int, eps float64) *LocalHash {
	validateDomain(d)
	validateEpsilon(eps)
	dPrime := int(math.Round(math.Exp(eps))) + 1
	if dPrime < 2 {
		dPrime = 2
	}
	lh := newLocalHash(d, dPrime, eps)
	lh.name = "OLH"
	return lh
}

// NewSOLH returns the paper's Shuffler-Optimal Local Hash with an
// explicitly chosen hashed-domain size dPrime (computed from the target
// central epsilon by internal/amplify).
func NewSOLH(d, dPrime int, eps float64) *LocalHash {
	validateDomain(d)
	validateEpsilon(eps)
	lh := newLocalHash(d, dPrime, eps)
	lh.name = "SOLH"
	return lh
}

func newLocalHash(d, dPrime int, eps float64) *LocalHash {
	if dPrime < 2 {
		panic("ldp: local hashing requires d' >= 2")
	}
	if dPrime > d {
		// Hashing into a domain larger than d wastes budget; clamp as
		// in the reference implementations.
		dPrime = d
	}
	e := math.Exp(eps)
	return &LocalHash{
		d:      d,
		dPrime: dPrime,
		eps:    eps,
		p:      e / (e + float64(dPrime) - 1),
		family: hash.NewFamily(dPrime),
	}
}

// Name implements FrequencyOracle.
func (l *LocalHash) Name() string { return l.name }

// Domain implements FrequencyOracle.
func (l *LocalHash) Domain() int { return l.d }

// DPrime returns the hashed-domain size d'.
func (l *LocalHash) DPrime() int { return l.dPrime }

// EpsilonLocal implements FrequencyOracle.
func (l *LocalHash) EpsilonLocal() float64 { return l.eps }

// P returns the GRR_{d'} truthful-report probability.
func (l *LocalHash) P() float64 { return l.p }

// Randomize implements FrequencyOracle: report <H, GRR_{d'}(H(v))>.
func (l *LocalHash) Randomize(v int, r *rng.Rand) Report {
	validateValue(v, l.d)
	seed := uint32(r.Uint64())
	hv := l.family.Hash(uint64(seed), uint64(v))
	y := hv
	if !r.Bernoulli(l.p) {
		y = r.Intn(l.dPrime - 1)
		if y >= hv {
			y++
		}
	}
	return Report{Seed: seed, Value: y}
}

// NewAggregator implements FrequencyOracle. The total server-side cost
// is still the O(n*d) hash evaluations of the paper's Table II
// discussion, but the aggregator buffers reports into blocks and folds
// each block into per-value support counts through the zero-allocation
// hash.Family.CountSupport kernel, so the work parallelizes across
// shard aggregators (see AggregateParallel) and the memory footprint is
// O(d + block) instead of O(n).
func (l *LocalHash) NewAggregator() Aggregator {
	return &localHashAggregator{l: l}
}

// Variance implements FrequencyOracle: Equation (4),
// Var = (e^eps + d' - 1)^2 / (n (e^eps - 1)^2 (d' - 1)).
func (l *LocalHash) Variance(n int) float64 {
	e := math.Exp(l.eps)
	dp := float64(l.dPrime)
	return (e + dp - 1) * (e + dp - 1) /
		(float64(n) * (e - 1) * (e - 1) * (dp - 1))
}

// lhBlock is how many buffered reports the aggregator folds per kernel
// call. The staged seed/target lanes of one block are 2 * 8 B * lhBlock
// = 8 KiB, small enough to stay cache-resident while CountSupport's
// candidate-value loop sweeps the domain.
const lhBlock = 512

type localHashAggregator struct {
	l      *LocalHash
	n      int
	counts []int // folded per-value support counts, len d
	seeds  []uint64
	ys     []uint64
}

// Add implements Aggregator, buffering the report into the staged
// block and folding a full block through the CountSupport kernel.
func (a *localHashAggregator) Add(rep Report) {
	if rep.Value < 0 || rep.Value >= a.l.dPrime {
		panic("ldp: local hash report outside [0, d')")
	}
	a.seeds = append(a.seeds, uint64(rep.Seed))
	a.ys = append(a.ys, uint64(rep.Value))
	a.n++
	if len(a.seeds) >= lhBlock {
		a.flush()
	}
}

// flush folds the buffered block into the support counts.
func (a *localHashAggregator) flush() {
	if len(a.seeds) == 0 {
		return
	}
	if a.counts == nil {
		a.counts = make([]int, a.l.d)
	}
	a.l.family.CountSupport(a.seeds, a.ys, a.counts)
	a.seeds = a.seeds[:0]
	a.ys = a.ys[:0]
}

// Count implements Aggregator.
func (a *localHashAggregator) Count() int { return a.n }

// Merge implements Aggregator.
func (a *localHashAggregator) Merge(other Aggregator) {
	o, ok := other.(*localHashAggregator)
	if !ok || o.l.d != a.l.d || o.l.dPrime != a.l.dPrime || o.l.p != a.l.p {
		panic("ldp: merging incompatible local-hash aggregators")
	}
	a.flush()
	o.flush()
	if o.counts != nil {
		if a.counts == nil {
			a.counts = make([]int, a.l.d)
		}
		for v, c := range o.counts {
			a.counts[v] += c
		}
	}
	a.n += o.n
	o.counts, o.n = nil, 0
}

// Clone implements Aggregator. The buffered block is flushed first so
// the clone shares no mutable slice with the original.
func (a *localHashAggregator) Clone() Aggregator {
	a.flush()
	c := &localHashAggregator{l: a.l, n: a.n}
	if a.counts != nil {
		c.counts = append([]int(nil), a.counts...)
	}
	return c
}

// Estimates implements Equation (3): the support count of v is
// |{i : H_i(v) = y_i}|; calibration uses p and q = 1/d'.
func (a *localHashAggregator) Estimates() []float64 {
	a.flush()
	counts := a.counts
	if counts == nil {
		counts = make([]int, a.l.d)
	}
	return CalibrateCounts(counts, a.n, a.l.p, 1/float64(a.l.dPrime))
}
