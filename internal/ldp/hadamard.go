package ldp

import (
	"math"

	"shuffledp/internal/hash"
	"shuffledp/internal/rng"
)

// Hadamard is the Hadamard response mechanism ("Had" in §VII-B,
// Acharya et al. 2019). It behaves like local hashing with d' = 2 — each
// user samples a random row a of the D x D Hadamard matrix (D the next
// power of two > d), computes the sign bit H[a, v+1], and reports it
// through binary randomized response — but the server can aggregate all
// reports with one fast Walsh–Hadamard transform in O(D log D) instead of
// O(n*d) hash evaluations.
//
// Values are mapped to columns 1..d (column 0 is the all-ones row and
// carries no information).
type Hadamard struct {
	d   int
	D   int // power-of-two Hadamard order, > d
	eps float64
	p   float64 // probability of reporting the true bit
}

// NewHadamard returns a Hadamard response oracle over domain size d with
// local budget eps.
func NewHadamard(d int, eps float64) *Hadamard {
	validateDomain(d)
	validateEpsilon(eps)
	e := math.Exp(eps)
	return &Hadamard{
		d:   d,
		D:   hash.NextPow2(d + 1),
		eps: eps,
		p:   e / (e + 1),
	}
}

// Name implements FrequencyOracle.
func (h *Hadamard) Name() string { return "Had" }

// Domain implements FrequencyOracle.
func (h *Hadamard) Domain() int { return h.d }

// EpsilonLocal implements FrequencyOracle.
func (h *Hadamard) EpsilonLocal() float64 { return h.eps }

// Order returns the Hadamard matrix order D (a power of two).
func (h *Hadamard) Order() int { return h.D }

// Randomize implements FrequencyOracle. Report.Seed is the sampled row
// index; Report.Value is the (possibly flipped) sign bit encoded as
// 1 for +1 and 0 for -1.
func (h *Hadamard) Randomize(v int, r *rng.Rand) Report {
	validateValue(v, h.d)
	row := uint32(r.Uint64n(uint64(h.D)))
	bit := hash.HadamardEntry(uint64(row), uint64(v+1)) // column v+1
	if !r.Bernoulli(h.p) {
		bit = -bit
	}
	val := 0
	if bit == 1 {
		val = 1
	}
	return Report{Seed: row, Value: val}
}

// NewAggregator implements FrequencyOracle.
func (h *Hadamard) NewAggregator() Aggregator {
	return &hadamardAggregator{h: h, rowSums: make([]float64, h.D)}
}

// Variance implements FrequencyOracle. Hadamard response is local
// hashing with d' = 2, so Equation (4) gives
// Var = (e^eps + 1)^2 / (n (e^eps - 1)^2).
func (h *Hadamard) Variance(n int) float64 {
	e := math.Exp(h.eps)
	return (e + 1) * (e + 1) / (float64(n) * (e - 1) * (e - 1))
}

type hadamardAggregator struct {
	h       *Hadamard
	rowSums []float64 // sum of reported signs per sampled row
	n       int
}

// Add implements Aggregator.
func (a *hadamardAggregator) Add(rep Report) {
	if int(rep.Seed) >= a.h.D {
		panic("ldp: Hadamard row out of range")
	}
	sign := -1.0
	if rep.Value == 1 {
		sign = 1.0
	}
	a.rowSums[rep.Seed] += sign
	a.n++
}

// Count implements Aggregator.
func (a *hadamardAggregator) Count() int { return a.n }

// Merge implements Aggregator. Row sums are sums of ±1 terms — exact
// integers in float64 — so merging is bit-exact in any order.
func (a *hadamardAggregator) Merge(other Aggregator) {
	o, ok := other.(*hadamardAggregator)
	if !ok || o.h.D != a.h.D || o.h.p != a.h.p {
		panic("ldp: merging incompatible Hadamard aggregators")
	}
	for row, s := range o.rowSums {
		a.rowSums[row] += s
	}
	a.n += o.n
	o.rowSums, o.n = nil, 0
}

// Clone implements Aggregator.
func (a *hadamardAggregator) Clone() Aggregator {
	return &hadamardAggregator{
		h:       a.h,
		rowSums: append([]float64(nil), a.rowSums...),
		n:       a.n,
	}
}

// Estimates aggregates with one FWHT: the transform of the per-row sign
// sums evaluates, for every column c, the statistic
// S_c = sum_i y_i * H[a_i, c]; then f~_v = D/n * S_{v+1} / (2p - 1).
func (a *hadamardAggregator) Estimates() []float64 {
	est := make([]float64, a.h.d)
	if a.n == 0 {
		return est
	}
	spectrum := append([]float64(nil), a.rowSums...)
	hash.FWHT(spectrum)
	// E[y_i * H[a_i, c]] = (2p-1) * 1{c = v_i+1} over a uniform row a_i,
	// so E[S_{v+1}] = n_v (2p-1) and dividing by n(2p-1) is unbiased.
	scale := 1 / (float64(a.n) * (2*a.h.p - 1))
	for v := 0; v < a.h.d; v++ {
		est[v] = spectrum[v+1] * scale
	}
	return est
}
