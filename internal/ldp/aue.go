package ldp

import (
	"math"

	"shuffledp/internal/rng"
)

// AUE is the "appended unary encoding" mechanism of Balcer & Cheu
// (§IV-B4, [8]): each user submits their exact one-hot vector and, for
// every location independently, extra increments with total expectation
// gamma = 200 ln(4/delta) / (epsC^2 n). The noise increments from all
// users form the privacy blanket; the report itself is NOT locally
// private (EpsilonLocal returns 0), only the shuffled sum satisfies
// (epsC, delta)-DP.
//
// When gamma <= 1 each user adds one Bernoulli(gamma) increment per
// location (the paper's description). When n is too small for that
// (gamma > 1), the mechanism generalizes to ceil(gamma) independent
// Bernoulli(gamma/ceil(gamma)) increments: the per-location blanket is
// then Bin(n*rounds, gamma/rounds) with the same mean n*gamma, so the
// Theorem 1 guarantee — which depends only on that product — is
// preserved.
//
// Unlike the other oracles, AUE is parameterized directly by the central
// budget: NewAUE(d, epsC, delta, n).
type AUE struct {
	d      int
	epsC   float64
	delta  float64
	n      int
	gamma  float64 // expected increments per location per user
	rounds int     // independent Bernoulli rounds per location
	prob   float64 // per-round probability (gamma / rounds)
}

// NewAUE returns the Balcer–Cheu mechanism for n users targeting
// (epsC, delta)-DP after shuffling.
func NewAUE(d int, epsC, delta float64, n int) *AUE {
	validateDomain(d)
	validateEpsilon(epsC)
	if delta <= 0 || delta >= 1 {
		panic("ldp: delta must be in (0, 1)")
	}
	if n <= 0 {
		panic("ldp: AUE requires n > 0")
	}
	gamma := 200 * math.Log(4/delta) / (epsC * epsC * float64(n))
	rounds := 1
	if gamma > 1 {
		rounds = int(math.Ceil(gamma))
	}
	return &AUE{
		d: d, epsC: epsC, delta: delta, n: n,
		gamma:  gamma,
		rounds: rounds,
		prob:   gamma / float64(rounds),
	}
}

// Name implements FrequencyOracle.
func (a *AUE) Name() string { return "AUE" }

// Domain implements FrequencyOracle.
func (a *AUE) Domain() int { return a.d }

// EpsilonLocal implements FrequencyOracle; AUE is not an LDP protocol
// (§IV-B4), so the local budget is reported as 0 (infinite disclosure:
// the true one-hot vector is always included).
func (a *AUE) EpsilonLocal() float64 { return 0 }

// EpsilonCentral returns the central budget the mechanism targets.
func (a *AUE) EpsilonCentral() float64 { return a.epsC }

// Gamma returns the expected blanket increments per location per user.
func (a *AUE) Gamma() float64 { return a.gamma }

// Rounds returns the number of independent increment rounds (1 unless
// gamma > 1).
func (a *AUE) Rounds() int { return a.rounds }

// Randomize implements FrequencyOracle. Bits[j] holds the number of
// increments the user contributes at location j: the true one-hot bit
// plus the blanket increments.
func (a *AUE) Randomize(v int, r *rng.Rand) Report {
	validateValue(v, a.d)
	bits := make([]byte, a.d)
	bits[v] = 1
	for j := range bits {
		for k := 0; k < a.rounds; k++ {
			if r.Bernoulli(a.prob) && bits[j] < 255 {
				bits[j]++
			}
		}
	}
	return Report{Bits: bits}
}

// NewAggregator implements FrequencyOracle.
func (a *AUE) NewAggregator() Aggregator {
	return &aueAggregator{a: a, counts: make([]int, a.d)}
}

// Variance implements FrequencyOracle: the blanket contributes
// Bin(n*rounds, prob) per location, so
// Var[f~_v] = rounds * prob * (1-prob) / n = gamma (1 - gamma/rounds)/n.
func (a *AUE) Variance(n int) float64 {
	return a.gamma * (1 - a.prob) / float64(n)
}

type aueAggregator struct {
	a      *AUE
	counts []int
	n      int
}

// Add implements Aggregator.
func (g *aueAggregator) Add(rep Report) {
	if len(rep.Bits) != g.a.d {
		panic("ldp: AUE report has wrong length")
	}
	for j, b := range rep.Bits {
		g.counts[j] += int(b)
	}
	g.n++
}

// Count implements Aggregator.
func (g *aueAggregator) Count() int { return g.n }

// Merge implements Aggregator.
func (g *aueAggregator) Merge(other Aggregator) {
	o, ok := other.(*aueAggregator)
	if !ok || o.a.d != g.a.d || o.a.gamma != g.a.gamma {
		panic("ldp: merging incompatible AUE aggregators")
	}
	for v, c := range o.counts {
		g.counts[v] += c
	}
	g.n += o.n
	o.counts, o.n = nil, 0
}

// Clone implements Aggregator.
func (g *aueAggregator) Clone() Aggregator {
	return &aueAggregator{a: g.a, counts: append([]int(nil), g.counts...), n: g.n}
}

// Estimates subtracts the expected blanket mass: f~_v = C_v/n - gamma.
func (g *aueAggregator) Estimates() []float64 {
	est := make([]float64, g.a.d)
	if g.n == 0 {
		return est
	}
	nf := float64(g.n)
	for v, c := range g.counts {
		est[v] = float64(c)/nf - g.a.gamma
	}
	return est
}
