package ldp

import (
	"math"
	"testing"

	"shuffledp/internal/rng"
)

func TestOLHChoosesOptimalDPrime(t *testing.T) {
	// d' = round(e^eps) + 1 per Wang et al. 2017.
	cases := map[float64]int{
		1: 4,  // e ~ 2.72 -> 3 + 1
		2: 8,  // e^2 ~ 7.39 -> 7+1
		3: 21, // e^3 ~ 20.1 -> 20+1
	}
	for eps, want := range cases {
		o := NewOLH(10000, eps)
		if o.DPrime() != want {
			t.Errorf("eps=%v: d'=%d, want %d", eps, o.DPrime(), want)
		}
	}
}

func TestOLHDPrimeClampedToDomain(t *testing.T) {
	o := NewOLH(3, 4) // e^4+1 ~ 55 > d
	if o.DPrime() != 3 {
		t.Errorf("d' = %d, want clamp to 3", o.DPrime())
	}
}

func TestSOLHExplicitDPrime(t *testing.T) {
	s := NewSOLH(1000, 45, 1.2)
	if s.Name() != "SOLH" || s.DPrime() != 45 || s.Domain() != 1000 {
		t.Fatalf("unexpected SOLH config: %s d'=%d d=%d", s.Name(), s.DPrime(), s.Domain())
	}
	if s.EpsilonLocal() != 1.2 {
		t.Fatalf("eps = %v", s.EpsilonLocal())
	}
}

func TestLocalHashPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"dprime": func() { NewSOLH(10, 1, 1) },
		"eps":    func() { NewSOLH(10, 4, 0) },
		"domain": func() { NewSOLH(1, 4, 1) },
		"value":  func() { NewSOLH(10, 4, 1).Randomize(-1, rng.New(1)) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestLocalHashReportInRange(t *testing.T) {
	s := NewSOLH(100, 7, 1)
	r := rng.New(5)
	for i := 0; i < 1000; i++ {
		rep := s.Randomize(i%100, r)
		if rep.Value < 0 || rep.Value >= 7 {
			t.Fatalf("report value %d outside [0,7)", rep.Value)
		}
	}
}

// The core LDP property exercised empirically: conditioned on the chosen
// hash seed, the report equals H(v) with probability p and any other
// bucket with probability (1-p)/(d'-1).
func TestLocalHashTruthfulProbability(t *testing.T) {
	s := NewSOLH(50, 4, 1)
	r := rng.New(6)
	const trials = 200000
	match := 0
	for i := 0; i < trials; i++ {
		rep := s.Randomize(17, r)
		if s.family.Hash(uint64(rep.Seed), 17) == rep.Value {
			match++
		}
	}
	got := float64(match) / trials
	if math.Abs(got-s.P()) > 0.005 {
		t.Errorf("truthful rate %v, want %v", got, s.P())
	}
}

func TestLocalHashEstimatesUnbiased(t *testing.T) {
	const d = 20
	s := NewSOLH(d, 6, 2)
	r := rng.New(7)
	values := make([]int, 0, 30000)
	for i := 0; i < 15000; i++ {
		values = append(values, 0)
	}
	for i := 0; i < 15000; i++ {
		values = append(values, 1+i%(d-1))
	}
	truth := TrueFrequencies(values, d)
	est := EstimateAll(s, values, r)
	tol := 5 * math.Sqrt(s.Variance(len(values)))
	for v := 0; v < d; v++ {
		if math.Abs(est[v]-truth[v]) > tol {
			t.Errorf("value %d: est %v, truth %v (tol %v)", v, est[v], truth[v], tol)
		}
	}
}

func TestLocalHashVarianceFormula(t *testing.T) {
	// Equation (4) at eps=ln(3), d'=3: (3+2)^2/(n*4*2) = 25/(8n).
	s := NewSOLH(100, 3, math.Log(3))
	want := 25.0 / (8 * 1000)
	if got := s.Variance(1000); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestOLHVarianceBeatsGRRLargeDomain(t *testing.T) {
	// §IV-B3: GRR degrades with d; OLH should win for large d.
	const d, n = 1000, 100000
	eps := 1.0
	if NewOLH(d, eps).Variance(n) >= NewGRR(d, eps).Variance(n) {
		t.Error("OLH variance should beat GRR at d=1000")
	}
}

func TestHadamardReportAggregation(t *testing.T) {
	const d = 10
	h := NewHadamard(d, 2)
	if h.Order() != 16 {
		t.Fatalf("Order = %d, want 16", h.Order())
	}
	r := rng.New(8)
	values := make([]int, 0, 40000)
	for i := 0; i < 20000; i++ {
		values = append(values, 4)
	}
	for i := 0; i < 20000; i++ {
		values = append(values, i%d)
	}
	truth := TrueFrequencies(values, d)
	est := EstimateAll(h, values, r)
	tol := 5 * math.Sqrt(h.Variance(len(values)))
	for v := 0; v < d; v++ {
		if math.Abs(est[v]-truth[v]) > tol {
			t.Errorf("value %d: est %v, truth %v (tol %v)", v, est[v], truth[v], tol)
		}
	}
}

func TestHadamardVarianceMatchesLocalHashD2(t *testing.T) {
	// Had is local hashing with d' = 2 (§VII-A): variances must agree.
	h := NewHadamard(100, 1.3)
	lh := NewSOLH(100, 2, 1.3)
	if math.Abs(h.Variance(5000)-lh.Variance(5000)) > 1e-12 {
		t.Errorf("Had %v vs LH(d'=2) %v", h.Variance(5000), lh.Variance(5000))
	}
}

func TestHadamardEmptyAggregator(t *testing.T) {
	agg := NewHadamard(4, 1).NewAggregator()
	for _, e := range agg.Estimates() {
		if e != 0 {
			t.Fatal("empty aggregator should estimate zeros")
		}
	}
	if agg.Count() != 0 {
		t.Fatal("empty aggregator count != 0")
	}
}
