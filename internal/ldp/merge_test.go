package ldp

import (
	"fmt"
	"testing"

	"shuffledp/internal/rng"
)

// mergeOracles is the full oracle lineup the merge property must hold
// for.
func mergeOracles() map[string]FrequencyOracle {
	return map[string]FrequencyOracle{
		"GRR":   NewGRR(32, 1.5),
		"OLH":   NewOLH(64, 2),
		"SOLH":  NewSOLH(64, 7, 1.2),
		"Had":   NewHadamard(30, 1),
		"RAP":   NewRAP(24, 1),
		"RAP_R": NewRAPR(24, 0.8),
		"OUE":   NewOUE(24, 1),
		"AUE":   NewAUE(16, 1, 1e-6, 4000),
	}
}

// The Merge contract: N sharded aggregators merged together produce
// bit-identical Estimates to one sequential aggregator over the same
// reports — for every oracle, at shard counts that do and do not divide
// the report count, including empty shards.
func TestMergeMatchesSequential(t *testing.T) {
	for name, fo := range mergeOracles() {
		t.Run(name, func(t *testing.T) {
			const n = 4000
			r := rng.New(42)
			d := fo.Domain()
			reports := make([]Report, n)
			for i := range reports {
				reports[i] = fo.Randomize(i%d, r)
			}
			seq := fo.NewAggregator()
			for _, rep := range reports {
				seq.Add(rep)
			}
			want := seq.Estimates()
			for _, shards := range []int{1, 2, 3, 8, 64} {
				aggs := make([]Aggregator, shards+1) // +1: an empty shard
				for i := range aggs {
					aggs[i] = fo.NewAggregator()
				}
				for i, rep := range reports {
					aggs[i%shards].Add(rep)
				}
				root := aggs[0]
				for _, a := range aggs[1:] {
					root.Merge(a)
				}
				if root.Count() != n {
					t.Fatalf("shards=%d: merged count %d, want %d", shards, root.Count(), n)
				}
				got := root.Estimates()
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("shards=%d: estimate[%d] = %v, want bit-identical %v",
							shards, v, got[v], want[v])
					}
				}
			}
		})
	}
}

// Merging must drain the donor and stay usable afterwards: adding more
// reports to the merged aggregator equals a sequential pass over the
// concatenation.
func TestMergeThenAdd(t *testing.T) {
	fo := NewSOLH(40, 5, 1)
	r := rng.New(7)
	reports := make([]Report, 1500)
	for i := range reports {
		reports[i] = fo.Randomize(i%40, r)
	}
	a := fo.NewAggregator()
	b := fo.NewAggregator()
	for _, rep := range reports[:600] {
		a.Add(rep)
	}
	for _, rep := range reports[600:1000] {
		b.Add(rep)
	}
	a.Merge(b)
	if b.Count() != 0 {
		t.Fatalf("donor not drained: count %d", b.Count())
	}
	for _, rep := range reports[1000:] {
		a.Add(rep)
	}
	seq := fo.NewAggregator()
	for _, rep := range reports {
		seq.Add(rep)
	}
	want := seq.Estimates()
	got := a.Estimates()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("estimate[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

// The Clone contract: the clone reports bit-identical Estimates, and
// neither draining the clone through Merge nor adding further reports
// to either side leaks into the other — for every oracle, including
// aggregators that have already been merged into and mid-block local
// hash aggregators (buffered, unflushed reports).
func TestCloneIsIndependentAndBitIdentical(t *testing.T) {
	for name, fo := range mergeOracles() {
		t.Run(name, func(t *testing.T) {
			const n = 1000
			r := rng.New(17)
			d := fo.Domain()
			agg := fo.NewAggregator()
			for i := 0; i < n; i++ {
				agg.Add(fo.Randomize(i%d, r))
			}
			want := agg.Estimates()
			clone := agg.Clone()
			if clone.Count() != n {
				t.Fatalf("clone count %d, want %d", clone.Count(), n)
			}
			got := clone.Estimates()
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("clone estimate[%d] = %v, want bit-identical %v", v, got[v], want[v])
				}
			}
			// Drain the clone into a sink; the original must be untouched.
			sink := fo.NewAggregator()
			sink.Merge(clone)
			after := agg.Estimates()
			for v := range want {
				if after[v] != want[v] {
					t.Fatalf("draining the clone mutated the original at %d: %v != %v", v, after[v], want[v])
				}
			}
			// Add to the original; a fresh clone of the sink must not move.
			frozen := sink.Clone().Estimates()
			agg.Add(fo.Randomize(0, r))
			if agg.Count() != n+1 {
				t.Fatalf("original count %d after add, want %d", agg.Count(), n+1)
			}
			still := sink.Estimates()
			for v := range frozen {
				if still[v] != frozen[v] {
					t.Fatalf("adding to the original mutated the merged clone at %d", v)
				}
			}
		})
	}
}

// An empty aggregator must clone without materializing lazily-allocated
// state (the local-hash counts slice is nil until the first flush).
func TestCloneEmpty(t *testing.T) {
	for name, fo := range mergeOracles() {
		t.Run(name, func(t *testing.T) {
			c := fo.NewAggregator().Clone()
			if c.Count() != 0 {
				t.Fatalf("empty clone count %d", c.Count())
			}
			if got := c.Estimates(); len(got) != fo.Domain() {
				t.Fatalf("empty clone estimates length %d, want %d", len(got), fo.Domain())
			}
		})
	}
}

func TestMergeIncompatiblePanics(t *testing.T) {
	cases := map[string][2]Aggregator{
		"cross-oracle": {NewGRR(8, 1).NewAggregator(), NewOUE(8, 1).NewAggregator()},
		"grr-domain":   {NewGRR(8, 1).NewAggregator(), NewGRR(9, 1).NewAggregator()},
		"lh-dprime":    {NewSOLH(16, 4, 1).NewAggregator(), NewSOLH(16, 5, 1).NewAggregator()},
		"had-order":    {NewHadamard(10, 1).NewAggregator(), NewHadamard(20, 1).NewAggregator()},
		"unary-flip":   {NewRAP(8, 1).NewAggregator(), NewRAP(8, 2).NewAggregator()},
		"aue-gamma":    {NewAUE(8, 1, 1e-6, 100).NewAggregator(), NewAUE(8, 2, 1e-6, 100).NewAggregator()},
	}
	for name, pair := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			pair[0].Merge(pair[1])
		})
	}
}

// The parallel engine must be a pure function of (oracle, values, seed):
// every worker count gives identical reports and identical estimates.
func TestParallelEngineDeterministicAcrossWorkers(t *testing.T) {
	for name, fo := range mergeOracles() {
		t.Run(name, func(t *testing.T) {
			d := fo.Domain()
			n := 3*ShardSize + 117 // several shards plus a ragged tail
			values := make([]int, n)
			for i := range values {
				values[i] = (i * 7) % d
			}
			const seed = 99
			baseReports := RandomizeParallel(fo, values, seed, 1)
			base := AggregateParallel(fo, baseReports, 1).Estimates()
			for _, workers := range []int{2, 3, 8} {
				reports := RandomizeParallel(fo, values, seed, workers)
				for i := range reports {
					if reports[i].Seed != baseReports[i].Seed || reports[i].Value != baseReports[i].Value {
						t.Fatalf("workers=%d: report %d differs", workers, i)
					}
				}
				got := AggregateParallel(fo, reports, workers).Estimates()
				for v := range base {
					if got[v] != base[v] {
						t.Fatalf("workers=%d: estimate[%d] = %v, want bit-identical %v",
							workers, v, got[v], base[v])
					}
				}
			}
		})
	}
}

// EstimateParallel with one worker must agree with what a sequential
// aggregator computes from the same substream-randomized reports.
func TestEstimateParallelMatchesSequentialAggregation(t *testing.T) {
	fo := NewSOLH(50, 6, 1.5)
	values := make([]int, 2*ShardSize+33)
	for i := range values {
		values[i] = i % 50
	}
	reports := RandomizeParallel(fo, values, 5, 4)
	seq := fo.NewAggregator()
	for _, rep := range reports {
		seq.Add(rep)
	}
	want := seq.Estimates()
	got := EstimateParallel(fo, values, 5, 4)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("estimate[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

// Worker panics (out-of-range values) must surface on the caller.
func TestRandomizeParallelPropagatesPanic(t *testing.T) {
	fo := NewGRR(8, 1)
	values := make([]int, 2*ShardSize)
	values[ShardSize+5] = 8 // out of range
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandomizeParallel(fo, values, 1, 4)
}

// The reworked SOLH aggregator must agree with the naive per-pair hash
// loop of the seed implementation across block boundaries (n below, at,
// and above lhBlock multiples).
func TestLocalHashAggregatorMatchesNaive(t *testing.T) {
	fo := NewSOLH(37, 5, 1)
	r := rng.New(11)
	for _, n := range []int{0, 1, lhBlock - 1, lhBlock, lhBlock + 1, 3*lhBlock + 17} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			reports := make([]Report, n)
			for i := range reports {
				reports[i] = fo.Randomize(i%37, r)
			}
			agg := fo.NewAggregator()
			for _, rep := range reports {
				agg.Add(rep)
			}
			counts := make([]int, 37)
			for _, rep := range reports {
				for v := 0; v < 37; v++ {
					if fo.family.Hash(uint64(rep.Seed), uint64(v)) == rep.Value {
						counts[v]++
					}
				}
			}
			want := CalibrateCounts(counts, n, fo.P(), 1/float64(fo.DPrime()))
			got := agg.Estimates()
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("estimate[%d] = %v, want %v", v, got[v], want[v])
				}
			}
			// Estimates must be repeatable and survive further Adds.
			again := agg.Estimates()
			for v := range got {
				if again[v] != got[v] {
					t.Fatal("Estimates not repeatable")
				}
			}
		})
	}
}
