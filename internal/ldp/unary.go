package ldp

import (
	"math"

	"shuffledp/internal/rng"
)

// UnaryEncoding is the symmetric unary-encoding (basic RAPPOR) family of
// §IV-B1. The value v becomes a length-d bit vector B with B[v] = 1, and
// every bit is flipped independently with probability flip.
//
// Two instantiations appear in the paper:
//
//   - RAP: flip = 1/(e^{eps/2} + 1), satisfying eps-LDP under the
//     replacement definition (two values differ in two bit positions, so
//     the budget is halved per bit). Use NewRAP.
//   - RAP_R (Erlingsson et al. 2020): flip = 1/(e^eps + 1), satisfying
//     eps-removal-LDP, which equals 2*eps replacement LDP (§IV-B4). Use
//     NewRAPR.
type UnaryEncoding struct {
	name string
	d    int
	eps  float64 // replacement-LDP budget the mechanism is labeled with
	flip float64 // per-bit flip probability
}

// NewRAP returns the symmetric unary-encoding oracle satisfying eps-LDP
// (replacement).
func NewRAP(d int, eps float64) *UnaryEncoding {
	validateDomain(d)
	validateEpsilon(eps)
	return &UnaryEncoding{
		name: "RAP",
		d:    d,
		eps:  eps,
		flip: 1 / (math.Exp(eps/2) + 1),
	}
}

// NewRAPR returns the removal-LDP unary-encoding oracle with budget eps:
// each bit keeps the full budget. As §IV-B4 notes, it is 2*eps
// replacement-LDP, so it matches NewRAP(d, 2*eps) exactly.
func NewRAPR(d int, eps float64) *UnaryEncoding {
	validateDomain(d)
	validateEpsilon(eps)
	return &UnaryEncoding{
		name: "RAP_R",
		d:    d,
		eps:  eps,
		flip: 1 / (math.Exp(eps) + 1),
	}
}

// Name implements FrequencyOracle.
func (u *UnaryEncoding) Name() string { return u.name }

// Domain implements FrequencyOracle.
func (u *UnaryEncoding) Domain() int { return u.d }

// EpsilonLocal implements FrequencyOracle. For RAP_R this is the
// equivalent replacement-LDP budget (2x the removal budget).
func (u *UnaryEncoding) EpsilonLocal() float64 {
	if u.name == "RAP_R" {
		return 2 * u.eps
	}
	return u.eps
}

// Flip returns the per-bit flip probability.
func (u *UnaryEncoding) Flip() float64 { return u.flip }

// Randomize implements FrequencyOracle: one perturbed bit per domain
// element.
func (u *UnaryEncoding) Randomize(v int, r *rng.Rand) Report {
	validateValue(v, u.d)
	bits := make([]byte, u.d)
	for j := range bits {
		b := byte(0)
		if j == v {
			b = 1
		}
		if r.Bernoulli(u.flip) {
			b = 1 - b
		}
		bits[j] = b
	}
	return Report{Bits: bits}
}

// NewAggregator implements FrequencyOracle.
func (u *UnaryEncoding) NewAggregator() Aggregator {
	return &unaryAggregator{u: u, counts: make([]int, u.d)}
}

// Variance implements FrequencyOracle. With p = 1-flip and q = flip the
// calibrated estimator has Var = q(1-q)/(n (p-q)^2), which for RAP
// reduces to e^{eps/2} / (n (e^{eps/2}-1)^2), the expression used in
// Proposition 5.
func (u *UnaryEncoding) Variance(n int) float64 {
	p, q := 1-u.flip, u.flip
	return q * (1 - q) / (float64(n) * (p - q) * (p - q))
}

type unaryAggregator struct {
	u      *UnaryEncoding
	counts []int
	n      int
}

// Add implements Aggregator.
func (a *unaryAggregator) Add(rep Report) {
	if len(rep.Bits) != a.u.d {
		panic("ldp: unary report has wrong length")
	}
	for j, b := range rep.Bits {
		if b == 1 {
			a.counts[j]++
		}
	}
	a.n++
}

// Count implements Aggregator.
func (a *unaryAggregator) Count() int { return a.n }

// Merge implements Aggregator.
func (a *unaryAggregator) Merge(other Aggregator) {
	o, ok := other.(*unaryAggregator)
	if !ok || o.u.d != a.u.d || o.u.flip != a.u.flip {
		panic("ldp: merging incompatible unary aggregators")
	}
	for v, c := range o.counts {
		a.counts[v] += c
	}
	a.n += o.n
	o.counts, o.n = nil, 0
}

// Clone implements Aggregator.
func (a *unaryAggregator) Clone() Aggregator {
	return &unaryAggregator{u: a.u, counts: append([]int(nil), a.counts...), n: a.n}
}

// Estimates implements Aggregator: calibration with p = 1 - flip and
// q = flip.
func (a *unaryAggregator) Estimates() []float64 {
	return CalibrateCounts(a.counts, a.n, 1-a.u.flip, a.u.flip)
}
