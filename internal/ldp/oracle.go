// Package ldp implements the locally-differentially-private frequency
// oracles the paper builds on (§II-B) and contributes (§IV): generalized
// randomized response (GRR), optimized local hashing (OLH), the paper's
// Shuffler-Optimal Local Hash (SOLH), Hadamard response, symmetric unary
// encoding (basic RAPPOR, "RAP"), the removal-LDP variant (RAP_R), and
// the appended-unary-encoding shuffle mechanism of Balcer–Cheu ("AUE").
//
// Every oracle implements FrequencyOracle: users call Randomize, the
// server feeds the reports into an Aggregator and reads unbiased
// frequency estimates back. The package also provides the analytic
// variances of Wang et al. (USENIX Security 2017) that §IV-B3 builds on,
// and exact fast-path simulators used by the experiment harness to
// reproduce the paper's figures at n ~ 10^6 without materializing every
// report.
package ldp

import (
	"fmt"

	"shuffledp/internal/rng"
)

// Report is one randomized user report. Which fields are meaningful
// depends on the oracle:
//
//   - GRR: Value (a member of the value domain [0, d)).
//   - OLH / SOLH: Seed (the sampled hash function) and Value in [0, d').
//   - Hadamard: Seed (the sampled Hadamard row) and Value in {0, 1}.
//   - RAP / RAP_R / AUE: Bits (one bit — or increment count for AUE —
//     per domain element).
type Report struct {
	// Seed selects the user's random hash function (OLH/SOLH) or
	// Hadamard row index. The paper's prototype uses 4-byte seeds
	// (§VII-D); we keep 32 bits so a GRR/SOLH report packs into one
	// 64-bit word for secret sharing (see ReportWord).
	Seed uint32
	// Value is the perturbed report in the oracle's output domain.
	Value int
	// Bits is the perturbed vector for unary-encoding oracles.
	Bits []byte
}

// FrequencyOracle is the common interface of all mechanisms. A
// FrequencyOracle is immutable and safe for concurrent use; all
// randomness comes from the *rng.Rand passed in.
type FrequencyOracle interface {
	// Name returns the short method name used in the paper's figures
	// (e.g. "GRR", "SOLH", "RAP").
	Name() string
	// Domain returns d, the size of the users' value domain.
	Domain() int
	// EpsilonLocal returns the local privacy parameter epsilon_l the
	// mechanism satisfies (0 for AUE, which is not an LDP protocol —
	// see §IV-B4).
	EpsilonLocal() float64
	// Randomize perturbs a user's true value v in [0, Domain()).
	Randomize(v int, r *rng.Rand) Report
	// NewAggregator returns an empty server-side aggregator.
	NewAggregator() Aggregator
	// Variance returns the analytic per-value estimation variance for n
	// users with the mechanism's parameters, assuming rare values
	// (f_v ~ 0), as in §IV-B3.
	Variance(n int) float64
}

// Aggregator accumulates reports and produces unbiased frequency
// estimates. Aggregators are not safe for concurrent use; for parallel
// aggregation give each worker its own aggregator and combine them with
// Merge (see AggregateParallel).
type Aggregator interface {
	// Add ingests one report.
	Add(rep Report)
	// Count returns the number of reports ingested.
	Count() int
	// Estimates returns the unbiased estimate of every value's
	// frequency (summing to ~1). The slice is freshly allocated.
	Estimates() []float64
	// Merge folds all reports ingested by other into this aggregator,
	// leaving other drained (its further use is undefined). Both
	// aggregators must come from the same oracle; Merge panics on a
	// type or parameter mismatch. Because every aggregator accumulates
	// exactly representable integer statistics, a merged aggregator's
	// Estimates are bit-identical to a sequential aggregator fed the
	// same reports in any order.
	Merge(other Aggregator)
	// Clone returns an independent deep copy: the clone reports the
	// same Count and bit-identical Estimates, and mutating (Add,
	// Merge) either aggregator never affects the other. Clone is what
	// lets a sealed epoch be merged into a sliding-window estimate
	// without draining the epoch's own state (see internal/service).
	Clone() Aggregator
	// MarshalBinary serializes the aggregator's accumulated state into
	// the stable versioned layout of marshal.go (implementing
	// encoding.BinaryMarshaler), so epoch roots survive a restart of
	// the durable service (internal/store).
	MarshalBinary() ([]byte, error)
	// UnmarshalBinary replaces the receiver's state with a blob
	// written by MarshalBinary under the same oracle parameters
	// (implementing encoding.BinaryUnmarshaler). The restored
	// aggregator's Estimates are bit-identical to the marshaled one's;
	// a blob from a different oracle, parameterization, or a newer
	// format version is refused with an error (never a panic), the
	// latter wrapping ErrStateVersion.
	UnmarshalBinary(data []byte) error
}

// EstimateAll is a convenience that randomizes every value in values and
// returns the resulting frequency estimates.
func EstimateAll(fo FrequencyOracle, values []int, r *rng.Rand) []float64 {
	agg := fo.NewAggregator()
	for _, v := range values {
		agg.Add(fo.Randomize(v, r))
	}
	return agg.Estimates()
}

// Histogram counts occurrences of each value in [0, d). It panics if a
// value is out of range — user input must be validated upstream.
func Histogram(values []int, d int) []int {
	h := make([]int, d)
	for _, v := range values {
		if v < 0 || v >= d {
			panic(fmt.Sprintf("ldp: value %d outside domain [0, %d)", v, d))
		}
		h[v]++
	}
	return h
}

// TrueFrequencies returns the exact frequency vector of values over [0, d).
func TrueFrequencies(values []int, d int) []float64 {
	h := Histogram(values, d)
	f := make([]float64, d)
	if len(values) == 0 {
		return f
	}
	n := float64(len(values))
	for v, c := range h {
		f[v] = float64(c) / n
	}
	return f
}

func validateDomain(d int) {
	if d < 2 {
		panic("ldp: domain size must be >= 2")
	}
}

func validateEpsilon(eps float64) {
	if eps <= 0 {
		panic("ldp: epsilon must be > 0")
	}
}

func validateValue(v, d int) {
	if v < 0 || v >= d {
		panic(fmt.Sprintf("ldp: value %d outside domain [0, %d)", v, d))
	}
}
