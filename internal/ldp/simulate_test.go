package ldp

import (
	"math"
	"testing"

	"shuffledp/internal/rng"
)

// simulatorMatchesMechanism verifies, for one oracle, that the fast-path
// simulator produces estimates whose mean and per-value variance agree
// with the real mechanism's.
func simulatorMatchesMechanism(t *testing.T, fo FrequencyOracle, seed uint64) {
	t.Helper()
	const n, d = 4000, 0 // d taken from oracle
	dd := fo.Domain()
	values := make([]int, n)
	for i := range values {
		values[i] = i % 3 // mass on values 0..2
	}
	counts := Histogram(values, dd)
	truth := TrueFrequencies(values, dd)

	r := rng.New(seed)
	const trials = 120
	var mechVar, simVar, mechMean, simMean float64
	probe := dd - 1 // a zero-frequency value
	for i := 0; i < trials; i++ {
		me := EstimateAll(fo, values, r)
		se := SimulateEstimates(fo, counts, r)
		mechMean += me[probe]
		simMean += se[probe]
		mechVar += me[probe] * me[probe]
		simVar += se[probe] * se[probe]
	}
	mechMean /= trials
	simMean /= trials
	mechVar = mechVar/trials - mechMean*mechMean
	simVar = simVar/trials - simMean*simMean

	sd := math.Sqrt(fo.Variance(n) / trials)
	if math.Abs(mechMean-truth[probe]) > 6*sd {
		t.Errorf("%s mechanism biased: mean %v", fo.Name(), mechMean)
	}
	if math.Abs(simMean-truth[probe]) > 6*sd {
		t.Errorf("%s simulator biased: mean %v", fo.Name(), simMean)
	}
	// Variances should agree with each other and the analytic value
	// within sampling noise (chi-square spread ~ sqrt(2/trials) ~ 13%).
	want := fo.Variance(n)
	for label, got := range map[string]float64{"mechanism": mechVar, "simulator": simVar} {
		if math.Abs(got-want)/want > 0.6 {
			t.Errorf("%s %s variance %v, analytic %v", fo.Name(), label, got, want)
		}
	}
}

func TestSimulatorMatchesGRR(t *testing.T) {
	simulatorMatchesMechanism(t, NewGRR(8, 1.5), 100)
}

func TestSimulatorMatchesSOLH(t *testing.T) {
	simulatorMatchesMechanism(t, NewSOLH(16, 5, 1.5), 101)
}

func TestSimulatorMatchesRAP(t *testing.T) {
	simulatorMatchesMechanism(t, NewRAP(8, 2), 102)
}

func TestSimulatorMatchesHadamard(t *testing.T) {
	simulatorMatchesMechanism(t, NewHadamard(8, 1.5), 103)
}

func TestSimulatorMatchesAUE(t *testing.T) {
	simulatorMatchesMechanism(t, NewAUE(8, 1, 1e-6, 4000), 104)
}

func TestSimulateLaplaceUnbiasedAndScaled(t *testing.T) {
	counts := []int{500, 300, 200, 0}
	r := rng.New(105)
	const trials = 4000
	eps := 1.0
	n := 1000.0
	var mean, sq float64
	for i := 0; i < trials; i++ {
		est := SimulateLaplace(counts, eps, r)
		mean += est[3]
		sq += est[3] * est[3]
	}
	mean /= trials
	variance := sq/trials - mean*mean
	if math.Abs(mean) > 0.001 {
		t.Errorf("Laplace estimate biased: %v", mean)
	}
	want := 2 * (2 / eps) * (2 / eps) / (n * n) // Var[Lap(2/eps)]/n^2
	if math.Abs(variance-want)/want > 0.2 {
		t.Errorf("Laplace variance %v, want %v", variance, want)
	}
}

func TestBaseEstimates(t *testing.T) {
	est := BaseEstimates(4)
	for _, e := range est {
		if math.Abs(e-0.25) > 1e-15 {
			t.Fatalf("Base = %v", est)
		}
	}
}

func TestMSE(t *testing.T) {
	truth := []float64{0.5, 0.5, 0}
	est := []float64{0.4, 0.6, 0}
	want := (0.01 + 0.01) / 3
	if got := MSE(truth, est); math.Abs(got-want) > 1e-15 {
		t.Fatalf("MSE = %v, want %v", got, want)
	}
	if MSE(nil, nil) != 0 {
		t.Fatal("MSE of empty vectors should be 0")
	}
}

func TestMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MSE([]float64{1}, []float64{1, 2})
}

func TestFakeSupportGRR(t *testing.T) {
	g := NewGRR(10, 1)
	u, beta := FakeSupport(g)
	if math.Abs(u-0.1) > 1e-12 {
		t.Errorf("u = %v, want 0.1", u)
	}
	if math.Abs(beta-0.1) > 1e-12 {
		t.Errorf("beta = %v, want 0.1 (Equation 6)", beta)
	}
}

func TestFakeSupportSOLH(t *testing.T) {
	s := NewSOLH(100, 8, 1)
	u, beta := FakeSupport(s)
	if math.Abs(u-0.125) > 1e-12 {
		t.Errorf("u = %v, want 1/8", u)
	}
	if math.Abs(beta) > 1e-12 {
		t.Errorf("beta = %v, want 0 for uniform-report fakes", beta)
	}
}

func TestFakeSupportPanicsForUnary(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FakeSupport(NewRAP(10, 1))
}

// The PEOS estimator (generalized Equation 6) must stay unbiased with
// fake reports mixed in, for both GRR and SOLH.
func TestSimulateWithFakesUnbiased(t *testing.T) {
	counts := []int{2000, 1000, 500, 500, 0, 0, 0, 0}
	n := 4000
	truth := make([]float64, len(counts))
	for v, c := range counts {
		truth[v] = float64(c) / float64(n)
	}
	for _, fo := range []FrequencyOracle{
		NewGRR(len(counts), 2),
		NewSOLH(len(counts), 4, 2),
	} {
		r := rng.New(106)
		const trials = 3000
		nr := 1000
		means := make([]float64, len(counts))
		for i := 0; i < trials; i++ {
			est := SimulateWithFakes(fo, counts, nr, r)
			for v := range est {
				means[v] += est[v]
			}
		}
		for v := range means {
			means[v] /= trials
			if math.Abs(means[v]-truth[v]) > 0.01 {
				t.Errorf("%s value %d: mean %v, truth %v", fo.Name(), v, means[v], truth[v])
			}
		}
	}
}

func TestSimulateWithFakesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SimulateWithFakes(NewGRR(4, 1), []int{1, 1, 1, 1}, -1, rng.New(1))
}

func TestTopK(t *testing.T) {
	xs := []float64{0.1, 0.9, 0.3, 0.7, 0.5}
	got := TopK(xs, 3)
	want := []int{1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	if len(TopK(xs, 10)) != 5 {
		t.Fatal("TopK should clamp k to len")
	}
}

func TestExpectedMSEFinite(t *testing.T) {
	if v := ExpectedMSE(NewGRR(10, 1), 1000); v <= 0 {
		t.Fatalf("ExpectedMSE = %v", v)
	}
}
