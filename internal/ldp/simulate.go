package ldp

import (
	"math"

	"shuffledp/internal/rng"
)

// Fast-path simulators.
//
// Reproducing Figure 3 takes ~100 trials x 10 budgets x 9 methods at
// n ~ 6*10^5 users; materializing every report would make the harness
// O(trials * budgets * methods * n * d). Instead these helpers sample the
// server's *observed support counts* directly from their exact per-value
// sampling distribution:
//
//	C_v = Bin(n_v, p) + Bin(n - n_v, q)
//
// where p is the probability a report supports the reporter's own value
// and q the probability it supports any other fixed value. The counts
// are sampled independently across v; the true joint distribution has
// (mild, negative) cross-value correlation, but the expected MSE —
// the metric in every figure — depends only on the per-value marginals,
// which are exact.
//
// Each oracle's (p, q) pair:
//
//	GRR      p = e^eps/(e^eps+d-1)        q = 1/(e^eps+d-1)
//	OLH/SOLH p = e^eps/(e^eps+d'-1)       q = 1/d'
//	Had      handled via signed counts (see SimulateHadamard)
//	RAP(_R)  p = 1-flip                   q = flip
//	AUE      handled additively (SimulateAUE)

// SupportProbabilities returns (p, q) for a counts-based oracle, or
// ok=false for oracles without the two-probability structure (AUE).
func SupportProbabilities(fo FrequencyOracle) (p, q float64, ok bool) {
	switch o := fo.(type) {
	case *GRR:
		return o.p, o.q, true
	case *LocalHash:
		return o.p, 1 / float64(o.dPrime), true
	case *Hadamard:
		// Signed reports; mapped to a support-count view where
		// "support" means the report sign matches H[a, v+1]:
		// own value p, other values 1/2 by row uniformity.
		return o.p, 0.5, true
	case *UnaryEncoding:
		return 1 - o.flip, o.flip, true
	case *OUE:
		return o.p, o.q, true
	default:
		return 0, 0, false
	}
}

// SimulateEstimates draws one sample of the frequency-estimate vector a
// server would compute from n randomized reports whose true histogram is
// trueCounts (length d, summing to n). It is exact in each per-value
// marginal. Works for every oracle in this package.
func SimulateEstimates(fo FrequencyOracle, trueCounts []int, r *rng.Rand) []float64 {
	if aue, isAUE := fo.(*AUE); isAUE {
		return SimulateAUE(aue, trueCounts, r)
	}
	p, q, ok := SupportProbabilities(fo)
	if !ok {
		panic("ldp: no simulator for oracle " + fo.Name())
	}
	n := 0
	for _, c := range trueCounts {
		n += c
	}
	est := make([]float64, len(trueCounts))
	if n == 0 {
		return est
	}
	nf := float64(n)
	for v, nv := range trueCounts {
		support := r.Binomial(nv, p) + r.Binomial(n-nv, q)
		est[v] = (float64(support)/nf - q) / (p - q)
	}
	return est
}

// SimulateAUE draws one estimate vector under the Balcer–Cheu mechanism:
// C_v = n_v + Bin(n*rounds, prob); f~_v = C_v/n - gamma.
func SimulateAUE(a *AUE, trueCounts []int, r *rng.Rand) []float64 {
	n := 0
	for _, c := range trueCounts {
		n += c
	}
	est := make([]float64, len(trueCounts))
	if n == 0 {
		return est
	}
	nf := float64(n)
	for v, nv := range trueCounts {
		c := nv + r.Binomial(n*a.rounds, a.prob)
		est[v] = float64(c)/nf - a.gamma
	}
	return est
}

// SimulateLaplace draws the central-DP Laplace baseline: the curator
// publishes the exact histogram plus Lap(sensitivity/eps) noise on each
// count. Under the paper's replacement neighboring (Definition 1) the
// L1 sensitivity of a histogram is 2.
func SimulateLaplace(trueCounts []int, eps float64, r *rng.Rand) []float64 {
	validateEpsilon(eps)
	n := 0
	for _, c := range trueCounts {
		n += c
	}
	est := make([]float64, len(trueCounts))
	if n == 0 {
		return est
	}
	scale := 2 / eps
	nf := float64(n)
	for v, nv := range trueCounts {
		est[v] = (float64(nv) + r.Laplace(scale)) / nf
	}
	return est
}

// BaseEstimates is the "Base" baseline of Figure 3: output the uniform
// distribution regardless of the data.
func BaseEstimates(d int) []float64 {
	est := make([]float64, d)
	for v := range est {
		est[v] = 1 / float64(d)
	}
	return est
}

// MSE returns the mean squared error (the paper's metric, §VII-A):
// (1/d) * sum_v (f_v - f~_v)^2.
func MSE(truth, est []float64) float64 {
	if len(truth) != len(est) {
		panic("ldp: MSE length mismatch")
	}
	if len(truth) == 0 {
		return 0
	}
	var sum float64
	for v := range truth {
		dlt := truth[v] - est[v]
		sum += dlt * dlt
	}
	return sum / float64(len(truth))
}

// FakeSupport returns, for a PEOS-compatible oracle (GRR or local
// hashing), the probability u that one fake report drawn uniformly from
// the oracle's *report space* (Algorithm 1) supports a fixed value v,
// and the expected calibrated mass beta = (u-q)/(p-q) that one fake
// contributes to f~_v:
//
//   - GRR: the report space is [d], so u = 1/d and — because
//     p + (d-1)q = 1 — beta = 1/d exactly, which is the nr/(n*d)
//     correction of Equation (6).
//   - OLH/SOLH: the report space is (seed, y) with y uniform on [d'],
//     so u = 1/d' = q and beta = 0: uniform fakes are already absorbed
//     by the estimator's q subtraction and Equation (6)'s correction
//     term vanishes. (The paper states Eq (6) for the GRR view where
//     "n_r/d of the fakes have original value v"; for local hashing the
//     same derivation with u = q yields the beta = 0 form. See
//     DESIGN.md §3.)
func FakeSupport(fo FrequencyOracle) (u, beta float64) {
	p, q, ok := SupportProbabilities(fo)
	if !ok {
		panic("ldp: oracle " + fo.Name() + " is not PEOS-compatible")
	}
	switch o := fo.(type) {
	case *GRR:
		u = 1 / float64(o.Domain())
	case *LocalHash:
		u = q
	default:
		panic("ldp: oracle " + fo.Name() + " is not PEOS-compatible")
	}
	return u, (u - q) / (p - q)
}

// CalibrateWithFakes converts raw support counts over n user reports
// plus nr uniform fake reports into unbiased estimates of the users'
// frequencies (the generalized Equation (6)):
//
//	f'_v = (n+nr)/n * f~_v - (nr/n) * beta
func CalibrateWithFakes(counts []int, n, nr int, p, q, beta float64) []float64 {
	est := make([]float64, len(counts))
	if n == 0 {
		return est
	}
	tf := float64(n + nr)
	nf := float64(n)
	for v, c := range counts {
		fTilde := (float64(c)/tf - q) / (p - q)
		est[v] = tf/nf*fTilde - float64(nr)/nf*beta
	}
	return est
}

// SimulateWithFakes mirrors SimulateEstimates for the PEOS setting
// (§VI-C): nr fake reports drawn uniformly from the report space are
// mixed with the n user reports and the server post-processes with the
// generalized Equation (6) (see FakeSupport). Only GRR and local
// hashing are PEOS-compatible (Algorithm 1).
func SimulateWithFakes(fo FrequencyOracle, trueCounts []int, nr int, r *rng.Rand) []float64 {
	if nr < 0 {
		panic("ldp: negative fake-report count")
	}
	p, q, _ := SupportProbabilities(fo)
	u, beta := FakeSupport(fo)
	n := 0
	for _, c := range trueCounts {
		n += c
	}
	if n == 0 {
		return make([]float64, len(trueCounts))
	}
	counts := make([]int, len(trueCounts))
	for v, nv := range trueCounts {
		counts[v] = r.Binomial(nv, p) + r.Binomial(n-nv, q) + r.Binomial(nr, u)
	}
	return CalibrateWithFakes(counts, n, nr, p, q, beta)
}

// TopK returns the indices of the k largest entries of xs (ties broken
// by lower index), used by the succinct-histogram experiments.
func TopK(xs []float64, k int) []int {
	if k < 0 {
		panic("ldp: TopK with k < 0")
	}
	if k > len(xs) {
		k = len(xs)
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort is fine for the k ~ 32 used here.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if xs[idx[j]] > xs[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

// ExpectedMSE returns the analytic expected MSE of a mechanism at n
// users assuming rare values: simply Variance(n) (bias is zero). Kept
// as a named helper so harness code reads like the paper.
func ExpectedMSE(fo FrequencyOracle, n int) float64 {
	v := fo.Variance(n)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic("ldp: non-finite analytic variance")
	}
	return v
}
