package ldp

// Binary state serialization for the aggregators, the foundation of
// the durable epoch tier (internal/store): every Aggregator implements
// encoding.BinaryMarshaler / encoding.BinaryUnmarshaler with one shared
// versioned layout, so a sealed epoch root or the all-time aggregate
// can be checkpointed to disk and restored bit-identically.
//
// Layout (little-endian), stable across builds:
//
//	offset  size  field
//	0       1     format version (aggStateVersion)
//	1       1     aggregator kind (kindGRR..kindOUE)
//	2       8     domain size d (Hadamard: matrix order D)
//	10      8     aux parameter (local hashing: d'; AUE: blanket rounds)
//	18      8     float64 bits of the defining probability
//	              (GRR/OLH/SOLH/Hadamard: p; RAP/RAP_R: flip;
//	              AUE: gamma; OUE: q)
//	26      8     report count n
//	34      ...   payload: d int64 counts, or D float64 row sums
//
// The kind byte plus the echoed parameters make a blob self-describing
// enough that UnmarshalBinary can refuse state from a different oracle
// or parameterization with a clean error instead of folding counts into
// the wrong estimator. Decoding never panics: every length, version,
// parameter, and count is validated first (FuzzAggregatorState locks
// this in). Because the payload is the aggregator's exact integer
// statistics, UnmarshalBinary(MarshalBinary(agg)) reproduces Estimates
// bit for bit.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// aggStateVersion is the serialization format version written into
// every aggregator blob. Bump it when the layout changes; readers
// refuse versions they do not know (see ErrStateVersion).
const aggStateVersion = 1

// ErrStateVersion is wrapped by UnmarshalBinary when a blob's format
// version is not one this build reads — typically state written by a
// newer build. Callers must treat it as "do not load", never as
// partially-loadable state.
var ErrStateVersion = errors.New("ldp: unknown aggregator state version")

// Aggregator kind bytes. Append-only: a kind, once released, keeps its
// byte forever so old checkpoints stay readable.
const (
	kindGRR       = 1
	kindLocalHash = 2
	kindHadamard  = 3
	kindUnary     = 4
	kindAUE       = 5
	kindOUE       = 6
)

// aggHeaderSize is the fixed prefix before the payload.
const aggHeaderSize = 34

// UnmarshalAggregator restores an aggregator blob produced by
// Aggregator.MarshalBinary into a fresh aggregator of fo. It is the
// load-side convenience the durable store uses: the oracle supplies
// the parameters, the blob supplies the state, and any mismatch
// between the two errors instead of mis-calibrating.
func UnmarshalAggregator(fo FrequencyOracle, data []byte) (Aggregator, error) {
	agg := fo.NewAggregator()
	if err := agg.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return agg, nil
}

func appendAggHeader(buf []byte, kind byte, d, aux uint64, param float64, n int) []byte {
	buf = append(buf, aggStateVersion, kind)
	buf = binary.LittleEndian.AppendUint64(buf, d)
	buf = binary.LittleEndian.AppendUint64(buf, aux)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(param))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n))
	return buf
}

// parseAggHeader validates the fixed prefix against the receiver's
// kind and parameters and returns the report count and payload.
func parseAggHeader(data []byte, kind byte, d, aux uint64, param float64) (int, []byte, error) {
	if len(data) < aggHeaderSize {
		return 0, nil, fmt.Errorf("ldp: aggregator state is %d bytes, header needs %d", len(data), aggHeaderSize)
	}
	if v := data[0]; v != aggStateVersion {
		return 0, nil, fmt.Errorf("%w: blob version %d, this build reads %d", ErrStateVersion, v, aggStateVersion)
	}
	if k := data[1]; k != kind {
		return 0, nil, fmt.Errorf("ldp: aggregator state kind %d, receiver is kind %d", k, kind)
	}
	if got := binary.LittleEndian.Uint64(data[2:]); got != d {
		return 0, nil, fmt.Errorf("ldp: aggregator state domain %d, receiver has %d", got, d)
	}
	if got := binary.LittleEndian.Uint64(data[10:]); got != aux {
		return 0, nil, fmt.Errorf("ldp: aggregator state aux parameter %d, receiver has %d", got, aux)
	}
	if got := binary.LittleEndian.Uint64(data[18:]); got != math.Float64bits(param) {
		return 0, nil, fmt.Errorf("ldp: aggregator state probability %g, receiver has %g",
			math.Float64frombits(got), param)
	}
	n64 := binary.LittleEndian.Uint64(data[26:])
	if n64 > math.MaxInt64/2 {
		return 0, nil, fmt.Errorf("ldp: aggregator state report count %d out of range", n64)
	}
	return int(n64), data[aggHeaderSize:], nil
}

// marshalCounts serializes a count-vector aggregator (everything but
// Hadamard). counts may be nil (an empty local-hash aggregator); the
// blob then carries d zeros so the encoding is canonical either way.
func marshalCounts(kind byte, d, aux uint64, param float64, n int, counts []int) []byte {
	buf := make([]byte, 0, aggHeaderSize+8*int(d))
	buf = appendAggHeader(buf, kind, d, aux, param, n)
	for i := 0; i < int(d); i++ {
		var c int
		if counts != nil {
			c = counts[i]
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(c)))
	}
	return buf
}

// unmarshalCounts reverses marshalCounts, validating the header and
// rejecting payloads of the wrong length or with counts no aggregation
// run can produce (negative).
func unmarshalCounts(data []byte, kind byte, d, aux uint64, param float64) (int, []int, error) {
	n, payload, err := parseAggHeader(data, kind, d, aux, param)
	if err != nil {
		return 0, nil, err
	}
	if len(payload) != 8*int(d) {
		return 0, nil, fmt.Errorf("ldp: aggregator state payload is %d bytes, want %d", len(payload), 8*int(d))
	}
	counts := make([]int, d)
	for i := range counts {
		c := int64(binary.LittleEndian.Uint64(payload[8*i:]))
		if c < 0 {
			return 0, nil, fmt.Errorf("ldp: aggregator state count[%d] = %d is negative", i, c)
		}
		counts[i] = int(c)
	}
	return n, counts, nil
}

// marshalSums serializes the Hadamard row-sum vector. The sums are
// exact integers stored in float64, so writing the raw bits is both
// stable and bit-exact.
func marshalSums(kind byte, d, aux uint64, param float64, n int, sums []float64) []byte {
	buf := make([]byte, 0, aggHeaderSize+8*len(sums))
	buf = appendAggHeader(buf, kind, d, aux, param, n)
	for _, s := range sums {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s))
	}
	return buf
}

func unmarshalSums(data []byte, kind byte, d, aux uint64, param float64) (int, []float64, error) {
	n, payload, err := parseAggHeader(data, kind, d, aux, param)
	if err != nil {
		return 0, nil, err
	}
	if len(payload) != 8*int(d) {
		return 0, nil, fmt.Errorf("ldp: aggregator state payload is %d bytes, want %d", len(payload), 8*int(d))
	}
	sums := make([]float64, d)
	for i := range sums {
		s := math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return 0, nil, fmt.Errorf("ldp: aggregator state row sum[%d] is not finite", i)
		}
		sums[i] = s
	}
	return n, sums, nil
}

// MarshalBinary implements Aggregator.
func (a *grrAggregator) MarshalBinary() ([]byte, error) {
	return marshalCounts(kindGRR, uint64(a.g.d), 0, a.g.p, a.n, a.counts), nil
}

// UnmarshalBinary implements Aggregator, replacing the receiver's
// state. The receiver must come from a GRR oracle with the same
// parameters the blob was written under.
func (a *grrAggregator) UnmarshalBinary(data []byte) error {
	n, counts, err := unmarshalCounts(data, kindGRR, uint64(a.g.d), 0, a.g.p)
	if err != nil {
		return err
	}
	a.n, a.counts = n, counts
	return nil
}

// MarshalBinary implements Aggregator. The buffered block is flushed
// first so the folded counts are the complete state.
func (a *localHashAggregator) MarshalBinary() ([]byte, error) {
	a.flush()
	return marshalCounts(kindLocalHash, uint64(a.l.d), uint64(a.l.dPrime), a.l.p, a.n, a.counts), nil
}

// UnmarshalBinary implements Aggregator, replacing the receiver's
// state (including any buffered block).
func (a *localHashAggregator) UnmarshalBinary(data []byte) error {
	n, counts, err := unmarshalCounts(data, kindLocalHash, uint64(a.l.d), uint64(a.l.dPrime), a.l.p)
	if err != nil {
		return err
	}
	a.n, a.counts = n, counts
	a.seeds, a.ys = nil, nil
	return nil
}

// MarshalBinary implements Aggregator.
func (a *hadamardAggregator) MarshalBinary() ([]byte, error) {
	return marshalSums(kindHadamard, uint64(a.h.D), 0, a.h.p, a.n, a.rowSums), nil
}

// UnmarshalBinary implements Aggregator, replacing the receiver's
// state.
func (a *hadamardAggregator) UnmarshalBinary(data []byte) error {
	n, sums, err := unmarshalSums(data, kindHadamard, uint64(a.h.D), 0, a.h.p)
	if err != nil {
		return err
	}
	a.n, a.rowSums = n, sums
	return nil
}

// MarshalBinary implements Aggregator.
func (a *unaryAggregator) MarshalBinary() ([]byte, error) {
	return marshalCounts(kindUnary, uint64(a.u.d), 0, a.u.flip, a.n, a.counts), nil
}

// UnmarshalBinary implements Aggregator, replacing the receiver's
// state. RAP and RAP_R share the aggregator type; the flip probability
// in the header is what keeps their state from cross-loading.
func (a *unaryAggregator) UnmarshalBinary(data []byte) error {
	n, counts, err := unmarshalCounts(data, kindUnary, uint64(a.u.d), 0, a.u.flip)
	if err != nil {
		return err
	}
	a.n, a.counts = n, counts
	return nil
}

// MarshalBinary implements Aggregator.
func (g *aueAggregator) MarshalBinary() ([]byte, error) {
	return marshalCounts(kindAUE, uint64(g.a.d), uint64(g.a.rounds), g.a.gamma, g.n, g.counts), nil
}

// UnmarshalBinary implements Aggregator, replacing the receiver's
// state.
func (g *aueAggregator) UnmarshalBinary(data []byte) error {
	n, counts, err := unmarshalCounts(data, kindAUE, uint64(g.a.d), uint64(g.a.rounds), g.a.gamma)
	if err != nil {
		return err
	}
	g.n, g.counts = n, counts
	return nil
}

// MarshalBinary implements Aggregator.
func (a *oueAggregator) MarshalBinary() ([]byte, error) {
	return marshalCounts(kindOUE, uint64(a.o.d), 0, a.o.q, a.n, a.counts), nil
}

// UnmarshalBinary implements Aggregator, replacing the receiver's
// state.
func (a *oueAggregator) UnmarshalBinary(data []byte) error {
	n, counts, err := unmarshalCounts(data, kindOUE, uint64(a.o.d), 0, a.o.q)
	if err != nil {
		return err
	}
	a.n, a.counts = n, counts
	return nil
}
