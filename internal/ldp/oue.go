package ldp

import (
	"math"

	"shuffledp/internal/rng"
)

// OUE is the Optimized Unary Encoding of Wang et al. (USENIX Security
// 2017) — the asymmetric-flip variant that minimizes LDP variance:
// the 1-bit is transmitted truthfully with probability 1/2, and each
// 0-bit flips to 1 with probability 1/(e^eps + 1).
//
// It completes the [54] oracle family this paper builds on. Note the
// shuffle-model amplification of Theorem 2 is proven for the SYMMETRIC
// unary encoding (RAP); OUE's asymmetric flips break the
// privacy-blanket decomposition, so OUE here is an LDP-only mechanism
// (it appears in ablations, not in the paper's shuffle lineup).
type OUE struct {
	d   int
	eps float64
	p   float64 // P(1 -> 1) = 1/2
	q   float64 // P(0 -> 1) = 1/(e^eps+1)
}

// NewOUE returns the OUE oracle over a domain of size d with local
// budget eps.
func NewOUE(d int, eps float64) *OUE {
	validateDomain(d)
	validateEpsilon(eps)
	return &OUE{
		d:   d,
		eps: eps,
		p:   0.5,
		q:   1 / (math.Exp(eps) + 1),
	}
}

// Name implements FrequencyOracle.
func (o *OUE) Name() string { return "OUE" }

// Domain implements FrequencyOracle.
func (o *OUE) Domain() int { return o.d }

// EpsilonLocal implements FrequencyOracle.
func (o *OUE) EpsilonLocal() float64 { return o.eps }

// P returns P(bit 1 stays 1).
func (o *OUE) P() float64 { return o.p }

// Q returns P(bit 0 flips to 1).
func (o *OUE) Q() float64 { return o.q }

// Randomize implements FrequencyOracle.
func (o *OUE) Randomize(v int, r *rng.Rand) Report {
	validateValue(v, o.d)
	bits := make([]byte, o.d)
	for j := range bits {
		if j == v {
			if r.Bernoulli(o.p) {
				bits[j] = 1
			}
		} else if r.Bernoulli(o.q) {
			bits[j] = 1
		}
	}
	return Report{Bits: bits}
}

// NewAggregator implements FrequencyOracle.
func (o *OUE) NewAggregator() Aggregator {
	return &oueAggregator{o: o, counts: make([]int, o.d)}
}

// Variance implements FrequencyOracle: 4 e^eps / (n (e^eps - 1)^2),
// the optimum over unary-encoding flip choices ([54], Eq. 8).
func (o *OUE) Variance(n int) float64 {
	e := math.Exp(o.eps)
	return 4 * e / (float64(n) * (e - 1) * (e - 1))
}

type oueAggregator struct {
	o      *OUE
	counts []int
	n      int
}

// Add implements Aggregator.
func (a *oueAggregator) Add(rep Report) {
	if len(rep.Bits) != a.o.d {
		panic("ldp: OUE report has wrong length")
	}
	for j, b := range rep.Bits {
		if b == 1 {
			a.counts[j]++
		}
	}
	a.n++
}

// Count implements Aggregator.
func (a *oueAggregator) Count() int { return a.n }

// Merge implements Aggregator.
func (a *oueAggregator) Merge(other Aggregator) {
	o, ok := other.(*oueAggregator)
	if !ok || o.o.d != a.o.d || o.o.q != a.o.q {
		panic("ldp: merging incompatible OUE aggregators")
	}
	for v, c := range o.counts {
		a.counts[v] += c
	}
	a.n += o.n
	o.counts, o.n = nil, 0
}

// Clone implements Aggregator.
func (a *oueAggregator) Clone() Aggregator {
	return &oueAggregator{o: a.o, counts: append([]int(nil), a.counts...), n: a.n}
}

// Estimates implements Aggregator: calibration with p = 1/2 and
// q = 1/(e^eps + 1).
func (a *oueAggregator) Estimates() []float64 {
	return CalibrateCounts(a.counts, a.n, a.o.p, a.o.q)
}
