package ldp

import (
	"math"
	"testing"

	"shuffledp/internal/rng"
)

func TestRAPFlipProbability(t *testing.T) {
	u := NewRAP(10, 2)
	want := 1 / (math.Exp(1) + 1) // eps/2 = 1
	if math.Abs(u.Flip()-want) > 1e-12 {
		t.Fatalf("flip = %v, want %v", u.Flip(), want)
	}
}

func TestRAPRMatchesRAPDoubleBudget(t *testing.T) {
	// §IV-B4: eps-removal-LDP == 2eps-replacement-LDP; the mechanisms
	// must coincide.
	rapR := NewRAPR(50, 1)
	rap := NewRAP(50, 2)
	if math.Abs(rapR.Flip()-rap.Flip()) > 1e-12 {
		t.Fatalf("RAP_R flip %v != RAP(2eps) flip %v", rapR.Flip(), rap.Flip())
	}
	if rapR.EpsilonLocal() != 2 {
		t.Fatalf("RAP_R equivalent replacement budget = %v, want 2", rapR.EpsilonLocal())
	}
	if math.Abs(rapR.Variance(1000)-rap.Variance(1000)) > 1e-15 {
		t.Fatal("RAP_R and RAP(2eps) variances differ")
	}
}

func TestUnaryReportShape(t *testing.T) {
	u := NewRAP(16, 1)
	r := rng.New(9)
	rep := u.Randomize(5, r)
	if len(rep.Bits) != 16 {
		t.Fatalf("report length %d", len(rep.Bits))
	}
	for _, b := range rep.Bits {
		if b != 0 && b != 1 {
			t.Fatalf("non-binary bit %d", b)
		}
	}
}

func TestUnaryBitDistribution(t *testing.T) {
	u := NewRAP(4, 1.5)
	r := rng.New(10)
	const trials = 100000
	ones := make([]int, 4)
	for i := 0; i < trials; i++ {
		rep := u.Randomize(2, r)
		for j, b := range rep.Bits {
			ones[j] += int(b)
		}
	}
	for j := range ones {
		want := u.Flip() * trials
		if j == 2 {
			want = (1 - u.Flip()) * trials
		}
		if math.Abs(float64(ones[j])-want) > 6*math.Sqrt(want) {
			t.Errorf("bit %d: %d ones, want ~%.0f", j, ones[j], want)
		}
	}
}

func TestUnaryEstimatesUnbiased(t *testing.T) {
	const d = 12
	u := NewRAP(d, 3)
	r := rng.New(11)
	values := make([]int, 20000)
	for i := range values {
		values[i] = i % 3 // only values 0,1,2 occur
	}
	truth := TrueFrequencies(values, d)
	est := EstimateAll(u, values, r)
	tol := 5 * math.Sqrt(u.Variance(len(values)))
	for v := 0; v < d; v++ {
		if math.Abs(est[v]-truth[v]) > tol {
			t.Errorf("value %d: est %v truth %v", v, est[v], truth[v])
		}
	}
}

func TestUnaryAggregatorPanicsOnWrongLength(t *testing.T) {
	agg := NewRAP(4, 1).NewAggregator()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	agg.Add(Report{Bits: []byte{1, 0}})
}

func TestAUEGamma(t *testing.T) {
	a := NewAUE(100, 0.5, 1e-9, 1000000)
	want := 200 * math.Log(4e9) / (0.25 * 1e6)
	if math.Abs(a.Gamma()-want)/want > 1e-12 {
		t.Fatalf("gamma = %v, want %v", a.Gamma(), want)
	}
	if a.EpsilonLocal() != 0 {
		t.Fatal("AUE should report no local privacy")
	}
	if a.EpsilonCentral() != 0.5 {
		t.Fatal("AUE central budget mismatch")
	}
}

func TestAUEMultiRoundRegime(t *testing.T) {
	// Small n forces gamma > 1; the mechanism must switch to multiple
	// Bernoulli rounds with the same total mean (see the AUE doc).
	a := NewAUE(10, 0.5, 1e-9, 1000) // gamma ~ 17.7
	if a.Gamma() <= 1 {
		t.Fatalf("expected gamma > 1, got %v", a.Gamma())
	}
	if a.Rounds() != int(math.Ceil(a.Gamma())) {
		t.Fatalf("rounds = %d for gamma %v", a.Rounds(), a.Gamma())
	}
	// Mean blanket per location must equal gamma.
	r := rng.New(77)
	const trials = 5000
	var total float64
	for i := 0; i < trials; i++ {
		rep := a.Randomize(0, r)
		total += float64(rep.Bits[5]) // a location without the one-hot bit
	}
	mean := total / trials
	if math.Abs(mean-a.Gamma())/a.Gamma() > 0.05 {
		t.Fatalf("blanket mean %v, want %v", mean, a.Gamma())
	}
	// And the variance must remain positive (no silent privacy loss).
	if a.Variance(1000) <= 0 {
		t.Fatalf("variance = %v", a.Variance(1000))
	}
}

func TestAUEPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"delta": func() { NewAUE(10, 1, 0, 100) },
		"n":     func() { NewAUE(10, 1, 1e-9, 0) },
		"eps":   func() { NewAUE(10, 0, 1e-9, 100) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestAUEAlwaysIncludesTrueValue(t *testing.T) {
	a := NewAUE(20, 1, 1e-9, 100000)
	r := rng.New(12)
	for i := 0; i < 200; i++ {
		rep := a.Randomize(7, r)
		if rep.Bits[7] < 1 {
			t.Fatal("AUE dropped the true value — it must always be included")
		}
	}
}

func TestAUEEstimatesUnbiased(t *testing.T) {
	const d, n = 10, 20000
	a := NewAUE(d, 1, 1e-6, n)
	r := rng.New(13)
	values := make([]int, n)
	for i := range values {
		values[i] = i % 4
	}
	truth := TrueFrequencies(values, d)
	est := EstimateAll(a, values, r)
	tol := 5*math.Sqrt(a.Variance(n)) + 1e-9
	for v := 0; v < d; v++ {
		if math.Abs(est[v]-truth[v]) > tol {
			t.Errorf("value %d: est %v truth %v (tol %v)", v, est[v], truth[v], tol)
		}
	}
}
