package ldp

import (
	"math"

	"shuffledp/internal/rng"
)

// GRR is generalized randomized response (§II-B, Equation 1): the true
// value is reported with probability p = e^eps / (e^eps + d - 1) and any
// other fixed value with probability q = 1 / (e^eps + d - 1).
type GRR struct {
	d   int
	eps float64
	p   float64
	q   float64
}

// NewGRR returns a GRR oracle over a domain of size d with local budget
// eps.
func NewGRR(d int, eps float64) *GRR {
	validateDomain(d)
	validateEpsilon(eps)
	e := math.Exp(eps)
	return &GRR{
		d:   d,
		eps: eps,
		p:   e / (e + float64(d) - 1),
		q:   1 / (e + float64(d) - 1),
	}
}

// Name implements FrequencyOracle.
func (g *GRR) Name() string { return "GRR" }

// Domain implements FrequencyOracle.
func (g *GRR) Domain() int { return g.d }

// EpsilonLocal implements FrequencyOracle.
func (g *GRR) EpsilonLocal() float64 { return g.eps }

// P returns the truthful-report probability p.
func (g *GRR) P() float64 { return g.p }

// Q returns the per-other-value report probability q.
func (g *GRR) Q() float64 { return g.q }

// Randomize implements FrequencyOracle.
func (g *GRR) Randomize(v int, r *rng.Rand) Report {
	validateValue(v, g.d)
	if r.Bernoulli(g.p) {
		return Report{Value: v}
	}
	// Uniform over the d-1 other values.
	y := r.Intn(g.d - 1)
	if y >= v {
		y++
	}
	return Report{Value: y}
}

// NewAggregator implements FrequencyOracle.
func (g *GRR) NewAggregator() Aggregator {
	return &grrAggregator{g: g, counts: make([]int, g.d)}
}

// Variance implements FrequencyOracle: Var = q(1-q) / (n (p-q)^2),
// the f_v-independent term of the variance in Proposition 4's proof.
func (g *GRR) Variance(n int) float64 {
	return g.q * (1 - g.q) / (float64(n) * (g.p - g.q) * (g.p - g.q))
}

type grrAggregator struct {
	g      *GRR
	counts []int
	n      int
}

// Add implements Aggregator.
func (a *grrAggregator) Add(rep Report) {
	validateValue(rep.Value, a.g.d)
	a.counts[rep.Value]++
	a.n++
}

// Count implements Aggregator.
func (a *grrAggregator) Count() int { return a.n }

// Merge implements Aggregator.
func (a *grrAggregator) Merge(other Aggregator) {
	o, ok := other.(*grrAggregator)
	if !ok || o.g.d != a.g.d || o.g.p != a.g.p {
		panic("ldp: merging incompatible GRR aggregators")
	}
	for v, c := range o.counts {
		a.counts[v] += c
	}
	a.n += o.n
	o.counts, o.n = nil, 0
}

// Clone implements Aggregator.
func (a *grrAggregator) Clone() Aggregator {
	c := &grrAggregator{g: a.g, n: a.n}
	if a.counts != nil {
		c.counts = append([]int(nil), a.counts...)
	}
	return c
}

// Estimates implements Equation (2): f~_v = (C_v/n - q) / (p - q).
func (a *grrAggregator) Estimates() []float64 {
	return CalibrateCounts(a.counts, a.n, a.g.p, a.g.q)
}

// CalibrateCounts converts raw support counts into unbiased frequency
// estimates given the per-report probabilities: p of supporting the true
// value and q of supporting any other value. This is Equations (2) and
// (3) of the paper in one place; GRR, OLH/SOLH and the unary oracles all
// reduce to it.
func CalibrateCounts(counts []int, n int, p, q float64) []float64 {
	est := make([]float64, len(counts))
	if n == 0 {
		return est
	}
	nf := float64(n)
	for v, c := range counts {
		est[v] = (float64(c)/nf - q) / (p - q)
	}
	return est
}
