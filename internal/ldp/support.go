package ldp

// SupportCounts computes, for every value v in [0, d), how many of the
// given reports "support" v — the raw statistic behind Equations (2)
// and (3). It is the server-side aggregation used when reports arrive
// through a protocol (shuffled words) rather than an Aggregator:
//
//   - GRR: a report supports its value.
//   - OLH/SOLH: report (seed, y) supports v iff H_seed(v) = y, counted
//     in blocks through the same hash.Family.CountSupport kernel the
//     aggregator uses.
//
// Only PEOS-compatible oracles are supported; others panic.
func SupportCounts(fo FrequencyOracle, reports []Report) []int {
	counts := make([]int, fo.Domain())
	switch o := fo.(type) {
	case *GRR:
		for _, rep := range reports {
			validateValue(rep.Value, o.d)
			counts[rep.Value]++
		}
	case *LocalHash:
		seeds := make([]uint64, 0, lhBlock)
		ys := make([]uint64, 0, lhBlock)
		for start := 0; start < len(reports); start += lhBlock {
			end := start + lhBlock
			if end > len(reports) {
				end = len(reports)
			}
			seeds, ys = seeds[:0], ys[:0]
			for _, rep := range reports[start:end] {
				if rep.Value < 0 || rep.Value >= o.dPrime {
					panic("ldp: report value outside [0, d')")
				}
				seeds = append(seeds, uint64(rep.Seed))
				ys = append(ys, uint64(rep.Value))
			}
			o.family.CountSupport(seeds, ys, counts)
		}
	default:
		panic("ldp: SupportCounts does not support oracle " + fo.Name())
	}
	return counts
}
