package ldp

import "shuffledp/internal/hash"

// SupportCounts computes, for every value v in [0, d), how many of the
// given reports "support" v — the raw statistic behind Equations (2)
// and (3). It is the server-side aggregation used when reports arrive
// through a protocol (shuffled words) rather than an Aggregator:
//
//   - GRR: a report supports its value.
//   - OLH/SOLH: report (seed, y) supports v iff H_seed(v) = y.
//
// Only PEOS-compatible oracles are supported; others panic.
func SupportCounts(fo FrequencyOracle, reports []Report) []int {
	counts := make([]int, fo.Domain())
	switch o := fo.(type) {
	case *GRR:
		for _, rep := range reports {
			validateValue(rep.Value, o.d)
			counts[rep.Value]++
		}
	case *LocalHash:
		fam := hash.NewFamily(o.dPrime)
		for _, rep := range reports {
			if rep.Value < 0 || rep.Value >= o.dPrime {
				panic("ldp: report value outside [0, d')")
			}
			seed := uint64(rep.Seed)
			for v := 0; v < o.d; v++ {
				if fam.Hash(seed, uint64(v)) == rep.Value {
					counts[v]++
				}
			}
		}
	default:
		panic("ldp: SupportCounts does not support oracle " + fo.Name())
	}
	return counts
}
