package ldp

import (
	"testing"
	"testing/quick"

	"shuffledp/internal/rng"
)

func TestWordEncoderGRRRoundTrip(t *testing.T) {
	g := NewGRR(915, 1)
	enc, err := NewWordEncoder(g)
	if err != nil {
		t.Fatal(err)
	}
	if enc.GroupOrder() != 915 {
		t.Fatalf("group order %d", enc.GroupOrder())
	}
	for v := 0; v < 915; v++ {
		w := enc.Encode(Report{Value: v})
		if got := enc.Decode(w); got.Value != v {
			t.Fatalf("roundtrip %d -> %d", v, got.Value)
		}
	}
}

func TestWordEncoderSOLHRoundTrip(t *testing.T) {
	s := NewSOLH(42178, 45, 1)
	enc, err := NewWordEncoder(s)
	if err != nil {
		t.Fatal(err)
	}
	if enc.GroupOrder() != uint64(45)<<32 {
		t.Fatalf("group order %d", enc.GroupOrder())
	}
	f := func(seed uint32, vRaw uint16) bool {
		v := int(vRaw) % 45
		rep := Report{Seed: seed, Value: v}
		got := enc.Decode(enc.Encode(rep))
		return got.Seed == seed && got.Value == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordEncoderHadamard(t *testing.T) {
	h := NewHadamard(100, 1)
	enc, err := NewWordEncoder(h)
	if err != nil {
		t.Fatal(err)
	}
	rep := Report{Seed: 77, Value: 1}
	if got := enc.Decode(enc.Encode(rep)); got.Seed != 77 || got.Value != 1 {
		t.Fatalf("roundtrip failed: %+v", got)
	}
}

func TestWordEncoderRejectsUnary(t *testing.T) {
	if _, err := NewWordEncoder(NewRAP(10, 1)); err == nil {
		t.Fatal("expected error for unary oracle")
	}
	if _, err := NewWordEncoder(NewAUE(10, 1, 1e-9, 100)); err == nil {
		t.Fatal("expected error for AUE")
	}
}

func TestWordEncoderDecodeWraps(t *testing.T) {
	g := NewGRR(10, 1)
	enc, _ := NewWordEncoder(g)
	// A corrupted word beyond the group order must reduce, not panic.
	if got := enc.Decode(25); got.Value != 5 {
		t.Fatalf("Decode(25) = %d, want 5", got.Value)
	}
}

func TestWordEncoderEncodePanicsOutOfRange(t *testing.T) {
	g := NewGRR(10, 1)
	enc, _ := NewWordEncoder(g)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	enc.Encode(Report{Value: 10})
}

func TestUniformWordInRange(t *testing.T) {
	s := NewSOLH(100, 7, 1)
	enc, _ := NewWordEncoder(s)
	r := rng.New(20)
	for i := 0; i < 1000; i++ {
		w := enc.UniformWord(r.Uint64n)
		if w >= enc.GroupOrder() {
			t.Fatalf("uniform word %d >= group order", w)
		}
		rep := enc.Decode(w)
		if rep.Value < 0 || rep.Value >= 7 {
			t.Fatalf("decoded value %d out of range", rep.Value)
		}
	}
}
