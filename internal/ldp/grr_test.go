package ldp

import (
	"math"
	"testing"

	"shuffledp/internal/rng"
)

func TestGRRProbabilities(t *testing.T) {
	g := NewGRR(10, 1)
	e := math.E
	wantP := e / (e + 9)
	wantQ := 1 / (e + 9)
	if math.Abs(g.P()-wantP) > 1e-12 || math.Abs(g.Q()-wantQ) > 1e-12 {
		t.Fatalf("p=%v q=%v, want %v %v", g.P(), g.Q(), wantP, wantQ)
	}
	// LDP guarantee: p/q = e^eps.
	if math.Abs(g.P()/g.Q()-e) > 1e-9 {
		t.Fatalf("p/q = %v, want e", g.P()/g.Q())
	}
	// Sanity of the output distribution: p + (d-1) q = 1.
	if math.Abs(g.P()+9*g.Q()-1) > 1e-12 {
		t.Fatal("GRR output distribution does not normalize")
	}
}

func TestGRRPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"domain":  func() { NewGRR(1, 1) },
		"epsilon": func() { NewGRR(10, 0) },
		"value":   func() { NewGRR(10, 1).Randomize(10, rng.New(1)) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestGRRReportDistribution(t *testing.T) {
	const d = 5
	g := NewGRR(d, 1.5)
	r := rng.New(2)
	const trials = 200000
	counts := make([]int, d)
	for i := 0; i < trials; i++ {
		counts[g.Randomize(3, r).Value]++
	}
	for y := 0; y < d; y++ {
		want := g.Q() * trials
		if y == 3 {
			want = g.P() * trials
		}
		if math.Abs(float64(counts[y])-want) > 6*math.Sqrt(want) {
			t.Errorf("output %d: %d, want ~%.0f", y, counts[y], want)
		}
	}
}

func TestGRREstimatesUnbiased(t *testing.T) {
	const d = 8
	g := NewGRR(d, 2)
	r := rng.New(3)
	// True distribution: value 0 has freq 0.5, value 1 has 0.25, rest
	// spread.
	values := make([]int, 0, 40000)
	for i := 0; i < 20000; i++ {
		values = append(values, 0)
	}
	for i := 0; i < 10000; i++ {
		values = append(values, 1)
	}
	for i := 0; i < 10000; i++ {
		values = append(values, 2+i%(d-2))
	}
	truth := TrueFrequencies(values, d)
	est := EstimateAll(g, values, r)
	for v := 0; v < d; v++ {
		// Analytic sd per value is sqrt(Variance(n)) ~ 0.004; allow 5 sd.
		if math.Abs(est[v]-truth[v]) > 5*math.Sqrt(g.Variance(len(values))) {
			t.Errorf("value %d: est %v, truth %v", v, est[v], truth[v])
		}
	}
}

func TestGRRVarianceMatchesEmpirical(t *testing.T) {
	const d = 6
	g := NewGRR(d, 1)
	r := rng.New(4)
	const n, trials = 5000, 300
	values := make([]int, n) // all users hold value 0
	var sumSq float64
	for trial := 0; trial < trials; trial++ {
		est := EstimateAll(g, values, r)
		// Measure variance on a value nobody holds (f_v = 0), matching
		// the rare-value assumption of the analytic formula.
		sumSq += est[3] * est[3]
	}
	got := sumSq / trials
	want := g.Variance(n)
	if math.Abs(got-want)/want > 0.25 {
		t.Errorf("empirical variance %v, analytic %v", got, want)
	}
}

func TestCalibrateCountsZeroReports(t *testing.T) {
	est := CalibrateCounts([]int{0, 0, 0}, 0, 0.9, 0.1)
	for _, e := range est {
		if e != 0 {
			t.Fatal("expected zeros for empty aggregation")
		}
	}
}

func TestHistogramAndTrueFrequencies(t *testing.T) {
	values := []int{0, 1, 1, 2, 2, 2}
	h := Histogram(values, 4)
	want := []int{1, 2, 3, 0}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("Histogram = %v, want %v", h, want)
		}
	}
	f := TrueFrequencies(values, 4)
	if math.Abs(f[2]-0.5) > 1e-12 || f[3] != 0 {
		t.Fatalf("TrueFrequencies = %v", f)
	}
	if fEmpty := TrueFrequencies(nil, 3); fEmpty[0] != 0 {
		t.Fatal("empty dataset should give zero frequencies")
	}
}

func TestHistogramPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Histogram([]int{5}, 3)
}
