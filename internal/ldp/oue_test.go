package ldp

import (
	"math"
	"testing"

	"shuffledp/internal/rng"
)

func TestOUEProbabilities(t *testing.T) {
	o := NewOUE(10, 1)
	if o.P() != 0.5 {
		t.Fatalf("p = %v", o.P())
	}
	want := 1 / (math.E + 1)
	if math.Abs(o.Q()-want) > 1e-12 {
		t.Fatalf("q = %v, want %v", o.Q(), want)
	}
	// The LDP ratio on a single bit: (p/(q)) * ((1-q)/(1-p)) = e^eps.
	ratio := o.P() / o.Q() * (1 - o.Q()) / (1 - o.P())
	if math.Abs(ratio-math.E) > 1e-9 {
		t.Fatalf("LDP ratio = %v, want e", ratio)
	}
}

func TestOUEBeatsRAP(t *testing.T) {
	// [54]: OUE's asymmetric flips strictly beat symmetric RAP at the
	// same budget.
	const d, n = 100, 10000
	for _, eps := range []float64{0.5, 1, 2} {
		if NewOUE(d, eps).Variance(n) >= NewRAP(d, eps).Variance(n) {
			t.Errorf("eps=%v: OUE should beat RAP", eps)
		}
	}
}

func TestOUEEstimatesUnbiased(t *testing.T) {
	const d = 10
	o := NewOUE(d, 2)
	r := rng.New(50)
	values := make([]int, 20000)
	for i := range values {
		values[i] = i % 3
	}
	truth := TrueFrequencies(values, d)
	est := EstimateAll(o, values, r)
	tol := 5 * math.Sqrt(o.Variance(len(values)))
	for v := 0; v < d; v++ {
		if math.Abs(est[v]-truth[v]) > tol {
			t.Errorf("value %d: est %v truth %v", v, est[v], truth[v])
		}
	}
}

func TestOUESimulatorAgrees(t *testing.T) {
	simulatorMatchesMechanism(t, NewOUE(8, 1.5), 51)
}

func TestOUEPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"domain": func() { NewOUE(1, 1) },
		"eps":    func() { NewOUE(10, 0) },
		"value":  func() { NewOUE(10, 1).Randomize(10, rng.New(1)) },
		"report": func() { NewOUE(10, 1).NewAggregator().Add(Report{Bits: []byte{1}}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestOUENotPEOSCompatible(t *testing.T) {
	if _, err := NewWordEncoder(NewOUE(10, 1)); err == nil {
		t.Fatal("OUE should have no word encoding")
	}
}
