package ldp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"shuffledp/internal/rng"
)

// Parallel estimation engine.
//
// Randomization and aggregation both fan out over a worker pool, with
// two invariants that make the results reproducible independent of the
// worker count:
//
//   - Randomization is sharded into fixed-size shards (ShardSize values
//     per shard, regardless of concurrency) and shard s draws all its
//     randomness from rng.Substream(seed, s). A report therefore depends
//     only on (seed, its position), never on scheduling.
//   - Aggregation accumulates exactly representable integer statistics
//     in every oracle (support counts, bit counts, ±1 row sums), so
//     merging worker aggregators is associative and commutative and the
//     merged Estimates are bit-identical to a sequential pass.
//
// Worker panics (e.g. an out-of-range value inside Randomize) are
// captured and re-raised on the calling goroutine, preserving the
// sequential API's panic contract.

// ShardSize is the number of values per randomization shard. It is a
// fixed constant — never derived from the worker count — so that shard
// substreams, and therefore every report, are independent of
// concurrency.
const ShardSize = 4096

// Workers normalizes a concurrency setting: values < 1 mean "use all
// available cores" (GOMAXPROCS).
func Workers(concurrency int) int {
	if concurrency < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return concurrency
}

// capturedPanic wraps a recovered panic value in one concrete type so
// concurrent CompareAndSwap calls never see inconsistently typed values
// (atomic.Value panics on those).
type capturedPanic struct{ val any }

// RunSharded executes fn(worker, shard) for every shard in [0, shards)
// on up to `workers` goroutines, re-raising the first worker panic in
// the caller. The worker index lets callers keep per-worker state
// (e.g. one aggregator per worker); callers that only need the shard
// index can ignore it. It is the one work-stealing loop behind both
// the estimation engine and the experiment harness.
func RunSharded(shards, workers int, fn func(worker, shard int)) {
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			fn(0, s)
		}
		return
	}
	var next atomic.Int64
	var panicked atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, capturedPanic{r})
				}
			}()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				fn(worker, s)
			}
		}(w)
	}
	wg.Wait()
	if r, ok := panicked.Load().(capturedPanic); ok {
		panic(r.val)
	}
}

// RandomizeParallel perturbs every value with fo.Randomize across up to
// `workers` goroutines (`workers` < 1 means GOMAXPROCS) and returns the
// reports in input order. The output is a pure function of (fo, values,
// seed): shard s of ShardSize values uses rng.Substream(seed, s), so any
// worker count produces identical reports. Like Randomize, it panics on
// out-of-range values.
func RandomizeParallel(fo FrequencyOracle, values []int, seed uint64, workers int) []Report {
	reports := make([]Report, len(values))
	shards := (len(values) + ShardSize - 1) / ShardSize
	RunSharded(shards, Workers(workers), func(_, s int) {
		lo := s * ShardSize
		hi := lo + ShardSize
		if hi > len(values) {
			hi = len(values)
		}
		r := rng.Substream(seed, uint64(s))
		for i := lo; i < hi; i++ {
			reports[i] = fo.Randomize(values[i], r)
		}
	})
	return reports
}

// AggregateParallel feeds the reports through per-worker aggregators on
// up to `workers` goroutines (`workers` < 1 means GOMAXPROCS) and merges
// the shards into one aggregator, which it returns. The merged estimates
// are bit-identical to a single sequential aggregator over the same
// reports (see Aggregator.Merge).
func AggregateParallel(fo FrequencyOracle, reports []Report, workers int) Aggregator {
	w := Workers(workers)
	shards := (len(reports) + ShardSize - 1) / ShardSize
	if w <= 1 || shards <= 1 {
		agg := fo.NewAggregator()
		for _, rep := range reports {
			agg.Add(rep)
		}
		return agg
	}
	if w > shards {
		w = shards
	}
	aggs := make([]Aggregator, w)
	for i := range aggs {
		aggs[i] = fo.NewAggregator()
	}
	RunSharded(shards, w, func(worker, s int) {
		lo := s * ShardSize
		hi := lo + ShardSize
		if hi > len(reports) {
			hi = len(reports)
		}
		agg := aggs[worker]
		for i := lo; i < hi; i++ {
			agg.Add(reports[i])
		}
	})
	root := aggs[0]
	for _, agg := range aggs[1:] {
		root.Merge(agg)
	}
	return root
}

// EstimateParallel is the parallel counterpart of EstimateAll: randomize
// every value and aggregate, fanning both stages out over up to
// `workers` goroutines. The estimates are identical for a fixed seed
// regardless of the worker count. (No explicit shuffle is performed:
// estimation is order-invariant, so the shuffler is a semantic no-op
// here; callers that model the server's view materialize the reports
// with RandomizeParallel and permute them.)
func EstimateParallel(fo FrequencyOracle, values []int, seed uint64, workers int) []float64 {
	reports := RandomizeParallel(fo, values, seed, workers)
	return AggregateParallel(fo, reports, workers).Estimates()
}
