package ldp

import (
	"bytes"
	"testing"

	"shuffledp/internal/rng"
)

// The durability contract: UnmarshalBinary(MarshalBinary(agg)) is
// estimate- and count-identical for every oracle, the blob is
// canonical (re-marshaling the restored aggregator reproduces it byte
// for byte), and the restored aggregator keeps working (Add/Merge land
// in the right counts).
func TestAggregatorStateRoundTrip(t *testing.T) {
	for name, fo := range mergeOracles() {
		t.Run(name, func(t *testing.T) {
			const n = 3000
			r := rng.New(7)
			d := fo.Domain()
			agg := fo.NewAggregator()
			for i := 0; i < n; i++ {
				agg.Add(fo.Randomize(i%d, r))
			}
			blob, err := agg.MarshalBinary()
			if err != nil {
				t.Fatalf("MarshalBinary: %v", err)
			}
			restored, err := UnmarshalAggregator(fo, blob)
			if err != nil {
				t.Fatalf("UnmarshalAggregator: %v", err)
			}
			if restored.Count() != agg.Count() {
				t.Fatalf("restored count %d, want %d", restored.Count(), agg.Count())
			}
			want, got := agg.Estimates(), restored.Estimates()
			for v := range want {
				if want[v] != got[v] {
					t.Fatalf("estimate[%d]: restored %v, marshaled %v", v, got[v], want[v])
				}
			}
			blob2, err := restored.MarshalBinary()
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatalf("blob is not canonical: re-marshaling the restored aggregator changed %d -> %d bytes or content",
					len(blob), len(blob2))
			}

			// The restored aggregator must stay live: folding the same
			// extra reports into both sides keeps them identical.
			extra := fo.NewAggregator()
			r2 := rng.New(8)
			for i := 0; i < 100; i++ {
				rep := fo.Randomize(i%d, r2)
				agg.Add(rep)
				extra.Add(rep)
			}
			restored.Merge(extra)
			want, got = agg.Estimates(), restored.Estimates()
			for v := range want {
				if want[v] != got[v] {
					t.Fatalf("post-restore Add/Merge diverged at estimate[%d]", v)
				}
			}
		})
	}
}

// An empty aggregator round-trips too (the shape of a freshly rotated
// epoch root at checkpoint time).
func TestAggregatorStateRoundTripEmpty(t *testing.T) {
	for name, fo := range mergeOracles() {
		t.Run(name, func(t *testing.T) {
			blob, err := fo.NewAggregator().MarshalBinary()
			if err != nil {
				t.Fatalf("MarshalBinary: %v", err)
			}
			restored, err := UnmarshalAggregator(fo, blob)
			if err != nil {
				t.Fatalf("UnmarshalAggregator: %v", err)
			}
			if restored.Count() != 0 {
				t.Fatalf("restored empty aggregator reports count %d", restored.Count())
			}
		})
	}
}

// Cross-loading state between oracles — or between different
// parameterizations of the same oracle — must error, not silently
// mis-calibrate.
func TestAggregatorStateRejectsMismatch(t *testing.T) {
	oracles := mergeOracles()
	blobs := map[string][]byte{}
	for name, fo := range oracles {
		agg := fo.NewAggregator()
		r := rng.New(3)
		for i := 0; i < 50; i++ {
			agg.Add(fo.Randomize(i%fo.Domain(), r))
		}
		blob, err := agg.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: MarshalBinary: %v", name, err)
		}
		blobs[name] = blob
	}
	for from, blob := range blobs {
		for to, fo := range oracles {
			if from == to {
				continue
			}
			if _, err := UnmarshalAggregator(fo, blob); err == nil {
				t.Errorf("loading %s state into a %s aggregator succeeded", from, to)
			}
		}
	}
	// Same oracle family, different epsilon: the probability echo in
	// the header must catch it.
	blob := blobs["GRR"]
	if _, err := UnmarshalAggregator(NewGRR(32, 2.5), blob); err == nil {
		t.Error("loading GRR(eps=1.5) state into GRR(eps=2.5) succeeded")
	}
}

// A blob stamped with a future format version is refused with
// ErrStateVersion and no partial load.
func TestAggregatorStateFutureVersion(t *testing.T) {
	fo := NewGRR(8, 1)
	agg := fo.NewAggregator()
	agg.Add(Report{Value: 3})
	blob, err := agg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	blob[0] = aggStateVersion + 1
	restored := fo.NewAggregator()
	if err := restored.UnmarshalBinary(blob); err == nil {
		t.Fatal("future-version blob loaded without error")
	}
	if restored.Count() != 0 {
		t.Fatalf("failed load left partial state: count %d", restored.Count())
	}
}

// FuzzAggregatorState: decoding arbitrary bytes into any oracle's
// aggregator never panics, and whenever it succeeds the accepted blob
// is canonical (re-marshaling reproduces it).
func FuzzAggregatorState(f *testing.F) {
	oracles := []FrequencyOracle{
		NewGRR(8, 1),
		NewSOLH(8, 4, 1),
		NewHadamard(6, 1),
		NewRAP(8, 1),
		NewAUE(8, 1, 1e-6, 1000),
		NewOUE(8, 1),
	}
	for _, fo := range oracles {
		agg := fo.NewAggregator()
		r := rng.New(1)
		for i := 0; i < 20; i++ {
			agg.Add(fo.Randomize(i%fo.Domain(), r))
		}
		blob, err := agg.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte{aggStateVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, fo := range oracles {
			agg, err := UnmarshalAggregator(fo, data)
			if err != nil {
				continue
			}
			blob, err := agg.MarshalBinary()
			if err != nil {
				t.Fatalf("%s: accepted blob failed to re-marshal: %v", fo.Name(), err)
			}
			if !bytes.Equal(blob, data) {
				t.Fatalf("%s: accepted blob is not canonical", fo.Name())
			}
		}
	})
}
