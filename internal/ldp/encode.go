package ldp

import "fmt"

// Report packing for the PEOS protocol (§VI-A2): "for both GRR and SOLH,
// the domain of the report can be mapped to an ordinal group
// {0, 1, ..., x}, where each index represents one different LDP report.
// Thus the LDP reports can be treated as numbers and shared with
// additive secret sharing."
//
// We pack a GRR report as the bare value, and a SOLH/OLH/Hadamard report
// as seed*outputSize + value, exactly the ordinal-group mapping the
// paper describes. Both fit a 64-bit word (seed is 32 bits, outputSize
// <= 2^31), which matches the paper's fixed 64-bit report size in
// Table III.

// WordEncoder maps reports of a given oracle to/from 64-bit words.
type WordEncoder struct {
	outputSize uint64 // size of the Value component's domain
	hashed     bool   // whether Seed participates
}

// NewWordEncoder returns the encoder for the given oracle. Only GRR and
// the hashing oracles (OLH/SOLH/Hadamard) have word encodings; the
// unary-encoding oracles report whole vectors and return an error.
func NewWordEncoder(fo FrequencyOracle) (*WordEncoder, error) {
	switch o := fo.(type) {
	case *GRR:
		return &WordEncoder{outputSize: uint64(o.Domain())}, nil
	case *LocalHash:
		return &WordEncoder{outputSize: uint64(o.DPrime()), hashed: true}, nil
	case *Hadamard:
		return &WordEncoder{outputSize: 2, hashed: true}, nil
	default:
		return nil, fmt.Errorf("ldp: oracle %s has no word encoding", fo.Name())
	}
}

// GroupOrder returns the size x+1 of the ordinal group the reports live
// in. All words returned by Encode are < GroupOrder.
func (e *WordEncoder) GroupOrder() uint64 {
	if e.hashed {
		return (1 << 32) * e.outputSize
	}
	return e.outputSize
}

// Encode packs a report into a word in [0, GroupOrder()).
func (e *WordEncoder) Encode(rep Report) uint64 {
	if uint64(rep.Value) >= e.outputSize {
		panic("ldp: report value out of range for encoder")
	}
	if !e.hashed {
		return uint64(rep.Value)
	}
	return uint64(rep.Seed)*e.outputSize + uint64(rep.Value)
}

// Decode unpacks a word produced by Encode. Words >= GroupOrder()
// (possible only through protocol corruption) are reduced modulo the
// group order, mirroring the wrap-around semantics of Z_{2^l} shares.
func (e *WordEncoder) Decode(word uint64) Report {
	word %= e.GroupOrder()
	if !e.hashed {
		return Report{Value: int(word)}
	}
	return Report{
		Seed:  uint32(word / e.outputSize),
		Value: int(word % e.outputSize),
	}
}

// UniformWord samples a uniformly random word, i.e. a uniform fake
// report in the oracle's output space — what each PEOS shuffler draws
// (Algorithm 1, "Sample Y' uniformly from output space of FO").
func (e *WordEncoder) UniformWord(random func(n uint64) uint64) uint64 {
	return random(e.GroupOrder())
}
