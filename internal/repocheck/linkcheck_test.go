package repocheck

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// writeFile is a test helper for staging fixture files.
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// mdLink matches inline markdown links [text](target).
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// localTargets extracts the intra-repo link targets from one markdown
// body: external URLs and pure fragments are skipped, fragments on
// relative paths are stripped.
func localTargets(body string) []string {
	var out []string
	for _, m := range mdLink.FindAllStringSubmatch(body, -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
			strings.HasPrefix(target, "#") {
			continue
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target != "" {
			out = append(out, target)
		}
	}
	return out
}

// The documentation link checker, gated in CI: every intra-repo path
// referenced from the markdown front door (README, DESIGN,
// EXPERIMENTS, and the rest) must exist. A renamed package or deleted
// example must not leave the docs pointing into the void.
func TestDocLinksResolve(t *testing.T) {
	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	docs, err := filepath.Glob(filepath.Join(root, "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) < 4 {
		t.Fatalf("found only %d markdown files at the repo root; expected at least README/DESIGN/EXPERIMENTS/ROADMAP", len(docs))
	}
	sawREADME := false
	for _, doc := range docs {
		if filepath.Base(doc) == "README.md" {
			sawREADME = true
		}
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range localTargets(string(body)) {
			resolved := filepath.Join(filepath.Dir(doc), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not exist", filepath.Base(doc), target)
			}
		}
	}
	if !sawREADME {
		t.Error("README.md is missing from the repository root")
	}
}

// The extractor must catch dead links and pass through live ones —
// the checker checking itself.
func TestLocalTargets(t *testing.T) {
	body := `
See [design](DESIGN.md#sec-8), the [runner](cmd/shuffled), an
[external ref](https://example.com/x), a [fragment](#local), and
[mail](mailto:x@y.z).
`
	got := localTargets(body)
	want := []string{"DESIGN.md", "cmd/shuffled"}
	if len(got) != len(want) {
		t.Fatalf("extracted %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("extracted %v, want %v", got, want)
		}
	}
}
