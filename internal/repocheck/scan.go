// Package repocheck holds the repository's self-auditing CI gates: the
// godoc audit (every package documented, every exported identifier
// commented) and the documentation link checker (no dead intra-repo
// paths in the markdown front door). Both run as ordinary tests, so
// `go test ./...` — and therefore every CI job — enforces them.
package repocheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// repoRoot locates the module root (the directory holding go.mod) from
// the test's working directory.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("repocheck: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// goPackageDirs returns every directory under root that contains
// non-test Go files, as root-relative paths.
func goPackageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			rel, err := filepath.Rel(root, filepath.Dir(path))
			if err != nil {
				return err
			}
			seen[rel] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// docFinding is one godoc-audit violation.
type docFinding struct {
	pos  token.Position
	what string
}

// String renders the finding as file:line: message.
func (f docFinding) String() string { return fmt.Sprintf("%s: %s", f.pos, f.what) }

// auditDir parses every non-test file of one package directory and
// returns the violations: a missing package doc comment, or an
// exported declaration (type, func, method, or const/var group)
// without one.
func auditDir(fset *token.FileSet, dir string) ([]docFinding, error) {
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []docFinding
	for _, pkg := range pkgs {
		hasPkgDoc := false
		var anyFile token.Position
		files := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			files = append(files, name)
		}
		sort.Strings(files)
		for _, name := range files {
			f := pkg.Files[name]
			if anyFile.Filename == "" {
				anyFile = fset.Position(f.Package)
			}
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
			findings = append(findings, auditFile(fset, f)...)
		}
		if !hasPkgDoc {
			findings = append(findings, docFinding{pos: anyFile,
				what: fmt.Sprintf("package %s has no package doc comment", pkg.Name)})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos.Filename != findings[j].pos.Filename {
			return findings[i].pos.Filename < findings[j].pos.Filename
		}
		return findings[i].pos.Line < findings[j].pos.Line
	})
	return findings, nil
}

func auditFile(fset *token.FileSet, f *ast.File) []docFinding {
	var findings []docFinding
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			if d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "" {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				findings = append(findings, docFinding{pos: fset.Position(d.Pos()),
					what: fmt.Sprintf("exported %s %s has no doc comment", kind, d.Name.Name)})
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != ""
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if !sp.Name.IsExported() {
						continue
					}
					if !groupDoc && (sp.Doc == nil || strings.TrimSpace(sp.Doc.Text()) == "") {
						findings = append(findings, docFinding{pos: fset.Position(sp.Pos()),
							what: fmt.Sprintf("exported type %s has no doc comment", sp.Name.Name)})
					}
				case *ast.ValueSpec:
					// A const/var group documents itself with one group
					// comment, per-spec comments, or per-spec line
					// comments; only a bare exported spec in an
					// undocumented group is a violation.
					if groupDoc {
						continue
					}
					specDoc := (sp.Doc != nil && strings.TrimSpace(sp.Doc.Text()) != "") ||
						(sp.Comment != nil && strings.TrimSpace(sp.Comment.Text()) != "")
					for _, name := range sp.Names {
						if name.IsExported() && !specDoc {
							findings = append(findings, docFinding{pos: fset.Position(sp.Pos()),
								what: fmt.Sprintf("exported %s has no doc comment", name.Name)})
						}
					}
				}
			}
		}
	}
	return findings
}
