package repocheck

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// The godoc audit, gated in CI (acceptance criterion of the
// documentation PR): every package in the module — internal/*, cmd/*,
// examples/*, and the root — must carry a package doc comment, and
// every exported identifier (type, function, method, const/var) must
// carry a doc comment. The equivalent of `revive -enable
// exported`, implemented over go/ast so the gate needs no tool the
// toolchain does not already ship.
func TestEveryExportedIdentifierDocumented(t *testing.T) {
	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := goPackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 20 {
		t.Fatalf("found only %d Go package directories under %s; the walk is broken", len(dirs), root)
	}
	fset := token.NewFileSet()
	total := 0
	for _, dir := range dirs {
		findings, err := auditDir(fset, filepath.Join(root, dir))
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
			total++
		}
	}
	if total > 0 {
		t.Logf("%d godoc violations; every exported identifier and package needs a doc comment", total)
	}
}

// Every internal package must be present in the audit walk — the
// acceptance criterion names internal/* explicitly, so losing a
// package from the walk must fail loudly, not silently shrink the
// gate.
func TestAuditCoversInternalPackages(t *testing.T) {
	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := goPackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	for _, d := range dirs {
		covered[filepath.ToSlash(d)] = true
	}
	for _, want := range []string{
		"internal/ldp", "internal/service", "internal/store", "internal/budget",
		"internal/amplify", "internal/transport", "internal/composition",
		"cmd/shuffled", "examples/durable_monitor", ".",
	} {
		if !covered[want] {
			t.Errorf("audit walk lost package directory %q", want)
		}
	}
}

// The audit helper itself must flag the violation classes it claims
// to: a file with an undocumented exported function and no package doc
// yields exactly those findings.
func TestAuditDetectsViolations(t *testing.T) {
	dir := t.TempDir()
	src := `package sample

func Exported() {}

type Undocumented struct{}

const Bare = 1
`
	if err := writeFile(filepath.Join(dir, "sample.go"), src); err != nil {
		t.Fatal(err)
	}
	findings, err := auditDir(token.NewFileSet(), dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"exported function Exported",
		"exported type Undocumented",
		"exported Bare",
		"no package doc comment",
	}
	for _, w := range want {
		found := false
		for _, f := range findings {
			if strings.Contains(f.String(), w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("audit missed %q in:\n%v", w, findings)
		}
	}
	if len(findings) != len(want) {
		t.Errorf("audit produced %d findings, want %d: %v", len(findings), len(want), findings)
	}
}
