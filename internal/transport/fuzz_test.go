package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzReadFrame feeds arbitrary wire bytes to ReadFrame. Whatever the
// input — malformed lengths, truncated payloads, trailing garbage — it
// must either return a payload consistent with the prefix or an error;
// it must never panic, and it must never hand back (or retain) more
// bytes than the input actually contained.
func FuzzReadFrame(f *testing.F) {
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add([]byte{})                               // no header at all
	f.Add([]byte{0, 0, 0})                        // short header
	f.Add(frame(nil))                             // empty frame
	f.Add(frame([]byte("hello")))                 // small frame
	f.Add(frame(bytes.Repeat([]byte{7}, 300)))    // medium frame
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})         // length > MaxFrameSize
	f.Add([]byte{0, 0, 0, 10, 1, 2})              // truncated payload
	f.Add([]byte{0x7f, 0xff, 0xff, 0xff, 0, 1})   // huge claimed length, 2 bytes sent
	f.Add(append(frame([]byte("a")), 0xde, 0xad)) // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		payload, err := ReadFrame(r)
		if err != nil {
			if payload != nil {
				t.Fatal("error with non-nil payload")
			}
			return
		}
		if len(payload)+4 > len(data) {
			t.Fatalf("payload %d bytes from %d input bytes", len(payload), len(data))
		}
		want := binary.BigEndian.Uint32(data[:4])
		if uint32(len(payload)) != want {
			t.Fatalf("payload length %d, prefix says %d", len(payload), want)
		}
		if !bytes.Equal(payload, data[4:4+len(payload)]) {
			t.Fatal("payload bytes differ from wire bytes")
		}
	})
}

// FuzzFrameRoundTrip checks WriteFrame/ReadFrame are exact inverses for
// any payload, and that a reader positioned after one frame picks up
// the next byte stream untouched.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte("report"))
	f.Add(bytes.Repeat([]byte{0xab}, 1000))

	f.Fuzz(func(t *testing.T, payload []byte) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(&buf, []byte("next")); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed payload: %d vs %d bytes", len(got), len(payload))
		}
		next, err := ReadFrame(&buf)
		if err != nil || string(next) != "next" {
			t.Fatalf("second frame corrupted: %q, %v", next, err)
		}
		if _, err := ReadFrame(&buf); err != io.EOF {
			t.Fatalf("expected EOF after last frame, got %v", err)
		}
	})
}
