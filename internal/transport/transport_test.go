package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMeterSendAccounting(t *testing.T) {
	var m Meter
	m.Send("alice", "bob", 100)
	m.Send("alice", "carol", 50)
	m.Send("bob", "alice", 10)
	if s := m.Stats("alice"); s.SentBytes != 150 || s.RecvBytes != 10 {
		t.Fatalf("alice stats %+v", s)
	}
	if s := m.Stats("bob"); s.SentBytes != 10 || s.RecvBytes != 100 {
		t.Fatalf("bob stats %+v", s)
	}
	if s := m.Stats("nobody"); s.SentBytes != 0 {
		t.Fatalf("unknown party should be zero: %+v", s)
	}
}

func TestMeterTrack(t *testing.T) {
	var m Meter
	m.Track("worker", func() { time.Sleep(10 * time.Millisecond) })
	if cpu := m.Stats("worker").CPU; cpu < 5*time.Millisecond {
		t.Fatalf("tracked CPU %v too small", cpu)
	}
	m.AddCPU("worker", time.Second)
	if cpu := m.Stats("worker").CPU; cpu < time.Second {
		t.Fatalf("AddCPU not applied: %v", cpu)
	}
}

func TestMeterNilSafe(t *testing.T) {
	var m *Meter
	m.Send("a", "b", 1) // must not panic
	ran := false
	m.Track("a", func() { ran = true })
	if !ran {
		t.Fatal("nil meter should still run fn")
	}
	if m.Parties() != nil {
		t.Fatal("nil meter parties should be nil")
	}
	if m.String() != "" {
		t.Fatal("nil meter String should be empty")
	}
	m.Reset()
}

func TestMeterPartiesSortedAndReset(t *testing.T) {
	var m Meter
	m.Send("zeta", "alpha", 1)
	got := m.Parties()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("Parties = %v", got)
	}
	if !strings.Contains(m.String(), "alpha") {
		t.Fatal("String missing party")
	}
	m.Reset()
	if len(m.Parties()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Send("a", "b", 1)
			}
		}()
	}
	wg.Wait()
	if s := m.Stats("a"); s.SentBytes != 8000 {
		t.Fatalf("lost updates: %d", s.SentBytes)
	}
}

// TestMeterConcurrentNoLostCounts hammers every mutating entry point
// from many goroutines — the access pattern of the streaming service,
// where each connection reader, the shuffler, and every worker accounts
// concurrently — while readers poll. All totals must be exact.
func TestMeterConcurrentNoLostCounts(t *testing.T) {
	const (
		goroutines = 16
		iters      = 2000
	)
	var m Meter
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers: must not perturb any count.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = m.Stats("user")
					_ = m.Parties()
					_ = m.String()
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		writers.Add(1)
		go func(id int) {
			defer writers.Done()
			for j := 0; j < iters; j++ {
				m.Send("user", "shuffler", 3)
				m.Send("shuffler", "server", 5)
				m.AddCPU("server", 7*time.Nanosecond)
				if j%500 == 0 {
					m.Track("server", func() {})
				}
			}
		}(i)
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	if s := m.Stats("user"); s.SentBytes != goroutines*iters*3 {
		t.Errorf("user sent %d, want %d", s.SentBytes, goroutines*iters*3)
	}
	if s := m.Stats("shuffler"); s.RecvBytes != goroutines*iters*3 || s.SentBytes != goroutines*iters*5 {
		t.Errorf("shuffler stats %+v", s)
	}
	s := m.Stats("server")
	if s.RecvBytes != goroutines*iters*5 {
		t.Errorf("server recv %d, want %d", s.RecvBytes, goroutines*iters*5)
	}
	if s.CPU < goroutines*iters*7*time.Nanosecond {
		t.Errorf("server CPU %v lost AddCPU increments", s.CPU)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, []byte("hello"), bytes.Repeat([]byte{7}, 100000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame mismatch: %d vs %d bytes", len(got), len(want))
		}
	}
}

func TestFrameOverNetPipe(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		_ = WriteFrame(a, []byte("over the wire"))
	}()
	got, err := ReadFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "over the wire" {
		t.Fatalf("got %q", got)
	}
}

func TestReadFrameRejectsHugeLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, 1, 2}) // claims 10 bytes, has 2
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("truncated frame should error")
	}
}

func TestTaggedFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []struct {
		tag     uint32
		payload []byte
	}{
		{0, []byte{}},
		{7, []byte("epoch seven")},
		{^uint32(0), bytes.Repeat([]byte{3}, 100000)}, // sentinel tag, multi-chunk payload
	}
	for _, f := range frames {
		if err := WriteTaggedFrame(&buf, f.tag, f.payload); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range frames {
		tag, got, err := ReadTaggedFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if tag != want.tag {
			t.Fatalf("tag = %d, want %d", tag, want.tag)
		}
		if !bytes.Equal(got, want.payload) {
			t.Fatalf("payload mismatch: %d vs %d bytes", len(got), len(want.payload))
		}
	}
}

func TestReadTaggedFrameRejectsHugeLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 1})
	if _, _, err := ReadTaggedFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadTaggedFrameTruncated(t *testing.T) {
	for _, raw := range [][]byte{
		{0, 0, 0, 10},                // header cut mid-tag
		{0, 0, 0, 10, 0, 0, 0, 2, 1}, // claims 10 payload bytes, has 1
	} {
		buf := bytes.NewBuffer(raw)
		if _, _, err := ReadTaggedFrame(buf); err == nil {
			t.Fatalf("truncated tagged frame %v should error", raw)
		}
	}
}

// A per-call limit rejects an over-limit prefix before touching the
// payload, with an error wrapping ErrFrameTooLarge; frames at or
// under the limit pass.
func TestReadTaggedFrameLimit(t *testing.T) {
	var buf bytes.Buffer
	payload := bytes.Repeat([]byte{5}, 100)
	if err := WriteTaggedFrame(&buf, 3, payload); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadTaggedFrameLimit(bytes.NewReader(buf.Bytes()), 99); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("over-limit frame: err = %v, want ErrFrameTooLarge", err)
	}
	tag, got, err := ReadTaggedFrameLimit(bytes.NewReader(buf.Bytes()), 100)
	if err != nil || tag != 3 || !bytes.Equal(got, payload) {
		t.Fatalf("at-limit frame: tag=%d err=%v", tag, err)
	}
	// Limit zero falls back to the defensive ceiling.
	if _, _, err := ReadTaggedFrameLimit(bytes.NewReader(buf.Bytes()), 0); err != nil {
		t.Fatalf("zero limit: %v", err)
	}
	// The rejection consumes only the header: the reader's payload is
	// untouched, so a caller that wants to resync could skip it.
	r := bytes.NewReader(buf.Bytes())
	_, _, _ = ReadTaggedFrameLimit(r, 10)
	if r.Len() != len(payload) {
		t.Fatalf("rejection consumed payload bytes: %d left, want %d", r.Len(), len(payload))
	}
}

// The reuse form appends into the caller's buffer: once it has grown
// to the working frame size, a steady-state read loop allocates
// nothing per frame, and payload bytes are still exact.
func TestReadTaggedFrameReuse(t *testing.T) {
	var buf bytes.Buffer
	frames := [][]byte{bytes.Repeat([]byte{1}, 300), []byte("short"), bytes.Repeat([]byte{2}, 200_000)}
	for i, p := range frames {
		if err := WriteTaggedFrame(&buf, uint32(i), p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i, want := range frames {
		tag, got, err := ReadTaggedFrameReuse(&buf, 0, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if tag != uint32(i) || !bytes.Equal(got, want) {
			t.Fatalf("frame %d: tag=%d len=%d", i, tag, len(got))
		}
		scratch = got
	}
	// With a warm buffer of sufficient capacity, the returned payload
	// aliases it — no per-frame payload allocation.
	var warm bytes.Buffer
	payload := bytes.Repeat([]byte{9}, 512)
	scratch = make([]byte, 0, len(payload))
	if err := WriteTaggedFrame(&warm, 1, payload); err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadTaggedFrameReuse(&warm, 0, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("warm reuse read did not reuse the caller's buffer")
	}
}

func TestEncodeDecodeUint64s(t *testing.T) {
	in := []uint64{0, 1, ^uint64(0), 0xdeadbeef}
	out, err := DecodeUint64s(EncodeUint64s(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("roundtrip mismatch at %d", i)
		}
	}
	if _, err := DecodeUint64s([]byte{1, 2, 3}); err == nil {
		t.Fatal("ragged payload should error")
	}
}

// Checked frames (the WAL record framing) round-trip, detect
// corruption as ErrChecksum, and report a torn tail as
// io.ErrUnexpectedEOF — the distinction internal/store's recovery
// leans on.
func TestCheckedFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{7}, 1000)} {
		var buf bytes.Buffer
		if err := WriteCheckedFrame(&buf, payload); err != nil {
			t.Fatal(err)
		}
		got, err := ReadCheckedFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed %d-byte payload", len(payload))
		}
	}
}

func TestCheckedFrameDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckedFrame(&buf, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[6] ^= 0x01 // flip a payload bit
	if _, err := ReadCheckedFrame(bytes.NewReader(data)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt frame: err = %v, want ErrChecksum", err)
	}
}

func TestCheckedFrameTornTail(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckedFrame(&buf, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		_, err := ReadCheckedFrame(bytes.NewReader(whole[:len(whole)-cut]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	if _, err := ReadCheckedFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}
