// Package transport provides the measurement and framing layer under
// the protocols: a Meter that attributes bytes sent/received and CPU
// time to named parties (users, shufflers, server — the rows of
// Table III), and length-prefixed message framing for running parties
// over real connections.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stats is the per-party cost account.
type Stats struct {
	// SentBytes and RecvBytes count application payload bytes.
	SentBytes, RecvBytes int64
	// CPU is wall-clock time spent inside Track sections.
	CPU time.Duration
}

// cell is the live, concurrently-updated form of a party's account.
// Counters are individual atomics rather than a mutex-guarded Stats so
// that the streaming service's per-frame accounting (one Send per
// report from every connection reader) never serializes the hot path.
type cell struct {
	sent, recv atomic.Int64
	cpu        atomic.Int64 // nanoseconds
}

func (c *cell) snapshot() Stats {
	return Stats{
		SentBytes: c.sent.Load(),
		RecvBytes: c.recv.Load(),
		CPU:       time.Duration(c.cpu.Load()),
	}
}

// Meter attributes communication and computation to named parties. The
// zero value is ready to use. Meter is safe for concurrent use: updates
// are lock-free atomic adds on per-party counters, so no count is ever
// lost and concurrent readers see consistent per-counter totals.
type Meter struct {
	cells sync.Map // party string -> *cell
}

func (m *Meter) cell(party string) *cell {
	if c, ok := m.cells.Load(party); ok {
		return c.(*cell)
	}
	c, _ := m.cells.LoadOrStore(party, &cell{})
	return c.(*cell)
}

// Send records a transfer of n payload bytes from one party to another.
func (m *Meter) Send(from, to string, n int) {
	if m == nil {
		return
	}
	m.cell(from).sent.Add(int64(n))
	m.cell(to).recv.Add(int64(n))
}

// Track runs fn and attributes its wall-clock duration to party.
func (m *Meter) Track(party string, fn func()) {
	if m == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	m.cell(party).cpu.Add(int64(time.Since(start)))
}

// AddCPU attributes a pre-measured duration to party (for callers that
// time sections themselves).
func (m *Meter) AddCPU(party string, d time.Duration) {
	if m == nil {
		return
	}
	m.cell(party).cpu.Add(int64(d))
}

// Stats returns a copy of the party's account (zero Stats if unknown).
func (m *Meter) Stats(party string) Stats {
	if m == nil {
		return Stats{}
	}
	if c, ok := m.cells.Load(party); ok {
		return c.(*cell).snapshot()
	}
	return Stats{}
}

// Parties returns the sorted list of known party names.
func (m *Meter) Parties() []string {
	if m == nil {
		return nil
	}
	var out []string
	m.cells.Range(func(k, _ any) bool {
		out = append(out, k.(string))
		return true
	})
	sort.Strings(out)
	return out
}

// Reset clears all accounts.
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	m.cells.Range(func(k, _ any) bool {
		m.cells.Delete(k)
		return true
	})
}

// String renders the accounts as a small table.
func (m *Meter) String() string {
	if m == nil {
		return ""
	}
	out := ""
	for _, p := range m.Parties() {
		s := m.Stats(p)
		out += fmt.Sprintf("%-12s sent=%d recv=%d cpu=%v\n", p, s.SentBytes, s.RecvBytes, s.CPU)
	}
	return out
}

// MaxFrameSize bounds a single frame (defensive limit against corrupt
// length prefixes).
const MaxFrameSize = 1 << 30

// ErrFrameTooLarge is returned when a frame length prefix exceeds
// MaxFrameSize.
var ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")

// WriteFrame writes a length-prefixed payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readChunk bounds how much ReadFrame allocates ahead of the bytes
// actually arriving, so a corrupt or hostile length prefix cannot force
// a huge up-front allocation.
const readChunk = 64 << 10

// readPayload reads an n32-byte payload after bound-checking the
// prefix. Checking before converting matters on 32-bit platforms: a
// prefix past 2^31 would overflow int and sail under the limit as a
// negative length, panicking in make. The buffer grows only as data
// arrives, so a connection that claims a large frame and hangs up
// costs at most one readChunk of memory beyond what it actually sent.
func readPayload(r io.Reader, n32 uint32) ([]byte, error) {
	return readPayloadLimit(r, n32, MaxFrameSize, nil)
}

// readPayloadLimit is readPayload with a caller-chosen frame cap and
// an optional reusable buffer: the payload is appended into buf[:0]
// when its capacity suffices, so a steady-state reader allocates
// nothing per frame. The cap is enforced before any payload byte is
// read — an over-limit prefix costs the caller nothing but the
// 4-to-8-byte header already consumed.
func readPayloadLimit(r io.Reader, n32 uint32, limit int, buf []byte) ([]byte, error) {
	if limit <= 0 || limit > MaxFrameSize {
		limit = MaxFrameSize
	}
	if n32 > uint32(limit) {
		return nil, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, n32, limit)
	}
	n := int(n32)
	payload := buf[:0]
	if payload == nil {
		payload = []byte{}
	}
	for len(payload) < n {
		old := len(payload)
		next := old + min(n-old, readChunk)
		if cap(payload) >= next {
			payload = payload[:next]
		} else {
			payload = append(payload, make([]byte, next-old)...)
		}
		if _, err := io.ReadFull(r, payload[old:]); err != nil {
			return nil, err
		}
	}
	return payload, nil
}

// ReadFrame reads one length-prefixed payload. A malformed prefix
// makes it error, never panic (see readPayload).
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	return readPayload(r, binary.BigEndian.Uint32(hdr[:]))
}

// WriteTaggedFrame writes a length-prefixed payload with a 4-byte tag
// between the length and the payload — the epoch-stamped report frame
// of the continual-observation service (the tag is the epoch id the
// sender is reporting into). The length prefix covers the payload
// only, matching WriteFrame.
func WriteTaggedFrame(w io.Writer, tag uint32, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], tag)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadTaggedFrame reads one frame written by WriteTaggedFrame and
// returns its tag and payload. It shares ReadFrame's defenses through
// readPayload.
func ReadTaggedFrame(r io.Reader) (uint32, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	tag := binary.BigEndian.Uint32(hdr[4:])
	payload, err := readPayload(r, binary.BigEndian.Uint32(hdr[:4]))
	if err != nil {
		return 0, nil, err
	}
	return tag, payload, nil
}

// ReadTaggedFrameLimit is ReadTaggedFrame with a per-call frame cap:
// a length prefix above limit returns an error wrapping
// ErrFrameTooLarge before any payload byte is read, so an ingest
// service can refuse oversized frames cheaply instead of honoring the
// 1 GiB defensive ceiling for every connection. A limit of zero (or
// one above MaxFrameSize) falls back to MaxFrameSize.
func ReadTaggedFrameLimit(r io.Reader, limit int) (uint32, []byte, error) {
	return ReadTaggedFrameReuse(r, limit, nil)
}

// ReadTaggedFrameReuse is ReadTaggedFrameLimit with a reusable payload
// buffer: the payload is appended into buf[:0], so a steady-state
// reader that passes back the previously returned slice allocates
// nothing per frame once the buffer has grown to the working frame
// size. The returned slice aliases buf when capacity sufficed — the
// caller owns exactly one of them.
func ReadTaggedFrameReuse(r io.Reader, limit int, buf []byte) (uint32, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	tag := binary.BigEndian.Uint32(hdr[4:])
	payload, err := readPayloadLimit(r, binary.BigEndian.Uint32(hdr[:4]), limit, buf)
	if err != nil {
		return 0, nil, err
	}
	return tag, payload, nil
}

// crcTable is the Castagnoli (CRC32C) polynomial table shared by the
// checked frames — the polynomial with hardware support on both amd64
// and arm64, and the conventional choice for storage framing.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksum is returned by ReadCheckedFrame when a frame's CRC32C
// trailer does not match its payload — the record was corrupted (or
// torn by a crash) after it was framed.
var ErrChecksum = errors.New("transport: frame checksum mismatch")

// WriteCheckedFrame writes a length-prefixed payload followed by a
// CRC32C of the payload: the record framing of the durable store's
// write-ahead log (internal/store). The layout is WriteFrame's with a
// 4-byte Castagnoli trailer, so a record torn by a crash or flipped on
// disk is detected at read time instead of replaying garbage.
func WriteCheckedFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.Checksum(payload, crcTable))
	_, err := w.Write(sum[:])
	return err
}

// ReadCheckedFrame reads one frame written by WriteCheckedFrame and
// verifies its checksum. It returns io.EOF cleanly at a frame
// boundary, io.ErrUnexpectedEOF when the stream ends inside a record
// (a torn tail), and ErrChecksum when the record is complete but its
// CRC32C does not match.
func ReadCheckedFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	payload, err := readPayload(r, binary.BigEndian.Uint32(hdr[:]))
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if binary.BigEndian.Uint32(sum[:]) != crc32.Checksum(payload, crcTable) {
		return nil, ErrChecksum
	}
	return payload, nil
}

// EncodeUint64s packs words little-endian (share-vector wire format).
func EncodeUint64s(words []uint64) []byte {
	out := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(out[8*i:], w)
	}
	return out
}

// DecodeUint64s reverses EncodeUint64s.
func DecodeUint64s(data []byte) ([]uint64, error) {
	if len(data)%8 != 0 {
		return nil, errors.New("transport: uint64 payload not a multiple of 8 bytes")
	}
	out := make([]uint64, len(data)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	return out, nil
}
