// Package transport provides the measurement and framing layer under
// the protocols: a Meter that attributes bytes sent/received and CPU
// time to named parties (users, shufflers, server — the rows of
// Table III), and length-prefixed message framing for running parties
// over real connections.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Stats is the per-party cost account.
type Stats struct {
	// SentBytes and RecvBytes count application payload bytes.
	SentBytes, RecvBytes int64
	// CPU is wall-clock time spent inside Track sections.
	CPU time.Duration
}

// Meter attributes communication and computation to named parties. The
// zero value is ready to use. Meter is safe for concurrent use.
type Meter struct {
	mu      sync.Mutex
	parties map[string]*Stats
}

func (m *Meter) stats(party string) *Stats {
	if m.parties == nil {
		m.parties = make(map[string]*Stats)
	}
	s, ok := m.parties[party]
	if !ok {
		s = &Stats{}
		m.parties[party] = s
	}
	return s
}

// Send records a transfer of n payload bytes from one party to another.
func (m *Meter) Send(from, to string, n int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats(from).SentBytes += int64(n)
	m.stats(to).RecvBytes += int64(n)
}

// Track runs fn and attributes its wall-clock duration to party.
func (m *Meter) Track(party string, fn func()) {
	if m == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats(party).CPU += elapsed
}

// AddCPU attributes a pre-measured duration to party (for callers that
// time sections themselves).
func (m *Meter) AddCPU(party string, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats(party).CPU += d
}

// Stats returns a copy of the party's account (zero Stats if unknown).
func (m *Meter) Stats(party string) Stats {
	if m == nil {
		return Stats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.parties[party]; ok {
		return *s
	}
	return Stats{}
}

// Parties returns the sorted list of known party names.
func (m *Meter) Parties() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.parties))
	for p := range m.parties {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Reset clears all accounts.
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.parties = nil
}

// String renders the accounts as a small table.
func (m *Meter) String() string {
	if m == nil {
		return ""
	}
	out := ""
	for _, p := range m.Parties() {
		s := m.Stats(p)
		out += fmt.Sprintf("%-12s sent=%d recv=%d cpu=%v\n", p, s.SentBytes, s.RecvBytes, s.CPU)
	}
	return out
}

// MaxFrameSize bounds a single frame (defensive limit against corrupt
// length prefixes).
const MaxFrameSize = 1 << 30

// ErrFrameTooLarge is returned when a frame length prefix exceeds
// MaxFrameSize.
var ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")

// WriteFrame writes a length-prefixed payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// EncodeUint64s packs words little-endian (share-vector wire format).
func EncodeUint64s(words []uint64) []byte {
	out := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(out[8*i:], w)
	}
	return out
}

// DecodeUint64s reverses EncodeUint64s.
func DecodeUint64s(data []byte) ([]uint64, error) {
	if len(data)%8 != 0 {
		return nil, errors.New("transport: uint64 payload not a multiple of 8 bytes")
	}
	out := make([]uint64, len(data)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	return out, nil
}
