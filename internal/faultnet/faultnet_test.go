package faultnet

import (
	"errors"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until EOF.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn)
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func TestPlannedResetTearsAtByteOffset(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	nw := New(Config{Plan: func(conn int) Fault { return Fault{ResetAfter: 100} }})
	conn, err := nw.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The first write is truncated to the 100-byte budget and resets.
	n, err := conn.Write(make([]byte, 150))
	if n != 100 {
		t.Fatalf("wrote %d bytes before the reset, want the 100-byte budget", n)
	}
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("torn write returned %v, want ErrInjected wrapping ECONNRESET", err)
	}
	// The connection stays dead.
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-reset write returned %v", err)
	}
	if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-reset read returned %v", err)
	}
	st := nw.Stats()
	if st.Resets != 1 || st.Conns != 1 {
		t.Fatalf("stats = %+v, want 1 conn and 1 reset", st)
	}
}

func TestResetBudgetCountsReads(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	nw := New(Config{Plan: func(conn int) Fault { return Fault{ResetAfter: 48} }})
	conn, err := nw.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// 32 bytes out, echoed back: 64 bytes total crosses the 48 budget
	// during the read leg.
	if _, err := conn.Write(make([]byte, 32)); err != nil {
		t.Fatalf("write within budget failed: %v", err)
	}
	buf := make([]byte, 32)
	got := 0
	for {
		n, err := conn.Read(buf[got:])
		got += n
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("read returned %v, want ErrInjected", err)
			}
			break
		}
		if got == len(buf) {
			t.Fatal("echo read completed past the reset budget")
		}
	}
	if got != 16 {
		t.Fatalf("read %d bytes before the reset, want 16 (budget 48 - 32 written)", got)
	}
}

func TestPeerObservesInjectedReset(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type result struct {
		err error
	}
	got := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			got <- result{err}
			return
		}
		defer conn.Close()
		buf := make([]byte, 256)
		for {
			if _, err := conn.Read(buf); err != nil {
				got <- result{err}
				return
			}
		}
	}()
	nw := New(Config{Plan: func(conn int) Fault { return Fault{ResetAfter: 64} }})
	conn, err := nw.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(make([]byte, 128)); !errors.Is(err, ErrInjected) {
		t.Fatalf("write returned %v, want ErrInjected", err)
	}
	select {
	case r := <-got:
		// A linger-0 close surfaces as ECONNRESET on most platforms; a
		// plain EOF would mean the peer mistook the fault for a clean
		// shutdown. Accept either hard error, reject nil and io.EOF.
		if r.err == nil || errors.Is(r.err, io.EOF) {
			t.Fatalf("peer observed %v, want a hard connection error", r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never observed the reset")
	}
}

func TestScheduleReproducibleAcrossNetworks(t *testing.T) {
	draw := func() []Fault {
		nw := New(Config{
			Seed:          42,
			RefuseProb:    0.3,
			ResetProb:     0.5,
			ResetAfterMin: 100,
			ResetAfterMax: 5000,
		})
		var out []Fault
		for i := 0; i < 32; i++ {
			f, _ := nw.next()
			out = append(out, f)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("conn %d drew %+v then %+v from the same seed", i, a[i], b[i])
		}
	}
	// A different seed must disagree somewhere.
	nw := New(Config{Seed: 43, RefuseProb: 0.3, ResetProb: 0.5, ResetAfterMin: 100, ResetAfterMax: 5000})
	same := true
	for i := range a {
		f, _ := nw.next()
		if f != a[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 drew identical 32-connection schedules")
	}
}

func TestRefusalAndPartition(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	nw := New(Config{Plan: func(conn int) Fault {
		return Fault{Refuse: conn == 0}
	}})
	if _, err := nw.Dial(addr, time.Second); !errors.Is(err, ErrRefused) || !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("scheduled refusal returned %v, want ErrRefused wrapping ECONNREFUSED", err)
	}
	conn, err := nw.Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("second dial should pass the schedule: %v", err)
	}
	defer conn.Close()

	// Partition severs the live connection and refuses new dials.
	nw.Partition(addr)
	if _, err := conn.Write([]byte("hello")); err == nil {
		// The sever may race the write's observation; the read leg must
		// see it.
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Fatal("severed connection still fully usable")
		}
	}
	if _, err := nw.Dial(addr, time.Second); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned dial returned %v, want ErrPartitioned", err)
	}
	nw.Heal(addr)
	conn2, err := nw.Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("dial after Heal failed: %v", err)
	}
	conn2.Close()
	st := nw.Stats()
	if st.Refused != 2 {
		t.Fatalf("refused = %d, want 2 (one scheduled, one partitioned)", st.Refused)
	}
	if st.Severed != 1 {
		t.Fatalf("severed = %d, want 1", st.Severed)
	}
}

func TestLatencyAndBandwidthShaping(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	nw := New(Config{Plan: func(conn int) Fault {
		return Fault{Latency: 30 * time.Millisecond, BandwidthBps: 10000}
	}})
	conn, err := nw.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// 30ms latency + 1000B / 10000Bps = 100ms pacing: >= 130ms total.
	start := time.Now()
	if _, err := conn.Write(make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 120*time.Millisecond {
		t.Fatalf("shaped write took %v, want >= ~130ms", d)
	}
}

func TestListenerAppliesSchedule(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nw := New(Config{Plan: func(conn int) Fault {
		// Refuse the first accepted connection, reset the second early.
		switch conn {
		case 0:
			return Fault{Refuse: true}
		default:
			return Fault{ResetAfter: 8}
		}
	}})
	wrapped := nw.Listener(ln)
	defer wrapped.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := wrapped.Accept()
		if err != nil {
			return
		}
		accepted <- conn
	}()
	// First dial: accepted then refused by schedule. The refusal's RST
	// may land before or after the dialer observes establishment, so
	// either a failed dial or a soon-dead connection is correct.
	if c1, err := net.Dial("tcp", ln.Addr().String()); err == nil {
		defer c1.Close()
	}
	// Second dial: delivered under the reset schedule.
	c2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	var server net.Conn
	select {
	case server = <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("Accept never delivered the second connection")
	}
	defer server.Close()
	if _, err := server.Write(make([]byte, 64)); !errors.Is(err, ErrInjected) {
		t.Fatalf("write on reset-scheduled conn returned %v, want ErrInjected", err)
	}
	st := nw.Stats()
	if st.Refused != 1 || st.Resets != 1 {
		t.Fatalf("stats = %+v, want 1 refusal and 1 reset", st)
	}
}
