// Package faultnet is a deterministic, seeded chaos layer for the
// networked tiers: it wraps net.Conn / net.Listener pairs (and the
// dial path) and injects latency, write-bandwidth caps, byte-offset
// connection resets, refused connections, and address partitions from
// a reproducible schedule. The cluster's self-healing machinery
// (internal/cluster retry, reconnect, and resubmit paths) is developed
// and regression-tested against this layer: the chaos conformance
// suite proves that under a seeded fault schedule the cluster still
// converges to estimates bit-identical to the in-process reference,
// with the budget ledger charged exactly once per sealed collection.
//
// Determinism is the point. Every wrapped connection is numbered in
// wrap order, and its fault schedule is either assigned explicitly
// (Config.Plan) or drawn from rng.Substream(Config.Seed, connNumber) —
// a pure function, so the k-th connection of a run always draws the
// same faults for the same seed. What stays nondeterministic is only
// the interleaving of goroutines, which is exactly the space a chaos
// test wants to explore while its fault schedule stays pinned.
//
// An injected reset is a real reset where the platform allows: the
// wrapper arms SO_LINGER with a zero timeout on TCP connections before
// closing, so the peer observes an RST (ECONNRESET), not a clean FIN —
// the difference between "the client finished" and "the client
// vanished mid-frame" that the cluster's readers must classify
// correctly. Both directions of a connection count against one byte
// budget, and an operation that would cross the budget is truncated to
// it first, so resets land mid-frame by construction.
package faultnet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"shuffledp/internal/rng"
)

// ErrInjected is the error surfaced on the injecting side of a
// scheduled connection reset. It wraps syscall.ECONNRESET so the
// classification helpers that recognize genuine peer resets (for
// example pipeline.Disconnected) treat an injected one identically.
var ErrInjected = fmt.Errorf("faultnet: injected connection reset: %w", syscall.ECONNRESET)

// ErrRefused is returned by Dial when the schedule refuses the
// connection. It wraps syscall.ECONNREFUSED for the same reason
// ErrInjected wraps ECONNRESET.
var ErrRefused = fmt.Errorf("faultnet: connection refused by schedule: %w", syscall.ECONNREFUSED)

// ErrPartitioned is returned by Dial for an address currently under
// Partition. It wraps syscall.ECONNREFUSED: from the dialer's point of
// view a partitioned peer and a dead one are indistinguishable.
var ErrPartitioned = fmt.Errorf("faultnet: address partitioned: %w", syscall.ECONNREFUSED)

// Fault is the schedule for one connection. The zero Fault injects
// nothing — the connection behaves exactly like the underlying one.
type Fault struct {
	// Refuse drops the connection at establishment: Dial returns
	// ErrRefused, an accepted connection is closed before delivery.
	Refuse bool
	// ResetAfter injects a hard reset once this many bytes have crossed
	// the connection, reads and writes combined (0 = never). The
	// operation that reaches the budget is truncated to it, so the
	// reset tears a frame mid-byte-stream.
	ResetAfter int
	// Latency is added before every Write, plus a uniform draw in
	// [0, Jitter) from the connection's schedule stream.
	Latency time.Duration
	// Jitter bounds the per-write random latency added on top of
	// Latency.
	Jitter time.Duration
	// BandwidthBps caps write throughput in bytes per second by
	// sleeping len/BandwidthBps per write (0 = unlimited).
	BandwidthBps int
}

// Config parameterizes a Network. When Plan is nil, each connection's
// Fault is drawn from rng.Substream(Seed, connNumber) using the
// probability and range fields below.
type Config struct {
	// Seed keys the per-connection schedule streams.
	Seed uint64
	// Plan, when non-nil, overrides the drawn schedule: it is called
	// once per wrapped connection with the connection's number (0, 1,
	// ... in wrap order) and returns its Fault verbatim. Deterministic
	// tests pin exact faults this way.
	Plan func(conn int) Fault
	// RefuseProb is the probability a connection is refused outright.
	RefuseProb float64
	// ResetProb is the probability a connection gets a reset budget.
	ResetProb float64
	// ResetAfterMin and ResetAfterMax bound the reset byte budget drawn
	// for a connection that the ResetProb coin selected (the draw is
	// uniform in [Min, Max]; Max <= Min pins the budget to Min).
	ResetAfterMin int
	// ResetAfterMax is the inclusive upper bound for the reset budget.
	ResetAfterMax int
	// Latency, Jitter, and BandwidthBps apply to every connection the
	// drawn schedule does not refuse, verbatim.
	Latency time.Duration
	// Jitter bounds the per-write random latency (see Fault.Jitter).
	Jitter time.Duration
	// BandwidthBps caps write throughput (see Fault.BandwidthBps).
	BandwidthBps int
}

// Stats counts the faults a Network actually injected — chaos tests
// assert on these so a schedule that silently stopped firing fails the
// test instead of quietly testing nothing.
type Stats struct {
	// Conns is the number of connections wrapped (schedules drawn).
	Conns int
	// Refused counts connections dropped at establishment (scheduled
	// refusals and partitioned dials).
	Refused int
	// Resets counts injected connection resets.
	Resets int
	// Severed counts live connections killed by Partition.
	Severed int
}

// Network draws fault schedules and wraps connections. One Network is
// one failure domain: its connection counter, partition set, and stats
// are shared across everything it wraps. Safe for concurrent use.
type Network struct {
	cfg Config

	mu          sync.Mutex
	seq         int
	stats       Stats
	partitioned map[string]bool
	live        map[*Conn]string // wrapped conn -> dialed address ("" if accepted)
}

// New returns a Network drawing schedules from cfg.
func New(cfg Config) *Network {
	return &Network{
		cfg:         cfg,
		partitioned: make(map[string]bool),
		live:        make(map[*Conn]string),
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// next draws the schedule for the next connection and returns it with
// the stream that continues to drive that connection's jitter.
func (n *Network) next() (Fault, *rng.Rand) {
	n.mu.Lock()
	k := n.seq
	n.seq++
	n.stats.Conns++
	n.mu.Unlock()
	r := rng.Substream(n.cfg.Seed, uint64(k))
	if n.cfg.Plan != nil {
		return n.cfg.Plan(k), r
	}
	var f Fault
	// Fixed draw order keeps the stream stable across config changes
	// that only zero probabilities out.
	refuse := r.Float64()
	reset := r.Float64()
	span := 0
	if n.cfg.ResetAfterMax > n.cfg.ResetAfterMin {
		span = n.cfg.ResetAfterMax - n.cfg.ResetAfterMin
	}
	budget := n.cfg.ResetAfterMin
	if span > 0 {
		budget += r.Intn(span + 1)
	}
	if refuse < n.cfg.RefuseProb {
		f.Refuse = true
		return f, r
	}
	if reset < n.cfg.ResetProb {
		f.ResetAfter = budget
	}
	f.Latency = n.cfg.Latency
	f.Jitter = n.cfg.Jitter
	f.BandwidthBps = n.cfg.BandwidthBps
	return f, r
}

// Dial establishes a TCP connection to addr within timeout and wraps
// it under the next schedule. It matches the cluster's DialFunc shape,
// so a node under test points its dial hook here. Partitioned
// addresses and scheduled refusals fail with ErrPartitioned and
// ErrRefused respectively.
func (n *Network) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	n.mu.Lock()
	part := n.partitioned[addr]
	n.mu.Unlock()
	if part {
		n.countRefusal()
		return nil, fmt.Errorf("faultnet: dial %s: %w", addr, ErrPartitioned)
	}
	f, r := n.next()
	if f.Refuse {
		n.countRefusal()
		return nil, fmt.Errorf("faultnet: dial %s: %w", addr, ErrRefused)
	}
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return n.adopt(raw, addr, f, r), nil
}

// Wrap places an existing connection under the next schedule. A
// refused schedule closes the connection immediately; its operations
// fail with ErrRefused.
func (n *Network) Wrap(raw net.Conn) net.Conn {
	f, r := n.next()
	if f.Refuse {
		n.countRefusal()
		raw.Close()
		c := n.adopt(raw, "", Fault{}, r)
		c.(*Conn).refused.Store(true)
		return c
	}
	return n.adopt(raw, "", f, r)
}

// Listener wraps ln so every accepted connection comes under the next
// schedule; accepted connections the schedule refuses are closed and
// skipped.
func (n *Network) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, net: n}
}

// Partition cuts the given dial addresses off: live connections dialed
// to them are severed (both ends observe the cut) and future Dials
// fail with ErrPartitioned until Heal.
func (n *Network) Partition(addrs ...string) {
	n.mu.Lock()
	var victims []*Conn
	for _, a := range addrs {
		n.partitioned[a] = true
		for c, dialed := range n.live {
			if dialed == a {
				victims = append(victims, c)
			}
		}
	}
	n.stats.Severed += len(victims)
	n.mu.Unlock()
	for _, c := range victims {
		c.sever()
	}
}

// Heal lifts the partition for the given addresses.
func (n *Network) Heal(addrs ...string) {
	n.mu.Lock()
	for _, a := range addrs {
		delete(n.partitioned, a)
	}
	n.mu.Unlock()
}

func (n *Network) countRefusal() {
	n.mu.Lock()
	n.stats.Refused++
	n.mu.Unlock()
}

func (n *Network) countReset() {
	n.mu.Lock()
	n.stats.Resets++
	n.mu.Unlock()
}

func (n *Network) adopt(raw net.Conn, addr string, f Fault, r *rng.Rand) net.Conn {
	c := &Conn{Conn: raw, net: n, fault: f, sched: r}
	if f.ResetAfter > 0 {
		c.budget.Store(int64(f.ResetAfter))
	} else {
		c.budget.Store(int64(1) << 62)
	}
	n.mu.Lock()
	n.live[c] = addr
	n.mu.Unlock()
	return c
}

func (n *Network) forget(c *Conn) {
	n.mu.Lock()
	delete(n.live, c)
	n.mu.Unlock()
}

type listener struct {
	net.Listener
	net *Network
}

// Accept wraps the next inbound connection under its drawn schedule,
// closing and skipping refused ones.
func (l *listener) Accept() (net.Conn, error) {
	for {
		raw, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		f, r := l.net.next()
		if f.Refuse {
			l.net.countRefusal()
			hardClose(raw)
			continue
		}
		return l.net.adopt(raw, "", f, r), nil
	}
}

// Conn is one connection under a fault schedule. It embeds the
// underlying net.Conn, so deadlines and addresses pass through.
type Conn struct {
	net.Conn
	net     *Network
	fault   Fault
	budget  atomic.Int64 // remaining bytes before the scheduled reset
	reset   atomic.Bool
	refused atomic.Bool

	schedMu sync.Mutex
	sched   *rng.Rand
}

// Read reads from the underlying connection, counting the bytes
// against the reset budget; a read that reaches the budget triggers
// the scheduled reset.
func (c *Conn) Read(p []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	if rem := c.budget.Load(); rem < int64(len(p)) {
		p = p[:rem]
	}
	n, err := c.Conn.Read(p)
	c.budget.Add(int64(-n))
	return n, err
}

// Write applies the schedule's latency and bandwidth shaping, then
// writes, counting bytes against the reset budget; a write that
// reaches the budget delivers the bytes up to it and then resets.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	c.shape(len(p))
	torn := false
	if rem := c.budget.Load(); rem < int64(len(p)) {
		p = p[:rem]
		torn = true
	}
	n, err := c.Conn.Write(p)
	c.budget.Add(int64(-n))
	if err != nil {
		return n, err
	}
	if torn {
		return n, c.doReset()
	}
	return n, nil
}

// Close closes the underlying connection and drops it from the
// Network's live set.
func (c *Conn) Close() error {
	c.net.forget(c)
	return c.Conn.Close()
}

// gate fails the operation when the connection was refused, already
// reset, or its budget is spent (triggering the reset now).
func (c *Conn) gate() error {
	if c.refused.Load() {
		return ErrRefused
	}
	if c.reset.Load() {
		return ErrInjected
	}
	if c.budget.Load() <= 0 {
		return c.doReset()
	}
	return nil
}

// doReset performs the scheduled reset exactly once: linger zero (so
// TCP peers observe an RST, not a FIN), close, count.
func (c *Conn) doReset() error {
	if c.reset.CompareAndSwap(false, true) {
		c.net.countReset()
		c.net.forget(c)
		hardClose(c.Conn)
	}
	return ErrInjected
}

// sever is the partition cut: like a reset, but counted by the caller.
func (c *Conn) sever() {
	if c.reset.CompareAndSwap(false, true) {
		c.net.forget(c)
		hardClose(c.Conn)
	}
}

// shape sleeps out the schedule's latency, jitter, and bandwidth cost
// for an n-byte write.
func (c *Conn) shape(n int) {
	d := c.fault.Latency
	if c.fault.Jitter > 0 {
		c.schedMu.Lock()
		d += time.Duration(c.sched.Uint64n(uint64(c.fault.Jitter)))
		c.schedMu.Unlock()
	}
	if c.fault.BandwidthBps > 0 {
		d += time.Duration(int64(n) * int64(time.Second) / int64(c.fault.BandwidthBps))
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// hardClose closes a connection so a TCP peer sees an RST: linger is
// armed with a zero timeout first, which discards untransmitted data
// and aborts instead of the orderly FIN handshake.
func hardClose(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}
