// Package budget is the cross-epoch privacy-loss ledger of the
// continual-observation tier. The paper analyzes one collection round;
// a deployed service re-collects the same population every epoch, so
// the privacy loss composes over time. The ledger holds a total
// (eps, delta) budget, charges one per-epoch guarantee each time the
// service opens a new epoch, and refuses the charge — which the
// service turns into refusing ingestion — once the composed loss would
// exceed the total.
//
// Two accountants compose the per-epoch guarantees through
// internal/composition:
//
//   - Naive: basic composition, k epochs cost (k*eps, k*delta). This is
//     the floor(B/eps) accounting of the acceptance criterion.
//   - Advanced: the tighter of basic and Dwork–Rothblum–Vadhan advanced
//     composition, so for small per-epoch budgets the same total B
//     admits strictly more epochs (the sqrt(k) regime).
package budget

import (
	"errors"
	"fmt"
	"sync"

	"shuffledp/internal/composition"
)

// ErrExhausted is returned by Charge when opening one more epoch would
// push the composed privacy loss past the ledger's total budget.
var ErrExhausted = errors.New("budget: total privacy budget exhausted")

// maxEpochsCap bounds the MaxEpochs search; a ledger that admits a
// billion epochs is unlimited for every practical purpose.
const maxEpochsCap = 1 << 30

// Accountant composes k identical per-epoch guarantees into the total
// privacy loss it can prove. Compose must be monotone in k: more
// epochs never prove a smaller loss.
type Accountant interface {
	// Name identifies the accountant in logs and snapshots.
	Name() string
	// Compose returns the guarantee of k epochs at per each.
	Compose(per composition.Guarantee, k int) (composition.Guarantee, error)
}

// Naive is basic (sequential) composition: k epochs of (eps, delta)
// cost exactly (k*eps, k*delta).
type Naive struct{}

// Name implements Accountant.
func (Naive) Name() string { return "naive" }

// Compose implements Accountant.
func (Naive) Compose(per composition.Guarantee, k int) (composition.Guarantee, error) {
	if k < 0 {
		return composition.Guarantee{}, errors.New("budget: negative epoch count")
	}
	kf := float64(k)
	return composition.Guarantee{Eps: kf * per.Eps, Delta: kf * per.Delta}, nil
}

// Advanced is the advanced-composition accountant: it proves the
// tighter of basic composition and the Dwork–Rothblum–Vadhan bound
// with slack Slack, so it is never worse than Naive and strictly
// better once eps*sqrt(2k ln(1/slack)) + k eps (e^eps - 1) < k eps.
type Advanced struct {
	// Slack is the delta' the advanced bound spends. It must be in
	// (0, 1) and is additional to the k*delta the epochs themselves
	// contribute; a ledger comparing against a total delta must leave
	// room for it.
	Slack float64
}

// Name implements Accountant.
func (a Advanced) Name() string { return "advanced" }

// Compose implements Accountant.
func (a Advanced) Compose(per composition.Guarantee, k int) (composition.Guarantee, error) {
	basic, err := Naive{}.Compose(per, k)
	if err != nil {
		return composition.Guarantee{}, err
	}
	if k == 0 {
		return basic, nil
	}
	if a.Slack <= 0 || a.Slack >= 1 {
		return composition.Guarantee{}, errors.New("budget: advanced accountant needs slack in (0, 1)")
	}
	adv, err := composition.Advanced(per, k, a.Slack)
	if err != nil {
		return composition.Guarantee{}, err
	}
	// Both bounds hold simultaneously, so the mechanism satisfies the
	// one with the smaller epsilon.
	if adv.Eps < basic.Eps {
		return adv, nil
	}
	return basic, nil
}

// Ledger tracks how many epochs have been opened against a total
// budget. It is safe for concurrent use.
type Ledger struct {
	mu      sync.Mutex
	total   composition.Guarantee
	per     composition.Guarantee
	acct    Accountant
	charged int
}

// NewLedger returns a ledger that admits epochs of guarantee per until
// acct composes them past total. A nil acct means Naive.
func NewLedger(total, per composition.Guarantee, acct Accountant) (*Ledger, error) {
	if total.Eps <= 0 || total.Delta < 0 || total.Delta >= 1 {
		return nil, errors.New("budget: total needs eps > 0 and delta in [0, 1)")
	}
	if per.Eps <= 0 || per.Delta < 0 || per.Delta >= 1 {
		return nil, errors.New("budget: per-epoch guarantee needs eps > 0 and delta in [0, 1)")
	}
	if acct == nil {
		acct = Naive{}
	}
	// Surface accountant misconfiguration (e.g. an out-of-range slack)
	// at construction rather than at the first Charge.
	if _, err := acct.Compose(per, 1); err != nil {
		return nil, fmt.Errorf("budget: accountant rejects a single epoch: %w", err)
	}
	return &Ledger{total: total, per: per, acct: acct}, nil
}

// fits reports whether k epochs stay within the total budget. The
// tiny relative tolerance keeps charges like 10 epochs of eps = B/10
// from failing on the last epoch's floating-point rounding.
func (l *Ledger) fits(k int) (bool, error) {
	g, err := l.acct.Compose(l.per, k)
	if err != nil {
		return false, err
	}
	const tol = 1 + 1e-9
	return g.Eps <= l.total.Eps*tol && g.Delta <= l.total.Delta*tol, nil
}

// Charge opens one more epoch. It returns ErrExhausted — and leaves
// the ledger unchanged — if the composed loss of the extra epoch would
// exceed the total budget.
func (l *Ledger) Charge() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ok, err := l.fits(l.charged + 1)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %d epochs of (%.4g, %.3g) under %s accounting spend (%.4g, %.3g) of the total (%.4g, %.3g)",
			ErrExhausted, l.charged, l.per.Eps, l.per.Delta, l.acct.Name(),
			l.mustSpent().Eps, l.mustSpent().Delta, l.total.Eps, l.total.Delta)
	}
	l.charged++
	return nil
}

// mustSpent is Spent without locking; callers hold l.mu.
func (l *Ledger) mustSpent() composition.Guarantee {
	g, err := l.acct.Compose(l.per, l.charged)
	if err != nil {
		// The constructor verified Compose(per, 1); monotone accountants
		// cannot start failing later.
		panic(fmt.Sprintf("budget: accountant failed at charged=%d: %v", l.charged, err))
	}
	return g
}

// Restore sets the charged-epoch count to k, the recovery path of the
// durable service (internal/store): a restarted analyzer must resume
// the ledger where the crashed one left it rather than re-spending the
// budget from zero. k epochs must fit the total budget — a recorded
// count the accountant cannot prove means the ledger was restored with
// the wrong parameters, and loading it would fabricate guarantees.
// Restoring an exactly-exhausted count (k fits, k+1 does not) is valid:
// the recovered ledger then refuses the next Charge just as the
// original did.
func (l *Ledger) Restore(k int) error {
	if k < 0 {
		return errors.New("budget: negative restored epoch count")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ok, err := l.fits(k)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("budget: restored count of %d epochs exceeds the total budget (wrong ledger parameters?)", k)
	}
	l.charged = k
	return nil
}

// Epochs returns how many epochs have been charged so far.
func (l *Ledger) Epochs() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.charged
}

// Spent returns the composed privacy loss of the charged epochs.
func (l *Ledger) Spent() composition.Guarantee {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mustSpent()
}

// Total returns the ledger's total budget.
func (l *Ledger) Total() composition.Guarantee { return l.total }

// PerEpoch returns the per-epoch guarantee each charge spends.
func (l *Ledger) PerEpoch() composition.Guarantee { return l.per }

// AccountantName returns the composing accountant's name.
func (l *Ledger) AccountantName() string { return l.acct.Name() }

// Remaining returns the budget left before the ledger exhausts:
// total minus spent, floored at zero component-wise. It is a progress
// indicator, not a charging rule — Charge composes from scratch.
func (l *Ledger) Remaining() composition.Guarantee {
	spent := l.Spent()
	rem := composition.Guarantee{Eps: l.total.Eps - spent.Eps, Delta: l.total.Delta - spent.Delta}
	if rem.Eps < 0 {
		rem.Eps = 0
	}
	if rem.Delta < 0 {
		rem.Delta = 0
	}
	return rem
}

// MaxEpochs returns the largest epoch count the total budget admits
// under this accountant (independent of how many are already charged),
// capped at 2^30. Compose is monotone in k, so the bound is found by
// doubling then bisecting.
func (l *Ledger) MaxEpochs() int {
	ok, err := l.fits(1)
	if err != nil || !ok {
		return 0
	}
	lo := 1 // known to fit
	hi := 2
	for hi < maxEpochsCap {
		if ok, err := l.fits(hi); err == nil && ok {
			lo = hi
			hi *= 2
		} else {
			break
		}
	}
	if hi >= maxEpochsCap {
		return maxEpochsCap
	}
	// Invariant: lo fits, hi does not.
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if ok, err := l.fits(mid); err == nil && ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
