package budget

import (
	"errors"
	"sync"
	"testing"

	"shuffledp/internal/composition"
)

// The acceptance criterion's accounting rule: with a total budget B and
// per-epoch eps under naive composition, exactly floor(B/eps) epochs
// charge and the next one is refused.
func TestNaiveFloorEpochs(t *testing.T) {
	cases := []struct {
		totalEps, perEps float64
		want             int
	}{
		{1.0, 0.3, 3},
		{1.0, 0.1, 10}, // exact division must not lose the last epoch to rounding
		{2.0, 0.5, 4},
		{0.5, 0.6, 0},
		{1.0, 1.0, 1},
	}
	for _, c := range cases {
		l, err := NewLedger(
			composition.Guarantee{Eps: c.totalEps, Delta: 1e-6},
			composition.Guarantee{Eps: c.perEps, Delta: 1e-9},
			Naive{},
		)
		if err != nil {
			t.Fatal(err)
		}
		if got := l.MaxEpochs(); got != c.want {
			t.Fatalf("B=%v eps=%v: MaxEpochs = %d, want floor(B/eps) = %d", c.totalEps, c.perEps, got, c.want)
		}
		for i := 0; i < c.want; i++ {
			if err := l.Charge(); err != nil {
				t.Fatalf("B=%v eps=%v: charge %d failed: %v", c.totalEps, c.perEps, i+1, err)
			}
		}
		if err := l.Charge(); !errors.Is(err, ErrExhausted) {
			t.Fatalf("B=%v eps=%v: charge %d returned %v, want ErrExhausted", c.totalEps, c.perEps, c.want+1, err)
		}
		if got := l.Epochs(); got != c.want {
			t.Fatalf("refused charge moved the ledger: %d epochs, want %d", got, c.want)
		}
	}
}

// Advanced composition must admit strictly more epochs than naive at
// the same total budget in the small-per-epoch regime, and the
// composed loss at its own maximum must still fit the total.
func TestAdvancedBeatsNaive(t *testing.T) {
	total := composition.Guarantee{Eps: 2, Delta: 1e-4}
	per := composition.Guarantee{Eps: 0.01, Delta: 1e-8}
	naive, err := NewLedger(total, per, Naive{})
	if err != nil {
		t.Fatal(err)
	}
	adv, err := NewLedger(total, per, Advanced{Slack: 5e-5})
	if err != nil {
		t.Fatal(err)
	}
	nMax, aMax := naive.MaxEpochs(), adv.MaxEpochs()
	if nMax != 200 {
		t.Fatalf("naive MaxEpochs = %d, want floor(2/0.01) = 200", nMax)
	}
	if aMax <= nMax {
		t.Fatalf("advanced MaxEpochs = %d, not strictly more than naive's %d", aMax, nMax)
	}
	g, err := Advanced{Slack: 5e-5}.Compose(per, aMax)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1 + 1e-9
	if g.Eps > total.Eps*tol || g.Delta > total.Delta*tol {
		t.Fatalf("advanced max %d composes to (%v, %v), outside total (%v, %v)", aMax, g.Eps, g.Delta, total.Eps, total.Delta)
	}
	t.Logf("B=%v: naive admits %d epochs, advanced %d (%.1fx)", total.Eps, nMax, aMax, float64(aMax)/float64(nMax))
}

// Advanced must never be worse than naive: it takes the tighter of the
// two bounds at every k.
func TestAdvancedNeverWorseThanNaive(t *testing.T) {
	per := composition.Guarantee{Eps: 0.2, Delta: 1e-9}
	a := Advanced{Slack: 1e-6}
	for k := 0; k <= 400; k += 7 {
		basic, err := Naive{}.Compose(per, k)
		if err != nil {
			t.Fatal(err)
		}
		adv, err := a.Compose(per, k)
		if err != nil {
			t.Fatal(err)
		}
		if adv.Eps > basic.Eps {
			t.Fatalf("k=%d: advanced eps %v exceeds naive %v", k, adv.Eps, basic.Eps)
		}
	}
}

// The total delta binds too: per-epoch deltas accumulate linearly under
// both accountants, so a tight delta budget limits epochs even with
// plenty of epsilon left.
func TestDeltaBinds(t *testing.T) {
	l, err := NewLedger(
		composition.Guarantee{Eps: 100, Delta: 1e-6},
		composition.Guarantee{Eps: 0.1, Delta: 4e-7},
		Naive{},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.MaxEpochs(); got != 2 {
		t.Fatalf("MaxEpochs = %d, want 2 (delta-bound)", got)
	}
}

func TestSpentAndRemaining(t *testing.T) {
	total := composition.Guarantee{Eps: 1, Delta: 1e-6}
	per := composition.Guarantee{Eps: 0.25, Delta: 1e-8}
	l, err := NewLedger(total, per, nil) // nil accountant defaults to Naive
	if err != nil {
		t.Fatal(err)
	}
	if l.AccountantName() != "naive" {
		t.Fatalf("default accountant %q, want naive", l.AccountantName())
	}
	for i := 1; i <= 3; i++ {
		if err := l.Charge(); err != nil {
			t.Fatal(err)
		}
		spent := l.Spent()
		if want := 0.25 * float64(i); spent.Eps != want {
			t.Fatalf("after %d charges Spent().Eps = %v, want %v", i, spent.Eps, want)
		}
	}
	rem := l.Remaining()
	if rem.Eps != 0.25 {
		t.Fatalf("Remaining().Eps = %v, want 0.25", rem.Eps)
	}
	if l.Total() != total || l.PerEpoch() != per {
		t.Fatal("Total/PerEpoch do not echo the construction parameters")
	}
}

func TestNewLedgerValidation(t *testing.T) {
	good := composition.Guarantee{Eps: 1, Delta: 1e-6}
	bad := []struct {
		name       string
		total, per composition.Guarantee
		acct       Accountant
	}{
		{"zero total eps", composition.Guarantee{Delta: 1e-6}, good, nil},
		{"zero per eps", good, composition.Guarantee{Delta: 1e-6}, nil},
		{"total delta 1", composition.Guarantee{Eps: 1, Delta: 1}, good, nil},
		{"bad slack", good, good, Advanced{Slack: 2}},
	}
	for _, c := range bad {
		if _, err := NewLedger(c.total, c.per, c.acct); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// Concurrent charges must account exactly: no matter how the charges
// race, precisely MaxEpochs succeed.
func TestConcurrentCharges(t *testing.T) {
	l, err := NewLedger(
		composition.Guarantee{Eps: 1, Delta: 1e-6},
		composition.Guarantee{Eps: 0.05, Delta: 1e-9},
		Naive{},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := l.MaxEpochs() // 20
	var wg sync.WaitGroup
	oks := make(chan bool, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			oks <- l.Charge() == nil
		}()
	}
	wg.Wait()
	close(oks)
	got := 0
	for ok := range oks {
		if ok {
			got++
		}
	}
	if got != want || l.Epochs() != want {
		t.Fatalf("%d concurrent charges succeeded (ledger at %d), want exactly %d", got, l.Epochs(), want)
	}
}

// Restore is the recovery path: it must accept any provable count —
// including an exactly-exhausted one — and refuse counts the
// accountant cannot prove (wrong ledger parameters).
func TestLedgerRestore(t *testing.T) {
	newLedger := func() *Ledger {
		l, err := NewLedger(
			composition.Guarantee{Eps: 3, Delta: 3e-9},
			composition.Guarantee{Eps: 1, Delta: 1e-9},
			Naive{},
		)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	l := newLedger()
	if err := l.Restore(2); err != nil {
		t.Fatalf("Restore(2): %v", err)
	}
	if got := l.Epochs(); got != 2 {
		t.Fatalf("Epochs() = %d after Restore(2)", got)
	}
	if err := l.Charge(); err != nil {
		t.Fatalf("charge after restore: %v", err)
	}
	if err := l.Charge(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("4th epoch charged: %v", err)
	}

	// Exactly exhausted restores fine and still refuses the next.
	l = newLedger()
	if err := l.Restore(3); err != nil {
		t.Fatalf("Restore(3): %v", err)
	}
	if err := l.Charge(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("charge after exhausted restore: %v", err)
	}

	// Counts the budget cannot prove are refused.
	l = newLedger()
	if err := l.Restore(4); err == nil {
		t.Fatal("Restore(4) accepted a count past the total budget")
	}
	if err := l.Restore(-1); err == nil {
		t.Fatal("Restore(-1) accepted a negative count")
	}
	if got := l.Epochs(); got != 0 {
		t.Fatalf("failed Restore mutated the ledger to %d epochs", got)
	}
}
