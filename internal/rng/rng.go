// Package rng provides deterministic, seedable pseudo-random number
// generation and the samplers the rest of the repository builds on:
// Bernoulli, exact binomial (BINV/BTPE), Laplace, Zipf, and Walker alias
// tables for arbitrary discrete distributions.
//
// Experiments use rng for reproducibility; protocol cryptography uses
// crypto/rand instead (see internal/ahe, internal/ecies).
//
// The core generator is xoshiro256**, seeded through splitmix64 so that
// any 64-bit seed (including 0) yields a well-mixed state.
package rng

import "math"

// Rand is a deterministic pseudo-random generator (xoshiro256**).
// It is NOT safe for concurrent use; give each goroutine its own Rand
// (see Split).
type Rand struct {
	s [4]uint64
}

// splitmix64 advances *x and returns the next splitmix64 output.
// It is used only for seeding.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro256** requires a nonzero state; splitmix64 guarantees the
	// four outputs are not all zero for any seed, but be defensive.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from r's future output because the child is re-seeded
// through splitmix64.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}

// Substream returns the generator for stream number `stream` of the
// given user seed. Unlike Split, the derivation is a pure function of
// (seed, stream): shard s of a computation always sees the same random
// stream no matter how many workers run, which is what makes the
// parallel estimation engine reproducible independent of concurrency.
// Distinct (seed, stream) pairs are decorrelated by two rounds of
// splitmix64 mixing.
func Substream(seed, stream uint64) *Rand {
	x := seed
	a := splitmix64(&x)
	x = a ^ (stream * 0x9e3779b97f4a7c15)
	return New(splitmix64(&x))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Lemire multiply-shift with rejection of the biased low region.
	threshold := (-n) % n // == (2^64 - n) mod n
	for {
		hi, lo := mul64(r.Uint64(), n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponential variate with rate 1 (mean 1).
func (r *Rand) Exp() float64 {
	// Inverse CDF; guard against log(0).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Laplace returns a Laplace(0, scale) variate.
func (r *Rand) Laplace(scale float64) float64 {
	// Difference of two exponentials has a Laplace distribution; the
	// inverse-CDF form below needs one uniform only.
	u := r.Float64() - 0.5
	if u >= 0 {
		return -scale * math.Log(1-2*u)
	}
	return scale * math.Log(1+2*u)
}

// Normal returns a standard normal variate (polar Marsaglia method).
func (r *Rand) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials, i.e. a Geometric(p) variate with support {0, 1, ...}.
// It panics if p <= 0 or p > 1.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}
