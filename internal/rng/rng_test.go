package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 9 {
		t.Fatalf("seed 0 produced repetitive output: %d distinct of 10", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	child := r.Split()
	// The child stream should not simply replay the parent stream.
	equal := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == child.Uint64() {
			equal++
		}
	}
	if equal > 1 {
		t.Fatalf("split stream matches parent %d/64 times", equal)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(1)
	for _, n := range []uint64{1, 2, 3, 7, 10, 1 << 20, 915, 42178} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	r := New(2)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n == 0")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(4)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(5)
	const trials = 200000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < trials; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) mean = %v", p, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(7)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Perm first element %d: got %d want ~%.0f", i, c, want)
		}
	}
}

func TestShuffleMultisetPreserved(t *testing.T) {
	r := New(8)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: sum %d -> %d", sum, got)
	}
}

func TestLaplaceMoments(t *testing.T) {
	r := New(9)
	const trials = 400000
	scale := 2.0
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		x := r.Laplace(scale)
		sum += x
		sumSq += x * x
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	want := 2 * scale * scale
	if math.Abs(variance-want)/want > 0.05 {
		t.Errorf("Laplace variance = %v, want ~%v", variance, want)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(10)
	const trials = 400000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		x := r.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Normal variance = %v", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(11)
	const trials = 400000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += r.Exp()
	}
	if mean := sum / trials; math.Abs(mean-1) > 0.01 {
		t.Errorf("Exp mean = %v, want ~1", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(12)
	const trials = 200000
	p := 0.25
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / trials
	want := (1 - p) / p
	if math.Abs(mean-want)/want > 0.03 {
		t.Errorf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
	if r.Geometric(1) != 0 {
		t.Error("Geometric(1) != 0")
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p == 0")
		}
	}()
	New(1).Geometric(0)
}

// Property: Uint64n(n) < n for all n > 0.
func TestQuickUint64nInRange(t *testing.T) {
	r := New(13)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mul64 matches big-integer multiplication on the low 64 bits
// and produces consistent hi words via the identity
// (x*y) >> 64 == hi and (x*y) & mask == lo.
func TestQuickMul64(t *testing.T) {
	f := func(x, y uint64) bool {
		hi, lo := mul64(x, y)
		if lo != x*y {
			return false
		}
		// Verify hi via 32-bit decomposition done independently.
		x0, x1 := x&0xffffffff, x>>32
		y0, y1 := y&0xffffffff, y>>32
		carry := ((x0*y0)>>32 + (x1*y0)&0xffffffff + (x0*y1)&0xffffffff) >> 32
		wantHi := x1*y1 + (x1*y0)>>32 + (x0*y1)>>32 + carry
		return hi == wantHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Substream is a pure function of (seed, stream): the same pair always
// yields the same stream, and nearby pairs are decorrelated.
func TestSubstreamDeterministicAndDistinct(t *testing.T) {
	a := Substream(7, 3)
	b := Substream(7, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Substream not deterministic")
		}
	}
	// Distinct streams of one seed, and the same stream of distinct
	// seeds, must diverge immediately-ish.
	pairs := [][2]*Rand{
		{Substream(7, 3), Substream(7, 4)},
		{Substream(7, 3), Substream(8, 3)},
		{Substream(7, 0), Substream(0, 7)},
	}
	for i, p := range pairs {
		same := 0
		for j := 0; j < 64; j++ {
			if p[0].Uint64() == p[1].Uint64() {
				same++
			}
		}
		if same > 0 {
			t.Fatalf("pair %d: %d/64 outputs collide", i, same)
		}
	}
}

// Sequential consumption from one substream must not perturb another —
// the property the sharded randomization engine relies on.
func TestSubstreamIndependence(t *testing.T) {
	first := Substream(1, 0)
	want := make([]uint64, 16)
	for i := range want {
		want[i] = first.Uint64()
	}
	// Interleave with heavy use of a sibling stream.
	sib := Substream(1, 1)
	again := Substream(1, 0)
	for i := range want {
		for j := 0; j < 10; j++ {
			sib.Uint64()
		}
		if got := again.Uint64(); got != want[i] {
			t.Fatalf("output %d perturbed", i)
		}
	}
}
