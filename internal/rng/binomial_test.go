package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialDegenerate(t *testing.T) {
	r := New(1)
	if r.Binomial(0, 0.5) != 0 {
		t.Error("Binomial(0, .5) != 0")
	}
	if r.Binomial(100, 0) != 0 {
		t.Error("Binomial(100, 0) != 0")
	}
	if r.Binomial(100, 1) != 100 {
		t.Error("Binomial(100, 1) != 100")
	}
}

func TestBinomialPanicsNegativeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Binomial(-1, 0.5)
}

// checkBinomialMoments verifies mean and variance against theory within
// z standard errors.
func checkBinomialMoments(t *testing.T, seed uint64, n int, p float64, trials int) {
	t.Helper()
	r := New(seed)
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		x := float64(r.Binomial(n, p))
		if x < 0 || x > float64(n) {
			t.Fatalf("Binomial(%d,%v) out of range: %v", n, p, x)
		}
		sum += x
		sumSq += x * x
	}
	tf := float64(trials)
	mean := sum / tf
	variance := sumSq/tf - mean*mean
	wantMean := float64(n) * p
	wantVar := float64(n) * p * (1 - p)
	// Standard error of the sample mean is sqrt(var/trials).
	seMean := math.Sqrt(wantVar / tf)
	if math.Abs(mean-wantMean) > 6*seMean+1e-9 {
		t.Errorf("Binomial(%d,%v): mean %v, want %v (se %v)", n, p, mean, wantMean, seMean)
	}
	if wantVar > 0 && math.Abs(variance-wantVar)/wantVar > 0.08 {
		t.Errorf("Binomial(%d,%v): variance %v, want %v", n, p, variance, wantVar)
	}
}

func TestBinomialMomentsBINV(t *testing.T) {
	// Small n*p exercises the inversion path.
	checkBinomialMoments(t, 21, 50, 0.1, 100000)
	checkBinomialMoments(t, 22, 10, 0.4, 100000)
	checkBinomialMoments(t, 23, 1000, 0.01, 100000)
}

func TestBinomialMomentsBTPE(t *testing.T) {
	// Large n*p exercises BTPE.
	checkBinomialMoments(t, 24, 1000, 0.3, 50000)
	checkBinomialMoments(t, 25, 100000, 0.5, 20000)
	checkBinomialMoments(t, 26, 1000000, 0.001, 20000) // np = 1000
}

func TestBinomialSymmetry(t *testing.T) {
	// p > 0.5 goes through the flipped path; check the mean is right.
	checkBinomialMoments(t, 27, 500, 0.9, 50000)
	checkBinomialMoments(t, 28, 40, 0.95, 100000)
}

// TestBinomialChiSquare runs a goodness-of-fit test for a small case where
// exact pmf values are cheap.
func TestBinomialChiSquare(t *testing.T) {
	r := New(29)
	const n, trials = 8, 200000
	p := 0.35
	counts := make([]int, n+1)
	for i := 0; i < trials; i++ {
		counts[r.Binomial(n, p)]++
	}
	// Exact pmf.
	pmf := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		pmf[k] = binomPMF(n, k, p)
	}
	chi2 := 0.0
	for k := 0; k <= n; k++ {
		want := pmf[k] * trials
		if want < 5 {
			continue
		}
		d := float64(counts[k]) - want
		chi2 += d * d / want
	}
	// 8 dof, 99.9% critical value ~ 26.1; allow margin.
	if chi2 > 35 {
		t.Errorf("chi-square = %v too large; counts %v", chi2, counts)
	}
}

func binomPMF(n, k int, p float64) float64 {
	// Computed in log space for stability.
	lg := lgamma(float64(n+1)) - lgamma(float64(k+1)) - lgamma(float64(n-k+1))
	return math.Exp(lg + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Property: result always within [0, n].
func TestQuickBinomialRange(t *testing.T) {
	r := New(30)
	f := func(n uint16, pRaw uint16) bool {
		nn := int(n % 2000)
		p := float64(pRaw) / 65535
		k := r.Binomial(nn, p)
		return k >= 0 && k <= nn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMultinomialSumsToN(t *testing.T) {
	r := New(31)
	probs := []float64{0.1, 0.2, 0.3, 0.4}
	for _, n := range []int{0, 1, 10, 1000, 100000} {
		counts := r.Multinomial(n, probs)
		sum := 0
		for _, c := range counts {
			sum += c
		}
		if sum != n {
			t.Fatalf("Multinomial(%d) sums to %d", n, sum)
		}
	}
}

func TestMultinomialMeans(t *testing.T) {
	r := New(32)
	probs := []float64{0.5, 0.25, 0.125, 0.125}
	const n, trials = 1000, 2000
	sums := make([]float64, len(probs))
	for i := 0; i < trials; i++ {
		for j, c := range r.Multinomial(n, probs) {
			sums[j] += float64(c)
		}
	}
	for j, p := range probs {
		got := sums[j] / trials
		want := float64(n) * p
		if math.Abs(got-want)/want > 0.03 {
			t.Errorf("category %d mean %v, want %v", j, got, want)
		}
	}
}

func TestMultinomialPanicsNegativeProb(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Multinomial(10, []float64{0.5, -0.1})
}
