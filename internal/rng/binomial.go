package rng

import "math"

// Binomial returns an exact Binomial(n, p) variate.
//
// Three regimes are used:
//   - degenerate p (0 or 1) and tiny n: direct;
//   - n*min(p,1-p) < binvThreshold: BINV (inversion by multiplication,
//     Kachitvichyanukul & Schmeiser 1988), O(np) expected time;
//   - otherwise: BTPE (Binomial Triangle Parallelogram Exponential), an
//     exact rejection sampler with O(1) expected time.
//
// The experiment harness relies on this to simulate, e.g., the counts a
// server observes from millions of randomized reports without looping
// over every user (see internal/ldp's Simulate* helpers).
func (r *Rand) Binomial(n int, p float64) int {
	switch {
	case n < 0:
		panic("rng: Binomial with n < 0")
	case p <= 0 || n == 0:
		return 0
	case p >= 1:
		return n
	}
	// Exploit symmetry so the worked probability is <= 1/2.
	flipped := false
	q := p
	if q > 0.5 {
		q = 1 - q
		flipped = true
	}
	var k int
	if float64(n)*q < binvThreshold {
		k = r.binv(n, q)
	} else {
		k = r.btpe(n, q)
	}
	if flipped {
		k = n - k
	}
	return k
}

const binvThreshold = 30.0

// binv samples Binomial(n, p) by sequential inversion; requires p <= 1/2
// and works well when n*p is small.
func (r *Rand) binv(n int, p float64) int {
	q := 1 - p
	s := p / q
	a := float64(n+1) * s
	qn := math.Pow(q, float64(n))
	for {
		u := r.Float64()
		x := 0
		f := qn
		for {
			if u < f {
				return x
			}
			if x > 110 { // numerical safety; restart (prob ~0)
				break
			}
			u -= f
			x++
			f *= a/float64(x) - s
		}
	}
}

// btpe implements the BTPE algorithm of Kachitvichyanukul & Schmeiser
// (1988) for Binomial(n, p) with p <= 1/2 and n*p >= binvThreshold.
// Variable names follow the paper to keep the implementation auditable.
func (r *Rand) btpe(n int, p float64) int {
	var (
		nf = float64(n)
		q  = 1 - p
		np = nf * p
	)
	// Step 0: set-up constants.
	ffm := np + p
	m := int(ffm)
	fm := float64(m)
	npq := np * q
	p1 := math.Floor(2.195*math.Sqrt(npq)-4.6*q) + 0.5
	xm := fm + 0.5
	xl := xm - p1
	xr := xm + p1
	c := 0.134 + 20.5/(15.3+fm)
	al := (ffm - xl) / (ffm - xl*p)
	xll := al * (1 + 0.5*al)
	al = (xr - ffm) / (xr * q)
	xlr := al * (1 + 0.5*al)
	p2 := p1 * (1 + c + c)
	p3 := p2 + c/xll
	p4 := p3 + c/xlr

	var y int
	for {
		// Step 1: generate region selector u and variate v.
		u := r.Float64() * p4
		v := r.Float64()
		if u <= p1 {
			// Triangular region.
			y = int(xm - p1*v + u)
			return y
		}
		if u <= p2 {
			// Parallelogram region.
			x := xl + (u-p1)/c
			v = v*c + 1 - math.Abs(xm-x)/p1
			if v > 1 || v <= 0 {
				continue
			}
			y = int(x)
		} else if u > p3 {
			// Right exponential tail.
			y = int(xr - math.Log(v)/xlr)
			if y > n {
				continue
			}
			v = v * (u - p3) * xlr
		} else {
			// Left exponential tail.
			y = int(xl + math.Log(v)/xll)
			if y < 0 {
				continue
			}
			v = v * (u - p2) * xll
		}

		// Step 5: acceptance/rejection.
		k := y - m
		if k < 0 {
			k = -k
		}
		kf := float64(k)
		if kf <= 20 || kf >= npq/2-1 {
			// Explicit evaluation of f(y)/f(m) by recursion.
			s := p / q
			a := s * (nf + 1)
			f := 1.0
			switch {
			case m < y:
				for i := m + 1; i <= y; i++ {
					f *= a/float64(i) - s
				}
			case m > y:
				for i := y + 1; i <= m; i++ {
					f /= a/float64(i) - s
				}
			}
			if v <= f {
				return y
			}
			continue
		}
		// Squeeze using upper and lower bounds on log f(y).
		yf := float64(y)
		amaxp := kf / npq * ((kf*(kf/3+0.625)+0.1666666666666)/npq + 0.5)
		ynorm := -kf * kf / (2 * npq)
		alv := math.Log(v)
		if alv < ynorm-amaxp {
			return y
		}
		if alv > ynorm+amaxp {
			continue
		}
		// Final comparison via Stirling-based log f(y).
		x1 := yf + 1
		f1 := fm + 1
		z := nf + 1 - fm
		w := nf - yf + 1
		z2 := z * z
		x2 := x1 * x1
		f2 := f1 * f1
		w2 := w * w
		t := xm*math.Log(f1/x1) + (nf-fm+0.5)*math.Log(z/w) +
			(yf-fm)*math.Log(w*p/(x1*q)) +
			(13860.0-(462.0-(132.0-(99.0-140.0/f2)/f2)/f2)/f2)/f1/166320.0 +
			(13860.0-(462.0-(132.0-(99.0-140.0/z2)/z2)/z2)/z2)/z/166320.0 +
			(13860.0-(462.0-(132.0-(99.0-140.0/x2)/x2)/x2)/x2)/x1/166320.0 +
			(13860.0-(462.0-(132.0-(99.0-140.0/w2)/w2)/w2)/w2)/w/166320.0
		if alv <= t {
			return y
		}
	}
}

// Multinomial distributes n trials over the probability vector probs,
// returning counts summing to n. The probabilities must be non-negative;
// they are normalized internally.
func (r *Rand) Multinomial(n int, probs []float64) []int {
	counts := make([]int, len(probs))
	total := 0.0
	for _, p := range probs {
		if p < 0 {
			panic("rng: Multinomial with negative probability")
		}
		total += p
	}
	remainingMass := total
	remaining := n
	for i, p := range probs {
		if remaining == 0 {
			break
		}
		if i == len(probs)-1 {
			counts[i] = remaining
			break
		}
		if remainingMass <= 0 {
			break
		}
		c := r.Binomial(remaining, p/remainingMass)
		counts[i] = c
		remaining -= c
		remainingMass -= p
	}
	return counts
}
