package rng

import "math"

// ZipfWeights returns the unnormalized Zipf(s) weights 1/i^s for
// i = 1..k. These calibrate the synthetic IPUMS/Kosarak/AOL datasets
// (see DESIGN.md §2); the callers normalize as needed.
func ZipfWeights(k int, s float64) []float64 {
	if k <= 0 {
		panic("rng: ZipfWeights with k <= 0")
	}
	w := make([]float64, k)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
	}
	return w
}

// Zipf is an O(1)-per-sample Zipf(s) sampler over {0, ..., k-1} backed by
// an alias table (exact, in contrast to rejection-inversion approximations).
type Zipf struct {
	alias *Alias
}

// NewZipf builds a Zipf sampler with exponent s > 0 over k outcomes.
func NewZipf(k int, s float64) *Zipf {
	if s <= 0 {
		panic("rng: NewZipf with s <= 0")
	}
	return &Zipf{alias: NewAlias(ZipfWeights(k, s))}
}

// Sample draws a value in [0, k) with P(i) proportional to 1/(i+1)^s.
func (z *Zipf) Sample(r *Rand) int { return z.alias.Sample(r) }

// Len returns the support size.
func (z *Zipf) Len() int { return z.alias.Len() }
