package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAliasUniformCase(t *testing.T) {
	a := NewAlias([]float64{1, 1, 1, 1})
	r := New(40)
	const trials = 100000
	counts := make([]int, 4)
	for i := 0; i < trials; i++ {
		counts[a.Sample(r)]++
	}
	want := float64(trials) / 4
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d, want ~%.0f", i, c, want)
		}
	}
}

func TestAliasSkewedCase(t *testing.T) {
	weights := []float64{8, 4, 2, 1, 1}
	a := NewAlias(weights)
	r := New(41)
	const trials = 200000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[a.Sample(r)]++
	}
	total := 16.0
	for i, w := range weights {
		want := w / total * trials
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d: %d, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a := NewAlias([]float64{1, 0, 1})
	r := New(42)
	for i := 0; i < 10000; i++ {
		if a.Sample(r) == 1 {
			t.Fatal("sampled zero-weight index")
		}
	}
}

func TestAliasSingleton(t *testing.T) {
	a := NewAlias([]float64{3.5})
	r := New(43)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("singleton alias sampled non-zero index")
		}
	}
}

func TestAliasPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"negative": {1, -1},
		"allzero":  {0, 0},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewAlias(weights)
		})
	}
}

// Property: samples are always in range for random weight vectors.
func TestQuickAliasInRange(t *testing.T) {
	r := New(44)
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		total := 0.0
		for i, b := range raw {
			weights[i] = float64(b)
			total += weights[i]
		}
		if total == 0 {
			weights[0] = 1
		}
		a := NewAlias(weights)
		for i := 0; i < 32; i++ {
			if v := a.Sample(r); v < 0 || v >= len(weights) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZipfHeadHeavierThanTail(t *testing.T) {
	z := NewZipf(1000, 1.1)
	r := New(45)
	const trials = 100000
	head, tail := 0, 0
	for i := 0; i < trials; i++ {
		v := z.Sample(r)
		if v < 10 {
			head++
		}
		if v >= 900 {
			tail++
		}
	}
	if head <= tail {
		t.Errorf("Zipf head (%d) not heavier than tail (%d)", head, tail)
	}
	if z.Len() != 1000 {
		t.Errorf("Len = %d", z.Len())
	}
}

func TestZipfMarginals(t *testing.T) {
	const k = 50
	s := 1.5
	z := NewZipf(k, s)
	r := New(46)
	const trials = 300000
	counts := make([]int, k)
	for i := 0; i < trials; i++ {
		counts[z.Sample(r)]++
	}
	weights := ZipfWeights(k, s)
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i := 0; i < 5; i++ { // check the head, where counts are large
		want := weights[i] / total * trials
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("rank %d: %d, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipf(10, 0)
}

func TestZipfWeightsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ZipfWeights(0, 1)
}
