package rng

// Alias is a Walker alias table for O(1) sampling from an arbitrary
// discrete distribution over {0, ..., len(weights)-1}.
//
// Dataset generators (internal/dataset) build one per synthetic
// distribution so that drawing n ~ 10^6 user values is cheap.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table from non-negative weights. At least one
// weight must be positive. Construction is O(k); sampling is O(1).
func NewAlias(weights []float64) *Alias {
	k := len(weights)
	if k == 0 {
		panic("rng: NewAlias with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: NewAlias with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: NewAlias with zero total weight")
	}
	a := &Alias{
		prob:  make([]float64, k),
		alias: make([]int, k),
	}
	// Scaled probabilities; partition into small (<1) and large (>=1).
	scaled := make([]float64, k)
	small := make([]int, 0, k)
	large := make([]int, 0, k)
	for i, w := range weights {
		scaled[i] = w * float64(k) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers are 1 up to floating-point error.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Len returns the support size of the distribution.
func (a *Alias) Len() int { return len(a.prob) }

// Sample draws one index from the distribution using r.
func (a *Alias) Sample(r *Rand) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
