package rng

import "testing"

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkUint64n(b *testing.B) {
	r := New(2)
	for i := 0; i < b.N; i++ {
		r.Uint64n(915)
	}
}

func BenchmarkBinomialBINV(b *testing.B) {
	r := New(3)
	for i := 0; i < b.N; i++ {
		r.Binomial(1000, 0.01) // np = 10 -> inversion path
	}
}

func BenchmarkBinomialBTPE(b *testing.B) {
	r := New(4)
	for i := 0; i < b.N; i++ {
		r.Binomial(1000000, 0.3) // np huge -> BTPE path
	}
}

func BenchmarkLaplace(b *testing.B) {
	r := New(5)
	for i := 0; i < b.N; i++ {
		r.Laplace(2)
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z := NewZipf(42178, 1.4)
	r := New(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Sample(r)
	}
}

func BenchmarkPerm1000(b *testing.B) {
	r := New(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Perm(1000)
	}
}
