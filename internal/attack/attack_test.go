package attack

import (
	"math"
	"testing"

	"shuffledp/internal/ldp"
)

func TestUserCollusionFakesHideVictim(t *testing.T) {
	fo := ldp.NewGRR(16, 2)
	const nr, trials = 99, 4000
	res := UserCollusion(fo, nr, trials, 1)
	if res.ExposedNoFakes != trials {
		t.Fatalf("without fakes the victim must always be exposed: %d/%d",
			res.ExposedNoFakes, trials)
	}
	// With nr fakes a uniform guess hits any copy of the victim's
	// word: the victim's own report plus ~nr/d colliding fakes, so
	// success ~ (1 + nr/d) / (nr + 1).
	rate := float64(res.IdentifiedWithFakes) / float64(trials)
	want := (1 + float64(nr)/16) / float64(nr+1)
	se := math.Sqrt(want * (1 - want) / float64(trials))
	if math.Abs(rate-want) > 6*se+0.01 {
		t.Fatalf("identification rate %v, want ~%v", rate, want)
	}
}

func TestUserCollusionSOLH(t *testing.T) {
	fo := ldp.NewSOLH(1000, 8, 1.5)
	res := UserCollusion(fo, 49, 2000, 2)
	rate := float64(res.IdentifiedWithFakes) / float64(res.Trials)
	if rate > 0.08 {
		t.Fatalf("SOLH identification rate %v too high", rate)
	}
}

func TestSSFakePoisoningSkews(t *testing.T) {
	const d, n, nr = 16, 20000, 2000
	fo := ldp.NewGRR(d, 4)
	trueCounts := make([]int, d)
	for v := range trueCounts {
		trueCounts[v] = n / d
	}
	res := SSFakePoisoning(fo, trueCounts, nr, 3, 50, 3)
	// Expected inflation ~ nr (1 - 1/d) / (n * (p-q)) scaled through
	// the estimator; at minimum it must be clearly positive and large
	// relative to the noise floor.
	if res.TargetBoost < 0.01 {
		t.Fatalf("SS poisoning boost %v — attack should visibly skew the estimate",
			res.TargetBoost)
	}
}

func TestPEOSFakePoisoningMasked(t *testing.T) {
	const d, n, nr = 16, 20000, 2000
	fo := ldp.NewGRR(d, 4)
	trueCounts := make([]int, d)
	for v := range trueCounts {
		trueCounts[v] = n / d
	}
	res := PEOSFakePoisoning(fo, trueCounts, nr, 3, 3, 50, 4)
	// The honest shufflers' shares mask the attacker: no visible skew.
	if math.Abs(res.TargetBoost) > 0.005 {
		t.Fatalf("PEOS boost %v — masking failed", res.TargetBoost)
	}
	// Combined fakes must be uniform: chi-square with d-1=15 dof has
	// 99.9%-ile ~ 37.7.
	if res.ChiSquare > 45 {
		t.Fatalf("fake reports not uniform: chi2 = %v (dof %d)", res.ChiSquare, res.Dof)
	}
	if res.Dof != d-1 {
		t.Fatalf("dof = %d", res.Dof)
	}
}

func TestPEOSvsSSPoisoningContrast(t *testing.T) {
	// The headline security claim: same adversary, orders of magnitude
	// less influence under PEOS.
	const d, n, nr = 8, 10000, 1000
	fo := ldp.NewGRR(d, 4)
	trueCounts := make([]int, d)
	for v := range trueCounts {
		trueCounts[v] = n / d
	}
	ss := SSFakePoisoning(fo, trueCounts, nr, 0, 30, 5)
	peos := PEOSFakePoisoning(fo, trueCounts, nr, 0, 3, 30, 6)
	if ss.TargetBoost < 10*math.Abs(peos.TargetBoost) {
		t.Fatalf("expected SS boost (%v) >> PEOS boost (%v)",
			ss.TargetBoost, peos.TargetBoost)
	}
}

func TestShufflerCollusionFallback(t *testing.T) {
	honest, colluded := ShufflerCollusionFallback(4, 0.5)
	if honest != 0.5 || colluded != 4 {
		t.Fatalf("got %v, %v", honest, colluded)
	}
}

func TestUserCollusionPanicsOnUnary(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UserCollusion(ldp.NewRAP(4, 1), 10, 10, 1)
}
