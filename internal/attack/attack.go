// Package attack simulates the adversaries of §V and the §VI defenses:
//
//   - UserCollusion: the server colludes with every user but the victim
//     (Adv_u). Without fake reports the victim's LDP report is exposed
//     exactly; with PEOS's n_r uniform fakes it hides among them
//     (Corollaries 8/9).
//   - SSFakePoisoning: a malicious sequential-shuffle hop draws its
//     fake reports from a skewed distribution to inflate a target value
//     (§VI-A1 "we find that it is hard to handle").
//   - PEOSFakePoisoning: the same adversary against PEOS can only
//     control its own *shares*; the honest shufflers' uniform shares
//     mask them (§VI-A2), keeping the combined fakes uniform.
//
// These are measurements, not proofs: each returns statistics a test
// (or example) can assert on.
package attack

import (
	"math"

	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
	"shuffledp/internal/secretshare"
)

// CollusionResult reports the Adv_u simulation.
type CollusionResult struct {
	// ExposedNoFakes counts trials (out of Trials) where the residual
	// multiset — shuffled reports minus the colluders' known reports —
	// pinpointed the victim's report exactly (always, without fakes).
	ExposedNoFakes int
	// IdentifiedWithFakes counts trials where an adversary guessing
	// uniformly among the residual reports (victim's + fakes) would
	// pick the victim's report.
	IdentifiedWithFakes int
	Trials              int
}

// UserCollusion simulates Adv_u: n-1 colluding users subtract their own
// reports from the shuffled output; the victim's report remains, hidden
// among nr fakes (or not, when nr = 0).
//
// The adversary's "identification" strategy with fakes is the Bayes-
// optimal uniform guess among residual reports that are a priori
// exchangeable; its success probability should approach 1/(nr+1)
// (up to collisions between the victim's report and fake words).
func UserCollusion(fo ldp.FrequencyOracle, nr, trials int, seed uint64) CollusionResult {
	enc, err := ldp.NewWordEncoder(fo)
	if err != nil {
		panic("attack: " + err.Error())
	}
	r := rng.New(seed)
	res := CollusionResult{Trials: trials}
	for trial := 0; trial < trials; trial++ {
		victimReport := fo.Randomize(0, r)
		victimWord := enc.Encode(victimReport)
		// Residual without fakes: exactly the victim's report.
		res.ExposedNoFakes++

		// Residual with fakes: victim's word among nr uniform words.
		residual := make([]uint64, 0, nr+1)
		residual = append(residual, victimWord)
		for k := 0; k < nr; k++ {
			residual = append(residual, enc.UniformWord(r.Uint64n))
		}
		// Uniform guess over the residual multiset.
		if residual[r.Intn(len(residual))] == victimWord {
			res.IdentifiedWithFakes++
		}
	}
	return res
}

// PoisonResult reports a fake-report poisoning simulation.
type PoisonResult struct {
	// TargetBoost is the mean estimated frequency inflation of the
	// attacker's target value relative to its true frequency.
	TargetBoost float64
	// ChiSquare is the goodness-of-fit statistic of the *combined*
	// fake reports against the uniform distribution (PEOS only; the
	// masking claim is that it stays small).
	ChiSquare float64
	// Dof is the chi-square degrees of freedom.
	Dof int
}

// SSFakePoisoning simulates the skewed-fakes attack on the sequential
// shuffle: the malicious hop submits all its nr fakes as the target
// value's report word. The server, assuming uniform fakes, subtracts
// only nr/d per value (Equation 6) — the target's estimate inflates by
// roughly nr(1-1/d)/n.
func SSFakePoisoning(fo *ldp.GRR, trueCounts []int, nr, target int, trials int, seed uint64) PoisonResult {
	d := fo.Domain()
	n := 0
	for _, c := range trueCounts {
		n += c
	}
	r := rng.New(seed)
	p, q, _ := ldp.SupportProbabilities(fo)
	_, beta := ldp.FakeSupport(fo)
	truth := float64(trueCounts[target]) / float64(n)
	var boost float64
	for trial := 0; trial < trials; trial++ {
		counts := make([]int, d)
		for v, nv := range trueCounts {
			counts[v] = r.Binomial(nv, p) + r.Binomial(n-nv, q)
		}
		counts[target] += nr // all fakes pushed onto the target
		est := ldp.CalibrateWithFakes(counts, n, nr, p, q, beta)
		boost += est[target] - truth
	}
	return PoisonResult{TargetBoost: boost / float64(trials)}
}

// PEOSFakePoisoning simulates the same adversary against PEOS: the
// malicious shuffler fixes its share of every fake to the target's
// word, but each fake's value is the sum of all r shufflers' shares.
// With at least one honest shuffler the combined fakes stay uniform —
// measured here by a chi-square test over the report space and by the
// resulting estimate inflation (both should be statistically null).
func PEOSFakePoisoning(fo *ldp.GRR, trueCounts []int, nr, target, r, trials int, seed uint64) PoisonResult {
	enc, err := ldp.NewWordEncoder(fo)
	if err != nil {
		panic("attack: " + err.Error())
	}
	d := fo.Domain()
	n := 0
	for _, c := range trueCounts {
		n += c
	}
	mod := secretshare.NewModulus(64)
	rr := rng.New(seed)
	p, q, _ := ldp.SupportProbabilities(fo)
	_, beta := ldp.FakeSupport(fo)
	truth := float64(trueCounts[target]) / float64(n)

	var boost float64
	fakeHist := make([]int, d)
	totalFakes := 0
	for trial := 0; trial < trials; trial++ {
		counts := make([]int, d)
		for v, nv := range trueCounts {
			counts[v] = rr.Binomial(nv, p) + rr.Binomial(n-nv, q)
		}
		for k := 0; k < nr; k++ {
			// Malicious shuffler 0 fixes its share; 1..r-1 honest.
			word := enc.Encode(ldp.Report{Value: target})
			for j := 1; j < r; j++ {
				word = mod.Add(word, mod.Random(rr))
			}
			rep := enc.Decode(word)
			counts[rep.Value]++
			fakeHist[rep.Value]++
			totalFakes++
		}
		est := ldp.CalibrateWithFakes(counts, n, nr, p, q, beta)
		boost += est[target] - truth
	}
	// Chi-square of combined fakes vs uniform.
	chi2 := 0.0
	want := float64(totalFakes) / float64(d)
	for _, c := range fakeHist {
		diff := float64(c) - want
		chi2 += diff * diff / want
	}
	return PoisonResult{
		TargetBoost: boost / float64(trials),
		ChiSquare:   chi2,
		Dof:         d - 1,
	}
}

// ShufflerCollusionFallback quantifies §V-B's "if the shuffler colludes
// with the server, the model degrades to LDP": it returns the central
// epsilon with an honest shuffler (amplified) and without one (the raw
// local epsilon). Pure bookkeeping, kept here so examples/tests state
// the claim in one place.
func ShufflerCollusionFallback(epsL, epsC float64) (honest, colluded float64) {
	return math.Min(epsL, epsC), epsL
}
