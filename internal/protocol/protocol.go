// Package protocol implements the paper's data-collection protocols
// end to end:
//
//   - PlainShuffle: the basic shuffler model (§III-B) — one trusted
//     shuffler permutes the users' LDP reports.
//   - SS: the sequential-shuffle first attempt (§VI-A1) — r shufflers
//     chained with onion encryption, each injecting nr/r fake reports.
//   - PEOS: the paper's proposal (§VI-A3, Algorithm 1) — secret-shared
//     reports, fake shares from every shuffler, encrypted oblivious
//     shuffle, AHE decryption at the server.
//
// All protocols end with the server computing unbiased frequency
// estimates (Equations (2)/(3), post-processed per Equation (6) when
// fakes are present), and account per-party costs in a
// transport.Meter for the Table III reproduction.
package protocol

import (
	"errors"
	"fmt"

	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
	"shuffledp/internal/transport"
)

// Party names used in the cost accounting.
const (
	PartyUsers  = "users"
	PartyServer = "server"
)

// ShufflerName returns the meter name of shuffler j (matching
// internal/oblivious).
func ShufflerName(j int) string { return fmt.Sprintf("shuffler-%d", j) }

// Result is a protocol run's outcome.
type Result struct {
	// Estimates is the server's frequency estimate per value.
	Estimates []float64
	// Reports is the multiset of LDP reports the server observed
	// (users' + fakes, shuffled). Exposed for attack analyses.
	Reports []ldp.Report
	// Meter holds the per-party cost accounts.
	Meter *transport.Meter
}

// Estimate aggregates shuffled reports from n users plus nr uniform
// fakes and calibrates, subtracting the fakes' expected mass
// (generalized Equation 6; nr = 0 reduces to Equations (2)/(3)). It is
// THE server-side estimator of every protocol here, exported so the
// networked analyzer node (internal/cluster) computes bit-identical
// estimates to the in-process runs.
func Estimate(fo ldp.FrequencyOracle, reports []ldp.Report, n, nr int) []float64 {
	return EstimateCounts(fo, ldp.SupportCounts(fo, reports), n, nr)
}

// EstimateCounts is Estimate over pre-computed support counts — the
// form a continually-observing analyzer uses, since integer counts
// (unlike float estimates) merge exactly across collection rounds.
func EstimateCounts(fo ldp.FrequencyOracle, counts []int, n, nr int) []float64 {
	p, q, _ := ldp.SupportProbabilities(fo)
	if nr == 0 {
		return ldp.CalibrateCounts(counts, n, p, q)
	}
	_, beta := ldp.FakeSupport(fo)
	return ldp.CalibrateWithFakes(counts, n, nr, p, q, beta)
}

// MergeShardCounts element-wise sums per-shard support counts into the
// single-analyzer counts. Support counting is additive over any split
// of the report vector, so a sharded analyzer tier (internal/cluster,
// DESIGN.md §13) that counts disjoint windows reproduces — exactly,
// in integers — the counts a single analyzer computes over the whole
// vector; feeding the merge through EstimateCounts therefore yields
// bit-identical estimates, the invariant the sharded conformance
// suite asserts.
func MergeShardCounts(shards [][]int) []int {
	if len(shards) == 0 {
		return nil
	}
	merged := make([]int, len(shards[0]))
	for _, counts := range shards {
		if len(counts) != len(merged) {
			panic("protocol: shard count vectors disagree on domain size")
		}
		for i, c := range counts {
			merged[i] += c
		}
	}
	return merged
}

// PlainShuffle runs the basic shuffle model: each user randomizes with
// fo, a single shuffler permutes, the server estimates. This is the
// "SH"/"SOLH" setting of §III-B/§IV evaluated end to end.
func PlainShuffle(fo ldp.FrequencyOracle, values []int, r *rng.Rand) (*Result, error) {
	if fo == nil {
		return nil, errors.New("protocol: nil oracle")
	}
	meter := &transport.Meter{}
	reports := make([]ldp.Report, len(values))
	meter.Track(PartyUsers, func() {
		for i, v := range values {
			reports[i] = fo.Randomize(v, r)
		}
	})
	shuffler := ShufflerName(0)
	meter.Track(shuffler, func() {
		r.Shuffle(len(reports), func(i, j int) {
			reports[i], reports[j] = reports[j], reports[i]
		})
	})
	// Report size: one 64-bit word for GRR/hashing oracles.
	meter.Send(PartyUsers, shuffler, 8*len(reports))
	meter.Send(shuffler, PartyServer, 8*len(reports))
	var est []float64
	meter.Track(PartyServer, func() {
		est = Estimate(fo, reports, len(values), 0)
	})
	return &Result{Estimates: est, Reports: reports, Meter: meter}, nil
}
