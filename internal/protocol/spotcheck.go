package protocol

import (
	"shuffledp/internal/ldp"
)

// SpotCheck implements the §VI-A1 tamper-detection idea: "the server
// can add dummy accounts before the system setup, then it can check
// whether the reports from his accounts are tampered."
//
// The server controls the dummies' randomness, so it knows each dummy's
// exact report word. After collection it verifies every planted word
// still appears with at least the planted multiplicity; a shuffler that
// substituted reports risks deleting a dummy and being caught.
type SpotCheck struct {
	enc     *ldp.WordEncoder
	planted map[uint64]int
	count   int
}

// NewSpotCheck prepares a checker for the oracle's report space.
func NewSpotCheck(fo ldp.FrequencyOracle) (*SpotCheck, error) {
	enc, err := ldp.NewWordEncoder(fo)
	if err != nil {
		return nil, err
	}
	return &SpotCheck{enc: enc, planted: make(map[uint64]int)}, nil
}

// Plant registers a dummy report the server injected through a dummy
// account and returns the report to submit.
func (sc *SpotCheck) Plant(rep ldp.Report) ldp.Report {
	sc.planted[sc.enc.Encode(rep)]++
	sc.count++
	return rep
}

// Count returns the number of planted dummies.
func (sc *SpotCheck) Count() int { return sc.count }

// Verify checks the collected reports against the planted set. It
// returns the number of missing planted reports (0 means the batch
// passes).
func (sc *SpotCheck) Verify(reports []ldp.Report) int {
	remaining := make(map[uint64]int, len(sc.planted))
	for w, c := range sc.planted {
		remaining[w] = c
	}
	for _, rep := range reports {
		w := sc.enc.Encode(rep)
		if remaining[w] > 0 {
			remaining[w]--
		}
	}
	missing := 0
	for _, c := range remaining {
		missing += c
	}
	return missing
}
