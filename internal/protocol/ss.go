package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"

	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
	"shuffledp/internal/transport"
)

// ssPayloadSize pads each report word to the paper's 32-byte message
// body (§VII-D: "each message is 32 + 96(r+1) bytes").
const ssPayloadSize = 32

// SS is the sequential-shuffle baseline (§VI-A1): shufflers are chained,
// each peels one onion layer, injects NR/r uniform fake reports, and
// shuffles before forwarding. Vulnerable to report substitution and
// skewed fake reports by a malicious shuffler — the attack hooks expose
// exactly those capabilities for the §V analysis.
type SS struct {
	// FO is the frequency oracle (GRR or SOLH).
	FO ldp.FrequencyOracle
	// R is the number of shufflers.
	R int
	// NR is the total fake-report budget, split evenly (NR/R each).
	NR int
	// MaliciousShuffler, if non-nil, lets shuffler j transform the
	// report batch it is about to forward (after peeling, before
	// shuffling): the §V-C poisoning adversary. Return the possibly
	// modified batch.
	MaliciousShuffler func(j int, batch [][]byte) [][]byte
	// MaliciousFakeWords, if non-nil, supplies shuffler j's fake
	// report words instead of uniform draws (skewed-fakes attack).
	MaliciousFakeWords func(j int, count int) []uint64

	enc          *ldp.WordEncoder
	shufflerKeys []*ecies.PrivateKey
	serverKey    *ecies.PrivateKey
}

// NewSS generates the hop keys and prepares the protocol.
func NewSS(fo ldp.FrequencyOracle, r, nr int) (*SS, error) {
	if r < 1 {
		return nil, errors.New("protocol: SS needs at least 1 shuffler")
	}
	if nr < 0 {
		return nil, errors.New("protocol: negative fake-report count")
	}
	enc, err := ldp.NewWordEncoder(fo)
	if err != nil {
		return nil, fmt.Errorf("protocol: %w", err)
	}
	s := &SS{FO: fo, R: r, NR: nr, enc: enc}
	s.shufflerKeys = make([]*ecies.PrivateKey, r)
	for j := range s.shufflerKeys {
		if s.shufflerKeys[j], err = ecies.GenerateKey(); err != nil {
			return nil, err
		}
	}
	if s.serverKey, err = ecies.GenerateKey(); err != nil {
		return nil, err
	}
	return s, nil
}

// hopKeys returns the public keys for layers j..r-1 plus the server
// (the onion a report entering shuffler j must carry).
func (s *SS) hopKeys(j int) []*ecies.PublicKey {
	keys := make([]*ecies.PublicKey, 0, s.R-j+1)
	for k := j; k < s.R; k++ {
		keys = append(keys, s.shufflerKeys[k].Public())
	}
	return append(keys, s.serverKey.Public())
}

func (s *SS) encodePayload(word uint64) []byte {
	payload := make([]byte, ssPayloadSize)
	binary.LittleEndian.PutUint64(payload, word)
	return payload
}

// onionForHops wraps a report word for delivery starting at shuffler
// `fromHop` (0 = the full user onion). Exposed to tests simulating
// report substitution: an attacker inside the chain knows exactly
// these public keys.
func (s *SS) onionForHops(fromHop int, word uint64) ([]byte, error) {
	return ecies.OnionEncrypt(s.hopKeys(fromHop), s.encodePayload(word))
}

// Run executes the protocol and returns the server's estimates.
func (s *SS) Run(values []int, ldpRand *rng.Rand) (*Result, error) {
	return s.runWithExtraReports(values, nil, ldpRand)
}

// runWithExtraReports runs the protocol with additional pre-randomized
// reports mixed into the user batch — the server's dummy accounts for
// spot-checking (§VI-A1). The extras count as users in the estimation
// (they are indistinguishable from real accounts by design).
func (s *SS) runWithExtraReports(values []int, extra []ldp.Report, ldpRand *rng.Rand) (*Result, error) {
	n := len(values) + len(extra)
	if n == 0 {
		return nil, errors.New("protocol: no users")
	}
	meter := &transport.Meter{}

	// --- Users: randomize and onion-encrypt for all hops. ---
	batch := make([][]byte, 0, n)
	allHops := s.hopKeys(0)
	var userErr error
	meter.Track(PartyUsers, func() {
		for _, v := range values {
			rep := s.FO.Randomize(v, ldpRand)
			onion, err := ecies.OnionEncrypt(allHops, s.encodePayload(s.enc.Encode(rep)))
			if err != nil {
				userErr = err
				return
			}
			batch = append(batch, onion)
		}
		for _, rep := range extra {
			onion, err := ecies.OnionEncrypt(allHops, s.encodePayload(s.enc.Encode(rep)))
			if err != nil {
				userErr = err
				return
			}
			batch = append(batch, onion)
		}
	})
	if userErr != nil {
		return nil, userErr
	}
	meter.Send(PartyUsers, ShufflerName(0), batchBytes(batch))

	// --- Shufflers: peel, inject fakes, shuffle, forward. ---
	perShuffler := 0
	if s.R > 0 {
		perShuffler = s.NR / s.R
	}
	shufRand := rng.New(0x55D1)
	totalFakes := 0
	for j := 0; j < s.R; j++ {
		sname := ShufflerName(j)
		var hopErr error
		meter.Track(sname, func() {
			// Peel one layer from every report.
			for i, onion := range batch {
				pt, err := ecies.Decrypt(s.shufflerKeys[j], onion)
				if err != nil {
					hopErr = fmt.Errorf("shuffler %d: %w", j, err)
					return
				}
				batch[i] = pt
			}
			// Attack hook: a malicious shuffler may rewrite reports.
			if s.MaliciousShuffler != nil {
				batch = s.MaliciousShuffler(j, batch)
			}
			// Inject this hop's fake reports, wrapped for the
			// remaining hops.
			words := s.fakeWords(j, perShuffler, shufRand)
			remaining := s.hopKeys(j + 1)
			for _, w := range words {
				onion, err := ecies.OnionEncrypt(remaining, s.encodePayload(w))
				if err != nil {
					hopErr = err
					return
				}
				batch = append(batch, onion)
				totalFakes++
			}
			shufRand.Shuffle(len(batch), func(a, b int) {
				batch[a], batch[b] = batch[b], batch[a]
			})
		})
		if hopErr != nil {
			return nil, hopErr
		}
		next := PartyServer
		if j+1 < s.R {
			next = ShufflerName(j + 1)
		}
		meter.Send(sname, next, batchBytes(batch))
	}

	// --- Server: final peel, decode, estimate. ---
	var est []float64
	reports := make([]ldp.Report, len(batch))
	var srvErr error
	meter.Track(PartyServer, func() {
		for i, ct := range batch {
			pt, err := ecies.Decrypt(s.serverKey, ct)
			if err != nil {
				srvErr = fmt.Errorf("server decrypt: %w", err)
				return
			}
			if len(pt) != ssPayloadSize {
				srvErr = errors.New("protocol: malformed SS payload")
				return
			}
			reports[i] = s.enc.Decode(binary.LittleEndian.Uint64(pt))
		}
		est = Estimate(s.FO, reports, n, totalFakes)
	})
	if srvErr != nil {
		return nil, srvErr
	}
	return &Result{Estimates: est, Reports: reports, Meter: meter}, nil
}

func (s *SS) fakeWords(j, count int, r *rng.Rand) []uint64 {
	if s.MaliciousFakeWords != nil {
		if words := s.MaliciousFakeWords(j, count); words != nil {
			return words
		}
	}
	words := make([]uint64, count)
	for k := range words {
		words[k] = s.enc.UniformWord(r.Uint64n)
	}
	return words
}

func batchBytes(batch [][]byte) int {
	total := 0
	for _, b := range batch {
		total += len(b)
	}
	return total
}
