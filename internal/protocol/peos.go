package protocol

import (
	"errors"
	"fmt"

	"shuffledp/internal/ahe"
	"shuffledp/internal/ldp"
	"shuffledp/internal/oblivious"
	"shuffledp/internal/rng"
	"shuffledp/internal/secretshare"
	"shuffledp/internal/transport"
)

// PEOS is the paper's Private Encrypted Oblivious Shuffle protocol
// (Algorithm 1). Construct it with NewPEOS and call Run.
type PEOS struct {
	// FO is the frequency oracle (GRR or SOLH — Algorithm 1's "FO").
	FO ldp.FrequencyOracle
	// R is the number of shufflers (>= 2).
	R int
	// NR is the number of fake reports injected jointly by the
	// shufflers (each contributes one share of every fake).
	NR int
	// Priv is the server's AHE key pair. Users and shufflers only
	// touch the public half.
	Priv ahe.PrivateKey
	// Source drives protocol randomness (shares, fakes). Use
	// secretshare.Crypto in production; a seeded rng.Rand in tests.
	Source secretshare.Source
	// MaliciousFakes, if non-nil, replaces shuffler j's fake-share
	// sampling — the §V-C data-poisoning adversary. It must return NR
	// share words. Honest shufflers pass through to the uniform
	// sampler.
	MaliciousFakes func(j int) []uint64
	// FakeSource, if non-nil, gives shuffler j its own randomness for
	// honest fake-share sampling instead of the run's shared Source —
	// the trust model of the role-separated deployment, where every
	// shuffler process draws only from its own generator. The
	// cluster/in-process conformance tests rely on it: seeding shuffler
	// j's node and FakeSource(j) from the same substream makes the two
	// runs' fake reports — and therefore their estimates —
	// bit-identical. MaliciousFakes, when set, still takes precedence.
	FakeSource func(j int) secretshare.Source
	// FastShuffle runs the oblivious shuffle with ciphertext
	// rerandomization disabled — the paper's Table III cost model.
	// See oblivious.Config.SkipRerandomize for the security caveat.
	FastShuffle bool
	// DecryptWorkers bounds the server's decryption fan-out; <1 selects
	// GOMAXPROCS. The cmd/bench PEOS suite sweeps it to separate the
	// algorithmic AHE speedups from plain parallelism.
	DecryptWorkers int
	// ShuffleWorkers sets oblivious.Config.Workers: the goroutine count
	// of the simulated shufflers' ciphertext passes (DESIGN.md §14).
	// <=1 runs the serial reference path. Estimates are bit-identical
	// at every setting; the randomizer pool is sized to the worker
	// count so the parallel drain rate never starves it.
	ShuffleWorkers int

	enc *ldp.WordEncoder
	mod secretshare.Modulus
}

// NewPEOS validates the configuration and prepares the word encoding.
func NewPEOS(fo ldp.FrequencyOracle, r, nr int, priv ahe.PrivateKey, src secretshare.Source) (*PEOS, error) {
	if r < 2 {
		return nil, errors.New("protocol: PEOS needs at least 2 shufflers")
	}
	if nr < 0 {
		return nil, errors.New("protocol: negative fake-report count")
	}
	if priv == nil {
		return nil, errors.New("protocol: PEOS needs the server AHE key")
	}
	if src == nil {
		return nil, errors.New("protocol: PEOS needs a randomness source")
	}
	enc, err := ldp.NewWordEncoder(fo)
	if err != nil {
		return nil, fmt.Errorf("protocol: %w", err)
	}
	if priv.PlaintextBits() != 64 {
		return nil, fmt.Errorf("protocol: PEOS requires a Z_{2^64} AHE plaintext space, got 2^%d",
			priv.PlaintextBits())
	}
	return &PEOS{
		FO:     fo,
		R:      r,
		NR:     nr,
		Priv:   priv,
		Source: src,
		enc:    enc,
		mod:    secretshare.NewModulus(64),
	}, nil
}

// Run executes Algorithm 1 over the users' true values and returns the
// server's estimates. The LDP randomization uses ldpRand so experiments
// stay reproducible; all share/fake randomness comes from p.Source.
func (p *PEOS) Run(values []int, ldpRand *rng.Rand) (*Result, error) {
	n := len(values)
	if n == 0 {
		return nil, errors.New("protocol: no users")
	}
	meter := &transport.Meter{}
	pub := ahe.PublicKey(p.Priv)
	total := n + p.NR

	// Pre-generate encryption randomizers off the measured path: every
	// user share, fake share, and rerandomization below draws (r, h^r)
	// pairs, and the pool keeps refilling while the protocol computes.
	// Pool randomness is crypto/rand, never p.Source, so estimates stay
	// bit-identical with or without it.
	if pn, ok := pub.(ahe.PoolerN); ok {
		defer pn.StartRandomizerPoolN(ahe.PoolSizeFor(p.ShuffleWorkers), 0)()
	} else if pl, ok := pub.(ahe.Pooler); ok {
		defer pl.StartRandomizerPool(0)()
	}

	// --- Users (Algorithm 1, "User i"). ---
	// plainShares[j][i] is user i's j-th share; encShares[i] is the
	// AHE-encrypted r-th share.
	plainShares := make([][]uint64, p.R-1)
	for j := range plainShares {
		plainShares[j] = make([]uint64, total)
	}
	encShares := make([]*ahe.Ciphertext, total)
	var userErr error
	meter.Track(PartyUsers, func() {
		for i, v := range values {
			rep := p.FO.Randomize(v, ldpRand)
			word := p.enc.Encode(rep)
			shares := secretshare.Split(word, p.R, p.mod, p.Source)
			for j := 0; j < p.R-1; j++ {
				plainShares[j][i] = shares[j]
			}
			c, err := pub.Encrypt(shares[p.R-1])
			if err != nil {
				userErr = err
				return
			}
			encShares[i] = c
		}
	})
	if userErr != nil {
		return nil, userErr
	}
	// Each user sends one 8-byte share to each of r-1 shufflers and
	// one ciphertext to shuffler r.
	for j := 0; j < p.R-1; j++ {
		meter.Send(PartyUsers, ShufflerName(j), 8*n)
	}
	meter.Send(PartyUsers, ShufflerName(p.R-1), pub.CiphertextBytes()*n)

	// --- Shufflers: fake-report shares (Algorithm 1, "Shuffler j"). ---
	for j := 0; j < p.R-1; j++ {
		fakes := p.fakeShares(j)
		sname := ShufflerName(j)
		meter.Track(sname, func() {
			copy(plainShares[j][n:], fakes)
		})
	}
	{
		j := p.R - 1
		fakes := p.fakeShares(j)
		sname := ShufflerName(j)
		var encErr error
		meter.Track(sname, func() {
			for k, s := range fakes {
				c, err := pub.Encrypt(s)
				if err != nil {
					encErr = err
					return
				}
				encShares[n+k] = c
			}
		})
		if encErr != nil {
			return nil, encErr
		}
	}

	// --- Encrypted oblivious shuffle (§VI-A3). ---
	st := &oblivious.State{
		Plain:     append(plainShares, nil),
		Enc:       encShares,
		EncHolder: p.R - 1,
	}
	err := oblivious.Run(st, oblivious.Config{
		Mod:             p.mod,
		Source:          p.Source,
		Pub:             pub,
		Meter:           meter,
		SkipRerandomize: p.FastShuffle,
		Workers:         p.ShuffleWorkers,
	})
	if err != nil {
		return nil, err
	}

	// --- Server: decrypt, combine, estimate. ---
	for j := 0; j < p.R; j++ {
		if j == st.EncHolder {
			meter.Send(ShufflerName(j), PartyServer, pub.CiphertextBytes()*total)
		} else {
			meter.Send(ShufflerName(j), PartyServer, 8*total)
		}
	}
	var words []uint64
	var srvErr error
	meter.Track(PartyServer, func() {
		// Decryptions fan out across cores, as in the paper's server
		// (§VII-D "the decryptions is done in parallel").
		words, srvErr = oblivious.RevealParallel(st, p.mod, p.Priv, p.DecryptWorkers)
	})
	if srvErr != nil {
		return nil, srvErr
	}
	reports := make([]ldp.Report, len(words))
	var est []float64
	meter.Track(PartyServer, func() {
		for i, w := range words {
			reports[i] = p.enc.Decode(w)
		}
		est = Estimate(p.FO, reports, n, p.NR)
	})
	return &Result{Estimates: est, Reports: reports, Meter: meter}, nil
}

// fakeShares returns shuffler j's NR fake-report shares: uniform words
// for honest shufflers, attacker-chosen for a malicious one. A fake
// report's value is the sum of all shufflers' shares, so it stays
// uniform as long as any single shuffler is honest (§VI-A2) —
// a property the attack tests exercise.
func (p *PEOS) fakeShares(j int) []uint64 {
	if p.MaliciousFakes != nil {
		if shares := p.MaliciousFakes(j); shares != nil {
			if len(shares) != p.NR {
				panic("protocol: malicious fake-share vector has wrong length")
			}
			return shares
		}
	}
	src := p.Source
	if p.FakeSource != nil {
		src = p.FakeSource(j)
	}
	out := make([]uint64, p.NR)
	for k := range out {
		out[k] = p.mod.Random(src)
	}
	return out
}
