package protocol

import (
	"math"
	"sync"
	"testing"

	"shuffledp/internal/ahe"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
)

var (
	keyOnce sync.Once
	key64   *ahe.DGKPrivateKey
	keyErr  error
)

// dgk64 returns a shared DGK key with the Z_{2^64} plaintext space PEOS
// requires.
func dgk64(t testing.TB) *ahe.DGKPrivateKey {
	t.Helper()
	keyOnce.Do(func() { key64, keyErr = ahe.GenerateDGK(768, 64) })
	if keyErr != nil {
		t.Fatal(keyErr)
	}
	return key64
}

// skewedValues builds a small dataset with known frequencies.
func skewedValues(n, d int) ([]int, []float64) {
	values := make([]int, n)
	for i := range values {
		switch {
		case i < n/2:
			values[i] = 0
		case i < 3*n/4:
			values[i] = 1
		default:
			values[i] = 2 + i%(d-2)
		}
	}
	return values, ldp.TrueFrequencies(values, d)
}

func maxAbsError(truth, est []float64) float64 {
	worst := 0.0
	for i := range truth {
		if e := math.Abs(truth[i] - est[i]); e > worst {
			worst = e
		}
	}
	return worst
}

func TestPlainShuffleGRR(t *testing.T) {
	const n, d = 20000, 8
	values, truth := skewedValues(n, d)
	fo := ldp.NewGRR(d, 3)
	res, err := PlainShuffle(fo, values, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != n {
		t.Fatalf("reports: %d", len(res.Reports))
	}
	tol := 6 * math.Sqrt(fo.Variance(n))
	if e := maxAbsError(truth, res.Estimates); e > tol {
		t.Fatalf("max error %v > tol %v", e, tol)
	}
	// Shuffling must not preserve the user order: the first report
	// should rarely equal user 0's value deterministically — weak
	// check: meter recorded shuffler activity.
	if res.Meter.Stats(ShufflerName(0)).RecvBytes != int64(8*n) {
		t.Fatal("shuffler communication not accounted")
	}
}

func TestPlainShuffleSOLH(t *testing.T) {
	const n, d = 20000, 32
	values, truth := skewedValues(n, d)
	fo := ldp.NewSOLH(d, 6, 2.5)
	res, err := PlainShuffle(fo, values, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	tol := 6 * math.Sqrt(fo.Variance(n))
	if e := maxAbsError(truth, res.Estimates); e > tol {
		t.Fatalf("max error %v > tol %v", e, tol)
	}
}

func TestPlainShuffleNilOracle(t *testing.T) {
	if _, err := PlainShuffle(nil, []int{1}, rng.New(1)); err == nil {
		t.Fatal("expected error")
	}
}

func TestPEOSEndToEndGRR(t *testing.T) {
	key := dgk64(t)
	const n, d, r, nr = 600, 6, 3, 120
	values, truth := skewedValues(n, d)
	fo := ldp.NewGRR(d, 4)
	p, err := NewPEOS(fo, r, nr, key, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(values, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != n+nr {
		t.Fatalf("reports: %d, want %d", len(res.Reports), n+nr)
	}
	// Estimates noisy at n=600 but must track the truth.
	tol := 6*math.Sqrt(fo.Variance(n)*float64(n+nr)/float64(n)) + 0.05
	if e := maxAbsError(truth, res.Estimates); e > tol {
		t.Fatalf("max error %v > tol %v\ntruth %v\nest %v", e, tol, truth, res.Estimates)
	}
	// Accounting sanity: users sent r-1 plain shares + 1 ciphertext
	// each.
	users := res.Meter.Stats(PartyUsers)
	wantSent := int64(8*(r-1)*n + key.CiphertextBytes()*n)
	if users.SentBytes != wantSent {
		t.Fatalf("user bytes %d, want %d", users.SentBytes, wantSent)
	}
	// The server received all n+nr reports from r shufflers.
	srv := res.Meter.Stats(PartyServer)
	wantRecv := int64(8*(r-1)*(n+nr) + key.CiphertextBytes()*(n+nr))
	if srv.RecvBytes != wantRecv {
		t.Fatalf("server recv %d, want %d", srv.RecvBytes, wantRecv)
	}
}

func TestPEOSEndToEndSOLH(t *testing.T) {
	key := dgk64(t)
	const n, d, r, nr = 600, 16, 3, 90
	values, truth := skewedValues(n, d)
	fo := ldp.NewSOLH(d, 5, 4)
	p, err := NewPEOS(fo, r, nr, key, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(values, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	tol := 6*math.Sqrt(fo.Variance(n)*float64(n+nr)/float64(n)) + 0.05
	if e := maxAbsError(truth, res.Estimates); e > tol {
		t.Fatalf("max error %v > tol %v", e, tol)
	}
}

func TestPEOSShufflesReports(t *testing.T) {
	key := dgk64(t)
	const n, d, r = 400, 4, 3
	// All users hold distinct block values so order is detectable:
	// user i reports value i/(n/d).
	values := make([]int, n)
	for i := range values {
		values[i] = i / (n / d)
	}
	fo := ldp.NewGRR(d, 8) // high eps: reports ~ true values
	p, err := NewPEOS(fo, r, 0, key, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(values, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	// If the shuffle were the identity, reports would be sorted into
	// d blocks; count order inversions to detect shuffling.
	inversions := 0
	for i := 1; i < len(res.Reports); i++ {
		if res.Reports[i].Value < res.Reports[i-1].Value {
			inversions++
		}
	}
	if inversions < n/10 {
		t.Fatalf("only %d inversions — output looks unshuffled", inversions)
	}
}

func TestPEOSValidation(t *testing.T) {
	key := dgk64(t)
	fo := ldp.NewGRR(4, 1)
	src := rng.New(1)
	if _, err := NewPEOS(fo, 1, 10, key, src); err == nil {
		t.Error("r=1 accepted")
	}
	if _, err := NewPEOS(fo, 3, -1, key, src); err == nil {
		t.Error("negative nr accepted")
	}
	if _, err := NewPEOS(fo, 3, 10, nil, src); err == nil {
		t.Error("nil key accepted")
	}
	if _, err := NewPEOS(fo, 3, 10, key, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewPEOS(ldp.NewRAP(4, 1), 3, 10, key, src); err == nil {
		t.Error("unary oracle accepted")
	}
	p, err := NewPEOS(fo, 3, 10, key, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(nil, rng.New(2)); err == nil {
		t.Error("empty user set accepted")
	}
}

func TestPEOSRejectsNarrowPlaintext(t *testing.T) {
	// PEOS needs Z_{2^64}; a 32-bit plaintext key must be rejected.
	key32, err := ahe.GenerateDGK(768, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPEOS(ldp.NewGRR(4, 1), 3, 10, key32, rng.New(1)); err == nil {
		t.Fatal("32-bit plaintext key accepted")
	}
}

func TestSSEndToEnd(t *testing.T) {
	const n, d, r, nr = 3000, 8, 3, 300
	values, truth := skewedValues(n, d)
	fo := ldp.NewGRR(d, 4)
	s, err := NewSS(fo, r, nr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(values, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != n+(nr/r)*r {
		t.Fatalf("reports: %d", len(res.Reports))
	}
	tol := 6*math.Sqrt(fo.Variance(n)) + 0.03
	if e := maxAbsError(truth, res.Estimates); e > tol {
		t.Fatalf("max error %v > tol %v", e, tol)
	}
	// Onion sizing: users' batch is n * (payload + (r+1) layers).
	users := res.Meter.Stats(PartyUsers)
	wantUser := int64(n * (32 + (r+1)*97))
	if users.SentBytes != wantUser {
		t.Fatalf("user bytes %d, want %d", users.SentBytes, wantUser)
	}
}

func TestSSWithSOLH(t *testing.T) {
	const n, d, r, nr = 3000, 20, 2, 200
	values, truth := skewedValues(n, d)
	fo := ldp.NewSOLH(d, 6, 4)
	s, err := NewSS(fo, r, nr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(values, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	tol := 6*math.Sqrt(fo.Variance(n)) + 0.03
	if e := maxAbsError(truth, res.Estimates); e > tol {
		t.Fatalf("max error %v > tol %v", e, tol)
	}
}

func TestSSValidation(t *testing.T) {
	fo := ldp.NewGRR(4, 1)
	if _, err := NewSS(fo, 0, 10); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := NewSS(fo, 3, -5); err == nil {
		t.Error("negative nr accepted")
	}
	if _, err := NewSS(ldp.NewAUE(4, 1, 1e-9, 100), 3, 0); err == nil {
		t.Error("AUE accepted")
	}
	s, err := NewSS(fo, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(nil, rng.New(1)); err == nil {
		t.Error("empty user set accepted")
	}
}

func TestSpotCheckDetectsTampering(t *testing.T) {
	fo := ldp.NewGRR(16, 2)
	sc, err := NewSpotCheck(fo)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	var planted []ldp.Report
	for i := 0; i < 20; i++ {
		rep := fo.Randomize(i%16, r)
		planted = append(planted, sc.Plant(rep))
	}
	if sc.Count() != 20 {
		t.Fatalf("Count = %d", sc.Count())
	}
	// Honest batch: planted + other reports.
	batch := append([]ldp.Report(nil), planted...)
	for i := 0; i < 100; i++ {
		batch = append(batch, fo.Randomize(i%16, r))
	}
	if missing := sc.Verify(batch); missing != 0 {
		t.Fatalf("honest batch flagged: %d missing", missing)
	}
	// Tampered batch: drop 5 planted reports.
	tampered := append([]ldp.Report(nil), planted[5:]...)
	if missing := sc.Verify(tampered); missing != 5 {
		t.Fatalf("missing = %d, want 5", missing)
	}
}

func TestSpotCheckMultiplicity(t *testing.T) {
	fo := ldp.NewGRR(4, 1)
	sc, _ := NewSpotCheck(fo)
	rep := ldp.Report{Value: 2}
	sc.Plant(rep)
	sc.Plant(rep)
	// One copy present, one missing.
	if missing := sc.Verify([]ldp.Report{rep}); missing != 1 {
		t.Fatalf("missing = %d, want 1", missing)
	}
}
