package protocol

import (
	"math"
	"testing"

	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
)

// A malicious SS shuffler substitutes every report with its target;
// the server's spot-check (§VI-A1) must notice the planted dummies
// vanished.
func TestSSMaliciousSubstitutionCaughtBySpotCheck(t *testing.T) {
	const n, d, r = 500, 16, 3
	fo := ldp.NewGRR(d, 6)
	s, err := NewSS(fo, r, 0)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := ldp.NewWordEncoder(fo)
	if err != nil {
		t.Fatal(err)
	}
	// The server's dummy accounts: it controls their randomness, so it
	// knows their exact reports. Mix them among the users' values by
	// running them through the same pipeline (here: dummies report
	// value d-1 deterministically via a high-eps oracle is not enough —
	// instead the server records the exact reports it submits).
	sc, err := NewSpotCheck(fo)
	if err != nil {
		t.Fatal(err)
	}
	scRand := rng.New(100)
	dummyReports := make([]ldp.Report, 25)
	for i := range dummyReports {
		dummyReports[i] = sc.Plant(fo.Randomize(i%d, scRand))
	}

	// Malicious shuffler 1 rewrites the whole batch to boost value 0.
	target := enc.Encode(ldp.Report{Value: 0})
	s.MaliciousShuffler = func(j int, batch [][]byte) [][]byte {
		if j != 1 {
			return batch
		}
		// Substitute: re-encrypt target-value payloads for the
		// remaining hops. The attacker can do this because it knows
		// the downstream public keys.
		out := make([][]byte, len(batch))
		for i := range batch {
			onion, err := s.onionForHops(j+1, target)
			if err != nil {
				t.Errorf("attacker onion: %v", err)
				return batch
			}
			out[i] = onion
		}
		return out
	}

	values := make([]int, n)
	for i := range values {
		values[i] = i % d
	}
	res, err := s.runWithExtraReports(values, dummyReports, rng.New(101))
	if err != nil {
		t.Fatal(err)
	}
	missing := sc.Verify(res.Reports)
	if missing == 0 {
		t.Fatal("spot check failed to detect wholesale substitution")
	}
	// The attack also visibly skews value 0 (everything became 0).
	if res.Estimates[0] < 0.5 {
		t.Fatalf("substitution attack had no effect: est[0] = %v", res.Estimates[0])
	}
}

// An honest run must pass the spot check.
func TestSSHonestRunPassesSpotCheck(t *testing.T) {
	const n, d, r = 500, 16, 2
	fo := ldp.NewGRR(d, 6)
	s, err := NewSS(fo, r, 50)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewSpotCheck(fo)
	if err != nil {
		t.Fatal(err)
	}
	scRand := rng.New(102)
	dummyReports := make([]ldp.Report, 25)
	for i := range dummyReports {
		dummyReports[i] = sc.Plant(fo.Randomize(i%d, scRand))
	}
	values := make([]int, n)
	for i := range values {
		values[i] = i % d
	}
	res, err := s.runWithExtraReports(values, dummyReports, rng.New(103))
	if err != nil {
		t.Fatal(err)
	}
	if missing := sc.Verify(res.Reports); missing != 0 {
		t.Fatalf("honest run flagged: %d dummies missing", missing)
	}
}

// A malicious SS shuffler can skew its fake reports undetectably by
// the spot check (the §VI-A1 weakness that motivates PEOS): the
// dummies survive, yet the estimate is biased.
func TestSSSkewedFakesPassSpotCheckButBias(t *testing.T) {
	const n, d, r, nr = 2000, 8, 2, 600
	fo := ldp.NewGRR(d, 6)
	s, err := NewSS(fo, r, nr)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := ldp.NewWordEncoder(fo)
	if err != nil {
		t.Fatal(err)
	}
	target := enc.Encode(ldp.Report{Value: 3})
	s.MaliciousFakeWords = func(j, count int) []uint64 {
		if j != 0 {
			return nil // other shufflers honest
		}
		words := make([]uint64, count)
		for k := range words {
			words[k] = target
		}
		return words
	}
	sc, err := NewSpotCheck(fo)
	if err != nil {
		t.Fatal(err)
	}
	scRand := rng.New(104)
	dummyReports := make([]ldp.Report, 20)
	for i := range dummyReports {
		dummyReports[i] = sc.Plant(fo.Randomize(i%d, scRand))
	}
	values := make([]int, n) // all users hold value 0
	res, err := s.runWithExtraReports(values, dummyReports, rng.New(105))
	if err != nil {
		t.Fatal(err)
	}
	if missing := sc.Verify(res.Reports); missing != 0 {
		t.Fatalf("skewed fakes should NOT trip the spot check; %d missing", missing)
	}
	// Bias: value 3 has true frequency 0 but gets the skewed fake mass
	// (~nr/r fakes on one value among n users).
	if res.Estimates[3] < 0.05 {
		t.Fatalf("skewed fakes had no visible effect: est[3] = %v", res.Estimates[3])
	}
}

// The same skewed-fakes adversary against the real PEOS protocol: one
// malicious shuffler fixes its fake shares, the others stay honest —
// the estimate must remain unbiased (the §VI-A2 masking property,
// here verified through the full cryptographic pipeline).
func TestPEOSMaliciousFakesMaskedEndToEnd(t *testing.T) {
	key := dgk64(t)
	const n, d, r, nr = 400, 8, 3, 200
	fo := ldp.NewGRR(d, 6)
	p, err := NewPEOS(fo, r, nr, key, rng.New(106))
	if err != nil {
		t.Fatal(err)
	}
	p.MaliciousFakes = func(j int) []uint64 {
		if j != 0 {
			return nil // honest
		}
		words := make([]uint64, nr)
		for k := range words {
			words[k] = 3 // try to push everything onto value 3
		}
		return words
	}
	values := make([]int, n) // all users hold value 0
	res, err := p.Run(values, rng.New(107))
	if err != nil {
		t.Fatal(err)
	}
	// Value 3's true frequency is 0; with honest masking its estimate
	// stays within noise (no nr/n ~ 0.5 spike).
	if math.Abs(res.Estimates[3]) > 0.15 {
		t.Fatalf("PEOS masking failed: est[3] = %v", res.Estimates[3])
	}
	// Value 0 stays dominant.
	if res.Estimates[0] < 0.7 {
		t.Fatalf("est[0] = %v, want ~1", res.Estimates[0])
	}
}
