// Package composition implements differential-privacy composition
// accounting. §V-B notes that interactive protocols "can utilize
// composition theorems to prove the DP guarantee"; TreeHist (§VII-C) is
// exactly such a protocol — six adaptive rounds against the same
// users — and this package provides the calculators:
//
//   - Basic composition: k mechanisms of (eps_i, delta_i)-DP compose to
//     (sum eps_i, sum delta_i)-DP.
//   - Advanced composition (Dwork–Rothblum–Vadhan): k mechanisms of
//     (eps, delta)-DP compose to
//     (eps*sqrt(2k ln(1/delta')) + k*eps*(e^eps - 1), k*delta + delta')-DP
//     for any slack delta' > 0.
//   - The inverse problems: the largest per-round budget whose k-fold
//     composition stays within a total budget.
package composition

import (
	"errors"
	"math"
)

// Guarantee is an (epsilon, delta)-DP guarantee.
type Guarantee struct {
	Eps   float64
	Delta float64
}

func validate(g Guarantee) error {
	if g.Eps < 0 || g.Delta < 0 || g.Delta >= 1 {
		return errors.New("composition: need eps >= 0 and delta in [0, 1)")
	}
	return nil
}

// Basic returns the basic (sequential) composition of the guarantees.
func Basic(gs ...Guarantee) (Guarantee, error) {
	var total Guarantee
	for _, g := range gs {
		if err := validate(g); err != nil {
			return Guarantee{}, err
		}
		total.Eps += g.Eps
		total.Delta += g.Delta
	}
	return total, nil
}

// Advanced returns the advanced-composition guarantee of k runs of an
// (eps, delta)-DP mechanism with slack deltaPrime.
func Advanced(g Guarantee, k int, deltaPrime float64) (Guarantee, error) {
	if err := validate(g); err != nil {
		return Guarantee{}, err
	}
	if k < 1 {
		return Guarantee{}, errors.New("composition: k must be >= 1")
	}
	if deltaPrime <= 0 || deltaPrime >= 1 {
		return Guarantee{}, errors.New("composition: deltaPrime must be in (0, 1)")
	}
	kf := float64(k)
	eps := g.Eps*math.Sqrt(2*kf*math.Log(1/deltaPrime)) +
		kf*g.Eps*(math.Exp(g.Eps)-1)
	return Guarantee{Eps: eps, Delta: kf*g.Delta + deltaPrime}, nil
}

// SplitBasic returns the per-round guarantee under basic composition:
// total split evenly across k rounds. This is the split the paper uses
// for the shuffle-model TreeHist ("dividing epsC and deltaC by 6 for
// each round").
func SplitBasic(total Guarantee, k int) (Guarantee, error) {
	if err := validate(total); err != nil {
		return Guarantee{}, err
	}
	if k < 1 {
		return Guarantee{}, errors.New("composition: k must be >= 1")
	}
	return Guarantee{Eps: total.Eps / float64(k), Delta: total.Delta / float64(k)}, nil
}

// SplitAdvanced returns the largest per-round (eps, delta) such that k
// advanced-composed rounds stay within the total, reserving half the
// total delta as slack. Found by bisection on the per-round eps. For
// small k or large eps, basic composition can allow a bigger per-round
// budget; MaxSplit picks the better of the two.
func SplitAdvanced(total Guarantee, k int) (Guarantee, error) {
	if err := validate(total); err != nil {
		return Guarantee{}, err
	}
	if k < 1 {
		return Guarantee{}, errors.New("composition: k must be >= 1")
	}
	if total.Delta <= 0 {
		return Guarantee{}, errors.New("composition: advanced composition needs delta > 0")
	}
	slack := total.Delta / 2
	perDelta := total.Delta / 2 / float64(k)
	lo, hi := 0.0, total.Eps // per-round eps cannot exceed the total
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		g, err := Advanced(Guarantee{Eps: mid, Delta: perDelta}, k, slack)
		if err != nil {
			return Guarantee{}, err
		}
		if g.Eps <= total.Eps {
			lo = mid
		} else {
			hi = mid
		}
	}
	return Guarantee{Eps: lo, Delta: perDelta}, nil
}

// MaxSplit returns the larger per-round budget of SplitBasic and
// SplitAdvanced — what an adaptive protocol like TreeHist should
// actually spend per round.
func MaxSplit(total Guarantee, k int) (Guarantee, error) {
	basic, err := SplitBasic(total, k)
	if err != nil {
		return Guarantee{}, err
	}
	if total.Delta == 0 {
		return basic, nil
	}
	adv, err := SplitAdvanced(total, k)
	if err != nil {
		return Guarantee{}, err
	}
	if adv.Eps > basic.Eps {
		return adv, nil
	}
	return basic, nil
}
