package composition

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBasic(t *testing.T) {
	g, err := Basic(
		Guarantee{Eps: 0.1, Delta: 1e-9},
		Guarantee{Eps: 0.2, Delta: 2e-9},
		Guarantee{Eps: 0.3, Delta: 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Eps-0.6) > 1e-12 || math.Abs(g.Delta-3e-9) > 1e-21 {
		t.Fatalf("Basic = %+v", g)
	}
}

func TestBasicRejectsInvalid(t *testing.T) {
	if _, err := Basic(Guarantee{Eps: -1}); err == nil {
		t.Fatal("negative eps accepted")
	}
	if _, err := Basic(Guarantee{Delta: 1}); err == nil {
		t.Fatal("delta = 1 accepted")
	}
}

func TestAdvancedFormula(t *testing.T) {
	// Hand check at eps=0.1, k=100, delta'=1e-6.
	g, err := Advanced(Guarantee{Eps: 0.1, Delta: 1e-9}, 100, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.1*math.Sqrt(200*math.Log(1e6)) + 100*0.1*(math.Exp(0.1)-1)
	if math.Abs(g.Eps-want) > 1e-12 {
		t.Fatalf("eps = %v, want %v", g.Eps, want)
	}
	if math.Abs(g.Delta-(100e-9+1e-6)) > 1e-18 {
		t.Fatalf("delta = %v", g.Delta)
	}
}

func TestAdvancedBeatsBasicForManyRounds(t *testing.T) {
	// For small per-round eps and many rounds, advanced composition's
	// sqrt(k) scaling beats basic's linear k.
	per := Guarantee{Eps: 0.01, Delta: 0}
	const k = 10000
	adv, err := Advanced(per, k, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Eps >= per.Eps*float64(k) {
		t.Fatalf("advanced (%v) did not beat basic (%v)", adv.Eps, per.Eps*float64(k))
	}
}

func TestAdvancedValidation(t *testing.T) {
	if _, err := Advanced(Guarantee{Eps: 1}, 0, 1e-6); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Advanced(Guarantee{Eps: 1}, 2, 0); err == nil {
		t.Fatal("deltaPrime=0 accepted")
	}
}

func TestSplitBasic(t *testing.T) {
	g, err := SplitBasic(Guarantee{Eps: 1.2, Delta: 6e-9}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Eps-0.2) > 1e-12 || math.Abs(g.Delta-1e-9) > 1e-21 {
		t.Fatalf("SplitBasic = %+v", g)
	}
}

// Property: SplitAdvanced's result, recomposed, stays within budget.
func TestQuickSplitAdvancedSound(t *testing.T) {
	f := func(epsRaw, kRaw uint8) bool {
		total := Guarantee{Eps: 0.1 + float64(epsRaw)/64, Delta: 1e-8}
		k := 1 + int(kRaw%50)
		per, err := SplitAdvanced(total, k)
		if err != nil {
			return false
		}
		back, err := Advanced(per, k, total.Delta/2)
		if err != nil {
			return false
		}
		return back.Eps <= total.Eps*1.0001 && back.Delta <= total.Delta*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMaxSplitPicksBetter(t *testing.T) {
	// Few rounds, big budget: basic wins (advanced's sqrt overhead
	// dominates at k=2).
	total := Guarantee{Eps: 2, Delta: 1e-8}
	g, err := MaxSplit(total, 2)
	if err != nil {
		t.Fatal(err)
	}
	basic, _ := SplitBasic(total, 2)
	if g.Eps < basic.Eps {
		t.Fatalf("MaxSplit (%v) worse than basic (%v)", g.Eps, basic.Eps)
	}
	// Many rounds, small budget: advanced should win.
	total2 := Guarantee{Eps: 1, Delta: 1e-6}
	g2, err := MaxSplit(total2, 500)
	if err != nil {
		t.Fatal(err)
	}
	basic2, _ := SplitBasic(total2, 500)
	if g2.Eps <= basic2.Eps {
		t.Fatalf("MaxSplit (%v) did not beat basic (%v) at k=500", g2.Eps, basic2.Eps)
	}
}

func TestMaxSplitPureEps(t *testing.T) {
	// delta = 0 rules out advanced composition; must fall back to
	// basic.
	g, err := MaxSplit(Guarantee{Eps: 1, Delta: 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Eps-0.1) > 1e-12 {
		t.Fatalf("pure-eps MaxSplit = %v", g.Eps)
	}
}

func TestSplitAdvancedNeedsDelta(t *testing.T) {
	if _, err := SplitAdvanced(Guarantee{Eps: 1, Delta: 0}, 5); err == nil {
		t.Fatal("delta=0 accepted")
	}
}
