package treehist

import (
	"testing"

	"shuffledp/internal/dataset"
	"shuffledp/internal/rng"
)

func TestNIRecoversHeavyHitters(t *testing.T) {
	ds := dataset.SyntheticStrings("ni", 40000, 60, 16, 1.6, 21)
	cfg := NIConfig{
		Bits: 16, RoundBits: 8, K: 8,
		DPrime: 16, EpsLocalPerLevel: 4,
	}
	r := rng.New(22)
	reports, err := CollectNI(ds.Values, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != ds.N() {
		t.Fatalf("reports: %d", len(reports))
	}
	found, err := RunNI(reports, cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := ds.TopStrings(cfg.K)
	if p := Precision(found, truth); p < 0.6 {
		t.Fatalf("non-interactive precision %v too low at epsL=4/level", p)
	}
}

func TestNIReportShape(t *testing.T) {
	cfg := NIConfig{Bits: 24, RoundBits: 8, K: 4, DPrime: 8, EpsLocalPerLevel: 1}
	rep := EncodeNI(0xABCDEF, cfg, rng.New(23))
	if len(rep.Seeds) != 3 || len(rep.Values) != 3 {
		t.Fatalf("report shape: %d seeds, %d values", len(rep.Seeds), len(rep.Values))
	}
	for _, v := range rep.Values {
		if int(v) >= cfg.DPrime {
			t.Fatalf("value %d outside [0, %d)", v, cfg.DPrime)
		}
	}
	if cfg.Levels() != 3 {
		t.Fatalf("Levels = %d", cfg.Levels())
	}
}

func TestNIServerNeedsNoInteraction(t *testing.T) {
	// The defining property: the server can evaluate candidates chosen
	// AFTER collection. Collect against one dataset, then run two
	// different BFS configurations (different K) on the same reports.
	ds := dataset.SyntheticStrings("ni2", 20000, 40, 16, 1.6, 24)
	cfg := NIConfig{Bits: 16, RoundBits: 8, K: 8, DPrime: 16, EpsLocalPerLevel: 4}
	reports, err := CollectNI(ds.Values, cfg, rng.New(25))
	if err != nil {
		t.Fatal(err)
	}
	found8, err := RunNI(reports, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.K = 4
	found4, err := RunNI(reports, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(found8) != 8 || len(found4) != 4 {
		t.Fatalf("got %d and %d results", len(found8), len(found4))
	}
}

func TestNIValidation(t *testing.T) {
	good := NIConfig{Bits: 16, RoundBits: 8, K: 4, DPrime: 8, EpsLocalPerLevel: 1}
	bad := []NIConfig{
		{Bits: 7, RoundBits: 8, K: 4, DPrime: 8, EpsLocalPerLevel: 1},
		{Bits: 16, RoundBits: 5, K: 4, DPrime: 8, EpsLocalPerLevel: 1},
		{Bits: 16, RoundBits: 8, K: 0, DPrime: 8, EpsLocalPerLevel: 1},
		{Bits: 16, RoundBits: 8, K: 4, DPrime: 1, EpsLocalPerLevel: 1},
		{Bits: 16, RoundBits: 8, K: 4, DPrime: 8, EpsLocalPerLevel: 0},
	}
	for i, cfg := range bad {
		if _, err := CollectNI([]uint64{1}, cfg, rng.New(1)); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := RunNI(nil, good); err == nil {
		t.Error("no reports accepted")
	}
	// Malformed report.
	if _, err := RunNI([]NIReport{{Seeds: []uint32{1}}}, good); err == nil {
		t.Error("malformed report accepted")
	}
	// DPrime > 256 cannot fit uint8.
	huge := good
	huge.DPrime = 300
	if _, err := CollectNI([]uint64{1}, huge, rng.New(1)); err == nil {
		t.Error("DPrime > 256 accepted")
	}
}
