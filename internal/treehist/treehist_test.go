package treehist

import (
	"testing"

	"shuffledp/internal/dataset"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
)

// exactEstimate is a noise-free estimator: TreeHist with it must find
// the exact top-K.
func exactEstimate(values []int, d int) []float64 {
	return ldp.TrueFrequencies(values, d)
}

func TestRunExactRecovery(t *testing.T) {
	ds := dataset.SyntheticStrings("t", 30000, 200, 16, 1.3, 1)
	cfg := Config{Bits: 16, RoundBits: 8, K: 8, Estimate: exactEstimate}
	found, err := Run(ds.Values, cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := ds.TopStrings(8)
	if p := Precision(found, truth); p < 0.99 {
		t.Fatalf("exact estimator precision %v, want 1", p)
	}
}

func TestRunWithNoisyOracle(t *testing.T) {
	ds := dataset.SyntheticStrings("t", 50000, 100, 16, 1.5, 2)
	r := rng.New(3)
	noisy := func(values []int, d int) []float64 {
		fo := ldp.NewGRR(d, 5) // generous budget: high precision
		counts := ldp.Histogram(values, d)
		return ldp.SimulateEstimates(fo, counts, r)
	}
	cfg := Config{Bits: 16, RoundBits: 8, K: 8, Estimate: noisy}
	found, err := Run(ds.Values, cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := ds.TopStrings(8)
	if p := Precision(found, truth); p < 0.5 {
		t.Fatalf("noisy precision %v too low for eps=5", p)
	}
}

func TestGroupUsersSplitsBudgetAcrossRounds(t *testing.T) {
	ds := dataset.SyntheticStrings("t", 60000, 100, 16, 1.5, 4)
	calls := 0
	var sizes []int
	est := func(values []int, d int) []float64 {
		calls++
		sizes = append(sizes, len(values))
		return ldp.TrueFrequencies(values, d)
	}
	cfg := Config{Bits: 16, RoundBits: 8, K: 4, GroupUsers: true, Estimate: est}
	if _, err := Run(ds.Values, cfg); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("rounds = %d, want 2", calls)
	}
	if sizes[0] != 30000 || sizes[1] != 30000 {
		t.Fatalf("group sizes = %v", sizes)
	}
}

func TestNoGroupingUsesAllUsersEachRound(t *testing.T) {
	ds := dataset.SyntheticStrings("t", 10000, 50, 16, 1.5, 5)
	var sizes []int
	est := func(values []int, d int) []float64 {
		sizes = append(sizes, len(values))
		return ldp.TrueFrequencies(values, d)
	}
	cfg := Config{Bits: 16, RoundBits: 8, K: 4, Estimate: est}
	if _, err := Run(ds.Values, cfg); err != nil {
		t.Fatal(err)
	}
	for _, s := range sizes {
		if s != 10000 {
			t.Fatalf("round saw %d users, want all 10000", s)
		}
	}
}

func TestCandidateDomainShape(t *testing.T) {
	// Round 1 should see 2^8+1 values; later rounds K*2^8+1.
	ds := dataset.SyntheticStrings("t", 20000, 100, 24, 1.5, 6)
	var domains []int
	est := func(values []int, d int) []float64 {
		domains = append(domains, d)
		return ldp.TrueFrequencies(values, d)
	}
	cfg := Config{Bits: 24, RoundBits: 8, K: 16, Estimate: est}
	if _, err := Run(ds.Values, cfg); err != nil {
		t.Fatal(err)
	}
	if domains[0] != 257 {
		t.Fatalf("round 1 domain = %d, want 257", domains[0])
	}
	for _, d := range domains[1:] {
		if d != 16*256+1 {
			t.Fatalf("later domain = %d, want %d", d, 16*256+1)
		}
	}
}

func TestRunValidation(t *testing.T) {
	values := []uint64{1, 2, 3}
	bad := []Config{
		{Bits: 4, RoundBits: 8, K: 4, Estimate: exactEstimate},
		{Bits: 16, RoundBits: 0, K: 4, Estimate: exactEstimate},
		{Bits: 20, RoundBits: 8, K: 4, Estimate: exactEstimate},
		{Bits: 16, RoundBits: 8, K: 0, Estimate: exactEstimate},
		{Bits: 16, RoundBits: 8, K: 4},
	}
	for i, cfg := range bad {
		if _, err := Run(values, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	ok := Config{Bits: 16, RoundBits: 8, K: 4, Estimate: exactEstimate}
	if _, err := Run(nil, ok); err == nil {
		t.Error("empty users accepted")
	}
	// Wrong-length estimate.
	broken := Config{Bits: 16, RoundBits: 8, K: 4,
		Estimate: func(values []int, d int) []float64 { return nil }}
	if _, err := Run(values, broken); err == nil {
		t.Error("wrong-length estimate accepted")
	}
}

func TestPrecision(t *testing.T) {
	if p := Precision([]uint64{1, 2, 3}, []uint64{2, 3, 4, 5}); p != 0.5 {
		t.Fatalf("Precision = %v, want 0.5", p)
	}
	if p := Precision(nil, nil); p != 0 {
		t.Fatalf("empty Precision = %v", p)
	}
}

func TestConfigRounds(t *testing.T) {
	cfg := Config{Bits: 48, RoundBits: 8}
	if cfg.Rounds() != 6 {
		t.Fatalf("Rounds = %d, want 6", cfg.Rounds())
	}
}
