// Package treehist implements the TreeHist succinct-histogram algorithm
// (Bassily et al., §VII-C): finding the most frequent strings in a
// domain too large to enumerate (2^48 for the AOL experiment) by
// traversing a prefix tree breadth-first, keeping only prefixes that an
// LDP/shuffle-model frequency oracle reports as frequent.
//
// The frequency estimation is pluggable (Config.Estimate), so the same
// traversal runs under plain LDP oracles (with users partitioned across
// rounds, as the original TreeHist does) or shuffle-model mechanisms
// (all users each round, budget divided by the number of rounds —
// the better strategy §VII-C identifies for the shuffle case).
package treehist

import (
	"errors"

	"shuffledp/internal/ldp"
)

// Config parameterizes a TreeHist run.
type Config struct {
	// Bits is the total string length (48 for AOL).
	Bits int
	// RoundBits is how many bits each round extends the prefix by
	// (8 for the paper's 6-round setup).
	RoundBits int
	// K is the number of prefixes kept per round (and final strings
	// returned), 32 in §VII-C.
	K int
	// GroupUsers partitions users across rounds (the LDP strategy)
	// instead of having every user answer every round (the shuffle
	// strategy).
	GroupUsers bool
	// Estimate produces frequency estimates for values over [0, d):
	// the mechanism under test. values uses d-1 as the dummy index for
	// users whose string matches no candidate prefix.
	Estimate func(values []int, d int) []float64
}

func (cfg Config) validate() error {
	switch {
	case cfg.Bits < 8 || cfg.Bits > 64:
		return errors.New("treehist: Bits must be in [8, 64]")
	case cfg.RoundBits < 1 || cfg.RoundBits > 16:
		return errors.New("treehist: RoundBits must be in [1, 16]")
	case cfg.Bits%cfg.RoundBits != 0:
		return errors.New("treehist: RoundBits must divide Bits")
	case cfg.K < 1:
		return errors.New("treehist: K must be >= 1")
	case cfg.Estimate == nil:
		return errors.New("treehist: Estimate is required")
	}
	return nil
}

// Rounds returns the number of traversal rounds.
func (cfg Config) Rounds() int { return cfg.Bits / cfg.RoundBits }

// Run finds up to K frequent strings among the users' values.
func Run(values []uint64, cfg Config) ([]uint64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(values) == 0 {
		return nil, errors.New("treehist: no users")
	}
	rounds := cfg.Rounds()
	branch := 1 << uint(cfg.RoundBits)

	// Partition users across rounds if grouping.
	groups := make([][]uint64, rounds)
	if cfg.GroupUsers {
		per := len(values) / rounds
		if per == 0 {
			return nil, errors.New("treehist: too few users to group")
		}
		for g := 0; g < rounds; g++ {
			lo := g * per
			hi := lo + per
			if g == rounds-1 {
				hi = len(values)
			}
			groups[g] = values[lo:hi]
		}
	} else {
		for g := range groups {
			groups[g] = values
		}
	}

	// frontier is the set of currently-frequent prefixes (empty prefix
	// initially, represented implicitly by a single zero-length entry).
	frontier := []uint64{0}
	frontierBits := 0
	for round := 0; round < rounds; round++ {
		// Candidates: every frontier prefix extended by RoundBits.
		candidates := make([]uint64, 0, len(frontier)*branch)
		for _, p := range frontier {
			base := p << uint(cfg.RoundBits)
			for b := 0; b < branch; b++ {
				candidates = append(candidates, base|uint64(b))
			}
		}
		candBits := frontierBits + cfg.RoundBits
		// Map each user's string prefix to a candidate index, or the
		// dummy (last) index when the prefix fell off the frontier.
		index := make(map[uint64]int, len(candidates))
		for i, c := range candidates {
			index[c] = i
		}
		d := len(candidates) + 1 // +1 dummy
		dummy := d - 1
		users := groups[round]
		mapped := make([]int, len(users))
		shift := uint(cfg.Bits - candBits)
		for i, v := range users {
			if idx, ok := index[v>>shift]; ok {
				mapped[i] = idx
			} else {
				mapped[i] = dummy
			}
		}
		est := cfg.Estimate(mapped, d)
		if len(est) != d {
			return nil, errors.New("treehist: Estimate returned wrong length")
		}
		// Keep the top K candidates (never the dummy).
		top := ldp.TopK(est[:len(candidates)], cfg.K)
		next := make([]uint64, 0, len(top))
		for _, idx := range top {
			next = append(next, candidates[idx])
		}
		frontier = next
		frontierBits = candBits
	}
	return frontier, nil
}

// Precision returns |found ∩ truth| / |truth| — the §VII-C metric
// (truth being the true top-K strings).
func Precision(found, truth []uint64) float64 {
	if len(truth) == 0 {
		return 0
	}
	set := make(map[uint64]bool, len(found))
	for _, f := range found {
		set[f] = true
	}
	hit := 0
	for _, v := range truth {
		if set[v] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}
