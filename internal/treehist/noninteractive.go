package treehist

import (
	"encoding/binary"
	"errors"
	"math"

	"shuffledp/internal/hash"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
)

// Non-interactive TreeHist (§VII-C): "another advantage of SOLH we
// observe here is that SOLH enables non-interactive execution of
// TreeHist ... the users can encode all their prefixes and report
// together. The server, after obtaining some frequent prefix, can
// directly test the potential strings in the next round."
//
// Each user submits, up front, one local-hash report per tree level:
// the hash of their length-(l*RoundBits) prefix under a fresh seed,
// perturbed by GRR over [0, d'). Because local hashing lets the server
// evaluate H_seed on ANY candidate after the fact, the BFS runs
// entirely server-side with no further user interaction — impossible
// for the unary-encoding methods, whose reports fix the candidate set
// at encoding time (the paper's closing observation in §VII-C).

// NIConfig parameterizes the non-interactive protocol.
type NIConfig struct {
	// Bits, RoundBits, K as in Config.
	Bits      int
	RoundBits int
	K         int
	// DPrime is the hashed-domain size of each level's report.
	DPrime int
	// EpsLocalPerLevel is the LDP budget each level's report spends;
	// a user's total local disclosure is Levels() * EpsLocalPerLevel
	// by basic composition (each level reports a correlated prefix).
	EpsLocalPerLevel float64
}

// Levels returns the number of per-user reports.
func (cfg NIConfig) Levels() int { return cfg.Bits / cfg.RoundBits }

func (cfg NIConfig) validate() error {
	switch {
	case cfg.Bits < 8 || cfg.Bits > 64:
		return errors.New("treehist: Bits must be in [8, 64]")
	case cfg.RoundBits < 1 || cfg.RoundBits > 16:
		return errors.New("treehist: RoundBits must be in [1, 16]")
	case cfg.Bits%cfg.RoundBits != 0:
		return errors.New("treehist: RoundBits must divide Bits")
	case cfg.K < 1:
		return errors.New("treehist: K must be >= 1")
	case cfg.DPrime < 2:
		return errors.New("treehist: DPrime must be >= 2")
	case cfg.EpsLocalPerLevel <= 0:
		return errors.New("treehist: EpsLocalPerLevel must be > 0")
	}
	return nil
}

// NIReport is one user's complete non-interactive submission: one
// (seed, perturbed hash) pair per tree level.
type NIReport struct {
	Seeds  []uint32
	Values []uint8
}

// prefixKey serializes (level, prefix) for hashing.
func prefixKey(level int, prefix uint64) []byte {
	var buf [9]byte
	buf[0] = byte(level)
	binary.LittleEndian.PutUint64(buf[1:], prefix)
	return buf[:]
}

// EncodeNI produces one user's non-interactive report for value v.
func EncodeNI(v uint64, cfg NIConfig, r *rng.Rand) NIReport {
	levels := cfg.Levels()
	fam := hash.NewFamily(cfg.DPrime)
	p := math.Exp(cfg.EpsLocalPerLevel) /
		(math.Exp(cfg.EpsLocalPerLevel) + float64(cfg.DPrime) - 1)
	rep := NIReport{
		Seeds:  make([]uint32, levels),
		Values: make([]uint8, levels),
	}
	for l := 0; l < levels; l++ {
		prefixBits := (l + 1) * cfg.RoundBits
		prefix := v >> uint(cfg.Bits-prefixBits)
		seed := uint32(r.Uint64())
		hv := fam.HashBytes(uint64(seed), prefixKey(l, prefix))
		y := hv
		if !r.Bernoulli(p) {
			y = r.Intn(cfg.DPrime - 1)
			if y >= hv {
				y++
			}
		}
		rep.Seeds[l] = seed
		rep.Values[l] = uint8(y)
	}
	return rep
}

// CollectNI encodes every user's value (the client side of the
// protocol, run before the server knows anything).
func CollectNI(values []uint64, cfg NIConfig, r *rng.Rand) ([]NIReport, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.DPrime > 256 {
		return nil, errors.New("treehist: DPrime must fit uint8 reports")
	}
	reports := make([]NIReport, len(values))
	for i, v := range values {
		reports[i] = EncodeNI(v, cfg, r)
	}
	return reports, nil
}

// RunNI executes the server-side BFS over pre-collected reports —
// no user interaction. At each level it estimates the frequency of
// every candidate prefix from that level's reports (Equation (3)) and
// keeps the top K.
func RunNI(reports []NIReport, cfg NIConfig) ([]uint64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(reports) == 0 {
		return nil, errors.New("treehist: no reports")
	}
	levels := cfg.Levels()
	for i, rep := range reports {
		if len(rep.Seeds) != levels || len(rep.Values) != levels {
			return nil, errors.New("treehist: malformed report")
		}
		_ = i
	}
	fam := hash.NewFamily(cfg.DPrime)
	p := math.Exp(cfg.EpsLocalPerLevel) /
		(math.Exp(cfg.EpsLocalPerLevel) + float64(cfg.DPrime) - 1)
	q := 1 / float64(cfg.DPrime)
	n := len(reports)
	branch := 1 << uint(cfg.RoundBits)

	frontier := []uint64{0}
	for l := 0; l < levels; l++ {
		candidates := make([]uint64, 0, len(frontier)*branch)
		for _, f := range frontier {
			base := f << uint(cfg.RoundBits)
			for b := 0; b < branch; b++ {
				candidates = append(candidates, base|uint64(b))
			}
		}
		// Support counts of every candidate against level-l reports.
		counts := make([]int, len(candidates))
		for _, rep := range reports {
			seed := uint64(rep.Seeds[l])
			y := int(rep.Values[l])
			for ci, cand := range candidates {
				if fam.HashBytes(seed, prefixKey(l, cand)) == y {
					counts[ci]++
				}
			}
		}
		est := ldp.CalibrateCounts(counts, n, p, q)
		top := ldp.TopK(est, cfg.K)
		next := make([]uint64, 0, len(top))
		for _, idx := range top {
			next = append(next, candidates[idx])
		}
		frontier = next
	}
	return frontier, nil
}
