package stattest

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
)

// fakeTB records failures instead of stopping the test, so the harness
// can be tested on estimators that are supposed to fail the bound.
type fakeTB struct {
	failed bool
	msg    string
	logs   []string
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Logf(format string, args ...any) {
	f.logs = append(f.logs, fmt.Sprintf(format, args...))
}
func (f *fakeTB) Fatalf(format string, args ...any) {
	f.failed = true
	if f.msg == "" {
		f.msg = fmt.Sprintf(format, args...)
	}
	// A real Fatalf never returns; the fake must, so callers under test
	// keep going. Checks are written so that a recorded failure is
	// terminal for the assertion being made, which is all the harness
	// tests need.
}

// inProcessTrial is the plain in-process pipeline: randomize with the
// trial seed, aggregate, estimate. The reference estimator every
// harness self-test builds on.
func inProcessTrial(fo ldp.FrequencyOracle, values []int) Trial {
	return func(seed uint64) ([]float64, error) {
		reports := ldp.RandomizeParallel(fo, values, seed, 1)
		agg := fo.NewAggregator()
		for _, rep := range reports {
			agg.Add(rep)
		}
		return agg.Estimates(), nil
	}
}

func zipfValues(n, d int, seed uint64) []int {
	r := rng.New(seed)
	values := make([]int, n)
	for i := range values {
		values[i] = r.Intn(d/2) * r.Intn(2) // skewed toward 0 and even values
	}
	return values
}

func TestCheckMSEAcceptsHonestEstimator(t *testing.T) {
	const n, d = 4000, 32
	values := zipfValues(n, d, 1)
	truth := ldp.TrueFrequencies(values, d)
	for _, fo := range []ldp.FrequencyOracle{
		ldp.NewGRR(d, 2),
		ldp.NewSOLH(d, 16, 3),
		ldp.NewOUE(d, 2),
	} {
		res := CheckMSE(t, fo, truth, n, 4, 100, 3, inProcessTrial(fo, values))
		if res.Ratio <= 0 {
			t.Fatalf("%s: nonsensical ratio %v", fo.Name(), res.Ratio)
		}
	}
}

func TestCheckMSERejectsBrokenEstimator(t *testing.T) {
	const n, d = 2000, 16
	values := zipfValues(n, d, 2)
	truth := ldp.TrueFrequencies(values, d)
	fo := ldp.NewGRR(d, 2)

	// A calibration bug: estimates scaled 3x. MSE explodes past k*Var.
	var tb fakeTB
	CheckMSE(&tb, fo, truth, n, 3, 7, 3, func(seed uint64) ([]float64, error) {
		est, err := inProcessTrial(fo, values)(seed)
		for v := range est {
			est[v] *= 3
		}
		return est, err
	})
	if !tb.failed {
		t.Fatal("mis-scaled estimator passed the MSE bound")
	}
	if !strings.Contains(tb.msg, "broken or mis-calibrated") {
		t.Fatalf("wrong failure: %s", tb.msg)
	}
}

func TestCheckMSERejectsNoiselessEstimator(t *testing.T) {
	// An estimator that returns the exact truth is *below* the variance
	// floor: in a DP pipeline that means the randomizer never ran.
	const n, d = 2000, 16
	values := zipfValues(n, d, 3)
	truth := ldp.TrueFrequencies(values, d)
	var tb fakeTB
	CheckMSE(&tb, ldp.NewGRR(d, 1), truth, n, 3, 9, 3, func(seed uint64) ([]float64, error) {
		out := make([]float64, d)
		copy(out, truth)
		return out, nil
	})
	if !tb.failed {
		t.Fatal("noiseless estimator passed the variance floor")
	}
	if !strings.Contains(tb.msg, "implausibly accurate") {
		t.Fatalf("wrong failure: %s", tb.msg)
	}
}

func TestCheckMSERejectsTrialErrorsAndBadShapes(t *testing.T) {
	truth := make([]float64, 8)
	fo := ldp.NewGRR(8, 1)

	var tb fakeTB
	CheckMSE(&tb, fo, truth, 100, 2, 1, 3, func(uint64) ([]float64, error) {
		return nil, fmt.Errorf("pipeline exploded")
	})
	if !tb.failed || !strings.Contains(tb.msg, "pipeline exploded") {
		t.Fatalf("trial error not surfaced: %q", tb.msg)
	}

	tb = fakeTB{}
	CheckMSE(&tb, fo, truth, 100, 1, 1, 3, func(uint64) ([]float64, error) {
		return make([]float64, 3), nil // wrong domain size
	})
	if !tb.failed {
		t.Fatal("wrong-length estimate accepted")
	}

	tb = fakeTB{}
	CheckMSE(&tb, fo, make([]float64, 5), 100, 1, 1, 3, nil)
	if !tb.failed {
		t.Fatal("truth/domain mismatch accepted")
	}
}

func TestCheckUnbiasedCatchesSystematicBias(t *testing.T) {
	const n, d = 4000, 16
	values := zipfValues(n, d, 4)
	truth := ldp.TrueFrequencies(values, d)
	fo := ldp.NewGRR(d, 2)

	// The honest estimator is unbiased.
	CheckUnbiased(t, fo, truth, n, 6, 50, 6, inProcessTrial(fo, values))

	// A constant additive bias well inside the MSE band must still fail.
	bias := 4 * 6 * math.Sqrt(fo.Variance(n)/6)
	var tb fakeTB
	CheckUnbiased(&tb, fo, truth, n, 6, 50, 6, func(seed uint64) ([]float64, error) {
		est, err := inProcessTrial(fo, values)(seed)
		for v := range est {
			est[v] += bias
		}
		return est, err
	})
	if !tb.failed {
		t.Fatal("biased estimator passed CheckUnbiased")
	}
}

func TestMSEPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	MSE(make([]float64, 3), make([]float64, 4))
}
