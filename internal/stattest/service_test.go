package stattest_test

// The tier-1 statistical acceptance tests of the streaming ingestion
// tier: every oracle with a service codec — GRR, SOLH, OUE, Hadamard,
// RAP, RAP_R, and AUE — runs end-to-end — randomize, encrypt, frame
// over net.Pipe connections, batch-shuffle, decrypt, aggregate — and
// the drained histogram's error must sit inside the stattest band
// around each oracle's analytic variance, with a matching
// unbiasedness check. A pipeline that drops a batch, double-counts a
// connection, corrupts a ciphertext, or skips the randomizer cannot
// pass.

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
	"shuffledp/internal/service"
	"shuffledp/internal/stattest"
)

// serviceTrial returns a stattest.Trial that pushes the values through
// a fresh streaming service on every call: reports randomized from the
// trial seed are split round-robin across `clients` concurrent
// connections and the drained estimate is returned.
func serviceTrial(fo ldp.FrequencyOracle, values []int, clients, batch int) stattest.Trial {
	return func(seed uint64) ([]float64, error) {
		key, err := ecies.GenerateKey()
		if err != nil {
			return nil, err
		}
		svc, err := service.New(service.Config{
			FO:          fo,
			Key:         key,
			BatchSize:   batch,
			ShuffleSeed: seed + 7777,
		})
		if err != nil {
			return nil, err
		}
		defer svc.Close()

		reports := ldp.RandomizeParallel(fo, values, seed, 0)
		errc := make(chan error, clients)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			clientSide, serverSide := net.Pipe()
			if err := svc.Ingest(serverSide); err != nil {
				return nil, err
			}
			cl, err := service.NewClient(fo, key.Public(), nil, clientSide)
			if err != nil {
				return nil, err
			}
			wg.Add(1)
			go func(c int, cl *service.Client) {
				defer wg.Done()
				// Close on every exit path so an error cannot leave a
				// reader open for Drain to wait on forever.
				defer clientSide.Close()
				for i := c; i < len(reports); i += clients {
					if err := cl.SendReport(reports[i]); err != nil {
						errc <- fmt.Errorf("client %d: %w", c, err)
						return
					}
				}
				errc <- cl.Close()
			}(c, cl)
		}
		snap, err := svc.Drain()
		if err != nil {
			return nil, err
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			if err != nil {
				return nil, err
			}
		}
		if snap.Reports != len(values) {
			return nil, fmt.Errorf("service aggregated %d reports, want %d", snap.Reports, len(values))
		}
		return snap.Estimates, nil
	}
}

// skewedValues draws a reproducible, head-heavy value distribution (the
// shape every frequency-estimation figure in the paper uses).
func skewedValues(n, d int, seed uint64) []int {
	r := rng.New(seed)
	values := make([]int, n)
	for i := range values {
		v := r.Intn(d)
		if r.Intn(3) > 0 { // 2/3 of the mass concentrated on the head
			v = r.Intn(1 + d/8)
		}
		values[i] = v
	}
	return values
}

func TestServiceStatisticalAcceptanceGRR(t *testing.T) {
	const n, d, trials = 3000, 16, 4
	values := skewedValues(n, d, 11)
	truth := ldp.TrueFrequencies(values, d)
	fo := ldp.NewGRR(d, 2)
	stattest.CheckMSE(t, fo, truth, n, trials, 500, 3, serviceTrial(fo, values, 4, 128))
}

func TestServiceStatisticalAcceptanceSOLH(t *testing.T) {
	const n, d, trials = 3000, 32, 4
	values := skewedValues(n, d, 12)
	truth := ldp.TrueFrequencies(values, d)
	fo := ldp.NewSOLH(d, 16, 3)
	stattest.CheckMSE(t, fo, truth, n, trials, 600, 3, serviceTrial(fo, values, 4, 128))
}

func TestServiceStatisticalAcceptanceOUE(t *testing.T) {
	const n, d, trials = 2000, 16, 4
	values := skewedValues(n, d, 13)
	truth := ldp.TrueFrequencies(values, d)
	fo := ldp.NewOUE(d, 2)
	stattest.CheckMSE(t, fo, truth, n, trials, 700, 3, serviceTrial(fo, values, 4, 128))
}

// Hadamard rides the service's word codec (row index + sign bit); the
// aggregation path is the FWHT, completely different from the count
// calibration the other word oracles share.
func TestServiceStatisticalAcceptanceHadamard(t *testing.T) {
	const n, d, trials = 3000, 16, 4
	values := skewedValues(n, d, 15)
	truth := ldp.TrueFrequencies(values, d)
	fo := ldp.NewHadamard(d, 2)
	stattest.CheckMSE(t, fo, truth, n, trials, 900, 3, serviceTrial(fo, values, 4, 128))
}

// RAP and RAP_R stream through the packed-bitmap codec (whole
// perturbed unary vectors, not 8-byte words).
func TestServiceStatisticalAcceptanceRAP(t *testing.T) {
	const n, d, trials = 2000, 16, 4
	values := skewedValues(n, d, 16)
	truth := ldp.TrueFrequencies(values, d)
	fo := ldp.NewRAP(d, 2)
	stattest.CheckMSE(t, fo, truth, n, trials, 1000, 3, serviceTrial(fo, values, 4, 128))
}

func TestServiceStatisticalAcceptanceRAPR(t *testing.T) {
	const n, d, trials = 2000, 16, 4
	values := skewedValues(n, d, 17)
	truth := ldp.TrueFrequencies(values, d)
	fo := ldp.NewRAPR(d, 1)
	stattest.CheckMSE(t, fo, truth, n, trials, 1100, 3, serviceTrial(fo, values, 4, 128))
}

// AUE streams whole count vectors through the byte-per-location
// codec; its estimates subtract the expected blanket mass, so a codec
// that dropped or duplicated increments would blow the band.
func TestServiceStatisticalAcceptanceAUE(t *testing.T) {
	const n, d, trials = 2000, 16, 4
	values := skewedValues(n, d, 18)
	truth := ldp.TrueFrequencies(values, d)
	fo := ldp.NewAUE(d, 3, 1e-9, n)
	stattest.CheckMSE(t, fo, truth, n, trials, 1200, 3, serviceTrial(fo, values, 4, 128))
}

// The streaming pipeline must also be unbiased, not just noisy at the
// right magnitude (a wrong calibration constant could hide inside the
// MSE band at small n).
func TestServiceUnbiasedGRR(t *testing.T) {
	const n, d, trials = 2000, 16, 5
	values := skewedValues(n, d, 14)
	truth := ldp.TrueFrequencies(values, d)
	fo := ldp.NewGRR(d, 2)
	stattest.CheckUnbiased(t, fo, truth, n, trials, 800, 6, serviceTrial(fo, values, 3, 100))
}

// Unbiasedness for the newly covered oracles, same harness.
func TestServiceUnbiasedHadamard(t *testing.T) {
	const n, d, trials = 1500, 16, 5
	values := skewedValues(n, d, 19)
	truth := ldp.TrueFrequencies(values, d)
	fo := ldp.NewHadamard(d, 2)
	stattest.CheckUnbiased(t, fo, truth, n, trials, 1300, 6, serviceTrial(fo, values, 3, 100))
}

func TestServiceUnbiasedRAP(t *testing.T) {
	const n, d, trials = 1500, 16, 5
	values := skewedValues(n, d, 20)
	truth := ldp.TrueFrequencies(values, d)
	fo := ldp.NewRAP(d, 2)
	stattest.CheckUnbiased(t, fo, truth, n, trials, 1400, 6, serviceTrial(fo, values, 3, 100))
}

func TestServiceUnbiasedRAPR(t *testing.T) {
	const n, d, trials = 1500, 16, 5
	values := skewedValues(n, d, 21)
	truth := ldp.TrueFrequencies(values, d)
	fo := ldp.NewRAPR(d, 1)
	stattest.CheckUnbiased(t, fo, truth, n, trials, 1500, 6, serviceTrial(fo, values, 3, 100))
}

func TestServiceUnbiasedAUE(t *testing.T) {
	const n, d, trials = 1500, 16, 5
	values := skewedValues(n, d, 22)
	truth := ldp.TrueFrequencies(values, d)
	fo := ldp.NewAUE(d, 3, 1e-9, n)
	stattest.CheckUnbiased(t, fo, truth, n, trials, 1600, 6, serviceTrial(fo, values, 3, 100))
}
