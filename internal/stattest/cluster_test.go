package stattest_test

// Statistical acceptance of the SHARDED cluster deployment: the same
// stattest band the streaming service passes, applied to a 2-shard
// PEOS cluster round over loopback TCP on the clickstream workload
// (the Zipf dataset of examples/clickstream_peos). The conformance
// suite in internal/cluster proves the sharded tier bit-identical to
// the single-analyzer protocol; this test closes the remaining gap —
// that the protocol those shards jointly compute is itself a correctly
// calibrated, unbiased estimator. A partition that dropped a window,
// double-counted a boundary location, or mis-merged shard counts
// would blow the MSE band by orders of magnitude.

import (
	"net"
	"sync"
	"testing"
	"time"

	"shuffledp"
	"shuffledp/internal/ahe"
	"shuffledp/internal/cluster"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
	"shuffledp/internal/stattest"
)

var (
	clusterKeyOnce sync.Once
	clusterKey     *ahe.DGKPrivateKey
	clusterKeyErr  error
)

// clusterStatKey generates one DGK-512 pair for every trial of this
// file. The estimates do not depend on the key (decryption is exact),
// so sharing it keeps the trials deterministic-in-seed while paying
// the keygen cost once.
func clusterStatKey(t *testing.T) *ahe.DGKPrivateKey {
	t.Helper()
	clusterKeyOnce.Do(func() {
		clusterKey, clusterKeyErr = ahe.GenerateDGK(512, 64)
	})
	if clusterKeyErr != nil {
		t.Fatal(clusterKeyErr)
	}
	return clusterKey
}

// clusterTrial returns a stattest.Trial that stands up a fresh
// loopback cluster — r shuffler nodes, the analyzer tier sharded
// `analyzers` ways by the even domain partition — runs one full
// collection round of the values, and returns the coordinator's served
// estimates. All client and shuffler randomness derives from the trial
// seed, so each estimate is a pure function of it.
func clusterTrial(fo ldp.FrequencyOracle, priv *ahe.DGKPrivateKey, values []int, r, nr, analyzers int) stattest.Trial {
	return func(seed uint64) (est []float64, err error) {
		topo := cluster.Topology{
			Shufflers: make([]string, r),
			Analyzers: make([]string, analyzers),
		}
		listen := func() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }
		lns := make([]net.Listener, r)
		for j := range lns {
			if lns[j], err = listen(); err != nil {
				return nil, err
			}
			topo.Shufflers[j] = lns[j].Addr().String()
		}
		alns := make([]net.Listener, analyzers)
		for s := range alns {
			if alns[s], err = listen(); err != nil {
				return nil, err
			}
			topo.Analyzers[s] = alns[s].Addr().String()
		}
		nodes := make([]*cluster.Analyzer, analyzers)
		for s := range nodes {
			nodes[s], err = cluster.NewAnalyzer(cluster.AnalyzerConfig{
				Topology:       topo,
				Listener:       alns[s],
				FO:             fo,
				NR:             nr,
				Priv:           priv,
				Shard:          s,
				CollectTimeout: 30 * time.Second,
			})
			if err != nil {
				return nil, err
			}
			defer nodes[s].Close()
		}
		for j := 0; j < r; j++ {
			sh, err := cluster.NewShuffler(cluster.ShufflerConfig{
				Index:       j,
				Topology:    topo,
				Listener:    lns[j],
				NR:          nr,
				Pub:         ahe.PublicKey(priv),
				Source:      rng.Substream(seed, uint64(1000+j)),
				SealTimeout: 30 * time.Second,
			})
			if err != nil {
				return nil, err
			}
			defer sh.Close()
			go sh.Run()
		}
		cl, err := cluster.DialClient(topo, fo, ahe.PublicKey(priv), rng.Substream(seed, 1), 0)
		if err != nil {
			return nil, err
		}
		defer cl.Close()
		if err := cl.SendValues(0, values, rng.Substream(seed, 2)); err != nil {
			return nil, err
		}
		if err := cl.Flush(); err != nil {
			return nil, err
		}
		col, err := nodes[0].Collect(len(values))
		if err != nil {
			return nil, err
		}
		return col.Estimates, nil
	}
}

// TestClusterTwoShardStatisticalAcceptance is the satellite acceptance
// gate of the sharded analyzer tier: the clickstream workload (same
// Zipf shape and seed as examples/clickstream_peos), GRR, r=2
// shufflers, the analyzer tier split across 2 shards. The served
// estimates must land in the standard MSE band around the analytic
// LDP variance and show no systematic bias.
func TestClusterTwoShardStatisticalAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("real cryptography over TCP; skipped in -short")
	}
	const (
		n, d      = 1200, 16
		r, nr     = 2, 12
		analyzers = 2
		trials    = 3
	)
	values := shuffledp.SyntheticDataset(n, d, 1.4, 11)
	truth := ldp.TrueFrequencies(values, d)
	fo := ldp.NewGRR(d, 2)
	priv := clusterStatKey(t)
	stattest.CheckMSE(t, fo, truth, n, trials, 2100, 3,
		clusterTrial(fo, priv, values, r, nr, analyzers))
	stattest.CheckUnbiased(t, fo, truth, n, trials, 2200, 6,
		clusterTrial(fo, priv, values, r, nr, analyzers))
}
