// Package stattest is the statistical acceptance-test harness for the
// repository's estimators: it turns "the histogram looks right" into a
// checkable bound by comparing the empirical error of an estimator
// against the oracle's analytic LDP variance (Equation (4) and friends,
// exposed as ldp.FrequencyOracle.Variance).
//
// The core check runs a fixed number of fixed-seed trials of an
// arbitrary estimator (typically a full pipeline: randomize, encrypt,
// stream through internal/service, drain) and requires the mean squared
// error against the true frequencies to sit inside a k-factor band
// around the analytic variance:
//
//	Var(n)/k  <=  mean MSE  <=  k * Var(n)
//
// The upper bound catches broken estimators (wrong calibration, lost or
// duplicated reports, a decrypt path that corrupts values); the lower
// bound catches estimators that are "too good" — a pipeline that
// accidentally skips randomization would sail under any upper bound
// while silently destroying the privacy guarantee. Because every trial
// is seeded, the check is deterministic: it either always passes or
// always fails for a given build, so it is safe in tier-1 CI.
package stattest

import (
	"fmt"
	"math"

	"shuffledp/internal/ldp"
)

// TB is the subset of testing.TB the harness needs. Taking the
// interface (rather than *testing.T) keeps the harness usable from
// tests, benchmarks, and fuzz targets alike, and lets the harness test
// itself with a recording fake.
type TB interface {
	Helper()
	Logf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Trial produces one independent estimate of the true frequencies.
// Each trial receives its own seed; the estimate must be a pure
// function of it (that is what makes the whole check deterministic).
type Trial func(seed uint64) ([]float64, error)

// Result summarizes a CheckMSE run, for logging and for tests that
// want to assert on the ratio themselves.
type Result struct {
	// Trials is how many estimates were averaged.
	Trials int
	// MeanMSE is the empirical mean squared error against truth,
	// averaged over the domain and the trials.
	MeanMSE float64
	// AnalyticVar is the oracle's predicted per-value estimator
	// variance at this n.
	AnalyticVar float64
	// Ratio is MeanMSE / AnalyticVar; CheckMSE requires it in
	// [1/k, k].
	Ratio float64
}

// MSE returns the mean squared error between two frequency vectors.
func MSE(truth, est []float64) float64 {
	if len(truth) != len(est) {
		panic(fmt.Sprintf("stattest: MSE over %d-value truth and %d-value estimate", len(truth), len(est)))
	}
	return ldp.MSE(truth, est)
}

// CheckMSE runs trials fixed-seed estimates (trial t uses baseSeed+t),
// averages their MSE against truth, and fails tb unless the mean lands
// within a factor k of the analytic variance fo.Variance(n). n is the
// number of reports each trial aggregates (the n the variance formula
// is evaluated at). The passing Result is returned and logged so test
// output records how much slack the bound had.
//
// Choosing k: the analytic formulas are the frequency-independent
// variance term, so the true expected MSE exceeds Variance(n) slightly
// (by O(f_v/n) terms) and the empirical mean fluctuates with
// 1/sqrt(trials * d). k = 3 comfortably brackets both effects for
// d >= 16 and trials >= 3 while still failing hard on real defects,
// which are never within 3x (a lost batch of reports or a mis-scaled
// calibration moves the MSE by orders of magnitude).
func CheckMSE(tb TB, fo ldp.FrequencyOracle, truth []float64, n, trials int, baseSeed uint64, k float64, run Trial) Result {
	tb.Helper()
	if trials < 1 {
		tb.Fatalf("stattest: CheckMSE needs at least 1 trial")
		return Result{}
	}
	if k <= 1 {
		tb.Fatalf("stattest: CheckMSE tolerance factor k must be > 1, got %v", k)
		return Result{}
	}
	if len(truth) != fo.Domain() {
		tb.Fatalf("stattest: truth has %d values, oracle domain is %d", len(truth), fo.Domain())
		return Result{}
	}
	variance := fo.Variance(n)
	if !(variance > 0) || math.IsInf(variance, 0) {
		tb.Fatalf("stattest: oracle %s has non-positive analytic variance %v at n=%d", fo.Name(), variance, n)
		return Result{}
	}
	sum := 0.0
	for t := 0; t < trials; t++ {
		est, err := run(baseSeed + uint64(t))
		// A TB whose Fatalf returns (the harness's own tests use one)
		// must not fall through to math over a bad estimate, hence the
		// explicit returns.
		if err != nil {
			tb.Fatalf("stattest: trial %d: %v", t, err)
			return Result{}
		}
		if len(est) != len(truth) {
			tb.Fatalf("stattest: trial %d returned %d estimates, want %d", t, len(est), len(truth))
			return Result{}
		}
		for _, e := range est {
			if math.IsNaN(e) || math.IsInf(e, 0) {
				tb.Fatalf("stattest: trial %d returned a non-finite estimate", t)
				return Result{}
			}
		}
		sum += MSE(truth, est)
	}
	res := Result{
		Trials:      trials,
		MeanMSE:     sum / float64(trials),
		AnalyticVar: variance,
	}
	res.Ratio = res.MeanMSE / variance
	if res.Ratio > k {
		tb.Fatalf("stattest: %s mean MSE %.3e is %.2fx the analytic variance %.3e (limit %vx): estimator is broken or mis-calibrated",
			fo.Name(), res.MeanMSE, res.Ratio, variance, k)
		return res
	}
	if res.Ratio < 1/k {
		tb.Fatalf("stattest: %s mean MSE %.3e is only %.3fx the analytic variance %.3e (floor %.3fx): estimate is implausibly accurate — is the randomizer actually running?",
			fo.Name(), res.MeanMSE, res.Ratio, variance, 1/k)
		return res
	}
	tb.Logf("stattest: %s mean MSE %.3e over %d trials, analytic variance %.3e, ratio %.2f (allowed [%.2f, %.2f])",
		fo.Name(), res.MeanMSE, trials, variance, res.Ratio, 1/k, k)
	return res
}

// CheckUnbiased averages the trials' estimates value-by-value and fails
// tb if any mean deviates from the truth by more than k standard
// errors of the trial mean (sqrt(Var(n)/trials)). It is the complement
// of CheckMSE: CheckMSE bounds the noise magnitude, CheckUnbiased
// catches systematic bias that hides inside an acceptable MSE (for
// example a calibration using a slightly wrong p).
func CheckUnbiased(tb TB, fo ldp.FrequencyOracle, truth []float64, n, trials int, baseSeed uint64, k float64, run Trial) {
	tb.Helper()
	if trials < 2 {
		tb.Fatalf("stattest: CheckUnbiased needs at least 2 trials")
		return
	}
	if len(truth) != fo.Domain() {
		tb.Fatalf("stattest: truth has %d values, oracle domain is %d", len(truth), fo.Domain())
		return
	}
	mean := make([]float64, len(truth))
	for t := 0; t < trials; t++ {
		est, err := run(baseSeed + uint64(t))
		if err != nil {
			tb.Fatalf("stattest: trial %d: %v", t, err)
			return
		}
		if len(est) != len(truth) {
			tb.Fatalf("stattest: trial %d returned %d estimates, want %d", t, len(est), len(truth))
			return
		}
		for v, e := range est {
			mean[v] += e / float64(trials)
		}
	}
	tol := k * math.Sqrt(fo.Variance(n)/float64(trials))
	worstV, worstDev := -1, 0.0
	for v := range mean {
		if dev := math.Abs(mean[v] - truth[v]); dev > worstDev {
			worstV, worstDev = v, dev
		}
	}
	if worstDev > tol {
		tb.Fatalf("stattest: %s mean estimate of value %d is %.4f, truth %.4f: bias %.2e exceeds %v standard errors (%.2e)",
			fo.Name(), worstV, mean[worstV], truth[worstV], worstDev, k, tol)
	}
	tb.Logf("stattest: %s worst bias %.2e over %d trials (allowed %.2e)", fo.Name(), worstDev, trials, tol)
}
