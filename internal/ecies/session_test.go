package ecies

import (
	"bytes"
	"errors"
	"testing"
)

func testSessionPair(t testing.TB) (*Session, *Session) {
	t.Helper()
	priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	client, hello, err := NewClientSession(priv.Public())
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServerSession(priv, hello)
	if err != nil {
		t.Fatal(err)
	}
	return client, server
}

func TestSessionRoundTrip(t *testing.T) {
	client, server := testSessionPair(t)
	for i := 0; i < 10; i++ {
		msg := bytes.Repeat([]byte{byte(i)}, 8+i*13)
		frame, err := client.Seal(nil, msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(frame) != len(msg)+SessionOverhead {
			t.Fatalf("frame %d bytes, want %d", len(frame), len(msg)+SessionOverhead)
		}
		pt, err := server.Open(nil, frame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(pt, msg) {
			t.Fatalf("frame %d: plaintext differs", i)
		}
	}
}

func TestSessionHelloValidation(t *testing.T) {
	priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	_, hello, err := NewClientSession(priv.Public())
	if err != nil {
		t.Fatal(err)
	}
	// Truncated hello.
	if _, err := NewServerSession(priv, hello[:HelloSize-1]); err == nil {
		t.Error("truncated hello accepted")
	}
	// Oversized hello.
	if _, err := NewServerSession(priv, append(append([]byte(nil), hello...), 0)); err == nil {
		t.Error("oversized hello accepted")
	}
	// Wrong version byte.
	bad := append([]byte(nil), hello...)
	bad[0] = SessionVersion + 1
	if _, err := NewServerSession(priv, bad); !errors.Is(err, ErrSessionVersion) {
		t.Errorf("wrong version: got %v, want ErrSessionVersion", err)
	}
	// Corrupt ephemeral point (not on the curve).
	bad = append([]byte(nil), hello...)
	bad[2] ^= 0xff
	if _, err := NewServerSession(priv, bad); err == nil {
		t.Error("corrupt ephemeral point accepted")
	}
}

// A frame replayed, reordered, or skipped must be refused: the
// explicit counter pins every frame to one sequence position.
func TestSessionReplayAndReorder(t *testing.T) {
	client, server := testSessionPair(t)
	f0, err := client.Seal(nil, []byte("frame zero"))
	if err != nil {
		t.Fatal(err)
	}
	f1, err := client.Seal(nil, []byte("frame one"))
	if err != nil {
		t.Fatal(err)
	}
	// Reorder: frame 1 before frame 0.
	if _, err := server.Open(nil, f1); !errors.Is(err, ErrSessionReplay) {
		t.Errorf("reordered frame: got %v, want ErrSessionReplay", err)
	}
	if _, err := server.Open(nil, f0); err != nil {
		t.Fatal(err)
	}
	// Replay: frame 0 again.
	if _, err := server.Open(nil, f0); !errors.Is(err, ErrSessionReplay) {
		t.Errorf("replayed frame: got %v, want ErrSessionReplay", err)
	}
	if _, err := server.Open(nil, f1); err != nil {
		t.Fatal(err)
	}
}

func TestSessionTamperedFrame(t *testing.T) {
	client, server := testSessionPair(t)
	frame, err := client.Seal(nil, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{8, len(frame) - 1} { // ciphertext byte, tag byte
		bad := append([]byte(nil), frame...)
		bad[i] ^= 1
		if _, err := server.Open(nil, bad); !errors.Is(err, ErrSessionAuth) {
			t.Errorf("tampered byte %d: got %v, want ErrSessionAuth", i, err)
		}
	}
	// Truncated frame.
	if _, err := server.Open(nil, frame[:SessionOverhead-1]); !errors.Is(err, ErrSessionAuth) {
		t.Errorf("truncated frame: got %v, want ErrSessionAuth", err)
	}
	// The failed opens must not have advanced the counter.
	if _, err := server.Open(nil, frame); err != nil {
		t.Fatalf("valid frame after tampered attempts: %v", err)
	}
}

// Two sessions to the same server key must not decrypt each other's
// frames: the key is bound to the client's ephemeral point.
func TestSessionKeysIndependent(t *testing.T) {
	priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	clientA, _, err := NewClientSession(priv.Public())
	if err != nil {
		t.Fatal(err)
	}
	_, helloB, err := NewClientSession(priv.Public())
	if err != nil {
		t.Fatal(err)
	}
	serverB, err := NewServerSession(priv, helloB)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := clientA.Seal(nil, []byte("cross-session"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := serverB.Open(nil, frame); !errors.Is(err, ErrSessionAuth) {
		t.Errorf("cross-session frame: got %v, want ErrSessionAuth", err)
	}
}

// The per-report session hot path must not allocate: Seal and Open
// into capacity-sufficient buffers are zero-allocation, which is what
// lets the gateway amortize all crypto cost into the handshake.
func TestSessionNoAllocs(t *testing.T) {
	client, server := testSessionPair(t)
	msg := make([]byte, 512)
	sealBuf := make([]byte, 0, len(msg)+SessionOverhead)
	openBuf := make([]byte, 0, len(msg))
	allocs := testing.AllocsPerRun(200, func() {
		frame, err := client.Seal(sealBuf[:0], msg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := server.Open(openBuf[:0], frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Seal+Open allocated %.1f times per frame, want 0", allocs)
	}
}

func TestStorageSealerRoundTrip(t *testing.T) {
	priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	sealer, err := NewStorageSealer(priv)
	if err != nil {
		t.Fatal(err)
	}
	// A second sealer from the same key (a recovered process) must
	// open records the first one sealed.
	reopened, err := NewStorageSealer(priv)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		msg := bytes.Repeat([]byte{byte(7 + i)}, 12+i)
		rec := sealer.Seal(nil, msg)
		pt, err := reopened.Open(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pt, msg) {
			t.Fatal("storage record plaintext differs")
		}
		// Tampering is detected.
		rec[len(rec)-1] ^= 1
		if _, err := reopened.Open(nil, rec); err == nil {
			t.Fatal("tampered storage record accepted")
		}
	}
	// A different key must not open the records.
	other, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := NewStorageSealer(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wrong.Open(nil, sealer.Seal(nil, []byte("secret"))); err == nil {
		t.Fatal("storage record opened under the wrong key")
	}
}

// EncryptTo/DecryptTo append into the caller's buffer and must agree
// with the allocating forms byte-for-byte at the protocol level.
func TestEncryptToDecryptTo(t *testing.T) {
	priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("append-style round trip")
	scratch := make([]byte, 0, len(msg)+Overhead)
	ct, err := EncryptTo(priv.Public(), scratch, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct) != len(msg)+Overhead {
		t.Fatalf("ciphertext %d bytes, want %d", len(ct), len(msg)+Overhead)
	}
	ptBuf := make([]byte, 0, len(msg))
	pt, err := DecryptTo(priv, ptBuf, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatal("plaintext differs")
	}
	// The appended forms must preserve existing dst prefixes.
	prefix := []byte("prefix-")
	ct2, err := EncryptTo(priv.Public(), append([]byte(nil), prefix...), msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(ct2, prefix) {
		t.Fatal("EncryptTo clobbered dst prefix")
	}
	pt2, err := DecryptTo(priv, append([]byte(nil), prefix...), ct2[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt2, append(prefix, msg...)) {
		t.Fatal("DecryptTo did not append to dst")
	}
	// Cross-compatibility with the allocating forms.
	ct3, err := Encrypt(priv.Public(), msg)
	if err != nil {
		t.Fatal(err)
	}
	pt3, err := DecryptTo(priv, nil, ct3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt3, msg) {
		t.Fatal("DecryptTo failed on Encrypt output")
	}
}
