package ecies

import (
	"bytes"
	"testing"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range [][]byte{
		{},
		[]byte("x"),
		[]byte("the quick brown fox"),
		bytes.Repeat([]byte{0xaa}, 4096),
	} {
		ct, err := Encrypt(priv.Public(), msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(ct) != len(msg)+Overhead {
			t.Fatalf("ciphertext size %d, want %d", len(ct), len(msg)+Overhead)
		}
		pt, err := Decrypt(priv, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pt, msg) {
			t.Fatalf("roundtrip mismatch for %d-byte message", len(msg))
		}
	}
}

func TestDecryptWrongKeyFails(t *testing.T) {
	a, _ := GenerateKey()
	b, _ := GenerateKey()
	ct, err := Encrypt(a.Public(), []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(b, ct); err == nil {
		t.Fatal("decryption with the wrong key should fail")
	}
}

func TestTamperDetection(t *testing.T) {
	priv, _ := GenerateKey()
	ct, err := Encrypt(priv.Public(), []byte("integrity matters"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, pubKeySize + 2, len(ct) - 1} {
		bad := append([]byte(nil), ct...)
		bad[pos] ^= 0x01
		if _, err := Decrypt(priv, bad); err == nil {
			t.Fatalf("tampering at byte %d went undetected", pos)
		}
	}
}

func TestDecryptTooShort(t *testing.T) {
	priv, _ := GenerateKey()
	if _, err := Decrypt(priv, make([]byte, Overhead-1)); err == nil {
		t.Fatal("short ciphertext should be rejected")
	}
}

func TestCiphertextsAreProbabilistic(t *testing.T) {
	priv, _ := GenerateKey()
	a, _ := Encrypt(priv.Public(), []byte("same message"))
	b, _ := Encrypt(priv.Public(), []byte("same message"))
	if bytes.Equal(a, b) {
		t.Fatal("two encryptions identical")
	}
}

func TestPublicKeySerialization(t *testing.T) {
	priv, _ := GenerateKey()
	data := priv.Public().Bytes()
	if len(data) != pubKeySize {
		t.Fatalf("public key %d bytes, want %d", len(data), pubKeySize)
	}
	pub, err := ParsePublicKey(data)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Encrypt(pub, []byte("via parsed key"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Decrypt(priv, ct)
	if err != nil || string(pt) != "via parsed key" {
		t.Fatalf("parsed-key roundtrip failed: %v", err)
	}
	if _, err := ParsePublicKey([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage public key accepted")
	}
}

func TestOnionPeelOrder(t *testing.T) {
	const hops = 3
	privs := make([]*PrivateKey, hops)
	pubs := make([]*PublicKey, hops)
	for i := range privs {
		k, err := GenerateKey()
		if err != nil {
			t.Fatal(err)
		}
		privs[i] = k
		pubs[i] = k.Public()
	}
	msg := []byte("through the onion")
	onion, err := OnionEncrypt(pubs, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(onion) != OnionLayerSize(hops, len(msg)) {
		t.Fatalf("onion size %d, want %d", len(onion), OnionLayerSize(hops, len(msg)))
	}
	// Peel in hop order.
	data := onion
	for i := 0; i < hops; i++ {
		data, err = Decrypt(privs[i], data)
		if err != nil {
			t.Fatalf("hop %d failed to peel: %v", i, err)
		}
	}
	if !bytes.Equal(data, msg) {
		t.Fatal("onion roundtrip mismatch")
	}
}

func TestOnionWrongOrderFails(t *testing.T) {
	k1, _ := GenerateKey()
	k2, _ := GenerateKey()
	onion, err := OnionEncrypt([]*PublicKey{k1.Public(), k2.Public()}, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	// Hop 2 cannot peel first.
	if _, err := Decrypt(k2, onion); err == nil {
		t.Fatal("out-of-order peel should fail")
	}
}

func TestOnionNoHops(t *testing.T) {
	if _, err := OnionEncrypt(nil, []byte("m")); err == nil {
		t.Fatal("empty hop list should error")
	}
}
