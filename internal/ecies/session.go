package ecies

// Per-connection sessions: one ECIES-style handshake on connect, then
// symmetric AEAD for every report after it. The streaming service's
// original wire protocol paid a full ECIES (ephemeral P-256 ECDH +
// HKDF) per report — the §VII SS baseline's cost model — which caps a
// gateway at a few thousand reports per second. A session does that
// ECDH exactly once: the client sends an ephemeral-key hello, both
// sides derive a direction-bound AES-GCM key over a transcript that
// pins the protocol version and both public keys, and every batched
// report frame after it costs one AES-GCM seal/open — hardware-speed,
// zero allocations (see TestSessionNoAllocs).
//
// Nonce discipline: the 96-bit GCM nonce is a fixed direction byte
// followed by a monotonic 64-bit frame counter. Both sides count
// frames independently; the receiver insists the explicit counter in
// each frame equals the next expected value, so a replayed, reordered,
// or dropped-and-resent frame fails authentication or the counter
// check rather than being folded twice. A counter can never repeat
// under one key (the session errors at 2^64), and keys are never
// reused across connections (fresh ephemeral per hello).

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// SessionVersion is the handshake version byte carried by the hello.
// A server refuses hellos from a version it does not speak with
// ErrSessionVersion instead of guessing at the key schedule.
const SessionVersion = 1

// HelloSize is the exact length of a session hello: the version byte
// plus the client's uncompressed ephemeral P-256 point.
const HelloSize = 1 + pubKeySize

// SessionOverhead is the ciphertext expansion of one sealed session
// frame: the explicit 8-byte frame counter plus the 16-byte GCM tag.
const SessionOverhead = 8 + gcmTagSize

const (
	gcmNonceSize = 12
	gcmTagSize   = 16
)

// ErrSessionVersion is returned by NewServerSession for a hello whose
// version byte this build does not speak.
var ErrSessionVersion = errors.New("ecies: unsupported session version")

// ErrSessionReplay is returned by Session.Open when a frame carries a
// counter other than the next expected one — a replayed, reordered, or
// dropped frame. The connection is unrecoverable: the sender and
// receiver disagree on the transcript.
var ErrSessionReplay = errors.New("ecies: session frame counter out of sequence")

// ErrSessionAuth is returned by Session.Open when a frame fails AEAD
// authentication (tampered ciphertext, wrong key, or truncation).
var ErrSessionAuth = errors.New("ecies: session frame authentication failed")

// Session is one direction of an established connection: an AES-GCM
// key bound to the handshake transcript plus the monotonic frame
// counters. The client seals frames in send order; the server opens
// them insisting on the same order. A Session is not safe for
// concurrent use — it belongs to one connection's reader or writer.
type Session struct {
	aead cipher.AEAD
	// nextSeal and nextOpen are the monotonic frame counters; each
	// side advances only the one matching its role.
	nextSeal, nextOpen uint64
	// nonce is the scratch nonce buffer (kept on the struct so the
	// zero-alloc hot path never heap-escapes a fresh array).
	nonce [gcmNonceSize]byte
}

// sessionKey runs the handshake key schedule both sides share: the
// ECDH secret is extracted and expanded (HKDF-SHA256) over a
// transcript binding the version byte, the client's ephemeral point,
// the server's static point, and an explicit direction label, so a
// key can never be confused across versions, peers, or directions.
func sessionKey(secret, ephPub, serverPub []byte) ([]byte, error) {
	ext := hmac.New(sha256.New, []byte("shuffledp-session-v1"))
	ext.Write(secret)
	ext.Write([]byte{SessionVersion})
	ext.Write(ephPub)
	ext.Write(serverPub)
	prk := ext.Sum(nil)
	h := hmac.New(sha256.New, prk)
	h.Write([]byte("client->server"))
	h.Write([]byte{1})
	return h.Sum(nil)[:16], nil // AES-128-GCM key
}

func newSession(secret, ephPub, serverPub []byte) (*Session, error) {
	key, err := sessionKey(secret, ephPub, serverPub)
	if err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &Session{aead: aead}, nil
}

// NewClientSession starts a session with the holder of server's
// private key: it draws a fresh ephemeral P-256 key, derives the
// session, and returns the hello bytes the client must send as its
// first frame (version byte || ephemeral public point).
func NewClientSession(server *PublicKey) (*Session, []byte, error) {
	eph, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	secret, err := eph.ECDH(server.key)
	if err != nil {
		return nil, nil, err
	}
	ephPub := eph.PublicKey().Bytes()
	hello := make([]byte, 0, HelloSize)
	hello = append(hello, SessionVersion)
	hello = append(hello, ephPub...)
	sess, err := newSession(secret, ephPub, server.key.Bytes())
	if err != nil {
		return nil, nil, err
	}
	return sess, hello, nil
}

// NewServerSession derives the server side of a session from a
// client's hello. A truncated or oversized hello, an unknown version
// byte (ErrSessionVersion), or an invalid ephemeral point all error —
// the connection should be dropped, never half-trusted.
func NewServerSession(priv *PrivateKey, hello []byte) (*Session, error) {
	if len(hello) != HelloSize {
		return nil, fmt.Errorf("ecies: session hello is %d bytes, want %d", len(hello), HelloSize)
	}
	if hello[0] != SessionVersion {
		return nil, fmt.Errorf("%w: %d (this build speaks %d)", ErrSessionVersion, hello[0], SessionVersion)
	}
	ephPub := hello[1:]
	ephKey, err := ecdh.P256().NewPublicKey(ephPub)
	if err != nil {
		return nil, fmt.Errorf("ecies: bad session ephemeral key: %w", err)
	}
	secret, err := priv.key.ECDH(ephKey)
	if err != nil {
		return nil, err
	}
	return newSession(secret, ephPub, priv.key.PublicKey().Bytes())
}

// sessionNonce fills the session's 96-bit GCM nonce for one frame:
// direction byte, three zero bytes, 64-bit counter big-endian. The
// direction byte is fixed because the key is already direction-bound;
// it keeps the layout self-describing.
func (s *Session) sessionNonce(counter uint64) []byte {
	s.nonce[0] = 'c'
	binary.BigEndian.PutUint64(s.nonce[4:], counter)
	return s.nonce[:]
}

// Seal appends one sealed frame to dst and returns the extended
// slice: the explicit frame counter (8 bytes big-endian) followed by
// the GCM ciphertext and tag. The counter advances by one per call
// and is also the nonce and the AAD, so a frame cannot be replayed
// under a different sequence position. Zero allocations when dst has
// capacity for len(plaintext) + SessionOverhead more bytes.
func (s *Session) Seal(dst, plaintext []byte) ([]byte, error) {
	if s.nextSeal == ^uint64(0) {
		return nil, errors.New("ecies: session frame counter exhausted")
	}
	counter := s.nextSeal
	s.nextSeal++
	nonce := s.sessionNonce(counter)
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint64(dst[base:], counter)
	return s.aead.Seal(dst, nonce, plaintext, dst[base:base+8]), nil
}

// Open verifies and decrypts one frame produced by Seal, appending
// the plaintext to dst. The frame's explicit counter must be exactly
// the next expected one (ErrSessionReplay otherwise), and the AEAD
// tag must verify (ErrSessionAuth). On success the expected counter
// advances — a frame can never be accepted twice.
func (s *Session) Open(dst, frame []byte) ([]byte, error) {
	if len(frame) < SessionOverhead {
		return nil, fmt.Errorf("%w: frame too short (%d bytes)", ErrSessionAuth, len(frame))
	}
	counter := binary.BigEndian.Uint64(frame[:8])
	if counter != s.nextOpen {
		return nil, fmt.Errorf("%w: frame %d, expected %d", ErrSessionReplay, counter, s.nextOpen)
	}
	nonce := s.sessionNonce(counter)
	out, err := s.aead.Open(dst, nonce, frame[8:], frame[:8])
	if err != nil {
		return nil, ErrSessionAuth
	}
	s.nextOpen++
	return out, nil
}

// StorageSealer encrypts session reports at rest: the write-ahead log
// stores every report encrypted, but a session report reaches the
// gateway under a connection-ephemeral key that cannot be re-derived
// at recovery. The sealer wraps such reports under an AES-GCM key
// deterministically derived from the service's long-term private key
// — the same secret recovery already requires — so the WAL keeps its
// "never holds plaintext reports" property at symmetric cost instead
// of a per-report ECIES re-encryption. Nonces follow NIST SP 800-38D
// §8.2.2: a 4-byte random prefix drawn once per sealer (per process
// run) plus a 64-bit counter, unique across restarts with the same
// derived key. Seal is not safe for concurrent use; the service calls
// it only from the single shuffler goroutine. Open is stateless.
type StorageSealer struct {
	aead    cipher.AEAD
	prefix  [4]byte
	counter uint64
}

// NewStorageSealer derives the at-rest key from the service's private
// key and draws the run's nonce prefix.
func NewStorageSealer(priv *PrivateKey) (*StorageSealer, error) {
	ext := hmac.New(sha256.New, []byte("shuffledp-wal-at-rest-v1"))
	ext.Write(priv.key.Bytes())
	prk := ext.Sum(nil)
	h := hmac.New(sha256.New, prk)
	h.Write([]byte("storage"))
	h.Write([]byte{1})
	key := h.Sum(nil)[:16]
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	s := &StorageSealer{aead: aead}
	if _, err := rand.Read(s.prefix[:]); err != nil {
		return nil, fmt.Errorf("ecies: storage nonce prefix: %w", err)
	}
	return s, nil
}

// StorageOverhead is the expansion of one sealed storage record: the
// explicit nonce plus the GCM tag.
const StorageOverhead = gcmNonceSize + gcmTagSize

// Seal appends nonce || ciphertext || tag for one record to dst.
func (s *StorageSealer) Seal(dst, plaintext []byte) []byte {
	var nonce [gcmNonceSize]byte
	copy(nonce[:4], s.prefix[:])
	binary.BigEndian.PutUint64(nonce[4:], s.counter)
	s.counter++
	dst = append(dst, nonce[:]...)
	return s.aead.Seal(dst, nonce[:], plaintext, nil)
}

// Open reverses Seal, appending the record plaintext to dst.
func (s *StorageSealer) Open(dst, data []byte) ([]byte, error) {
	if len(data) < StorageOverhead {
		return nil, errors.New("ecies: sealed storage record too short")
	}
	out, err := s.aead.Open(dst, data[:gcmNonceSize], data[gcmNonceSize:], nil)
	if err != nil {
		return nil, fmt.Errorf("ecies: sealed storage record: %w", err)
	}
	return out, nil
}
