package ecies

import "testing"

func BenchmarkEncrypt32B(b *testing.B) {
	priv, err := GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	pub := priv.Public()
	msg := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encrypt(pub, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt32B(b *testing.B) {
	priv, err := GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	ct, err := Encrypt(priv.Public(), make([]byte, 32))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decrypt(priv, ct); err != nil {
			b.Fatal(err)
		}
	}
}

// The append-style forms reuse the caller's buffer: the per-report
// slice allocations (ciphertext, tag, assembled output / plaintext)
// disappear and only the unavoidable ECDH internals remain. Compare
// allocs/op against BenchmarkEncrypt32B / BenchmarkDecrypt32B.
func BenchmarkEncryptTo32B(b *testing.B) {
	priv, err := GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	pub := priv.Public()
	msg := make([]byte, 32)
	dst := make([]byte, 0, len(msg)+Overhead)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncryptTo(pub, dst[:0], msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptTo32B(b *testing.B) {
	priv, err := GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	ct, err := Encrypt(priv.Public(), make([]byte, 32))
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]byte, 0, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecryptTo(priv, dst[:0], ct); err != nil {
			b.Fatal(err)
		}
	}
}

// The session hot path: what one report costs once the handshake is
// amortized away. Must report 0 allocs/op (TestSessionNoAllocs gates
// it); contrast with BenchmarkDecrypt32B, the per-report ECIES wall.
func BenchmarkSessionSealOpen512B(b *testing.B) {
	priv, err := GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	client, hello, err := NewClientSession(priv.Public())
	if err != nil {
		b.Fatal(err)
	}
	server, err := NewServerSession(priv, hello)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 512)
	sealBuf := make([]byte, 0, len(msg)+SessionOverhead)
	openBuf := make([]byte, 0, len(msg))
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := client.Seal(sealBuf[:0], msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := server.Open(openBuf[:0], frame); err != nil {
			b.Fatal(err)
		}
	}
}

// The handshake cost a connection pays once, however many reports it
// then streams.
func BenchmarkSessionHandshake(b *testing.B) {
	priv, err := GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	pub := priv.Public()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, hello, err := NewClientSession(pub)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := NewServerSession(priv, hello); err != nil {
			b.Fatal(err)
		}
	}
}

// The SS user cost: one onion with r+1 layers.
func BenchmarkOnionEncrypt4Hops(b *testing.B) {
	var pubs []*PublicKey
	for i := 0; i < 4; i++ {
		k, err := GenerateKey()
		if err != nil {
			b.Fatal(err)
		}
		pubs = append(pubs, k.Public())
	}
	msg := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OnionEncrypt(pubs, msg); err != nil {
			b.Fatal(err)
		}
	}
}
