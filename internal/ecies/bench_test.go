package ecies

import "testing"

func BenchmarkEncrypt32B(b *testing.B) {
	priv, err := GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	pub := priv.Public()
	msg := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encrypt(pub, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt32B(b *testing.B) {
	priv, err := GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	ct, err := Encrypt(priv.Public(), make([]byte, 32))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decrypt(priv, ct); err != nil {
			b.Fatal(err)
		}
	}
}

// The SS user cost: one onion with r+1 layers.
func BenchmarkOnionEncrypt4Hops(b *testing.B) {
	var pubs []*PublicKey
	for i := 0; i < 4; i++ {
		k, err := GenerateKey()
		if err != nil {
			b.Fatal(err)
		}
		pubs = append(pubs, k.Public())
	}
	msg := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OnionEncrypt(pubs, msg); err != nil {
			b.Fatal(err)
		}
	}
}
