// Package ecies implements the hybrid public-key encryption the SS
// (sequential shuffle) baseline uses (§VII-A "Implementation"): the
// paper encrypts each message under AES-128-CBC with a fresh key and
// wraps the key with elliptic-curve ElGamal on secp256r1. We implement
// the standard ECIES composition over the same curve (P-256): ephemeral
// ECDH -> HKDF-SHA256 -> AES-CTR + HMAC-SHA256 (encrypt-then-MAC),
// which has the same asymptotics and 128-bit security.
//
// Onion encryption (§VI-A1) stacks one layer per shuffler plus one for
// the server; each hop strips exactly one layer.
package ecies

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

const (
	pubKeySize = 65 // uncompressed P-256 point
	macSize    = 32
	// Overhead is the ciphertext expansion of one layer.
	Overhead = pubKeySize + macSize
)

// PrivateKey is a P-256 decryption key.
type PrivateKey struct {
	key *ecdh.PrivateKey
}

// PublicKey is the matching encryption key.
type PublicKey struct {
	key *ecdh.PublicKey
}

// GenerateKey creates a fresh P-256 key pair.
func GenerateKey() (*PrivateKey, error) {
	key, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &PrivateKey{key: key}, nil
}

// Public returns the public half.
func (k *PrivateKey) Public() *PublicKey {
	return &PublicKey{key: k.key.PublicKey()}
}

// Bytes serializes the public key (uncompressed point).
func (k *PublicKey) Bytes() []byte { return k.key.Bytes() }

// ParsePublicKey reads an uncompressed P-256 point.
func ParsePublicKey(data []byte) (*PublicKey, error) {
	key, err := ecdh.P256().NewPublicKey(data)
	if err != nil {
		return nil, fmt.Errorf("ecies: bad public key: %w", err)
	}
	return &PublicKey{key: key}, nil
}

// deriveKeys expands the ECDH shared secret into an AES key and a MAC
// key with HKDF-SHA256 (extract with a fixed salt, one expand round).
func deriveKeys(secret, ephPub []byte) (encKey, macKey []byte) {
	// HKDF-Extract(salt="shuffledp-ecies-v1", IKM=secret || ephPub).
	ext := hmac.New(sha256.New, []byte("shuffledp-ecies-v1"))
	ext.Write(secret)
	ext.Write(ephPub)
	prk := ext.Sum(nil)
	// HKDF-Expand: T1 = HMAC(prk, 0x01), T2 = HMAC(prk, T1 || 0x02).
	h1 := hmac.New(sha256.New, prk)
	h1.Write([]byte{1})
	t1 := h1.Sum(nil)
	h2 := hmac.New(sha256.New, prk)
	h2.Write(t1)
	h2.Write([]byte{2})
	t2 := h2.Sum(nil)
	return t1[:16], t2 // AES-128 key, 32-byte MAC key
}

// Encrypt seals plaintext to pub. Output layout:
// ephemeral public key (65) || ciphertext (len(plaintext)) || MAC (32).
func Encrypt(pub *PublicKey, plaintext []byte) ([]byte, error) {
	return EncryptTo(pub, make([]byte, 0, len(plaintext)+Overhead), plaintext)
}

// EncryptTo is the append-style form of Encrypt: the ciphertext is
// appended to dst (allocating only when dst lacks capacity) and the
// extended slice is returned. Callers on a hot path reuse one scratch
// buffer across reports instead of paying Encrypt's three allocations
// (ciphertext, MAC, assembled output) per call.
func EncryptTo(pub *PublicKey, dst, plaintext []byte) ([]byte, error) {
	eph, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	secret, err := eph.ECDH(pub.key)
	if err != nil {
		return nil, err
	}
	ephPub := eph.PublicKey().Bytes()
	encKey, macKey := deriveKeys(secret, ephPub)

	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, err
	}
	// CTR with a zero IV is safe here because the key is single-use
	// (fresh ephemeral ECDH per message).
	var iv [aes.BlockSize]byte
	base := len(dst)
	dst = append(dst, ephPub...)
	dst = append(dst, plaintext...)
	ct := dst[base+pubKeySize:]
	cipher.NewCTR(block, iv[:]).XORKeyStream(ct, ct)

	mac := hmac.New(sha256.New, macKey)
	mac.Write(dst[base:])
	return mac.Sum(dst), nil
}

// Decrypt opens a ciphertext produced by Encrypt.
func Decrypt(priv *PrivateKey, data []byte) ([]byte, error) {
	return DecryptTo(priv, nil, data)
}

// DecryptTo is the append-style form of Decrypt: the plaintext is
// appended to dst and the extended slice returned, so a decrypt worker
// can reuse one scratch buffer across a whole batch of reports.
func DecryptTo(priv *PrivateKey, dst, data []byte) ([]byte, error) {
	if len(data) < Overhead {
		return nil, errors.New("ecies: ciphertext too short")
	}
	ephPub := data[:pubKeySize]
	ct := data[pubKeySize : len(data)-macSize]
	tag := data[len(data)-macSize:]

	ephKey, err := ecdh.P256().NewPublicKey(ephPub)
	if err != nil {
		return nil, fmt.Errorf("ecies: bad ephemeral key: %w", err)
	}
	secret, err := priv.key.ECDH(ephKey)
	if err != nil {
		return nil, err
	}
	encKey, macKey := deriveKeys(secret, ephPub)

	mac := hmac.New(sha256.New, macKey)
	mac.Write(ephPub)
	mac.Write(ct)
	if !hmac.Equal(mac.Sum(nil), tag) {
		return nil, errors.New("ecies: MAC verification failed")
	}
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, err
	}
	var iv [aes.BlockSize]byte
	base := len(dst)
	dst = append(dst, ct...)
	cipher.NewCTR(block, iv[:]).XORKeyStream(dst[base:], dst[base:])
	return dst, nil
}

// OnionEncrypt wraps plaintext for the given hop keys so that
// hops[0] peels first, then hops[1], and so on: the onion is encrypted
// inside-out (last hop's layer innermost).
func OnionEncrypt(hops []*PublicKey, plaintext []byte) ([]byte, error) {
	if len(hops) == 0 {
		return nil, errors.New("ecies: onion needs at least one hop")
	}
	data := plaintext
	var err error
	for i := len(hops) - 1; i >= 0; i-- {
		data, err = Encrypt(hops[i], data)
		if err != nil {
			return nil, err
		}
	}
	return data, nil
}

// OnionLayerSize returns the total ciphertext size of a `hops`-layer
// onion over a payload of the given size (Table III user communication).
func OnionLayerSize(hops, payload int) int {
	return payload + hops*Overhead
}
