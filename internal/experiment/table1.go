package experiment

import (
	"fmt"
	"math"
	"strings"

	"shuffledp/internal/amplify"
)

// Table1Row compares the three amplification bounds of Table I at one
// local budget: the central epsilon each proves (NaN where the bound's
// validity condition fails).
type Table1Row struct {
	EpsL   float64
	EFMRTT float64 // Erlingsson et al. (SODA'19)
	CSUZZ  float64 // Cheu et al. (EUROCRYPT'19), binary
	BBGN   float64 // Balle et al. (CRYPTO'19) — the bound this paper builds on
}

// Table1 evaluates the bounds over a grid of local budgets for n users
// on a binary domain (the only domain all three support).
func Table1(epsLs []float64, n int, delta float64) []Table1Row {
	rows := make([]Table1Row, 0, len(epsLs))
	for _, epsL := range epsLs {
		row := Table1Row{EpsL: epsL}
		if e, ok := amplify.CentralEpsilonEFMRTT(epsL, n, delta); ok {
			row.EFMRTT = e
		} else {
			row.EFMRTT = math.NaN()
		}
		if e, ok := amplify.CentralEpsilonCSUZZ(epsL, n, delta); ok {
			row.CSUZZ = e
		} else {
			row.CSUZZ = math.NaN()
		}
		row.BBGN = amplify.CentralEpsilonGRR(epsL, 2, n, delta)
		rows = append(rows, row)
	}
	return rows
}

// FormatTable1 renders the comparison.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %12s %12s\n", "epsL", "EFMRTT'19", "CSUZZ'19", "BBGN'19")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8.2f %12.4f %12.4f %12.4f\n", r.EpsL, r.EFMRTT, r.CSUZZ, r.BBGN)
	}
	return b.String()
}
