package experiment

import (
	"fmt"
	"strings"
	"time"

	"shuffledp/internal/ahe"
	"shuffledp/internal/ldp"
	"shuffledp/internal/protocol"
	"shuffledp/internal/rng"
	"shuffledp/internal/transport"
)

// CostRow is one protocol column of Table III: per-party computation
// and communication. User costs are per user; shuffler costs are the
// average across the r shufflers.
type CostRow struct {
	Protocol string
	R        int
	N        int

	UserCompMS    float64 // per user, milliseconds
	UserCommBytes int64   // per user

	AuxCompSec   float64 // per shuffler, seconds
	AuxCommBytes int64   // per shuffler (sent)

	ServerCompSec   float64
	ServerCommBytes int64 // received
}

// Table3Config parameterizes the overhead measurement. The paper runs
// n = 10^6 with DGK-3072; that takes hours of pure exponentiation on a
// laptop, so the default scales n down and documents the knobs — costs
// scale linearly in n (§VII-D: "both methods scale with n + nr").
type Table3Config struct {
	// N is the number of users.
	N int
	// NR is the number of fake reports.
	NR int
	// Rs lists the shuffler counts to measure (paper: 3 and 7).
	Rs []int
	// KeyBits sizes the DGK modulus (paper: 3072).
	KeyBits int
	// DPrime/EpsL parameterize the SOLH oracle (64-bit reports).
	DPrime int
	EpsL   float64
	Seed   uint64
	// FastShuffle measures PEOS under the paper's cost model (no
	// per-element rerandomization; see oblivious.Config).
	FastShuffle bool
}

// DefaultTable3Config returns a laptop-scale configuration.
func DefaultTable3Config() Table3Config {
	return Table3Config{
		N:       2000,
		NR:      200,
		Rs:      []int{3, 7},
		KeyBits: 1024,
		DPrime:  16,
		EpsL:    2,
		Seed:    4,
	}
}

// Table3 measures SS and PEOS costs for each configured r. It runs the
// real protocols (real DGK, real ECIES onions, real oblivious shuffle)
// and reads the per-party accounts from the transport.Meter.
func Table3(cfg Table3Config) ([]CostRow, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("experiment: N must be >= 1")
	}
	// One key pair reused across runs: generation is not part of the
	// measured protocol cost.
	key, err := ahe.GenerateDGK(cfg.KeyBits, 64)
	if err != nil {
		return nil, err
	}
	values := make([]int, cfg.N)
	for i := range values {
		values[i] = i % 64
	}
	d := 64
	var rows []CostRow
	for _, r := range cfg.Rs {
		fo := ldp.NewSOLH(d, cfg.DPrime, cfg.EpsL)

		ss, err := protocol.NewSS(fo, r, cfg.NR)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		ssRes, err := ss.Run(values, rng.New(cfg.Seed))
		if err != nil {
			return nil, err
		}
		_ = time.Since(start)
		rows = append(rows, costRow("SS", r, cfg.N, ssRes.Meter))

		peos, err := protocol.NewPEOS(fo, r, cfg.NR, key, rng.New(cfg.Seed+1))
		if err != nil {
			return nil, err
		}
		peos.FastShuffle = cfg.FastShuffle
		peosRes, err := peos.Run(values, rng.New(cfg.Seed+2))
		if err != nil {
			return nil, err
		}
		rows = append(rows, costRow("PEOS", r, cfg.N, peosRes.Meter))
	}
	return rows, nil
}

func costRow(name string, r, n int, meter *transport.Meter) CostRow {
	row := CostRow{Protocol: name, R: r, N: n}
	users := meter.Stats(protocol.PartyUsers)
	row.UserCompMS = float64(users.CPU.Microseconds()) / 1000 / float64(n)
	row.UserCommBytes = users.SentBytes / int64(n)
	var auxCPU time.Duration
	var auxSent int64
	for j := 0; j < r; j++ {
		s := meter.Stats(protocol.ShufflerName(j))
		auxCPU += s.CPU
		auxSent += s.SentBytes
	}
	row.AuxCompSec = auxCPU.Seconds() / float64(r)
	row.AuxCommBytes = auxSent / int64(r)
	srv := meter.Stats(protocol.PartyServer)
	row.ServerCompSec = srv.CPU.Seconds()
	row.ServerCommBytes = srv.RecvBytes
	return row
}

// FormatTable3 renders the cost rows like the paper's Table III.
func FormatTable3(rows []CostRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %3s %10s | %14s %14s | %12s %12s | %12s %12s\n",
		"protocol", "r", "n",
		"user comp(ms)", "user comm(B)",
		"aux comp(s)", "aux comm(B)",
		"srv comp(s)", "srv comm(B)")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-10s %3d %10d | %14.3f %14d | %12.3f %12d | %12.3f %12d\n",
			row.Protocol, row.R, row.N,
			row.UserCompMS, row.UserCommBytes,
			row.AuxCompSec, row.AuxCommBytes,
			row.ServerCompSec, row.ServerCommBytes)
	}
	return b.String()
}
