package experiment

import (
	"fmt"
	"math"
	"strings"

	"shuffledp/internal/dataset"
)

// Table2Row is one epsC column of Table II: the optimal d' of SOLH and
// the utilities of SOLH (optimal and fixed d'), and RAP_R on Kosarak.
type Table2Row struct {
	EpsC float64
	// DPrime is SOLH's optimal hashed-domain size at this budget.
	DPrime int
	// SOLH is the mean MSE with the optimal d'.
	SOLH float64
	// SOLHFixed maps the ablated fixed d' (10/100/1000) to its MSE;
	// budgets where the fixed d' is infeasible (m <= d') hold NaN.
	SOLHFixed map[int]float64
	// RAPR is the removal-LDP unary-encoding competitor's MSE.
	RAPR float64
}

// Table2Config parameterizes the Table II reproduction.
type Table2Config struct {
	EpsCs   []float64
	FixedDs []int
	Trials  int
	Delta   float64
	Seed    uint64
	// Concurrency caps the worker fan-out over (budget, variant) trial
	// jobs; values < 1 use GOMAXPROCS. Results are identical for a
	// fixed Seed regardless of Concurrency.
	Concurrency int
}

// DefaultTable2Config returns the paper's settings.
func DefaultTable2Config() Table2Config {
	return Table2Config{
		EpsCs:   []float64{0.2, 0.4, 0.6, 0.8},
		FixedDs: []int{10, 100, 1000},
		Trials:  20,
		Delta:   1e-9,
		Seed:    2,
	}
}

// Table2 reproduces Table II on a (Kosarak-shaped) dataset. The
// (budget, variant) trial jobs run in parallel (cfg.Concurrency
// workers), each on its own seed substream, so the table is
// deterministic for a fixed cfg.Seed at any concurrency.
func Table2(ds *dataset.Dataset, cfg Table2Config) ([]Table2Row, error) {
	trueCounts := ds.Histogram()
	truth := ds.TrueFrequencies()
	n := ds.N()

	// Variants per row: SOLH (optimal d'), one per fixed d', RAP_R.
	stride := len(cfg.FixedDs) + 2
	jobs := len(cfg.EpsCs) * stride
	mses := make([]float64, jobs)
	dPrimes := make([]int, len(cfg.EpsCs))
	errs := make([]error, jobs)
	forEachParallel(jobs, cfg.Concurrency, func(job int) {
		ri, vi := job/stride, job%stride
		epsC := cfg.EpsCs[ri]
		r := jobStream(cfg.Seed, job)
		switch {
		case vi == 0:
			solh, err := NewMethod("SOLH", epsC, cfg.Delta, n, ds.D)
			if err != nil {
				errs[job] = err
				return
			}
			dPrimes[ri] = solh.DPrime
			mses[job] = MeanMSE(solh, trueCounts, truth, cfg.Trials, r)
		case vi <= len(cfg.FixedDs):
			m, err := NewSOLHFixed(epsC, cfg.Delta, n, ds.D, cfg.FixedDs[vi-1])
			if err != nil {
				// Infeasible (m <= d'): record NaN like the paper's
				// blank-by-degradation entries.
				mses[job] = math.NaN()
				return
			}
			mses[job] = MeanMSE(m, trueCounts, truth, cfg.Trials, r)
		default:
			rapr, err := NewMethod("RAP_R", epsC, cfg.Delta, n, ds.D)
			if err != nil {
				errs[job] = err
				return
			}
			mses[job] = MeanMSE(rapr, trueCounts, truth, cfg.Trials, r)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rows := make([]Table2Row, 0, len(cfg.EpsCs))
	for ri, epsC := range cfg.EpsCs {
		row := Table2Row{
			EpsC:      epsC,
			DPrime:    dPrimes[ri],
			SOLH:      mses[ri*stride],
			SOLHFixed: make(map[int]float64, len(cfg.FixedDs)),
			RAPR:      mses[ri*stride+stride-1],
		}
		for fi, dp := range cfg.FixedDs {
			row.SOLHFixed[dp] = mses[ri*stride+1+fi]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable2 renders the rows the way the paper lays out Table II.
func FormatTable2(rows []Table2Row, fixedDs []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", "epsC")
	for _, row := range rows {
		fmt.Fprintf(&b, " %12.1f", row.EpsC)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "d' (SOLH)")
	for _, row := range rows {
		fmt.Fprintf(&b, " %12d", row.DPrime)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "SOLH")
	for _, row := range rows {
		fmt.Fprintf(&b, " %12.3e", row.SOLH)
	}
	b.WriteByte('\n')
	for _, dp := range fixedDs {
		fmt.Fprintf(&b, "%-18s", fmt.Sprintf("SOLH (d'=%d)", dp))
		for _, row := range rows {
			fmt.Fprintf(&b, " %12.3e", row.SOLHFixed[dp])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-18s", "RAP_R")
	for _, row := range rows {
		fmt.Fprintf(&b, " %12.3e", row.RAPR)
	}
	b.WriteByte('\n')
	return b.String()
}
