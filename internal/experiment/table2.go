package experiment

import (
	"fmt"
	"math"
	"strings"

	"shuffledp/internal/dataset"
	"shuffledp/internal/rng"
)

// Table2Row is one epsC column of Table II: the optimal d' of SOLH and
// the utilities of SOLH (optimal and fixed d'), and RAP_R on Kosarak.
type Table2Row struct {
	EpsC float64
	// DPrime is SOLH's optimal hashed-domain size at this budget.
	DPrime int
	// SOLH is the mean MSE with the optimal d'.
	SOLH float64
	// SOLHFixed maps the ablated fixed d' (10/100/1000) to its MSE;
	// budgets where the fixed d' is infeasible (m <= d') hold NaN.
	SOLHFixed map[int]float64
	// RAPR is the removal-LDP unary-encoding competitor's MSE.
	RAPR float64
}

// Table2Config parameterizes the Table II reproduction.
type Table2Config struct {
	EpsCs   []float64
	FixedDs []int
	Trials  int
	Delta   float64
	Seed    uint64
}

// DefaultTable2Config returns the paper's settings.
func DefaultTable2Config() Table2Config {
	return Table2Config{
		EpsCs:   []float64{0.2, 0.4, 0.6, 0.8},
		FixedDs: []int{10, 100, 1000},
		Trials:  20,
		Delta:   1e-9,
		Seed:    2,
	}
}

// Table2 reproduces Table II on a (Kosarak-shaped) dataset.
func Table2(ds *dataset.Dataset, cfg Table2Config) ([]Table2Row, error) {
	trueCounts := ds.Histogram()
	truth := ds.TrueFrequencies()
	n := ds.N()
	r := rng.New(cfg.Seed)

	rows := make([]Table2Row, 0, len(cfg.EpsCs))
	for _, epsC := range cfg.EpsCs {
		row := Table2Row{EpsC: epsC, SOLHFixed: make(map[int]float64)}

		solh, err := NewMethod("SOLH", epsC, cfg.Delta, n, ds.D)
		if err != nil {
			return nil, err
		}
		row.DPrime = solh.DPrime
		row.SOLH = MeanMSE(solh, trueCounts, truth, cfg.Trials, r)

		for _, dp := range cfg.FixedDs {
			m, err := NewSOLHFixed(epsC, cfg.Delta, n, ds.D, dp)
			if err != nil {
				// Infeasible (m <= d'): record NaN like the paper's
				// blank-by-degradation entries.
				row.SOLHFixed[dp] = math.NaN()
				continue
			}
			row.SOLHFixed[dp] = MeanMSE(m, trueCounts, truth, cfg.Trials, r)
		}

		rapr, err := NewMethod("RAP_R", epsC, cfg.Delta, n, ds.D)
		if err != nil {
			return nil, err
		}
		row.RAPR = MeanMSE(rapr, trueCounts, truth, cfg.Trials, r)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable2 renders the rows the way the paper lays out Table II.
func FormatTable2(rows []Table2Row, fixedDs []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", "epsC")
	for _, row := range rows {
		fmt.Fprintf(&b, " %12.1f", row.EpsC)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "d' (SOLH)")
	for _, row := range rows {
		fmt.Fprintf(&b, " %12d", row.DPrime)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "SOLH")
	for _, row := range rows {
		fmt.Fprintf(&b, " %12.3e", row.SOLH)
	}
	b.WriteByte('\n')
	for _, dp := range fixedDs {
		fmt.Fprintf(&b, "%-18s", fmt.Sprintf("SOLH (d'=%d)", dp))
		for _, row := range rows {
			fmt.Fprintf(&b, " %12.3e", row.SOLHFixed[dp])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-18s", "RAP_R")
	for _, row := range rows {
		fmt.Fprintf(&b, " %12.3e", row.RAPR)
	}
	b.WriteByte('\n')
	return b.String()
}
