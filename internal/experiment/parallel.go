package experiment

import (
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
)

// The figure/table runners fan their (budget, method) trial jobs out
// over a worker pool. Every job draws its randomness from
// rng.Substream(cfg.Seed, jobID) where the job id is a pure function of
// the job's position in the configuration, so a run's artifact is
// identical for any Concurrency setting — the same contract the public
// EstimateHistogram API makes.

// forEachParallel runs fn(job) for every job in [0, jobs) on up to
// `workers` goroutines (workers < 1 means GOMAXPROCS), re-raising the
// first worker panic in the caller. It rides the estimation engine's
// work-stealing loop.
func forEachParallel(jobs, workers int, fn func(job int)) {
	ldp.RunSharded(jobs, ldp.Workers(workers), func(_, job int) {
		fn(job)
	})
}

// jobStream returns the deterministic trial generator for one job of a
// seeded run.
func jobStream(seed uint64, job int) *rng.Rand {
	return rng.Substream(seed, uint64(job))
}
