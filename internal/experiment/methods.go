// Package experiment reproduces the paper's evaluation (§VII): the
// method registry that parameterizes every competitor at a target
// central budget, and one runner per table/figure — Table I
// (amplification bounds), Figure 3 (MSE on IPUMS), Table II (SOLH vs
// RAP_R on Kosarak), Figure 4 (succinct-histogram precision on AOL),
// and Table III (SS vs PEOS protocol costs).
package experiment

import (
	"errors"
	"fmt"
	"math"

	"shuffledp/internal/amplify"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
)

// Method is one competitor at a fixed central budget: a simulator
// drawing estimate vectors from the mechanism's exact sampling
// distribution plus its analytic expected MSE where closed-form.
type Method struct {
	// Name is the label used in the paper's figures.
	Name string
	// Simulate draws one frequency-estimate vector given the true
	// counts.
	Simulate func(trueCounts []int, r *rng.Rand) []float64
	// AnalyticMSE is the closed-form expected MSE (NaN when none
	// exists, e.g. Base depends on the data).
	AnalyticMSE float64
	// EpsL is the local budget spent (0 where not applicable).
	EpsL float64
	// DPrime is the hashed-domain size for local-hashing methods.
	DPrime int
}

// MethodNames lists the Figure 3 lineup in plot order.
var MethodNames = []string{"Base", "OLH", "Had", "SH", "SOLH", "AUE", "RAP", "RAP_R", "Lap"}

// NewMethod builds one named method at central budget epsC for n users
// over domain size d. The amplification inversions follow §IV; methods
// below their amplification threshold fall back to epsL = epsC exactly
// as the paper describes for SH ("when epsC < sqrt(...), epsL = epsC").
func NewMethod(name string, epsC, delta float64, n, d int) (Method, error) {
	if epsC <= 0 {
		return Method{}, errors.New("experiment: epsC must be > 0")
	}
	switch name {
	case "Base":
		return Method{
			Name:        "Base",
			Simulate:    func(tc []int, r *rng.Rand) []float64 { return ldp.BaseEstimates(len(tc)) },
			AnalyticMSE: math.NaN(),
		}, nil

	case "Lap":
		return Method{
			Name: "Lap",
			Simulate: func(tc []int, r *rng.Rand) []float64 {
				return ldp.SimulateLaplace(tc, epsC, r)
			},
			AnalyticMSE: 8 / (epsC * epsC * float64(n) * float64(n)),
		}, nil

	case "OLH":
		fo := ldp.NewOLH(d, epsC)
		return simMethod("OLH", fo, n), nil

	case "Had":
		fo := ldp.NewHadamard(d, epsC)
		return simMethod("Had", fo, n), nil

	case "SH":
		// GRR + shuffling [9]; no amplification below the threshold.
		epsL, err := amplify.LocalEpsilonGRR(epsC, d, n, delta)
		if err != nil {
			if !errors.Is(err, amplify.ErrNoAmplification) {
				return Method{}, err
			}
			epsL = epsC
		}
		fo := ldp.NewGRR(d, epsL)
		return simMethod("SH", fo, n), nil

	case "SOLH":
		m := amplify.BlanketM(epsC, n, delta)
		dPrime := amplify.OptimalDPrime(m, d)
		epsL, err := amplify.LocalEpsilonSOLH(epsC, dPrime, n, delta)
		if err != nil {
			if !errors.Is(err, amplify.ErrNoAmplification) {
				return Method{}, err
			}
			// Degenerate regime (tiny m): no amplification possible;
			// run OLH at the central budget.
			fo := ldp.NewOLH(d, epsC)
			return simMethod("SOLH", fo, n), nil
		}
		fo := ldp.NewSOLH(d, dPrime, epsL)
		return simMethod("SOLH", fo, n), nil

	case "SOLHFixed": // used by Table II's fixed-d' ablation via NewSOLHFixed
		return Method{}, errors.New("experiment: use NewSOLHFixed for fixed-d' SOLH")

	case "AUE":
		fo := ldp.NewAUE(d, epsC, delta, n)
		return simMethod("AUE", fo, n), nil

	case "RAP":
		epsL, err := amplify.LocalEpsilonUnary(epsC, n, delta)
		if err != nil {
			if !errors.Is(err, amplify.ErrNoAmplification) {
				return Method{}, err
			}
			epsL = epsC
		}
		fo := ldp.NewRAP(d, epsL)
		return simMethod("RAP", fo, n), nil

	case "RAP_R":
		// Removal-LDP variant: equivalent to RAP at 2*epsC (§IV-B4).
		eq := 2 * epsC
		epsL, err := amplify.LocalEpsilonUnary(eq, n, delta)
		if err != nil {
			if !errors.Is(err, amplify.ErrNoAmplification) {
				return Method{}, err
			}
			epsL = eq
		}
		fo := ldp.NewRAP(d, epsL)
		m := simMethod("RAP_R", fo, n)
		return m, nil

	default:
		return Method{}, fmt.Errorf("experiment: unknown method %q", name)
	}
}

// NewSOLHFixed builds SOLH at an explicitly fixed d' (the Table II
// ablation: "sub-optimal choice of d' makes SOLH less accurate").
func NewSOLHFixed(epsC, delta float64, n, d, dPrime int) (Method, error) {
	epsL, err := amplify.LocalEpsilonSOLH(epsC, dPrime, n, delta)
	if err != nil {
		return Method{}, err
	}
	fo := ldp.NewSOLH(d, dPrime, epsL)
	m := simMethod(fmt.Sprintf("SOLH(d'=%d)", dPrime), fo, n)
	return m, nil
}

// simMethod wraps a concrete oracle as a Method.
func simMethod(name string, fo ldp.FrequencyOracle, n int) Method {
	m := Method{
		Name: name,
		Simulate: func(tc []int, r *rng.Rand) []float64 {
			return ldp.SimulateEstimates(fo, tc, r)
		},
		AnalyticMSE: fo.Variance(n),
		EpsL:        fo.EpsilonLocal(),
	}
	if lh, ok := fo.(*ldp.LocalHash); ok {
		m.DPrime = lh.DPrime()
	}
	return m
}

// MeanMSE runs a method for `trials` independent draws and averages the
// MSE against the truth.
func MeanMSE(m Method, trueCounts []int, truth []float64, trials int, r *rng.Rand) float64 {
	if trials < 1 {
		panic("experiment: trials must be >= 1")
	}
	var sum float64
	for i := 0; i < trials; i++ {
		sum += ldp.MSE(truth, m.Simulate(trueCounts, r))
	}
	return sum / float64(trials)
}
