package experiment

// Golden-file determinism tests for the experiment runners: every
// table and figure is reproduced at tiny n/d with a fixed Seed and the
// full result structs — every float64 printed in shortest round-trip
// form — are compared byte for byte against checked-in goldens. A
// refactor that changes any reproduced number, however slightly, fails
// here instead of silently shifting the paper's tables.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/experiment -run TestGolden -update
//
// and review the golden diff like any other code change.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"shuffledp/internal/dataset"
)

var updateGolden = flag.Bool("update", false, "rewrite the experiment golden files")

// checkGolden compares got against testdata/golden/<name>.golden,
// rewriting the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if string(want) != got {
		t.Fatalf("%s drifted from its golden file.\n--- want\n%s--- got\n%s\nIf the change is intentional, regenerate with -update and review the diff.",
			name, want, got)
	}
}

// dumpRows renders a slice of result structs one per line with %+v:
// floats print in shortest round-trip form (so any bit change shows),
// maps print with sorted keys, NaN prints as NaN.
func dumpRows[T any](rows []T) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%+v\n", r)
	}
	return b.String()
}

func TestGoldenTable1(t *testing.T) {
	rows := Table1([]float64{0.25, 0.5, 1, 2, 4}, 10000, testDelta)
	checkGolden(t, "table1", dumpRows(rows))
}

func TestGoldenFigure3(t *testing.T) {
	ds := dataset.Scaled(dataset.IPUMS, 100, 1)
	cfg := Figure3Config{
		EpsCs:       []float64{0.3, 0.8},
		Trials:      2,
		Delta:       testDelta,
		Seed:        21,
		Concurrency: 2, // results are concurrency-independent; pinned anyway
	}
	points, err := Figure3(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure3", dumpRows(points))
}

func TestGoldenTable2(t *testing.T) {
	ds := dataset.Scaled(dataset.Kosarak, 200, 2)
	cfg := Table2Config{
		EpsCs:       []float64{0.4, 0.8},
		FixedDs:     []int{10, 100},
		Trials:      2,
		Delta:       testDelta,
		Seed:        22,
		Concurrency: 2,
	}
	rows, err := Table2(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table2", dumpRows(rows))
}

func TestGoldenFigure4(t *testing.T) {
	ds := dataset.SyntheticStrings("aol-golden", 8000, 120, 16, 1.3, 23)
	cfg := Figure4Config{
		EpsCs:       []float64{0.6},
		K:           8,
		Bits:        16,
		Round:       8,
		Trials:      1,
		Delta:       testDelta,
		Methods:     []string{"OLH", "Had", "Lap", "SH", "SOLH", "AUE", "RAP", "RAP_R"},
		Seed:        24,
		Concurrency: 2,
	}
	points, err := Figure4(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure4", dumpRows(points))
}

func TestGoldenTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol runs are slow")
	}
	cfg := Table3Config{
		N:       60,
		NR:      10,
		Rs:      []int{3},
		KeyBits: 768,
		DPrime:  8,
		EpsL:    2,
		Seed:    25,
	}
	rows, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock fields can never be golden; the deterministic content
	// is the protocol structure and the byte accounting.
	for i := range rows {
		rows[i].UserCompMS = 0
		rows[i].AuxCompSec = 0
		rows[i].ServerCompSec = 0
	}
	checkGolden(t, "table3", dumpRows(rows))
}
