package experiment

import (
	"math"
	"strings"
	"testing"

	"shuffledp/internal/dataset"
	"shuffledp/internal/rng"
)

const testDelta = 1e-9

// smallIPUMS is a scaled IPUMS stand-in for fast tests: same d, n/20.
func smallIPUMS() *dataset.Dataset {
	return dataset.Scaled(dataset.IPUMS, 20, 1)
}

func TestNewMethodAllNamesConstruct(t *testing.T) {
	ds := smallIPUMS()
	for _, name := range MethodNames {
		m, err := NewMethod(name, 0.8, testDelta, ds.N(), ds.D)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name != name {
			t.Errorf("name %q != %q", m.Name, name)
		}
		est := m.Simulate(ds.Histogram(), rng.New(1))
		if len(est) != ds.D {
			t.Errorf("%s: estimate length %d", name, len(est))
		}
	}
}

func TestNewMethodUnknown(t *testing.T) {
	if _, err := NewMethod("nope", 1, testDelta, 1000, 10); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := NewMethod("SOLH", 0, testDelta, 1000, 10); err == nil {
		t.Fatal("epsC=0 accepted")
	}
}

func TestSHFallsBackBelowThreshold(t *testing.T) {
	// IPUMS at epsC=0.1 is below the GRR amplification threshold
	// (~0.675): SH must fall back to epsL = epsC.
	ds := smallIPUMS()
	m, err := NewMethod("SH", 0.1, testDelta, dataset.IPUMSN, ds.D)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.EpsL-0.1) > 1e-12 {
		t.Fatalf("SH epsL = %v, want fallback to 0.1", m.EpsL)
	}
	// Above the threshold it must amplify (epsL > epsC).
	m2, err := NewMethod("SH", 1.0, testDelta, dataset.IPUMSN, ds.D)
	if err != nil {
		t.Fatal(err)
	}
	if m2.EpsL <= 1.0 {
		t.Fatalf("SH epsL = %v, want amplification above threshold", m2.EpsL)
	}
}

func TestSOLHAlwaysAmplifies(t *testing.T) {
	// §VII-B: "our improved SOLH method can always enjoy the privacy
	// amplification advantage" — across the whole Figure 3 range.
	for _, epsC := range []float64{0.1, 0.3, 0.5, 1.0} {
		m, err := NewMethod("SOLH", epsC, testDelta, dataset.IPUMSN, dataset.IPUMSD)
		if err != nil {
			t.Fatalf("epsC=%v: %v", epsC, err)
		}
		if m.EpsL <= epsC {
			t.Fatalf("epsC=%v: epsL=%v, no amplification", epsC, m.EpsL)
		}
	}
}

func TestFigure3ShapeMatchesPaper(t *testing.T) {
	// The qualitative claims of §VII-B at epsC = 0.4 (IPUMS scale):
	//  (1) SH is worse than Base (below amplification threshold);
	//  (2) SOLH beats the LDP methods by ~3 orders of magnitude;
	//  (3) Lap beats SOLH by ~2 orders of magnitude;
	//  (4) AUE/RAP/RAP_R are within ~one order of SOLH.
	ds := smallIPUMS()
	cfg := Figure3Config{
		EpsCs:  []float64{0.4},
		Trials: 10,
		Delta:  testDelta,
		Seed:   7,
	}
	// Use the full-scale n for parameterization by running on the
	// full-size dataset statistics: scaled data keeps d and skew; MSE
	// levels shift with n but the ordering is preserved.
	points, err := Figure3(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt := points[0]
	if pt.MSE["SH"] < pt.MSE["Base"] {
		t.Errorf("SH (%.3e) should be worse than Base (%.3e) below threshold",
			pt.MSE["SH"], pt.MSE["Base"])
	}
	// At n/20 scale the amplification gap shrinks (it grows with n);
	// ~20x here corresponds to the ~3 orders of magnitude at the full
	// n = 602,325 asserted analytically in internal/amplify's tests.
	if pt.MSE["SOLH"]*20 > pt.MSE["OLH"] {
		t.Errorf("SOLH (%.3e) should be orders of magnitude better than OLH (%.3e)",
			pt.MSE["SOLH"], pt.MSE["OLH"])
	}
	if pt.MSE["Lap"]*10 > pt.MSE["SOLH"] {
		t.Errorf("Lap (%.3e) should be well below SOLH (%.3e)",
			pt.MSE["Lap"], pt.MSE["SOLH"])
	}
	ratio := pt.MSE["RAP"] / pt.MSE["SOLH"]
	if ratio > 30 || ratio < 1.0/30 {
		t.Errorf("RAP (%.3e) and SOLH (%.3e) should be comparable",
			pt.MSE["RAP"], pt.MSE["SOLH"])
	}
	// RAP_R is the best performer in the paper's figure.
	if pt.MSE["RAP_R"] > pt.MSE["RAP"] {
		t.Errorf("RAP_R (%.3e) should beat RAP (%.3e)", pt.MSE["RAP_R"], pt.MSE["RAP"])
	}
}

func TestFigure3SimulatedTracksAnalytic(t *testing.T) {
	ds := smallIPUMS()
	cfg := Figure3Config{
		EpsCs:   []float64{0.8},
		Trials:  30,
		Delta:   testDelta,
		Methods: []string{"SOLH", "RAP"},
		Seed:    8,
	}
	points, err := Figure3(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range cfg.Methods {
		sim := points[0].MSE[name]
		ana := points[0].AnalyticMSE[name]
		if ratio := sim / ana; ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: simulated %.3e vs analytic %.3e", name, sim, ana)
		}
	}
}

func TestFormatCurve(t *testing.T) {
	ds := smallIPUMS()
	cfg := Figure3Config{EpsCs: []float64{0.5}, Trials: 2, Delta: testDelta,
		Methods: []string{"Base", "SOLH"}, Seed: 9}
	points, err := Figure3(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatCurve(points, cfg.Methods)
	if !strings.Contains(out, "SOLH") || !strings.Contains(out, "0.50") {
		t.Fatalf("bad table:\n%s", out)
	}
	if FormatCurve(nil, nil) != "" {
		t.Fatal("empty points should render empty")
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	// Kosarak shape at n/50: the optimal d' beats badly-fixed d'
	// choices, and d' grows with epsC.
	ds := dataset.Scaled(dataset.Kosarak, 50, 2)
	cfg := Table2Config{
		EpsCs:   []float64{0.4, 0.8},
		FixedDs: []int{10, 1000},
		Trials:  8,
		Delta:   testDelta,
		Seed:    10,
	}
	rows, err := Table2(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0].DPrime >= rows[1].DPrime {
		t.Errorf("d' should grow with epsC: %d vs %d", rows[0].DPrime, rows[1].DPrime)
	}
	for _, row := range rows {
		for dp, mse := range row.SOLHFixed {
			if math.IsNaN(mse) {
				continue // infeasible fixed d' at this budget
			}
			if mse < row.SOLH*0.8 {
				t.Errorf("epsC=%v: fixed d'=%d (%.3e) beats optimal (%.3e)",
					row.EpsC, dp, mse, row.SOLH)
			}
		}
	}
	out := FormatTable2(rows, cfg.FixedDs)
	if !strings.Contains(out, "RAP_R") {
		t.Fatalf("bad table:\n%s", out)
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1([]float64{0.25, 0.45, 1, 2}, 1000000, testDelta)
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	// EFMRTT valid only below 1/2.
	if math.IsNaN(rows[0].EFMRTT) || !math.IsNaN(rows[2].EFMRTT) {
		t.Error("EFMRTT validity window wrong")
	}
	// BBGN beats CSUZZ everywhere.
	for _, r := range rows {
		if !math.IsNaN(r.CSUZZ) && r.BBGN >= r.CSUZZ {
			t.Errorf("epsL=%v: BBGN %v >= CSUZZ %v", r.EpsL, r.BBGN, r.CSUZZ)
		}
	}
	if !strings.Contains(FormatTable1(rows), "BBGN") {
		t.Error("bad format")
	}
}

func TestFigure4SmallScale(t *testing.T) {
	// A scaled-down AOL: 16-bit strings, 2 rounds. Exact shape checks
	// are statistical; assert ordering between a strong (SOLH) and a
	// deliberately weak (SH at low eps) method.
	ds := dataset.SyntheticStrings("aol-mini", 40000, 300, 16, 1.3, 11)
	cfg := Figure4Config{
		EpsCs:   []float64{0.5},
		K:       16,
		Bits:    16,
		Round:   8,
		Trials:  2,
		Delta:   testDelta,
		Methods: []string{"SOLH", "SH", "Lap"},
		Seed:    12,
	}
	points, err := Figure4(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt := points[0]
	if pt.Precision["Lap"] < pt.Precision["SH"] {
		t.Errorf("Lap (%.2f) should dominate SH (%.2f)",
			pt.Precision["Lap"], pt.Precision["SH"])
	}
	if pt.Precision["SOLH"] < pt.Precision["SH"] {
		t.Errorf("SOLH (%.2f) should dominate SH (%.2f)",
			pt.Precision["SOLH"], pt.Precision["SH"])
	}
	out := FormatFigure4(points, cfg.Methods)
	if !strings.Contains(out, "SOLH") {
		t.Fatalf("bad table:\n%s", out)
	}
}

func TestFigure4BitsMismatch(t *testing.T) {
	ds := dataset.SyntheticStrings("x", 100, 10, 16, 1.3, 1)
	cfg := DefaultFigure4Config() // 48 bits
	if _, err := Figure4(ds, cfg); err == nil {
		t.Fatal("bits mismatch accepted")
	}
}

func TestTable3SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol runs are slow")
	}
	cfg := Table3Config{
		N:       300,
		NR:      30,
		Rs:      []int{3},
		KeyBits: 768,
		DPrime:  8,
		EpsL:    2,
		Seed:    13,
	}
	rows, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	ss, peos := rows[0], rows[1]
	if ss.Protocol != "SS" || peos.Protocol != "PEOS" {
		t.Fatalf("order: %s, %s", ss.Protocol, peos.Protocol)
	}
	// Structural truths from §VII-D:
	// SS user communication = 32 + 97(r+1) bytes per user.
	if ss.UserCommBytes != 32+97*4 {
		t.Errorf("SS user comm %d, want %d", ss.UserCommBytes, 32+97*4)
	}
	// PEOS user communication = 8(r-1) + ciphertext bytes.
	if peos.UserCommBytes != int64(8*2+768/8) {
		t.Errorf("PEOS user comm %d, want %d", peos.UserCommBytes, 8*2+768/8)
	}
	// PEOS aux communication exceeds SS aux communication (the paper's
	// observed trade-off), and both are positive.
	if ss.AuxCommBytes <= 0 || peos.AuxCommBytes <= 0 {
		t.Error("aux comm not accounted")
	}
	if fmtd := FormatTable3(rows); !strings.Contains(fmtd, "PEOS") {
		t.Fatalf("bad table:\n%s", fmtd)
	}
}

func TestMeanMSEPanicsOnZeroTrials(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MeanMSE(Method{}, nil, nil, 0, rng.New(1))
}
