package experiment

import (
	"fmt"
	"sort"
	"strings"

	"shuffledp/internal/dataset"
)

// CurvePoint is one x-position of a Figure 3-style plot: the mean MSE
// of every method at one central budget.
type CurvePoint struct {
	// EpsC is the central privacy budget (x-axis).
	EpsC float64
	// MSE maps method name to mean simulated MSE.
	MSE map[string]float64
	// AnalyticMSE maps method name to the closed-form expectation
	// (NaN where none exists).
	AnalyticMSE map[string]float64
}

// Figure3Config parameterizes the Figure 3 reproduction.
type Figure3Config struct {
	// EpsCs are the x-axis budgets (paper: 0.1 .. 1).
	EpsCs []float64
	// Trials per (method, budget) pair (paper: 100).
	Trials int
	// Delta is the DP failure probability (paper: 1e-9).
	Delta float64
	// Methods selects the lineup (default MethodNames).
	Methods []string
	// Seed makes the run reproducible.
	Seed uint64
	// Concurrency caps the worker fan-out over (budget, method) trial
	// jobs; values < 1 use GOMAXPROCS. Results are identical for a
	// fixed Seed regardless of Concurrency.
	Concurrency int
}

// DefaultFigure3Config returns the paper's settings with a reduced
// trial count suitable for interactive runs.
func DefaultFigure3Config() Figure3Config {
	return Figure3Config{
		EpsCs:  []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		Trials: 20,
		Delta:  1e-9,
		Seed:   1,
	}
}

// Figure3 reproduces the MSE-vs-epsC comparison on a dataset. The
// (budget, method) trial jobs run in parallel (cfg.Concurrency workers),
// each on its own seed substream, so the curve is deterministic for a
// fixed cfg.Seed at any concurrency.
func Figure3(ds *dataset.Dataset, cfg Figure3Config) ([]CurvePoint, error) {
	methods := cfg.Methods
	if len(methods) == 0 {
		methods = MethodNames
	}
	trueCounts := ds.Histogram()
	truth := ds.TrueFrequencies()
	n := ds.N()

	jobs := len(cfg.EpsCs) * len(methods)
	mses := make([]float64, jobs)
	analytic := make([]float64, jobs)
	errs := make([]error, jobs)
	forEachParallel(jobs, cfg.Concurrency, func(job int) {
		pi, mi := job/len(methods), job%len(methods)
		epsC, name := cfg.EpsCs[pi], methods[mi]
		m, err := NewMethod(name, epsC, cfg.Delta, n, ds.D)
		if err != nil {
			errs[job] = fmt.Errorf("figure3 %s at epsC=%v: %w", name, epsC, err)
			return
		}
		mses[job] = MeanMSE(m, trueCounts, truth, cfg.Trials, jobStream(cfg.Seed, job))
		analytic[job] = m.AnalyticMSE
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	points := make([]CurvePoint, 0, len(cfg.EpsCs))
	for pi, epsC := range cfg.EpsCs {
		pt := CurvePoint{
			EpsC:        epsC,
			MSE:         make(map[string]float64, len(methods)),
			AnalyticMSE: make(map[string]float64, len(methods)),
		}
		for mi, name := range methods {
			pt.MSE[name] = mses[pi*len(methods)+mi]
			pt.AnalyticMSE[name] = analytic[pi*len(methods)+mi]
		}
		points = append(points, pt)
	}
	return points, nil
}

// FormatCurve renders curve points as an aligned text table (methods as
// columns, sorted like the requested lineup).
func FormatCurve(points []CurvePoint, methods []string) string {
	if len(points) == 0 {
		return ""
	}
	if len(methods) == 0 {
		for name := range points[0].MSE {
			methods = append(methods, name)
		}
		sort.Strings(methods)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "epsC")
	for _, m := range methods {
		fmt.Fprintf(&b, " %12s", m)
	}
	b.WriteByte('\n')
	for _, pt := range points {
		fmt.Fprintf(&b, "%-6.2f", pt.EpsC)
		for _, m := range methods {
			fmt.Fprintf(&b, " %12.3e", pt.MSE[m])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
