package experiment

import (
	"errors"
	"fmt"
	"strings"

	"shuffledp/internal/dataset"
	"shuffledp/internal/ldp"
	"shuffledp/internal/treehist"
)

// Figure4Config parameterizes the succinct-histogram comparison
// (§VII-C): 48-bit strings, 6 rounds of 8 bits, top-32 per round.
type Figure4Config struct {
	EpsCs   []float64
	K       int
	Bits    int
	Round   int
	Trials  int
	Delta   float64
	Methods []string
	Seed    uint64
	// Concurrency caps the worker fan-out over (budget, method) jobs;
	// values < 1 use GOMAXPROCS. Results are identical for a fixed
	// Seed regardless of Concurrency.
	Concurrency int
}

// DefaultFigure4Config returns the paper's settings (trials reduced for
// interactive runs).
func DefaultFigure4Config() Figure4Config {
	return Figure4Config{
		EpsCs:   []float64{0.2, 0.4, 0.6, 0.8, 1.0},
		K:       32,
		Bits:    48,
		Round:   8,
		Trials:  3,
		Delta:   1e-9,
		Methods: []string{"OLH", "Had", "Lap", "SH", "SOLH", "AUE", "RAP", "RAP_R"},
		Seed:    3,
	}
}

// Figure4Point is one x-position: precision of each method at one epsC.
type Figure4Point struct {
	EpsC      float64
	Precision map[string]float64
}

// Figure4 reproduces the succinct-histogram precision comparison on a
// string dataset. LDP methods (OLH, Had) partition users across rounds
// (the original TreeHist strategy); shuffle-model and central methods
// run all users every round with the budget divided by the round count
// (the better strategy the paper identifies).
func Figure4(ds *dataset.StringDataset, cfg Figure4Config) ([]Figure4Point, error) {
	if cfg.Bits != ds.Bits {
		return nil, errors.New("experiment: config Bits mismatch with dataset")
	}
	rounds := cfg.Bits / cfg.Round
	truth := ds.TopStrings(cfg.K)

	jobs := len(cfg.EpsCs) * len(cfg.Methods)
	precisions := make([]float64, jobs)
	errs := make([]error, jobs)
	forEachParallel(jobs, cfg.Concurrency, func(job int) {
		pi, mi := job/len(cfg.Methods), job%len(cfg.Methods)
		epsC, name := cfg.EpsCs[pi], cfg.Methods[mi]
		r := jobStream(cfg.Seed, job)
		grouped := name == "OLH" || name == "Had"
		// Budget per round: LDP methods keep the full budget (each
		// group is disjoint, parallel composition); the others
		// split epsC and delta across rounds (sequential
		// composition).
		roundEps := epsC
		roundDelta := cfg.Delta
		roundN := ds.N()
		if grouped {
			roundN = ds.N() / rounds
		} else {
			roundEps = epsC / float64(rounds)
			roundDelta = cfg.Delta / float64(rounds)
		}

		var total float64
		for trial := 0; trial < cfg.Trials; trial++ {
			estimate := func(values []int, d int) []float64 {
				m, err := NewMethod(name, roundEps, roundDelta, roundN, d)
				if err != nil {
					// Methods can be infeasible at tiny budgets;
					// fall back to uniform guessing for the round.
					return ldp.BaseEstimates(d)
				}
				return m.Simulate(ldp.Histogram(values, d), r)
			}
			found, err := treehist.Run(ds.Values, treehist.Config{
				Bits:       cfg.Bits,
				RoundBits:  cfg.Round,
				K:          cfg.K,
				GroupUsers: grouped,
				Estimate:   estimate,
			})
			if err != nil {
				errs[job] = fmt.Errorf("figure4 %s at epsC=%v: %w", name, epsC, err)
				return
			}
			total += treehist.Precision(found, truth)
		}
		precisions[job] = total / float64(cfg.Trials)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	points := make([]Figure4Point, 0, len(cfg.EpsCs))
	for pi, epsC := range cfg.EpsCs {
		pt := Figure4Point{EpsC: epsC, Precision: make(map[string]float64, len(cfg.Methods))}
		for mi, name := range cfg.Methods {
			pt.Precision[name] = precisions[pi*len(cfg.Methods)+mi]
		}
		points = append(points, pt)
	}
	return points, nil
}

// FormatFigure4 renders precision points as an aligned table.
func FormatFigure4(points []Figure4Point, methods []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "epsC")
	for _, m := range methods {
		fmt.Fprintf(&b, " %8s", m)
	}
	b.WriteByte('\n')
	for _, pt := range points {
		fmt.Fprintf(&b, "%-6.2f", pt.EpsC)
		for _, m := range methods {
			fmt.Fprintf(&b, " %8.3f", pt.Precision[m])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
