package netproto

import (
	"bytes"
	"math"
	"net"
	"testing"

	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
)

func TestRunPipelineEndToEnd(t *testing.T) {
	const n, d = 4000, 16
	values := make([]int, n)
	for i := range values {
		values[i] = i % 4 // mass on values 0..3
	}
	fo := ldp.NewSOLH(d, 6, 3)
	est, err := RunPipeline(fo, values, 31)
	if err != nil {
		t.Fatal(err)
	}
	truth := ldp.TrueFrequencies(values, d)
	tol := 6 * math.Sqrt(fo.Variance(n))
	for v := 0; v < d; v++ {
		if math.Abs(est[v]-truth[v]) > tol {
			t.Errorf("value %d: est %v truth %v", v, est[v], truth[v])
		}
	}
}

func TestRunPipelineGRR(t *testing.T) {
	const n, d = 3000, 8
	values := make([]int, n)
	for i := range values {
		values[i] = i % d
	}
	fo := ldp.NewGRR(d, 4)
	est, err := RunPipeline(fo, values, 32)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < d; v++ {
		if math.Abs(est[v]-1.0/d) > 0.05 {
			t.Errorf("value %d: est %v, want ~%v", v, est[v], 1.0/d)
		}
	}
}

// The shuffler must not be able to read report contents: the frames it
// forwards are ECIES ciphertexts.
func TestShufflerSeesOnlyCiphertext(t *testing.T) {
	key, err := ecies.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	fo := ldp.NewGRR(4, 8) // eps=8: the report is almost surely the value
	user, err := NewUser(fo, key.Public(), rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := user.Report(&buf, 2); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	// The wire bytes must not contain the plaintext payload: the
	// 8-byte word for value 2 is 02 00 00 00 00 00 00 00; a plaintext
	// leak would show a run of 7 zero bytes.
	zeroRun := 0
	maxRun := 0
	for _, b := range frame {
		if b == 0 {
			zeroRun++
			if zeroRun > maxRun {
				maxRun = zeroRun
			}
		} else {
			zeroRun = 0
		}
	}
	if maxRun >= 7 {
		t.Fatal("report payload appears unencrypted on the wire")
	}
}

// The shuffler must actually permute: feed ordered reports through
// Forward and check they come out reordered.
func TestShufflerPermutes(t *testing.T) {
	s := &Shuffler{Rand: rng.New(34)}
	in := make([][]byte, 100)
	for i := range in {
		in[i] = []byte{byte(i)}
	}
	var buf bytes.Buffer
	orig := make([][]byte, len(in))
	copy(orig, in)
	if err := s.Forward(&buf, in); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range in {
		if in[i][0] != orig[i][0] {
			moved++
		}
	}
	// in was permuted in place by Forward; expect nearly all moved.
	if moved < 50 {
		t.Fatalf("only %d/100 reports moved", moved)
	}
}

func TestShufflerForwardNeedsRand(t *testing.T) {
	s := &Shuffler{}
	if err := s.Forward(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("nil Rand accepted")
	}
}

func TestUserValidation(t *testing.T) {
	fo := ldp.NewGRR(4, 1)
	key, _ := ecies.GenerateKey()
	if _, err := NewUser(fo, nil, rng.New(1)); err == nil {
		t.Error("nil key accepted")
	}
	if _, err := NewUser(fo, key.Public(), nil); err == nil {
		t.Error("nil rand accepted")
	}
	if _, err := NewUser(ldp.NewRAP(4, 1), key.Public(), rng.New(1)); err == nil {
		t.Error("unary oracle accepted")
	}
}

func TestServerValidation(t *testing.T) {
	fo := ldp.NewGRR(4, 1)
	if _, err := NewServer(fo, nil); err == nil {
		t.Error("nil key accepted")
	}
	if _, err := NewServer(ldp.NewRAP(4, 1), &ecies.PrivateKey{}); err == nil {
		t.Error("unary oracle accepted")
	}
}

// A server receiving a report encrypted under the wrong key must fail
// loudly, not silently mis-estimate.
func TestServerRejectsWrongKeyReports(t *testing.T) {
	fo := ldp.NewGRR(4, 1)
	serverKey, _ := ecies.GenerateKey()
	wrongKey, _ := ecies.GenerateKey()
	server, err := NewServer(fo, serverKey)
	if err != nil {
		t.Fatal(err)
	}
	user, err := NewUser(fo, wrongKey.Public(), rng.New(35))
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() { _ = user.Report(a, 1) }()
	if _, err := server.Receive(b, 1); err == nil {
		t.Fatal("wrong-key report accepted")
	}
}

func TestCollectPropagatesEOF(t *testing.T) {
	s := &Shuffler{Rand: rng.New(36)}
	if _, err := s.Collect(&bytes.Buffer{}, 1); err == nil {
		t.Fatal("EOF not propagated")
	}
}
