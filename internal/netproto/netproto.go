// Package netproto runs the basic shuffle model (§III, Figure 1) as
// real message-passing parties over net.Conn connections: n user
// clients, one shuffler, one analysis server. It is the deployable
// face of the in-process pipeline in internal/protocol:
//
//	user:     randomize value -> encrypt report for the server
//	          -> frame it to the shuffler
//	shuffler: collect all reports -> permute -> forward to the server
//	          (sees only ciphertexts: "knows which report comes from
//	          which user, but does not know the content")
//	server:   decrypt -> aggregate -> estimate
//	          (cannot link reports to users: they arrived shuffled)
//
// Wire format: every message is a transport.WriteFrame frame. A user
// report frame is the ECIES encryption (server's key) of the 8-byte
// little-endian report word (ldp.WordEncoder). The shuffler's output
// to the server is the same frames in permuted order.
//
// The User/Shuffler/Server types here are the single-connection
// reference parties for that wire format; the production path —
// concurrent connections, streaming batches, mid-stream snapshots —
// lives in internal/service, and RunPipeline runs on top of it.
//
// This package covers only the BASIC one-shuffler model. The paper's
// hardened protocol — PEOS, with R >= 2 shufflers, secret-shared
// reports, joint fake injection, and the encrypted oblivious shuffle
// (§VI, Algorithm 1) — has its own deployable face in
// internal/cluster: real shuffler and analyzer nodes exchanging the
// protocol's messages over TCP, driven by cmd/shuffled's
// shuffler/analyzer/client subcommands and demonstrated by
// examples/peos_cluster.
package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
	"shuffledp/internal/service"
	"shuffledp/internal/transport"
)

// User is one reporting client.
type User struct {
	// FO randomizes the value.
	FO ldp.FrequencyOracle
	// ServerKey encrypts the report end-to-end past the shuffler.
	ServerKey *ecies.PublicKey
	// Rand drives the LDP randomization.
	Rand *rng.Rand

	enc *ldp.WordEncoder
}

// NewUser prepares a client for the oracle.
func NewUser(fo ldp.FrequencyOracle, serverKey *ecies.PublicKey, r *rng.Rand) (*User, error) {
	enc, err := ldp.NewWordEncoder(fo)
	if err != nil {
		return nil, err
	}
	if serverKey == nil || r == nil {
		return nil, errors.New("netproto: user needs a server key and randomness")
	}
	return &User{FO: fo, ServerKey: serverKey, Rand: r, enc: enc}, nil
}

// Report randomizes v and writes one encrypted report frame to conn
// (typically the user's connection to the shuffler).
func (u *User) Report(conn io.Writer, v int) error {
	rep := u.FO.Randomize(v, u.Rand)
	var payload [8]byte
	binary.LittleEndian.PutUint64(payload[:], u.enc.Encode(rep))
	ct, err := ecies.Encrypt(u.ServerKey, payload[:])
	if err != nil {
		return fmt.Errorf("netproto: user encrypt: %w", err)
	}
	return transport.WriteFrame(conn, ct)
}

// Shuffler is the single auxiliary server of the basic model.
type Shuffler struct {
	// Rand drives the permutation.
	Rand *rng.Rand
}

// Collect reads exactly n report frames from in (the users' side).
func (s *Shuffler) Collect(in io.Reader, n int) ([][]byte, error) {
	reports := make([][]byte, n)
	for i := 0; i < n; i++ {
		frame, err := transport.ReadFrame(in)
		if err != nil {
			return nil, fmt.Errorf("netproto: shuffler read %d: %w", i, err)
		}
		reports[i] = frame
	}
	return reports, nil
}

// Forward permutes the collected reports and writes them to out (the
// server's connection). This break of the user-to-report linkage is the
// shuffler's entire job.
func (s *Shuffler) Forward(out io.Writer, reports [][]byte) error {
	if s.Rand == nil {
		return errors.New("netproto: shuffler needs randomness")
	}
	s.Rand.Shuffle(len(reports), func(i, j int) {
		reports[i], reports[j] = reports[j], reports[i]
	})
	for i, rep := range reports {
		if err := transport.WriteFrame(out, rep); err != nil {
			return fmt.Errorf("netproto: shuffler forward %d: %w", i, err)
		}
	}
	return nil
}

// Server is the analysis endpoint.
type Server struct {
	// FO must match the users' oracle (agreed out of band, as in
	// Algorithm 1's setup).
	FO ldp.FrequencyOracle
	// Key decrypts the reports.
	Key *ecies.PrivateKey

	enc *ldp.WordEncoder
}

// NewServer prepares the analysis endpoint.
func NewServer(fo ldp.FrequencyOracle, key *ecies.PrivateKey) (*Server, error) {
	enc, err := ldp.NewWordEncoder(fo)
	if err != nil {
		return nil, err
	}
	if key == nil {
		return nil, errors.New("netproto: server needs its private key")
	}
	return &Server{FO: fo, Key: key, enc: enc}, nil
}

// Receive reads n shuffled report frames, decrypts them, and returns
// the frequency estimates.
func (s *Server) Receive(in io.Reader, n int) ([]float64, error) {
	reports := make([]ldp.Report, n)
	for i := 0; i < n; i++ {
		frame, err := transport.ReadFrame(in)
		if err != nil {
			return nil, fmt.Errorf("netproto: server read %d: %w", i, err)
		}
		pt, err := ecies.Decrypt(s.Key, frame)
		if err != nil {
			return nil, fmt.Errorf("netproto: server decrypt %d: %w", i, err)
		}
		if len(pt) != 8 {
			return nil, errors.New("netproto: malformed report payload")
		}
		reports[i] = s.enc.Decode(binary.LittleEndian.Uint64(pt))
	}
	counts := ldp.SupportCounts(s.FO, reports)
	p, q, _ := ldp.SupportProbabilities(s.FO)
	return ldp.CalibrateCounts(counts, n, p, q), nil
}

// RunPipeline runs the shuffle model over the streaming ingestion
// service (internal/service): one client connection submits every
// report over an in-memory net.Pipe, the service batches, shuffles,
// decrypts, and aggregates, and the final drained estimate is
// returned. cmd/shuffled runs the same pipeline over TCP with many
// concurrent clients.
//
// Randomization follows the engine's determinism contract: values are
// randomized in ShardSize shards from rng.Substream(seed, shard) (see
// ldp.RandomizeParallel), so for a fixed seed the resulting estimate
// is bit-identical no matter how the reports are later split across
// connections, batches, or workers — RunPipeline is the sequential
// reference the concurrent service is tested against.
func RunPipeline(fo ldp.FrequencyOracle, values []int, seed uint64) ([]float64, error) {
	key, err := ecies.GenerateKey()
	if err != nil {
		return nil, err
	}
	svc, err := service.New(service.Config{
		FO:          fo,
		Key:         key,
		ShuffleSeed: seed + 1,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	clientSide, serverSide := net.Pipe()
	defer clientSide.Close()
	if err := svc.Ingest(serverSide); err != nil {
		return nil, err
	}
	client, err := service.NewClient(fo, key.Public(), nil, clientSide)
	if err != nil {
		return nil, err
	}

	errc := make(chan error, 1)
	go func() {
		for _, rep := range ldp.RandomizeParallel(fo, values, seed, 1) {
			if err := client.SendReport(rep); err != nil {
				errc <- err
				clientSide.Close()
				return
			}
		}
		errc <- client.Close()
	}()

	snap, err := svc.Drain()
	if err != nil {
		return nil, err
	}
	if err := <-errc; err != nil {
		return nil, err
	}
	return snap.Estimates, nil
}
