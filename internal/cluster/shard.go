package cluster

// The sharded analyzer tier (DESIGN.md §13). Shard 0 — the
// coordinator — IS the legacy analyzer: it drives rounds, owns the
// full durable history (it reassembles every round's complete word
// vector, so its WAL, checkpoint, recovery, and estimate paths are
// byte-identical to a single analyzer's), and serves estimates. Shards
// >= 1 are passive window workers wired up by this file:
//
//	hello     the shard dials the coordinator and identifies itself
//	          with its index and partition plan (rejected on mismatch);
//	          shufflers dial the shard's listener with ordinary
//	          shuffler hellos and stream post-shuffle chunk frames
//	shardSeal the coordinator opens collection attempt g over n users;
//	          the shard awaits its cut window's chunk from every
//	          shuffler, reveals it (RevealParallel over the window),
//	          write-ahead logs the words WITHOUT a rotation marker (the
//	          PREPARE of the two-phase commit), and answers shardWords
//	shardCommit once the coordinator's own seal is durable (the commit
//	          point) each shard seals too: rotation marker, checkpoint,
//	          one ledger charge, counts folded — then acks
//
// A shard that crashes between prepare and commit heals at the next
// seal's watermark: a seal for collection c proves the coordinator
// committed every collection below c, so the shard commits its
// prepared windows below c before arming the new one. Recovery keeps
// marker-less WAL words pending for exactly this path. The healing is
// only as durable as the prepare — run shards with store.SyncAlways
// (or the default SyncBatch, whose prepare Commit also fsyncs) so a
// prepared window survives the crash.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"shuffledp/internal/ahe"
	"shuffledp/internal/ldp"
	"shuffledp/internal/oblivious"
	"shuffledp/internal/store"
	"shuffledp/internal/transport"
)

// preparedWindow is a shard's revealed-and-logged (but not yet
// committed) cut of one collection.
type preparedWindow struct {
	// att is the attempt that produced the words; a commit frame for a
	// different attempt of the collection is a protocol violation.
	att uint32
	// restored marks a window replayed from the WAL tail, whose attempt
	// number did not survive the crash: it commits only through the
	// seal watermark, never by a direct commit frame.
	restored bool
	words    []uint64
}

// chunkBuf holds the generation-stamped post-shuffle chunk frames a
// shard's shuffler data links have delivered, until the matching
// attempt collects them.
type chunkBuf struct {
	mu     sync.Mutex
	gens   map[gen]*genChunks
	notify chan struct{}
	done   int64 // commit watermark; chunks at or below are stale
}

// genChunks is one attempt's chunks, by source shuffler.
type genChunks struct {
	plain map[int][]uint64
	enc   map[int][]*ahe.Ciphertext
}

func newChunkBuf() *chunkBuf {
	return &chunkBuf{
		gens:   make(map[gen]*genChunks),
		notify: make(chan struct{}, 1),
		done:   -1,
	}
}

// prune drops every buffered chunk for collections at or below col.
func (b *chunkBuf) prune(col uint32) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if int64(col) > b.done {
		b.done = int64(col)
	}
	for g := range b.gens {
		if int64(g.col) <= b.done {
			delete(b.gens, g)
		}
	}
}

// shardAttempt is one in-flight window attempt on a shard node.
type shardAttempt struct {
	g      gen
	n      int
	cancel chan struct{}
	once   sync.Once
}

func (sa *shardAttempt) abort() { sa.once.Do(func() { close(sa.cancel) }) }

func (sa *shardAttempt) canceled() bool {
	select {
	case <-sa.cancel:
		return true
	default:
		return false
	}
}

// errShardFatal wraps shard-side failures that redialing cannot fix
// (durable-store errors, a broken commit sequence): the shard control
// loop exits instead of reconnecting.
var errShardFatal = errors.New("cluster: fatal shard error")

// readChunks drains one shuffler data link into the chunk buffer
// (shard nodes only). Any malformed frame drops the link; the shuffler
// redials on its next forward.
func (a *Analyzer) readChunks(j int, conn net.Conn) {
	defer a.dropShuffler(j, conn)
	for {
		tag, payload, err := transport.ReadTaggedFrame(conn)
		if err != nil {
			return
		}
		fg, body, err := splitPrefixed(payload)
		if err != nil {
			return
		}
		// Decode outside the buffer lock; ciphertext deserialization is
		// the expensive part.
		var words []uint64
		var cts []*ahe.Ciphertext
		switch tag {
		case tagVector:
			if words, err = transport.DecodeUint64s(body); err != nil {
				return
			}
		case tagEncVector:
			if cts, err = decodeCiphertexts(ahe.PublicKey(a.cfg.Priv), body); err != nil {
				return
			}
		default:
			return
		}
		b := a.chunks
		b.mu.Lock()
		if int64(fg.col) <= b.done {
			b.mu.Unlock()
			continue
		}
		gc := b.gens[fg]
		if gc == nil {
			gc = &genChunks{plain: make(map[int][]uint64), enc: make(map[int][]*ahe.Ciphertext)}
			b.gens[fg] = gc
		}
		if tag == tagVector {
			gc.plain[j] = words
		} else {
			gc.enc[j] = cts
		}
		b.mu.Unlock()
		select {
		case b.notify <- struct{}{}:
		default:
		}
	}
}

// shardRun is a shard node's control loop: keep a live link to the
// coordinator and serve its seal/abort/commit frames until Close (or a
// fatal error). Link loss — including a coordinator restart — cancels
// the in-flight attempt and redials; the prepared windows stay, ready
// for a commit or the seal-watermark healing.
func (a *Analyzer) shardRun() {
	for {
		conn, err := a.connectCoordinator()
		if err != nil {
			return
		}
		err = a.serveCoordinator(conn)
		a.cancelShardAttempt()
		if a.isClosed() || errors.Is(err, errShardFatal) {
			return
		}
	}
}

// connectCoordinator dials shard 0, identifies this shard (index +
// plan), and swaps the fresh link in.
func (a *Analyzer) connectCoordinator() (net.Conn, error) {
	conn, err := dialRetry(a.cfg.Dial, a.cfg.Topology.Coordinator(), a.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	if err := writeShardHello(conn, a.cfg.Shard, a.plan); err != nil {
		conn.Close()
		return nil, err
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		conn.Close()
		return nil, errors.New("cluster: analyzer closed")
	}
	old := a.coord
	a.coord = conn
	a.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return conn, nil
}

// serveCoordinator reads coordinator frames off one link until it
// drops or a frame fails.
func (a *Analyzer) serveCoordinator(conn net.Conn) error {
	for {
		tag, payload, err := transport.ReadTaggedFrame(conn)
		if err != nil {
			return err
		}
		switch tag {
		case tagShardSeal:
			g, n, err := parseShardSeal(payload)
			if err != nil {
				return err
			}
			// The seal proves every collection below g.col committed at
			// the coordinator: heal prepared windows the commit frame
			// never reached (crash or lost link in the commit window).
			if err := a.healThrough(g.col); err != nil {
				return fmt.Errorf("%w: %v", errShardFatal, err)
			}
			a.startShardAttempt(g, n)
		case tagAbort:
			g, err := parseAbortFrame(payload)
			if err != nil {
				return err
			}
			a.abortShardGen(g)
		case tagShardCommit:
			g, err := parseGenFrame(payload)
			if err != nil {
				return err
			}
			if err := a.commitWindow(g); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: coordinator sent tag %d", errBadFrame, tag)
		}
	}
}

// startShardAttempt installs a new window attempt, superseding an
// older generation exactly like a shuffler's startAttempt.
func (a *Analyzer) startShardAttempt(g gen, n int) {
	a.stateMu.Lock()
	sealed := a.collections
	a.stateMu.Unlock()
	if int(g.col) < sealed {
		return // stale seal for a window this shard already committed
	}
	a.mu.Lock()
	prev := a.curShard
	if prev != nil && !prev.g.less(g) {
		a.mu.Unlock()
		return
	}
	cur := &shardAttempt{g: g, n: n, cancel: make(chan struct{})}
	a.curShard = cur
	a.mu.Unlock()
	if prev != nil {
		prev.abort()
	}
	go a.runShardAttempt(cur)
}

// abortShardGen cancels the current window attempt if it matches g.
func (a *Analyzer) abortShardGen(g gen) {
	a.mu.Lock()
	cur := a.curShard
	a.mu.Unlock()
	if cur != nil && cur.g == g {
		cur.abort()
	}
}

// cancelShardAttempt aborts whatever window attempt is in flight.
func (a *Analyzer) cancelShardAttempt() {
	a.mu.Lock()
	cur := a.curShard
	a.mu.Unlock()
	if cur != nil {
		cur.abort()
	}
}

// runShardAttempt reveals the attempt's window, prepares it (WAL, no
// marker), and returns the words to the coordinator. A live failure is
// reported with a fail frame so the coordinator's Collect retries with
// the cause; a canceled attempt dies silently.
func (a *Analyzer) runShardAttempt(sa *shardAttempt) {
	words, err := a.revealWindow(sa)
	if err == nil {
		err = a.prepareWindow(sa, words)
	}
	if err != nil {
		if sa.canceled() || a.isClosed() {
			return
		}
		_ = a.writeCoord(func(w io.Writer) error {
			return transport.WriteTaggedFrame(w, tagFail, prefixed(sa.g, []byte(err.Error())))
		})
		return
	}
	_ = a.writeCoord(func(w io.Writer) error {
		return transport.WriteTaggedFrame(w, tagShardWords, prefixed(sa.g, transport.EncodeUint64s(words)))
	})
}

// revealWindow waits for the attempt's chunk from every shuffler and
// reveals the window (share sum + parallel decryption).
func (a *Analyzer) revealWindow(sa *shardAttempt) ([]uint64, error) {
	r := a.cfg.Topology.R()
	cuts := a.plan.Cuts(sa.n + a.cfg.NR)
	want := cuts[a.cfg.Shard+1] - cuts[a.cfg.Shard]
	var deadline <-chan time.Time
	if a.cfg.CollectTimeout > 0 {
		t := time.NewTimer(a.cfg.CollectTimeout)
		defer t.Stop()
		deadline = t.C
	}
	b := a.chunks
	for {
		b.mu.Lock()
		gc := b.gens[sa.g]
		have := 0
		if gc != nil {
			have = len(gc.plain) + len(gc.enc)
		}
		if have >= r {
			st := &oblivious.State{Plain: make([][]uint64, r), EncHolder: -1}
			for j, ws := range gc.plain {
				if len(ws) != want {
					b.mu.Unlock()
					return nil, fmt.Errorf("%w: shuffler %d chunk has %d words, want %d", errBadFrame, j, len(ws), want)
				}
				st.Plain[j] = ws
			}
			for j, cts := range gc.enc {
				if st.EncHolder >= 0 || st.Plain[j] != nil {
					b.mu.Unlock()
					return nil, fmt.Errorf("%w: conflicting chunk kinds for attempt %d/%d", errBadFrame, sa.g.col, sa.g.att)
				}
				if len(cts) != want {
					b.mu.Unlock()
					return nil, fmt.Errorf("%w: shuffler %d ciphertext chunk has %d elements, want %d", errBadFrame, j, len(cts), want)
				}
				st.Enc = cts
				st.EncHolder = j
			}
			b.mu.Unlock()
			if st.EncHolder < 0 {
				return nil, errors.New("cluster: no shuffler delivered the encrypted chunk")
			}
			return oblivious.RevealParallel(st, a.mod, a.cfg.Priv, a.cfg.Workers)
		}
		b.mu.Unlock()
		if a.isClosed() {
			return nil, errors.New("cluster: analyzer closed")
		}
		select {
		case <-b.notify:
		case <-sa.cancel:
			return nil, errAttemptAborted
		case <-deadline:
			return nil, fmt.Errorf("cluster: shard %d received %d of %d chunks for collection %d", a.cfg.Shard, have, r, sa.g.col)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// prepareWindow write-ahead logs the revealed words withOUT a rotation
// marker — the prepare of the two-phase commit — and files them for
// the coordinator's commit.
func (a *Analyzer) prepareWindow(sa *shardAttempt, words []uint64) error {
	if sa.canceled() {
		return errAttemptAborted
	}
	if a.st != nil {
		if err := a.st.AppendReport(sa.g.col, transport.EncodeUint64s(words)); err != nil {
			return err
		}
		if err := a.st.Commit(); err != nil {
			return err
		}
	}
	a.mu.Lock()
	// A superseded attempt that limped through its reveal must not
	// clobber its successor's prepared window (the WAL record it wrote
	// is harmless: last record wins, and only the current attempt's
	// window is offered for commit).
	if a.curShard != sa {
		a.mu.Unlock()
		return errAttemptAborted
	}
	a.preparedW[sa.g.col] = &preparedWindow{att: sa.g.att, words: words}
	a.mu.Unlock()
	return nil
}

// commitWindow handles the coordinator's commit frame: seal the
// prepared window durably and ack.
func (a *Analyzer) commitWindow(g gen) error {
	a.mu.Lock()
	pw := a.preparedW[g.col]
	a.mu.Unlock()
	if pw == nil || pw.restored || pw.att != g.att {
		return fmt.Errorf("%w: commit for collection %d attempt %d, which this shard never prepared", errBadFrame, g.col, g.att)
	}
	if err := a.sealWindow(g.col, pw.words, true); err != nil {
		return fmt.Errorf("%w: %v", errShardFatal, err)
	}
	a.mu.Lock()
	delete(a.preparedW, g.col)
	a.mu.Unlock()
	a.chunks.prune(g.col)
	return a.writeCoord(func(w io.Writer) error {
		return writeGenFrame(w, tagShardAck, g)
	})
}

// healThrough commits, in order, every prepared window below col: the
// coordinator sealed those collections (or it could not be sealing
// col), their commit frames just never arrived. A gap — a collection
// below col with no prepared window and no committed seal — is
// unrecoverable: the shard's cut of that round exists nowhere.
func (a *Analyzer) healThrough(col uint32) error {
	a.mu.Lock()
	var cols []uint32
	for c := range a.preparedW {
		if c < col {
			cols = append(cols, c)
		}
	}
	a.mu.Unlock()
	sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
	for _, c := range cols {
		a.mu.Lock()
		pw := a.preparedW[c]
		a.mu.Unlock()
		a.stateMu.Lock()
		sealed := a.collections
		a.stateMu.Unlock()
		if int(c) < sealed {
			// Already committed (a duplicate prepare survived); drop it.
			a.mu.Lock()
			delete(a.preparedW, c)
			a.mu.Unlock()
			continue
		}
		if int(c) != sealed {
			return fmt.Errorf("cluster: shard %d cannot heal collection %d with %d windows committed (an earlier window was lost)", a.cfg.Shard, c, sealed)
		}
		if err := a.sealWindow(c, pw.words, true); err != nil {
			return err
		}
		a.mu.Lock()
		delete(a.preparedW, c)
		a.mu.Unlock()
		a.chunks.prune(c)
	}
	return nil
}

// sealWindow is a shard's commit: one ledger charge, the rotation
// marker (live only — a replay's marker is already durable), the
// counts fold, and a fresh checkpoint. The shard's cumulative state
// uses window semantics: reals accumulates revealed WORDS (its cut of
// users and fakes alike) and fakes stays 0 — ShardCounts is the
// meaningful output, and it merges exactly into the coordinator's
// counts.
func (a *Analyzer) sealWindow(collection uint32, words []uint64, persist bool) error {
	if a.cfg.Ledger != nil {
		if err := a.cfg.Ledger.Charge(); err != nil {
			return fmt.Errorf("cluster: charging shard window %d: %w", collection, err)
		}
	}
	if persist && a.st != nil {
		if err := a.st.Rotate(collection, int64(collection)+1); err != nil {
			return err
		}
	}
	reports := make([]ldp.Report, len(words))
	for i, w := range words {
		reports[i] = a.enc.Decode(w)
	}
	colCounts := ldp.SupportCounts(a.cfg.FO, reports)
	a.stateMu.Lock()
	for v, c := range colCounts {
		a.counts[v] += c
	}
	a.reals += len(words)
	a.collections = int(collection) + 1
	a.stateMu.Unlock()
	if a.st != nil {
		return a.writeCheckpoint()
	}
	return nil
}

// restoreShard replays a shard's WAL tail: rotation markers commit
// their windows (recharging the ledger exactly like the live commit),
// and marker-less words — prepared windows whose commit the crash
// swallowed — stay pending for the seal-watermark healing.
func (a *Analyzer) restoreShard(rec *store.Recovered) error {
	pending := map[uint32][]uint64{}
	for _, r := range rec.Tail {
		switch r.Type {
		case store.RecordReport:
			words, err := transport.DecodeUint64s(r.Payload)
			if err != nil {
				return fmt.Errorf("cluster: WAL words for collection %d: %w", r.Epoch, err)
			}
			// Last record wins: each retried attempt prepared its own
			// words record, and the marker (or the coordinator's next
			// seal) commits the newest.
			pending[r.Epoch] = words
		case store.RecordRotate:
			words, ok := pending[r.Epoch]
			if !ok {
				return fmt.Errorf("cluster: WAL commits shard window %d without its words", r.Epoch)
			}
			delete(pending, r.Epoch)
			if int(r.Epoch) != a.collections {
				return fmt.Errorf("cluster: WAL commits shard window %d while %d windows are committed", r.Epoch, a.collections)
			}
			if err := a.sealWindow(r.Epoch, words, false); err != nil {
				return err
			}
		default:
			return fmt.Errorf("cluster: unexpected WAL record type %d in a shard log", r.Type)
		}
	}
	for col, words := range pending {
		a.preparedW[col] = &preparedWindow{restored: true, words: words}
	}
	return nil
}

// writeCoord runs one frame write on the coordinator link under the
// write mutex and a deadline.
func (a *Analyzer) writeCoord(write func(io.Writer) error) error {
	a.mu.Lock()
	conn := a.coord
	a.mu.Unlock()
	if conn == nil {
		return errors.New("cluster: no coordinator link")
	}
	a.coordWMu.Lock()
	defer a.coordWMu.Unlock()
	if a.cfg.CollectTimeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(a.cfg.CollectTimeout)); err != nil {
			return err
		}
		defer conn.SetWriteDeadline(time.Time{})
	}
	return write(conn)
}

// --- coordinator side of the shard links ---

// awaitShardWords reads shard s's revealed window for attempt g
// (skipping stale frames from aborted attempts and late acks).
func (a *Analyzer) awaitShardWords(conn net.Conn, s int, g gen, want int) ([]uint64, error) {
	for {
		if a.cfg.CollectTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(a.cfg.CollectTimeout)); err != nil {
				return nil, err
			}
		}
		tag, payload, err := transport.ReadTaggedFrame(conn)
		if err != nil {
			return nil, fmt.Errorf("reading shard %d words: %w", s, err)
		}
		switch tag {
		case tagShardWords, tagFail:
			fg, body, err := splitPrefixed(payload)
			if err != nil {
				return nil, err
			}
			if fg != g {
				continue
			}
			if tag == tagFail {
				return nil, fmt.Errorf("analyzer shard %d failed: %s", s, body)
			}
			words, err := transport.DecodeUint64s(body)
			if err != nil {
				return nil, err
			}
			if len(words) != want {
				return nil, fmt.Errorf("%w: shard %d window has %d words, want %d", errBadFrame, s, len(words), want)
			}
			return words, nil
		case tagShardAck:
			continue // a late ack from an earlier round's commit
		default:
			return nil, fmt.Errorf("%w: shard %d sent tag %d, want words", errBadFrame, s, tag)
		}
	}
}

// commitShards broadcasts the second commit phase to every shard and
// waits for each ack. It runs after the coordinator's own durable seal
// — the commit point — so any failure here is a hard Collect error:
// the coordinator's round stands and the lagging shard heals from its
// WAL at the next round's watermark.
func (a *Analyzer) commitShards(shards []net.Conn, g gen) error {
	for s := 1; s < len(shards); s++ {
		conn := shards[s]
		if a.cfg.CollectTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(a.cfg.CollectTimeout))
		}
		err := writeGenFrame(conn, tagShardCommit, g)
		conn.SetWriteDeadline(time.Time{})
		if err != nil {
			a.dropShard(s, conn)
			return fmt.Errorf("committing shard %d: %w", s, err)
		}
	}
	for s := 1; s < len(shards); s++ {
		if err := a.awaitShardAck(shards[s], s, g); err != nil {
			a.dropShard(s, shards[s])
			return err
		}
	}
	return nil
}

// awaitShardAck reads one shard's commit ack for attempt g.
func (a *Analyzer) awaitShardAck(conn net.Conn, s int, g gen) error {
	for {
		if a.cfg.CollectTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(a.cfg.CollectTimeout)); err != nil {
				return err
			}
		}
		tag, payload, err := transport.ReadTaggedFrame(conn)
		if err != nil {
			return fmt.Errorf("awaiting shard %d commit ack: %w", s, err)
		}
		switch tag {
		case tagShardAck:
			ag, err := parseGenFrame(payload)
			if err != nil {
				return err
			}
			if ag != g {
				continue
			}
			return nil
		case tagShardWords, tagFail:
			continue // stale traffic from an aborted attempt
		default:
			return fmt.Errorf("%w: shard %d sent tag %d, want an ack", errBadFrame, s, tag)
		}
	}
}
