package cluster

// Partition-boundary properties: every domain location is owned by
// exactly one shard, the proportional cuts tile the report vector
// exactly, and the degenerate shapes — d=1, more analyzers than
// locations, empty shards, non-dividing domain sizes — all validate
// and route correctly. These invariants are what make the sharded
// tier's merge exact (protocol.MergeShardCounts), so they are tested
// directly, not only through the end-to-end conformance suite.

import (
	"bytes"
	"testing"

	"shuffledp/internal/transport"
)

func TestEvenPlanCoversEveryShape(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5, 8, 16, 37} {
		for analyzers := 1; analyzers <= 6; analyzers++ {
			p, err := EvenPlan(d, analyzers)
			if err != nil {
				t.Fatalf("EvenPlan(%d, %d): %v", d, analyzers, err)
			}
			if err := p.Validate(d); err != nil {
				t.Fatalf("EvenPlan(%d, %d) invalid: %v", d, analyzers, err)
			}
			if p.D() != d {
				t.Fatalf("EvenPlan(%d, %d).D() = %d", d, analyzers, p.D())
			}
			// Every location owned exactly once, by the shard whose
			// bounds bracket it.
			perShard := make([]int, analyzers)
			for loc := 0; loc < d; loc++ {
				s := p.Owner(loc)
				if s < 0 || s >= analyzers {
					t.Fatalf("EvenPlan(%d, %d).Owner(%d) = %d", d, analyzers, loc, s)
				}
				if loc < p.Bounds[s] || loc >= p.Bounds[s+1] {
					t.Fatalf("owner %d of location %d contradicts bounds %v", s, loc, p.Bounds)
				}
				perShard[s]++
			}
			total := 0
			for s, c := range perShard {
				if c != p.Bounds[s+1]-p.Bounds[s] {
					t.Fatalf("shard %d owns %d locations, bounds %v say %d", s, c, p.Bounds, p.Bounds[s+1]-p.Bounds[s])
				}
				total += c
			}
			if total != d {
				t.Fatalf("plan %v covers %d of %d locations", p.Bounds, total, d)
			}
			// Balance: an even plan's shard sizes differ by at most one.
			min, max := d, 0
			for s := 0; s < analyzers; s++ {
				size := p.Bounds[s+1] - p.Bounds[s]
				if size < min {
					min = size
				}
				if size > max {
					max = size
				}
			}
			if max-min > 1 {
				t.Fatalf("EvenPlan(%d, %d) unbalanced: %v", d, analyzers, p.Bounds)
			}
		}
	}
	if p, err := EvenPlan(1, 3); err != nil || p.Owner(0) < 0 {
		t.Fatalf("d=1 with 3 analyzers: plan %v err %v", p.Bounds, err)
	}
	if _, err := EvenPlan(0, 1); err == nil {
		t.Fatal("EvenPlan accepted an empty domain")
	}
	if _, err := EvenPlan(8, 0); err == nil {
		t.Fatal("EvenPlan accepted zero analyzers")
	}
	if _, err := EvenPlan(8, maxPlanAnalyzers+1); err == nil {
		t.Fatal("EvenPlan accepted an oversized analyzer count")
	}
}

func TestCutsTileTheVectorExactly(t *testing.T) {
	plans := []PartitionPlan{
		{Analyzers: 1, Bounds: []int{0, 8}},
		{Analyzers: 2, Bounds: []int{0, 3, 8}},
		{Analyzers: 3, Bounds: []int{0, 3, 3, 8}}, // middle shard empty
		{Analyzers: 4, Bounds: []int{0, 1, 1, 1, 1}},
		{Analyzers: 3, Bounds: []int{0, 12, 25, 37}},
	}
	for _, p := range plans {
		if err := p.Validate(p.D()); err != nil {
			t.Fatalf("plan %v: %v", p.Bounds, err)
		}
		for _, total := range []int{0, 1, 2, 7, 100, 101, 4096} {
			cuts := p.Cuts(total)
			if len(cuts) != p.Analyzers+1 {
				t.Fatalf("plan %v: %d cuts for %d shards", p.Bounds, len(cuts), p.Analyzers)
			}
			if cuts[0] != 0 || cuts[p.Analyzers] != total {
				t.Fatalf("plan %v total %d: cuts %v do not span the vector", p.Bounds, total, cuts)
			}
			sum := 0
			for s := 0; s < p.Analyzers; s++ {
				w := cuts[s+1] - cuts[s]
				if w < 0 {
					t.Fatalf("plan %v total %d: negative window %d in %v", p.Bounds, total, s, cuts)
				}
				// A window is proportional to its domain share, within
				// the integer rounding of the two floor divisions.
				exact := float64(total) * float64(p.Bounds[s+1]-p.Bounds[s]) / float64(p.D())
				if float64(w) < exact-1 || float64(w) > exact+1 {
					t.Fatalf("plan %v total %d: window %d is %d words, expected ~%.1f", p.Bounds, total, s, w, exact)
				}
				sum += w
			}
			if sum != total {
				t.Fatalf("plan %v total %d: windows sum to %d", p.Bounds, total, sum)
			}
		}
	}
}

func TestPartitionPlanValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		p    PartitionPlan
		d    int
	}{
		{"no bounds", PartitionPlan{Analyzers: 2}, 8},
		{"length mismatch", PartitionPlan{Analyzers: 2, Bounds: []int{0, 8}}, 8},
		{"nonzero start", PartitionPlan{Analyzers: 1, Bounds: []int{1, 8}}, 8},
		{"wrong end", PartitionPlan{Analyzers: 1, Bounds: []int{0, 7}}, 8},
		{"decreasing", PartitionPlan{Analyzers: 2, Bounds: []int{0, 5, 4}}, 8},
		{"negative bound", PartitionPlan{Analyzers: 2, Bounds: []int{0, -1, 8}}, 8},
		{"zero analyzers", PartitionPlan{Analyzers: 0, Bounds: []int{0}}, 8},
		{"too many analyzers", PartitionPlan{Analyzers: maxPlanAnalyzers + 1, Bounds: make([]int, maxPlanAnalyzers+2)}, 8},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(tc.d); err == nil {
			t.Errorf("%s: Validate accepted %v over domain %d", tc.name, tc.p.Bounds, tc.d)
		}
	}
	if Owner := (PartitionPlan{Analyzers: 1, Bounds: []int{0, 4}}).Owner(9); Owner != -1 {
		t.Fatalf("Owner of an out-of-domain location = %d, want -1", Owner)
	}
}

// FuzzPartitionWire throws arbitrary payloads at the partition-plan
// and shard-hello parsers: no panic, and whatever parses must
// re-encode to the exact payload (the round-trip contract every
// control-frame parser in this package obeys). CI runs a short smoke
// of this target; the checked-in corpus keeps the interesting shapes.
func FuzzPartitionWire(f *testing.F) {
	seedPlans := []PartitionPlan{
		{Analyzers: 1, Bounds: []int{0, 1}},
		{Analyzers: 2, Bounds: []int{0, 3, 8}},
		{Analyzers: 3, Bounds: []int{0, 0, 0, 1}}, // analyzers > d
		{Analyzers: 3, Bounds: []int{0, 3, 3, 8}}, // empty middle shard
		{Analyzers: 2, Bounds: []int{0, 12, 37}},  // non-dividing domain
	}
	for _, p := range seedPlans {
		f.Add(uint8(0), encodePartitionPlan(p))
	}
	var hello bytes.Buffer
	if err := writeShardHello(&hello, 1, seedPlans[1]); err != nil {
		f.Fatal(err)
	}
	if _, payload, err := transport.ReadTaggedFrame(&hello); err == nil {
		f.Add(uint8(1), payload)
	}
	f.Fuzz(func(t *testing.T, kind uint8, payload []byte) {
		switch kind % 2 {
		case 0:
			p, err := parsePartitionPlan(payload)
			if err != nil {
				return
			}
			if err := p.Validate(p.D()); err != nil {
				t.Fatalf("parsePartitionPlan returned an invalid plan %v: %v", p.Bounds, err)
			}
			if re := encodePartitionPlan(p); !bytes.Equal(re, payload) {
				t.Fatalf("plan re-encode mismatch: %x vs %x", re, payload)
			}
		case 1:
			shard, p, err := parseShardHello(payload)
			if err != nil {
				return
			}
			if shard < 1 || shard >= p.Analyzers {
				t.Fatalf("parseShardHello accepted shard %d of %d", shard, p.Analyzers)
			}
			var buf bytes.Buffer
			if err := writeShardHello(&buf, shard, p); err != nil {
				t.Fatal(err)
			}
			_, re, err := transport.ReadTaggedFrame(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re, payload) {
				t.Fatalf("shard hello re-encode mismatch: %x vs %x", re, payload)
			}
		}
	})
}
