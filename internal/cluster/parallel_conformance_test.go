package cluster_test

// TestParallelEOSConformance is the named conformance gate of the
// worker-pooled, chunk-streamed shuffler tier (DESIGN.md §14): every
// combination of per-node worker counts and chunked/unchunked wire —
// including a mixed fleet where only one shuffler chunk-streams, a
// mesh link torn mid-chunk-stream, and a client link torn mid-stream —
// must produce estimates bit-identical to the serial in-process
// protocol.PEOS.Run reference. CI runs this file under -race.

import (
	"net"
	"testing"
	"time"

	"shuffledp/internal/ahe"
	"shuffledp/internal/cluster"
	"shuffledp/internal/faultnet"
	"shuffledp/internal/ldp"
	"shuffledp/internal/protocol"
	"shuffledp/internal/rng"
)

func TestParallelEOSConformance(t *testing.T) {
	const (
		r        = 2
		n        = 30
		d        = 8
		nr       = 4
		fakeSeed = 401
		ldpSeed  = 403
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)
	values := synthValues(n, d, 402)

	// The serial reference every networked variant must reproduce. Each
	// subtest starts a fresh cluster with the same fake seed and the
	// same single collection, so one reference serves them all.
	p, err := protocol.NewPEOS(fo, r, nr, priv, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	p.FakeSource = refFakeSource(fakeSeed, r)
	ref, err := p.Run(values, rng.New(ldpSeed))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Estimates

	// runOnce drives one collection through a fresh cluster and returns
	// the estimates, the attempt count, and the client (for reconnect
	// assertions). A nil dial uses the plain TCP client.
	runOnce := func(t *testing.T, mutateA func(*cluster.AnalyzerConfig), mutateS func(int, *cluster.ShufflerConfig), dial cluster.DialFunc) ([]float64, int, *cluster.Client) {
		t.Helper()
		h := startCluster(t, r, nr, fo, priv, fakeSeed, mutateA, mutateS)
		var cl *cluster.Client
		var err error
		if dial != nil {
			cl, err = cluster.NewClient(cluster.ClientConfig{
				Topology: h.topo,
				FO:       fo,
				Pub:      ahe.PublicKey(priv),
				Source:   rng.New(3),
				Dial:     dial,
				Retry:    chaosRetry(),
			})
		} else {
			cl, err = cluster.DialClient(h.topo, fo, ahe.PublicKey(priv), rng.New(3), 0)
		}
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		if err := cl.SendValues(0, values, rng.New(ldpSeed)); err != nil {
			t.Fatal(err)
		}
		if err := cl.Flush(); err != nil {
			t.Fatal(err)
		}
		col, err := h.analyzer.Collect(n)
		if err != nil {
			t.Fatal(err)
		}
		return col.Estimates, col.Attempts, cl
	}

	// The worker/chunk grid: serial reference wire, parallel crypto with
	// the legacy wire, and parallel crypto with the chunk-streamed wire.
	t.Run("grid", func(t *testing.T) {
		for _, tc := range []struct{ workers, chunk int }{
			{1, 0},
			{2, 16},
			{4, 0},
			{4, 16},
		} {
			got, _, _ := runOnce(t, nil, func(_ int, cfg *cluster.ShufflerConfig) {
				cfg.Workers = tc.workers
				cfg.ChunkWords = tc.chunk
			}, nil)
			if !estimatesEqual(got, want) {
				t.Fatalf("workers=%d chunk=%d diverged from the serial reference:\n net %v\n ref %v",
					tc.workers, tc.chunk, got, want)
			}
		}
	})

	// A mixed fleet: shuffler 0 runs parallel and chunk-streams, shuffler
	// 1 is a legacy serial node. The wire's final-fragment encoding is
	// byte-identical to a legacy frame, so they must interoperate.
	t.Run("mixed-fleet", func(t *testing.T) {
		got, _, _ := runOnce(t, nil, func(j int, cfg *cluster.ShufflerConfig) {
			if j == 0 {
				cfg.Workers = 4
				cfg.ChunkWords = 16
			}
		}, nil)
		if !estimatesEqual(got, want) {
			t.Fatalf("mixed legacy/chunked fleet diverged:\n net %v\n ref %v", got, want)
		}
	})

	// A mesh connection reset mid-chunk-stream (8-word windows, the
	// reset lands inside the streamed vector): the retry must replay the
	// round on a fresh link and still converge bit-identically.
	t.Run("mid-chunk-fault", func(t *testing.T) {
		meshChaos := faultnet.New(faultnet.Config{Plan: func(conn int) faultnet.Fault {
			if conn == 0 {
				return faultnet.Fault{ResetAfter: 180}
			}
			return faultnet.Fault{}
		}})
		var meshAddr string
		got, attempts, _ := runOnce(t, func(cfg *cluster.AnalyzerConfig) {
			cfg.Retry = chaosRetry()
		}, func(j int, cfg *cluster.ShufflerConfig) {
			cfg.Workers = 2
			cfg.ChunkWords = 8
			if j == 1 {
				meshAddr = cfg.Topology.Shufflers[0]
				cfg.Dial = chaosDialTo(meshChaos, meshAddr)
			}
		}, nil)
		if attempts < 2 {
			t.Fatalf("round took %d attempt(s); the mid-chunk reset should have forced a retry", attempts)
		}
		if got := meshChaos.Stats().Resets; got < 1 {
			t.Fatalf("mesh chaos injected %d resets, want >= 1", got)
		}
		if !estimatesEqual(got, want) {
			t.Fatalf("estimates diverged across the mid-chunk fault:\n net %v\n ref %v", got, want)
		}
	})

	// A client link torn mid-stream while the fleet runs parallel and
	// chunked: the client reconnects and resubmits (nonce-deduplicated),
	// and the estimates still match.
	t.Run("chaos-client-link", func(t *testing.T) {
		clientChaos := faultnet.New(faultnet.Config{Plan: func(conn int) faultnet.Fault {
			if conn == 0 {
				return faultnet.Fault{ResetAfter: 500}
			}
			return faultnet.Fault{}
		}})
		var shuf0 string
		mutateS := func(j int, cfg *cluster.ShufflerConfig) {
			cfg.Workers = 4
			cfg.ChunkWords = 8
			if j == 0 {
				shuf0 = cfg.Topology.Shufflers[j]
			}
		}
		// Resolve shuffler 0's address before the client dials: the
		// harness assigns it inside startCluster, so route through a
		// closure that reads it at dial time.
		dial := func(target string, timeout time.Duration) (net.Conn, error) {
			if target == shuf0 {
				return clientChaos.Dial(target, timeout)
			}
			return net.DialTimeout("tcp", target, timeout)
		}
		got, _, cl := runOnce(t, func(cfg *cluster.AnalyzerConfig) {
			cfg.Retry = chaosRetry()
		}, mutateS, dial)
		if got := clientChaos.Stats().Resets; got < 1 {
			t.Fatalf("client chaos injected %d resets, want >= 1", got)
		}
		if cl.Reconnects() < 1 {
			t.Fatal("client never reconnected across the torn link")
		}
		if !estimatesEqual(got, want) {
			t.Fatalf("estimates diverged across the torn client link:\n net %v\n ref %v", got, want)
		}
	})
}
