package cluster_test

// Cross-conformance: the networked PEOS cluster, the in-process
// protocol.PEOS.Run, and the crash-recovered durable tiers
// (cluster.RecoverAnalyzer here, service.Recover in the no-fakes leg)
// must all produce bit-identical estimates for matched seeds. The
// estimates are pure functions of integer support counts, so equality
// is exact — any drift is a protocol bug, not float noise. CI runs
// this file under -race.

import (
	"errors"
	"net"
	"testing"
	"time"

	"shuffledp/internal/ahe"
	"shuffledp/internal/budget"
	"shuffledp/internal/cluster"
	"shuffledp/internal/composition"
	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/protocol"
	"shuffledp/internal/rng"
	"shuffledp/internal/secretshare"
	"shuffledp/internal/service"
	"shuffledp/internal/store"
)

// perCollectionFakeSource gives collection c of shuffler j the fake
// substream (c*r + j) — restartable: a shuffler process started fresh
// for collection c draws the same fakes as the reference run.
func perCollectionFakeSource(fakeSeed uint64, r, c, j int) *rng.Rand {
	return rng.Substream(fakeSeed, uint64(c*r+j))
}

// The durable analyzer leg: collection 0 through a durable analyzer,
// hard crash, RecoverAnalyzer, collection 1 through restarted
// shufflers — and the cumulative estimate must equal the in-process
// protocol estimator over both rounds' reference reports. The budget
// ledger must recover its charge count and refuse a third round.
func TestConformanceCrashRecoveredAnalyzer(t *testing.T) {
	const (
		r        = 2
		n        = 24
		d        = 8
		nr       = 4
		fakeSeed = 81
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)
	dir := t.TempDir()
	newLedger := func() *budget.Ledger {
		l, err := budget.NewLedger(
			composition.Guarantee{Eps: 2, Delta: 2e-9},
			composition.Guarantee{Eps: 1, Delta: 1e-9},
			budget.Naive{},
		)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	// --- Reference: two in-process PEOS runs, fakes aligned per
	// collection, cumulative estimate over the concatenated reports.
	values0 := synthValues(n, d, 82)
	values1 := synthValues(n, d, 83)
	var refReports []ldp.Report
	var refPerRound [][]float64
	for c, values := range [][]int{values0, values1} {
		p, err := protocol.NewPEOS(fo, r, nr, priv, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		c := c
		p.FakeSource = func(j int) secretshare.Source {
			return perCollectionFakeSource(fakeSeed, r, c, j)
		}
		ref, err := p.Run(values, rng.New(90+uint64(c)))
		if err != nil {
			t.Fatal(err)
		}
		refReports = append(refReports, ref.Reports...)
		refPerRound = append(refPerRound, ref.Estimates)
	}
	refCum := protocol.Estimate(fo, refReports, 2*n, 2*nr)

	// --- Collection 0 through a durable cluster.
	h := startCluster(t, r, nr, fo, priv, fakeSeed, func(cfg *cluster.AnalyzerConfig) {
		cfg.DataDir = dir
		cfg.Sync = store.SyncAlways
		cfg.Ledger = newLedger()
	}, func(j int, cfg *cluster.ShufflerConfig) {
		cfg.FakeSource = perCollectionFakeSource(fakeSeed, r, 0, j)
	})
	cl, err := cluster.DialClient(h.topo, fo, ahe.PublicKey(priv), rng.New(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SendValues(0, values0, rng.New(90)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	col0, err := h.analyzer.Collect(n)
	if err != nil {
		t.Fatal(err)
	}
	if !estimatesEqual(col0.Estimates, refPerRound[0]) {
		t.Fatal("collection 0 diverged from the in-process reference")
	}
	cl.Close()

	// --- Power cut. Everything dies; only the data directory survives.
	h.analyzer.Crash()
	for _, sh := range h.shufflers {
		sh.Close()
	}
	for _, errc := range h.runErr {
		select {
		case <-errc:
		case <-time.After(testTimeout):
			t.Fatal("a shuffler Run survived the crash")
		}
	}

	// --- Recover the analyzer on the same topology and restart the
	// shufflers as fresh processes.
	recovered, err := cluster.RecoverAnalyzer(cluster.AnalyzerConfig{
		Topology:       h.topo,
		FO:             fo,
		NR:             nr,
		Priv:           priv,
		DataDir:        dir,
		Sync:           store.SyncAlways,
		Ledger:         newLedger(),
		CollectTimeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if recovered.Collections() != 1 {
		t.Fatalf("recovered %d collections, want 1", recovered.Collections())
	}
	if !estimatesEqual(recovered.Estimates(), refPerRound[0]) {
		t.Fatal("recovered cumulative estimate diverged from collection 0")
	}
	var restarted []*cluster.Shuffler
	restartErr := make([]chan error, r)
	for j := 0; j < r; j++ {
		sh, err := cluster.NewShuffler(cluster.ShufflerConfig{
			Index:       j,
			Topology:    h.topo,
			NR:          nr,
			Pub:         ahe.PublicKey(priv),
			Source:      rng.Substream(fakeSeed, 2000+uint64(j)),
			FakeSource:  perCollectionFakeSource(fakeSeed, r, 1, j),
			SealTimeout: testTimeout,
		})
		if err != nil {
			t.Fatal(err)
		}
		restarted = append(restarted, sh)
		errc := make(chan error, 1)
		restartErr[j] = errc
		go func() { errc <- sh.Run() }()
	}
	defer func() {
		for _, sh := range restarted {
			sh.Close()
		}
	}()

	cl2, err := cluster.DialClient(h.topo, fo, ahe.PublicKey(priv), rng.New(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	cl2.SetCollection(1)
	if err := cl2.SendValues(0, values1, rng.New(91)); err != nil {
		t.Fatal(err)
	}
	if err := cl2.Flush(); err != nil {
		t.Fatal(err)
	}
	col1, err := recovered.Collect(n)
	if err != nil {
		t.Fatal(err)
	}
	if !estimatesEqual(col1.Estimates, refPerRound[1]) {
		t.Fatal("post-recovery collection diverged from the in-process reference")
	}
	if !estimatesEqual(recovered.Estimates(), refCum) {
		t.Fatalf("crash-recovered cumulative estimate diverged:\n net %v\n ref %v", recovered.Estimates(), refCum)
	}

	// The restored ledger spent both collections; a third must be
	// refused with the budget error, not silently collected.
	if _, err := recovered.Collect(n); !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("third collection: want budget.ErrExhausted, got %v", err)
	}
}

// The no-fakes leg ties all three networked tiers together: with
// NR = 0 and the same pre-randomized SOLH reports, the PEOS cluster,
// protocol.PEOS.Run, and a crash-recovered streaming Service
// (service.Recover) are three routes to the same aggregate — and must
// produce bit-identical estimates.
func TestConformanceNoFakesClusterPEOSAndRecoveredService(t *testing.T) {
	const (
		r       = 2
		n       = 60
		d       = 12
		ldpSeed = 7
	)
	priv := sharedKey(t)
	fo := ldp.NewSOLH(d, 4, 2)
	values := synthValues(n, d, 8)
	reports := make([]ldp.Report, n)
	lr := rng.New(ldpSeed)
	for i, v := range values {
		reports[i] = fo.Randomize(v, lr)
	}

	// --- In-process PEOS reference (NR = 0 → Equation (3) calibration).
	p, err := protocol.NewPEOS(fo, r, 0, priv, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := p.Run(values, rng.New(ldpSeed))
	if err != nil {
		t.Fatal(err)
	}

	// --- Networked cluster over the same reports.
	h := startCluster(t, r, 0, fo, priv, 101, nil, nil)
	cl, err := cluster.DialClient(h.topo, fo, ahe.PublicKey(priv), rng.New(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i, rep := range reports {
		if err := cl.SendReport(i, rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	col, err := h.analyzer.Collect(n)
	if err != nil {
		t.Fatal(err)
	}
	if !estimatesEqual(col.Estimates, ref.Estimates) {
		t.Fatalf("cluster diverged from PEOS.Run:\n net %v\n ref %v", col.Estimates, ref.Estimates)
	}

	// --- Crash-recovered streaming service over the same reports.
	key, err := ecies.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	cfg := service.Config{
		FO:      fo,
		Key:     key,
		DataDir: t.TempDir(),
		Sync:    store.SyncAlways,
	}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	send := func(svc *service.Service, from int) (int, error) {
		clientSide, serverSide := net.Pipe()
		if err := svc.Ingest(serverSide); err != nil {
			return from, err
		}
		scl, err := service.NewClient(fo, key.Public(), nil, clientSide)
		if err != nil {
			return from, err
		}
		for i := from; i < len(reports); i++ {
			if err := scl.SendReport(reports[i]); err != nil {
				// The crash below races the sender; resume from the
				// durable count.
				clientSide.Close()
				return i, nil
			}
		}
		return len(reports), scl.Close()
	}
	sent, err := send(svc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sent < len(reports) {
		t.Fatalf("first pass stopped early at %d", sent)
	}
	// Wait until half the stream has at least been read off the wire,
	// then power-cut. How much of it is durable depends on what the
	// shuffler stage had already write-ahead logged — any prefix is a
	// valid crash point; the resume below fills in the rest.
	deadline := time.Now().Add(testTimeout)
	for svc.Snapshot().Received < int64(n/2) {
		if time.Now().After(deadline) {
			t.Fatal("service never accepted half the stream")
		}
		time.Sleep(5 * time.Millisecond)
	}
	svc.Crash()
	svc, err = service.Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	durable := int(svc.Snapshot().Received)
	if durable > n {
		t.Fatalf("recovered %d reports from a %d-report stream", durable, n)
	}
	if sent, err = send(svc, durable); err != nil || sent != len(reports) {
		t.Fatalf("resume pass: sent=%d err=%v", sent, err)
	}
	snap, err := svc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Reports != n {
		t.Fatalf("service aggregated %d reports, want %d", snap.Reports, n)
	}
	if !estimatesEqual(snap.Estimates, ref.Estimates) {
		t.Fatalf("crash-recovered service diverged from PEOS.Run:\n svc %v\n ref %v", snap.Estimates, ref.Estimates)
	}
}
