package cluster

// The domain-partition plan behind analyzer sharding (DESIGN.md §13).
//
// A PartitionPlan splits the d frequency locations into contiguous,
// possibly empty slices — one per analyzer shard. Shard a owns the
// half-open location range [Bounds[a], Bounds[a+1]). Because the
// post-shuffle report vector carries secret shares (the shufflers
// cannot see which location a report supports), the plan cannot route
// individual reports by value; instead it derives proportional CUTS of
// the shuffled vector: shard a decrypts/reveals the window
// [Cuts[a], Cuts[a+1]) of the n+NR words. Support counting is additive
// over any split of the report vector, so summing the per-shard counts
// (protocol.MergeShardCounts) reproduces the single-analyzer counts
// exactly — the bit-identity the conformance suite proves.

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PartitionPlan assigns each analyzer shard a contiguous slice of the
// d domain locations. Bounds has Analyzers+1 entries with Bounds[0]=0,
// Bounds[Analyzers]=d, non-decreasing; shard a owns locations
// [Bounds[a], Bounds[a+1]). Empty slices are legal (analyzers > d).
type PartitionPlan struct {
	// Analyzers is the shard count (≥ 1). Shard 0 is the coordinator.
	Analyzers int
	// Bounds are the partition boundaries over the domain [0, d).
	Bounds []int
}

// maxPlanAnalyzers bounds the shard count a wire frame may carry; it
// exists to keep a malformed hello from allocating unbounded bounds.
const maxPlanAnalyzers = 1 << 12

// EvenPlan returns the balanced partition of d locations across the
// given number of analyzers: shard a owns [a*d/analyzers,
// (a+1)*d/analyzers). Sizes differ by at most one location.
func EvenPlan(d, analyzers int) (PartitionPlan, error) {
	if d < 1 {
		return PartitionPlan{}, fmt.Errorf("cluster: partition needs d >= 1, got %d", d)
	}
	if analyzers < 1 || analyzers > maxPlanAnalyzers {
		return PartitionPlan{}, fmt.Errorf("cluster: analyzers must be in [1, %d], got %d", maxPlanAnalyzers, analyzers)
	}
	bounds := make([]int, analyzers+1)
	for a := range bounds {
		bounds[a] = a * d / analyzers
	}
	return PartitionPlan{Analyzers: analyzers, Bounds: bounds}, nil
}

// Validate checks the structural plan invariants against the domain
// size d: shard count in range, Bounds of the right length, starting
// at 0, ending at d, and non-decreasing.
func (p PartitionPlan) Validate(d int) error {
	if p.Analyzers < 1 || p.Analyzers > maxPlanAnalyzers {
		return fmt.Errorf("cluster: partition plan has %d analyzers, want [1, %d]", p.Analyzers, maxPlanAnalyzers)
	}
	if len(p.Bounds) != p.Analyzers+1 {
		return fmt.Errorf("cluster: partition plan has %d bounds for %d analyzers", len(p.Bounds), p.Analyzers)
	}
	if p.Bounds[0] != 0 {
		return fmt.Errorf("cluster: partition plan starts at %d, want 0", p.Bounds[0])
	}
	if p.Bounds[p.Analyzers] != d {
		return fmt.Errorf("cluster: partition plan ends at %d, want d=%d", p.Bounds[p.Analyzers], d)
	}
	for a := 1; a < len(p.Bounds); a++ {
		if p.Bounds[a] < p.Bounds[a-1] {
			return fmt.Errorf("cluster: partition bound %d decreases (%d < %d)", a, p.Bounds[a], p.Bounds[a-1])
		}
	}
	return nil
}

// D returns the domain size the plan covers (its final bound).
func (p PartitionPlan) D() int {
	if len(p.Bounds) == 0 {
		return 0
	}
	return p.Bounds[len(p.Bounds)-1]
}

// Owner returns the shard index owning domain location loc. Empty
// slices own no locations, so the answer is unique for every
// loc in [0, D()).
func (p PartitionPlan) Owner(loc int) int {
	for a := 0; a < p.Analyzers; a++ {
		if loc >= p.Bounds[a] && loc < p.Bounds[a+1] {
			return a
		}
	}
	return -1
}

// Cuts derives the report-vector split for a round with total words
// (n reports + NR fakes): shard a reveals the window
// [cuts[a], cuts[a+1]). Each shard's window is proportional to its
// share of the domain, the windows are non-overlapping, and they cover
// [0, total) exactly — the properties the partition tests pin down.
func (p PartitionPlan) Cuts(total int) []int {
	d := int64(p.D())
	cuts := make([]int, len(p.Bounds))
	for a, b := range p.Bounds {
		// int64 math: total and the bound are both u32-sized, the
		// product can exceed 32 bits.
		cuts[a] = int(int64(total) * int64(b) / d)
	}
	return cuts
}

// encodePartitionPlan serializes a plan as
// [analyzers u16][bound u32 × (analyzers+1)], the layout embedded in
// the shard hello and exercised by FuzzPartitionWire.
func encodePartitionPlan(p PartitionPlan) []byte {
	buf := make([]byte, 2+4*len(p.Bounds))
	binary.BigEndian.PutUint16(buf[0:2], uint16(p.Analyzers))
	for i, b := range p.Bounds {
		binary.BigEndian.PutUint32(buf[2+4*i:], uint32(b))
	}
	return buf
}

// parsePartitionPlan decodes encodePartitionPlan's layout, enforcing
// the structural invariants (length, first bound 0, monotonicity)
// against a hostile peer; the caller still validates the final bound
// against its own domain size.
func parsePartitionPlan(payload []byte) (PartitionPlan, error) {
	if len(payload) < 2 {
		return PartitionPlan{}, errBadFrame
	}
	analyzers := int(binary.BigEndian.Uint16(payload[0:2]))
	if analyzers < 1 || analyzers > maxPlanAnalyzers {
		return PartitionPlan{}, errBadFrame
	}
	if len(payload) != 2+4*(analyzers+1) {
		return PartitionPlan{}, errBadFrame
	}
	bounds := make([]int, analyzers+1)
	for i := range bounds {
		bounds[i] = int(binary.BigEndian.Uint32(payload[2+4*i:]))
	}
	p := PartitionPlan{Analyzers: analyzers, Bounds: bounds}
	if err := p.Validate(p.D()); err != nil {
		return PartitionPlan{}, errBadFrame
	}
	return p, nil
}

// planEqual reports whether two plans are identical — the check the
// coordinator runs against every shard hello so a topology where the
// operators configured different -partition flags fails fast instead
// of producing silently wrong windows.
func planEqual(a, b PartitionPlan) bool {
	if a.Analyzers != b.Analyzers || len(a.Bounds) != len(b.Bounds) {
		return false
	}
	for i := range a.Bounds {
		if a.Bounds[i] != b.Bounds[i] {
			return false
		}
	}
	return true
}

var errShardPassive = errors.New("cluster: shard analyzers are passive; call Collect on the coordinator (shard 0)")
