package cluster_test

// Domain-partition conformance: the partition-sharded analyzer tier
// must be BIT-IDENTICAL to protocol.PEOS.Run (and therefore to the
// single-analyzer cluster, which is the analyzers=1 row of the matrix)
// at every analyzer count — per round, cumulatively, and through the
// tier-wide merge proof (protocol.MergeShardCounts over every node's
// ShardCounts reproduces the coordinator's counts). The identity must
// survive a mid-round shard crash healed by RecoverAnalyzer and a
// chaos-injected reset of a shard's coordinator link. CI runs this
// file under -race as a named gate.

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"shuffledp/internal/ahe"
	"shuffledp/internal/cluster"
	"shuffledp/internal/faultnet"
	"shuffledp/internal/ldp"
	"shuffledp/internal/protocol"
	"shuffledp/internal/rng"
	"shuffledp/internal/store"
)

// shardHarness is an R-shuffler cluster with a sharded analyzer tier:
// nodes[0] is the coordinator, nodes[1:] the window shards.
type shardHarness struct {
	topo      cluster.Topology
	nodes     []*cluster.Analyzer
	shufflers []*cluster.Shuffler
	runErr    []chan error
}

func (h *shardHarness) coordinator() *cluster.Analyzer { return h.nodes[0] }

// mergedEstimates runs the tier-wide merge proof: sum every node's
// window tally and push it through the shared estimator.
func (h *shardHarness) mergedEstimates(fo ldp.FrequencyOracle) []float64 {
	shards := make([][]int, len(h.nodes))
	for s, node := range h.nodes {
		shards[s] = node.ShardCounts()
	}
	reals, fakes := h.coordinator().Totals()
	return protocol.EstimateCounts(fo, protocol.MergeShardCounts(shards), reals, fakes)
}

// bindShardTopology reserves loopback listeners for r shufflers and
// `analyzers` analyzer shards, all carried in Topology.Analyzers.
func bindShardTopology(t *testing.T, r, analyzers int) (cluster.Topology, []net.Listener, []net.Listener) {
	t.Helper()
	listen := func() net.Listener {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return ln
	}
	topo := cluster.Topology{Shufflers: make([]string, r), Analyzers: make([]string, analyzers)}
	slns := make([]net.Listener, r)
	for j := range slns {
		slns[j] = listen()
		topo.Shufflers[j] = slns[j].Addr().String()
	}
	alns := make([]net.Listener, analyzers)
	for s := range alns {
		alns[s] = listen()
		topo.Analyzers[s] = alns[s].Addr().String()
	}
	return topo, slns, alns
}

// startShardedCluster builds and runs the full sharded cluster:
// `analyzers` analyzer nodes (shard 0 coordinating) plus r shufflers.
func startShardedCluster(t *testing.T, r, analyzers, nr int, fo ldp.FrequencyOracle, priv *ahe.DGKPrivateKey, fakeSeed uint64, mutateA func(int, *cluster.AnalyzerConfig), mutateS func(int, *cluster.ShufflerConfig)) *shardHarness {
	t.Helper()
	topo, slns, alns := bindShardTopology(t, r, analyzers)
	h := &shardHarness{topo: topo}
	for s := 0; s < analyzers; s++ {
		acfg := cluster.AnalyzerConfig{
			Topology:       topo,
			Listener:       alns[s],
			FO:             fo,
			NR:             nr,
			Priv:           priv,
			Shard:          s,
			CollectTimeout: testTimeout,
		}
		if mutateA != nil {
			mutateA(s, &acfg)
		}
		node, err := cluster.NewAnalyzer(acfg)
		if err != nil {
			t.Fatal(err)
		}
		h.nodes = append(h.nodes, node)
	}
	for j := 0; j < r; j++ {
		scfg := cluster.ShufflerConfig{
			Index:       j,
			Topology:    topo,
			Listener:    slns[j],
			NR:          nr,
			Pub:         ahe.PublicKey(priv),
			Source:      rng.Substream(fakeSeed, 1000+uint64(j)),
			FakeSource:  rng.Substream(fakeSeed, uint64(j)),
			SealTimeout: testTimeout,
		}
		if mutateS != nil {
			mutateS(j, &scfg)
		}
		sh, err := cluster.NewShuffler(scfg)
		if err != nil {
			t.Fatal(err)
		}
		h.shufflers = append(h.shufflers, sh)
		errc := make(chan error, 1)
		h.runErr = append(h.runErr, errc)
		go func() { errc <- sh.Run() }()
	}
	t.Cleanup(func() {
		for _, node := range h.nodes {
			node.Close()
		}
		for _, sh := range h.shufflers {
			sh.Close()
		}
	})
	return h
}

// TestShardConformanceMatrix is the headline gate: at every analyzer
// count the sharded cluster's per-round and cumulative estimates are
// bit-identical to protocol.PEOS.Run over matched seeds, and the merge
// proof holds after every round. analyzers=1 is the legacy topology
// expressed through the Analyzers list, so the matrix also pins the
// scale-out path to single-analyzer behavior. With d=8, analyzers=3
// does not divide the domain evenly, so the uneven-cut arithmetic is
// exercised, not just balanced halves.
func TestShardConformanceMatrix(t *testing.T) {
	const (
		r        = 2
		n        = 30
		d        = 8
		nr       = 4
		rounds   = 2
		fakeSeed = 401
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)
	for _, analyzers := range []int{1, 2, 3} {
		analyzers := analyzers
		t.Run(fmt.Sprintf("analyzers=%d", analyzers), func(t *testing.T) {
			h := startShardedCluster(t, r, analyzers, nr, fo, priv, fakeSeed, nil, nil)
			cl, err := cluster.DialClient(h.topo, fo, ahe.PublicKey(priv), rng.New(3), 0)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			p, err := protocol.NewPEOS(fo, r, nr, priv, rng.New(99))
			if err != nil {
				t.Fatal(err)
			}
			p.FakeSource = refFakeSource(fakeSeed, r)

			var allRef []ldp.Report
			for round := 0; round < rounds; round++ {
				values := synthValues(n, d, 410+uint64(round))
				cl.SetCollection(round)
				if err := cl.SendValues(0, values, rng.New(420+uint64(round))); err != nil {
					t.Fatal(err)
				}
				if err := cl.Flush(); err != nil {
					t.Fatal(err)
				}
				col, err := h.coordinator().Collect(n)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				ref, err := p.Run(values, rng.New(420+uint64(round)))
				if err != nil {
					t.Fatal(err)
				}
				if !estimatesEqual(col.Estimates, ref.Estimates) {
					t.Fatalf("round %d diverged from PEOS.Run:\n net %v\n ref %v", round, col.Estimates, ref.Estimates)
				}
				allRef = append(allRef, ref.Reports...)
				if merged := h.mergedEstimates(fo); !estimatesEqual(merged, h.coordinator().Estimates()) {
					t.Fatalf("round %d: merged shard counts diverged from the coordinator:\n merged %v\n coord  %v", round, merged, h.coordinator().Estimates())
				}
			}
			wantCum := protocol.Estimate(fo, allRef, rounds*n, rounds*nr)
			if !estimatesEqual(h.coordinator().Estimates(), wantCum) {
				t.Fatalf("cumulative estimate diverged:\n net %v\n ref %v", h.coordinator().Estimates(), wantCum)
			}
			// Shards are passive: Collect on one must refuse, pointing
			// at the coordinator.
			if analyzers > 1 {
				if _, err := h.nodes[1].Collect(n); err == nil || !strings.Contains(err.Error(), "passive") {
					t.Fatalf("Collect on a shard: %v", err)
				}
			}
		})
	}
}

// TestShardConformanceCrashRecoveredShard crashes a durable window
// shard between rounds, starts the next round while the shard is still
// down (so the round's early attempts run against a dead shard), then
// recovers the shard with RecoverAnalyzer mid-round. The healed round
// — and the cumulative state and merge proof — must stay bit-identical
// to the in-process reference.
func TestShardConformanceCrashRecoveredShard(t *testing.T) {
	const (
		r        = 2
		n        = 24
		d        = 8
		nr       = 4
		fakeSeed = 431
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)
	shardDir := t.TempDir()
	retry := cluster.RetryPolicy{Attempts: 12, BaseBackoff: 25 * time.Millisecond, MaxBackoff: 250 * time.Millisecond}
	h := startShardedCluster(t, r, 2, nr, fo, priv, fakeSeed, func(s int, cfg *cluster.AnalyzerConfig) {
		cfg.Retry = retry
		if s == 1 {
			cfg.DataDir = shardDir
			cfg.Sync = store.SyncAlways
		}
	}, nil)
	cl, err := cluster.DialClient(h.topo, fo, ahe.PublicKey(priv), rng.New(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	p, err := protocol.NewPEOS(fo, r, nr, priv, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	p.FakeSource = refFakeSource(fakeSeed, r)

	// Round 0 completes normally and commits on both analyzer nodes.
	values0 := synthValues(n, d, 432)
	if err := cl.SendValues(0, values0, rng.New(440)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	col0, err := h.coordinator().Collect(n)
	if err != nil {
		t.Fatal(err)
	}
	ref0, err := p.Run(values0, rng.New(440))
	if err != nil {
		t.Fatal(err)
	}
	if !estimatesEqual(col0.Estimates, ref0.Estimates) {
		t.Fatal("round 0 diverged before the crash")
	}

	// Power-cut shard 1, then drive round 1 while it is down.
	h.nodes[1].Crash()
	values1 := synthValues(n, d, 433)
	cl.SetCollection(1)
	if err := cl.SendValues(0, values1, rng.New(441)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	type collectResult struct {
		col cluster.Collection
		err error
	}
	done := make(chan collectResult, 1)
	go func() {
		col, err := h.coordinator().Collect(n)
		done <- collectResult{col, err}
	}()

	// Mid-round, bring the shard back from its WAL on the same address.
	time.Sleep(250 * time.Millisecond)
	recovered, err := cluster.RecoverAnalyzer(cluster.AnalyzerConfig{
		Topology:       h.topo,
		FO:             fo,
		NR:             nr,
		Priv:           priv,
		Shard:          1,
		DataDir:        shardDir,
		Sync:           store.SyncAlways,
		Retry:          retry,
		CollectTimeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if recovered.Collections() != 1 {
		t.Fatalf("recovered shard committed %d windows, want 1", recovered.Collections())
	}
	h.nodes[1] = recovered

	var res collectResult
	select {
	case res = <-done:
	case <-time.After(testTimeout):
		t.Fatal("round 1 never healed after the shard recovery")
	}
	if res.err != nil {
		t.Fatalf("round 1 failed across the shard crash: %v", res.err)
	}
	ref1, err := p.Run(values1, rng.New(441))
	if err != nil {
		t.Fatal(err)
	}
	if !estimatesEqual(res.col.Estimates, ref1.Estimates) {
		t.Fatalf("healed round diverged from PEOS.Run:\n net %v\n ref %v", res.col.Estimates, ref1.Estimates)
	}
	refAll := append(append([]ldp.Report(nil), ref0.Reports...), ref1.Reports...)
	wantCum := protocol.Estimate(fo, refAll, 2*n, 2*nr)
	if !estimatesEqual(h.coordinator().Estimates(), wantCum) {
		t.Fatal("cumulative estimate diverged across the shard crash")
	}
	if merged := h.mergedEstimates(fo); !estimatesEqual(merged, h.coordinator().Estimates()) {
		t.Fatalf("merge proof failed across the shard crash:\n merged %v\n coord  %v", merged, h.coordinator().Estimates())
	}
	if recovered.Collections() != 2 {
		t.Fatalf("recovered shard committed %d windows after the healed round, want 2", recovered.Collections())
	}
}

// TestShardConformanceChaosCoordinatorLink resets the shard's
// coordinator link mid-attempt on a deterministic byte schedule: the
// shard redials, the round retries, and the healed round is still
// bit-identical, with the coordinator's ledger charged exactly once
// despite the extra attempts.
func TestShardConformanceChaosCoordinatorLink(t *testing.T) {
	const (
		r        = 2
		n        = 24
		d        = 8
		nr       = 4
		fakeSeed = 451
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)

	// Conn 0 is the shard's first coordinator link. Its hello (~24B)
	// and the seal it reads (~20B) fit the 70-byte budget; the window's
	// words frame (~128B for 14 words) tears mid-write. faultnet counts
	// both directions against one budget.
	linkChaos := faultnet.New(faultnet.Config{Plan: func(conn int) faultnet.Fault {
		if conn == 0 {
			return faultnet.Fault{ResetAfter: 70}
		}
		return faultnet.Fault{}
	}})

	ledger := testLedger(t)
	h := startShardedCluster(t, r, 2, nr, fo, priv, fakeSeed, func(s int, cfg *cluster.AnalyzerConfig) {
		cfg.Retry = chaosRetry()
		if s == 0 {
			cfg.Ledger = ledger
		}
		if s == 1 {
			cfg.Dial = chaosDialTo(linkChaos, cfg.Topology.Coordinator())
		}
	}, nil)
	cl, err := cluster.DialClient(h.topo, fo, ahe.PublicKey(priv), rng.New(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	values := synthValues(n, d, 452)
	if err := cl.SendValues(0, values, rng.New(453)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	col, err := h.coordinator().Collect(n)
	if err != nil {
		t.Fatalf("round never healed from the shard-link reset: %v", err)
	}
	if col.Attempts < 2 {
		t.Fatalf("round took %d attempt(s); the shard-link reset should have forced a retry", col.Attempts)
	}
	if got := linkChaos.Stats().Resets; got < 1 {
		t.Fatalf("shard-link chaos injected %d resets, want >= 1", got)
	}
	p, err := protocol.NewPEOS(fo, r, nr, priv, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	p.FakeSource = refFakeSource(fakeSeed, r)
	ref, err := p.Run(values, rng.New(453))
	if err != nil {
		t.Fatal(err)
	}
	if !estimatesEqual(col.Estimates, ref.Estimates) {
		t.Fatal("estimates diverged across the shard-link reset")
	}
	if merged := h.mergedEstimates(fo); !estimatesEqual(merged, h.coordinator().Estimates()) {
		t.Fatal("merge proof failed across the shard-link reset")
	}
	if got := ledger.Epochs(); got != 1 {
		t.Fatalf("retried round charged the coordinator ledger %d times, want 1", got)
	}
}

// A topology naming ONE analyzer through the Analyzers list must
// behave exactly like the legacy singular Analyzer field — the
// regression test for generalizing every address consumer.
func TestSingleElementAnalyzersListMatchesLegacyField(t *testing.T) {
	const (
		r        = 2
		n        = 20
		d        = 8
		nr       = 2
		fakeSeed = 471
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)
	values := synthValues(n, d, 472)

	run := func(t *testing.T, topo cluster.Topology, coord *cluster.Analyzer) []float64 {
		t.Helper()
		cl, err := cluster.DialClient(topo, fo, ahe.PublicKey(priv), rng.New(3), 0)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.SendValues(0, values, rng.New(473)); err != nil {
			t.Fatal(err)
		}
		if err := cl.Flush(); err != nil {
			t.Fatal(err)
		}
		col, err := coord.Collect(n)
		if err != nil {
			t.Fatal(err)
		}
		return col.Estimates
	}
	lh := startCluster(t, r, nr, fo, priv, fakeSeed, nil, nil)
	legacy := run(t, lh.topo, lh.analyzer)
	sh := startShardedCluster(t, r, 1, nr, fo, priv, fakeSeed, nil, nil)
	listed := run(t, sh.topo, sh.coordinator())
	if !estimatesEqual(legacy, listed) {
		t.Fatalf("a 1-element Analyzers list diverged from the legacy Analyzer field:\n list   %v\n legacy %v", listed, legacy)
	}

	// Both spellings at once is a configuration error.
	bad := cluster.Topology{Shufflers: []string{"a", "b"}, Analyzer: "c", Analyzers: []string{"c"}}
	if _, err := cluster.NewAnalyzer(cluster.AnalyzerConfig{Topology: bad, FO: fo, Priv: priv}); err == nil {
		t.Fatal("a topology with both Analyzer and Analyzers was accepted")
	}
}
