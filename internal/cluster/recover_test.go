package cluster_test

// WAL-tail recovery: the crash window the analyzer cannot be driven
// into from the outside is "rotation marker durable, checkpoint lost".
// These tests build that exact on-disk state through the store layer
// and assert RecoverAnalyzer replays the seal — merging the logged
// words, re-charging the ledger, and re-writing the checkpoint — and
// that a words record without its marker (the collection never
// completed) is dropped.

import (
	"net"
	"testing"

	"shuffledp/internal/budget"
	"shuffledp/internal/cluster"
	"shuffledp/internal/composition"
	"shuffledp/internal/ldp"
	"shuffledp/internal/protocol"
	"shuffledp/internal/store"
	"shuffledp/internal/transport"
)

// analyzerTopo is a syntactically valid topology for recovery tests
// that never dial anything.
func analyzerTopo(t *testing.T) cluster.Topology {
	t.Helper()
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := aln.Addr().String()
	aln.Close()
	return cluster.Topology{Shufflers: []string{"127.0.0.1:1", "127.0.0.1:2"}, Analyzer: addr}
}

func TestRecoverAnalyzerReplaysWALTail(t *testing.T) {
	const (
		d  = 8
		n  = 10
		nr = 3
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)
	dir := t.TempDir()

	// The sealed collection's decoded words: n user reports (GRR words
	// are the bare values) plus nr fake words, which decode modulo the
	// group order like any protocol word.
	words := make([]uint64, 0, n+nr)
	for i := 0; i < n; i++ {
		words = append(words, uint64(i%d))
	}
	words = append(words, 1, 0xdeadbeef, 1<<40)

	st, err := store.Create(dir, store.Meta{Oracle: fo.Name(), Domain: fo.Domain()}, store.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReport(0, transport.EncodeUint64s(words)); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	// Marker durable, checkpoint never written — the mid-seal crash.
	if err := st.Rotate(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ledger, err := budget.NewLedger(
		composition.Guarantee{Eps: 3, Delta: 3e-9},
		composition.Guarantee{Eps: 1, Delta: 1e-9},
		budget.Naive{},
	)
	if err != nil {
		t.Fatal(err)
	}
	a, err := cluster.RecoverAnalyzer(cluster.AnalyzerConfig{
		Topology: analyzerTopo(t),
		FO:       fo,
		NR:       nr,
		Priv:     priv,
		DataDir:  dir,
		Sync:     store.SyncAlways,
		Ledger:   ledger,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Collections() != 1 {
		t.Fatalf("replayed %d collections, want 1", a.Collections())
	}
	reals, fakes := a.Totals()
	if reals != n || fakes != nr {
		t.Fatalf("replayed totals (%d, %d), want (%d, %d)", reals, fakes, n, nr)
	}
	if ledger.Epochs() != 1 {
		t.Fatalf("ledger recharged %d collections, want 1", ledger.Epochs())
	}
	enc, err := ldp.NewWordEncoder(fo)
	if err != nil {
		t.Fatal(err)
	}
	reports := make([]ldp.Report, len(words))
	for i, w := range words {
		reports[i] = enc.Decode(w)
	}
	want := protocol.Estimate(fo, reports, n, nr)
	if !estimatesEqual(a.Estimates(), want) {
		t.Fatalf("replayed estimate diverged:\n got %v\nwant %v", a.Estimates(), want)
	}
	a.Close()

	// The replay re-wrote the checkpoint: a second recovery sees a
	// clean directory (empty tail) and the same state, charging
	// nothing further.
	ledger2, _ := budget.NewLedger(
		composition.Guarantee{Eps: 3, Delta: 3e-9},
		composition.Guarantee{Eps: 1, Delta: 1e-9},
		budget.Naive{},
	)
	a2, err := cluster.RecoverAnalyzer(cluster.AnalyzerConfig{
		Topology: analyzerTopo(t),
		FO:       fo,
		NR:       nr,
		Priv:     priv,
		DataDir:  dir,
		Sync:     store.SyncAlways,
		Ledger:   ledger2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if a2.Collections() != 1 || ledger2.Epochs() != 1 {
		t.Fatalf("second recovery: %d collections, %d charges", a2.Collections(), ledger2.Epochs())
	}
	if !estimatesEqual(a2.Estimates(), want) {
		t.Fatal("second recovery diverged")
	}
}

// Recovering with a different fake-report count than the state was
// collected under would silently mis-calibrate every estimate; it
// must be refused like any other durable-state mismatch.
func TestRecoverAnalyzerRefusesNRMismatch(t *testing.T) {
	const d = 8
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)
	dir := t.TempDir()
	st, err := store.Create(dir, store.Meta{Oracle: fo.Name(), Domain: fo.Domain()}, store.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReport(0, transport.EncodeUint64s(make([]uint64, 30))); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Rotate(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// First recovery seals the round under NR=24 and checkpoints it.
	a1, err := cluster.RecoverAnalyzer(cluster.AnalyzerConfig{
		Topology: analyzerTopo(t), FO: fo, NR: 24, Priv: priv,
		DataDir: dir, Sync: store.SyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	a1.Close()
	// A second recovery under a different NR must refuse the state.
	if _, err := cluster.RecoverAnalyzer(cluster.AnalyzerConfig{
		Topology: analyzerTopo(t), FO: fo, NR: 12, Priv: priv,
		DataDir: dir, Sync: store.SyncAlways,
	}); err == nil {
		t.Fatal("recovery under a mismatched NR was accepted")
	}
}

// Crash-recover-crash: a words record orphaned by one crash stays in
// the WAL behind the re-run round's authoritative record. Recovery
// must let the later record supersede the orphan — not fail — and
// seal the later one's contents.
func TestRecoverAnalyzerSupersedesOrphanWords(t *testing.T) {
	const (
		d  = 8
		n  = 27
		nr = 3
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)
	dir := t.TempDir()
	st, err := store.Create(dir, store.Meta{Oracle: fo.Name(), Domain: fo.Domain()}, store.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	orphan := make([]uint64, n+nr) // all value 0
	authoritative := make([]uint64, n+nr)
	for i := range authoritative {
		authoritative[i] = 2
	}
	if err := st.AppendReport(0, transport.EncodeUint64s(orphan)); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReport(0, transport.EncodeUint64s(authoritative)); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Rotate(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := cluster.RecoverAnalyzer(cluster.AnalyzerConfig{
		Topology: analyzerTopo(t), FO: fo, NR: nr, Priv: priv,
		DataDir: dir, Sync: store.SyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Collections() != 1 {
		t.Fatalf("replayed %d collections, want 1", a.Collections())
	}
	// All authoritative words were value 2; the orphan's zeros must
	// have left no trace in the estimate.
	enc, err := ldp.NewWordEncoder(fo)
	if err != nil {
		t.Fatal(err)
	}
	reports := make([]ldp.Report, len(authoritative))
	for i, w := range authoritative {
		reports[i] = enc.Decode(w)
	}
	if want := protocol.Estimate(fo, reports, n, nr); !estimatesEqual(a.Estimates(), want) {
		t.Fatalf("recovery did not seal the authoritative record:\n got %v\nwant %v", a.Estimates(), want)
	}
}

func TestRecoverAnalyzerDropsUnsealedWords(t *testing.T) {
	const nr = 2
	priv := sharedKey(t)
	fo := ldp.NewGRR(8, 2)
	dir := t.TempDir()
	st, err := store.Create(dir, store.Meta{Oracle: fo.Name(), Domain: fo.Domain()}, store.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	// Words logged, no rotation marker: the collection never sealed,
	// so its Collect never returned success and recovery must drop it.
	if err := st.AppendReport(0, transport.EncodeUint64s([]uint64{1, 2, 3, 4, 5})); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := cluster.RecoverAnalyzer(cluster.AnalyzerConfig{
		Topology: analyzerTopo(t),
		FO:       fo,
		NR:       nr,
		Priv:     priv,
		DataDir:  dir,
		Sync:     store.SyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Collections() != 0 {
		t.Fatalf("unsealed words produced %d collections", a.Collections())
	}
	if reals, fakes := a.Totals(); reals != 0 || fakes != 0 {
		t.Fatalf("unsealed words merged: (%d, %d)", reals, fakes)
	}
}

// TestRecoverAnalyzerReplaysInterruptedRetry covers the ledger
// idempotence of a retried round end to end: a collection whose first
// attempts were aborted by faults still seals exactly once, so its WAL
// footprint is one words record plus one rotation marker — identical
// to a clean round, because aborted attempts write nothing durable.
// The test builds a checkpointed first collection, then appends a
// second collection's seal through the store layer and "crashes"
// before its checkpoint (the retried round's worst-case window), and
// asserts recovery charges the ledger exactly once for the tail:
// Restore(1) from the checkpoint plus a single re-charge, never one
// charge per attempt.
func TestRecoverAnalyzerReplaysInterruptedRetry(t *testing.T) {
	const (
		d  = 8
		n  = 10
		nr = 3
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)
	dir := t.TempDir()
	meta := store.Meta{Oracle: fo.Name(), Domain: fo.Domain()}

	words := func(base uint64) []uint64 {
		ws := make([]uint64, 0, n+nr)
		for i := 0; i < n; i++ {
			ws = append(ws, (base+uint64(i))%d)
		}
		return append(ws, 2, 0xfeedface, 1<<41)
	}
	col0, col1 := words(0), words(5)

	st, err := store.Create(dir, meta, store.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReport(0, transport.EncodeUint64s(col0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Rotate(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	newLedger := func() *budget.Ledger {
		l, err := budget.NewLedger(
			composition.Guarantee{Eps: 3, Delta: 3e-9},
			composition.Guarantee{Eps: 1, Delta: 1e-9},
			budget.Naive{},
		)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	// First recovery seals collection 0 and writes the checkpoint
	// (LedgerCharged = 1) — the durable baseline the retried round
	// builds on.
	ledger := newLedger()
	a, err := cluster.RecoverAnalyzer(cluster.AnalyzerConfig{
		Topology: analyzerTopo(t),
		FO:       fo,
		NR:       nr,
		Priv:     priv,
		DataDir:  dir,
		Sync:     store.SyncAlways,
		Ledger:   ledger,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Collections() != 1 || ledger.Epochs() != 1 {
		t.Fatalf("baseline recovery: %d collections, %d charges", a.Collections(), ledger.Epochs())
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Collection 1 retries, eventually seals, and the process dies
	// after the rotation marker but before the checkpoint. However many
	// attempts the round took, the WAL carries the seal once.
	st, _, err = store.Open(dir, meta, store.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReport(1, transport.EncodeUint64s(col1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Rotate(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ledger2 := newLedger()
	a2, err := cluster.RecoverAnalyzer(cluster.AnalyzerConfig{
		Topology: analyzerTopo(t),
		FO:       fo,
		NR:       nr,
		Priv:     priv,
		DataDir:  dir,
		Sync:     store.SyncAlways,
		Ledger:   ledger2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if a2.Collections() != 2 {
		t.Fatalf("recovered %d collections, want 2", a2.Collections())
	}
	if ledger2.Epochs() != 2 {
		t.Fatalf("ledger charged %d epochs, want exactly 2 (checkpoint restore + one tail re-charge)", ledger2.Epochs())
	}
	reals, fakes := a2.Totals()
	if reals != 2*n || fakes != 2*nr {
		t.Fatalf("recovered totals (%d, %d), want (%d, %d)", reals, fakes, 2*n, 2*nr)
	}
	enc, err := ldp.NewWordEncoder(fo)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]uint64{}, col0...), col1...)
	reports := make([]ldp.Report, len(all))
	for i, w := range all {
		reports[i] = enc.Decode(w)
	}
	want := protocol.Estimate(fo, reports, 2*n, 2*nr)
	if !estimatesEqual(a2.Estimates(), want) {
		t.Fatalf("recovered estimate diverged:\n got %v\nwant %v", a2.Estimates(), want)
	}
}
