package cluster_test

// Chaos conformance: the self-healing cluster must survive injected
// transport faults — mid-EOS connection resets, client disconnects,
// control-link resets — with NO manual intervention, and the final
// estimates must stay bit-identical to the in-process
// protocol.PEOS.Run reference while the privacy ledger is charged
// exactly once per sealed collection. Faults come from the
// deterministic internal/faultnet layer, so every failure here replays
// exactly. CI runs this file under -race.

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"shuffledp/internal/ahe"
	"shuffledp/internal/budget"
	"shuffledp/internal/cluster"
	"shuffledp/internal/composition"
	"shuffledp/internal/faultnet"
	"shuffledp/internal/ldp"
	"shuffledp/internal/protocol"
	"shuffledp/internal/rng"
	"shuffledp/internal/store"
	"shuffledp/internal/transport"
)

// chaosRetry is the retry policy the chaos tests run under: enough
// attempts to outlast the planned faults, short backoffs to keep the
// suite fast.
func chaosRetry() cluster.RetryPolicy {
	return cluster.RetryPolicy{Attempts: 6, BaseBackoff: 25 * time.Millisecond, MaxBackoff: 250 * time.Millisecond}
}

// chaosDialTo routes dials to one address through a faultnet network
// and everything else over plain TCP, so a test can break exactly one
// link class (say, the peer mesh) while the rest of the cluster stays
// healthy.
func chaosDialTo(n *faultnet.Network, addr string) cluster.DialFunc {
	return func(target string, timeout time.Duration) (net.Conn, error) {
		if target == addr {
			return n.Dial(target, timeout)
		}
		return net.DialTimeout("tcp", target, timeout)
	}
}

func testLedger(t *testing.T) *budget.Ledger {
	t.Helper()
	l, err := budget.NewLedger(
		composition.Guarantee{Eps: 10, Delta: 1e-8},
		composition.Guarantee{Eps: 1, Delta: 1e-9},
		budget.Naive{},
	)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// The acceptance scenario: a seeded fault schedule resets the first
// peer-mesh connection mid-EOS (the first oblivious-shuffle vector is
// ~290 bytes; the reset tears it at byte 180) and resets the client's
// first connection to shuffler 0 mid-stream (forcing a reconnect and a
// full resubmit, deduplicated by nonce). The cluster must complete
// both collections without intervention, bit-identical to
// protocol.PEOS.Run, with the ledger charged exactly once per
// collection.
func TestChaosClusterSelfHealsBitIdentical(t *testing.T) {
	const (
		r        = 2
		n        = 30
		d        = 8
		nr       = 4
		fakeSeed = 201
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)

	// Conn 0 of each schedule is the first dial through that network:
	// the mesh's attempt-0 connection, the client's initial connection.
	meshChaos := faultnet.New(faultnet.Config{Plan: func(conn int) faultnet.Fault {
		if conn == 0 {
			return faultnet.Fault{ResetAfter: 180}
		}
		return faultnet.Fault{}
	}})
	clientChaos := faultnet.New(faultnet.Config{Plan: func(conn int) faultnet.Fault {
		if conn == 0 {
			return faultnet.Fault{ResetAfter: 500}
		}
		return faultnet.Fault{}
	}})

	ledger := testLedger(t)
	h := startCluster(t, r, nr, fo, priv, fakeSeed, func(cfg *cluster.AnalyzerConfig) {
		cfg.Retry = chaosRetry()
		cfg.Ledger = ledger
	}, func(j int, cfg *cluster.ShufflerConfig) {
		if j == 1 {
			// Shuffler 1 dials shuffler 0's mesh; only that link chaoses.
			cfg.Dial = chaosDialTo(meshChaos, cfg.Topology.Shufflers[0])
		}
	})
	cl, err := cluster.NewClient(cluster.ClientConfig{
		Topology: h.topo,
		FO:       fo,
		Pub:      ahe.PublicKey(priv),
		Source:   rng.New(3),
		Dial:     chaosDialTo(clientChaos, h.topo.Shufflers[0]),
		Retry:    chaosRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	p, err := protocol.NewPEOS(fo, r, nr, priv, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	p.FakeSource = refFakeSource(fakeSeed, r)

	var allRef []ldp.Report
	attempts := make([]int, 2)
	for round := 0; round < 2; round++ {
		values := synthValues(n, d, 210+uint64(round))
		cl.SetCollection(round)
		if err := cl.SendValues(0, values, rng.New(220+uint64(round))); err != nil {
			t.Fatalf("round %d send: %v", round, err)
		}
		if err := cl.Flush(); err != nil {
			t.Fatalf("round %d flush: %v", round, err)
		}
		col, err := h.analyzer.Collect(n)
		if err != nil {
			t.Fatalf("round %d never healed: %v", round, err)
		}
		attempts[round] = col.Attempts
		ref, err := p.Run(values, rng.New(220+uint64(round)))
		if err != nil {
			t.Fatal(err)
		}
		if !estimatesEqual(col.Estimates, ref.Estimates) {
			t.Fatalf("round %d estimates diverged under chaos:\n net %v\n ref %v", round, col.Estimates, ref.Estimates)
		}
		allRef = append(allRef, ref.Reports...)
	}

	wantCum := protocol.Estimate(fo, allRef, 2*n, 2*nr)
	if !estimatesEqual(h.analyzer.Estimates(), wantCum) {
		t.Fatalf("cumulative estimate diverged under chaos:\n net %v\n ref %v", h.analyzer.Estimates(), wantCum)
	}
	if attempts[0] < 2 {
		t.Fatalf("collection 0 took %d attempt(s); the planned mesh reset should have forced a retry", attempts[0])
	}
	if got := meshChaos.Stats().Resets; got < 1 {
		t.Fatalf("mesh chaos injected %d resets, want >= 1", got)
	}
	if got := clientChaos.Stats().Resets; got < 1 {
		t.Fatalf("client chaos injected %d resets, want >= 1", got)
	}
	if cl.Reconnects() < 1 {
		t.Fatal("client never reconnected; the planned reset should have forced a resubmit")
	}
	if got := ledger.Epochs(); got != 2 {
		t.Fatalf("ledger charged %d epochs for 2 sealed collections (retries must not double-charge)", got)
	}
}

// A reset on the shuffler->analyzer control link mid-round must heal
// end to end: the shuffler redials the analyzer, the analyzer swaps
// the fresh link in by hello index and retries the round on it.
func TestChaosControlLinkResetReconnects(t *testing.T) {
	const (
		r        = 2
		n        = 24
		d        = 8
		nr       = 4
		fakeSeed = 231
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)

	// Budget 45 on shuffler 0's first control connection: the hello
	// (~9B) and the first seal (~20B) pass, then the round's vector
	// forward (~300B) tears mid-frame.
	ctrlChaos := faultnet.New(faultnet.Config{Plan: func(conn int) faultnet.Fault {
		if conn == 0 {
			return faultnet.Fault{ResetAfter: 45}
		}
		return faultnet.Fault{}
	}})

	h := startCluster(t, r, nr, fo, priv, fakeSeed, func(cfg *cluster.AnalyzerConfig) {
		cfg.Retry = chaosRetry()
	}, func(j int, cfg *cluster.ShufflerConfig) {
		if j == 0 {
			cfg.Dial = chaosDialTo(ctrlChaos, cfg.Topology.Analyzer)
		}
	})
	cl, err := cluster.DialClient(h.topo, fo, ahe.PublicKey(priv), rng.New(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	values := synthValues(n, d, 232)
	if err := cl.SendValues(0, values, rng.New(233)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	col, err := h.analyzer.Collect(n)
	if err != nil {
		t.Fatalf("round never healed from the control-link reset: %v", err)
	}
	if col.Attempts < 2 {
		t.Fatalf("round took %d attempt(s); the control-link reset should have forced a retry", col.Attempts)
	}
	if got := ctrlChaos.Stats().Resets; got < 1 {
		t.Fatalf("control chaos injected %d resets, want >= 1", got)
	}

	p, err := protocol.NewPEOS(fo, r, nr, priv, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	p.FakeSource = refFakeSource(fakeSeed, r)
	ref, err := p.Run(values, rng.New(233))
	if err != nil {
		t.Fatal(err)
	}
	if !estimatesEqual(col.Estimates, ref.Estimates) {
		t.Fatal("estimates diverged across the control-link reset")
	}
}

// A connection that sends no hello must be dropped at the configured
// HelloTimeout — it can neither hold a handshake goroutine nor pin the
// node's teardown — and the cluster must keep serving around it.
func TestChaosSilentConnDroppedAtHelloTimeout(t *testing.T) {
	const (
		r        = 2
		n        = 20
		d        = 8
		nr       = 2
		fakeSeed = 241
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)
	h := startCluster(t, r, nr, fo, priv, fakeSeed, func(cfg *cluster.AnalyzerConfig) {
		cfg.HelloTimeout = 100 * time.Millisecond
	}, func(_ int, cfg *cluster.ShufflerConfig) {
		cfg.HelloTimeout = 100 * time.Millisecond
	})

	for name, addr := range map[string]string{"shuffler": h.topo.Shufflers[0], "analyzer": h.topo.Analyzer} {
		silent, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		// Say nothing. The node must close the connection at its hello
		// timeout (~100ms), long before our own 5s read deadline — if
		// our deadline fires instead, the silent connection was never
		// dropped.
		silent.SetReadDeadline(time.Now().Add(5 * time.Second))
		_, err = silent.Read(make([]byte, 1))
		silent.Close()
		if err == nil {
			t.Fatalf("%s answered a silent connection", name)
		}
		if errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("%s never dropped the silent connection", name)
		}
	}

	// The nodes shrugged the silent connections off: a real round still
	// completes.
	cl, err := cluster.DialClient(h.topo, fo, ahe.PublicKey(priv), rng.New(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SendValues(0, synthValues(n, d, 242), rng.New(243)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.analyzer.Collect(n); err != nil {
		t.Fatalf("round failed after silent connections: %v", err)
	}

	// And teardown completes promptly even with a fresh silent
	// connection open.
	lateSilent, err := net.Dial("tcp", h.topo.Shufflers[0])
	if err != nil {
		t.Fatal(err)
	}
	defer lateSilent.Close()
	h.analyzer.Close()
	for _, sh := range h.shufflers {
		sh.Close()
	}
	for j, errc := range h.runErr {
		select {
		case <-errc:
		case <-time.After(testTimeout):
			t.Fatalf("shuffler %d 's Run was pinned past teardown", j)
		}
	}
}

// Exactly-once sealing through a crash: a collection that needed a
// retry charges the durable ledger once and write-ahead logs once, so
// a crash-recovered analyzer reports the same single collection, the
// same single charge, and bit-identical estimates.
func TestChaosRetriedCollectionChargesAndSealsOnce(t *testing.T) {
	const (
		r        = 2
		n        = 24
		d        = 8
		nr       = 4
		fakeSeed = 251
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)
	dir := t.TempDir()

	meshChaos := faultnet.New(faultnet.Config{Plan: func(conn int) faultnet.Fault {
		if conn == 0 {
			return faultnet.Fault{ResetAfter: 180}
		}
		return faultnet.Fault{}
	}})

	ledger := testLedger(t)
	h := startCluster(t, r, nr, fo, priv, fakeSeed, func(cfg *cluster.AnalyzerConfig) {
		cfg.Retry = chaosRetry()
		cfg.Ledger = ledger
		cfg.DataDir = dir
		cfg.Sync = store.SyncAlways
	}, func(j int, cfg *cluster.ShufflerConfig) {
		if j == 1 {
			cfg.Dial = chaosDialTo(meshChaos, cfg.Topology.Shufflers[0])
		}
	})
	cl, err := cluster.DialClient(h.topo, fo, ahe.PublicKey(priv), rng.New(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	values := synthValues(n, d, 252)
	if err := cl.SendValues(0, values, rng.New(253)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	col, err := h.analyzer.Collect(n)
	if err != nil {
		t.Fatalf("round never healed: %v", err)
	}
	if col.Attempts < 2 {
		t.Fatalf("round took %d attempt(s); the planned mesh reset should have forced a retry", col.Attempts)
	}
	if got := ledger.Epochs(); got != 1 {
		t.Fatalf("retried collection charged the ledger %d times, want exactly 1", got)
	}
	live := h.analyzer.Estimates()
	cl.Close()

	// Power cut; only the data directory survives. A fresh ledger
	// restores to exactly one charge — the WAL holds one seal, not one
	// per attempt.
	h.analyzer.Crash()
	for _, sh := range h.shufflers {
		sh.Close()
	}
	ledger2 := testLedger(t)
	topo2, lns2, aln2 := bindTopology(t, r)
	for _, ln := range lns2 {
		ln.Close()
	}
	rec, err := cluster.RecoverAnalyzer(cluster.AnalyzerConfig{
		Topology: topo2,
		Listener: aln2,
		FO:       fo,
		NR:       nr,
		Priv:     priv,
		Ledger:   ledger2,
		DataDir:  dir,
		Sync:     store.SyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Collections() != 1 {
		t.Fatalf("recovered %d collections, want 1", rec.Collections())
	}
	if got := ledger2.Epochs(); got != 1 {
		t.Fatalf("recovered ledger shows %d charges, want exactly 1", got)
	}
	if !estimatesEqual(rec.Estimates(), live) {
		t.Fatal("recovered estimates diverged from the live run")
	}
}

// A short randomized soak: seeded probabilistic resets on the peer
// mesh and the client links, several seeds, two collections each. The
// cluster must converge to the bit-identical reference every time; the
// seeds make any failure replayable.
func TestChaosSoakSeeded(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped with -short")
	}
	const (
		r  = 2
		n  = 20
		d  = 8
		nr = 2
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		fakeSeed := 300 + seed
		meshChaos := faultnet.New(faultnet.Config{
			Seed:          seed,
			ResetProb:     0.4,
			ResetAfterMin: 60,
			ResetAfterMax: 400,
		})
		clientChaos := faultnet.New(faultnet.Config{
			Seed:          seed + 1000,
			ResetProb:     0.4,
			ResetAfterMin: 60,
			ResetAfterMax: 700,
		})
		retry := cluster.RetryPolicy{Attempts: 10, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond}
		ledger := testLedger(t)
		h := startCluster(t, r, nr, fo, priv, fakeSeed, func(cfg *cluster.AnalyzerConfig) {
			cfg.Retry = retry
			cfg.Ledger = ledger
		}, func(j int, cfg *cluster.ShufflerConfig) {
			if j == 1 {
				cfg.Dial = chaosDialTo(meshChaos, cfg.Topology.Shufflers[0])
			}
		})
		cl, err := cluster.NewClient(cluster.ClientConfig{
			Topology: h.topo,
			FO:       fo,
			Pub:      ahe.PublicKey(priv),
			Source:   rng.New(3),
			Dial:     chaosDialTo(clientChaos, h.topo.Shufflers[0]),
			Retry:    retry,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p, err := protocol.NewPEOS(fo, r, nr, priv, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		p.FakeSource = refFakeSource(fakeSeed, r)
		var allRef []ldp.Report
		for round := 0; round < 2; round++ {
			values := synthValues(n, d, fakeSeed+10+uint64(round))
			cl.SetCollection(round)
			if err := cl.SendValues(0, values, rng.New(fakeSeed+20+uint64(round))); err != nil {
				t.Fatalf("seed %d round %d send: %v", seed, round, err)
			}
			if err := cl.Flush(); err != nil {
				t.Fatalf("seed %d round %d flush: %v", seed, round, err)
			}
			col, err := h.analyzer.Collect(n)
			if err != nil {
				t.Fatalf("seed %d round %d never healed: %v", seed, round, err)
			}
			ref, err := p.Run(values, rng.New(fakeSeed+20+uint64(round)))
			if err != nil {
				t.Fatal(err)
			}
			if !estimatesEqual(col.Estimates, ref.Estimates) {
				t.Fatalf("seed %d round %d diverged (mesh %+v client %+v)", seed, round, meshChaos.Stats(), clientChaos.Stats())
			}
			allRef = append(allRef, ref.Reports...)
		}
		if got := ledger.Epochs(); got != 2 {
			t.Fatalf("seed %d: ledger charged %d epochs for 2 collections", seed, got)
		}
		wantCum := protocol.Estimate(fo, allRef, 2*n, 2*nr)
		if !estimatesEqual(h.analyzer.Estimates(), wantCum) {
			t.Fatalf("seed %d cumulative diverged", seed)
		}
		t.Logf("seed %d healed: mesh %+v client %+v reconnects %d", seed, meshChaos.Stats(), clientChaos.Stats(), cl.Reconnects())
		cl.Close()
		h.analyzer.Close()
		for _, sh := range h.shufflers {
			sh.Close()
		}
	}
}

// A flooding client replaying the SAME (index, nonce) frames over and
// over must be absorbed by the dedup path without counting against the
// buffer cap — resubmits are free — while the round still seals.
func TestChaosResubmitsDoNotCountAgainstCap(t *testing.T) {
	const (
		r        = 2
		n        = 20
		d        = 8
		nr       = 2
		fakeSeed = 261
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)
	h := startCluster(t, r, nr, fo, priv, fakeSeed, nil, func(_ int, cfg *cluster.ShufflerConfig) {
		cfg.MaxBuffered = n + 2 // barely roomier than one column
	})
	// A raw client that sends the same share 50 times: one stored
	// share, 49 idempotent resubmits, zero cap pressure.
	raw, err := net.Dial("tcp", h.topo.Shufflers[0])
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if err := transport.WriteTaggedFrame(raw, 3 /* clientHello */, []byte{0}); err != nil {
		t.Fatal(err)
	}
	var payload [24]byte
	payload[3] = 99 // collection 99 (never sealed; parks in the buffer)
	payload[7] = 5  // index 5
	payload[15] = 7 // nonce
	for i := 0; i < 50; i++ {
		if err := transport.WriteTaggedFrame(raw, 4 /* report */, payload[:]); err != nil {
			t.Fatalf("resubmit %d refused: %v", i, err)
		}
	}

	cl, err := cluster.DialClient(h.topo, fo, ahe.PublicKey(priv), rng.New(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SendValues(0, synthValues(n, d, 262), rng.New(263)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.analyzer.Collect(n); err != nil {
		t.Fatalf("round failed under resubmit pressure: %v", err)
	}
}
