package cluster

import (
	"bufio"
	"bytes"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"shuffledp/internal/ahe"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
	"shuffledp/internal/secretshare"
)

// ClientConfig parameterizes a reporting client.
type ClientConfig struct {
	// Topology names the shufflers to report to.
	Topology Topology
	// FO is the frequency oracle randomized reports come from.
	FO ldp.FrequencyOracle
	// Pub is the analyzer's AHE public key (the last share is encrypted
	// under it).
	Pub ahe.PublicKey
	// Source drives the share splits (secretshare.Crypto in production,
	// a seeded rng in tests — the split randomness never influences
	// estimates, only hiding).
	Source secretshare.Source
	// DialTimeout bounds each connection establishment (0 =
	// DefaultDialTimeout).
	DialTimeout time.Duration
	// Dial, when non-nil, replaces net.DialTimeout — the chaos-
	// injection hook (faultnet.Network.Dial fits).
	Dial DialFunc
	// Retry, when enabled (Attempts > 1), makes the client
	// self-healing: a shuffler connection that fails is redialed with
	// jittered backoff and the current collection's frames are replayed
	// in full. The per-report nonces make the replay idempotent at the
	// shufflers (a share that already arrived is recognized and
	// dropped), so a disconnect-resubmit changes nothing about the
	// sealed round. The zero policy reports each frame at most once,
	// surfacing the first write error — the pre-existing behavior.
	Retry RetryPolicy
	// PoolSize overrides the key's randomizer-pool capacity for this
	// client (<1 = ahe.DefaultPoolSize); PoolRefillers its refill
	// concurrency (<1 = ahe.DefaultPoolRefillers). Both only matter for
	// keys implementing ahe.PoolerN, and only the first starter of a
	// shared key's pool fixes them.
	PoolSize      int
	PoolRefillers int
}

func (cfg *ClientConfig) validate() error {
	if err := cfg.Topology.validate(); err != nil {
		return err
	}
	if cfg.FO == nil || cfg.Pub == nil || cfg.Source == nil {
		return errors.New("cluster: client needs an oracle, the AHE public key, and randomness")
	}
	return nil
}

// Client submits secret-shared reports to every shuffler of a cluster
// (Algorithm 1, "User i"): each randomized report is encoded to a
// 64-bit word, additively split into R shares, and one share goes to
// each shuffler — the last one AHE-encrypted so even all R shufflers
// together cannot reconstruct it. A Client is not safe for concurrent
// use; run one per goroutine.
type Client struct {
	cfg   ClientConfig
	enc   *ldp.WordEncoder
	mod   secretshare.Modulus
	conns []net.Conn
	w     []*bufio.Writer
	col   uint32
	// queued[j] holds the serialized report frames already produced for
	// shuffler j in the current collection — exactly the bytes a healed
	// connection replays. The share splits (and the encryption) were
	// drawn when the frame was built, so a resubmit carries identical
	// shares and the randomness stream position never depends on how
	// many times the network failed.
	queued [][][]byte
	// nonce is the next report nonce: a crypto/rand base plus a
	// sequence counter, unique per report across reconnects (and, with
	// overwhelming probability, across clients). Deliberately not drawn
	// from Source: that stream's position must match the in-process
	// reference's split-for-split.
	nonce      uint64
	reconnects int
	// stopPool releases the key's background randomizer pool; nil when
	// the key has none.
	stopPool func()
}

// NewClient connects to every shuffler in the topology and performs
// the client hellos.
func NewClient(cfg ClientConfig) (*Client, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	enc, err := ldp.NewWordEncoder(cfg.FO)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("cluster: client nonce seed: %w", err)
	}
	c := &Client{
		cfg:    cfg,
		enc:    enc,
		mod:    secretshare.NewModulus(64),
		queued: make([][][]byte, cfg.Topology.R()),
		nonce:  binary.LittleEndian.Uint64(seed[:]),
	}
	// Every report encrypts one share; keep (r, h^r) pairs precomputed
	// in the background for the lifetime of the client. The pool draws
	// from crypto/rand only, never cfg.Source, so shares stay
	// bit-identical to the in-process reference run.
	if pn, ok := cfg.Pub.(ahe.PoolerN); ok {
		c.stopPool = pn.StartRandomizerPoolN(cfg.PoolSize, cfg.PoolRefillers)
	} else if pl, ok := cfg.Pub.(ahe.Pooler); ok {
		c.stopPool = pl.StartRandomizerPool(cfg.PoolSize)
	}
	for _, addr := range cfg.Topology.Shufflers {
		conn, err := dialRetry(cfg.Dial, addr, cfg.DialTimeout)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns = append(c.conns, conn)
		w := bufio.NewWriter(conn)
		c.w = append(c.w, w)
		if err := writeHello(w, tagClientHello, 0); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// DialClient is the single-shot constructor: no reconnect, no default
// chaos hooks — each frame is reported at most once and the first
// network error is surfaced.
func DialClient(topo Topology, fo ldp.FrequencyOracle, pub ahe.PublicKey, src secretshare.Source, dialTimeout time.Duration) (*Client, error) {
	return NewClient(ClientConfig{Topology: topo, FO: fo, Pub: pub, Source: src, DialTimeout: dialTimeout})
}

// SetCollection stamps subsequent reports with a collection round id
// (new clients start at round 0). Moving to a new collection drops the
// previous collection's replay queue — it sealed, resubmitting it is
// pointless.
func (c *Client) SetCollection(id int) {
	if uint32(id) == c.col {
		return
	}
	c.col = uint32(id)
	for j := range c.queued {
		c.queued[j] = nil
	}
}

// Reconnects returns how many shuffler connections the client has
// healed (always 0 with retry disabled).
func (c *Client) Reconnects() int { return c.reconnects }

// SendReport shares an already-randomized report as user `index` of
// the current collection. Every user index in [0, n) must be reported
// exactly once before the analyzer seals the round at n.
func (c *Client) SendReport(index int, rep ldp.Report) error {
	word := c.enc.Encode(rep)
	r := len(c.conns)
	shares := secretshare.Split(word, r, c.mod, c.cfg.Source)
	nonce := c.nonce
	c.nonce++
	for j := 0; j < r-1; j++ {
		var buf bytes.Buffer
		if err := writeReportFrame(&buf, c.col, uint32(index), nonce, shares[j]); err != nil {
			return fmt.Errorf("cluster: client to shuffler %d: %w", j, err)
		}
		if err := c.deliver(j, buf.Bytes()); err != nil {
			return err
		}
	}
	last := r - 1
	ct, err := c.cfg.Pub.Encrypt(shares[last])
	if err != nil {
		return fmt.Errorf("cluster: client encrypt: %w", err)
	}
	var buf bytes.Buffer
	if err := writeEncReportFrame(&buf, c.col, uint32(index), nonce, c.cfg.Pub.Serialize(ct)); err != nil {
		return fmt.Errorf("cluster: client to shuffler %d: %w", last, err)
	}
	return c.deliver(last, buf.Bytes())
}

// deliver queues one serialized frame for shuffler j and writes it,
// healing the connection on failure when retry is enabled. Queue
// before write: a frame that dies in the kernel buffer mid-reset is
// still replayed.
func (c *Client) deliver(j int, frame []byte) error {
	c.queued[j] = append(c.queued[j], frame)
	if c.w[j] != nil {
		if _, err := c.w[j].Write(frame); err == nil {
			return nil
		}
	}
	return c.heal(j)
}

// heal redials shuffler j and replays the current collection's queue
// under the retry policy.
func (c *Client) heal(j int) error {
	if !c.cfg.Retry.enabled() {
		return fmt.Errorf("cluster: client to shuffler %d: connection failed", j)
	}
	policy := c.cfg.Retry.withDefaults()
	lastErr := errors.New("connection failed")
	for k := 1; k < policy.Attempts; k++ {
		time.Sleep(policy.backoff(k - 1))
		if c.conns[j] != nil {
			c.conns[j].Close()
			c.conns[j] = nil
			c.w[j] = nil
		}
		conn, err := dialRetry(c.cfg.Dial, c.cfg.Topology.Shufflers[j], c.cfg.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		w := bufio.NewWriter(conn)
		if err := c.replay(w, j); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		c.conns[j] = conn
		c.w[j] = w
		c.reconnects++
		return nil
	}
	return fmt.Errorf("cluster: client to shuffler %d: reconnect failed: %w", j, lastErr)
}

// replay writes the hello and every queued frame of the current
// collection to a fresh connection, flushed. The shuffler's nonce
// dedup drops whatever the dead connection already delivered.
func (c *Client) replay(w *bufio.Writer, j int) error {
	if err := writeHello(w, tagClientHello, 0); err != nil {
		return err
	}
	for _, frame := range c.queued[j] {
		if _, err := w.Write(frame); err != nil {
			return err
		}
	}
	return w.Flush()
}

// Send randomizes v with ldpRand and shares the report as user index.
func (c *Client) Send(index, v int, ldpRand *rng.Rand) error {
	return c.SendReport(index, c.fo().Randomize(v, ldpRand))
}

func (c *Client) fo() ldp.FrequencyOracle { return c.cfg.FO }

// SendValues randomizes values sequentially with ldpRand and shares
// value i as user base+i — the same randomization order as
// protocol.PEOS.Run's user loop, which is what makes a single-client
// cluster run bit-identical to the in-process reference for a shared
// seed.
func (c *Client) SendValues(base int, values []int, ldpRand *rng.Rand) error {
	for i, v := range values {
		if err := c.Send(base+i, v, ldpRand); err != nil {
			return err
		}
	}
	return nil
}

// Flush pushes buffered frames to every shuffler, healing connections
// that fail mid-flush when retry is enabled (bufio surfaces a reset
// lazily, so the flush is often where a mid-collection fault becomes
// visible). Call it before the analyzer seals the round.
func (c *Client) Flush() error {
	for j := range c.w {
		if c.w[j] == nil {
			if err := c.heal(j); err != nil {
				return err
			}
			continue
		}
		if err := c.w[j].Flush(); err != nil {
			if healErr := c.heal(j); healErr != nil {
				return fmt.Errorf("cluster: client flush to shuffler %d: %w", j, healErr)
			}
		}
	}
	return nil
}

// Close flushes and closes every shuffler connection (EOF is the
// client's "done"). Safe on a partially-dialed client and safe to call
// more than once.
func (c *Client) Close() error {
	if c.stopPool != nil {
		c.stopPool() // idempotent
	}
	var first error
	for j, w := range c.w {
		if w == nil {
			continue
		}
		if err := w.Flush(); err != nil && first == nil {
			first = fmt.Errorf("cluster: client flush to shuffler %d: %w", j, err)
		}
	}
	for _, conn := range c.conns {
		if conn == nil {
			continue
		}
		if err := conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
