package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"shuffledp/internal/ahe"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
	"shuffledp/internal/secretshare"
)

// Client submits secret-shared reports to every shuffler of a cluster
// (Algorithm 1, "User i"): each randomized report is encoded to a
// 64-bit word, additively split into R shares, and one share goes to
// each shuffler — the last one AHE-encrypted so even all R shufflers
// together cannot reconstruct it. A Client is not safe for concurrent
// use; run one per goroutine.
type Client struct {
	fo    ldp.FrequencyOracle
	enc   *ldp.WordEncoder
	pub   ahe.PublicKey
	src   secretshare.Source
	mod   secretshare.Modulus
	conns []net.Conn
	w     []*bufio.Writer
	col   uint32
}

// DialClient connects to every shuffler in the topology and performs
// the client hellos. pub is the analyzer's AHE public key; src drives
// the share splits (secretshare.Crypto in production, a seeded rng in
// tests — the split randomness never influences estimates, only
// hiding).
func DialClient(topo Topology, fo ldp.FrequencyOracle, pub ahe.PublicKey, src secretshare.Source, dialTimeout time.Duration) (*Client, error) {
	if err := topo.validate(); err != nil {
		return nil, err
	}
	if fo == nil || pub == nil || src == nil {
		return nil, errors.New("cluster: client needs an oracle, the AHE public key, and randomness")
	}
	enc, err := ldp.NewWordEncoder(fo)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	c := &Client{
		fo:  fo,
		enc: enc,
		pub: pub,
		src: src,
		mod: secretshare.NewModulus(64),
	}
	for _, addr := range topo.Shufflers {
		conn, err := dialRetry(addr, dialTimeout)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns = append(c.conns, conn)
		w := bufio.NewWriter(conn)
		c.w = append(c.w, w)
		if err := writeHello(w, tagClientHello, 0); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// SetCollection stamps subsequent reports with a collection round id
// (new clients start at round 0).
func (c *Client) SetCollection(id int) { c.col = uint32(id) }

// SendReport shares an already-randomized report as user `index` of
// the current collection. Every user index in [0, n) must be reported
// exactly once before the analyzer seals the round at n.
func (c *Client) SendReport(index int, rep ldp.Report) error {
	word := c.enc.Encode(rep)
	shares := secretshare.Split(word, len(c.conns), c.mod, c.src)
	for j := 0; j < len(c.conns)-1; j++ {
		if err := writeReportFrame(c.w[j], c.col, uint32(index), shares[j]); err != nil {
			return fmt.Errorf("cluster: client to shuffler %d: %w", j, err)
		}
	}
	last := len(c.conns) - 1
	ct, err := c.pub.Encrypt(shares[last])
	if err != nil {
		return fmt.Errorf("cluster: client encrypt: %w", err)
	}
	if err := writeEncReportFrame(c.w[last], c.col, uint32(index), c.pub.Serialize(ct)); err != nil {
		return fmt.Errorf("cluster: client to shuffler %d: %w", last, err)
	}
	return nil
}

// Send randomizes v with ldpRand and shares the report as user index.
func (c *Client) Send(index, v int, ldpRand *rng.Rand) error {
	return c.SendReport(index, c.fo.Randomize(v, ldpRand))
}

// SendValues randomizes values sequentially with ldpRand and shares
// value i as user base+i — the same randomization order as
// protocol.PEOS.Run's user loop, which is what makes a single-client
// cluster run bit-identical to the in-process reference for a shared
// seed.
func (c *Client) SendValues(base int, values []int, ldpRand *rng.Rand) error {
	for i, v := range values {
		if err := c.Send(base+i, v, ldpRand); err != nil {
			return err
		}
	}
	return nil
}

// Flush pushes buffered frames to every shuffler. Call it before the
// analyzer seals the round.
func (c *Client) Flush() error {
	for j, w := range c.w {
		if err := w.Flush(); err != nil {
			return fmt.Errorf("cluster: client flush to shuffler %d: %w", j, err)
		}
	}
	return nil
}

// Close flushes and closes every shuffler connection (EOF is the
// client's "done"). Safe on a partially-dialed client.
func (c *Client) Close() error {
	var first error
	for j, w := range c.w {
		if err := w.Flush(); err != nil && first == nil {
			first = fmt.Errorf("cluster: client flush to shuffler %d: %w", j, err)
		}
	}
	for _, conn := range c.conns {
		if err := conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
