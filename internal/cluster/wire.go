package cluster

// Wire format. Every cluster message is one transport tagged frame:
// the 32-bit tag is the message kind, the payload layouts are below
// (integers big-endian, share words little-endian via
// transport.EncodeUint64s, matching the rest of the repository).
//
//	peerHello      [from u8]                       shuffler -> shuffler
//	shufflerHello  [index u8]                      shuffler -> analyzer
//	clientHello    []                              client   -> shuffler
//	report         [collection u32][index u32][share u64le]
//	encReport      [collection u32][index u32][ct ...]
//	seal           [collection u32][n u32]         analyzer -> shuffler
//	vector         [collection u32][words ...]     shuffler -> analyzer
//	encVector      [collection u32][cts ...]       shuffler -> analyzer
//	fail           [collection u32][utf8 message]  shuffler -> analyzer
//	roundPlain     [round u32][words ...]          EOS peer traffic
//	roundEnc       [round u32][cts ...]            EOS peer traffic
//	roundSeed      [round u32][seed u64be]         EOS peer traffic
//
// Ciphertext vectors are the fixed-size ahe serialization
// concatenated, so the element count is implied by the payload length.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"shuffledp/internal/ahe"
	"shuffledp/internal/oblivious"
	"shuffledp/internal/transport"
)

// Message kinds (frame tags).
const (
	tagPeerHello uint32 = iota + 1
	tagShufflerHello
	tagClientHello
	tagReport
	tagEncReport
	tagSeal
	tagVector
	tagEncVector
	tagFail
	tagRoundPlain
	tagRoundEnc
	tagRoundSeed
)

// errBadFrame wraps every malformed-payload failure so callers can
// distinguish protocol violations from transport errors.
var errBadFrame = errors.New("cluster: malformed frame")

func writeHello(w io.Writer, tag uint32, index int) error {
	return transport.WriteTaggedFrame(w, tag, []byte{byte(index)})
}

func parseHelloIndex(payload []byte, limit int) (int, error) {
	if len(payload) != 1 || int(payload[0]) >= limit {
		return 0, fmt.Errorf("%w: bad hello index", errBadFrame)
	}
	return int(payload[0]), nil
}

func writeReportFrame(w io.Writer, collection, index uint32, share uint64) error {
	var payload [16]byte
	binary.BigEndian.PutUint32(payload[0:], collection)
	binary.BigEndian.PutUint32(payload[4:], index)
	binary.LittleEndian.PutUint64(payload[8:], share)
	return transport.WriteTaggedFrame(w, tagReport, payload[:])
}

func writeEncReportFrame(w io.Writer, collection, index uint32, ct []byte) error {
	payload := make([]byte, 8+len(ct))
	binary.BigEndian.PutUint32(payload[0:], collection)
	binary.BigEndian.PutUint32(payload[4:], index)
	copy(payload[8:], ct)
	return transport.WriteTaggedFrame(w, tagEncReport, payload)
}

// reportFrame is one parsed client share frame.
type reportFrame struct {
	collection uint32
	index      uint32
	share      uint64 // tagReport
	ct         []byte // tagEncReport
}

func parseReportFrame(tag uint32, payload []byte) (reportFrame, error) {
	if len(payload) < 8 {
		return reportFrame{}, fmt.Errorf("%w: short report frame", errBadFrame)
	}
	rf := reportFrame{
		collection: binary.BigEndian.Uint32(payload[0:]),
		index:      binary.BigEndian.Uint32(payload[4:]),
	}
	if tag == tagReport {
		if len(payload) != 16 {
			return reportFrame{}, fmt.Errorf("%w: plain share frame has %d bytes", errBadFrame, len(payload))
		}
		rf.share = binary.LittleEndian.Uint64(payload[8:])
		return rf, nil
	}
	if len(payload) == 8 {
		return reportFrame{}, fmt.Errorf("%w: empty ciphertext frame", errBadFrame)
	}
	rf.ct = append([]byte(nil), payload[8:]...)
	return rf, nil
}

func writeSealFrame(w io.Writer, collection uint32, n int) error {
	var payload [8]byte
	binary.BigEndian.PutUint32(payload[0:], collection)
	binary.BigEndian.PutUint32(payload[4:], uint32(n))
	return transport.WriteTaggedFrame(w, tagSeal, payload[:])
}

func parseSealFrame(payload []byte) (collection uint32, n int, err error) {
	if len(payload) != 8 {
		return 0, 0, fmt.Errorf("%w: bad seal frame", errBadFrame)
	}
	return binary.BigEndian.Uint32(payload[0:]), int(binary.BigEndian.Uint32(payload[4:])), nil
}

// prefixed returns a payload of [collection u32][body].
func prefixed(collection uint32, body []byte) []byte {
	payload := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(payload, collection)
	copy(payload[4:], body)
	return payload
}

func splitPrefixed(payload []byte) (uint32, []byte, error) {
	if len(payload) < 4 {
		return 0, nil, fmt.Errorf("%w: missing collection prefix", errBadFrame)
	}
	return binary.BigEndian.Uint32(payload), payload[4:], nil
}

// encodeCiphertexts concatenates the fixed-size serializations.
func encodeCiphertexts(pub ahe.PublicKey, cts []*ahe.Ciphertext) []byte {
	size := pub.CiphertextBytes()
	out := make([]byte, 0, size*len(cts))
	for _, c := range cts {
		out = append(out, pub.Serialize(c)...)
	}
	return out
}

func decodeCiphertexts(pub ahe.PublicKey, data []byte) ([]*ahe.Ciphertext, error) {
	size := pub.CiphertextBytes()
	if size <= 0 || len(data)%size != 0 {
		return nil, fmt.Errorf("%w: ciphertext vector length %d not a multiple of %d", errBadFrame, len(data), size)
	}
	out := make([]*ahe.Ciphertext, len(data)/size)
	for i := range out {
		c, err := pub.Deserialize(data[i*size : (i+1)*size])
		if err != nil {
			return nil, fmt.Errorf("%w: ciphertext %d: %v", errBadFrame, i, err)
		}
		out[i] = c
	}
	return out, nil
}

// connTransport adapts the shuffler's peer connections to
// oblivious.Transport. peers[j] is the connection to party j (nil at
// the own index). Sends and receives for one peer never run
// concurrently with each other from the engine (per-phase discipline),
// but a send goroutine and the receive loop run at once for DIFFERENT
// peers, so each direction only needs per-connection serialization.
type connTransport struct {
	peers   []net.Conn
	pub     ahe.PublicKey
	timeout time.Duration // per-message I/O deadline, 0 = none
	sendMu  []sync.Mutex
}

func newConnTransport(peers []net.Conn, pub ahe.PublicKey, timeout time.Duration) *connTransport {
	return &connTransport{peers: peers, pub: pub, timeout: timeout, sendMu: make([]sync.Mutex, len(peers))}
}

func (t *connTransport) conn(p int) (net.Conn, error) {
	if p < 0 || p >= len(t.peers) || t.peers[p] == nil {
		return nil, fmt.Errorf("cluster: no connection to shuffler %d", p)
	}
	return t.peers[p], nil
}

// Send implements oblivious.Transport.
func (t *connTransport) Send(to int, m oblivious.Msg) error {
	conn, err := t.conn(to)
	if err != nil {
		return err
	}
	t.sendMu[to].Lock()
	defer t.sendMu[to].Unlock()
	if t.timeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(t.timeout)); err != nil {
			return err
		}
	}
	var round [4]byte
	binary.BigEndian.PutUint32(round[:], uint32(m.Round))
	switch m.Kind {
	case oblivious.MsgPlain:
		return transport.WriteTaggedFrame(conn, tagRoundPlain, append(round[:], transport.EncodeUint64s(m.Words)...))
	case oblivious.MsgEnc:
		return transport.WriteTaggedFrame(conn, tagRoundEnc, append(round[:], encodeCiphertexts(t.pub, m.Enc)...))
	case oblivious.MsgSeed:
		payload := make([]byte, 12)
		copy(payload, round[:])
		binary.BigEndian.PutUint64(payload[4:], m.Seed)
		return transport.WriteTaggedFrame(conn, tagRoundSeed, payload)
	}
	return fmt.Errorf("cluster: unknown message kind %d", m.Kind)
}

// Recv implements oblivious.Transport.
func (t *connTransport) Recv(from int) (oblivious.Msg, error) {
	conn, err := t.conn(from)
	if err != nil {
		return oblivious.Msg{}, err
	}
	if t.timeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(t.timeout)); err != nil {
			return oblivious.Msg{}, err
		}
	}
	tag, payload, err := transport.ReadTaggedFrame(conn)
	if err != nil {
		return oblivious.Msg{}, err
	}
	if len(payload) < 4 {
		return oblivious.Msg{}, fmt.Errorf("%w: short round message", errBadFrame)
	}
	m := oblivious.Msg{Round: int(binary.BigEndian.Uint32(payload))}
	body := payload[4:]
	switch tag {
	case tagRoundPlain:
		m.Kind = oblivious.MsgPlain
		if m.Words, err = transport.DecodeUint64s(body); err != nil {
			return oblivious.Msg{}, err
		}
	case tagRoundEnc:
		m.Kind = oblivious.MsgEnc
		if m.Enc, err = decodeCiphertexts(t.pub, body); err != nil {
			return oblivious.Msg{}, err
		}
	case tagRoundSeed:
		m.Kind = oblivious.MsgSeed
		if len(body) != 8 {
			return oblivious.Msg{}, fmt.Errorf("%w: bad seed message", errBadFrame)
		}
		m.Seed = binary.BigEndian.Uint64(body)
	default:
		return oblivious.Msg{}, fmt.Errorf("%w: unexpected tag %d during the shuffle", errBadFrame, tag)
	}
	return m, nil
}
