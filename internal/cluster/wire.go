package cluster

// Wire format. Every cluster message is one transport tagged frame:
// the 32-bit tag is the message kind, the payload layouts are below
// (integers big-endian, share words little-endian via
// transport.EncodeUint64s, matching the rest of the repository).
//
//	peerHello      [from u8][collection u32][attempt u32]   shuffler -> shuffler
//	shufflerHello  [index u8]                               shuffler -> analyzer
//	clientHello    []                                       client   -> shuffler
//	report         [collection u32][index u32][nonce u64][share u64le]
//	encReport      [collection u32][index u32][nonce u64][ct ...]
//	seal           [collection u32][attempt u32][n u32]
//	               [analyzers u16][cut u32 × (analyzers+1)] analyzer -> shuffler
//	abort          [collection u32][attempt u32]            analyzer -> shuffler
//	done           [collection u32]                         analyzer -> shuffler
//	vector         [collection u32][attempt u32][words ...] shuffler -> analyzer
//	encVector      [collection u32][attempt u32][cts ...]   shuffler -> analyzer
//	fail           [collection u32][attempt u32][utf8 msg]  shuffler -> analyzer
//	roundPlain     [round u32][words ...]                   EOS peer traffic
//	roundEnc       [round u32][cts ...]                     EOS peer traffic
//	roundSeed      [round u32][seed u64be]                  EOS peer traffic
//	roundPlainMore [round u32][words ...]                   EOS peer traffic
//	roundEncMore   [round u32][cts ...]                     EOS peer traffic
//	shardHello     [shard u16][analyzers u16]
//	               [bound u32 × (analyzers+1)]              shard -> coordinator
//	shardSeal      [collection u32][attempt u32][n u32]     coordinator -> shard
//	shardWords     [collection u32][attempt u32][words ...] shard -> coordinator
//	shardCommit    [collection u32][attempt u32]            coordinator -> shard
//	shardAck       [collection u32][attempt u32]            shard -> coordinator
//
// The sharded-analyzer frames (DESIGN.md §13): a shard's hello to the
// coordinator carries its shard index and its full partition plan so a
// mismatched -partition deployment fails at connect time; shardSeal
// starts a shard's window for one collection attempt, shardWords
// returns the revealed window (the shard's prepare), shardCommit /
// shardAck close the round's two-phase commit. Abort frames are reused
// verbatim on shard links. Shufflers route post-shuffle vector chunks
// to the owning shard over data links opened with the ordinary
// shuffler hello; the chunk frames are ordinary vector/encVector
// frames whose length is the shard's cut window.
//
// Ciphertext vectors are the fixed-size ahe serialization
// concatenated, so the element count is implied by the payload length.
//
// Chunk streaming (DESIGN.md §14): a roundPlainMore/roundEncMore frame
// is a non-final fragment of a chunk-streamed shuffle vector — the
// payload layout is exactly the legacy roundPlain/roundEnc layout, the
// tag itself carries the "more fragments follow" bit, and the final
// fragment of a stream always uses the legacy tag. A node with
// chunking disabled therefore emits byte-identical legacy frames, and
// its frames are accepted unchanged by chunk-aware peers, so mixed
// fleets interoperate; fragment reassembly lives in the oblivious
// engine (oblivious.Msg.More).
//
// The self-healing fields: a peer hello names the exact collection
// attempt its mesh connection serves, so a connection left over from
// an aborted round can never be mistaken for a live one; seal, abort,
// vector, and fail all carry the (collection, attempt) generation so
// both ends skip stale frames; a report carries the client's
// per-report nonce, which lets a reconnecting client resubmit its
// whole collection and the shuffler deduplicate idempotently (same
// nonce = the retransmit it is, different nonce at a taken index = a
// conflicting report, dropped with its connection).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"shuffledp/internal/ahe"
	"shuffledp/internal/oblivious"
	"shuffledp/internal/transport"
)

// Message kinds (frame tags).
const (
	tagPeerHello uint32 = iota + 1
	tagShufflerHello
	tagClientHello
	tagReport
	tagEncReport
	tagSeal
	tagVector
	tagEncVector
	tagFail
	tagRoundPlain
	tagRoundEnc
	tagRoundSeed
	tagAbort
	tagDone
	tagShardHello
	tagShardSeal
	tagShardWords
	tagShardCommit
	tagShardAck
	tagRoundPlainMore
	tagRoundEncMore
)

// errBadFrame wraps every malformed-payload failure so callers can
// distinguish protocol violations from transport errors.
var errBadFrame = errors.New("cluster: malformed frame")

func writeHello(w io.Writer, tag uint32, index int) error {
	return transport.WriteTaggedFrame(w, tag, []byte{byte(index)})
}

func parseHelloIndex(payload []byte, limit int) (int, error) {
	if len(payload) != 1 || int(payload[0]) >= limit {
		return 0, fmt.Errorf("%w: bad hello index", errBadFrame)
	}
	return int(payload[0]), nil
}

// writePeerHello announces a mesh connection serving one collection
// attempt.
func writePeerHello(w io.Writer, from int, g gen) error {
	var payload [9]byte
	payload[0] = byte(from)
	binary.BigEndian.PutUint32(payload[1:], g.col)
	binary.BigEndian.PutUint32(payload[5:], g.att)
	return transport.WriteTaggedFrame(w, tagPeerHello, payload[:])
}

func parsePeerHello(payload []byte, limit int) (from int, g gen, err error) {
	if len(payload) != 9 || int(payload[0]) >= limit {
		return 0, gen{}, fmt.Errorf("%w: bad peer hello", errBadFrame)
	}
	return int(payload[0]), gen{
		col: binary.BigEndian.Uint32(payload[1:]),
		att: binary.BigEndian.Uint32(payload[5:]),
	}, nil
}

func writeReportFrame(w io.Writer, collection, index uint32, nonce, share uint64) error {
	var payload [24]byte
	binary.BigEndian.PutUint32(payload[0:], collection)
	binary.BigEndian.PutUint32(payload[4:], index)
	binary.BigEndian.PutUint64(payload[8:], nonce)
	binary.LittleEndian.PutUint64(payload[16:], share)
	return transport.WriteTaggedFrame(w, tagReport, payload[:])
}

func writeEncReportFrame(w io.Writer, collection, index uint32, nonce uint64, ct []byte) error {
	payload := make([]byte, 16+len(ct))
	binary.BigEndian.PutUint32(payload[0:], collection)
	binary.BigEndian.PutUint32(payload[4:], index)
	binary.BigEndian.PutUint64(payload[8:], nonce)
	copy(payload[16:], ct)
	return transport.WriteTaggedFrame(w, tagEncReport, payload)
}

// reportFrame is one parsed client share frame.
type reportFrame struct {
	collection uint32
	index      uint32
	nonce      uint64 // per-report resubmit dedup key
	share      uint64 // tagReport
	ct         []byte // tagEncReport
}

func parseReportFrame(tag uint32, payload []byte) (reportFrame, error) {
	if len(payload) < 16 {
		return reportFrame{}, fmt.Errorf("%w: short report frame", errBadFrame)
	}
	rf := reportFrame{
		collection: binary.BigEndian.Uint32(payload[0:]),
		index:      binary.BigEndian.Uint32(payload[4:]),
		nonce:      binary.BigEndian.Uint64(payload[8:]),
	}
	if tag == tagReport {
		if len(payload) != 24 {
			return reportFrame{}, fmt.Errorf("%w: plain share frame has %d bytes", errBadFrame, len(payload))
		}
		rf.share = binary.LittleEndian.Uint64(payload[16:])
		return rf, nil
	}
	if len(payload) == 16 {
		return reportFrame{}, fmt.Errorf("%w: empty ciphertext frame", errBadFrame)
	}
	rf.ct = append([]byte(nil), payload[16:]...)
	return rf, nil
}

// writeSealFrame opens a collection attempt at a shuffler. Beyond the
// generation and the report count it carries the analyzer-shard cuts
// of the n+NR output vector ([analyzers u16][cut u32 × (analyzers+1)])
// so the shuffler knows which window of its post-shuffle vector each
// shard owns; a single-analyzer deployment sends cuts [0, n+NR].
func writeSealFrame(w io.Writer, g gen, n int, cuts []int) error {
	payload := make([]byte, 14+4*len(cuts))
	binary.BigEndian.PutUint32(payload[0:], g.col)
	binary.BigEndian.PutUint32(payload[4:], g.att)
	binary.BigEndian.PutUint32(payload[8:], uint32(n))
	binary.BigEndian.PutUint16(payload[12:], uint16(len(cuts)-1))
	for i, c := range cuts {
		binary.BigEndian.PutUint32(payload[14+4*i:], uint32(c))
	}
	return transport.WriteTaggedFrame(w, tagSeal, payload)
}

func parseSealFrame(payload []byte) (g gen, n int, cuts []int, err error) {
	if len(payload) < 14 {
		return gen{}, 0, nil, fmt.Errorf("%w: bad seal frame", errBadFrame)
	}
	analyzers := int(binary.BigEndian.Uint16(payload[12:]))
	if analyzers < 1 || analyzers > maxPlanAnalyzers || len(payload) != 14+4*(analyzers+1) {
		return gen{}, 0, nil, fmt.Errorf("%w: bad seal frame", errBadFrame)
	}
	cuts = make([]int, analyzers+1)
	for i := range cuts {
		cuts[i] = int(binary.BigEndian.Uint32(payload[14+4*i:]))
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] < cuts[i-1] {
			return gen{}, 0, nil, fmt.Errorf("%w: bad seal frame", errBadFrame)
		}
	}
	return gen{
		col: binary.BigEndian.Uint32(payload[0:]),
		att: binary.BigEndian.Uint32(payload[4:]),
	}, int(binary.BigEndian.Uint32(payload[8:])), cuts, nil
}

// writeShardHello identifies an analyzer shard's control link to the
// coordinator, carrying the shard's partition plan for the equality
// check that rejects inconsistently configured deployments.
func writeShardHello(w io.Writer, shard int, plan PartitionPlan) error {
	enc := encodePartitionPlan(plan)
	payload := make([]byte, 2+len(enc))
	binary.BigEndian.PutUint16(payload[0:], uint16(shard))
	copy(payload[2:], enc)
	return transport.WriteTaggedFrame(w, tagShardHello, payload)
}

func parseShardHello(payload []byte) (shard int, plan PartitionPlan, err error) {
	if len(payload) < 2 {
		return 0, PartitionPlan{}, fmt.Errorf("%w: bad shard hello", errBadFrame)
	}
	shard = int(binary.BigEndian.Uint16(payload[0:]))
	plan, err = parsePartitionPlan(payload[2:])
	if err != nil {
		return 0, PartitionPlan{}, fmt.Errorf("%w: bad shard hello plan", errBadFrame)
	}
	if shard < 1 || shard >= plan.Analyzers {
		return 0, PartitionPlan{}, fmt.Errorf("%w: shard hello index %d out of range", errBadFrame, shard)
	}
	return shard, plan, nil
}

// writeShardSeal starts one shard's window of a collection attempt
// (n is the round's report count, from which the shard re-derives its
// cut window).
func writeShardSeal(w io.Writer, g gen, n int) error {
	var payload [12]byte
	binary.BigEndian.PutUint32(payload[0:], g.col)
	binary.BigEndian.PutUint32(payload[4:], g.att)
	binary.BigEndian.PutUint32(payload[8:], uint32(n))
	return transport.WriteTaggedFrame(w, tagShardSeal, payload[:])
}

func parseShardSeal(payload []byte) (g gen, n int, err error) {
	if len(payload) != 12 {
		return gen{}, 0, fmt.Errorf("%w: bad shard seal frame", errBadFrame)
	}
	return gen{
		col: binary.BigEndian.Uint32(payload[0:]),
		att: binary.BigEndian.Uint32(payload[4:]),
	}, int(binary.BigEndian.Uint32(payload[8:])), nil
}

// writeGenFrame writes a bare-generation frame (shardCommit/shardAck
// share the abort layout under their own tags).
func writeGenFrame(w io.Writer, tag uint32, g gen) error {
	var payload [8]byte
	binary.BigEndian.PutUint32(payload[0:], g.col)
	binary.BigEndian.PutUint32(payload[4:], g.att)
	return transport.WriteTaggedFrame(w, tag, payload[:])
}

func parseGenFrame(payload []byte) (gen, error) {
	if len(payload) != 8 {
		return gen{}, fmt.Errorf("%w: bad generation frame", errBadFrame)
	}
	return gen{
		col: binary.BigEndian.Uint32(payload[0:]),
		att: binary.BigEndian.Uint32(payload[4:]),
	}, nil
}

// writeAbortFrame tells a shuffler to cancel one collection attempt.
func writeAbortFrame(w io.Writer, g gen) error {
	var payload [8]byte
	binary.BigEndian.PutUint32(payload[0:], g.col)
	binary.BigEndian.PutUint32(payload[4:], g.att)
	return transport.WriteTaggedFrame(w, tagAbort, payload[:])
}

func parseAbortFrame(payload []byte) (gen, error) {
	if len(payload) != 8 {
		return gen{}, fmt.Errorf("%w: bad abort frame", errBadFrame)
	}
	return gen{
		col: binary.BigEndian.Uint32(payload[0:]),
		att: binary.BigEndian.Uint32(payload[4:]),
	}, nil
}

// writeDoneFrame tells a shuffler a collection sealed durably: buffers
// and cached fakes through it can be pruned.
func writeDoneFrame(w io.Writer, collection uint32) error {
	var payload [4]byte
	binary.BigEndian.PutUint32(payload[0:], collection)
	return transport.WriteTaggedFrame(w, tagDone, payload[:])
}

func parseDoneFrame(payload []byte) (uint32, error) {
	if len(payload) != 4 {
		return 0, fmt.Errorf("%w: bad done frame", errBadFrame)
	}
	return binary.BigEndian.Uint32(payload), nil
}

// prefixed returns a payload of [collection u32][attempt u32][body].
func prefixed(g gen, body []byte) []byte {
	payload := make([]byte, 8+len(body))
	binary.BigEndian.PutUint32(payload, g.col)
	binary.BigEndian.PutUint32(payload[4:], g.att)
	copy(payload[8:], body)
	return payload
}

func splitPrefixed(payload []byte) (gen, []byte, error) {
	if len(payload) < 8 {
		return gen{}, nil, fmt.Errorf("%w: missing generation prefix", errBadFrame)
	}
	return gen{
		col: binary.BigEndian.Uint32(payload),
		att: binary.BigEndian.Uint32(payload[4:]),
	}, payload[8:], nil
}

// encodeCiphertexts concatenates the fixed-size serializations.
func encodeCiphertexts(pub ahe.PublicKey, cts []*ahe.Ciphertext) []byte {
	size := pub.CiphertextBytes()
	out := make([]byte, 0, size*len(cts))
	for _, c := range cts {
		out = append(out, pub.Serialize(c)...)
	}
	return out
}

func decodeCiphertexts(pub ahe.PublicKey, data []byte) ([]*ahe.Ciphertext, error) {
	size := pub.CiphertextBytes()
	if size <= 0 || len(data)%size != 0 {
		return nil, fmt.Errorf("%w: ciphertext vector length %d not a multiple of %d", errBadFrame, len(data), size)
	}
	out := make([]*ahe.Ciphertext, len(data)/size)
	for i := range out {
		c, err := pub.Deserialize(data[i*size : (i+1)*size])
		if err != nil {
			return nil, fmt.Errorf("%w: ciphertext %d: %v", errBadFrame, i, err)
		}
		out[i] = c
	}
	return out, nil
}

// connTransport adapts the shuffler's peer connections to
// oblivious.Transport. peers[j] is the connection to party j (nil at
// the own index). Sends and receives for one peer never run
// concurrently with each other from the engine (per-phase discipline),
// but a send goroutine and the receive loop run at once for DIFFERENT
// peers, so each direction only needs per-connection serialization.
//
// Two deadline regimes compose: timeout bounds each individual
// message exchange, and phaseTimeout (via the oblivious.Phaser hook)
// bounds each whole EOS phase — so a peer that keeps trickling single
// messages but never finishes a phase is still cut off. Every I/O op
// uses the earlier of the two deadlines.
type connTransport struct {
	peers         []net.Conn
	pub           ahe.PublicKey
	timeout       time.Duration // per-message I/O deadline, 0 = none
	phaseTimeout  time.Duration // per-EOS-phase deadline, 0 = none
	phaseDeadline atomic.Int64  // current phase deadline, unix nanos (0 = unset)
	sendMu        []sync.Mutex
}

func newConnTransport(peers []net.Conn, pub ahe.PublicKey, timeout, phaseTimeout time.Duration) *connTransport {
	return &connTransport{
		peers:        peers,
		pub:          pub,
		timeout:      timeout,
		phaseTimeout: phaseTimeout,
		sendMu:       make([]sync.Mutex, len(peers)),
	}
}

// Phase implements oblivious.Phaser: each phase boundary re-arms the
// phase deadline.
func (t *connTransport) Phase(round int, phase oblivious.Phase) {
	if t.phaseTimeout <= 0 {
		return
	}
	t.phaseDeadline.Store(time.Now().Add(t.phaseTimeout).UnixNano())
}

// deadline returns the earlier of the per-message and phase deadlines
// (zero time = none).
func (t *connTransport) deadline() time.Time {
	var d time.Time
	if t.timeout > 0 {
		d = time.Now().Add(t.timeout)
	}
	if pd := t.phaseDeadline.Load(); pd != 0 {
		pdt := time.Unix(0, pd)
		if d.IsZero() || pdt.Before(d) {
			d = pdt
		}
	}
	return d
}

func (t *connTransport) conn(p int) (net.Conn, error) {
	if p < 0 || p >= len(t.peers) || t.peers[p] == nil {
		return nil, fmt.Errorf("cluster: no connection to shuffler %d", p)
	}
	return t.peers[p], nil
}

// Send implements oblivious.Transport.
func (t *connTransport) Send(to int, m oblivious.Msg) error {
	conn, err := t.conn(to)
	if err != nil {
		return err
	}
	t.sendMu[to].Lock()
	defer t.sendMu[to].Unlock()
	if d := t.deadline(); !d.IsZero() {
		if err := conn.SetWriteDeadline(d); err != nil {
			return err
		}
	}
	var round [4]byte
	binary.BigEndian.PutUint32(round[:], uint32(m.Round))
	switch m.Kind {
	case oblivious.MsgPlain:
		tag := tagRoundPlain
		if m.More {
			tag = tagRoundPlainMore
		}
		return transport.WriteTaggedFrame(conn, tag, append(round[:], transport.EncodeUint64s(m.Words)...))
	case oblivious.MsgEnc:
		tag := tagRoundEnc
		if m.More {
			tag = tagRoundEncMore
		}
		return transport.WriteTaggedFrame(conn, tag, append(round[:], encodeCiphertexts(t.pub, m.Enc)...))
	case oblivious.MsgSeed:
		payload := make([]byte, 12)
		copy(payload, round[:])
		binary.BigEndian.PutUint64(payload[4:], m.Seed)
		return transport.WriteTaggedFrame(conn, tagRoundSeed, payload)
	}
	return fmt.Errorf("cluster: unknown message kind %d", m.Kind)
}

// Recv implements oblivious.Transport.
func (t *connTransport) Recv(from int) (oblivious.Msg, error) {
	conn, err := t.conn(from)
	if err != nil {
		return oblivious.Msg{}, err
	}
	if d := t.deadline(); !d.IsZero() {
		if err := conn.SetReadDeadline(d); err != nil {
			return oblivious.Msg{}, err
		}
	}
	tag, payload, err := transport.ReadTaggedFrame(conn)
	if err != nil {
		return oblivious.Msg{}, err
	}
	if len(payload) < 4 {
		return oblivious.Msg{}, fmt.Errorf("%w: short round message", errBadFrame)
	}
	m := oblivious.Msg{Round: int(binary.BigEndian.Uint32(payload))}
	body := payload[4:]
	switch tag {
	case tagRoundPlain, tagRoundPlainMore:
		m.Kind = oblivious.MsgPlain
		m.More = tag == tagRoundPlainMore
		if m.Words, err = transport.DecodeUint64s(body); err != nil {
			return oblivious.Msg{}, err
		}
	case tagRoundEnc, tagRoundEncMore:
		m.Kind = oblivious.MsgEnc
		m.More = tag == tagRoundEncMore
		if m.Enc, err = decodeCiphertexts(t.pub, body); err != nil {
			return oblivious.Msg{}, err
		}
	case tagRoundSeed:
		m.Kind = oblivious.MsgSeed
		if len(body) != 8 {
			return oblivious.Msg{}, fmt.Errorf("%w: bad seed message", errBadFrame)
		}
		m.Seed = binary.BigEndian.Uint64(body)
	default:
		return oblivious.Msg{}, fmt.Errorf("%w: unexpected tag %d during the shuffle", errBadFrame, tag)
	}
	return m, nil
}
