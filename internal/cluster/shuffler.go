package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"shuffledp/internal/ahe"
	"shuffledp/internal/oblivious"
	"shuffledp/internal/pipeline"
	"shuffledp/internal/secretshare"
	"shuffledp/internal/transport"
)

// ShufflerConfig parameterizes one shuffler node.
type ShufflerConfig struct {
	// Index is this shuffler's role id in [0, R). Shuffler R-1 is the
	// encrypted column's initial holder: clients send it AHE
	// ciphertexts instead of plain shares.
	Index int
	// Topology names every role's address.
	Topology Topology
	// Listener optionally supplies a pre-bound listener (overriding
	// Topology.Shufflers[Index]); the node closes it.
	Listener net.Listener
	// NR is the number of joint fake reports; this node contributes
	// one share of each (Algorithm 1, "Shuffler j").
	NR int
	// Pub is the analyzer's AHE public key. Every shuffler needs it:
	// any party can become the ciphertext holder during the shuffle.
	Pub ahe.PublicKey
	// Source is this node's own protocol randomness (share splits,
	// permutation seeds, holder choices). Use secretshare.Crypto in
	// production; a seeded rng in tests.
	Source secretshare.Source
	// FakeSource, when non-nil, draws the node's fake shares instead
	// of Source — the hook the conformance tests use to align fakes
	// with an in-process protocol.PEOS reference. The stream advances
	// exactly once per collection no matter how many attempts the
	// collection takes (fake shares are cached per collection), so
	// retried rounds stay bit-identical to the reference.
	FakeSource secretshare.Source
	// FastShuffle disables ciphertext rerandomization (Table III cost
	// model; see oblivious.Config.SkipRerandomize for the caveat).
	FastShuffle bool
	// IdleTimeout bounds the silence tolerated on a client connection
	// between report frames (0 = none); stalled clients are dropped.
	IdleTimeout time.Duration
	// SealTimeout bounds (a) the wait for a sealed collection's report
	// set to complete and (b) each peer message exchange during the
	// shuffle. 0 means no bound.
	SealTimeout time.Duration
	// PhaseTimeout additionally bounds each whole phase of the
	// oblivious shuffle (hide, shuffle, reshare — re-armed at every
	// phase boundary), so a peer that keeps trickling individual
	// messages under SealTimeout but never completes a phase is still
	// cut off. 0 means only SealTimeout applies.
	PhaseTimeout time.Duration
	// HelloTimeout bounds the wait for an inbound connection's hello
	// frame (0 = DefaultHelloTimeout). A silent connection is dropped
	// and can never pin the node's teardown.
	HelloTimeout time.Duration
	// MaxBuffered caps the total client shares held across all
	// not-yet-sealed collections (0 = DefaultMaxBuffered). A client
	// streaming shares for rounds that never seal must not grow the
	// node without bound; past the cap its connection is dropped.
	// Shares buffered for rounds that never seal stay held until the
	// node restarts, so size the cap to cover the deployment's open
	// rounds with headroom.
	MaxBuffered int
	// DialTimeout bounds connection establishment to peers and the
	// analyzer (0 = DefaultDialTimeout).
	DialTimeout time.Duration
	// Dial, when non-nil, replaces net.DialTimeout for this node's
	// outbound connections (peer mesh and analyzer link) — the
	// chaos-injection hook (faultnet.Network.Dial fits).
	Dial DialFunc
	// Workers sets oblivious.Config.Workers for this node's shuffle
	// passes (DESIGN.md §14): <=1 runs the serial reference path.
	// Estimates are bit-identical at every setting, so nodes in one
	// fleet may disagree on it freely.
	Workers int
	// ChunkWords streams this node's outbound hide/reshare vectors in
	// windows of at most ChunkWords elements, overlapping AHE compute
	// with transmission (0 = one legacy frame per vector). Like
	// Workers, it is a per-node knob: chunked and unchunked nodes
	// interoperate because a final fragment is byte-identical to a
	// legacy frame.
	ChunkWords int
}

// collectionBuf buffers one collection's share column as it streams in
// from clients. The nonce map keys resubmit deduplication: a
// reconnecting client replays its whole collection, and a frame whose
// (index, nonce) is already stored is the retransmit it claims to be.
type collectionBuf struct {
	plain  map[uint32]uint64
	encCt  map[uint32][]byte
	nonce  map[uint32]uint64
	notify chan struct{}
}

func newCollectionBuf() *collectionBuf {
	return &collectionBuf{
		plain:  make(map[uint32]uint64),
		encCt:  make(map[uint32][]byte),
		nonce:  make(map[uint32]uint64),
		notify: make(chan struct{}, 1),
	}
}

func (c *collectionBuf) size() int { return len(c.plain) + len(c.encCt) }

// fakeSet is one collection's cached fake shares. Caching (rather than
// redrawing per attempt) keeps the FakeSource stream position a
// function of the collection alone: a retried attempt reuses the same
// fakes, so estimates stay bit-identical to a run that never failed.
type fakeSet struct {
	plain []uint64
	enc   []*ahe.Ciphertext
}

// attempt is one collection attempt in flight on this node. The
// analyzer's abort (or a newer seal, or a lost control link) cancels
// it: the cancel channel closes and every mesh connection it claimed
// is torn down, which unblocks a RunParty stuck mid-phase.
type attempt struct {
	g      gen
	n      int
	cuts   []int // analyzer-shard windows of the output vector
	cancel chan struct{}

	mu      sync.Mutex
	aborted bool
	conns   []net.Conn
}

// errAttemptAborted marks attempt-goroutine errors caused by the
// attempt's own cancellation — not reported to the analyzer, which
// moved on already.
var errAttemptAborted = errors.New("cluster: collection attempt aborted")

func (a *attempt) abort() {
	a.mu.Lock()
	if a.aborted {
		a.mu.Unlock()
		return
	}
	a.aborted = true
	conns := append([]net.Conn(nil), a.conns...)
	a.mu.Unlock()
	close(a.cancel)
	for _, c := range conns {
		c.Close()
	}
}

// addConn registers a mesh connection with the attempt so abort can
// close it; a connection arriving after the abort is closed instead.
func (a *attempt) addConn(c net.Conn) error {
	a.mu.Lock()
	if a.aborted {
		a.mu.Unlock()
		c.Close()
		return errAttemptAborted
	}
	a.conns = append(a.conns, c)
	a.mu.Unlock()
	return nil
}

func (a *attempt) canceled() bool {
	select {
	case <-a.cancel:
		return true
	default:
		return false
	}
}

// closeConns closes every mesh connection the attempt claimed (the
// attempt's exchange is over; per-attempt connections are never
// reused).
func (a *attempt) closeConns() {
	a.mu.Lock()
	conns := append([]net.Conn(nil), a.conns...)
	a.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// peerKey addresses a parked inbound mesh connection: which peer, for
// which collection attempt.
type peerKey struct {
	from int
	g    gen
}

// Shuffler is one running shuffler node. Create it with NewShuffler,
// drive it with Run (which blocks for the node's lifetime), and stop
// it with Close — ungracefully, which is exactly what the
// kill-a-shuffler smoke test does.
//
// The node is self-healing by construction: client errors only ever
// drop that client's connection (delivered shares stay buffered for
// the resubmit), a failed collection attempt only fails that attempt
// (the analyzer aborts and retries under its RetryPolicy), and a lost
// analyzer control link is redialed. The only fatal conditions are
// Close, a malformed analyzer frame, and an unreachable analyzer.
type Shuffler struct {
	cfg ShufflerConfig
	ln  net.Listener
	mod secretshare.Modulus

	// fakeMu serializes fake-share draws so concurrent attempt
	// goroutines (one aborted, one fresh) can never interleave their
	// FakeSource consumption; see fakesFor.
	fakeMu sync.Mutex
	// anMu serializes writes to the analyzer control link (an aborted
	// attempt's fail notice must not interleave with its successor's
	// vector).
	anMu sync.Mutex
	// shardMu guards the persistent data links to analyzer shards >= 1
	// (and serializes their writes, including the lazy dial).
	shardMu    sync.Mutex
	shardConns map[string]net.Conn

	mu          sync.Mutex
	analyzer    net.Conn
	parked      map[peerKey]net.Conn // inbound mesh conns awaiting their attempt
	parkedMore  chan struct{}
	conns       map[net.Conn]struct{} // client (and handshaking) connections
	cols        map[uint32]*collectionBuf
	fakes       map[uint32]*fakeSet
	cur         *attempt
	doneThrough int64 // highest collection known sealed/pruned; -1 initially
	buffered    int   // total shares across s.cols, bounded by MaxBuffered
	closed      bool

	// stopPool releases the key's background randomizer pool (nil when
	// the key has none). The enc-holder's fake-share encryptions and
	// every node's rerandomize pass draw from it.
	stopPool func()
}

// DefaultMaxBuffered is the ShufflerConfig.MaxBuffered default: at
// ~16-130 bytes per buffered share (plain word vs. serialized
// ciphertext) it bounds a node's client-driven memory to low hundreds
// of megabytes in the worst case — the cluster analogue of the
// service's rejectedLogCap hardening.
const DefaultMaxBuffered = 1 << 20

// errBufferFull marks a client that exceeded the node's share-buffer
// cap; its connection is dropped without failing the node.
var errBufferFull = errors.New("cluster: client share buffer cap exceeded")

// NewShuffler validates the configuration and binds the listener; the
// node does nothing else until Run.
func NewShuffler(cfg ShufflerConfig) (*Shuffler, error) {
	if err := cfg.Topology.validate(); err != nil {
		return nil, err
	}
	if cfg.Index < 0 || cfg.Index >= cfg.Topology.R() {
		return nil, fmt.Errorf("cluster: shuffler index %d out of range [0, %d)", cfg.Index, cfg.Topology.R())
	}
	if cfg.NR < 0 {
		return nil, errors.New("cluster: negative fake-report count")
	}
	if cfg.Pub == nil {
		return nil, errors.New("cluster: shuffler needs the analyzer's AHE public key")
	}
	if cfg.Pub.PlaintextBits() != 64 {
		return nil, fmt.Errorf("cluster: PEOS requires a Z_{2^64} AHE plaintext space, got 2^%d", cfg.Pub.PlaintextBits())
	}
	if cfg.Source == nil {
		return nil, errors.New("cluster: shuffler needs a randomness source")
	}
	ln, err := listenOrUse(cfg.Listener, cfg.Topology.Shufflers[cfg.Index])
	if err != nil {
		return nil, err
	}
	s := &Shuffler{
		cfg:         cfg,
		ln:          ln,
		mod:         secretshare.NewModulus(64),
		parked:      make(map[peerKey]net.Conn),
		parkedMore:  make(chan struct{}, 1),
		conns:       make(map[net.Conn]struct{}),
		cols:        make(map[uint32]*collectionBuf),
		fakes:       make(map[uint32]*fakeSet),
		doneThrough: -1,
	}
	// Precompute encryption randomizers in the background for the
	// node's lifetime: fake-share encryptions (enc holder) and the
	// rerandomize pass of every shuffle both drain the pool. Pool
	// randomness is crypto/rand, never cfg.Source/FakeSource, so the
	// cluster's estimates stay bit-identical to the in-process run.
	// The pool is sized to the worker count — a parallel shuffle
	// drains Workers times faster than the serial path refills.
	if pn, ok := cfg.Pub.(ahe.PoolerN); ok {
		s.stopPool = pn.StartRandomizerPoolN(ahe.PoolSizeFor(cfg.Workers), 0)
	} else if pl, ok := cfg.Pub.(ahe.Pooler); ok {
		s.stopPool = pl.StartRandomizerPool(0)
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Shuffler) Addr() string { return s.ln.Addr().String() }

// encHolder reports whether this node starts each collection holding
// the encrypted column.
func (s *Shuffler) encHolder() bool { return s.cfg.Index == s.cfg.Topology.R()-1 }

// Run connects the node into the cluster and serves collections until
// the analyzer closes its connection (clean shutdown, returns nil),
// Close is called, or the analyzer becomes unreachable or speaks a
// malformed protocol. The connection plan is deterministic: this node
// dials the analyzer (redialing if the link resets) and, per
// collection attempt, every lower-index shuffler; it accepts
// per-attempt connections from higher-index shufflers and report
// streams from clients.
func (s *Shuffler) Run() error {
	defer s.teardown()
	go s.acceptLoop()
	if err := s.connectAnalyzer(); err != nil {
		return err
	}

	// Control loop: the analyzer drives collection attempts with seal
	// frames, cancels them with aborts, and confirms durable rounds
	// with done frames. Attempts run in their own goroutines so an
	// abort can cancel one that is blocked mid-shuffle.
	for {
		s.mu.Lock()
		analyzer := s.analyzer
		s.mu.Unlock()
		tag, payload, err := transport.ReadTaggedFrame(analyzer)
		if err != nil {
			if s.isClosed() {
				return nil
			}
			if errors.Is(err, io.EOF) {
				// Orderly analyzer shutdown: the cluster is done.
				s.cancelCurrent()
				return nil
			}
			if pipeline.Disconnected(err) {
				// The control link died mid-stream (reset, not FIN):
				// cancel the in-flight attempt — its seal may have been
				// lost — and redial. The analyzer's accept loop swaps
				// the fresh link in by our hello index.
				s.cancelCurrent()
				if err := s.connectAnalyzer(); err != nil {
					return err
				}
				continue
			}
			return fmt.Errorf("cluster: shuffler %d analyzer link: %w", s.cfg.Index, err)
		}
		switch tag {
		case tagSeal:
			g, n, cuts, err := parseSealFrame(payload)
			if err != nil {
				return err
			}
			s.startAttempt(g, n, cuts)
		case tagAbort:
			g, err := parseAbortFrame(payload)
			if err != nil {
				return err
			}
			s.abortGen(g)
		case tagDone:
			col, err := parseDoneFrame(payload)
			if err != nil {
				return err
			}
			s.pruneThrough(col)
		default:
			return fmt.Errorf("%w: analyzer sent tag %d", errBadFrame, tag)
		}
	}
}

// connectAnalyzer dials the analyzer, identifies this node, and swaps
// the fresh link in (closing a dead predecessor).
func (s *Shuffler) connectAnalyzer() error {
	conn, err := dialRetry(s.cfg.Dial, s.cfg.Topology.Coordinator(), s.cfg.DialTimeout)
	if err != nil {
		return err
	}
	if err := writeHello(conn, tagShufflerHello, s.cfg.Index); err != nil {
		conn.Close()
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return errors.New("cluster: shuffler closed")
	}
	old := s.analyzer
	s.analyzer = conn
	s.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return nil
}

// startAttempt installs a new collection attempt (canceling its
// predecessor — a newer seal supersedes whatever was running) and
// launches its goroutine. A seal for a generation not newer than the
// current one is stale control traffic and ignored.
func (s *Shuffler) startAttempt(g gen, n int, cuts []int) {
	s.mu.Lock()
	prev := s.cur
	if prev != nil && !prev.g.less(g) {
		s.mu.Unlock()
		return
	}
	if int64(g.col) <= s.doneThrough {
		s.mu.Unlock()
		return
	}
	cur := &attempt{g: g, n: n, cuts: cuts, cancel: make(chan struct{})}
	s.cur = cur
	// Collections before this one can never seal again; parked mesh
	// connections from older generations serve aborted attempts.
	s.markDoneLocked(int64(g.col) - 1)
	for k, conn := range s.parked {
		if k.g.less(g) {
			conn.Close()
			delete(s.parked, k)
		}
	}
	s.mu.Unlock()
	if prev != nil {
		prev.abort()
	}
	go s.runAttempt(cur)
}

// abortGen cancels the current attempt if it matches g (an abort
// racing a newer seal must not cancel the newer attempt).
func (s *Shuffler) abortGen(g gen) {
	s.mu.Lock()
	cur := s.cur
	s.mu.Unlock()
	if cur != nil && cur.g == g {
		cur.abort()
	}
}

// cancelCurrent aborts whatever attempt is in flight.
func (s *Shuffler) cancelCurrent() {
	s.mu.Lock()
	cur := s.cur
	s.mu.Unlock()
	if cur != nil {
		cur.abort()
	}
}

// pruneThrough handles the analyzer's done frame: every collection
// through col sealed durably, so its buffers, cached fakes, and parked
// connections can go.
func (s *Shuffler) pruneThrough(col uint32) {
	s.mu.Lock()
	s.markDoneLocked(int64(col))
	s.mu.Unlock()
}

// markDoneLocked advances the done watermark and prunes state at or
// below it. Caller holds s.mu.
func (s *Shuffler) markDoneLocked(through int64) {
	if through <= s.doneThrough {
		return
	}
	s.doneThrough = through
	for c, buf := range s.cols {
		if int64(c) <= through {
			s.buffered -= buf.size()
			delete(s.cols, c)
		}
	}
	for c := range s.fakes {
		if int64(c) <= through {
			delete(s.fakes, c)
		}
	}
	for k, conn := range s.parked {
		if int64(k.g.col) <= through {
			conn.Close()
			delete(s.parked, k)
		}
	}
}

// runAttempt drives one collection attempt and reports failures of
// live attempts to the analyzer; a canceled attempt dies silently (the
// analyzer moved on).
func (s *Shuffler) runAttempt(a *attempt) {
	defer a.closeConns()
	err := s.collect(a)
	if err == nil || a.canceled() || s.isClosed() {
		return
	}
	// Tell the analyzer why, so Collect fails (and retries) with the
	// cause instead of a bare timeout.
	_ = s.writeAnalyzer(tagFail, prefixed(a.g, []byte(err.Error())))
}

// writeAnalyzer writes one frame to the control link under anMu and a
// write deadline.
func (s *Shuffler) writeAnalyzer(tag uint32, payload []byte) error {
	s.mu.Lock()
	conn := s.analyzer
	s.mu.Unlock()
	if conn == nil {
		return errors.New("cluster: no analyzer link")
	}
	s.anMu.Lock()
	defer s.anMu.Unlock()
	if s.cfg.SealTimeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.SealTimeout)); err != nil {
			return err
		}
		defer conn.SetWriteDeadline(time.Time{})
	}
	return transport.WriteTaggedFrame(conn, tag, payload)
}

// collect executes one collection attempt: wait for the column to
// complete, take the collection's (cached) fake shares, form the
// per-attempt peer mesh, shuffle, forward the result to the analyzer.
func (s *Shuffler) collect(a *attempt) error {
	if a.n <= 0 {
		return fmt.Errorf("cluster: seal with %d users", a.n)
	}
	words, cts, err := s.awaitColumn(a)
	if err != nil {
		return err
	}
	fakes, err := s.fakesFor(a)
	if err != nil {
		return err
	}
	total := a.n + s.cfg.NR
	var plain []uint64
	var enc []*ahe.Ciphertext
	if s.encHolder() {
		enc = make([]*ahe.Ciphertext, total)
		for i, raw := range cts {
			c, err := s.cfg.Pub.Deserialize(raw)
			if err != nil {
				return fmt.Errorf("cluster: client ciphertext %d: %w", i, err)
			}
			enc[i] = c
		}
		// Clones, not the cached objects: the shuffle's in-place
		// ciphertext kernels consume their input vector, and the cache
		// must survive an aborted attempt intact for the retry.
		for i, c := range fakes.enc {
			enc[a.n+i] = c.Clone()
		}
	} else {
		plain = make([]uint64, total)
		copy(plain, words)
		copy(plain[a.n:], fakes.plain)
	}

	peers, err := s.mesh(a)
	if err != nil {
		return err
	}
	tr := newConnTransport(peers, s.cfg.Pub, s.cfg.SealTimeout, s.cfg.PhaseTimeout)
	outPlain, outEnc, err := oblivious.RunParty(oblivious.PartyConfig{
		Index:           s.cfg.Index,
		Parties:         s.cfg.Topology.R(),
		Mod:             s.mod,
		Source:          s.cfg.Source,
		Pub:             s.cfg.Pub,
		SkipRerandomize: s.cfg.FastShuffle,
		Workers:         s.cfg.Workers,
		ChunkWords:      s.cfg.ChunkWords,
	}, tr, plain, enc)
	if err != nil {
		return err
	}

	// Forward stage: the post-shuffle vector goes to the analyzer tier,
	// stamped with the attempt's generation so a stale vector from an
	// aborted attempt is recognizable. The seal's cuts slice the vector
	// into per-shard windows: window 0 rides the coordinator control
	// link (with one analyzer, that is the whole vector — the legacy
	// wire behavior), the rest go to their shards' data links. Empty
	// windows are still sent, so every shard sees every attempt.
	//
	// Shard windows go out FIRST: once window 0 lands, the coordinator
	// stops reading this shuffler's control link (it moves on to
	// awaiting the shards' words), so a shard-link failure detected
	// after window 0 would tagFail into an unread socket and deadlock
	// the attempt until a timeout. Failing before window 0 keeps every
	// failure inside the coordinator's awaitVectors stage, where it
	// aborts and retries promptly.
	if len(a.cuts) < 2 || a.cuts[len(a.cuts)-1] != total {
		return fmt.Errorf("%w: seal cuts cover %v of %d reports", errBadFrame, a.cuts, total)
	}
	addrs := s.cfg.Topology.AnalyzerAddrs()
	if len(a.cuts)-1 != len(addrs) {
		return fmt.Errorf("%w: seal names %d analyzer windows, topology has %d analyzers", errBadFrame, len(a.cuts)-1, len(addrs))
	}
	window := func(sh int) (uint32, []byte) {
		lo, hi := a.cuts[sh], a.cuts[sh+1]
		if outEnc != nil {
			return tagEncVector, encodeCiphertexts(s.cfg.Pub, outEnc[lo:hi])
		}
		return tagVector, transport.EncodeUint64s(outPlain[lo:hi])
	}
	for sh := 1; sh < len(addrs); sh++ {
		if a.canceled() {
			return errAttemptAborted
		}
		tag, body := window(sh)
		if err := s.writeShard(addrs[sh], tag, prefixed(a.g, body)); err != nil {
			return fmt.Errorf("cluster: forwarding window %d: %w", sh, err)
		}
	}
	if a.canceled() {
		return errAttemptAborted
	}
	tag, body := window(0)
	if err := s.writeAnalyzer(tag, prefixed(a.g, body)); err != nil {
		return fmt.Errorf("cluster: forwarding window 0: %w", err)
	}
	return nil
}

// writeShard forwards one chunk frame to an analyzer shard over a
// lazily-dialed persistent data link. A write failure drops the link
// (the next attempt redials) and fails this attempt — the coordinator
// retries the round.
func (s *Shuffler) writeShard(addr string, tag uint32, payload []byte) error {
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	if s.isClosed() {
		return errors.New("cluster: shuffler closed")
	}
	conn := s.shardConns[addr]
	if conn == nil {
		var err error
		conn, err = dialRetry(s.cfg.Dial, addr, s.cfg.DialTimeout)
		if err != nil {
			return err
		}
		if err := writeHello(conn, tagShufflerHello, s.cfg.Index); err != nil {
			conn.Close()
			return err
		}
		if s.shardConns == nil {
			s.shardConns = make(map[string]net.Conn)
		}
		s.shardConns[addr] = conn
	}
	if s.cfg.SealTimeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.SealTimeout)); err != nil {
			return err
		}
		defer conn.SetWriteDeadline(time.Time{})
	}
	if err := transport.WriteTaggedFrame(conn, tag, payload); err != nil {
		conn.Close()
		delete(s.shardConns, addr)
		return err
	}
	return nil
}

// mesh forms the attempt's peer connections: dial every lower-index
// shuffler with this attempt's generation hello, claim the parked
// inbound connections of every higher-index one. All connections are
// registered with the attempt so an abort tears them down.
func (s *Shuffler) mesh(a *attempt) ([]net.Conn, error) {
	r := s.cfg.Topology.R()
	peers := make([]net.Conn, r)
	deadline := time.Now().Add(maxDuration(s.cfg.DialTimeout, DefaultDialTimeout))
	for j := 0; j < s.cfg.Index; j++ {
		if a.canceled() {
			return nil, errAttemptAborted
		}
		conn, err := dialRetry(s.cfg.Dial, s.cfg.Topology.Shufflers[j], s.cfg.DialTimeout)
		if err != nil {
			return nil, err
		}
		if err := a.addConn(conn); err != nil {
			return nil, err
		}
		if err := writePeerHello(conn, s.cfg.Index, a.g); err != nil {
			return nil, fmt.Errorf("cluster: peer hello to shuffler %d: %w", j, err)
		}
		peers[j] = conn
	}
	for j := s.cfg.Index + 1; j < r; j++ {
		conn, err := s.claimPeer(j, a, deadline)
		if err != nil {
			return nil, err
		}
		peers[j] = conn
	}
	return peers, nil
}

// claimPeer waits for the inbound mesh connection of one higher-index
// peer for this attempt's generation.
func (s *Shuffler) claimPeer(from int, a *attempt, deadline time.Time) (net.Conn, error) {
	key := peerKey{from: from, g: a.g}
	for {
		s.mu.Lock()
		conn, ok := s.parked[key]
		if ok {
			delete(s.parked, key)
		}
		closed := s.closed
		s.mu.Unlock()
		if ok {
			if err := a.addConn(conn); err != nil {
				return nil, err
			}
			return conn, nil
		}
		if closed {
			return nil, errors.New("cluster: shuffler closed")
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			return nil, fmt.Errorf("cluster: shuffler %d never joined collection %d attempt %d", from, a.g.col, a.g.att)
		}
		if wait > 50*time.Millisecond {
			wait = 50 * time.Millisecond
		}
		select {
		case <-s.parkedMore:
		case <-a.cancel:
			return nil, errAttemptAborted
		case <-time.After(wait):
		}
	}
}

// fakesFor returns the collection's fake shares, drawing them on first
// use. Draws are serialized under fakeMu and refused for canceled
// attempts, so the FakeSource stream advances exactly once per
// collection, in collection order, no matter how attempts interleave.
func (s *Shuffler) fakesFor(a *attempt) (*fakeSet, error) {
	s.fakeMu.Lock()
	defer s.fakeMu.Unlock()
	s.mu.Lock()
	fs := s.fakes[a.g.col]
	s.mu.Unlock()
	if fs != nil {
		return fs, nil
	}
	if a.canceled() {
		return nil, errAttemptAborted
	}
	src := s.cfg.FakeSource
	if src == nil {
		src = s.cfg.Source
	}
	fs = &fakeSet{}
	if s.encHolder() {
		fs.enc = make([]*ahe.Ciphertext, s.cfg.NR)
		for k := range fs.enc {
			c, err := s.cfg.Pub.Encrypt(s.mod.Random(src))
			if err != nil {
				return nil, err
			}
			fs.enc[k] = c
		}
	} else {
		fs.plain = make([]uint64, s.cfg.NR)
		for k := range fs.plain {
			fs.plain[k] = s.mod.Random(src)
		}
	}
	s.mu.Lock()
	s.fakes[a.g.col] = fs
	s.mu.Unlock()
	return fs, nil
}

// awaitColumn blocks until the attempt's collection holds exactly the
// shares of users 0..n-1 (clients may still be flushing — or
// resubmitting — when the analyzer seals) and returns a snapshot of
// the column. The buffer itself stays in place: a retried attempt
// reads the same column again. An index at or past n is a protocol
// violation: the analyzer sealed a smaller round than some client
// reported into.
func (s *Shuffler) awaitColumn(a *attempt) ([]uint64, [][]byte, error) {
	var deadline <-chan time.Time
	if s.cfg.SealTimeout > 0 {
		t := time.NewTimer(s.cfg.SealTimeout)
		defer t.Stop()
		deadline = t.C
	}
	s.mu.Lock()
	if int64(a.g.col) <= s.doneThrough {
		s.mu.Unlock()
		return nil, nil, fmt.Errorf("cluster: collection %d already sealed", a.g.col)
	}
	col := s.cols[a.g.col]
	if col == nil {
		col = newCollectionBuf()
		s.cols[a.g.col] = col
	}
	s.mu.Unlock()
	for {
		s.mu.Lock()
		size := col.size()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return nil, nil, errors.New("cluster: shuffler closed")
		}
		if size >= a.n {
			break
		}
		select {
		case <-col.notify:
		case <-a.cancel:
			return nil, nil, errAttemptAborted
		case <-deadline:
			return nil, nil, fmt.Errorf("cluster: collection %d sealed at %d users but only %d shares arrived", a.g.col, a.n, size)
		case <-time.After(50 * time.Millisecond):
			// Re-check closed even with no traffic.
		}
	}
	// Snapshot under the lock: clients may still be resubmitting into
	// this buffer while the shuffle reads the snapshot.
	s.mu.Lock()
	defer s.mu.Unlock()
	if col.size() != a.n {
		return nil, nil, fmt.Errorf("cluster: collection %d has %d shares for %d sealed users", a.g.col, col.size(), a.n)
	}
	if s.encHolder() {
		cts := make([][]byte, a.n)
		for i := range cts {
			ct, ok := col.encCt[uint32(i)]
			if !ok {
				return nil, nil, fmt.Errorf("cluster: collection %d is missing user %d (an index past the sealed count was reported)", a.g.col, i)
			}
			cts[i] = ct
		}
		return nil, cts, nil
	}
	words := make([]uint64, a.n)
	for i := range words {
		w, ok := col.plain[uint32(i)]
		if !ok {
			return nil, nil, fmt.Errorf("cluster: collection %d is missing user %d (an index past the sealed count was reported)", a.g.col, i)
		}
		words[i] = w
	}
	return words, nil, nil
}

// acceptLoop classifies inbound connections by their hello frame:
// higher-index peers park generation-stamped mesh connections, clients
// get a report reader.
func (s *Shuffler) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed by teardown/Close
		}
		go s.handleConn(conn)
	}
}

func (s *Shuffler) handleConn(conn net.Conn) {
	// Track the connection from its first byte — teardown must be able
	// to close it (unblocking this goroutine) even before the hello
	// identifies it — and bound the hello wait itself.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	conn.SetReadDeadline(time.Now().Add(helloBound(s.cfg.HelloTimeout)))
	tag, payload, err := transport.ReadTaggedFrame(conn)
	if err != nil {
		s.dropConn(conn)
		return
	}
	// The role loops below manage their own deadlines.
	conn.SetReadDeadline(time.Time{})
	switch tag {
	case tagPeerHello:
		from, g, err := parsePeerHello(payload, s.cfg.Topology.R())
		if err != nil || from <= s.cfg.Index {
			s.dropConn(conn)
			return
		}
		s.parkPeer(conn, from, g)
	case tagClientHello:
		s.readClient(conn)
	default:
		s.dropConn(conn)
	}
}

// parkPeer files an inbound mesh connection under its (peer,
// generation) key for the matching attempt to claim. Stale generations
// — older than the current attempt or a sealed collection — are
// leftovers of aborted rounds and are dropped at the door.
func (s *Shuffler) parkPeer(conn net.Conn, from int, g gen) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	stale := int64(g.col) <= s.doneThrough || (s.cur != nil && g.less(s.cur.g))
	if stale {
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		return
	}
	key := peerKey{from: from, g: g}
	if old, ok := s.parked[key]; ok {
		old.Close()
	}
	s.parked[key] = conn
	delete(s.conns, conn) // now owned by the parked set
	s.mu.Unlock()
	select {
	case s.parkedMore <- struct{}{}:
	default:
	}
}

// dropConn untracks and closes a connection that failed its handshake.
func (s *Shuffler) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// readClient is the node's ingest stage: the same deadline-guarded
// pipeline.Reader the streaming service uses, feeding the collection
// buffers. Every ingest error is connection-scoped by design — EOF is
// the client's "done", a disconnect mid-frame is the reconnect path's
// normal signature (the client redials and resubmits, nonce dedup
// makes the replay idempotent), and a stalled, flooding, conflicting,
// or malformed client is simply dropped. Its delivered shares stay
// valid; nothing a client sends can fail the node.
func (s *Shuffler) readClient(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	rd := &pipeline.Reader{
		Conn:        conn,
		IdleTimeout: s.cfg.IdleTimeout,
		Handle: func(tag uint32, frame []byte) error {
			if tag != tagReport && tag != tagEncReport {
				return fmt.Errorf("%w: client sent tag %d", errBadFrame, tag)
			}
			rf, err := parseReportFrame(tag, frame)
			if err != nil {
				return err
			}
			return s.storeShare(tag == tagEncReport, rf)
		},
	}
	_ = rd.Run()
}

// storeShare buffers one client share. The encrypted holder accepts
// only ciphertext frames and vice versa. Nonce dedup makes resubmits
// idempotent: a frame for a taken index with the stored nonce is the
// retransmit it claims to be (dropped silently, before the buffer cap
// so replays never trip it); a different nonce is a conflicting report
// and drops the connection, first write wins.
func (s *Shuffler) storeShare(enc bool, rf reportFrame) error {
	if enc != s.encHolder() {
		return fmt.Errorf("%w: share kind does not match shuffler role %d", errBadFrame, s.cfg.Index)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if int64(rf.collection) <= s.doneThrough {
		// The collection already sealed durably: a late or re-sent
		// frame is simply late, and dropped.
		return nil
	}
	col := s.cols[rf.collection]
	if col == nil {
		col = newCollectionBuf()
		s.cols[rf.collection] = col
	}
	if nonce, taken := col.nonce[rf.index]; taken {
		if nonce == rf.nonce {
			return nil // idempotent resubmit
		}
		return fmt.Errorf("cluster: conflicting share for collection %d index %d", rf.collection, rf.index)
	}
	max := s.cfg.MaxBuffered
	if max <= 0 {
		max = DefaultMaxBuffered
	}
	if s.buffered >= max {
		return errBufferFull
	}
	if enc {
		col.encCt[rf.index] = rf.ct
	} else {
		col.plain[rf.index] = rf.share
	}
	col.nonce[rf.index] = rf.nonce
	s.buffered++
	select {
	case col.notify <- struct{}{}:
	default:
	}
	return nil
}

// Close tears the node down ungracefully: every connection and the
// listener drop, in-flight collections fail. This is the induced fault
// of the kill-a-shuffler smoke test.
func (s *Shuffler) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.teardown()
	return nil
}

func (s *Shuffler) teardown() {
	if s.stopPool != nil {
		s.stopPool() // idempotent; teardown runs from both Run and Close
	}
	s.ln.Close()
	s.mu.Lock()
	cur := s.cur
	analyzer := s.analyzer
	conns := make([]net.Conn, 0, len(s.conns)+len(s.parked))
	for c := range s.conns {
		conns = append(conns, c)
	}
	for k, c := range s.parked {
		conns = append(conns, c)
		delete(s.parked, k)
	}
	s.mu.Unlock()
	if analyzer != nil {
		analyzer.Close()
	}
	s.shardMu.Lock()
	for addr, c := range s.shardConns {
		c.Close()
		delete(s.shardConns, addr)
	}
	s.shardMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	if cur != nil {
		cur.abort()
	}
}

func (s *Shuffler) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}
