package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"shuffledp/internal/ahe"
	"shuffledp/internal/oblivious"
	"shuffledp/internal/pipeline"
	"shuffledp/internal/secretshare"
	"shuffledp/internal/transport"
)

// ShufflerConfig parameterizes one shuffler node.
type ShufflerConfig struct {
	// Index is this shuffler's role id in [0, R). Shuffler R-1 is the
	// encrypted column's initial holder: clients send it AHE
	// ciphertexts instead of plain shares.
	Index int
	// Topology names every role's address.
	Topology Topology
	// Listener optionally supplies a pre-bound listener (overriding
	// Topology.Shufflers[Index]); the node closes it.
	Listener net.Listener
	// NR is the number of joint fake reports; this node contributes
	// one share of each (Algorithm 1, "Shuffler j").
	NR int
	// Pub is the analyzer's AHE public key. Every shuffler needs it:
	// any party can become the ciphertext holder during the shuffle.
	Pub ahe.PublicKey
	// Source is this node's own protocol randomness (share splits,
	// permutation seeds, holder choices). Use secretshare.Crypto in
	// production; a seeded rng in tests.
	Source secretshare.Source
	// FakeSource, when non-nil, draws the node's fake shares instead
	// of Source — the hook the conformance tests use to align fakes
	// with an in-process protocol.PEOS reference.
	FakeSource secretshare.Source
	// FastShuffle disables ciphertext rerandomization (Table III cost
	// model; see oblivious.Config.SkipRerandomize for the caveat).
	FastShuffle bool
	// IdleTimeout bounds the silence tolerated on a client connection
	// between report frames (0 = none); stalled clients are dropped.
	IdleTimeout time.Duration
	// SealTimeout bounds (a) the wait for a sealed collection's report
	// set to complete and (b) each peer message exchange during the
	// shuffle. 0 means no bound.
	SealTimeout time.Duration
	// MaxBuffered caps the total client shares held across all
	// not-yet-sealed collections (0 = DefaultMaxBuffered). A client
	// streaming shares for rounds that never seal must not grow the
	// node without bound; past the cap its connection is dropped.
	// Shares buffered for rounds that never seal stay held until the
	// node restarts, so size the cap to cover the deployment's open
	// rounds with headroom.
	MaxBuffered int
	// DialTimeout bounds connection establishment to peers and the
	// analyzer (0 = DefaultDialTimeout).
	DialTimeout time.Duration
}

// collectionBuf buffers one collection's share column as it streams in
// from clients.
type collectionBuf struct {
	plain  map[uint32]uint64
	encCt  map[uint32][]byte
	notify chan struct{}
}

func newCollectionBuf() *collectionBuf {
	return &collectionBuf{
		plain:  make(map[uint32]uint64),
		encCt:  make(map[uint32][]byte),
		notify: make(chan struct{}, 1),
	}
}

func (c *collectionBuf) size() int { return len(c.plain) + len(c.encCt) }

// Shuffler is one running shuffler node. Create it with NewShuffler,
// drive it with Run (which blocks for the node's lifetime), and stop
// it with Close — ungracefully, which is exactly what the
// kill-a-shuffler smoke test does.
type Shuffler struct {
	cfg ShufflerConfig
	ln  net.Listener
	mod secretshare.Modulus

	mu       sync.Mutex
	peers    []net.Conn // by shuffler index, nil at own slot
	peerMore chan struct{}
	analyzer net.Conn
	conns    map[net.Conn]struct{} // client (and handshaking) connections
	cols     map[uint32]*collectionBuf
	doneCols map[uint32]bool // one bool per sealed round — negligible growth
	buffered int             // total shares across s.cols, bounded by MaxBuffered
	closed   bool
	firstErr error
}

// DefaultMaxBuffered is the ShufflerConfig.MaxBuffered default: at
// ~16-130 bytes per buffered share (plain word vs. serialized
// ciphertext) it bounds a node's client-driven memory to low hundreds
// of megabytes in the worst case — the cluster analogue of the
// service's rejectedLogCap hardening.
const DefaultMaxBuffered = 1 << 20

// errBufferFull marks a client that exceeded the node's share-buffer
// cap; its connection is dropped without failing the node.
var errBufferFull = errors.New("cluster: client share buffer cap exceeded")

// NewShuffler validates the configuration and binds the listener; the
// node does nothing else until Run.
func NewShuffler(cfg ShufflerConfig) (*Shuffler, error) {
	if err := cfg.Topology.validate(); err != nil {
		return nil, err
	}
	if cfg.Index < 0 || cfg.Index >= cfg.Topology.R() {
		return nil, fmt.Errorf("cluster: shuffler index %d out of range [0, %d)", cfg.Index, cfg.Topology.R())
	}
	if cfg.NR < 0 {
		return nil, errors.New("cluster: negative fake-report count")
	}
	if cfg.Pub == nil {
		return nil, errors.New("cluster: shuffler needs the analyzer's AHE public key")
	}
	if cfg.Pub.PlaintextBits() != 64 {
		return nil, fmt.Errorf("cluster: PEOS requires a Z_{2^64} AHE plaintext space, got 2^%d", cfg.Pub.PlaintextBits())
	}
	if cfg.Source == nil {
		return nil, errors.New("cluster: shuffler needs a randomness source")
	}
	ln, err := listenOrUse(cfg.Listener, cfg.Topology.Shufflers[cfg.Index])
	if err != nil {
		return nil, err
	}
	return &Shuffler{
		cfg:      cfg,
		ln:       ln,
		mod:      secretshare.NewModulus(64),
		peers:    make([]net.Conn, cfg.Topology.R()),
		peerMore: make(chan struct{}, 1),
		conns:    make(map[net.Conn]struct{}),
		cols:     make(map[uint32]*collectionBuf),
		doneCols: make(map[uint32]bool),
	}, nil
}

// Addr returns the bound listen address.
func (s *Shuffler) Addr() string { return s.ln.Addr().String() }

// encHolder reports whether this node starts each collection holding
// the encrypted column.
func (s *Shuffler) encHolder() bool { return s.cfg.Index == s.cfg.Topology.R()-1 }

// Run connects the node into the cluster and serves collections until
// the analyzer closes its connection (clean shutdown, returns nil),
// Close is called, or a protocol error occurs. The connection plan is
// deterministic: this node dials every lower-index shuffler and the
// analyzer, and accepts connections from higher-index shufflers and
// from clients.
func (s *Shuffler) Run() error {
	defer s.teardown()
	go s.acceptLoop()

	// Dial downwards and identify ourselves.
	for j := 0; j < s.cfg.Index; j++ {
		conn, err := dialRetry(s.cfg.Topology.Shufflers[j], s.cfg.DialTimeout)
		if err != nil {
			return err
		}
		if err := writeHello(conn, tagPeerHello, s.cfg.Index); err != nil {
			conn.Close()
			return err
		}
		s.mu.Lock()
		s.peers[j] = conn
		s.mu.Unlock()
	}
	analyzer, err := dialRetry(s.cfg.Topology.Analyzer, s.cfg.DialTimeout)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.analyzer = analyzer
	s.mu.Unlock()
	if err := writeHello(analyzer, tagShufflerHello, s.cfg.Index); err != nil {
		return err
	}
	if err := s.awaitPeers(); err != nil {
		return err
	}

	// Control loop: the analyzer drives collections with seal frames.
	for {
		tag, payload, err := transport.ReadTaggedFrame(analyzer)
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			return s.errOrNil()
		}
		if err != nil {
			if s.isClosed() {
				return s.errOrNil()
			}
			return fmt.Errorf("cluster: shuffler %d analyzer link: %w", s.cfg.Index, err)
		}
		if tag != tagSeal {
			return fmt.Errorf("%w: analyzer sent tag %d, want seal", errBadFrame, tag)
		}
		collection, n, err := parseSealFrame(payload)
		if err != nil {
			return err
		}
		if err := s.runCollection(collection, n); err != nil {
			// Tell the analyzer why before going down: Collect should
			// fail with the cause, not a bare connection reset.
			_ = transport.WriteTaggedFrame(analyzer, tagFail, prefixed(collection, []byte(err.Error())))
			return fmt.Errorf("cluster: shuffler %d collection %d: %w", s.cfg.Index, collection, err)
		}
	}
}

// awaitPeers blocks until every peer link exists (higher-index peers
// dial in through the accept loop).
func (s *Shuffler) awaitPeers() error {
	deadline := time.Now().Add(maxDuration(s.cfg.DialTimeout, DefaultDialTimeout))
	for {
		s.mu.Lock()
		missing := 0
		for j, c := range s.peers {
			if j != s.cfg.Index && c == nil {
				missing++
			}
		}
		closed := s.closed
		s.mu.Unlock()
		if missing == 0 {
			return nil
		}
		if closed {
			return errors.New("cluster: shuffler closed")
		}
		select {
		case <-s.peerMore:
		case <-time.After(time.Until(deadline)):
			return fmt.Errorf("cluster: shuffler %d: %d peer link(s) never connected", s.cfg.Index, missing)
		}
	}
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// acceptLoop classifies inbound connections by their hello frame:
// higher-index peers join the mesh, clients get a report reader.
func (s *Shuffler) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed by teardown/Close
		}
		go s.handleConn(conn)
	}
}

func (s *Shuffler) handleConn(conn net.Conn) {
	// Track the connection from its first byte — teardown must be able
	// to close it (unblocking this goroutine) even before the hello
	// identifies it — and bound the hello wait itself.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	conn.SetReadDeadline(time.Now().Add(helloTimeout))
	tag, payload, err := transport.ReadTaggedFrame(conn)
	if err != nil {
		s.dropConn(conn)
		return
	}
	// The role loops below manage their own deadlines.
	conn.SetReadDeadline(time.Time{})
	switch tag {
	case tagPeerHello:
		from, err := parseHelloIndex(payload, s.cfg.Topology.R())
		if err != nil || from <= s.cfg.Index {
			s.dropConn(conn)
			return
		}
		s.mu.Lock()
		if s.peers[from] != nil {
			s.mu.Unlock()
			s.dropConn(conn)
			return
		}
		s.peers[from] = conn
		delete(s.conns, conn) // now owned by the peer mesh
		s.mu.Unlock()
		select {
		case s.peerMore <- struct{}{}:
		default:
		}
	case tagClientHello:
		s.readClient(conn)
	default:
		s.dropConn(conn)
	}
}

// dropConn untracks and closes a connection that failed its handshake.
func (s *Shuffler) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// readClient is the node's ingest stage: the same deadline-guarded
// pipeline.Reader the streaming service uses, feeding the collection
// buffers.
func (s *Shuffler) readClient(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	rd := &pipeline.Reader{
		Conn:        conn,
		IdleTimeout: s.cfg.IdleTimeout,
		Handle: func(tag uint32, frame []byte) error {
			if tag != tagReport && tag != tagEncReport {
				return fmt.Errorf("%w: client sent tag %d", errBadFrame, tag)
			}
			rf, err := parseReportFrame(tag, frame)
			if err != nil {
				return err
			}
			return s.storeShare(tag == tagEncReport, rf)
		},
	}
	switch err := rd.Run(); {
	case err == nil || errors.Is(err, pipeline.ErrIdleTimeout) || errors.Is(err, errBufferFull):
		// EOF is the client's "done"; a stalled or flooding client is
		// simply dropped — its delivered shares stay valid and the
		// node keeps serving everyone else.
	default:
		if !s.isClosed() {
			s.fail(err)
		}
	}
}

// storeShare buffers one client share. The encrypted holder accepts
// only ciphertext frames and vice versa; duplicate indices are a
// protocol violation surfaced at the seal.
func (s *Shuffler) storeShare(enc bool, rf reportFrame) error {
	if enc != s.encHolder() {
		return fmt.Errorf("%w: share kind does not match shuffler role %d", errBadFrame, s.cfg.Index)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.doneCols[rf.collection] {
		// The collection already shuffled and forwarded: a late or
		// re-sent frame must neither re-open its buffer (which would
		// leak and defeat duplicate detection) nor fail the node —
		// it is simply late, and dropped.
		return nil
	}
	max := s.cfg.MaxBuffered
	if max <= 0 {
		max = DefaultMaxBuffered
	}
	if s.buffered >= max {
		return errBufferFull
	}
	col := s.cols[rf.collection]
	if col == nil {
		col = newCollectionBuf()
		s.cols[rf.collection] = col
	}
	if _, dup := col.plain[rf.index]; !dup {
		_, dup = col.encCt[rf.index]
		if !dup {
			if enc {
				col.encCt[rf.index] = rf.ct
			} else {
				col.plain[rf.index] = rf.share
			}
			s.buffered++
			select {
			case col.notify <- struct{}{}:
			default:
			}
			return nil
		}
	}
	return fmt.Errorf("cluster: duplicate share for collection %d index %d", rf.collection, rf.index)
}

// runCollection executes one sealed collection: wait for the column to
// complete, append this node's fake shares, shuffle with the peers,
// forward the result to the analyzer.
func (s *Shuffler) runCollection(collection uint32, n int) error {
	if n <= 0 {
		return fmt.Errorf("cluster: seal with %d users", n)
	}
	col, err := s.awaitColumn(collection, n)
	if err != nil {
		return err
	}

	fakeSrc := s.cfg.FakeSource
	if fakeSrc == nil {
		fakeSrc = s.cfg.Source
	}
	total := n + s.cfg.NR
	var plain []uint64
	var enc []*ahe.Ciphertext
	if s.encHolder() {
		enc = make([]*ahe.Ciphertext, total)
		for i := 0; i < n; i++ {
			c, err := s.cfg.Pub.Deserialize(col.encCt[uint32(i)])
			if err != nil {
				return fmt.Errorf("cluster: client ciphertext %d: %w", i, err)
			}
			enc[i] = c
		}
		for k := 0; k < s.cfg.NR; k++ {
			c, err := s.cfg.Pub.Encrypt(s.mod.Random(fakeSrc))
			if err != nil {
				return err
			}
			enc[n+k] = c
		}
	} else {
		plain = make([]uint64, total)
		for i := 0; i < n; i++ {
			plain[i] = col.plain[uint32(i)]
		}
		for k := 0; k < s.cfg.NR; k++ {
			plain[n+k] = s.mod.Random(fakeSrc)
		}
	}

	s.mu.Lock()
	peers := append([]net.Conn(nil), s.peers...)
	analyzer := s.analyzer
	s.mu.Unlock()
	tr := newConnTransport(peers, s.cfg.Pub, s.cfg.SealTimeout)
	outPlain, outEnc, err := oblivious.RunParty(oblivious.PartyConfig{
		Index:           s.cfg.Index,
		Parties:         s.cfg.Topology.R(),
		Mod:             s.mod,
		Source:          s.cfg.Source,
		Pub:             s.cfg.Pub,
		SkipRerandomize: s.cfg.FastShuffle,
	}, tr, plain, enc)
	if err != nil {
		return err
	}

	// Forward stage: the post-shuffle vector goes to the analyzer.
	if outEnc != nil {
		return transport.WriteTaggedFrame(analyzer, tagEncVector, prefixed(collection, encodeCiphertexts(s.cfg.Pub, outEnc)))
	}
	return transport.WriteTaggedFrame(analyzer, tagVector, prefixed(collection, transport.EncodeUint64s(outPlain)))
}

// awaitColumn blocks until the collection holds exactly the shares of
// users 0..n-1 (clients may still be flushing when the analyzer
// seals). An index at or past n is a protocol violation: the analyzer
// sealed a smaller round than some client reported into.
func (s *Shuffler) awaitColumn(collection uint32, n int) (*collectionBuf, error) {
	var deadline <-chan time.Time
	if s.cfg.SealTimeout > 0 {
		t := time.NewTimer(s.cfg.SealTimeout)
		defer t.Stop()
		deadline = t.C
	}
	s.mu.Lock()
	col := s.cols[collection]
	if col == nil {
		col = newCollectionBuf()
		s.cols[collection] = col
	}
	s.mu.Unlock()
	for {
		s.mu.Lock()
		size := col.size()
		closed := s.closed
		err := s.firstErr
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		if closed {
			return nil, errors.New("cluster: shuffler closed")
		}
		if size >= n {
			break
		}
		select {
		case <-col.notify:
		case <-deadline:
			return nil, fmt.Errorf("cluster: collection %d sealed at %d users but only %d shares arrived", collection, n, size)
		case <-time.After(50 * time.Millisecond):
			// Re-check closed/firstErr even with no traffic.
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cols, collection)
	s.doneCols[collection] = true
	s.buffered -= col.size()
	if col.size() != n {
		return nil, fmt.Errorf("cluster: collection %d has %d shares for %d sealed users", collection, col.size(), n)
	}
	for i := 0; i < n; i++ {
		_, okP := col.plain[uint32(i)]
		_, okE := col.encCt[uint32(i)]
		if !okP && !okE {
			return nil, fmt.Errorf("cluster: collection %d is missing user %d (an index past the sealed count was reported)", collection, i)
		}
	}
	return col, nil
}

// Close tears the node down ungracefully: every connection and the
// listener drop, in-flight collections fail. This is the induced fault
// of the kill-a-shuffler smoke test.
func (s *Shuffler) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.teardown()
	return nil
}

func (s *Shuffler) teardown() {
	s.ln.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.peers {
		if c != nil {
			c.Close()
		}
	}
	if s.analyzer != nil {
		s.analyzer.Close()
	}
	for c := range s.conns {
		c.Close()
	}
}

func (s *Shuffler) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Shuffler) errOrNil() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}

func (s *Shuffler) fail(err error) {
	s.mu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	// Wake any column wait so the failure surfaces promptly.
	for _, col := range s.cols {
		select {
		case col.notify <- struct{}{}:
		default:
		}
	}
	s.mu.Unlock()
}
