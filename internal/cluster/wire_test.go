package cluster

import (
	"bytes"
	"errors"
	"testing"

	"shuffledp/internal/ahe"
	"shuffledp/internal/transport"
)

func TestReportFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeReportFrame(&buf, 3, 17, 0xfeedface); err != nil {
		t.Fatal(err)
	}
	tag, payload, err := transport.ReadTaggedFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tag != tagReport {
		t.Fatalf("tag %d", tag)
	}
	rf, err := parseReportFrame(tag, payload)
	if err != nil {
		t.Fatal(err)
	}
	if rf.collection != 3 || rf.index != 17 || rf.share != 0xfeedface {
		t.Fatalf("parsed %+v", rf)
	}

	buf.Reset()
	if err := writeEncReportFrame(&buf, 4, 18, []byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	tag, payload, _ = transport.ReadTaggedFrame(&buf)
	rf, err = parseReportFrame(tag, payload)
	if err != nil {
		t.Fatal(err)
	}
	if rf.collection != 4 || rf.index != 18 || !bytes.Equal(rf.ct, []byte{9, 9, 9}) {
		t.Fatalf("parsed %+v", rf)
	}
}

func TestWireParseRejectsMalformedFrames(t *testing.T) {
	if _, err := parseReportFrame(tagReport, []byte{1, 2}); !errors.Is(err, errBadFrame) {
		t.Fatalf("short report: %v", err)
	}
	if _, err := parseReportFrame(tagReport, make([]byte, 17)); !errors.Is(err, errBadFrame) {
		t.Fatalf("long plain share: %v", err)
	}
	if _, err := parseReportFrame(tagEncReport, make([]byte, 8)); !errors.Is(err, errBadFrame) {
		t.Fatalf("empty ciphertext: %v", err)
	}
	if _, _, err := parseSealFrame([]byte{1}); !errors.Is(err, errBadFrame) {
		t.Fatalf("short seal: %v", err)
	}
	if _, _, err := splitPrefixed([]byte{1, 2}); !errors.Is(err, errBadFrame) {
		t.Fatalf("short prefix: %v", err)
	}
	if _, err := parseHelloIndex([]byte{5}, 3); err == nil {
		t.Fatal("out-of-range hello index accepted")
	}
	if _, err := parseHelloIndex(nil, 3); err == nil {
		t.Fatal("empty hello accepted")
	}
}

func TestCiphertextVectorCodec(t *testing.T) {
	priv, err := ahe.GenerateDGK(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	pub := ahe.PublicKey(priv)
	cts := make([]*ahe.Ciphertext, 3)
	for i := range cts {
		c, err := pub.Encrypt(uint64(100 + i))
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = c
	}
	blob := encodeCiphertexts(pub, cts)
	out, err := decodeCiphertexts(pub, blob)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range out {
		m, err := priv.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if m != uint64(100+i) {
			t.Fatalf("element %d decrypts to %d", i, m)
		}
	}
	if _, err := decodeCiphertexts(pub, blob[:len(blob)-1]); !errors.Is(err, errBadFrame) {
		t.Fatalf("truncated vector: %v", err)
	}
}
