package cluster

import (
	"bytes"
	"errors"
	"testing"

	"shuffledp/internal/ahe"
	"shuffledp/internal/transport"
)

func TestReportFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeReportFrame(&buf, 3, 17, 0xa1b2c3d4e5f60718, 0xfeedface); err != nil {
		t.Fatal(err)
	}
	tag, payload, err := transport.ReadTaggedFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tag != tagReport {
		t.Fatalf("tag %d", tag)
	}
	rf, err := parseReportFrame(tag, payload)
	if err != nil {
		t.Fatal(err)
	}
	if rf.collection != 3 || rf.index != 17 || rf.nonce != 0xa1b2c3d4e5f60718 || rf.share != 0xfeedface {
		t.Fatalf("parsed %+v", rf)
	}

	buf.Reset()
	if err := writeEncReportFrame(&buf, 4, 18, 77, []byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	tag, payload, _ = transport.ReadTaggedFrame(&buf)
	rf, err = parseReportFrame(tag, payload)
	if err != nil {
		t.Fatal(err)
	}
	if rf.collection != 4 || rf.index != 18 || rf.nonce != 77 || !bytes.Equal(rf.ct, []byte{9, 9, 9}) {
		t.Fatalf("parsed %+v", rf)
	}
}

func TestControlFrameRoundTrips(t *testing.T) {
	g := gen{col: 9, att: 0xdeadbeef}

	var buf bytes.Buffer
	if err := writeSealFrame(&buf, g, 123, []int{0, 41, 41, 123}); err != nil {
		t.Fatal(err)
	}
	tag, payload, err := transport.ReadTaggedFrame(&buf)
	if err != nil || tag != tagSeal {
		t.Fatalf("seal frame: tag %d err %v", tag, err)
	}
	sg, n, cuts, err := parseSealFrame(payload)
	if err != nil || sg != g || n != 123 {
		t.Fatalf("seal parsed (%v, %d, %v)", sg, n, err)
	}
	if len(cuts) != 4 || cuts[0] != 0 || cuts[1] != 41 || cuts[2] != 41 || cuts[3] != 123 {
		t.Fatalf("seal cuts %v", cuts)
	}

	buf.Reset()
	plan := PartitionPlan{Analyzers: 3, Bounds: []int{0, 5, 5, 16}}
	if err := writeShardHello(&buf, 2, plan); err != nil {
		t.Fatal(err)
	}
	tag, payload, err = transport.ReadTaggedFrame(&buf)
	if err != nil || tag != tagShardHello {
		t.Fatalf("shard hello: tag %d err %v", tag, err)
	}
	shard, hp, err := parseShardHello(payload)
	if err != nil || shard != 2 || !planEqual(hp, plan) {
		t.Fatalf("shard hello parsed (%d, %+v, %v)", shard, hp, err)
	}

	buf.Reset()
	if err := writeShardSeal(&buf, g, 321); err != nil {
		t.Fatal(err)
	}
	tag, payload, err = transport.ReadTaggedFrame(&buf)
	if err != nil || tag != tagShardSeal {
		t.Fatalf("shard seal: tag %d err %v", tag, err)
	}
	if ssg, sn, err := parseShardSeal(payload); err != nil || ssg != g || sn != 321 {
		t.Fatalf("shard seal parsed (%v, %d, %v)", ssg, sn, err)
	}

	buf.Reset()
	if err := writeGenFrame(&buf, tagShardCommit, g); err != nil {
		t.Fatal(err)
	}
	tag, payload, err = transport.ReadTaggedFrame(&buf)
	if err != nil || tag != tagShardCommit {
		t.Fatalf("shard commit: tag %d err %v", tag, err)
	}
	if cg, err := parseGenFrame(payload); err != nil || cg != g {
		t.Fatalf("shard commit parsed (%v, %v)", cg, err)
	}

	buf.Reset()
	if err := writeAbortFrame(&buf, g); err != nil {
		t.Fatal(err)
	}
	tag, payload, err = transport.ReadTaggedFrame(&buf)
	if err != nil || tag != tagAbort {
		t.Fatalf("abort frame: tag %d err %v", tag, err)
	}
	if ag, err := parseAbortFrame(payload); err != nil || ag != g {
		t.Fatalf("abort parsed (%v, %v)", ag, err)
	}

	buf.Reset()
	if err := writeDoneFrame(&buf, 42); err != nil {
		t.Fatal(err)
	}
	tag, payload, err = transport.ReadTaggedFrame(&buf)
	if err != nil || tag != tagDone {
		t.Fatalf("done frame: tag %d err %v", tag, err)
	}
	if col, err := parseDoneFrame(payload); err != nil || col != 42 {
		t.Fatalf("done parsed (%d, %v)", col, err)
	}

	buf.Reset()
	if err := writePeerHello(&buf, 2, g); err != nil {
		t.Fatal(err)
	}
	tag, payload, err = transport.ReadTaggedFrame(&buf)
	if err != nil || tag != tagPeerHello {
		t.Fatalf("peer hello: tag %d err %v", tag, err)
	}
	from, hg, err := parsePeerHello(payload, 3)
	if err != nil || from != 2 || hg != g {
		t.Fatalf("peer hello parsed (%d, %v, %v)", from, hg, err)
	}
	if _, _, err := parsePeerHello(payload, 2); err == nil {
		t.Fatal("peer hello index past the shuffler count accepted")
	}

	body := []byte{1, 2, 3}
	pg, rest, err := splitPrefixed(prefixed(g, body))
	if err != nil || pg != g || !bytes.Equal(rest, body) {
		t.Fatalf("prefixed round trip (%v, %v, %v)", pg, rest, err)
	}
}

func TestWireParseRejectsMalformedFrames(t *testing.T) {
	if _, err := parseReportFrame(tagReport, []byte{1, 2}); !errors.Is(err, errBadFrame) {
		t.Fatalf("short report: %v", err)
	}
	if _, err := parseReportFrame(tagReport, make([]byte, 25)); !errors.Is(err, errBadFrame) {
		t.Fatalf("long plain share: %v", err)
	}
	if _, err := parseReportFrame(tagEncReport, make([]byte, 16)); !errors.Is(err, errBadFrame) {
		t.Fatalf("empty ciphertext: %v", err)
	}
	if _, _, _, err := parseSealFrame([]byte{1}); !errors.Is(err, errBadFrame) {
		t.Fatalf("short seal: %v", err)
	}
	// Seal with non-monotone cuts: [col][att][n][A=1][cut0=5][cut1=2].
	bad := make([]byte, 22)
	bad[9] = 1  // A = 1
	bad[13] = 5 // cut0 = 5
	bad[17] = 2 // cut1 = 2 < cut0
	if _, _, _, err := parseSealFrame(bad); !errors.Is(err, errBadFrame) {
		t.Fatalf("non-monotone seal cuts: %v", err)
	}
	if _, _, err := parseShardHello([]byte{0, 1}); !errors.Is(err, errBadFrame) {
		t.Fatalf("short shard hello: %v", err)
	}
	if _, _, err := parseShardSeal([]byte{1, 2, 3}); !errors.Is(err, errBadFrame) {
		t.Fatalf("short shard seal: %v", err)
	}
	if _, err := parseGenFrame([]byte{1, 2, 3}); !errors.Is(err, errBadFrame) {
		t.Fatalf("short gen frame: %v", err)
	}
	if _, err := parseAbortFrame([]byte{1, 2, 3}); !errors.Is(err, errBadFrame) {
		t.Fatalf("short abort: %v", err)
	}
	if _, err := parseDoneFrame([]byte{1, 2, 3, 4, 5}); !errors.Is(err, errBadFrame) {
		t.Fatalf("long done: %v", err)
	}
	if _, _, err := parsePeerHello(make([]byte, 8), 3); !errors.Is(err, errBadFrame) {
		t.Fatalf("short peer hello: %v", err)
	}
	if _, _, err := splitPrefixed([]byte{1, 2}); !errors.Is(err, errBadFrame) {
		t.Fatalf("short prefix: %v", err)
	}
	if _, err := parseHelloIndex([]byte{5}, 3); err == nil {
		t.Fatal("out-of-range hello index accepted")
	}
	if _, err := parseHelloIndex(nil, 3); err == nil {
		t.Fatal("empty hello accepted")
	}
}

func TestCiphertextVectorCodec(t *testing.T) {
	priv, err := ahe.GenerateDGK(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	pub := ahe.PublicKey(priv)
	cts := make([]*ahe.Ciphertext, 3)
	for i := range cts {
		c, err := pub.Encrypt(uint64(100 + i))
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = c
	}
	blob := encodeCiphertexts(pub, cts)
	out, err := decodeCiphertexts(pub, blob)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range out {
		m, err := priv.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if m != uint64(100+i) {
			t.Fatalf("element %d decrypts to %d", i, m)
		}
	}
	if _, err := decodeCiphertexts(pub, blob[:len(blob)-1]); !errors.Is(err, errBadFrame) {
		t.Fatalf("truncated vector: %v", err)
	}
}

// FuzzWireFrames throws arbitrary payloads at every control-plane
// parser: none may panic, and whatever parses must re-encode to the
// exact payload it parsed from (the parsers are the cluster's entire
// input validation — wire.go's doc comment is the format contract).
func FuzzWireFrames(f *testing.F) {
	g := gen{col: 7, att: 0x01020304}
	seed := func(frame func(w *bytes.Buffer) error) []byte {
		var buf bytes.Buffer
		if err := frame(&buf); err != nil {
			f.Fatal(err)
		}
		_, payload, err := transport.ReadTaggedFrame(&buf)
		if err != nil {
			f.Fatal(err)
		}
		return payload
	}
	f.Add(uint8(0), seed(func(w *bytes.Buffer) error { return writePeerHello(w, 2, g) }))
	f.Add(uint8(1), seed(func(w *bytes.Buffer) error { return writeSealFrame(w, g, 100, []int{0, 55, 100}) }))
	f.Add(uint8(2), seed(func(w *bytes.Buffer) error { return writeAbortFrame(w, g) }))
	f.Add(uint8(3), seed(func(w *bytes.Buffer) error { return writeDoneFrame(w, 7) }))
	f.Add(uint8(4), seed(func(w *bytes.Buffer) error { return writeReportFrame(w, 7, 3, 99, 12345) }))
	f.Add(uint8(5), seed(func(w *bytes.Buffer) error { return writeEncReportFrame(w, 7, 3, 99, []byte{1, 2, 3}) }))
	f.Add(uint8(6), prefixed(g, []byte{8, 8, 8}))
	f.Fuzz(func(t *testing.T, kind uint8, payload []byte) {
		switch kind % 7 {
		case 0:
			from, hg, err := parsePeerHello(payload, 8)
			if err != nil {
				return
			}
			var buf bytes.Buffer
			if err := writePeerHello(&buf, from, hg); err != nil {
				t.Fatal(err)
			}
			_, re, _ := transport.ReadTaggedFrame(&buf)
			if !bytes.Equal(re, payload) {
				t.Fatalf("peer hello re-encode mismatch: %x vs %x", re, payload)
			}
		case 1:
			sg, n, cuts, err := parseSealFrame(payload)
			if err != nil {
				return
			}
			var buf bytes.Buffer
			if err := writeSealFrame(&buf, sg, n, cuts); err != nil {
				t.Fatal(err)
			}
			_, re, _ := transport.ReadTaggedFrame(&buf)
			if !bytes.Equal(re, payload) {
				t.Fatalf("seal re-encode mismatch: %x vs %x", re, payload)
			}
		case 2:
			ag, err := parseAbortFrame(payload)
			if err != nil {
				return
			}
			var buf bytes.Buffer
			if err := writeAbortFrame(&buf, ag); err != nil {
				t.Fatal(err)
			}
			_, re, _ := transport.ReadTaggedFrame(&buf)
			if !bytes.Equal(re, payload) {
				t.Fatalf("abort re-encode mismatch: %x vs %x", re, payload)
			}
		case 3:
			col, err := parseDoneFrame(payload)
			if err != nil {
				return
			}
			var buf bytes.Buffer
			if err := writeDoneFrame(&buf, col); err != nil {
				t.Fatal(err)
			}
			_, re, _ := transport.ReadTaggedFrame(&buf)
			if !bytes.Equal(re, payload) {
				t.Fatalf("done re-encode mismatch: %x vs %x", re, payload)
			}
		case 4:
			rf, err := parseReportFrame(tagReport, payload)
			if err != nil {
				return
			}
			var buf bytes.Buffer
			if err := writeReportFrame(&buf, rf.collection, rf.index, rf.nonce, rf.share); err != nil {
				t.Fatal(err)
			}
			_, re, _ := transport.ReadTaggedFrame(&buf)
			if !bytes.Equal(re, payload) {
				t.Fatalf("report re-encode mismatch: %x vs %x", re, payload)
			}
		case 5:
			rf, err := parseReportFrame(tagEncReport, payload)
			if err != nil {
				return
			}
			var buf bytes.Buffer
			if err := writeEncReportFrame(&buf, rf.collection, rf.index, rf.nonce, rf.ct); err != nil {
				t.Fatal(err)
			}
			_, re, _ := transport.ReadTaggedFrame(&buf)
			if !bytes.Equal(re, payload) {
				t.Fatalf("enc report re-encode mismatch: %x vs %x", re, payload)
			}
		case 6:
			pg, body, err := splitPrefixed(payload)
			if err != nil {
				return
			}
			if !bytes.Equal(prefixed(pg, body), payload) {
				t.Fatal("prefixed re-encode mismatch")
			}
		}
	})
}
