// Package cluster runs the PEOS security tier (§VI-A3, Algorithm 1)
// as real networked roles — the deployable face of the protocol that
// internal/protocol simulates in process. One collection round spans
// R+1 processes plus the reporting clients:
//
//	client    randomize value -> encode to a 64-bit word -> additively
//	          secret-share into R shares -> one plain share to each of
//	          shufflers 0..R-2, the last share AHE-encrypted under the
//	          analyzer's key to shuffler R-1
//	shuffler  collect its share column, append its own share of every
//	          joint fake report, run the encrypted oblivious shuffle
//	          with its peers (oblivious.RunParty over the TCP mesh),
//	          forward the resulting vector to the analyzer
//	analyzer  combine the R vectors, decrypt the ciphertext column with
//	          the AHE private key, decode, aggregate, estimate — and,
//	          when durable, write-ahead log and checkpoint each sealed
//	          collection so a crashed analyzer recovers bit-identically
//	          (store reuse from the streaming service, DESIGN.md §8/§9)
//
// Trust boundaries are real process boundaries: a shuffler only ever
// holds one share column (its own fakes included), so no coalition of
// fewer than all R shufflers learns a report; the analyzer receives
// only post-shuffle vectors, so it cannot link a report to a client;
// and the encrypted column keeps even an all-shuffler coalition blind
// (§VI-A2). The estimates are bit-identical to protocol.PEOS.Run for
// matching seeds — the cross-conformance tests and examples/peos_cluster
// assert it — because the estimator (protocol.Estimate) consumes an
// order-independent integer statistic of the same report multiset.
//
// Collections are the continual-observation unit: the analyzer drives
// one Collect per round, charges its budget.Ledger per collection, and
// accumulates support counts across rounds exactly (integers merge
// bit-identically in any order).
package cluster

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"time"
)

// Topology names the cluster's listen addresses: Shufflers[j] is
// shuffler j's address (R = len(Shufflers)); the analyzer tier is
// either the single legacy Analyzer address or the sharded Analyzers
// list (shard order; index 0 is the coordinator — DESIGN.md §13).
// Every role is configured with the same Topology, agreed out of band
// like the protocol parameters themselves.
type Topology struct {
	// Shufflers holds the shuffler listen addresses, indexed by role.
	Shufflers []string
	// Analyzer is the single-analyzer listen address (legacy form,
	// equivalent to a 1-element Analyzers list). Set exactly one of
	// Analyzer and Analyzers.
	Analyzer string
	// Analyzers holds the analyzer shard listen addresses in shard
	// order; shard 0 is the coordinator the shufflers treat as "the"
	// analyzer for control traffic.
	Analyzers []string
}

// R returns the shuffler count.
func (t Topology) R() int { return len(t.Shufflers) }

// A returns the analyzer shard count (1 for the legacy single-address
// form).
func (t Topology) A() int { return len(t.AnalyzerAddrs()) }

// AnalyzerAddrs returns the analyzer addresses in shard order,
// normalizing the legacy single-address form to a 1-element list.
func (t Topology) AnalyzerAddrs() []string {
	if len(t.Analyzers) > 0 {
		return t.Analyzers
	}
	if t.Analyzer != "" {
		return []string{t.Analyzer}
	}
	return nil
}

// Coordinator returns the address of analyzer shard 0, the node that
// drives rounds and serves estimates.
func (t Topology) Coordinator() string {
	addrs := t.AnalyzerAddrs()
	if len(addrs) == 0 {
		return ""
	}
	return addrs[0]
}

func (t Topology) validate() error {
	if len(t.Shufflers) < 2 {
		return errors.New("cluster: PEOS needs at least 2 shufflers")
	}
	if t.Analyzer != "" && len(t.Analyzers) > 0 {
		return errors.New("cluster: set Topology.Analyzer or Topology.Analyzers, not both")
	}
	if len(t.AnalyzerAddrs()) == 0 {
		return errors.New("cluster: topology needs the analyzer address")
	}
	for a, addr := range t.Analyzers {
		if addr == "" {
			return fmt.Errorf("cluster: analyzer shard %d has an empty address", a)
		}
	}
	return nil
}

// DefaultDialTimeout bounds how long a role retries dialing a peer
// that has not started listening yet (cluster processes start in no
// particular order).
const DefaultDialTimeout = 10 * time.Second

// DefaultHelloTimeout is the default bound on the wait for an inbound
// connection's hello frame: a connection that sends nothing identifies
// as nothing and is dropped, so it can neither pin its handshake
// goroutine nor survive the node's teardown unnoticed. Nodes override
// it with their config's HelloTimeout.
const DefaultHelloTimeout = 30 * time.Second

// helloBound resolves a config's hello timeout (0 = default).
func helloBound(d time.Duration) time.Duration {
	if d <= 0 {
		return DefaultHelloTimeout
	}
	return d
}

// DialFunc establishes one connection attempt to addr within timeout.
// Nodes and clients accept one as a hook so tests can interpose a
// chaos layer (faultnet.Network.Dial has this shape); nil means plain
// net.DialTimeout over TCP.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

// netDial is the default DialFunc.
func netDial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// RetryPolicy shapes an automatic retry loop: the analyzer's
// collection-round retries and the client's reconnect/resubmit both
// take one. The zero policy means "no retry" (a single attempt), which
// keeps every pre-existing single-shot behavior intact unless a
// deployment opts in.
type RetryPolicy struct {
	// Attempts caps the tries per operation; values <= 1 disable
	// retrying.
	Attempts int
	// BaseBackoff seeds the exponential backoff between attempts
	// (default 50ms). The sleep before retry k is
	// min(BaseBackoff<<k, MaxBackoff), jittered to a uniform draw in
	// [d/2, d) so simultaneous retriers decorrelate.
	BaseBackoff time.Duration
	// MaxBackoff caps a single backoff sleep (default 2s).
	MaxBackoff time.Duration
}

// enabled reports whether the policy retries at all.
func (p RetryPolicy) enabled() bool { return p.Attempts > 1 }

// withDefaults fills the zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	return p
}

// backoff returns the jittered sleep before retry attempt k (0-based).
func (p RetryPolicy) backoff(k int) time.Duration {
	d := p.BaseBackoff
	for i := 0; i < k && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return jitter(d)
}

// jitter maps d to a uniform draw in [d/2, d). The draw is
// math/rand/v2 (not the repo's seeded rng): backoff spacing must
// decorrelate concurrent retriers and never needs reproducibility —
// nothing statistical consumes it.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int64N(int64(half)))
}

// dialRetry dials addr through dial (nil = TCP), retrying failed
// attempts with jittered exponential backoff until the overall timeout
// budget is spent — roles of one cluster start concurrently and must
// tolerate peers that are not listening yet. Each attempt gets the
// remaining budget as its own timeout, so a blackholed peer cannot
// stall the loop past the deadline the way an untimed net.Dial could.
func dialRetry(dial DialFunc, addr string, timeout time.Duration) (net.Conn, error) {
	if dial == nil {
		dial = netDial
	}
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	deadline := time.Now().Add(timeout)
	backoff := 10 * time.Millisecond
	const maxBackoff = 500 * time.Millisecond
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, fmt.Errorf("cluster: dialing %s: timed out after %v", addr, timeout)
		}
		conn, err := dial(addr, remaining)
		if err == nil {
			return conn, nil
		}
		remaining = time.Until(deadline)
		if remaining <= 0 {
			return nil, fmt.Errorf("cluster: dialing %s: %w", addr, err)
		}
		sleep := jitter(backoff)
		if sleep > remaining {
			sleep = remaining
		}
		time.Sleep(sleep)
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// gen identifies one collection attempt: the analyzer stamps every
// seal, abort, vector, and peer hello with the (collection, attempt)
// pair, so a connection or frame left over from an aborted round is
// recognizably stale instead of corrupting its successor. Attempt
// numbers increase monotonically across the analyzer's lifetime (not
// per collection), so a generation never repeats.
type gen struct {
	col uint32
	att uint32
}

// less orders generations: collection first, then attempt.
func (g gen) less(o gen) bool {
	return g.col < o.col || (g.col == o.col && g.att < o.att)
}

// maxDuration returns the larger of two durations.
func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// listenOrUse binds the configured address unless the caller already
// bound a listener (tests and examples bind first to learn the port).
func listenOrUse(ln net.Listener, addr string) (net.Listener, error) {
	if ln != nil {
		return ln, nil
	}
	return net.Listen("tcp", addr)
}
