// Package cluster runs the PEOS security tier (§VI-A3, Algorithm 1)
// as real networked roles — the deployable face of the protocol that
// internal/protocol simulates in process. One collection round spans
// R+1 processes plus the reporting clients:
//
//	client    randomize value -> encode to a 64-bit word -> additively
//	          secret-share into R shares -> one plain share to each of
//	          shufflers 0..R-2, the last share AHE-encrypted under the
//	          analyzer's key to shuffler R-1
//	shuffler  collect its share column, append its own share of every
//	          joint fake report, run the encrypted oblivious shuffle
//	          with its peers (oblivious.RunParty over the TCP mesh),
//	          forward the resulting vector to the analyzer
//	analyzer  combine the R vectors, decrypt the ciphertext column with
//	          the AHE private key, decode, aggregate, estimate — and,
//	          when durable, write-ahead log and checkpoint each sealed
//	          collection so a crashed analyzer recovers bit-identically
//	          (store reuse from the streaming service, DESIGN.md §8/§9)
//
// Trust boundaries are real process boundaries: a shuffler only ever
// holds one share column (its own fakes included), so no coalition of
// fewer than all R shufflers learns a report; the analyzer receives
// only post-shuffle vectors, so it cannot link a report to a client;
// and the encrypted column keeps even an all-shuffler coalition blind
// (§VI-A2). The estimates are bit-identical to protocol.PEOS.Run for
// matching seeds — the cross-conformance tests and examples/peos_cluster
// assert it — because the estimator (protocol.Estimate) consumes an
// order-independent integer statistic of the same report multiset.
//
// Collections are the continual-observation unit: the analyzer drives
// one Collect per round, charges its budget.Ledger per collection, and
// accumulates support counts across rounds exactly (integers merge
// bit-identically in any order).
package cluster

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// Topology names the cluster's listen addresses: Shufflers[j] is
// shuffler j's address (R = len(Shufflers)), Analyzer the analyzer's.
// Every role is configured with the same Topology, agreed out of band
// like the protocol parameters themselves.
type Topology struct {
	// Shufflers holds the shuffler listen addresses, indexed by role.
	Shufflers []string
	// Analyzer is the analyzer's listen address.
	Analyzer string
}

// R returns the shuffler count.
func (t Topology) R() int { return len(t.Shufflers) }

func (t Topology) validate() error {
	if len(t.Shufflers) < 2 {
		return errors.New("cluster: PEOS needs at least 2 shufflers")
	}
	if t.Analyzer == "" {
		return errors.New("cluster: topology needs the analyzer address")
	}
	return nil
}

// DefaultDialTimeout bounds how long a role retries dialing a peer
// that has not started listening yet (cluster processes start in no
// particular order).
const DefaultDialTimeout = 10 * time.Second

// helloTimeout bounds the wait for an inbound connection's hello
// frame: a connection that sends nothing identifies as nothing and is
// dropped, so it can neither pin its handshake goroutine nor survive
// the node's teardown unnoticed.
const helloTimeout = 30 * time.Second

// dialRetry dials addr, retrying with a short backoff until timeout —
// roles of one cluster start concurrently and must tolerate peers that
// are not listening yet.
func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: dialing %s: %w", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// listenOrUse binds the configured address unless the caller already
// bound a listener (tests and examples bind first to learn the port).
func listenOrUse(ln net.Listener, addr string) (net.Listener, error) {
	if ln != nil {
		return ln, nil
	}
	return net.Listen("tcp", addr)
}
