package cluster_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"shuffledp/internal/ahe"
	"shuffledp/internal/cluster"
	"shuffledp/internal/ldp"
	"shuffledp/internal/protocol"
	"shuffledp/internal/rng"
	"shuffledp/internal/secretshare"
	"shuffledp/internal/transport"
)

// testTimeout bounds every wait in the cluster tests so a protocol
// bug shows up as a failure, never a hung CI job.
const testTimeout = 30 * time.Second

// testKey is generated once; DGK keygen is probabilistic-prime search
// and need not be repeated per test.
var testKey *ahe.DGKPrivateKey

func sharedKey(t *testing.T) *ahe.DGKPrivateKey {
	t.Helper()
	if testKey == nil {
		priv, err := ahe.GenerateDGK(512, 64)
		if err != nil {
			t.Fatal(err)
		}
		testKey = priv
	}
	return testKey
}

// harness spins up an R-shuffler + analyzer cluster on loopback
// listeners.
type harness struct {
	topo      cluster.Topology
	analyzer  *cluster.Analyzer
	shufflers []*cluster.Shuffler
	runErr    []chan error
}

// bindTopology reserves loopback listeners for every role so the
// topology carries real addresses before any node starts.
func bindTopology(t *testing.T, r int) (cluster.Topology, []net.Listener, net.Listener) {
	t.Helper()
	lns := make([]net.Listener, r)
	topo := cluster.Topology{Shufflers: make([]string, r)}
	for j := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[j] = ln
		topo.Shufflers[j] = ln.Addr().String()
	}
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	topo.Analyzer = aln.Addr().String()
	return topo, lns, aln
}

// startCluster builds and runs the cluster. fakeSeed aligns each
// shuffler's fake shares with an in-process reference; mutate tweaks
// configs before the nodes start.
func startCluster(t *testing.T, r, nr int, fo ldp.FrequencyOracle, priv *ahe.DGKPrivateKey, fakeSeed uint64, mutateA func(*cluster.AnalyzerConfig), mutateS func(int, *cluster.ShufflerConfig)) *harness {
	t.Helper()
	topo, lns, aln := bindTopology(t, r)
	acfg := cluster.AnalyzerConfig{
		Topology:       topo,
		Listener:       aln,
		FO:             fo,
		NR:             nr,
		Priv:           priv,
		CollectTimeout: testTimeout,
	}
	if mutateA != nil {
		mutateA(&acfg)
	}
	analyzer, err := cluster.NewAnalyzer(acfg)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{topo: topo, analyzer: analyzer}
	for j := 0; j < r; j++ {
		scfg := cluster.ShufflerConfig{
			Index:       j,
			Topology:    topo,
			Listener:    lns[j],
			NR:          nr,
			Pub:         ahe.PublicKey(priv),
			Source:      rng.Substream(fakeSeed, 1000+uint64(j)),
			FakeSource:  rng.Substream(fakeSeed, uint64(j)),
			SealTimeout: testTimeout,
		}
		if mutateS != nil {
			mutateS(j, &scfg)
		}
		sh, err := cluster.NewShuffler(scfg)
		if err != nil {
			t.Fatal(err)
		}
		h.shufflers = append(h.shufflers, sh)
		errc := make(chan error, 1)
		h.runErr = append(h.runErr, errc)
		go func() { errc <- sh.Run() }()
	}
	t.Cleanup(func() {
		h.analyzer.Close()
		for _, sh := range h.shufflers {
			sh.Close()
		}
	})
	return h
}

// refFakeSource returns the FakeSource hook that mirrors the cluster
// harness's per-shuffler fake substreams into protocol.PEOS — the
// sources persist across Run calls, exactly like a long-lived node.
func refFakeSource(fakeSeed uint64, r int) func(j int) secretshare.Source {
	srcs := make([]secretshare.Source, r)
	for j := range srcs {
		srcs[j] = rng.Substream(fakeSeed, uint64(j))
	}
	return func(j int) secretshare.Source { return srcs[j] }
}

func synthValues(n, d int, seed uint64) []int {
	src := rng.New(seed)
	values := make([]int, n)
	for i := range values {
		values[i] = src.Intn(d)
	}
	return values
}

func estimatesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The networked cluster must reproduce protocol.PEOS.Run
// bit-identically for matched seeds — with r=3 the run exercises
// seekers, encrypted-column hops, and all three hide-and-seek rounds
// over real TCP connections.
func TestClusterMatchesInProcessPEOSThreeShufflers(t *testing.T) {
	const (
		r        = 3
		n        = 40
		d        = 8
		nr       = 6
		fakeSeed = 21
		ldpSeed  = 22
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)
	values := synthValues(n, d, 23)

	h := startCluster(t, r, nr, fo, priv, fakeSeed, nil, nil)
	cl, err := cluster.DialClient(h.topo, fo, ahe.PublicKey(priv), rng.New(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SendValues(0, values, rng.New(ldpSeed)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	col, err := h.analyzer.Collect(n)
	if err != nil {
		t.Fatal(err)
	}

	p, err := protocol.NewPEOS(fo, r, nr, priv, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	p.FakeSource = refFakeSource(fakeSeed, r)
	ref, err := p.Run(values, rng.New(ldpSeed))
	if err != nil {
		t.Fatal(err)
	}
	if !estimatesEqual(col.Estimates, ref.Estimates) {
		t.Fatalf("cluster estimates diverged from PEOS.Run:\n net %v\n ref %v", col.Estimates, ref.Estimates)
	}
	if !estimatesEqual(h.analyzer.Estimates(), ref.Estimates) {
		t.Fatal("cumulative estimate diverged after one collection")
	}
}

// Two collection rounds accumulate exactly: the cumulative estimate
// equals the protocol-layer estimator over both rounds' reports.
func TestClusterMultiCollectionAccumulates(t *testing.T) {
	const (
		r        = 2
		n        = 30
		d        = 8
		nr       = 4
		fakeSeed = 31
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)
	h := startCluster(t, r, nr, fo, priv, fakeSeed, nil, nil)
	cl, err := cluster.DialClient(h.topo, fo, ahe.PublicKey(priv), rng.New(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	p, err := protocol.NewPEOS(fo, r, nr, priv, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	p.FakeSource = refFakeSource(fakeSeed, r)

	var allRef []ldp.Report
	for round := 0; round < 2; round++ {
		values := synthValues(n, d, 40+uint64(round))
		cl.SetCollection(round)
		if err := cl.SendValues(0, values, rng.New(50+uint64(round))); err != nil {
			t.Fatal(err)
		}
		if err := cl.Flush(); err != nil {
			t.Fatal(err)
		}
		col, err := h.analyzer.Collect(n)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		ref, err := p.Run(values, rng.New(50+uint64(round)))
		if err != nil {
			t.Fatal(err)
		}
		if !estimatesEqual(col.Estimates, ref.Estimates) {
			t.Fatalf("round %d estimates diverged", round)
		}
		allRef = append(allRef, ref.Reports...)
	}
	if h.analyzer.Collections() != 2 {
		t.Fatalf("want 2 collections, got %d", h.analyzer.Collections())
	}
	wantCum := protocol.Estimate(fo, allRef, 2*n, 2*nr)
	if !estimatesEqual(h.analyzer.Estimates(), wantCum) {
		t.Fatalf("cumulative estimate diverged:\n net %v\n ref %v", h.analyzer.Estimates(), wantCum)
	}
	reals, fakes := h.analyzer.Totals()
	if reals != 2*n || fakes != 2*nr {
		t.Fatalf("totals (%d, %d), want (%d, %d)", reals, fakes, 2*n, 2*nr)
	}
}

// Killing a shuffler mid-stream must fail the round with a clean
// protocol error at the analyzer and at the surviving shufflers —
// never a hang (the CI smoke job drives the same scenario through
// examples/peos_cluster).
func TestClusterKilledShufflerFailsCleanly(t *testing.T) {
	const (
		r  = 2
		n  = 30
		d  = 8
		nr = 4
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)
	h := startCluster(t, r, nr, fo, priv, 61, nil, func(_ int, cfg *cluster.ShufflerConfig) {
		cfg.SealTimeout = 2 * time.Second
	})
	cl, err := cluster.DialClient(h.topo, fo, ahe.PublicKey(priv), rng.New(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Half the round arrives, then shuffler 0 dies.
	if err := cl.SendValues(0, synthValues(n/2, d, 62), rng.New(63)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	h.shufflers[0].Close()

	errc := make(chan error, 1)
	go func() {
		_, err := h.analyzer.Collect(n)
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Collect succeeded with a dead shuffler")
		}
	case <-time.After(testTimeout):
		t.Fatal("Collect hung on a dead shuffler")
	}
	// A failed round ends the run: tearing the analyzer down unblocks
	// every surviving shuffler (control-link EOF), so no Run hangs.
	h.analyzer.Close()
	for j, errcj := range h.runErr {
		select {
		case <-errcj:
		case <-time.After(testTimeout):
			t.Fatalf("shuffler %d 's Run hung after the kill", j)
		}
	}
}

// A client that stalls on a shuffler connection is dropped by the
// ingest idle deadline; a healthy client then completes the round.
func TestClusterShufflerDropsIdleClient(t *testing.T) {
	const (
		r  = 2
		n  = 20
		d  = 8
		nr = 2
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)
	h := startCluster(t, r, nr, fo, priv, 71, nil, func(_ int, cfg *cluster.ShufflerConfig) {
		cfg.IdleTimeout = 100 * time.Millisecond
	})
	// The stalled client: hello, then silence, never closed.
	stalled, err := net.Dial("tcp", h.topo.Shufflers[0])
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if err := transport.WriteTaggedFrame(stalled, 3 /* clientHello */, []byte{0}); err != nil {
		t.Fatal(err)
	}

	cl, err := cluster.DialClient(h.topo, fo, ahe.PublicKey(priv), rng.New(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SendValues(0, synthValues(n, d, 72), rng.New(73)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.analyzer.Collect(n); err != nil {
		t.Fatalf("round failed despite healthy client: %v", err)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	priv := sharedKey(t)
	fo := ldp.NewGRR(4, 1)
	goodTopo := cluster.Topology{Shufflers: []string{"a", "b"}, Analyzer: "c"}
	if _, err := cluster.NewShuffler(cluster.ShufflerConfig{Index: 5, Topology: goodTopo, Pub: ahe.PublicKey(priv), Source: rng.New(1)}); err == nil {
		t.Fatal("accepted out-of-range shuffler index")
	}
	if _, err := cluster.NewShuffler(cluster.ShufflerConfig{Index: 0, Topology: cluster.Topology{Shufflers: []string{"a"}, Analyzer: "c"}, Pub: ahe.PublicKey(priv), Source: rng.New(1)}); err == nil {
		t.Fatal("accepted a 1-shuffler cluster")
	}
	if _, err := cluster.NewAnalyzer(cluster.AnalyzerConfig{Topology: goodTopo, FO: fo, Priv: priv, NR: -1}); err == nil {
		t.Fatal("accepted negative fakes")
	}
	if _, err := cluster.NewAnalyzer(cluster.AnalyzerConfig{Topology: goodTopo, FO: ldp.NewRAP(4, 1), Priv: priv}); err == nil ||
		!strings.Contains(err.Error(), "word encoding") {
		t.Fatalf("accepted a non-word-encodable oracle: %v", err)
	}
	if _, err := cluster.RecoverAnalyzer(cluster.AnalyzerConfig{Topology: goodTopo, FO: fo, Priv: priv}); err == nil {
		t.Fatal("RecoverAnalyzer accepted an empty DataDir")
	}
}

// A fresh NewAnalyzer over a directory that already holds durable
// state must refuse and point at RecoverAnalyzer.
func TestAnalyzerRefusesExistingState(t *testing.T) {
	priv := sharedKey(t)
	fo := ldp.NewGRR(4, 1)
	dir := t.TempDir()
	topo, lns, aln := bindTopology(t, 2)
	for _, ln := range lns {
		ln.Close()
	}
	a, err := cluster.NewAnalyzer(cluster.AnalyzerConfig{Topology: topo, Listener: aln, FO: fo, Priv: priv, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	if _, err := cluster.NewAnalyzer(cluster.AnalyzerConfig{Topology: topo, FO: fo, Priv: priv, DataDir: dir}); err == nil ||
		!strings.Contains(err.Error(), "RecoverAnalyzer") {
		t.Fatalf("want an ErrExists error pointing at RecoverAnalyzer, got %v", err)
	}
}

// A client flooding shares past the node's buffer cap is disconnected
// without taking the shuffler down.
func TestClusterShufflerCapsFloodingClient(t *testing.T) {
	const (
		r  = 2
		d  = 8
		nr = 2
	)
	priv := sharedKey(t)
	fo := ldp.NewGRR(d, 2)
	h := startCluster(t, r, nr, fo, priv, 91, nil, func(_ int, cfg *cluster.ShufflerConfig) {
		cfg.MaxBuffered = 25
	})
	flood, err := net.Dial("tcp", h.topo.Shufflers[0])
	if err != nil {
		t.Fatal(err)
	}
	defer flood.Close()
	if err := transport.WriteTaggedFrame(flood, 3 /* clientHello */, []byte{0}); err != nil {
		t.Fatal(err)
	}
	// 40 distinct shares for a collection that will never seal: the
	// node must cut the connection once its buffer cap (25) is reached.
	// Distinct indices and nonces — a repeated (index, nonce) pair would
	// be deduplicated as a resubmit and never count against the cap.
	var payload [24]byte
	wrote := 0
	for i := 0; i < 40; i++ {
		payload[3] = 99 // collection 99 (big-endian u32)
		payload[7] = byte(i)
		payload[15] = byte(i + 1) // per-report nonce
		if err := transport.WriteTaggedFrame(flood, 4 /* report */, payload[:]); err != nil {
			break
		}
		wrote++
	}
	// The node drops the connection; observe it as a read error/EOF.
	flood.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := flood.Read(make([]byte, 1)); err == nil {
		t.Fatal("flooding connection was not dropped")
	}
	// The node itself must still be alive (its Run has not returned).
	select {
	case err := <-h.runErr[0]:
		t.Fatalf("shuffler died on a flooding client: %v", err)
	case <-time.After(200 * time.Millisecond):
	}
	_ = wrote
}
