package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"shuffledp/internal/ahe"
	"shuffledp/internal/budget"
	"shuffledp/internal/ldp"
	"shuffledp/internal/oblivious"
	"shuffledp/internal/protocol"
	"shuffledp/internal/secretshare"
	"shuffledp/internal/store"
	"shuffledp/internal/transport"
)

// AnalyzerConfig parameterizes the analyzer node.
type AnalyzerConfig struct {
	// Topology names every role's address.
	Topology Topology
	// Listener optionally supplies a pre-bound listener (overriding
	// Topology.Analyzer); the node closes it.
	Listener net.Listener
	// FO is the frequency oracle the clients report through (GRR or a
	// hashing oracle — the word-encodable PEOS set).
	FO ldp.FrequencyOracle
	// NR is the joint fake-report count per collection.
	NR int
	// Priv is the AHE key pair; only the analyzer ever holds the
	// private half.
	Priv ahe.PrivateKey
	// Workers sizes the decryption fan-out (<1 means GOMAXPROCS), the
	// paper's parallel-decryption server (§VII-D).
	Workers int
	// Ledger, when non-nil, is charged one per-collection guarantee at
	// every Collect; once it refuses, Collect returns an error wrapping
	// budget.ErrExhausted and the analyzer stays queryable.
	Ledger *budget.Ledger
	// DataDir, when non-empty, makes the analyzer durable: each sealed
	// collection's decoded words are write-ahead logged and the
	// cumulative counts checkpointed, so RecoverAnalyzer restores a
	// crashed analyzer bit-identically. (The log holds post-shuffle
	// DECODED reports — exactly what the analyzer role legitimately
	// sees; it never holds anything linkable to a client.)
	DataDir string
	// Sync is the WAL fsync policy (store.SyncBatch when zero);
	// rotation markers and checkpoints are always fsynced.
	Sync store.SyncPolicy
	// CollectTimeout bounds each phase of a Collect: the wait for all
	// shufflers to be connected and each vector read. 0 means no bound.
	CollectTimeout time.Duration
	// Retry, when enabled (Attempts > 1), makes Collect self-healing: a
	// failed collection attempt is aborted at every shuffler and re-run
	// after a jittered exponential backoff, up to Attempts tries. The
	// privacy charge and the durable seal stay exactly-once per
	// collection regardless of the attempt count. The zero policy keeps
	// the pre-existing single-shot semantics.
	Retry RetryPolicy
	// HelloTimeout bounds the wait for an inbound connection's hello
	// frame (0 = DefaultHelloTimeout).
	HelloTimeout time.Duration
	// Shard is this node's analyzer-shard index in [0, Topology.A()).
	// Shard 0 — the default, and the only shard of a single-analyzer
	// topology — is the coordinator: it drives Collect, owns the full
	// durable history, and serves estimates. Shards >= 1 are passive
	// window workers (DESIGN.md §13): they reveal their partition's cut
	// of each round and keep their own ledger/WAL per committed window.
	Shard int
	// Plan is the analyzer tier's domain-partition plan; every shard
	// (and no other role — shufflers learn the derived cuts from each
	// seal frame) must be configured with the same plan. The zero value
	// means EvenPlan(FO.Domain(), Topology.A()).
	Plan PartitionPlan
	// DialTimeout bounds connection establishment to the coordinator
	// (shard nodes only; 0 = DefaultDialTimeout).
	DialTimeout time.Duration
	// Dial, when non-nil, replaces net.DialTimeout for a shard node's
	// coordinator link — the chaos-injection hook (faultnet fits).
	Dial DialFunc
}

func (cfg *AnalyzerConfig) validate() error {
	if err := cfg.Topology.validate(); err != nil {
		return err
	}
	if cfg.FO == nil {
		return errors.New("cluster: analyzer needs a frequency oracle")
	}
	if cfg.NR < 0 {
		return errors.New("cluster: negative fake-report count")
	}
	if cfg.Priv == nil {
		return errors.New("cluster: analyzer needs the AHE private key")
	}
	if cfg.Priv.PlaintextBits() != 64 {
		return fmt.Errorf("cluster: PEOS requires a Z_{2^64} AHE plaintext space, got 2^%d", cfg.Priv.PlaintextBits())
	}
	if cfg.Shard < 0 || cfg.Shard >= cfg.Topology.A() {
		return fmt.Errorf("cluster: analyzer shard %d out of range [0, %d)", cfg.Shard, cfg.Topology.A())
	}
	return nil
}

// resolvePlan returns the tier's partition plan: the configured one
// (validated against the oracle's domain and the topology's shard
// count) or the balanced default.
func (cfg *AnalyzerConfig) resolvePlan() (PartitionPlan, error) {
	a := cfg.Topology.A()
	if len(cfg.Plan.Bounds) == 0 && cfg.Plan.Analyzers == 0 {
		return EvenPlan(cfg.FO.Domain(), a)
	}
	if err := cfg.Plan.Validate(cfg.FO.Domain()); err != nil {
		return PartitionPlan{}, err
	}
	if cfg.Plan.Analyzers != a {
		return PartitionPlan{}, fmt.Errorf("cluster: partition plan has %d shards, topology has %d analyzers", cfg.Plan.Analyzers, a)
	}
	return cfg.Plan, nil
}

// Collection is one sealed collection round's outcome.
type Collection struct {
	// Collection is the round's id, starting at 0.
	Collection int
	// Reports is the round's user-report count n.
	Reports int
	// Fakes is the round's joint fake-report count.
	Fakes int
	// Estimates is the round's own calibrated estimate (fake mass
	// subtracted) — bit-identical to protocol.PEOS.Run over the same
	// reports and fakes.
	Estimates []float64
	// Cumulative is the all-collections estimate after this round.
	Cumulative []float64
	// Attempts is how many attempts the round took (1 = first try; more
	// only when AnalyzerConfig.Retry re-ran the round after a fault).
	Attempts int
}

// Analyzer is the running analyzer node. Create with NewAnalyzer (or
// RecoverAnalyzer over a durable directory), drive rounds with
// Collect, query with Estimates/Totals, and stop with Close (orderly)
// or Crash (simulated power cut).
type Analyzer struct {
	cfg  AnalyzerConfig
	plan PartitionPlan
	enc  *ldp.WordEncoder
	mod  secretshare.Modulus
	ln   net.Listener
	st   *store.Store

	mu         sync.Mutex
	conns      []net.Conn            // by shuffler index (control links; data links on a shard)
	shardConns []net.Conn            // coordinator only: by shard index, slot 0 unused
	pending    map[net.Conn]struct{} // accepted, hello not yet read
	connMore   chan struct{}
	closed     bool

	stateMu     sync.Mutex
	counts      []int
	reals       int
	fakes       int
	collections int
	attempts    uint32 // monotonic attempt counter; never reused, so a generation never repeats
	// chunkCounts/chunkReals track the support counts and word count of
	// the windows THIS node revealed — the coordinator's own cut of a
	// sharded tier (equal to counts/reals on a single analyzer, where
	// the window is the whole vector). ShardCounts serves them; the
	// conformance suite sums them across the tier against counts.
	chunkCounts []int
	chunkReals  int

	// Shard-node state (cfg.Shard > 0): the coordinator control link,
	// buffered shuffler chunk frames, the in-flight window attempt, and
	// the prepared-but-uncommitted windows of the two-phase commit.
	coord     net.Conn
	coordWMu  sync.Mutex // serializes writes on the coordinator link
	chunks    *chunkBuf
	curShard  *shardAttempt
	preparedW map[uint32]*preparedWindow
}

// NewAnalyzer validates cfg, binds the listener, creates the durable
// store when configured (the directory must hold no prior state —
// recovering is RecoverAnalyzer's job, never an accident), and starts
// accepting shuffler connections.
func NewAnalyzer(cfg AnalyzerConfig) (*Analyzer, error) {
	a, err := prepareAnalyzer(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.DataDir != "" {
		st, err := store.Create(cfg.DataDir, a.storeMeta(), cfg.Sync)
		if err != nil {
			a.ln.Close()
			if errors.Is(err, store.ErrExists) {
				return nil, fmt.Errorf("cluster: %w (restart it with RecoverAnalyzer instead of NewAnalyzer)", err)
			}
			return nil, err
		}
		a.st = st
	}
	go a.acceptLoop()
	if a.cfg.Shard > 0 {
		go a.shardRun()
	}
	return a, nil
}

// prepareAnalyzer builds the shell shared by NewAnalyzer and
// RecoverAnalyzer: validation, listener, zeroed cumulative state, no
// store and no goroutines.
func prepareAnalyzer(cfg AnalyzerConfig) (*Analyzer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	enc, err := ldp.NewWordEncoder(cfg.FO)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	plan, err := cfg.resolvePlan()
	if err != nil {
		return nil, err
	}
	ln, err := listenOrUse(cfg.Listener, cfg.Topology.AnalyzerAddrs()[cfg.Shard])
	if err != nil {
		return nil, err
	}
	a := &Analyzer{
		cfg:      cfg,
		plan:     plan,
		enc:      enc,
		mod:      secretshare.NewModulus(64),
		ln:       ln,
		conns:    make([]net.Conn, cfg.Topology.R()),
		pending:  make(map[net.Conn]struct{}),
		connMore: make(chan struct{}, 1),
		counts:   make([]int, cfg.FO.Domain()),
	}
	if cfg.Shard == 0 && plan.Analyzers > 1 {
		a.shardConns = make([]net.Conn, plan.Analyzers)
		a.chunkCounts = make([]int, cfg.FO.Domain())
	}
	if cfg.Shard > 0 {
		a.chunks = newChunkBuf()
		a.preparedW = make(map[uint32]*preparedWindow)
	}
	return a, nil
}

func (a *Analyzer) storeMeta() store.Meta {
	return store.Meta{Oracle: a.cfg.FO.Name(), Domain: a.cfg.FO.Domain()}
}

// Addr returns the bound listen address.
func (a *Analyzer) Addr() string { return a.ln.Addr().String() }

// acceptLoop registers inbound connections by their hello. On every
// node, shuffler hellos claim the per-shuffler link slot (a
// reconnecting shuffler replaces its old link); the coordinator of a
// sharded tier additionally accepts shard hellos, validating the
// peer's partition plan against its own. On a shard node the shuffler
// links are chunk DATA links, each drained by its own reader into the
// chunk buffer.
func (a *Analyzer) acceptLoop() {
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			// Track the connection before the hello (so Close can
			// unblock this read) and bound the hello wait itself.
			a.mu.Lock()
			if a.closed {
				a.mu.Unlock()
				conn.Close()
				return
			}
			a.pending[conn] = struct{}{}
			a.mu.Unlock()
			drop := func() {
				a.mu.Lock()
				delete(a.pending, conn)
				a.mu.Unlock()
				conn.Close()
			}
			conn.SetReadDeadline(time.Now().Add(helloBound(a.cfg.HelloTimeout)))
			tag, payload, err := transport.ReadTaggedFrame(conn)
			if err != nil {
				drop()
				return
			}
			conn.SetReadDeadline(time.Time{})
			switch tag {
			case tagShufflerHello:
				idx, err := parseHelloIndex(payload, a.cfg.Topology.R())
				if err != nil {
					drop()
					return
				}
				a.mu.Lock()
				delete(a.pending, conn)
				if a.closed {
					a.mu.Unlock()
					conn.Close()
					return
				}
				if old := a.conns[idx]; old != nil {
					old.Close()
				}
				a.conns[idx] = conn
				a.mu.Unlock()
				if a.cfg.Shard > 0 {
					go a.readChunks(idx, conn)
				}
			case tagShardHello:
				shard, plan, err := parseShardHello(payload)
				if err != nil || a.cfg.Shard != 0 || a.shardConns == nil ||
					shard >= a.plan.Analyzers || !planEqual(plan, a.plan) {
					drop()
					return
				}
				a.mu.Lock()
				delete(a.pending, conn)
				if a.closed {
					a.mu.Unlock()
					conn.Close()
					return
				}
				if old := a.shardConns[shard]; old != nil {
					old.Close()
				}
				a.shardConns[shard] = conn
				a.mu.Unlock()
			default:
				drop()
				return
			}
			select {
			case a.connMore <- struct{}{}:
			default:
			}
		}(conn)
	}
}

// awaitShufflers blocks until every shuffler control link — and, on a
// sharded coordinator, every shard link — exists.
func (a *Analyzer) awaitShufflers() (conns, shards []net.Conn, err error) {
	var deadline <-chan time.Time
	if a.cfg.CollectTimeout > 0 {
		t := time.NewTimer(a.cfg.CollectTimeout)
		defer t.Stop()
		deadline = t.C
	}
	for {
		a.mu.Lock()
		missing := 0
		for _, c := range a.conns {
			if c == nil {
				missing++
			}
		}
		for s := 1; s < len(a.shardConns); s++ {
			if a.shardConns[s] == nil {
				missing++
			}
		}
		conns = append([]net.Conn(nil), a.conns...)
		shards = append([]net.Conn(nil), a.shardConns...)
		closed := a.closed
		a.mu.Unlock()
		if closed {
			return nil, nil, errors.New("cluster: analyzer closed")
		}
		if missing == 0 {
			return conns, shards, nil
		}
		select {
		case <-a.connMore:
		case <-deadline:
			return nil, nil, fmt.Errorf("cluster: %d cluster link(s) never connected", missing)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Collect drives one collection round over n user reports: broadcast
// the seal, await every shuffler's post-shuffle vector, reconstruct
// (decrypting the ciphertext column in parallel), decode, and fold the
// round's support counts into the cumulative state — durably, when
// configured. The caller must have flushed the clients' shares for the
// round before sealing it; the shufflers wait out in-flight frames,
// but a share that was never sent fails the round at their
// SealTimeout.
//
// With Retry enabled, a failed attempt (a shuffler died, reset, timed
// out) is aborted everywhere and the round re-runs under a fresh
// generation after a jittered backoff: the dead link is dropped so its
// shuffler can re-dial, the survivors get an abort frame, and buffered
// client shares plus cached fake shares make the re-run bit-identical
// to a round that never failed. The privacy ledger is charged exactly
// once per collection (on the first attempt that reaches the seal
// broadcast), and the WAL seal happens only for the attempt that
// succeeds.
//
// A Collect error means the round is lost across all attempts: nothing
// was aggregated or charged durably (the in-memory ledger charge, the
// bound on what the seal broadcasts disclosed, stands), and the clean
// way out is to Close the analyzer — the control-link EOF unblocks
// every surviving shuffler's Run — and start a fresh cluster, a
// durable analyzer recovering its sealed history. The kill-one-
// shuffler smoke test (examples/peos_cluster -kill) exercises exactly
// this path with retry disabled.
func (a *Analyzer) Collect(n int) (Collection, error) {
	if n <= 0 {
		return Collection{}, errors.New("cluster: Collect needs n > 0")
	}
	if a.cfg.Shard != 0 {
		return Collection{}, errShardPassive
	}
	if a.isClosed() {
		return Collection{}, errors.New("cluster: analyzer closed")
	}
	policy := a.cfg.Retry.withDefaults()
	a.stateMu.Lock()
	collection := uint32(a.collections)
	a.stateMu.Unlock()
	charged := false
	var lastErr error
	for try := 0; try < policy.Attempts; try++ {
		if try > 0 {
			time.Sleep(policy.backoff(try - 1))
			if a.isClosed() {
				return Collection{}, errors.New("cluster: analyzer closed")
			}
		}
		conns, shards, err := a.awaitShufflers()
		if err != nil {
			if a.isClosed() {
				return Collection{}, err
			}
			lastErr = err
			continue
		}
		// Charge only once every shuffler is reachable, and only once
		// per collection no matter how many attempts it takes: the
		// charge bounds disclosure, and every attempt seals the same
		// report multiset (the charge still precedes the first seal
		// broadcast, the first actual disclosure).
		if !charged && a.cfg.Ledger != nil {
			if err := a.cfg.Ledger.Charge(); err != nil {
				return Collection{}, fmt.Errorf("cluster: charging collection %d: %w", collection, err)
			}
		}
		charged = true
		g := gen{col: collection, att: a.nextAttempt()}
		words, badConn, badShard, err := a.attemptRound(conns, shards, g, n)
		if err != nil {
			lastErr = fmt.Errorf("cluster: collection %d attempt %d: %w", g.col, g.att, err)
			a.recoverConns(conns, shards, g, badConn, badShard)
			continue
		}
		col, err := a.seal(collection, n, words, true)
		if err != nil {
			// A durable-store failure is not retryable: the round's
			// exchange succeeded, the disk did not.
			return Collection{}, err
		}
		col.Attempts = try + 1
		// Second phase of the shard two-phase commit: the coordinator's
		// durable seal above is the commit point, so the shards now
		// seal their prepared windows too and confirm. A failure inside
		// this window is a hard error (the coordinator's round stands;
		// the shard heals its window from its WAL at the next seal's
		// watermark — DESIGN.md §13 spells out the caveat).
		if err := a.commitShards(shards, g); err != nil {
			return col, fmt.Errorf("cluster: collection %d sealed, but committing analyzer shards failed: %w", collection, err)
		}
		a.broadcastDone(conns, collection)
		return col, nil
	}
	return Collection{}, fmt.Errorf("cluster: collection %d failed after %d attempt(s): %w", collection, policy.Attempts, lastErr)
}

// nextAttempt allocates a generation's attempt number. Monotonic
// across the analyzer's lifetime — never per collection — so aborted
// attempts can never collide with their successors.
func (a *Analyzer) nextAttempt() uint32 {
	a.stateMu.Lock()
	defer a.stateMu.Unlock()
	att := a.attempts
	a.attempts++
	return att
}

// attemptRound runs one generation of a collection: shard seals (the
// window workers arm first, so no chunk can beat its seal), the seal
// broadcast to the shufflers, the coordinator's own window vectors,
// then each shard's revealed words — reassembled in cut order into the
// full post-shuffle word vector, byte-identical to what a single
// analyzer reveals. On failure it reports which shuffler or shard link
// had the I/O fault (-1/-1 for protocol-level failures where every
// link is still healthy), so the retry path drops exactly the dead
// link.
func (a *Analyzer) attemptRound(conns, shards []net.Conn, g gen, n int) ([]uint64, int, int, error) {
	total := n + a.cfg.NR
	cuts := a.plan.Cuts(total)
	for s := 1; s < len(shards); s++ {
		if a.cfg.CollectTimeout > 0 {
			shards[s].SetWriteDeadline(time.Now().Add(a.cfg.CollectTimeout))
		}
		err := writeShardSeal(shards[s], g, n)
		shards[s].SetWriteDeadline(time.Time{})
		if err != nil {
			return nil, -1, s, fmt.Errorf("sealing with analyzer shard %d: %w", s, err)
		}
	}
	for j, conn := range conns {
		if a.cfg.CollectTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(a.cfg.CollectTimeout))
		}
		err := writeSealFrame(conn, g, n, cuts)
		conn.SetWriteDeadline(time.Time{})
		if err != nil {
			return nil, j, -1, fmt.Errorf("sealing with shuffler %d: %w", j, err)
		}
	}
	words, badConn, err := a.awaitVectors(conns, g, cuts[1])
	if err != nil {
		return nil, badConn, -1, err
	}
	if len(shards) == 0 {
		return words, -1, -1, nil
	}
	full := make([]uint64, total)
	copy(full, words)
	for s := 1; s < len(shards); s++ {
		ws, err := a.awaitShardWords(shards[s], s, g, cuts[s+1]-cuts[s])
		if err != nil {
			return nil, -1, s, err
		}
		copy(full[cuts[s]:cuts[s+1]], ws)
	}
	return full, -1, -1, nil
}

// awaitVectors reads one vector frame per shuffler — each carrying
// this node's cut window of the post-shuffle vector (the whole vector
// on a single analyzer) — reconstructs the share sum, and decrypts the
// encrypted column. Frames stamped with an older generation are
// leftovers of aborted attempts (a late vector or its fail notice) and
// are skipped; the read deadline still bounds how long stale traffic
// can stall the round.
func (a *Analyzer) awaitVectors(conns []net.Conn, g gen, total int) ([]uint64, int, error) {
	r := a.cfg.Topology.R()
	st := &oblivious.State{Plain: make([][]uint64, r), EncHolder: -1}
	for j, conn := range conns {
	read:
		for {
			if a.cfg.CollectTimeout > 0 {
				if err := conn.SetReadDeadline(time.Now().Add(a.cfg.CollectTimeout)); err != nil {
					return nil, j, err
				}
			}
			tag, payload, err := transport.ReadTaggedFrame(conn)
			if err != nil {
				return nil, j, fmt.Errorf("reading shuffler %d vector: %w", j, err)
			}
			fg, body, err := splitPrefixed(payload)
			if err != nil {
				return nil, j, err
			}
			if fg != g {
				continue
			}
			switch tag {
			case tagVector:
				words, err := transport.DecodeUint64s(body)
				if err != nil {
					return nil, j, err
				}
				if len(words) != total {
					return nil, j, fmt.Errorf("%w: shuffler %d vector has %d words, want %d", errBadFrame, j, len(words), total)
				}
				st.Plain[j] = words
				break read
			case tagEncVector:
				if st.EncHolder >= 0 {
					return nil, -1, fmt.Errorf("%w: shufflers %d and %d both sent ciphertext vectors", errBadFrame, st.EncHolder, j)
				}
				cts, err := decodeCiphertexts(ahe.PublicKey(a.cfg.Priv), body)
				if err != nil {
					return nil, j, err
				}
				if len(cts) != total {
					return nil, j, fmt.Errorf("%w: shuffler %d ciphertext vector has %d elements, want %d", errBadFrame, j, len(cts), total)
				}
				st.Enc = cts
				st.EncHolder = j
				break read
			case tagFail:
				return nil, -1, fmt.Errorf("shuffler %d failed: %s", j, body)
			default:
				return nil, j, fmt.Errorf("%w: shuffler %d sent tag %d, want a vector", errBadFrame, j, tag)
			}
		}
	}
	if st.EncHolder < 0 {
		return nil, -1, errors.New("cluster: no shuffler delivered the encrypted column")
	}
	words, err := oblivious.RevealParallel(st, a.mod, a.cfg.Priv, a.cfg.Workers)
	return words, -1, err
}

// recoverConns cleans up after a failed attempt: the connection whose
// I/O failed is dropped (its shuffler — or shard — redials the control
// link), the others get an abort frame so their attempt goroutines
// cancel promptly; a link that cannot even take the abort is dropped
// too.
func (a *Analyzer) recoverConns(conns, shards []net.Conn, g gen, badConn, badShard int) {
	for j, conn := range conns {
		if conn == nil {
			continue
		}
		if j == badConn {
			a.dropShuffler(j, conn)
			continue
		}
		if a.cfg.CollectTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(a.cfg.CollectTimeout))
		}
		err := writeAbortFrame(conn, g)
		conn.SetWriteDeadline(time.Time{})
		if err != nil {
			a.dropShuffler(j, conn)
		}
	}
	for s := 1; s < len(shards); s++ {
		conn := shards[s]
		if conn == nil {
			continue
		}
		if s == badShard {
			a.dropShard(s, conn)
			continue
		}
		if a.cfg.CollectTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(a.cfg.CollectTimeout))
		}
		err := writeAbortFrame(conn, g)
		conn.SetWriteDeadline(time.Time{})
		if err != nil {
			a.dropShard(s, conn)
		}
	}
}

// broadcastDone tells every shuffler the collection sealed durably, so
// they can prune its buffered shares, cached fakes, and parked mesh
// connections. Best-effort: a shuffler that misses it prunes on the
// next seal instead.
func (a *Analyzer) broadcastDone(conns []net.Conn, collection uint32) {
	for j, conn := range conns {
		if conn == nil {
			continue
		}
		if a.cfg.CollectTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(a.cfg.CollectTimeout))
		}
		err := writeDoneFrame(conn, collection)
		conn.SetWriteDeadline(time.Time{})
		if err != nil {
			a.dropShuffler(j, conn)
		}
	}
}

// dropShuffler closes a dead shuffler link and clears its slot (if
// still current) so awaitShufflers waits for the reconnect.
func (a *Analyzer) dropShuffler(j int, conn net.Conn) {
	a.mu.Lock()
	if a.conns[j] == conn {
		a.conns[j] = nil
	}
	a.mu.Unlock()
	conn.Close()
}

// dropShard closes a dead analyzer-shard link and clears its slot (if
// still current) so awaitShufflers waits for the shard's redial.
func (a *Analyzer) dropShard(s int, conn net.Conn) {
	a.mu.Lock()
	if a.shardConns[s] == conn {
		a.shardConns[s] = nil
	}
	a.mu.Unlock()
	conn.Close()
}

func (a *Analyzer) isClosed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.closed
}

// seal makes one collection's decoded words durable (WAL + rotation
// marker + checkpoint when configured) and folds them into the
// cumulative counts. persist=false is the recovery replay, which
// re-seals from the already-durable WAL tail.
func (a *Analyzer) seal(collection uint32, n int, words []uint64, persist bool) (Collection, error) {
	if persist && a.st != nil {
		// The round's words reach the platters before they can
		// influence any served estimate, mirroring the service's
		// WAL-before-aggregate invariant.
		if err := a.st.AppendReport(collection, transport.EncodeUint64s(words)); err != nil {
			return Collection{}, err
		}
		if err := a.st.Commit(); err != nil {
			return Collection{}, err
		}
		if err := a.st.Rotate(collection, int64(collection)+1); err != nil {
			return Collection{}, err
		}
	}
	reports := make([]ldp.Report, len(words))
	for i, w := range words {
		reports[i] = a.enc.Decode(w)
	}
	colCounts := ldp.SupportCounts(a.cfg.FO, reports)
	a.stateMu.Lock()
	for v, c := range colCounts {
		a.counts[v] += c
	}
	a.reals += n
	a.fakes += a.cfg.NR
	a.collections = int(collection) + 1
	if a.chunkCounts != nil {
		// Track the coordinator's own window tally. Recomputed from the
		// words (not captured during the reveal) so a recovery replay —
		// which re-seals from the WAL'd full vector — derives the same
		// chunk deterministically.
		cut := a.plan.Cuts(len(words))[1]
		chunk := ldp.SupportCounts(a.cfg.FO, reports[:cut])
		for v, c := range chunk {
			a.chunkCounts[v] += c
		}
		a.chunkReals += cut
	}
	cum := protocol.EstimateCounts(a.cfg.FO, a.counts, a.reals, a.fakes)
	a.stateMu.Unlock()
	if a.st != nil {
		if err := a.writeCheckpoint(); err != nil {
			return Collection{}, err
		}
	}
	return Collection{
		Collection: int(collection),
		Reports:    n,
		Fakes:      a.cfg.NR,
		Estimates:  protocol.EstimateCounts(a.cfg.FO, colCounts, n, a.cfg.NR),
		Cumulative: cum,
	}, nil
}

// Estimates returns the cumulative calibrated estimate over every
// sealed collection (all zeros before the first).
func (a *Analyzer) Estimates() []float64 {
	a.stateMu.Lock()
	defer a.stateMu.Unlock()
	return protocol.EstimateCounts(a.cfg.FO, a.counts, a.reals, a.fakes)
}

// Totals returns the cumulative user-report and fake-report counts.
func (a *Analyzer) Totals() (reports, fakes int) {
	a.stateMu.Lock()
	defer a.stateMu.Unlock()
	return a.reals, a.fakes
}

// Collections returns how many collection rounds have sealed.
func (a *Analyzer) Collections() int {
	a.stateMu.Lock()
	defer a.stateMu.Unlock()
	return a.collections
}

// ShardCounts returns the cumulative support counts over the vector
// windows THIS node revealed: a shard's full tally, the coordinator's
// own cut on a sharded tier, and the whole count vector on a single
// analyzer. Summing every tier member's ShardCounts with
// protocol.MergeShardCounts reproduces the coordinator's cumulative
// counts exactly — the merge proof obligation of DESIGN.md §13. (A
// coordinator recovered from a pre-sharding store starts with its
// window tally equal to the full counts: it really did reveal every
// word of those rounds.)
func (a *Analyzer) ShardCounts() []int {
	a.stateMu.Lock()
	defer a.stateMu.Unlock()
	if a.chunkCounts != nil {
		return append([]int(nil), a.chunkCounts...)
	}
	return append([]int(nil), a.counts...)
}

// Close shuts the node down in an orderly way: the listener and every
// shuffler link drop (shufflers read EOF and exit their Run cleanly),
// and the durable store is flushed and closed.
func (a *Analyzer) Close() error {
	a.shutdown(false)
	return nil
}

// Crash hard-stops a durable analyzer the way a power cut would: the
// WAL is closed without flushing, so only what the fsync policy made
// durable survives for RecoverAnalyzer. On an in-memory analyzer it
// behaves like Close.
func (a *Analyzer) Crash() { a.shutdown(true) }

func (a *Analyzer) shutdown(crash bool) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	conns := append([]net.Conn(nil), a.conns...)
	conns = append(conns, a.shardConns...)
	if a.coord != nil {
		conns = append(conns, a.coord)
	}
	for c := range a.pending {
		conns = append(conns, c)
	}
	cur := a.curShard
	a.mu.Unlock()
	if cur != nil {
		cur.abort()
	}
	a.ln.Close()
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
	if a.st == nil {
		return
	}
	if crash {
		a.st.Abort()
		return
	}
	a.st.Close()
}

// --- durable state blob ---

// stateMagic/stateVersion frame the cumulative-counts blob stored in
// the checkpoint's aggregate slot. Version 1 is the single-analyzer
// (and shard-node) layout; version 2 — written only by a sharded
// coordinator — appends the node's own window tally
// ([chunkReals u64][chunkCounts u64 × d]) so ShardCounts survives
// recovery.
const (
	stateMagic        = "PEOA"
	stateVersion      = 1
	stateVersionShard = 2
)

// marshalState encodes (NR, reals, fakes, collections, counts). NR is
// recorded so a recovery with a mismatched fake-report count is
// refused (it would silently mis-calibrate every estimate) instead of
// loaded. Callers hold stateMu.
func (a *Analyzer) marshalState() []byte {
	version := byte(stateVersion)
	if a.chunkCounts != nil {
		version = stateVersionShard
	}
	buf := append([]byte(nil), stateMagic...)
	buf = append(buf, version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a.cfg.NR))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(a.reals))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(a.fakes))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(a.collections))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a.counts)))
	for _, c := range a.counts {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c))
	}
	if version == stateVersionShard {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(a.chunkReals))
		for _, c := range a.chunkCounts {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(c))
		}
	}
	return buf
}

func (a *Analyzer) unmarshalState(data []byte) error {
	const hdr = 4 + 1 + 4 + 8 + 8 + 8 + 4
	if len(data) < hdr || string(data[:4]) != stateMagic {
		return errors.New("cluster: malformed analyzer state blob")
	}
	version := data[4]
	if version != stateVersion && version != stateVersionShard {
		return fmt.Errorf("cluster: analyzer state version %d (this build reads %d and %d)", version, stateVersion, stateVersionShard)
	}
	nr := int(binary.LittleEndian.Uint32(data[5:]))
	if nr != a.cfg.NR {
		return fmt.Errorf("cluster: durable state was collected with NR=%d fakes per round, config says %d", nr, a.cfg.NR)
	}
	reals := binary.LittleEndian.Uint64(data[9:])
	fakes := binary.LittleEndian.Uint64(data[17:])
	collections := binary.LittleEndian.Uint64(data[25:])
	d := int(binary.LittleEndian.Uint32(data[33:]))
	if d != a.cfg.FO.Domain() {
		return fmt.Errorf("cluster: state blob covers domain %d, oracle has %d", d, a.cfg.FO.Domain())
	}
	want := hdr + 8*d
	if version == stateVersionShard {
		want += 8 + 8*d
	}
	if len(data) != want {
		return errors.New("cluster: truncated analyzer state blob")
	}
	a.reals = int(reals)
	a.fakes = int(fakes)
	a.collections = int(collections)
	for v := range a.counts {
		a.counts[v] = int(binary.LittleEndian.Uint64(data[hdr+8*v:]))
	}
	switch {
	case version == stateVersionShard && a.chunkCounts != nil:
		off := hdr + 8*d
		a.chunkReals = int(binary.LittleEndian.Uint64(data[off:]))
		for v := range a.chunkCounts {
			a.chunkCounts[v] = int(binary.LittleEndian.Uint64(data[off+8+8*v:]))
		}
	case version == stateVersionShard:
		return errors.New("cluster: sharded-coordinator state blob, but this node is not a sharded coordinator")
	case a.chunkCounts != nil:
		// A pre-sharding store scaled out under a sharded topology: this
		// node revealed every word of the recorded rounds, so its window
		// tally starts at the full counts (keeping the tier-wide merge
		// sum exact — the fresh shards contribute zero for old rounds).
		copy(a.chunkCounts, a.counts)
		a.chunkReals = a.reals + a.fakes
	}
	return nil
}

// writeCheckpoint snapshots the cumulative state. Only OpenEpoch (the
// next collection id, which also drives WAL segment pruning), the
// ledger's charged count, and the state blob are meaningful for the
// analyzer; the service-specific counter slots stay zero.
func (a *Analyzer) writeCheckpoint() error {
	a.stateMu.Lock()
	cp := &store.Checkpoint{
		OpenEpoch: a.collections,
		AllTime:   a.marshalState(),
	}
	a.stateMu.Unlock()
	if a.cfg.Ledger != nil {
		cp.LedgerCharged = a.cfg.Ledger.Epochs()
	}
	return a.st.WriteCheckpoint(cp)
}

// RecoverAnalyzer rebuilds a durable analyzer from cfg.DataDir — the
// newest checkpoint plus a replay of the WAL tail — to a state
// bit-identical to an uninterrupted run over the same sealed
// collections, without re-spending privacy budget. cfg must carry the
// same oracle, NR, and key material as the original run (the oracle,
// domain, and NR are validated against the checkpoint; the AHE key
// must be the persisted one — see ahe.MarshalDGKPrivateKey — or
// future ciphertext columns will not decrypt). A collection whose words were
// logged but whose rotation marker never became durable is dropped:
// its Collect never returned success.
func RecoverAnalyzer(cfg AnalyzerConfig) (*Analyzer, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("cluster: RecoverAnalyzer needs AnalyzerConfig.DataDir")
	}
	a, err := prepareAnalyzer(cfg)
	if err != nil {
		return nil, err
	}
	st, rec, err := store.Open(cfg.DataDir, a.storeMeta(), cfg.Sync)
	if err != nil {
		a.ln.Close()
		return nil, err
	}
	a.st = st
	if err := a.restore(rec); err != nil {
		st.Close()
		a.ln.Close()
		return nil, err
	}
	go a.acceptLoop()
	if a.cfg.Shard > 0 {
		go a.shardRun()
	}
	return a, nil
}

// restore applies the checkpoint and replays the WAL tail. It runs
// before the accept loop exists, so it mutates state freely. Shard
// nodes replay with shard semantics (restoreShard): a words record is
// a PREPARED window there, so marker-less words are kept pending for
// the seal-watermark healing instead of dropped.
func (a *Analyzer) restore(rec *store.Recovered) error {
	if cp := rec.Checkpoint; cp != nil {
		if err := a.unmarshalState(cp.AllTime); err != nil {
			return err
		}
		if a.cfg.Ledger != nil {
			if err := a.cfg.Ledger.Restore(cp.LedgerCharged); err != nil {
				return fmt.Errorf("cluster: restoring ledger: %w", err)
			}
		}
	}
	if a.cfg.Shard > 0 {
		return a.restoreShard(rec)
	}
	// The tail holds, per interrupted collection, one words record and
	// — if the seal got as far as the marker — the rotation marker.
	// Marker present: replay the seal (charging the ledger exactly as
	// the live Collect did before the crash lost its in-memory
	// charge). Marker absent: the collection never completed; drop it.
	pending := map[uint32][]uint64{}
	for _, r := range rec.Tail {
		switch r.Type {
		case store.RecordReport:
			words, err := transport.DecodeUint64s(r.Payload)
			if err != nil {
				return fmt.Errorf("cluster: WAL words for collection %d: %w", r.Epoch, err)
			}
			// A later words record supersedes an earlier one for the
			// same collection: a crash between a seal's Commit and its
			// marker leaves an orphan words record that a recovery
			// drops — but the orphan stays in the log, and the re-run
			// round writes the authoritative record behind it. Only a
			// marker turns pending words into state, so keeping the
			// last record is always correct.
			pending[r.Epoch] = words
		case store.RecordRotate:
			words, ok := pending[r.Epoch]
			if !ok {
				return fmt.Errorf("cluster: WAL seals collection %d without its words", r.Epoch)
			}
			delete(pending, r.Epoch)
			if int(r.Epoch) != a.collections {
				return fmt.Errorf("cluster: WAL seals collection %d while %d collections are sealed", r.Epoch, a.collections)
			}
			n := len(words) - a.cfg.NR
			if n <= 0 {
				return fmt.Errorf("cluster: WAL collection %d has %d words for %d fakes", r.Epoch, len(words), a.cfg.NR)
			}
			if a.cfg.Ledger != nil {
				if err := a.cfg.Ledger.Charge(); err != nil {
					return fmt.Errorf("cluster: recharging collection %d: %w", r.Epoch, err)
				}
			}
			if _, err := a.seal(r.Epoch, n, words, false); err != nil {
				return err
			}
		default:
			return fmt.Errorf("cluster: unexpected WAL record type %d in an analyzer log", r.Type)
		}
	}
	return nil
}
