package ahe

// Background randomizer pool. Even with the fixed-base tables, h^r is
// the dominant term of Encrypt and Rerandomize (~50 of the ~58
// multiplications). The pool moves that work off the critical path:
// refiller goroutines precompute (r, h^r) pairs whenever the pool runs
// low, and the hot path drains them with a lock-free Treiber-stack pop
// — an Encrypt that hits the pool costs one table exponentiation of
// g^m (at most 8 multiplications) plus one modular multiplication.
//
// Correctness is unaffected: r is drawn from crypto/rand exactly as the
// inline path draws it, and none of the protocol conformance suites
// depend on encryption randomness (share and fake randomness come from
// the deterministic Source streams, which the pool never touches). A
// drained-empty pool falls back to the inline fixed-base computation,
// so the pool is a pure latency optimization with no failure mode.
//
// Sizing. Capacity and refill concurrency are both configurable
// (StartRandomizerPoolN); the defaults derive from GOMAXPROCS so a
// multi-worker rerandomize loop does not drain the pool into the slow
// path on a machine with cores to spare. PoolSizeFor maps a consumer's
// worker count to a capacity.

import (
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultPoolSize is the per-worker randomizer-pool capacity used by
// the PEOS call sites (protocol.Run, cluster client and shuffler
// nodes) — deep enough to absorb a burst of a few hundred encryptions,
// small enough that a warm pool holds only a few hundred kilobytes of
// pairs.
const DefaultPoolSize = 256

// maxPoolSize caps PoolSizeFor so a very wide worker sweep cannot ask
// for an unbounded precompute backlog.
const maxPoolSize = 4096

// PoolSizeFor returns the randomizer-pool capacity for a site running
// `workers` concurrent encrypt/rerandomize goroutines: DefaultPoolSize
// pairs per worker (workers < 1 counts as 1), capped at 4096 pairs so
// wide sweeps stay bounded. The worker-pooled shuffler hot loops size
// their pool with this so parallel rerandomize stays on the pooled
// fast path instead of draining into inline exponentiation.
func PoolSizeFor(workers int) int {
	if workers < 1 {
		workers = 1
	}
	size := DefaultPoolSize * workers
	if size > maxPoolSize {
		size = maxPoolSize
	}
	return size
}

// DefaultPoolRefillers is the refill concurrency selected when a
// caller asks for the default (refillers < 1): half of GOMAXPROCS,
// clamped to [1, 4]. Refillers only burn CPU while the pool is below
// capacity — they park once it is full — so on a many-core host extra
// refillers shorten the drain-recovery window without competing with
// the consumers at steady state.
func DefaultPoolRefillers() int {
	r := runtime.GOMAXPROCS(0) / 2
	if r < 1 {
		r = 1
	}
	if r > 4 {
		r = 4
	}
	return r
}

// hrPair is one precomputed randomizer: r and h^r mod n.
type hrPair struct {
	r    *big.Int
	hr   *big.Int
	next *hrPair
}

// randPool is a lock-free stack of precomputed randomizer pairs plus
// the refiller goroutines that keep it near capacity.
type randPool struct {
	head     atomic.Pointer[hrPair]
	size     atomic.Int64
	capacity int64
	wake     chan struct{}
	done     chan struct{}
	wg       sync.WaitGroup
}

// newRandPool starts a pool of the given capacity (<1 means
// DefaultPoolSize) refilled by `refillers` goroutines (<1 means
// DefaultPoolRefillers); fill computes one fresh (r, h^r) pair and
// must be safe for concurrent calls (crypto/rand and the immutable
// fixed-base tables are).
func newRandPool(capacity, refillers int, fill func() (r, hr *big.Int, err error)) *randPool {
	if capacity < 1 {
		capacity = DefaultPoolSize
	}
	if refillers < 1 {
		refillers = DefaultPoolRefillers()
	}
	p := &randPool{
		capacity: int64(capacity),
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	p.wg.Add(refillers)
	for i := 0; i < refillers; i++ {
		go p.refill(fill)
	}
	return p
}

// refill tops the stack up to capacity, then sleeps until a drain
// signals it (or the pool stops). With several refillers the
// check-then-fill race can overshoot capacity by at most refillers-1
// pairs — harmless. A fill error ends that refiller; the hot path
// simply keeps using its inline fallback.
func (p *randPool) refill(fill func() (r, hr *big.Int, err error)) {
	defer p.wg.Done()
	for {
		for p.size.Load() < p.capacity {
			select {
			case <-p.done:
				return
			default:
			}
			r, hr, err := fill()
			if err != nil {
				return
			}
			p.push(&hrPair{r: r, hr: hr})
		}
		select {
		case <-p.done:
			return
		case <-p.wake:
		}
	}
}

// push CAS-loops so the stack stays consistent across concurrent
// refillers and pops.
func (p *randPool) push(n *hrPair) {
	for {
		old := p.head.Load()
		n.next = old
		if p.head.CompareAndSwap(old, n) {
			p.size.Add(1)
			return
		}
	}
}

// get pops one precomputed pair, or returns nil when the pool is dry
// (the caller computes inline). Lock-free: a CAS retry loop with no
// mutex on the drain path. The Treiber ABA hazard does not apply —
// popped nodes are never pushed back, so a head pointer can never
// reappear.
func (p *randPool) get() *hrPair {
	for {
		n := p.head.Load()
		if n == nil {
			p.nudge()
			return nil
		}
		if p.head.CompareAndSwap(n, n.next) {
			if p.size.Add(-1) < p.capacity/2 {
				p.nudge()
			}
			n.next = nil
			return n
		}
	}
}

// nudge wakes a refiller without blocking. One token is enough: the
// woken refiller loops until the pool is full again, and any refiller
// that wakes spuriously just re-parks.
func (p *randPool) nudge() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// stop terminates the refillers and waits for all of them to exit.
func (p *randPool) stop() {
	close(p.done)
	p.wg.Wait()
}
