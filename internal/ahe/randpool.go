package ahe

// Background randomizer pool. Even with the fixed-base tables, h^r is
// the dominant term of Encrypt and Rerandomize (~50 of the ~58
// multiplications). The pool moves that work off the critical path: a
// refiller goroutine precomputes (r, h^r) pairs whenever the pool runs
// low, and the hot path drains them with a lock-free Treiber-stack pop
// — an Encrypt that hits the pool costs one table exponentiation of
// g^m (at most 8 multiplications) plus one modular multiplication.
//
// Correctness is unaffected: r is drawn from crypto/rand exactly as the
// inline path draws it, and none of the protocol conformance suites
// depend on encryption randomness (share and fake randomness come from
// the deterministic Source streams, which the pool never touches). A
// drained-empty pool falls back to the inline fixed-base computation,
// so the pool is a pure latency optimization with no failure mode.

import (
	"math/big"
	"sync/atomic"
)

// DefaultPoolSize is the randomizer-pool capacity used by the PEOS
// call sites (protocol.Run, cluster client and shuffler nodes) — deep
// enough to absorb a burst of a few hundred encryptions, small enough
// that a warm pool holds only a few hundred kilobytes of pairs.
const DefaultPoolSize = 256

// hrPair is one precomputed randomizer: r and h^r mod n.
type hrPair struct {
	r    *big.Int
	hr   *big.Int
	next *hrPair
}

// randPool is a lock-free stack of precomputed randomizer pairs plus
// the refiller goroutine that keeps it near capacity.
type randPool struct {
	head     atomic.Pointer[hrPair]
	size     atomic.Int64
	capacity int64
	wake     chan struct{}
	done     chan struct{}
	exited   chan struct{}
}

// newRandPool starts a pool of the given capacity; fill computes one
// fresh (r, h^r) pair (it runs only on the refiller goroutine).
func newRandPool(capacity int, fill func() (r, hr *big.Int, err error)) *randPool {
	if capacity < 1 {
		capacity = DefaultPoolSize
	}
	p := &randPool{
		capacity: int64(capacity),
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		exited:   make(chan struct{}),
	}
	go p.refill(fill)
	return p
}

// refill tops the stack up to capacity, then sleeps until a drain
// signals it (or the pool stops). A fill error ends the refiller; the
// hot path simply keeps using its inline fallback.
func (p *randPool) refill(fill func() (r, hr *big.Int, err error)) {
	defer close(p.exited)
	for {
		for p.size.Load() < p.capacity {
			select {
			case <-p.done:
				return
			default:
			}
			r, hr, err := fill()
			if err != nil {
				return
			}
			p.push(&hrPair{r: r, hr: hr})
		}
		select {
		case <-p.done:
			return
		case <-p.wake:
		}
	}
}

// push is only called from the refiller goroutine, but CAS-loops
// anyway so the stack stays consistent with concurrent pops.
func (p *randPool) push(n *hrPair) {
	for {
		old := p.head.Load()
		n.next = old
		if p.head.CompareAndSwap(old, n) {
			p.size.Add(1)
			return
		}
	}
}

// get pops one precomputed pair, or returns nil when the pool is dry
// (the caller computes inline). Lock-free: a CAS retry loop with no
// mutex on the drain path. The Treiber ABA hazard does not apply —
// popped nodes are never pushed back, so a head pointer can never
// reappear.
func (p *randPool) get() *hrPair {
	for {
		n := p.head.Load()
		if n == nil {
			p.nudge()
			return nil
		}
		if p.head.CompareAndSwap(n, n.next) {
			if p.size.Add(-1) < p.capacity/2 {
				p.nudge()
			}
			n.next = nil
			return n
		}
	}
}

// nudge wakes the refiller without blocking.
func (p *randPool) nudge() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// stop terminates the refiller and waits for it to exit.
func (p *randPool) stop() {
	close(p.done)
	<-p.exited
}
