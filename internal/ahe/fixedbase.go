package ahe

// Fixed-base windowed exponentiation. DGK spends nearly all of its
// time computing g^m and h^r for the two FIXED bases g and h of one
// key — the classic fixed-base comb: precompute, once per key,
//
//	win[i][d-1] = base^(d << (8 i)) mod n,   d in 1..255
//
// (one 255-entry row per 8-bit window of the largest supported
// exponent), and every later exponentiation becomes one table lookup
// and one modular multiplication per NONZERO exponent byte — about 58
// Mul+Mod for a full Encrypt versus the ~580 Montgomery operations of
// two generic big.Int.Exp calls, measured ~5x faster at 1024 bits.
//
// A table is immutable after construction and safe for concurrent
// readers; the per-key tables are built once behind a sync.Once (see
// dgkFast) and shared by every copy of the key struct.

import (
	"math/big"
	"math/bits"
)

// fbWindowBits is the window width. 8 keeps the row count at
// maxBits/8 (50 rows for the 400-bit DGK randomizer — ~1.6 MB per
// 1024-bit key, built once in ~15 ms) while cutting a 400-bit
// exponentiation to at most 50 multiplications. Wider windows grow
// the build cost 16x per +4 bits for <25% fewer multiplications.
const fbWindowBits = 8

// fbTable holds the precomputed window rows for one (base, modulus)
// pair.
type fbTable struct {
	mod     *big.Int
	maxBits int
	// win[i][d-1] = base^(d << (8 i)) mod mod for d in 1..255.
	win [][]*big.Int
}

// newFBTable precomputes the window rows for exponents in
// [0, 2^maxBits). Build cost is one modular multiplication per table
// entry: 255 * ceil(maxBits/8).
func newFBTable(base, mod *big.Int, maxBits int) *fbTable {
	if maxBits < 1 {
		maxBits = 1
	}
	nw := (maxBits + fbWindowBits - 1) / fbWindowBits
	t := &fbTable{mod: mod, maxBits: maxBits, win: make([][]*big.Int, nw)}
	b := new(big.Int).Mod(base, mod)
	for i := 0; i < nw; i++ {
		row := make([]*big.Int, 255)
		row[0] = b
		for d := 2; d <= 255; d++ {
			v := new(big.Int).Mul(row[d-2], b)
			row[d-1] = v.Mod(v, mod)
		}
		t.win[i] = row
		if i+1 < nw {
			// The next row's unit is base^(256^(i+1)) = row[254] * b
			// (b^255 * b) — one multiplication instead of 8 squarings.
			nb := new(big.Int).Mul(row[254], b)
			b = nb.Mod(nb, mod)
		}
	}
	return t
}

// Exp returns base^e mod n via the precomputed windows, or nil when e
// is negative or too wide for the table (the caller falls back to
// big.Int.Exp). The result is freshly allocated; the table is only
// read, so concurrent calls are safe.
func (t *fbTable) Exp(e *big.Int) *big.Int {
	if e.Sign() < 0 || e.BitLen() > t.maxBits {
		return nil
	}
	var acc *big.Int
	i := 0
	for _, w := range e.Bits() {
		for s := 0; s < bits.UintSize; s += fbWindowBits {
			d := byte(w >> uint(s))
			if d != 0 {
				if i >= len(t.win) {
					return nil // unreachable given the BitLen guard
				}
				ent := t.win[i][d-1]
				if acc == nil {
					acc = new(big.Int).Set(ent)
				} else {
					acc.Mul(acc, ent)
					acc.Mod(acc, t.mod)
				}
			}
			i++
		}
	}
	if acc == nil {
		return big.NewInt(1) // e == 0
	}
	return acc
}

// ExpInto is Exp with caller-owned accumulators: the result lands in
// dst and tmp holds the ping-pong product, so a hot loop reuses the
// same two big.Ints across calls instead of allocating a fresh chain
// each time (math/big's Mod still allocates its internal quotient —
// the scratch path is allocation-flat, not allocation-free). Returns
// nil exactly when Exp would (negative or too-wide exponent; the
// caller falls back to big.Int.Exp), dst otherwise. dst and tmp must
// be distinct and must not alias e.
func (t *fbTable) ExpInto(dst, tmp, e *big.Int) *big.Int {
	if e.Sign() < 0 || e.BitLen() > t.maxBits {
		return nil
	}
	started := false
	i := 0
	for _, w := range e.Bits() {
		for s := 0; s < bits.UintSize; s += fbWindowBits {
			d := byte(w >> uint(s))
			if d != 0 {
				if i >= len(t.win) {
					return nil // unreachable given the BitLen guard
				}
				ent := t.win[i][d-1]
				if !started {
					dst.Set(ent)
					started = true
				} else {
					tmp.Mul(dst, ent)
					dst.Mod(tmp, t.mod)
				}
			}
			i++
		}
	}
	if !started {
		return dst.SetInt64(1) // e == 0
	}
	return dst
}
