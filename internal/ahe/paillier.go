package ahe

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
)

// Paillier encryption [48] with the usual g = n+1 simplification:
//
//	Enc(m; r) = (1 + m n) r^n mod n^2
//	Dec(c)    = L(c^lambda mod n^2) * mu mod n,  L(x) = (x-1)/n
//
// The native plaintext space is Z_n. To present the package's Z_{2^l}
// interface we reduce decryptions mod 2^l; this matches the Z_{2^l}
// share semantics as long as fewer than n / 2^l additions accumulate
// (astronomically many for 2048-bit keys), but unlike DGK the full
// decryption in Z_n reveals how many wrap-arounds occurred — exactly
// the leak §VI-A3 motivates DGK with. Paillier is kept for the
// EOS-overhead ablation and as an independent correctness oracle.
type PaillierPublicKey struct {
	n  *big.Int
	n2 *big.Int // n^2
	l  int
}

// PaillierPrivateKey implements PrivateKey.
type PaillierPrivateKey struct {
	PaillierPublicKey
	lambda *big.Int
	mu     *big.Int
}

// GeneratePaillier creates a Paillier key pair with modulus about
// keyBits bits and Z_{2^plaintextBits} plaintext semantics.
func GeneratePaillier(keyBits, plaintextBits int) (*PaillierPrivateKey, error) {
	if plaintextBits < 1 || plaintextBits > 64 {
		return nil, errors.New("ahe: plaintext bits must be in [1, 64]")
	}
	if keyBits < 256 {
		return nil, errors.New("ahe: Paillier key must be >= 256 bits")
	}
	p, err := rand.Prime(rand.Reader, keyBits/2)
	if err != nil {
		return nil, err
	}
	q, err := rand.Prime(rand.Reader, keyBits/2)
	if err != nil {
		return nil, err
	}
	if p.Cmp(q) == 0 {
		return nil, errors.New("ahe: degenerate key (p == q)")
	}
	n := new(big.Int).Mul(p, q)
	one := big.NewInt(1)
	pm1 := new(big.Int).Sub(p, one)
	qm1 := new(big.Int).Sub(q, one)
	lambda := new(big.Int).Mul(pm1, qm1) // lcm works, (p-1)(q-1) is fine for g=n+1
	mu := new(big.Int).ModInverse(lambda, n)
	if mu == nil {
		return nil, errors.New("ahe: lambda not invertible")
	}
	pub := PaillierPublicKey{n: n, n2: new(big.Int).Mul(n, n), l: plaintextBits}
	return &PaillierPrivateKey{PaillierPublicKey: pub, lambda: lambda, mu: mu}, nil
}

// Scheme implements PublicKey.
func (k PaillierPublicKey) Scheme() string { return "Paillier" }

// PlaintextBits implements PublicKey.
func (k PaillierPublicKey) PlaintextBits() int { return k.l }

// Modulus returns n.
func (k PaillierPublicKey) Modulus() *big.Int { return new(big.Int).Set(k.n) }

func (k PaillierPublicKey) reduce(m uint64) *big.Int {
	if k.l == 64 {
		return new(big.Int).SetUint64(m)
	}
	return new(big.Int).SetUint64(m & ((1 << uint(k.l)) - 1))
}

// Encrypt implements PublicKey.
func (k PaillierPublicKey) Encrypt(m uint64) (*Ciphertext, error) {
	r, err := k.unit()
	if err != nil {
		return nil, err
	}
	// (1 + m n) r^n mod n^2
	c := new(big.Int).Mul(k.reduce(m), k.n)
	c.Add(c, big.NewInt(1))
	rn := new(big.Int).Exp(r, k.n, k.n2)
	c.Mul(c, rn).Mod(c, k.n2)
	return &Ciphertext{v: c}, nil
}

// unit draws r in Z_n* (gcd check).
func (k PaillierPublicKey) unit() (*big.Int, error) {
	for i := 0; i < 100; i++ {
		r, err := rand.Int(rand.Reader, k.n)
		if err != nil {
			return nil, err
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, k.n).Cmp(big.NewInt(1)) == 0 {
			return r, nil
		}
	}
	return nil, errors.New("ahe: failed to sample unit")
}

// Add implements PublicKey.
func (k PaillierPublicKey) Add(a, b *Ciphertext) *Ciphertext {
	v := new(big.Int).Mul(a.v, b.v)
	return &Ciphertext{v: v.Mod(v, k.n2)}
}

// AddPlain implements PublicKey: multiply by (1 + m n).
func (k PaillierPublicKey) AddPlain(a *Ciphertext, m uint64) (*Ciphertext, error) {
	gm := new(big.Int).Mul(k.reduce(m), k.n)
	gm.Add(gm, big.NewInt(1))
	gm.Mod(gm, k.n2)
	v := new(big.Int).Mul(a.v, gm)
	return &Ciphertext{v: v.Mod(v, k.n2)}, nil
}

// Rerandomize implements PublicKey: multiply by r^n.
func (k PaillierPublicKey) Rerandomize(a *Ciphertext) (*Ciphertext, error) {
	r, err := k.unit()
	if err != nil {
		return nil, err
	}
	rn := new(big.Int).Exp(r, k.n, k.n2)
	v := new(big.Int).Mul(a.v, rn)
	return &Ciphertext{v: v.Mod(v, k.n2)}, nil
}

// CiphertextBytes implements PublicKey.
func (k PaillierPublicKey) CiphertextBytes() int { return (k.n2.BitLen() + 7) / 8 }

// Serialize implements PublicKey.
func (k PaillierPublicKey) Serialize(a *Ciphertext) []byte {
	return serializeFixed(a.v, k.CiphertextBytes())
}

// Deserialize implements PublicKey.
func (k PaillierPublicKey) Deserialize(data []byte) (*Ciphertext, error) {
	if len(data) != k.CiphertextBytes() {
		return nil, fmt.Errorf("ahe: Paillier ciphertext must be %d bytes, got %d",
			k.CiphertextBytes(), len(data))
	}
	v := new(big.Int).SetBytes(data)
	if v.Cmp(k.n2) >= 0 {
		return nil, errors.New("ahe: ciphertext out of range")
	}
	// Valid Paillier ciphertexts are units mod n^2 (equivalently,
	// coprime to n). v = 0 in particular drives Decrypt through a
	// negative intermediate into garbage, so reject non-units as a
	// range error here.
	if v.Sign() == 0 || new(big.Int).GCD(nil, nil, v, k.n).Cmp(bigOne) != 0 {
		return nil, errors.New("ahe: ciphertext out of range (not a unit mod n^2)")
	}
	return &Ciphertext{v: v}, nil
}

// Decrypt implements PrivateKey; the Z_n plaintext is reduced to Z_{2^l}.
func (k *PaillierPrivateKey) Decrypt(c *Ciphertext) (uint64, error) {
	x := new(big.Int).Exp(c.v, k.lambda, k.n2)
	x.Sub(x, big.NewInt(1))
	x.Div(x, k.n)
	x.Mul(x, k.mu)
	x.Mod(x, k.n)
	if k.l == 64 {
		return x.Uint64(), nil
	}
	mask := new(big.Int).Lsh(big.NewInt(1), uint(k.l))
	return x.Mod(x, mask).Uint64(), nil
}
