package ahe

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"sync/atomic"
)

// DGK in the full-decryption variant (§VI-A3, [24] with the
// Pohlig–Hellman decryption of [49]).
//
// Construction. For plaintext space Z_u with u = 2^l:
//
//	p = u * vp * fp + 1,   q = u * vq * fq + 1     (vp, vq: t-bit primes)
//	n = p q
//	g: order u*vp mod p and u*vq mod q  (so order u*vp*vq mod n)
//	h: order vp   mod p and vq   mod q  (so order vp*vq mod n)
//
//	Enc(m; r) = g^m h^r mod n,  r uniform in [0, 2^{2.5 t})
//
// Decryption works mod p only: c^vp = (g^vp)^m (h^vp)^r = gamma^m with
// gamma = g^vp of order u = 2^l, and the discrete log of gamma^m in the
// 2-group of order 2^l is recovered digit by digit (Pohlig–Hellman
// needs only small exponentiations because 2^l is smooth).
//
// The homomorphic sum therefore lives in Z_{2^l} exactly — partial sums
// of shares wrap just like plaintext shares do, which is the property
// PEOS needs so fake reports are indistinguishable after decryption.
//
// Fast path. Both bases of Enc are fixed per key, so every public-key
// operation runs over fixed-base window tables (fixedbase.go) built
// once per key and shared read-only, optionally fronted by the
// background randomizer pool (randpool.go); decryption recovers the
// discrete log 8 bits per round from one shared squaring chain and
// per-key digit tables — O(l) modular multiplications per ciphertext
// instead of the naive O(l^2) squaring triangle. The naive math/big
// path is retained verbatim behind SetFastPath(false) as the
// correctness reference; the conformance tests in fixedbase_test.go
// hold the two paths bit-identical.

const dgkSubgroupBits = 160 // t: size of vp, vq

// dgkDecDigitBits is the Pohlig–Hellman digit width of the fast
// decryption path: 8 bits per round bounds every lookup table at 256
// entries while keeping the round count at ceil(l/8).
const dgkDecDigitBits = 8

// DGKPrivateKey holds the full key. It implements PrivateKey.
type DGKPrivateKey struct {
	DGKPublicKey
	p     *big.Int // prime factor of n
	vp    *big.Int // odd prime subgroup order mod p
	gamma *big.Int // g^vp mod p, order 2^l
	// gammaP[i] = gamma^(2^i) mod p and gammaInvP[i] its inverse,
	// precomputed so Pohlig–Hellman decryption needs no ModInverse.
	gammaP    []*big.Int
	gammaInvP []*big.Int
	// dec holds the windowed-decryption digit tables (fast path).
	dec *dgkDecFast
}

// DGKPublicKey implements PublicKey.
type DGKPublicKey struct {
	n    *big.Int
	g, h *big.Int
	l    int // plaintext bits
	rnd  int // randomizer bit-length (2.5 t)
	// fb is the shared fast-path state (fixed-base tables, naive-path
	// flag, randomizer pool). It is a pointer so every copy of the key
	// struct — including the embedded copy inside DGKPrivateKey and
	// interface values — shares one set of tables. nil (a key built by
	// hand inside the package) means naive-only.
	fb *dgkFast
}

// dgkFast is the per-key fast-path state shared by all copies of a
// DGKPublicKey.
type dgkFast struct {
	once sync.Once
	gTab *fbTable // fixed-base windows for g, exponents < 2^l
	hTab *fbTable // fixed-base windows for h, exponents < 2^rnd
	// naive, when true, routes every operation through the retained
	// math/big reference path (SetFastPath).
	naive atomic.Bool

	// pool is the optional background randomizer pool; poolMu guards
	// only start/stop bookkeeping — the hot path drains through the
	// atomic pointer without taking any lock.
	pool     atomic.Pointer[randPool]
	poolMu   sync.Mutex
	poolRefs int

	// poolHits counts randomizers served from the pool and poolMisses
	// randomizers computed inline (pool dry or never started) — the
	// observable the scaling benches use to prove a parallel
	// rerandomize loop stayed on the pooled fast path.
	poolHits   atomic.Uint64
	poolMisses atomic.Uint64
}

// ensure builds the fixed-base tables once. k is a copy of the owning
// key (all its big.Int fields are shared pointers, so any copy works).
func (fb *dgkFast) ensure(k DGKPublicKey) {
	fb.once.Do(func() {
		fb.gTab = newFBTable(k.g, k.n, k.l)
		fb.hTab = newFBTable(k.h, k.n, k.rnd)
	})
}

// GenerateDGK creates a DGK key pair with an n of about keyBits bits
// and plaintext space Z_{2^plaintextBits} (1..64). keyBits must be at
// least enough to fit the subgroups (plaintextBits + 160 + slack).
func GenerateDGK(keyBits, plaintextBits int) (*DGKPrivateKey, error) {
	if plaintextBits < 1 || plaintextBits > 64 {
		return nil, errors.New("ahe: plaintext bits must be in [1, 64]")
	}
	half := keyBits / 2
	minHalf := plaintextBits + dgkSubgroupBits + 32
	if half < minHalf {
		return nil, fmt.Errorf("ahe: keyBits %d too small for plaintext 2^%d (need >= %d)",
			keyBits, plaintextBits, 2*minHalf)
	}
	u := new(big.Int).Lsh(big.NewInt(1), uint(plaintextBits))

	vp, err := rand.Prime(rand.Reader, dgkSubgroupBits)
	if err != nil {
		return nil, err
	}
	vq, err := rand.Prime(rand.Reader, dgkSubgroupBits)
	if err != nil {
		return nil, err
	}
	p, err := dgkPrime(half, u, vp)
	if err != nil {
		return nil, err
	}
	q, err := dgkPrime(half, u, vq)
	if err != nil {
		return nil, err
	}
	if p.Cmp(q) == 0 {
		return nil, errors.New("ahe: degenerate key (p == q)")
	}
	n := new(big.Int).Mul(p, q)

	gp, err := elementOfOrder(p, new(big.Int).Mul(u, vp), []*big.Int{big.NewInt(2), vp})
	if err != nil {
		return nil, err
	}
	gq, err := elementOfOrder(q, new(big.Int).Mul(u, vq), []*big.Int{big.NewInt(2), vq})
	if err != nil {
		return nil, err
	}
	hp, err := elementOfOrder(p, vp, []*big.Int{vp})
	if err != nil {
		return nil, err
	}
	hq, err := elementOfOrder(q, vq, []*big.Int{vq})
	if err != nil {
		return nil, err
	}
	g, err := crt(gp, gq, p, q)
	if err != nil {
		return nil, err
	}
	h, err := crt(hp, hq, p, q)
	if err != nil {
		return nil, err
	}

	pub := DGKPublicKey{
		n:   n,
		g:   g,
		h:   h,
		l:   plaintextBits,
		rnd: dgkSubgroupBits * 5 / 2,
		fb:  &dgkFast{},
	}
	return finishDGKPrivateKey(pub, p, vp)
}

// finishDGKPrivateKey derives the decryption accelerators (gamma, its
// power tables, and the windowed-decryption digit tables) from the key
// material (pub, p, vp). Key generation and private-key
// deserialization share it, so a restored key decrypts exactly like
// the original.
func finishDGKPrivateKey(pub DGKPublicKey, p, vp *big.Int) (*DGKPrivateKey, error) {
	gamma := new(big.Int).Exp(new(big.Int).Mod(pub.g, p), vp, p)
	gammaInv := new(big.Int).ModInverse(gamma, p)
	if gammaInv == nil {
		return nil, errors.New("ahe: gamma not invertible")
	}
	priv := &DGKPrivateKey{
		DGKPublicKey: pub,
		p:            p,
		vp:           vp,
		gamma:        gamma,
	}
	// Precompute gamma^(2^i) and gamma^(-2^i) for the digit-wise
	// discrete log (one ModInverse at keygen instead of one per
	// decrypted bit).
	priv.gammaP = make([]*big.Int, pub.l)
	priv.gammaInvP = make([]*big.Int, pub.l)
	cur := new(big.Int).Set(gamma)
	curInv := new(big.Int).Set(gammaInv)
	for i := 0; i < pub.l; i++ {
		priv.gammaP[i] = new(big.Int).Set(cur)
		priv.gammaInvP[i] = new(big.Int).Set(curInv)
		cur = new(big.Int).Mod(new(big.Int).Mul(cur, cur), p)
		curInv = new(big.Int).Mod(new(big.Int).Mul(curInv, curInv), p)
	}
	priv.dec = newDGKDecFast(priv)
	return priv, nil
}

// dgkDecFast holds the per-key digit tables of the windowed
// Pohlig–Hellman decryption. Immutable after construction.
type dgkDecFast struct {
	// exps[i] = l - 8i - widths[i]: the power of two that maps round
	// i's digit into the top window, strictly decreasing to 0.
	exps []int
	// widths[i] is round i's digit width: 8 for all but possibly the
	// final round (l mod 8, when l is not a multiple of 8).
	widths []int
	// look[i] maps gamma^(d << (l - widths[i])) mod p — serialized via
	// big.Int.Bytes — back to the digit d. All full-width rounds share
	// one map.
	look []map[string]byte
	// inv[pos][d-1] = gamma^(-d << pos) mod p for the correction
	// factors that cancel already-recovered digits out of the shared
	// squaring chain.
	inv map[int][]*big.Int
}

// newDGKDecFast precomputes the digit tables: one 2^8-entry lookup
// (plus a smaller one when l is not a multiple of 8) and at most
// ceil(l/8)-1 inverse rows of 255 entries — a few thousand modular
// multiplications mod p, once per private key.
func newDGKDecFast(k *DGKPrivateKey) *dgkDecFast {
	l := k.l
	nd := (l + dgkDecDigitBits - 1) / dgkDecDigitBits
	df := &dgkDecFast{
		exps:   make([]int, nd),
		widths: make([]int, nd),
		look:   make([]map[string]byte, nd),
		inv:    make(map[int][]*big.Int),
	}
	for i := 0; i < nd; i++ {
		w := dgkDecDigitBits
		if rem := l - dgkDecDigitBits*i; rem < w {
			w = rem
		}
		df.widths[i] = w
		df.exps[i] = l - dgkDecDigitBits*i - w
	}
	// Lookup tables keyed by digit width: gamma^(d << (l-w)).
	byWidth := make(map[int]map[string]byte)
	for i := 0; i < nd; i++ {
		w := df.widths[i]
		tab := byWidth[w]
		if tab == nil {
			tab = make(map[string]byte, 1<<uint(w))
			base := k.gammaP[l-w] // gamma^(2^(l-w))
			cur := big.NewInt(1)
			for d := 0; d < 1<<uint(w); d++ {
				tab[string(cur.Bytes())] = byte(d)
				if d+1 < 1<<uint(w) {
					nxt := new(big.Int).Mul(cur, base)
					cur = nxt.Mod(nxt, k.p)
				}
			}
			byWidth[w] = tab
		}
		df.look[i] = tab
	}
	// Correction rows: round i cancels digit j (< i) with
	// gamma^(-d_j << (exps[i] + 8j)).
	for i := 1; i < nd; i++ {
		for j := 0; j < i; j++ {
			pos := df.exps[i] + dgkDecDigitBits*j
			if _, ok := df.inv[pos]; ok {
				continue
			}
			row := make([]*big.Int, (1<<dgkDecDigitBits)-1)
			base := k.gammaInvP[pos] // gamma^(-2^pos)
			row[0] = base
			for d := 2; d < 1<<dgkDecDigitBits; d++ {
				v := new(big.Int).Mul(row[d-2], base)
				row[d-1] = v.Mod(v, k.p)
			}
			df.inv[pos] = row
		}
	}
	return df
}

// dgkPrime finds a prime p = u*v*f + 1 of exactly `bits` bits.
func dgkPrime(bits int, u, v *big.Int) (*big.Int, error) {
	uv := new(big.Int).Mul(u, v)
	fBits := bits - uv.BitLen()
	if fBits < 16 {
		return nil, errors.New("ahe: key half too small for subgroup structure")
	}
	one := big.NewInt(1)
	for attempts := 0; attempts < 100000; attempts++ {
		f, err := rand.Int(rand.Reader, new(big.Int).Lsh(one, uint(fBits)))
		if err != nil {
			return nil, err
		}
		f.SetBit(f, fBits-1, 1) // force the top bit so p has full size
		p := new(big.Int).Mul(uv, f)
		p.Add(p, one)
		// uv*f with f's top bit forced can still land one bit short of
		// the target (uv*f in [uv*2^(fBits-1), uv*2^fBits) straddles
		// 2^(bits-1)); resample rather than hand back a weaker modulus.
		if p.BitLen() != bits {
			continue
		}
		if p.ProbablyPrime(20) {
			return p, nil
		}
	}
	return nil, errors.New("ahe: failed to find DGK prime")
}

// elementOfOrder returns an element of exact multiplicative order
// `order` mod prime p, where order | p-1 and primeFactors lists the
// distinct primes dividing order.
func elementOfOrder(p, order *big.Int, primeFactors []*big.Int) (*big.Int, error) {
	pm1 := new(big.Int).Sub(p, big.NewInt(1))
	exp := new(big.Int).Div(pm1, order)
	one := big.NewInt(1)
	for attempts := 0; attempts < 1000; attempts++ {
		x, err := rand.Int(rand.Reader, p)
		if err != nil {
			return nil, err
		}
		if x.Sign() == 0 {
			continue
		}
		g := new(big.Int).Exp(x, exp, p)
		if g.Cmp(one) == 0 {
			continue
		}
		// Exact order check: g^(order/r) != 1 for every prime r | order.
		ok := true
		for _, r := range primeFactors {
			e := new(big.Int).Div(order, r)
			if new(big.Int).Exp(g, e, p).Cmp(one) == 0 {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	return nil, errors.New("ahe: failed to find element of required order")
}

// crt combines x = a mod p, x = b mod q into x mod pq.
func crt(a, b, p, q *big.Int) (*big.Int, error) {
	qInv := new(big.Int).ModInverse(q, p)
	if qInv == nil {
		return nil, errors.New("ahe: p and q not coprime")
	}
	// x = b + q * ((a - b) * qInv mod p)
	diff := new(big.Int).Sub(a, b)
	diff.Mod(diff, p)
	diff.Mul(diff, qInv)
	diff.Mod(diff, p)
	x := new(big.Int).Mul(q, diff)
	x.Add(x, b)
	return x, nil
}

// Scheme implements PublicKey.
func (k DGKPublicKey) Scheme() string { return "DGK" }

// PlaintextBits implements PublicKey.
func (k DGKPublicKey) PlaintextBits() int { return k.l }

// Modulus returns n (for tests and serialization checks).
func (k DGKPublicKey) Modulus() *big.Int { return new(big.Int).Set(k.n) }

// SetFastPath enables (the default) or disables the fixed-base fast
// path for every operation of this key, including copies that share
// its table state — the naive math/big path is the retained
// correctness reference the conformance tests compare against. The
// switch is atomic and safe to flip concurrently with operations.
func (k DGKPublicKey) SetFastPath(on bool) {
	if k.fb != nil {
		k.fb.naive.Store(!on)
	}
}

// fastEnabled reports whether the fixed-base path should serve
// public-key operations.
func (k DGKPublicKey) fastEnabled() bool {
	return k.fb != nil && !k.fb.naive.Load()
}

// StartRandomizerPool implements Pooler: it starts (or joins) the
// key's background refiller producing (r, h^r) pairs off the critical
// path, sized to `capacity` pairs (<1 means DefaultPoolSize) with the
// default (GOMAXPROCS-derived) refill concurrency. The returned stop
// function is idempotent; the pool shuts down when every starter has
// called stop.
func (k DGKPublicKey) StartRandomizerPool(capacity int) (stop func()) {
	return k.StartRandomizerPoolN(capacity, 0)
}

// StartRandomizerPoolN implements PoolerN: StartRandomizerPool with
// the refiller-goroutine count exposed (<1 means
// DefaultPoolRefillers). The first starter fixes both capacity and
// refill concurrency; later joiners share the running pool.
func (k DGKPublicKey) StartRandomizerPoolN(capacity, refillers int) (stop func()) {
	if k.fb == nil {
		return func() {}
	}
	fb := k.fb
	fb.poolMu.Lock()
	if fb.poolRefs == 0 {
		fb.ensure(k)
		key := k // the fill closure's stable copy
		fb.pool.Store(newRandPool(capacity, refillers, func() (*big.Int, *big.Int, error) {
			r, err := key.randomizer()
			if err != nil {
				return nil, nil, err
			}
			hr := fb.hTab.Exp(r)
			if hr == nil {
				hr = new(big.Int).Exp(key.h, r, key.n)
			}
			return r, hr, nil
		}))
	}
	fb.poolRefs++
	fb.poolMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			fb.poolMu.Lock()
			fb.poolRefs--
			last := fb.poolRefs == 0
			var p *randPool
			if last {
				p = fb.pool.Swap(nil)
			}
			fb.poolMu.Unlock()
			if p != nil {
				p.stop()
			}
		})
	}
}

func (k DGKPublicKey) reduce(m uint64) *big.Int {
	if k.l == 64 {
		return new(big.Int).SetUint64(m)
	}
	return new(big.Int).SetUint64(m & ((1 << uint(k.l)) - 1))
}

func (k DGKPublicKey) randomizer() (*big.Int, error) {
	bound := new(big.Int).Lsh(big.NewInt(1), uint(k.rnd))
	return rand.Int(rand.Reader, bound)
}

// hPower returns h^r for a fresh randomizer r: a pooled pair when the
// background pool has one ready, the fixed-base tables otherwise. It
// feeds the hit/miss counters RandomizerPoolStats reports.
func (k DGKPublicKey) hPower() (*big.Int, error) {
	if p := k.fb.pool.Load(); p != nil {
		if pair := p.get(); pair != nil {
			k.fb.poolHits.Add(1)
			return pair.hr, nil
		}
	}
	k.fb.poolMisses.Add(1)
	r, err := k.randomizer()
	if err != nil {
		return nil, err
	}
	if hr := k.fb.hTab.Exp(r); hr != nil {
		return hr, nil
	}
	return new(big.Int).Exp(k.h, r, k.n), nil
}

// hPowerInto is hPower with the fixed-base fallback computed into the
// caller's scratch accumulators. The returned big.Int is either a
// pooled value or sc.acc; it is consumed before the next scratch call.
func (k DGKPublicKey) hPowerInto(sc *Scratch) (*big.Int, error) {
	if p := k.fb.pool.Load(); p != nil {
		if pair := p.get(); pair != nil {
			k.fb.poolHits.Add(1)
			return pair.hr, nil
		}
	}
	k.fb.poolMisses.Add(1)
	r, err := k.randomizer()
	if err != nil {
		return nil, err
	}
	if hr := k.fb.hTab.ExpInto(&sc.acc, &sc.tmp, r); hr != nil {
		return hr, nil
	}
	return new(big.Int).Exp(k.h, r, k.n), nil
}

// RandomizerPoolStats returns the cumulative randomizer accounting of
// this key: hits (randomizers served from the background pool) and
// misses (randomizers computed inline, because the pool was dry or
// never started). The scaling benches record them to prove a
// multi-worker rerandomize sweep stayed on the pooled fast path.
func (k DGKPublicKey) RandomizerPoolStats() (hits, misses uint64) {
	if k.fb == nil {
		return 0, 0
	}
	return k.fb.poolHits.Load(), k.fb.poolMisses.Load()
}

// Encrypt implements PublicKey: g^m h^r mod n.
func (k DGKPublicKey) Encrypt(m uint64) (*Ciphertext, error) {
	if !k.fastEnabled() {
		return k.encryptNaive(m)
	}
	k.fb.ensure(k)
	hr, err := k.hPower()
	if err != nil {
		return nil, err
	}
	gm := k.fb.gTab.Exp(k.reduce(m))
	if gm == nil {
		return k.encryptNaive(m)
	}
	return &Ciphertext{v: gm.Mul(gm, hr).Mod(gm, k.n)}, nil
}

// encryptNaive is the retained generic-exponentiation reference.
func (k DGKPublicKey) encryptNaive(m uint64) (*Ciphertext, error) {
	r, err := k.randomizer()
	if err != nil {
		return nil, err
	}
	gm := new(big.Int).Exp(k.g, k.reduce(m), k.n)
	hr := new(big.Int).Exp(k.h, r, k.n)
	return &Ciphertext{v: gm.Mul(gm, hr).Mod(gm, k.n)}, nil
}

// Add implements PublicKey: ciphertext multiplication adds plaintexts.
func (k DGKPublicKey) Add(a, b *Ciphertext) *Ciphertext {
	v := new(big.Int).Mul(a.v, b.v)
	return &Ciphertext{v: v.Mod(v, k.n)}
}

// AddPlain implements PublicKey: multiply by g^m (no fresh randomness;
// call Rerandomize if unlinkability is needed).
func (k DGKPublicKey) AddPlain(a *Ciphertext, m uint64) (*Ciphertext, error) {
	if k.fastEnabled() {
		k.fb.ensure(k)
		if gm := k.fb.gTab.Exp(k.reduce(m)); gm != nil {
			v := gm.Mul(a.v, gm)
			return &Ciphertext{v: v.Mod(v, k.n)}, nil
		}
	}
	gm := new(big.Int).Exp(k.g, k.reduce(m), k.n)
	v := new(big.Int).Mul(a.v, gm)
	return &Ciphertext{v: v.Mod(v, k.n)}, nil
}

// Rerandomize implements PublicKey: multiply by h^r.
func (k DGKPublicKey) Rerandomize(a *Ciphertext) (*Ciphertext, error) {
	if k.fastEnabled() {
		k.fb.ensure(k)
		hr, err := k.hPower()
		if err != nil {
			return nil, err
		}
		v := new(big.Int).Mul(a.v, hr)
		return &Ciphertext{v: v.Mod(v, k.n)}, nil
	}
	r, err := k.randomizer()
	if err != nil {
		return nil, err
	}
	hr := new(big.Int).Exp(k.h, r, k.n)
	v := new(big.Int).Mul(a.v, hr)
	return &Ciphertext{v: v.Mod(v, k.n)}, nil
}

// NewScratch implements ScratchOps.
func (k DGKPublicKey) NewScratch() *Scratch { return &Scratch{} }

// reduceInto is reduce with a caller-owned destination.
func (k DGKPublicKey) reduceInto(dst *big.Int, m uint64) *big.Int {
	if k.l != 64 {
		m &= (1 << uint(k.l)) - 1
	}
	return dst.SetUint64(m)
}

// AddPlainInto implements ScratchOps: AddPlain(a, m) into dst (which
// may alias a), reusing sc's accumulators so a steady-state fold loop
// allocates only what math/big's Mod allocates internally. With the
// fast path disabled it routes through the retained naive reference —
// same result, allocating profile.
func (k DGKPublicKey) AddPlainInto(dst, a *Ciphertext, m uint64, sc *Scratch) error {
	if k.fastEnabled() {
		k.fb.ensure(k)
		if gm := k.fb.gTab.ExpInto(&sc.acc, &sc.tmp, k.reduceInto(&sc.e, m)); gm != nil {
			// gm is sc.acc; a.v is read before dst.v is written, so
			// dst == a is safe.
			sc.tmp.Mul(a.v, gm)
			if dst.v == nil {
				dst.v = new(big.Int)
			}
			dst.v.Mod(&sc.tmp, k.n)
			return nil
		}
	}
	c, err := k.AddPlain(a, m)
	if err != nil {
		return err
	}
	dst.v = c.v
	return nil
}

// RerandomizeInto implements ScratchOps: Rerandomize(a) into dst
// (which may alias a). The randomizer comes from the shared pool when
// one is running — the same crypto/rand draw order as Rerandomize, so
// the two are distribution-identical — and from an inline fixed-base
// exponentiation into sc otherwise.
func (k DGKPublicKey) RerandomizeInto(dst, a *Ciphertext, sc *Scratch) error {
	if k.fastEnabled() {
		k.fb.ensure(k)
		hr, err := k.hPowerInto(sc)
		if err != nil {
			return err
		}
		sc.tmp.Mul(a.v, hr)
		if dst.v == nil {
			dst.v = new(big.Int)
		}
		dst.v.Mod(&sc.tmp, k.n)
		return nil
	}
	c, err := k.Rerandomize(a)
	if err != nil {
		return err
	}
	dst.v = c.v
	return nil
}

// CiphertextBytes implements PublicKey.
func (k DGKPublicKey) CiphertextBytes() int { return (k.n.BitLen() + 7) / 8 }

// Serialize implements PublicKey.
func (k DGKPublicKey) Serialize(a *Ciphertext) []byte {
	return serializeFixed(a.v, k.CiphertextBytes())
}

// Deserialize implements PublicKey.
func (k DGKPublicKey) Deserialize(data []byte) (*Ciphertext, error) {
	if len(data) != k.CiphertextBytes() {
		return nil, fmt.Errorf("ahe: DGK ciphertext must be %d bytes, got %d",
			k.CiphertextBytes(), len(data))
	}
	v := new(big.Int).SetBytes(data)
	if v.Cmp(k.n) >= 0 {
		return nil, errors.New("ahe: ciphertext out of range")
	}
	// Every valid ciphertext is a unit mod n (a product of powers of g
	// and h). v = 0 in particular decrypts to silent garbage — the
	// all-ones plaintext — so a zero or other non-unit is a range
	// error, not a ciphertext.
	if v.Sign() == 0 || new(big.Int).GCD(nil, nil, v, k.n).Cmp(bigOne) != 0 {
		return nil, errors.New("ahe: ciphertext out of range (not a unit mod n)")
	}
	return &Ciphertext{v: v}, nil
}

// bigOne is the shared unit constant for the Deserialize gcd checks.
var bigOne = big.NewInt(1)

// Decrypt implements PrivateKey via Pohlig–Hellman in the 2^l-order
// subgroup: recover m from c^vp = gamma^m mod p, 8 bits per round on
// the fast path (falling back to the naive bit-by-bit reference when
// the fast path is disabled or the value is outside gamma's subgroup,
// so the two paths are bit-identical on every input).
func (k *DGKPrivateKey) Decrypt(c *Ciphertext) (uint64, error) {
	if k.dec != nil && k.fastEnabled() {
		if m, ok := k.decryptFast(c); ok {
			return m, nil
		}
	}
	return k.decryptNaive(c)
}

// decryptFast recovers the plaintext with one shared squaring chain
// and the per-key digit tables:
//
//	cm = c^vp = gamma^m mod p
//	round i digit: (cm * gamma^(-(m mod 2^(8i))))^(2^exps[i])
//	             = gamma^(d_i << (l - w_i))     -> table lookup
//
// The powers cm^(2^e) come from ONE ascending chain of l-w_0
// squarings snapshotted at each exps[i] (the naive path re-squares
// from scratch every bit — the O(l^2) inner loop this replaces), and
// the correction factors gamma^(-d_j << (exps[i]+8j)) are table rows.
// Total: ~l squarings + O((l/8)^2) multiplications mod p.
//
// ok = false means the value is not in gamma's 2^l-order subgroup
// (impossible for anything produced by Encrypt/Add/AddPlain/
// Rerandomize); the caller falls back to the naive path so junk
// inputs keep their reference behavior.
func (k *DGKPrivateKey) decryptFast(c *Ciphertext) (uint64, bool) {
	df := k.dec
	nd := len(df.exps)
	cm := new(big.Int).Exp(new(big.Int).Mod(c.v, k.p), k.vp, k.p)

	// One squaring chain, snapshotted at each round's exponent
	// (exps is strictly decreasing; exps[nd-1] == 0).
	snaps := make([]*big.Int, nd)
	cur := new(big.Int).Set(cm)
	e := 0
	for i := nd - 1; i >= 0; i-- {
		for e < df.exps[i] {
			cur.Mul(cur, cur)
			cur.Mod(cur, k.p)
			e++
		}
		snaps[i] = new(big.Int).Set(cur)
	}

	var m uint64
	z := new(big.Int)
	for i := 0; i < nd; i++ {
		z.Set(snaps[i])
		for j := 0; j < i; j++ {
			d := byte(m >> uint(dgkDecDigitBits*j))
			if d == 0 {
				continue
			}
			z.Mul(z, df.inv[df.exps[i]+dgkDecDigitBits*j][d-1])
			z.Mod(z, k.p)
		}
		d, ok := df.look[i][string(z.Bytes())]
		if !ok {
			return 0, false
		}
		m |= uint64(d) << uint(dgkDecDigitBits*i)
	}
	return m, true
}

// decryptNaive is the retained bit-by-bit reference: peel one bit per
// round, re-squaring the accumulator down to the top of the group each
// time (O(l^2) squarings).
func (k *DGKPrivateKey) decryptNaive(c *Ciphertext) (uint64, error) {
	cm := new(big.Int).Exp(new(big.Int).Mod(c.v, k.p), k.vp, k.p) // gamma^m
	var m uint64
	one := big.NewInt(1)
	// acc = gamma^(-m_partial) * gamma^m; peel one bit per round.
	acc := new(big.Int).Set(cm)
	for i := 0; i < k.l; i++ {
		// z = acc^(2^(l-1-i)); z == 1 iff bit i of the remaining
		// exponent is 0.
		z := new(big.Int).Set(acc)
		for j := 0; j < k.l-1-i; j++ {
			z.Mul(z, z).Mod(z, k.p)
		}
		if z.Cmp(one) != 0 {
			m |= 1 << uint(i)
			// Divide acc by gamma^(2^i) via the precomputed inverse.
			acc.Mul(acc, k.gammaInvP[i]).Mod(acc, k.p)
		}
	}
	return m, nil
}
