package ahe

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
)

// DGK in the full-decryption variant (§VI-A3, [24] with the
// Pohlig–Hellman decryption of [49]).
//
// Construction. For plaintext space Z_u with u = 2^l:
//
//	p = u * vp * fp + 1,   q = u * vq * fq + 1     (vp, vq: t-bit primes)
//	n = p q
//	g: order u*vp mod p and u*vq mod q  (so order u*vp*vq mod n)
//	h: order vp   mod p and vq   mod q  (so order vp*vq mod n)
//
//	Enc(m; r) = g^m h^r mod n,  r uniform in [0, 2^{2.5 t})
//
// Decryption works mod p only: c^vp = (g^vp)^m (h^vp)^r = gamma^m with
// gamma = g^vp of order u = 2^l, and the discrete log of gamma^m in the
// 2-group of order 2^l is recovered bit by bit (Pohlig–Hellman needs
// only l small exponentiations because 2^l is smooth).
//
// The homomorphic sum therefore lives in Z_{2^l} exactly — partial sums
// of shares wrap just like plaintext shares do, which is the property
// PEOS needs so fake reports are indistinguishable after decryption.

const dgkSubgroupBits = 160 // t: size of vp, vq

// DGKPrivateKey holds the full key. It implements PrivateKey.
type DGKPrivateKey struct {
	DGKPublicKey
	p     *big.Int // prime factor of n
	vp    *big.Int // odd prime subgroup order mod p
	gamma *big.Int // g^vp mod p, order 2^l
	// gammaP[i] = gamma^(2^i) mod p and gammaInvP[i] its inverse,
	// precomputed so Pohlig–Hellman decryption needs no ModInverse.
	gammaP    []*big.Int
	gammaInvP []*big.Int
}

// DGKPublicKey implements PublicKey.
type DGKPublicKey struct {
	n    *big.Int
	g, h *big.Int
	l    int // plaintext bits
	rnd  int // randomizer bit-length (2.5 t)
}

// GenerateDGK creates a DGK key pair with an n of about keyBits bits
// and plaintext space Z_{2^plaintextBits} (1..64). keyBits must be at
// least enough to fit the subgroups (plaintextBits + 160 + slack).
func GenerateDGK(keyBits, plaintextBits int) (*DGKPrivateKey, error) {
	if plaintextBits < 1 || plaintextBits > 64 {
		return nil, errors.New("ahe: plaintext bits must be in [1, 64]")
	}
	half := keyBits / 2
	minHalf := plaintextBits + dgkSubgroupBits + 32
	if half < minHalf {
		return nil, fmt.Errorf("ahe: keyBits %d too small for plaintext 2^%d (need >= %d)",
			keyBits, plaintextBits, 2*minHalf)
	}
	u := new(big.Int).Lsh(big.NewInt(1), uint(plaintextBits))

	vp, err := rand.Prime(rand.Reader, dgkSubgroupBits)
	if err != nil {
		return nil, err
	}
	vq, err := rand.Prime(rand.Reader, dgkSubgroupBits)
	if err != nil {
		return nil, err
	}
	p, err := dgkPrime(half, u, vp)
	if err != nil {
		return nil, err
	}
	q, err := dgkPrime(half, u, vq)
	if err != nil {
		return nil, err
	}
	if p.Cmp(q) == 0 {
		return nil, errors.New("ahe: degenerate key (p == q)")
	}
	n := new(big.Int).Mul(p, q)

	gp, err := elementOfOrder(p, new(big.Int).Mul(u, vp), []*big.Int{big.NewInt(2), vp})
	if err != nil {
		return nil, err
	}
	gq, err := elementOfOrder(q, new(big.Int).Mul(u, vq), []*big.Int{big.NewInt(2), vq})
	if err != nil {
		return nil, err
	}
	hp, err := elementOfOrder(p, vp, []*big.Int{vp})
	if err != nil {
		return nil, err
	}
	hq, err := elementOfOrder(q, vq, []*big.Int{vq})
	if err != nil {
		return nil, err
	}
	g, err := crt(gp, gq, p, q)
	if err != nil {
		return nil, err
	}
	h, err := crt(hp, hq, p, q)
	if err != nil {
		return nil, err
	}

	pub := DGKPublicKey{
		n:   n,
		g:   g,
		h:   h,
		l:   plaintextBits,
		rnd: dgkSubgroupBits * 5 / 2,
	}
	return finishDGKPrivateKey(pub, p, vp)
}

// finishDGKPrivateKey derives the decryption accelerators (gamma and
// its power tables) from the key material (pub, p, vp). Key generation
// and private-key deserialization share it, so a restored key decrypts
// exactly like the original.
func finishDGKPrivateKey(pub DGKPublicKey, p, vp *big.Int) (*DGKPrivateKey, error) {
	gamma := new(big.Int).Exp(new(big.Int).Mod(pub.g, p), vp, p)
	gammaInv := new(big.Int).ModInverse(gamma, p)
	if gammaInv == nil {
		return nil, errors.New("ahe: gamma not invertible")
	}
	priv := &DGKPrivateKey{
		DGKPublicKey: pub,
		p:            p,
		vp:           vp,
		gamma:        gamma,
	}
	// Precompute gamma^(2^i) and gamma^(-2^i) for the bitwise discrete
	// log (one ModInverse at keygen instead of one per decrypted bit).
	priv.gammaP = make([]*big.Int, pub.l)
	priv.gammaInvP = make([]*big.Int, pub.l)
	cur := new(big.Int).Set(gamma)
	curInv := new(big.Int).Set(gammaInv)
	for i := 0; i < pub.l; i++ {
		priv.gammaP[i] = new(big.Int).Set(cur)
		priv.gammaInvP[i] = new(big.Int).Set(curInv)
		cur = new(big.Int).Mod(new(big.Int).Mul(cur, cur), p)
		curInv = new(big.Int).Mod(new(big.Int).Mul(curInv, curInv), p)
	}
	return priv, nil
}

// dgkPrime finds a prime p = u*v*f + 1 of exactly `bits` bits.
func dgkPrime(bits int, u, v *big.Int) (*big.Int, error) {
	uv := new(big.Int).Mul(u, v)
	fBits := bits - uv.BitLen()
	if fBits < 16 {
		return nil, errors.New("ahe: key half too small for subgroup structure")
	}
	one := big.NewInt(1)
	for attempts := 0; attempts < 100000; attempts++ {
		f, err := rand.Int(rand.Reader, new(big.Int).Lsh(one, uint(fBits)))
		if err != nil {
			return nil, err
		}
		f.SetBit(f, fBits-1, 1) // force the top bit so p has full size
		p := new(big.Int).Mul(uv, f)
		p.Add(p, one)
		if p.ProbablyPrime(20) {
			return p, nil
		}
	}
	return nil, errors.New("ahe: failed to find DGK prime")
}

// elementOfOrder returns an element of exact multiplicative order
// `order` mod prime p, where order | p-1 and primeFactors lists the
// distinct primes dividing order.
func elementOfOrder(p, order *big.Int, primeFactors []*big.Int) (*big.Int, error) {
	pm1 := new(big.Int).Sub(p, big.NewInt(1))
	exp := new(big.Int).Div(pm1, order)
	one := big.NewInt(1)
	for attempts := 0; attempts < 1000; attempts++ {
		x, err := rand.Int(rand.Reader, p)
		if err != nil {
			return nil, err
		}
		if x.Sign() == 0 {
			continue
		}
		g := new(big.Int).Exp(x, exp, p)
		if g.Cmp(one) == 0 {
			continue
		}
		// Exact order check: g^(order/r) != 1 for every prime r | order.
		ok := true
		for _, r := range primeFactors {
			e := new(big.Int).Div(order, r)
			if new(big.Int).Exp(g, e, p).Cmp(one) == 0 {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	return nil, errors.New("ahe: failed to find element of required order")
}

// crt combines x = a mod p, x = b mod q into x mod pq.
func crt(a, b, p, q *big.Int) (*big.Int, error) {
	qInv := new(big.Int).ModInverse(q, p)
	if qInv == nil {
		return nil, errors.New("ahe: p and q not coprime")
	}
	// x = b + q * ((a - b) * qInv mod p)
	diff := new(big.Int).Sub(a, b)
	diff.Mod(diff, p)
	diff.Mul(diff, qInv)
	diff.Mod(diff, p)
	x := new(big.Int).Mul(q, diff)
	x.Add(x, b)
	return x, nil
}

// Scheme implements PublicKey.
func (k DGKPublicKey) Scheme() string { return "DGK" }

// PlaintextBits implements PublicKey.
func (k DGKPublicKey) PlaintextBits() int { return k.l }

// Modulus returns n (for tests and serialization checks).
func (k DGKPublicKey) Modulus() *big.Int { return new(big.Int).Set(k.n) }

func (k DGKPublicKey) reduce(m uint64) *big.Int {
	if k.l == 64 {
		return new(big.Int).SetUint64(m)
	}
	return new(big.Int).SetUint64(m & ((1 << uint(k.l)) - 1))
}

func (k DGKPublicKey) randomizer() (*big.Int, error) {
	bound := new(big.Int).Lsh(big.NewInt(1), uint(k.rnd))
	return rand.Int(rand.Reader, bound)
}

// Encrypt implements PublicKey: g^m h^r mod n.
func (k DGKPublicKey) Encrypt(m uint64) (*Ciphertext, error) {
	r, err := k.randomizer()
	if err != nil {
		return nil, err
	}
	gm := new(big.Int).Exp(k.g, k.reduce(m), k.n)
	hr := new(big.Int).Exp(k.h, r, k.n)
	return &Ciphertext{v: gm.Mul(gm, hr).Mod(gm, k.n)}, nil
}

// Add implements PublicKey: ciphertext multiplication adds plaintexts.
func (k DGKPublicKey) Add(a, b *Ciphertext) *Ciphertext {
	v := new(big.Int).Mul(a.v, b.v)
	return &Ciphertext{v: v.Mod(v, k.n)}
}

// AddPlain implements PublicKey: multiply by g^m (no fresh randomness;
// call Rerandomize if unlinkability is needed).
func (k DGKPublicKey) AddPlain(a *Ciphertext, m uint64) (*Ciphertext, error) {
	gm := new(big.Int).Exp(k.g, k.reduce(m), k.n)
	v := new(big.Int).Mul(a.v, gm)
	return &Ciphertext{v: v.Mod(v, k.n)}, nil
}

// Rerandomize implements PublicKey: multiply by h^r.
func (k DGKPublicKey) Rerandomize(a *Ciphertext) (*Ciphertext, error) {
	r, err := k.randomizer()
	if err != nil {
		return nil, err
	}
	hr := new(big.Int).Exp(k.h, r, k.n)
	v := new(big.Int).Mul(a.v, hr)
	return &Ciphertext{v: v.Mod(v, k.n)}, nil
}

// CiphertextBytes implements PublicKey.
func (k DGKPublicKey) CiphertextBytes() int { return (k.n.BitLen() + 7) / 8 }

// Serialize implements PublicKey.
func (k DGKPublicKey) Serialize(a *Ciphertext) []byte {
	return serializeFixed(a.v, k.CiphertextBytes())
}

// Deserialize implements PublicKey.
func (k DGKPublicKey) Deserialize(data []byte) (*Ciphertext, error) {
	if len(data) != k.CiphertextBytes() {
		return nil, fmt.Errorf("ahe: DGK ciphertext must be %d bytes, got %d",
			k.CiphertextBytes(), len(data))
	}
	v := new(big.Int).SetBytes(data)
	if v.Cmp(k.n) >= 0 {
		return nil, errors.New("ahe: ciphertext out of range")
	}
	return &Ciphertext{v: v}, nil
}

// Decrypt implements PrivateKey via Pohlig–Hellman in the 2^l-order
// subgroup: recover m bit by bit from c^vp = gamma^m mod p.
func (k *DGKPrivateKey) Decrypt(c *Ciphertext) (uint64, error) {
	cm := new(big.Int).Exp(new(big.Int).Mod(c.v, k.p), k.vp, k.p) // gamma^m
	var m uint64
	one := big.NewInt(1)
	// acc = gamma^(-m_partial) * gamma^m; peel one bit per round.
	acc := new(big.Int).Set(cm)
	for i := 0; i < k.l; i++ {
		// z = acc^(2^(l-1-i)); z == 1 iff bit i of the remaining
		// exponent is 0.
		z := new(big.Int).Set(acc)
		for j := 0; j < k.l-1-i; j++ {
			z.Mul(z, z).Mod(z, k.p)
		}
		if z.Cmp(one) != 0 {
			m |= 1 << uint(i)
			// Divide acc by gamma^(2^i) via the precomputed inverse.
			acc.Mul(acc, k.gammaInvP[i]).Mod(acc, k.p)
		}
	}
	return m, nil
}
