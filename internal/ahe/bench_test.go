package ahe

import (
	"sync"
	"testing"
)

var (
	benchOnce sync.Once
	benchDGK  *DGKPrivateKey
	benchPai  *PaillierPrivateKey
)

func benchKeys(b *testing.B) (*DGKPrivateKey, *PaillierPrivateKey) {
	b.Helper()
	benchOnce.Do(func() {
		var err error
		if benchDGK, err = GenerateDGK(1024, 64); err != nil {
			panic(err)
		}
		if benchPai, err = GeneratePaillier(1024, 64); err != nil {
			panic(err)
		}
	})
	return benchDGK, benchPai
}

func BenchmarkDGKEncrypt(b *testing.B) {
	key, _ := benchKeys(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.Encrypt(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDGKDecrypt(b *testing.B) {
	key, _ := benchKeys(b)
	c, err := key.Encrypt(0xdeadbeef)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.Decrypt(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDGKAdd(b *testing.B) {
	key, _ := benchKeys(b)
	c1, _ := key.Encrypt(1)
	c2, _ := key.Encrypt(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key.Add(c1, c2)
	}
}

func BenchmarkDGKAddPlain(b *testing.B) {
	key, _ := benchKeys(b)
	c, _ := key.Encrypt(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.AddPlain(c, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDGKRerandomize(b *testing.B) {
	key, _ := benchKeys(b)
	c, _ := key.Encrypt(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.Rerandomize(c); err != nil {
			b.Fatal(err)
		}
	}
}

// withNaive runs the benchmark body with the fast path disabled and
// restores it afterwards — the ablation counterpart of the fast-path
// benchmarks above.
func withNaive(b *testing.B, key *DGKPrivateKey, body func()) {
	key.SetFastPath(false)
	defer key.SetFastPath(true)
	b.ResetTimer()
	body()
}

func BenchmarkDGKEncryptNaive(b *testing.B) {
	key, _ := benchKeys(b)
	withNaive(b, key, func() {
		for i := 0; i < b.N; i++ {
			if _, err := key.Encrypt(uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDGKDecryptNaive(b *testing.B) {
	key, _ := benchKeys(b)
	c, err := key.Encrypt(0xdeadbeef)
	if err != nil {
		b.Fatal(err)
	}
	withNaive(b, key, func() {
		for i := 0; i < b.N; i++ {
			if _, err := key.Decrypt(c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDGKRerandomizeNaive(b *testing.B) {
	key, _ := benchKeys(b)
	c, _ := key.Encrypt(1)
	withNaive(b, key, func() {
		for i := 0; i < b.N; i++ {
			if _, err := key.Rerandomize(c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDGKEncryptPooled measures Encrypt with the background
// randomizer pool keeping (r, h^r) pairs warm — the client/shuffler
// steady state. On a loaded single-core machine it converges to the
// unpooled table path; spare cores turn h^r into a pool pop.
func BenchmarkDGKEncryptPooled(b *testing.B) {
	key, _ := benchKeys(b)
	stop := key.StartRandomizerPool(0)
	defer stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.Encrypt(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPaillierEncrypt(b *testing.B) {
	_, key := benchKeys(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.Encrypt(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPaillierDecrypt(b *testing.B) {
	_, key := benchKeys(b)
	c, err := key.Encrypt(0xdeadbeef)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.Decrypt(c); err != nil {
			b.Fatal(err)
		}
	}
}
