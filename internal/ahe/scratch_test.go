package ahe

// Tests for the worker-pool support layer (DESIGN.md §14): the
// scratch-reusing in-place kernels behind ScratchOps, the fixed-base
// ExpInto variant, the multi-refiller randomizer pool behind PoolerN,
// the pool hit/miss accounting, and the allocation regression pins of
// the steady-state fold loops. CI runs this file under -race.

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"

	"shuffledp/internal/rng"
)

// TestExpIntoMatchesExp holds the scratch variant of the fixed-base
// kernel bit-identical to Exp across the same exponent shapes, with the
// destination reused (dirty) between calls.
func TestExpIntoMatchesExp(t *testing.T) {
	p, err := rand.Prime(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	q, err := rand.Prime(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	mod := new(big.Int).Mul(p, q)
	base, err := rand.Int(rand.Reader, mod)
	if err != nil {
		t.Fatal(err)
	}
	const maxBits = 400
	tab := newFBTable(base, mod, maxBits)

	exps := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(255),
		big.NewInt(256),
		new(big.Int).Lsh(big.NewInt(1), maxBits-1),
		new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), maxBits), big.NewInt(1)),
		new(big.Int).Lsh(big.NewInt(0xa5), 128),
	}
	for i := 0; i < 40; i++ {
		e, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), maxBits))
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	var dst, tmp big.Int // deliberately reused dirty across iterations
	for _, e := range exps {
		got := tab.ExpInto(&dst, &tmp, e)
		if got == nil {
			t.Fatalf("ExpInto refused in-range exponent of %d bits", e.BitLen())
		}
		if got != &dst {
			t.Fatal("ExpInto returned a value other than dst")
		}
		if want := tab.Exp(e); got.Cmp(want) != 0 {
			t.Fatalf("ExpInto mismatch at e=%v", e)
		}
	}
	if tab.ExpInto(&dst, &tmp, new(big.Int).Lsh(big.NewInt(1), maxBits)) != nil {
		t.Fatal("ExpInto accepted an exponent wider than maxBits")
	}
	if tab.ExpInto(&dst, &tmp, big.NewInt(-1)) != nil {
		t.Fatal("ExpInto accepted a negative exponent")
	}
}

// TestScratchOpsMatchAllocatingOps: AddPlainInto / RerandomizeInto —
// including the dst == a in-place form the shuffle loops use — must
// decrypt identically to the allocating AddPlain / Rerandomize, on the
// fast path and through the naive fallback, with one Scratch reused
// across every call.
func TestScratchOpsMatchAllocatingOps(t *testing.T) {
	for _, key := range conformanceKeys(t) {
		so, ok := PublicKey(key).(ScratchOps)
		if !ok {
			t.Fatal("DGK key does not implement ScratchOps")
		}
		mask := uint64(1)<<uint(key.PlaintextBits()) - 1
		if key.PlaintextBits() == 64 {
			mask = ^uint64(0)
		}
		r := rng.New(0x5c7a7c4)
		sc := so.NewScratch()
		for _, fast := range []bool{true, false} {
			key.SetFastPath(fast)
			for i := 0; i < 8; i++ {
				m := r.Uint64() & mask
				add := r.Uint64() & mask
				c, err := key.Encrypt(m)
				if err != nil {
					t.Fatal(err)
				}
				// In-place chain: add, then rerandomize, dst aliasing a.
				if err := so.AddPlainInto(c, c, add, sc); err != nil {
					t.Fatal(err)
				}
				if err := so.RerandomizeInto(c, c, sc); err != nil {
					t.Fatal(err)
				}
				got, err := key.Decrypt(c)
				if err != nil {
					t.Fatal(err)
				}
				if want := (m + add) & mask; got != want {
					t.Fatalf("fast=%v l=%d: in-place chain decrypts %d, want %d",
						fast, key.PlaintextBits(), got, want)
				}
				// Distinct-destination form, dst starting zero-valued.
				var out Ciphertext
				if err := so.AddPlainInto(&out, c, add, sc); err != nil {
					t.Fatal(err)
				}
				got, err = key.Decrypt(&out)
				if err != nil {
					t.Fatal(err)
				}
				if want := (m + 2*add) & mask; got != want {
					t.Fatalf("fast=%v l=%d: fresh-dst add decrypts %d, want %d",
						fast, key.PlaintextBits(), got, want)
				}
			}
		}
		key.SetFastPath(true)
	}
}

// TestRerandomizeIntoChangesCiphertext: the in-place rerandomize must
// actually refresh the group element (unlinkability), not just keep the
// plaintext.
func TestRerandomizeIntoChangesCiphertext(t *testing.T) {
	key := conformanceKeys(t)[0]
	so := PublicKey(key).(ScratchOps)
	sc := so.NewScratch()
	c, err := key.Encrypt(42)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Value()
	if err := so.RerandomizeInto(c, c, sc); err != nil {
		t.Fatal(err)
	}
	if before.Cmp(c.Value()) == 0 {
		t.Fatal("RerandomizeInto left the group element unchanged")
	}
}

// TestCiphertextClone: a clone decrypts identically and is unaffected
// by in-place mutation of the original — the property the cluster's
// fake cache depends on across retried attempts.
func TestCiphertextClone(t *testing.T) {
	key := conformanceKeys(t)[0]
	so := PublicKey(key).(ScratchOps)
	c, err := key.Encrypt(9)
	if err != nil {
		t.Fatal(err)
	}
	clone := c.Clone()
	if err := so.AddPlainInto(c, c, 5, so.NewScratch()); err != nil {
		t.Fatal(err)
	}
	got, err := key.Decrypt(clone)
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("clone decrypts %d after mutating the original, want 9", got)
	}
}

// TestRandomizerPoolN: the multi-refiller pool keeps concurrent
// scratch-kernel workers on the pooled path, the hit/miss counters
// advance, and PoolSizeFor scales capacity with the worker count.
func TestRandomizerPoolN(t *testing.T) {
	key := conformanceKeys(t)[0]
	pn, ok := PublicKey(key).(PoolerN)
	if !ok {
		t.Fatal("DGK key does not implement PoolerN")
	}
	const workers = 4
	hits0, misses0 := key.RandomizerPoolStats()
	stop := pn.StartRandomizerPoolN(PoolSizeFor(workers), 2)
	defer stop()

	so := PublicKey(key).(ScratchOps)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := so.NewScratch()
			c, err := key.Encrypt(uint64(w))
			if err != nil {
				errs[w] = err
				return
			}
			for i := 0; i < 25; i++ {
				if err := so.RerandomizeInto(c, c, sc); err != nil {
					errs[w] = err
					return
				}
			}
			got, err := key.Decrypt(c)
			if err != nil {
				errs[w] = err
				return
			}
			if got != uint64(w) {
				errs[w] = errRoundTrip
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	hits1, misses1 := key.RandomizerPoolStats()
	if draws := (hits1 - hits0) + (misses1 - misses0); draws < workers*25 {
		t.Fatalf("counters recorded %d randomizer draws, want >= %d", draws, workers*25)
	}
	if hits1 == hits0 {
		t.Fatal("a running multi-refiller pool served zero hits")
	}
}

// TestPoolSizing pins the sizing helpers the call sites build on.
func TestPoolSizing(t *testing.T) {
	if got := PoolSizeFor(0); got != DefaultPoolSize {
		t.Fatalf("PoolSizeFor(0) = %d, want %d", got, DefaultPoolSize)
	}
	if got := PoolSizeFor(4); got != 4*DefaultPoolSize {
		t.Fatalf("PoolSizeFor(4) = %d, want %d", got, 4*DefaultPoolSize)
	}
	if got := PoolSizeFor(1 << 20); got != maxPoolSize {
		t.Fatalf("PoolSizeFor(1<<20) = %d, want the %d cap", got, maxPoolSize)
	}
	if r := DefaultPoolRefillers(); r < 1 || r > 4 {
		t.Fatalf("DefaultPoolRefillers() = %d, want 1..4", r)
	}
}

// TestScratchKernelAllocs is the allocation-regression pin of the
// steady-state parallel loops (no background pool runs here —
// AllocsPerRun counts every goroutine's allocations). Two pins:
//
//   - AddPlainInto, the fold-loop kernel (addPlainAll, splitEncrypted
//     stage B): measured at 1 alloc/op — math/big Mod's internal
//     quotient — with zero per-op ciphertext or scratch garbage.
//     Pinned at <= 3 (the allocating AddPlain costs ~3x more and any
//     reintroduced per-op object trips it).
//   - RerandomizeInto on its inline fixed-base fallback, the worst
//     case: crypto/rand's randomizer draw plus one Mod temporary per
//     8-bit window of the 160-bit exponent, ~55 measured. Pinned at
//     <= 80; the pooled path the cluster actually runs (pool hit →
//     one Mul + one Mod) costs ~2.
func TestScratchKernelAllocs(t *testing.T) {
	key := conformanceKeys(t)[0]
	so := PublicKey(key).(ScratchOps)
	sc := so.NewScratch()
	c, err := key.Encrypt(1)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the scratch capacities and the lazily-built tables.
	for i := 0; i < 4; i++ {
		if err := so.AddPlainInto(c, c, uint64(i), sc); err != nil {
			t.Fatal(err)
		}
		if err := so.RerandomizeInto(c, c, sc); err != nil {
			t.Fatal(err)
		}
	}
	addAllocs := testing.AllocsPerRun(50, func() {
		if err := so.AddPlainInto(c, c, 3, sc); err != nil {
			t.Fatal(err)
		}
	})
	if addAllocs > 3 {
		t.Fatalf("AddPlainInto allocates %.1f/op, want <= 3", addAllocs)
	}
	rerAllocs := testing.AllocsPerRun(50, func() {
		if err := so.RerandomizeInto(c, c, sc); err != nil {
			t.Fatal(err)
		}
	})
	if rerAllocs > 80 {
		t.Fatalf("RerandomizeInto fallback allocates %.1f/op, want <= 80", rerAllocs)
	}
}
