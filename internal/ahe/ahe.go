// Package ahe implements additively homomorphic encryption (§II-C).
//
// Two schemes are provided behind one interface:
//
//   - DGK (Damgård–Geisler–Krøigaard), in the full-decryption variant
//     with plaintext space Z_{2^l} decrypted via Pohlig–Hellman — the
//     scheme the paper instantiates PEOS with (§VI-A3): "there is a
//     crucial requirement for the AHE scheme: it should support a
//     plaintext space of Z_{2^l} ... so that the decrypted result
//     modulo 2^l looks like other reports."
//   - Paillier, the classic AHE over Z_n, provided for comparison and
//     the EOS-overhead ablation benchmark.
//
// All arithmetic uses math/big; randomness is crypto/rand. Key
// generation is probabilistic-prime based, so use small key sizes in
// tests (512/1024 bits) and 3072 bits to match the paper's Table III.
package ahe

import "math/big"

// Ciphertext is one encrypted value. Both schemes use a single group
// element (Z_n for DGK, Z_{n^2} for Paillier).
type Ciphertext struct {
	v *big.Int
}

// Value exposes the raw group element (for serialization).
func (c *Ciphertext) Value() *big.Int { return new(big.Int).Set(c.v) }

// Clone returns an independent copy. The in-place ScratchOps kernels
// mutate their operands, so any ciphertext a caller retains across an
// evaluation pass (the cluster's per-collection fake cache) must hand
// the pass a clone.
func (c *Ciphertext) Clone() *Ciphertext { return &Ciphertext{v: new(big.Int).Set(c.v)} }

// PublicKey is the encryptor/evaluator side: users encrypt their last
// share with it, shufflers homomorphically add and rerandomize.
type PublicKey interface {
	// Scheme returns the scheme name ("DGK" or "Paillier").
	Scheme() string
	// PlaintextBits returns l: plaintext semantics are Z_{2^l}.
	PlaintextBits() int
	// Encrypt encrypts m (reduced mod 2^l).
	Encrypt(m uint64) (*Ciphertext, error)
	// Add returns a ciphertext of the sum of the two plaintexts.
	Add(a, b *Ciphertext) *Ciphertext
	// AddPlain returns a ciphertext of (plaintext of a) + m.
	AddPlain(a *Ciphertext, m uint64) (*Ciphertext, error)
	// Rerandomize refreshes the ciphertext so it is unlinkable to its
	// input (multiplication by a fresh encryption of zero).
	Rerandomize(a *Ciphertext) (*Ciphertext, error)
	// CiphertextBytes returns the fixed serialized size, used by the
	// Table III communication accounting.
	CiphertextBytes() int
	// Serialize encodes a ciphertext into exactly CiphertextBytes()
	// bytes; Deserialize reverses it.
	Serialize(a *Ciphertext) []byte
	Deserialize(data []byte) (*Ciphertext, error)
}

// PrivateKey adds decryption.
type PrivateKey interface {
	PublicKey
	// Decrypt returns the plaintext in [0, 2^l).
	Decrypt(c *Ciphertext) (uint64, error)
}

// Scratch holds the per-worker big.Int accumulators the scratch
// variants of the hot public-key operations (ScratchOps) reuse across
// calls. One Scratch belongs to exactly one goroutine; distinct
// workers of a parallel loop each allocate their own via NewScratch.
type Scratch struct {
	e, acc, tmp big.Int
}

// ScratchOps is implemented by public keys whose hot homomorphic
// operations can run with caller-owned scratch state and an in-place
// destination — the allocation-flat kernels the worker-pooled
// oblivious-shuffle loops run on. Keys without it (Paillier) are
// served by the plain AddPlain/Rerandomize fallback; the results are
// identical either way, only the allocation profile differs.
type ScratchOps interface {
	PublicKey
	// NewScratch returns a fresh scratch area for one worker goroutine.
	NewScratch() *Scratch
	// AddPlainInto stores AddPlain(a, m) into dst. dst may alias a —
	// the in-place form the hot loops use.
	AddPlainInto(dst, a *Ciphertext, m uint64, sc *Scratch) error
	// RerandomizeInto stores Rerandomize(a) into dst. dst may alias a.
	RerandomizeInto(dst, a *Ciphertext, sc *Scratch) error
}

// Pooler is implemented by public keys that can precompute encryption
// randomizers off the critical path (DGK's background (r, h^r) pool).
// Call sites with an encryption-heavy phase — the PEOS user loop, the
// cluster client, the shufflers' rerandomize sites — start the pool
// for the phase's duration and stop it when done:
//
//	if pl, ok := pub.(ahe.Pooler); ok {
//		defer pl.StartRandomizerPool(0)()
//	}
//
// Starting is reference-counted and the returned stop is idempotent,
// so nested components sharing one key compose safely.
type Pooler interface {
	// StartRandomizerPool starts or joins the key's background
	// randomizer refiller with the given pool capacity (<1 selects
	// DefaultPoolSize) and returns the matching stop function.
	StartRandomizerPool(capacity int) (stop func())
}

// PoolerN extends Pooler with explicit refill concurrency, for sites
// whose drain rate scales with a worker count (the parallel shuffler
// loops): size the capacity with PoolSizeFor(workers) and let the
// refill side keep up. The first starter of a key's pool fixes both
// numbers; later joiners share it (same refcount semantics as Pooler).
type PoolerN interface {
	Pooler
	// StartRandomizerPoolN is StartRandomizerPool with the refiller
	// count exposed (<1 selects DefaultPoolRefillers, derived from
	// GOMAXPROCS).
	StartRandomizerPoolN(capacity, refillers int) (stop func())
}

// serializeFixed left-pads v to size bytes.
func serializeFixed(v *big.Int, size int) []byte {
	out := make([]byte, size)
	b := v.Bytes()
	if len(b) > size {
		panic("ahe: value exceeds fixed serialization size")
	}
	copy(out[size-len(b):], b)
	return out
}
