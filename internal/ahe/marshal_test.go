package ahe

import (
	"bytes"
	"errors"
	"testing"
)

func TestDGKPublicKeyRoundTrip(t *testing.T) {
	priv, err := GenerateDGK(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	blob := MarshalDGKPublicKey(&priv.DGKPublicKey)
	pub, err := UnmarshalDGKPublicKey(blob)
	if err != nil {
		t.Fatal(err)
	}
	// A ciphertext produced under the restored public key must decrypt
	// under the original private key.
	c, err := pub.Encrypt(0xdeadbeefcafe)
	if err != nil {
		t.Fatal(err)
	}
	m, err := priv.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if m != 0xdeadbeefcafe {
		t.Fatalf("decrypted %x", m)
	}
	// Homomorphic ops and fixed-size serialization survive the trip.
	if pub.CiphertextBytes() != priv.CiphertextBytes() {
		t.Fatalf("ciphertext size changed: %d vs %d", pub.CiphertextBytes(), priv.CiphertextBytes())
	}
	c2, err := pub.AddPlain(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := priv.Decrypt(c2); m != 0xdeadbeefcafe+1 {
		t.Fatalf("homomorphic add under restored key: %x", m)
	}
	// The restored key must serialize/deserialize ciphertexts
	// compatibly with the original.
	rt, err := priv.Deserialize(pub.Serialize(c))
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := priv.Decrypt(rt); m != 0xdeadbeefcafe {
		t.Fatalf("ciphertext round trip through restored key: %x", m)
	}
}

func TestDGKPrivateKeyRoundTrip(t *testing.T) {
	priv, err := GenerateDGK(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalDGKPrivateKey(MarshalDGKPrivateKey(priv))
	if err != nil {
		t.Fatal(err)
	}
	// Encrypt under the original, decrypt under the restored key (and
	// the other way around).
	for i, enc := range []PublicKey{priv, restored} {
		dec := []PrivateKey{restored, priv}[i]
		c, err := enc.Encrypt(uint64(1234567 + i))
		if err != nil {
			t.Fatal(err)
		}
		m, err := dec.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if m != uint64(1234567+i) {
			t.Fatalf("cross decrypt %d: got %d", i, m)
		}
	}
	// The marshaled forms are identical (pure function of the key).
	if !bytes.Equal(MarshalDGKPrivateKey(priv), MarshalDGKPrivateKey(restored)) {
		t.Fatal("restored key marshals differently")
	}
}

func TestDGKKeyUnmarshalRejectsCorruption(t *testing.T) {
	priv, err := GenerateDGK(512, 16)
	if err != nil {
		t.Fatal(err)
	}
	pubBlob := MarshalDGKPublicKey(&priv.DGKPublicKey)
	privBlob := MarshalDGKPrivateKey(priv)

	cases := map[string][]byte{
		"empty":             nil,
		"bad magic":         append([]byte("NOPE"), pubBlob[4:]...),
		"truncated":         pubBlob[:len(pubBlob)/2],
		"trailing":          append(append([]byte(nil), pubBlob...), 0),
		"future version":    append([]byte(dgkPubMagic+"\x02"), pubBlob[5:]...),
		"private as public": privBlob,
	}
	for name, blob := range cases {
		if _, err := UnmarshalDGKPublicKey(blob); !errors.Is(err, ErrKeyFormat) {
			t.Errorf("%s: want ErrKeyFormat, got %v", name, err)
		}
	}
	if _, err := UnmarshalDGKPrivateKey(pubBlob); !errors.Is(err, ErrKeyFormat) {
		t.Errorf("public as private: want ErrKeyFormat, got %v", err)
	}
	// A private blob whose p belongs to a different key must be
	// refused, not silently produce a key that decrypts garbage.
	other, err := GenerateDGK(512, 16)
	if err != nil {
		t.Fatal(err)
	}
	mixed := append([]byte(dgkPrivMagic), MarshalDGKPublicKey(&priv.DGKPublicKey)[4:]...)
	mixed = appendBigInt(mixed, other.p)
	mixed = appendBigInt(mixed, other.vp)
	if _, err := UnmarshalDGKPrivateKey(mixed); !errors.Is(err, ErrKeyFormat) {
		t.Errorf("mixed key halves: want ErrKeyFormat, got %v", err)
	}
}
