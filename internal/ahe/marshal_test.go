package ahe

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/big"
	"testing"
)

// buildDGKPubBlob assembles a well-framed public-key blob from raw
// field values, so tests can probe semantic validation (not just
// framing) with inputs Marshal would never produce.
func buildDGKPubBlob(l byte, rnd uint32, n, g, h *big.Int) []byte {
	buf := append([]byte(dgkPubMagic), dgkMarshalVersion, l)
	buf = binary.BigEndian.AppendUint32(buf, rnd)
	buf = appendBigInt(buf, n)
	buf = appendBigInt(buf, g)
	return appendBigInt(buf, h)
}

func TestDGKPublicKeyRoundTrip(t *testing.T) {
	priv, err := GenerateDGK(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	blob := MarshalDGKPublicKey(&priv.DGKPublicKey)
	pub, err := UnmarshalDGKPublicKey(blob)
	if err != nil {
		t.Fatal(err)
	}
	// A ciphertext produced under the restored public key must decrypt
	// under the original private key.
	c, err := pub.Encrypt(0xdeadbeefcafe)
	if err != nil {
		t.Fatal(err)
	}
	m, err := priv.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if m != 0xdeadbeefcafe {
		t.Fatalf("decrypted %x", m)
	}
	// Homomorphic ops and fixed-size serialization survive the trip.
	if pub.CiphertextBytes() != priv.CiphertextBytes() {
		t.Fatalf("ciphertext size changed: %d vs %d", pub.CiphertextBytes(), priv.CiphertextBytes())
	}
	c2, err := pub.AddPlain(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := priv.Decrypt(c2); m != 0xdeadbeefcafe+1 {
		t.Fatalf("homomorphic add under restored key: %x", m)
	}
	// The restored key must serialize/deserialize ciphertexts
	// compatibly with the original.
	rt, err := priv.Deserialize(pub.Serialize(c))
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := priv.Decrypt(rt); m != 0xdeadbeefcafe {
		t.Fatalf("ciphertext round trip through restored key: %x", m)
	}
}

func TestDGKPrivateKeyRoundTrip(t *testing.T) {
	priv, err := GenerateDGK(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalDGKPrivateKey(MarshalDGKPrivateKey(priv))
	if err != nil {
		t.Fatal(err)
	}
	// Encrypt under the original, decrypt under the restored key (and
	// the other way around).
	for i, enc := range []PublicKey{priv, restored} {
		dec := []PrivateKey{restored, priv}[i]
		c, err := enc.Encrypt(uint64(1234567 + i))
		if err != nil {
			t.Fatal(err)
		}
		m, err := dec.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if m != uint64(1234567+i) {
			t.Fatalf("cross decrypt %d: got %d", i, m)
		}
	}
	// The marshaled forms are identical (pure function of the key).
	if !bytes.Equal(MarshalDGKPrivateKey(priv), MarshalDGKPrivateKey(restored)) {
		t.Fatal("restored key marshals differently")
	}
}

func TestDGKKeyUnmarshalRejectsCorruption(t *testing.T) {
	priv, err := GenerateDGK(512, 16)
	if err != nil {
		t.Fatal(err)
	}
	pubBlob := MarshalDGKPublicKey(&priv.DGKPublicKey)
	privBlob := MarshalDGKPrivateKey(priv)

	cases := map[string][]byte{
		"empty":             nil,
		"bad magic":         append([]byte("NOPE"), pubBlob[4:]...),
		"truncated":         pubBlob[:len(pubBlob)/2],
		"trailing":          append(append([]byte(nil), pubBlob...), 0),
		"future version":    append([]byte(dgkPubMagic+"\x02"), pubBlob[5:]...),
		"private as public": privBlob,
	}
	for name, blob := range cases {
		if _, err := UnmarshalDGKPublicKey(blob); !errors.Is(err, ErrKeyFormat) {
			t.Errorf("%s: want ErrKeyFormat, got %v", name, err)
		}
	}
	if _, err := UnmarshalDGKPrivateKey(pubBlob); !errors.Is(err, ErrKeyFormat) {
		t.Errorf("public as private: want ErrKeyFormat, got %v", err)
	}
	// A private blob whose p belongs to a different key must be
	// refused, not silently produce a key that decrypts garbage.
	other, err := GenerateDGK(512, 16)
	if err != nil {
		t.Fatal(err)
	}
	mixed := append([]byte(dgkPrivMagic), MarshalDGKPublicKey(&priv.DGKPublicKey)[4:]...)
	mixed = appendBigInt(mixed, other.p)
	mixed = appendBigInt(mixed, other.vp)
	if _, err := UnmarshalDGKPrivateKey(mixed); !errors.Is(err, ErrKeyFormat) {
		t.Errorf("mixed key halves: want ErrKeyFormat, got %v", err)
	}
}

// TestDGKKeyUnmarshalRejectsSemanticCorruption covers blobs that frame
// correctly but describe keys that cannot work: every one of these
// used to parse into a "key" that encrypted to garbage, allocated
// absurdly, or decrypted every ciphertext wrong.
func TestDGKKeyUnmarshalRejectsSemanticCorruption(t *testing.T) {
	priv, err := GenerateDGK(512, 16)
	if err != nil {
		t.Fatal(err)
	}
	pub := priv.DGKPublicKey
	one := big.NewInt(1)
	evenN := new(big.Int).Add(pub.n, one) // n is odd, so n+1 is even

	cases := map[string][]byte{
		"zero n":     buildDGKPubBlob(byte(pub.l), uint32(pub.rnd), big.NewInt(0), pub.g, pub.h),
		"even n":     buildDGKPubBlob(byte(pub.l), uint32(pub.rnd), evenN, pub.g, pub.h),
		"tiny n":     buildDGKPubBlob(byte(pub.l), uint32(pub.rnd), big.NewInt(0xfff1), pub.g, pub.h),
		"g = 1":      buildDGKPubBlob(byte(pub.l), uint32(pub.rnd), pub.n, one, pub.h),
		"h = 1":      buildDGKPubBlob(byte(pub.l), uint32(pub.rnd), pub.n, pub.g, one),
		"g >= n":     buildDGKPubBlob(byte(pub.l), uint32(pub.rnd), pub.n, pub.n, pub.h),
		"h >= n":     buildDGKPubBlob(byte(pub.l), uint32(pub.rnd), pub.n, pub.g, pub.n),
		"zero rnd":   buildDGKPubBlob(byte(pub.l), 0, pub.n, pub.g, pub.h),
		"absurd rnd": buildDGKPubBlob(byte(pub.l), 1<<30, pub.n, pub.g, pub.h),
		"l = 0":      buildDGKPubBlob(0, uint32(pub.rnd), pub.n, pub.g, pub.h),
		"l = 65":     buildDGKPubBlob(65, uint32(pub.rnd), pub.n, pub.g, pub.h),
	}
	for name, blob := range cases {
		if _, err := UnmarshalDGKPublicKey(blob); !errors.Is(err, ErrKeyFormat) {
			t.Errorf("%s: want ErrKeyFormat, got %v", name, err)
		}
	}

	// Private-key semantics: vp must divide p-1.
	pm1 := new(big.Int).Sub(priv.p, one)
	badVP := new(big.Int).Add(priv.vp, one)
	for new(big.Int).Mod(pm1, badVP).Sign() == 0 {
		badVP.Add(badVP, one)
	}
	blob := append([]byte(dgkPrivMagic), MarshalDGKPublicKey(&pub)[4:]...)
	blob = appendBigInt(blob, priv.p)
	blob = appendBigInt(blob, badVP)
	if _, err := UnmarshalDGKPrivateKey(blob); !errors.Is(err, ErrKeyFormat) {
		t.Errorf("vp not dividing p-1: want ErrKeyFormat, got %v", err)
	}

	// gamma = g^vp must have exact order 2^l. Swapping g for g^2 keeps
	// every framing and divisibility check happy but halves gamma's
	// order — the resulting key would mis-decrypt the top plaintext bit
	// of every ciphertext.
	g2 := new(big.Int).Exp(pub.g, big.NewInt(2), pub.n)
	blob = append([]byte(dgkPrivMagic), buildDGKPubBlob(byte(pub.l), uint32(pub.rnd), pub.n, g2, pub.h)[4:]...)
	blob = appendBigInt(blob, priv.p)
	blob = appendBigInt(blob, priv.vp)
	if _, err := UnmarshalDGKPrivateKey(blob); !errors.Is(err, ErrKeyFormat) {
		t.Errorf("gamma of wrong order: want ErrKeyFormat, got %v", err)
	}

	// p from another modulus entirely (prime, right size, coprime to n).
	if _, err := UnmarshalDGKPrivateKey(func() []byte {
		b := append([]byte(dgkPrivMagic), MarshalDGKPublicKey(&pub)[4:]...)
		b = appendBigInt(b, new(big.Int).Sub(priv.p, big.NewInt(2)))
		return appendBigInt(b, priv.vp)
	}()); !errors.Is(err, ErrKeyFormat) {
		t.Errorf("foreign p: want ErrKeyFormat, got %v", err)
	}
}

// FuzzUnmarshalDGKKeys drives both unmarshalers with mutated key
// blobs. Accepted public keys must survive one encryption without
// panicking; everything else must fail with an error, not a crash.
func FuzzUnmarshalDGKKeys(f *testing.F) {
	priv, err := GenerateDGK(448, 16)
	if err != nil {
		f.Fatal(err)
	}
	pub := priv.DGKPublicKey
	f.Add(MarshalDGKPublicKey(&pub))
	f.Add(MarshalDGKPrivateKey(priv))
	f.Add(buildDGKPubBlob(byte(pub.l), 1<<30, pub.n, pub.g, pub.h))
	f.Add(buildDGKPubBlob(0, uint32(pub.rnd), pub.n, pub.g, pub.h))
	f.Add(buildDGKPubBlob(byte(pub.l), uint32(pub.rnd), new(big.Int).Add(pub.n, big.NewInt(1)), pub.g, pub.h))
	f.Add([]byte(dgkPubMagic))
	f.Add([]byte(dgkPrivMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		if k, err := UnmarshalDGKPublicKey(data); err == nil {
			// Bound the work: a fuzz-accepted modulus can be up to
			// dgkMaxIntBytes wide, and exponentiating there is pure
			// stall, not signal.
			if k.Modulus().BitLen() <= 1024 {
				if _, err := k.Encrypt(42); err != nil {
					t.Fatalf("accepted key failed to encrypt: %v", err)
				}
			}
		}
		if k, err := UnmarshalDGKPrivateKey(data); err == nil {
			if k.Modulus().BitLen() <= 1024 {
				c, err := k.Encrypt(42)
				if err != nil {
					t.Fatalf("accepted private key failed to encrypt: %v", err)
				}
				if m, err := k.Decrypt(c); err != nil || m != 42 {
					t.Fatalf("accepted private key round trip: m=%d err=%v", m, err)
				}
			}
		}
	})
}
