package ahe

import (
	"math/big"
	"sync"
	"testing"
	"testing/quick"

	"shuffledp/internal/rng"
)

// Key generation is the expensive part; share small test keys.
var (
	dgkOnce   sync.Once
	dgkKey    *DGKPrivateKey
	dgkKeyErr error

	paiOnce sync.Once
	paiKey  *PaillierPrivateKey
	paiErr  error
)

func testDGK(t *testing.T) *DGKPrivateKey {
	t.Helper()
	dgkOnce.Do(func() { dgkKey, dgkKeyErr = GenerateDGK(768, 32) })
	if dgkKeyErr != nil {
		t.Fatalf("GenerateDGK: %v", dgkKeyErr)
	}
	return dgkKey
}

func testPaillier(t *testing.T) *PaillierPrivateKey {
	t.Helper()
	paiOnce.Do(func() { paiKey, paiErr = GeneratePaillier(512, 32) })
	if paiErr != nil {
		t.Fatalf("GeneratePaillier: %v", paiErr)
	}
	return paiKey
}

// schemes under test, via the common interface.
func testKeys(t *testing.T) []PrivateKey {
	return []PrivateKey{testDGK(t), testPaillier(t)}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	for _, key := range testKeys(t) {
		mask := uint64(1)<<uint(key.PlaintextBits()) - 1
		for _, m := range []uint64{0, 1, 2, 1000, mask, mask - 1} {
			c, err := key.Encrypt(m)
			if err != nil {
				t.Fatalf("%s Encrypt: %v", key.Scheme(), err)
			}
			got, err := key.Decrypt(c)
			if err != nil {
				t.Fatalf("%s Decrypt: %v", key.Scheme(), err)
			}
			if got != m&mask {
				t.Fatalf("%s: roundtrip %d -> %d", key.Scheme(), m, got)
			}
		}
	}
}

func TestHomomorphicAddition(t *testing.T) {
	for _, key := range testKeys(t) {
		mask := uint64(1)<<uint(key.PlaintextBits()) - 1
		cases := [][2]uint64{{1, 2}, {mask, 1}, {mask, mask}, {0, 0}, {123456, 654321}}
		for _, c := range cases {
			ca, err := key.Encrypt(c[0])
			if err != nil {
				t.Fatal(err)
			}
			cb, err := key.Encrypt(c[1])
			if err != nil {
				t.Fatal(err)
			}
			sum, err := key.Decrypt(key.Add(ca, cb))
			if err != nil {
				t.Fatal(err)
			}
			if want := (c[0] + c[1]) & mask; sum != want {
				t.Fatalf("%s: %d + %d = %d, want %d (mod 2^l)",
					key.Scheme(), c[0], c[1], sum, want)
			}
		}
	}
}

func TestAddPlain(t *testing.T) {
	for _, key := range testKeys(t) {
		mask := uint64(1)<<uint(key.PlaintextBits()) - 1
		c, err := key.Encrypt(100)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := key.AddPlain(c, mask) // adds -1 mod 2^l
		if err != nil {
			t.Fatal(err)
		}
		got, err := key.Decrypt(c2)
		if err != nil {
			t.Fatal(err)
		}
		if got != 99 {
			t.Fatalf("%s: 100 + (2^l - 1) = %d, want 99", key.Scheme(), got)
		}
	}
}

func TestRerandomizePreservesPlaintextChangesCiphertext(t *testing.T) {
	for _, key := range testKeys(t) {
		c, err := key.Encrypt(42)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := key.Rerandomize(c)
		if err != nil {
			t.Fatal(err)
		}
		if c.Value().Cmp(c2.Value()) == 0 {
			t.Fatalf("%s: rerandomize did not change the ciphertext", key.Scheme())
		}
		got, err := key.Decrypt(c2)
		if err != nil {
			t.Fatal(err)
		}
		if got != 42 {
			t.Fatalf("%s: rerandomize changed plaintext to %d", key.Scheme(), got)
		}
	}
}

func TestProbabilisticEncryption(t *testing.T) {
	for _, key := range testKeys(t) {
		a, err := key.Encrypt(7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := key.Encrypt(7)
		if err != nil {
			t.Fatal(err)
		}
		if a.Value().Cmp(b.Value()) == 0 {
			t.Fatalf("%s: two encryptions of the same value are equal", key.Scheme())
		}
	}
}

func TestSerializeDeserialize(t *testing.T) {
	for _, key := range testKeys(t) {
		c, err := key.Encrypt(31337)
		if err != nil {
			t.Fatal(err)
		}
		data := key.Serialize(c)
		if len(data) != key.CiphertextBytes() {
			t.Fatalf("%s: serialized to %d bytes, want %d",
				key.Scheme(), len(data), key.CiphertextBytes())
		}
		c2, err := key.Deserialize(data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := key.Decrypt(c2)
		if err != nil {
			t.Fatal(err)
		}
		if got != 31337 {
			t.Fatalf("%s: deserialize roundtrip gave %d", key.Scheme(), got)
		}
	}
}

func TestDeserializeRejectsBadInput(t *testing.T) {
	for _, key := range testKeys(t) {
		if _, err := key.Deserialize([]byte{1, 2, 3}); err == nil {
			t.Fatalf("%s: accepted short input", key.Scheme())
		}
		// All-0xff of the right length exceeds the modulus.
		bad := make([]byte, key.CiphertextBytes())
		for i := range bad {
			bad[i] = 0xff
		}
		if _, err := key.Deserialize(bad); err == nil {
			t.Fatalf("%s: accepted out-of-range ciphertext", key.Scheme())
		}
	}
}

// Regression: Deserialize used to accept the all-zero blob. Zero is
// not a unit, is never produced by Encrypt, and is an absorbing
// element under Add — one planted by a malicious client silently
// destroys the whole shuffled accumulator. It must be refused at the
// door like any other out-of-range value, for both schemes.
func TestDeserializeRejectsZeroCiphertext(t *testing.T) {
	for _, key := range testKeys(t) {
		zero := make([]byte, key.CiphertextBytes())
		if _, err := key.Deserialize(zero); err == nil {
			t.Fatalf("%s: accepted the zero ciphertext", key.Scheme())
		}
		// A non-zero non-unit (a multiple of a secret factor) is just as
		// invalid; for DGK check the shared factor is rejected too.
		if dgk, ok := key.(*DGKPrivateKey); ok {
			pBlob := serializeFixed(dgk.p, dgk.CiphertextBytes())
			if _, err := dgk.Deserialize(pBlob); err == nil {
				t.Fatal("DGK: accepted a non-unit ciphertext")
			}
		}
	}
}

// Regression for the dgkPrime short-modulus bug: u*vp*fp + 1 can land
// a bit short of the requested prime size, and a run of unlucky draws
// used to yield keys whose modulus was several bits below the security
// target. Every generated key must now have a full-width modulus.
func TestGenerateDGKModulusWidth(t *testing.T) {
	const keyBits = 448
	for i := 0; i < 5; i++ {
		key, err := GenerateDGK(keyBits, 16)
		if err != nil {
			t.Fatal(err)
		}
		if got := key.Modulus().BitLen(); got < keyBits-1 {
			t.Fatalf("keygen %d: modulus is %d bits, want >= %d", i, got, keyBits-1)
		}
	}
}

// Property: homomorphic sum of a random share vector decrypts to the
// plaintext sum mod 2^l — the exact operation EOS performs.
func TestQuickShareAccumulation(t *testing.T) {
	key := testDGK(t)
	mask := uint64(1)<<uint(key.PlaintextBits()) - 1
	r := rng.New(7)
	f := func(k uint8) bool {
		count := 2 + int(k%6)
		acc, err := key.Encrypt(0)
		if err != nil {
			return false
		}
		var want uint64
		for i := 0; i < count; i++ {
			s := r.Uint64() & mask
			want = (want + s) & mask
			c, err := key.Encrypt(s)
			if err != nil {
				return false
			}
			acc = key.Add(acc, c)
		}
		got, err := key.Decrypt(acc)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDGKStructure(t *testing.T) {
	key := testDGK(t)
	// g must have order u*vp*vq: g^(u*vp*vq) = 1 mod n but no proper
	// divisor exponent gives 1 for the u component.
	n := key.Modulus()
	u := new(big.Int).Lsh(big.NewInt(1), uint(key.PlaintextBits()))
	// gamma has order exactly 2^l mod p: gamma^(2^l) = 1, gamma^(2^(l-1)) != 1.
	full := new(big.Int).Exp(key.gamma, u, key.p)
	if full.Cmp(big.NewInt(1)) != 0 {
		t.Fatal("gamma^2^l != 1 mod p")
	}
	half := new(big.Int).Exp(key.gamma, new(big.Int).Rsh(u, 1), key.p)
	if half.Cmp(big.NewInt(1)) == 0 {
		t.Fatal("gamma has order < 2^l")
	}
	if key.CiphertextBytes() != (n.BitLen()+7)/8 {
		t.Fatal("ciphertext size mismatch")
	}
}

func TestGenerateDGKValidation(t *testing.T) {
	if _, err := GenerateDGK(768, 0); err == nil {
		t.Error("accepted plaintext bits 0")
	}
	if _, err := GenerateDGK(768, 65); err == nil {
		t.Error("accepted plaintext bits 65")
	}
	if _, err := GenerateDGK(128, 32); err == nil {
		t.Error("accepted tiny key")
	}
}

func TestGeneratePaillierValidation(t *testing.T) {
	if _, err := GeneratePaillier(512, 0); err == nil {
		t.Error("accepted plaintext bits 0")
	}
	if _, err := GeneratePaillier(100, 32); err == nil {
		t.Error("accepted tiny key")
	}
}

func TestDGK64BitPlaintext(t *testing.T) {
	if testing.Short() {
		t.Skip("64-bit plaintext key generation is slow")
	}
	key, err := GenerateDGK(768, 64)
	if err != nil {
		t.Fatal(err)
	}
	m := uint64(0xdeadbeefcafef00d)
	c, err := key.Encrypt(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := key.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("roundtrip %x -> %x", m, got)
	}
	// Wrap-around: m + m must reduce mod 2^64.
	c2, err := key.Encrypt(m)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := key.Decrypt(key.Add(c, c2))
	if err != nil {
		t.Fatal(err)
	}
	if sum != m+m { // uint64 addition wraps exactly like Z_{2^64}
		t.Fatalf("wrap sum %x, want %x", sum, m+m)
	}
}
