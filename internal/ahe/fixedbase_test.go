package ahe

import (
	"crypto/rand"
	"errors"
	"math/big"
	"sync"
	"testing"
	"testing/quick"

	"shuffledp/internal/rng"
)

// TestFixedBaseExpMatchesBigExp holds the windowed kernel bit-identical
// to math/big generic exponentiation across exponent shapes: zero,
// single-window, zero-byte-riddled, and full-width.
func TestFixedBaseExpMatchesBigExp(t *testing.T) {
	p, err := rand.Prime(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	q, err := rand.Prime(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	mod := new(big.Int).Mul(p, q)
	base, err := rand.Int(rand.Reader, mod)
	if err != nil {
		t.Fatal(err)
	}
	const maxBits = 400
	tab := newFBTable(base, mod, maxBits)

	exps := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(255),
		big.NewInt(256),
		new(big.Int).Lsh(big.NewInt(1), maxBits-1),
		new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), maxBits), big.NewInt(1)),
		new(big.Int).Lsh(big.NewInt(0xa5), 128), // isolated middle window
	}
	for i := 0; i < 40; i++ {
		e, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), maxBits))
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	for _, e := range exps {
		got := tab.Exp(e)
		if got == nil {
			t.Fatalf("table refused in-range exponent of %d bits", e.BitLen())
		}
		want := new(big.Int).Exp(base, e, mod)
		if got.Cmp(want) != 0 {
			t.Fatalf("fixed-base mismatch at e=%v", e)
		}
	}
	// Out-of-range exponents are refused (callers fall back), never
	// silently truncated.
	if tab.Exp(new(big.Int).Lsh(big.NewInt(1), maxBits)) != nil {
		t.Fatal("table accepted an exponent wider than maxBits")
	}
	if tab.Exp(big.NewInt(-1)) != nil {
		t.Fatal("table accepted a negative exponent")
	}
}

// conformance key shapes: the PEOS production shape (l=64) plus an
// off-width plaintext space exercising the partial final digit of the
// windowed decryption.
var (
	confOnce sync.Once
	confKeys []*DGKPrivateKey
	confErr  error
)

func conformanceKeys(t *testing.T) []*DGKPrivateKey {
	t.Helper()
	confOnce.Do(func() {
		for _, shape := range []struct{ keyBits, l int }{{512, 64}, {448, 13}} {
			k, err := GenerateDGK(shape.keyBits, shape.l)
			if err != nil {
				confErr = err
				return
			}
			confKeys = append(confKeys, k)
		}
	})
	if confErr != nil {
		t.Fatalf("GenerateDGK: %v", confErr)
	}
	return confKeys
}

// TestFastPathConformance is the named CI gate: the fixed-base /
// windowed fast path must be bit-identical to the retained naive
// reference — same decryptions for ciphertexts produced by either
// path, through homomorphic chains, rerandomization, and the
// randomizer pool, across random keys and plaintexts.
func TestFastPathConformance(t *testing.T) {
	for _, key := range conformanceKeys(t) {
		mask := uint64(1)<<uint(key.PlaintextBits()) - 1
		if key.PlaintextBits() == 64 {
			mask = ^uint64(0)
		}
		r := rng.New(0xfa57)
		f := func(seed uint16) bool {
			m1 := r.Uint64() & mask
			m2 := r.Uint64() & mask

			// Fast-encrypted ciphertext...
			key.SetFastPath(true)
			c1, err := key.Encrypt(m1)
			if err != nil {
				return false
			}
			// ...and a naive-encrypted one.
			key.SetFastPath(false)
			c2, err := key.Encrypt(m2)
			if err != nil {
				return false
			}
			key.SetFastPath(true)

			// A homomorphic chain touching every public-key op.
			sum := key.Add(c1, c2)
			sum, err = key.AddPlain(sum, uint64(seed))
			if err != nil {
				return false
			}
			sum, err = key.Rerandomize(sum)
			if err != nil {
				return false
			}
			want := (m1 + m2 + uint64(seed)) & mask

			// Both decryption paths agree on every ciphertext.
			for _, c := range []*Ciphertext{c1, c2, sum} {
				fast, ok := key.decryptFast(c)
				if !ok {
					return false
				}
				naive, err := key.decryptNaive(c)
				if err != nil || fast != naive {
					return false
				}
			}
			got, err := key.Decrypt(sum)
			return err == nil && got == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("l=%d: %v", key.PlaintextBits(), err)
		}
	}
}

// TestFastPathConformanceJunkInput: a deserialized value outside
// gamma's subgroup is not fast-decodable; Decrypt must fall back and
// return exactly what the naive reference returns.
func TestFastPathConformanceJunkInput(t *testing.T) {
	key := conformanceKeys(t)[0]
	for i := 0; i < 10; i++ {
		raw := make([]byte, key.CiphertextBytes())
		if _, err := rand.Read(raw); err != nil {
			t.Fatal(err)
		}
		raw[0] = 0 // keep it under the modulus
		c, err := key.Deserialize(raw)
		if err != nil {
			continue // non-unit draws are rejected at the door
		}
		fast, err := key.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := key.decryptNaive(c)
		if err != nil {
			t.Fatal(err)
		}
		if fast != naive {
			t.Fatalf("junk input diverged: fast %x naive %x", fast, naive)
		}
	}
}

// TestRandomizerPool exercises the pooled encrypt path: concurrent
// encrypts draining the pool while the refiller pushes, reference-
// counted start/stop, and idempotent stop — all under -race in CI.
func TestRandomizerPool(t *testing.T) {
	key := conformanceKeys(t)[0]
	stopA := key.StartRandomizerPool(16)
	stopB := asPooler(key).StartRandomizerPool(16) // join via the interface
	defer stopB()

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				m := uint64(w*100 + i)
				c, err := key.Encrypt(m)
				if err != nil {
					errs[w] = err
					return
				}
				got, err := key.Decrypt(c)
				if err != nil {
					errs[w] = err
					return
				}
				if got != m {
					errs[w] = errRoundTrip
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	stopA()
	stopA() // idempotent
	// The pool is refcounted: stopB's pool is still live, encrypts
	// still work, and the final stop tears it down.
	if _, err := key.Encrypt(7); err != nil {
		t.Fatal(err)
	}
	stopB()
	if _, err := key.Encrypt(7); err != nil { // post-stop: inline path
		t.Fatal(err)
	}
}

// asPooler converts a private key to the Pooler interface the call
// sites use, proving the promoted method satisfies it.
func asPooler(k *DGKPrivateKey) Pooler { return k }

var errRoundTrip = errors.New("ahe: pooled round trip mismatch")
