package ahe

// Key serialization for the role-separated PEOS deployment
// (internal/cluster, cmd/shuffled): the analyzer generates the DGK key
// pair and hands the public half to clients and shufflers as a file or
// wire blob, and persists the private half next to its durable state
// so a recovered analyzer keeps decrypting the cluster's ciphertexts.
//
// Layout (all lengths big-endian uint32, all values big.Int bytes):
//
//	"DGKP" | version | l u8 | rnd u32 | n | g | h            public key
//	"DGKS" | version | <public key body> | p | vp            private key
//
// The private-key blob contains the full secret factorization — treat
// it like any private key file (the cmd layer writes it 0600).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
)

const (
	dgkPubMagic  = "DGKP"
	dgkPrivMagic = "DGKS"
	// dgkMarshalVersion is bumped when the layout changes; readers
	// refuse newer versions instead of misparsing them.
	dgkMarshalVersion = 1
	// dgkMaxIntBytes bounds one serialized big.Int (a 64k-bit modulus is
	// far past any sane key size) so a corrupt length prefix cannot
	// force a huge allocation.
	dgkMaxIntBytes = 1 << 13
	// dgkMaxRndBits bounds the randomizer bit length a blob may claim.
	// The scheme generates 2.5t = 400; a corrupt value in the billions
	// would otherwise make every Encrypt allocate (and exponentiate
	// over) a multi-hundred-megabyte exponent.
	dgkMaxRndBits = 1 << 13
)

// ErrKeyFormat is returned when a key blob is malformed, truncated, or
// written by a newer serialization version.
var ErrKeyFormat = errors.New("ahe: malformed DGK key blob")

func appendBigInt(buf []byte, v *big.Int) []byte {
	b := v.Bytes()
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

type keyReader struct {
	data []byte
	err  error
}

func (r *keyReader) take(n int) []byte {
	if r.err != nil || len(r.data) < n {
		r.err = ErrKeyFormat
		return nil
	}
	out := r.data[:n]
	r.data = r.data[n:]
	return out
}

func (r *keyReader) bigInt() *big.Int {
	lb := r.take(4)
	if r.err != nil {
		return nil
	}
	n := binary.BigEndian.Uint32(lb)
	if n > dgkMaxIntBytes {
		r.err = ErrKeyFormat
		return nil
	}
	b := r.take(int(n))
	if r.err != nil {
		return nil
	}
	return new(big.Int).SetBytes(b)
}

// MarshalDGKPublicKey serializes the public half of a DGK key.
func MarshalDGKPublicKey(pub *DGKPublicKey) []byte {
	buf := append([]byte(nil), dgkPubMagic...)
	buf = append(buf, dgkMarshalVersion, byte(pub.l))
	buf = binary.BigEndian.AppendUint32(buf, uint32(pub.rnd))
	buf = appendBigInt(buf, pub.n)
	buf = appendBigInt(buf, pub.g)
	return appendBigInt(buf, pub.h)
}

// unmarshalDGKPublicBody parses everything after the magic.
func unmarshalDGKPublicBody(r *keyReader) (*DGKPublicKey, error) {
	hdr := r.take(2)
	if r.err != nil {
		return nil, r.err
	}
	if hdr[0] != dgkMarshalVersion {
		return nil, fmt.Errorf("%w: version %d (this build reads %d)", ErrKeyFormat, hdr[0], dgkMarshalVersion)
	}
	l := int(hdr[1])
	rndb := r.take(4)
	if r.err != nil {
		return nil, r.err
	}
	rnd := int(binary.BigEndian.Uint32(rndb))
	n, g, h := r.bigInt(), r.bigInt(), r.bigInt()
	if r.err != nil {
		return nil, r.err
	}
	if l < 1 || l > 64 || rnd < 1 || n.Sign() <= 0 || g.Sign() <= 0 || h.Sign() <= 0 {
		return nil, ErrKeyFormat
	}
	if rnd > dgkMaxRndBits {
		return nil, fmt.Errorf("%w: absurd randomizer length %d bits", ErrKeyFormat, rnd)
	}
	// n = pq is odd and must at least hold the plaintext and one
	// subgroup per factor; a "valid-looking" even or tiny n makes the
	// homomorphic ops silently meaningless.
	if n.Bit(0) == 0 || n.BitLen() < 2*(l+dgkSubgroupBits) {
		return nil, fmt.Errorf("%w: modulus is even or too small for the subgroup structure", ErrKeyFormat)
	}
	if g.Cmp(n) >= 0 || h.Cmp(n) >= 0 {
		return nil, fmt.Errorf("%w: group elements outside the modulus", ErrKeyFormat)
	}
	// g = 1 or h = 1 parses fine but loses the plaintext (every
	// "ciphertext" of such a key is a power of the other generator).
	one := big.NewInt(1)
	if g.Cmp(one) == 0 || h.Cmp(one) == 0 {
		return nil, fmt.Errorf("%w: degenerate generator", ErrKeyFormat)
	}
	return &DGKPublicKey{n: n, g: g, h: h, l: l, rnd: rnd, fb: &dgkFast{}}, nil
}

// UnmarshalDGKPublicKey reverses MarshalDGKPublicKey. Malformed input
// is refused with an error wrapping ErrKeyFormat, never a panic.
func UnmarshalDGKPublicKey(data []byte) (*DGKPublicKey, error) {
	r := &keyReader{data: data}
	if string(r.take(4)) != dgkPubMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrKeyFormat)
	}
	pub, err := unmarshalDGKPublicBody(r)
	if err != nil {
		return nil, err
	}
	if len(r.data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrKeyFormat, len(r.data))
	}
	return pub, nil
}

// MarshalDGKPrivateKey serializes a full DGK key pair (the secret
// factors included — handle the blob like a private key file).
func MarshalDGKPrivateKey(priv *DGKPrivateKey) []byte {
	buf := append([]byte(nil), dgkPrivMagic...)
	buf = append(buf, MarshalDGKPublicKey(&priv.DGKPublicKey)[4:]...)
	buf = appendBigInt(buf, priv.p)
	return appendBigInt(buf, priv.vp)
}

// UnmarshalDGKPrivateKey reverses MarshalDGKPrivateKey, rebuilding the
// decryption accelerators so the restored key decrypts bit-identically
// to the original.
func UnmarshalDGKPrivateKey(data []byte) (*DGKPrivateKey, error) {
	r := &keyReader{data: data}
	if string(r.take(4)) != dgkPrivMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrKeyFormat)
	}
	pub, err := unmarshalDGKPublicBody(r)
	if err != nil {
		return nil, err
	}
	p, vp := r.bigInt(), r.bigInt()
	if r.err != nil {
		return nil, r.err
	}
	if len(r.data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrKeyFormat, len(r.data))
	}
	one := big.NewInt(1)
	if p.Cmp(one) <= 0 || vp.Cmp(one) <= 0 || p.Cmp(pub.n) >= 0 {
		return nil, ErrKeyFormat
	}
	// p must divide n; a blob mixing halves of two keys decrypts
	// garbage, so refuse it here.
	if new(big.Int).Mod(pub.n, p).Sign() != 0 {
		return nil, fmt.Errorf("%w: p does not divide n", ErrKeyFormat)
	}
	// vp must divide p-1 — it is the order of h's component mod p, and
	// the decryption exponent. A corrupt vp would not crash anything;
	// it would decrypt every ciphertext to confident garbage.
	pm1 := new(big.Int).Sub(p, one)
	if new(big.Int).Mod(pm1, vp).Sign() != 0 {
		return nil, fmt.Errorf("%w: vp does not divide p-1", ErrKeyFormat)
	}
	priv, err := finishDGKPrivateKey(*pub, p, vp)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrKeyFormat, err)
	}
	// gamma = g^vp mod p must have exact order 2^l for Pohlig–Hellman
	// digit recovery to be well-defined: gamma^(2^l) = 1 and
	// gamma^(2^(l-1)) != 1. This is the cheapest complete check that
	// the (n, g, p, vp) quadruple is one consistent key.
	u := new(big.Int).Lsh(one, uint(pub.l))
	if new(big.Int).Exp(priv.gamma, u, p).Cmp(one) != 0 ||
		new(big.Int).Exp(priv.gamma, new(big.Int).Rsh(u, 1), p).Cmp(one) == 0 {
		return nil, fmt.Errorf("%w: gamma does not have order 2^l", ErrKeyFormat)
	}
	return priv, nil
}
