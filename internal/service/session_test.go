package service_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/netproto"
	"shuffledp/internal/service"
	"shuffledp/internal/store"
	"shuffledp/internal/transport"
)

// runMixedClients pushes pre-randomized reports through a service with
// one connection per entry of batchSizes: entry 0 means a legacy
// per-report client, a positive entry means a session client with that
// batch size. Report i goes to client i%len(batchSizes). Returns the
// drained snapshot.
func runMixedClients(t *testing.T, fo ldp.FrequencyOracle, reports []ldp.Report, batchSizes []int, cfg service.Config) service.Snapshot {
	t.Helper()
	key, err := ecies.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	cfg.FO = fo
	cfg.Key = key
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	clients := len(batchSizes)
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		clientSide, serverSide := net.Pipe()
		if err := svc.Ingest(serverSide); err != nil {
			t.Fatal(err)
		}
		var cl *service.Client
		if batchSizes[c] > 0 {
			cl, err = service.NewSessionClient(fo, key.Public(), nil, clientSide, batchSizes[c])
		} else {
			cl, err = service.NewClient(fo, key.Public(), nil, clientSide)
		}
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, cl *service.Client) {
			defer wg.Done()
			defer clientSide.Close()
			for i := c; i < len(reports); i += clients {
				if err := cl.SendReport(reports[i]); err != nil {
					errc <- fmt.Errorf("client %d: %w", c, err)
					return
				}
			}
			// Close flushes the residual partial batch before EOF.
			errc <- cl.Close()
		}(c, cl)
	}

	snap, err := svc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
	return snap
}

// TestRaceSessionBatchedBitIdentical is the conformance test of the
// session wire protocol (run it under -race): concurrent session
// clients with wildly different batch sizes — including batch 1, so
// single-report frames and ragged final flushes are all exercised —
// must produce a histogram bit-identical to both the sequential
// netproto reference (the legacy wire path) and a direct in-process
// aggregation of the same report multiset. Batching, the decrypt pool
// split, and buffer recycling may change how bytes move, never what
// the estimates are.
func TestRaceSessionBatchedBitIdentical(t *testing.T) {
	const (
		d    = 64
		seed = 47
	)
	n := ldp.ShardSize + 1357
	values := make([]int, n)
	for i := range values {
		values[i] = (i * i) % d
	}
	fo := ldp.NewSOLH(d, 16, 3)

	want, err := netproto.RunPipeline(fo, values, seed)
	if err != nil {
		t.Fatal(err)
	}
	reports := ldp.RandomizeParallel(fo, values, seed, 0)
	seqAgg := fo.NewAggregator()
	for _, rep := range reports {
		seqAgg.Add(rep)
	}
	seq := seqAgg.Estimates()
	for v := range want {
		if want[v] != seq[v] {
			t.Fatalf("RunPipeline estimate[%d] = %v, direct sequential aggregation = %v", v, want[v], seq[v])
		}
	}

	snap := runMixedClients(t, fo, reports, []int{1, 3, 16, 64, 256, 500, 7, 32, 128, 2}, service.Config{
		BatchSize:      128,
		ShuffleSeed:    seed + 1,
		DecryptWorkers: 3,
	})
	if snap.Reports != n {
		t.Fatalf("aggregated %d reports, want %d", snap.Reports, n)
	}
	if snap.Kicked != 0 {
		t.Fatalf("conforming session clients were kicked: %d", snap.Kicked)
	}
	for v := range want {
		if snap.Estimates[v] != want[v] {
			t.Fatalf("estimate[%d] = %v, legacy pipeline = %v (not bit-identical)", v, snap.Estimates[v], want[v])
		}
	}
}

// Session and legacy clients must coexist on one service — the first
// frame of each connection picks its protocol independently — and the
// merged histogram must still be bit-identical to a direct aggregation
// of the report multiset. Run under -race.
func TestRaceSessionLegacyMixedBitIdentical(t *testing.T) {
	const d, seed = 32, 53
	n := 4096 + 311
	values := make([]int, n)
	for i := range values {
		values[i] = (i * 5) % d
	}
	fo := ldp.NewSOLH(d, 8, 2)
	reports := ldp.RandomizeParallel(fo, values, seed, 0)
	agg := fo.NewAggregator()
	for _, rep := range reports {
		agg.Add(rep)
	}
	want := agg.Estimates()

	snap := runMixedClients(t, fo, reports, []int{0, 8, 0, 64, 1, 0, 256, 33}, service.Config{
		BatchSize:   64,
		ShuffleSeed: seed + 1,
	})
	if snap.Reports != n {
		t.Fatalf("aggregated %d reports, want %d", snap.Reports, n)
	}
	for v := range want {
		if snap.Estimates[v] != want[v] {
			t.Fatalf("estimate[%d] = %v, direct aggregation = %v (not bit-identical)", v, snap.Estimates[v], want[v])
		}
	}
}

// flakyWriter records whole successful writes and fails the write at
// index failAt, accepting only `partial` bytes of it first — the
// short-write-plus-error shape a real connection dies with.
type flakyWriter struct {
	calls   [][]byte
	failAt  int
	partial int
}

var errFlaky = errors.New("flaky: connection reset by peer")

func (w *flakyWriter) Write(p []byte) (int, error) {
	if len(w.calls) >= w.failAt {
		n := w.partial
		if n > len(p) {
			n = len(p)
		}
		return n, errFlaky
	}
	w.calls = append(w.calls, append([]byte(nil), p...))
	return len(p), nil
}

// parseFrames splits one recorded Write into its tagged frames; the
// write must contain only whole frames — a trailing fragment fails.
func parseFrames(t *testing.T, call []byte) (tags []uint32, payloads [][]byte) {
	t.Helper()
	r := bytes.NewReader(call)
	for r.Len() > 0 {
		tag, payload, err := transport.ReadTaggedFrame(r)
		if err != nil {
			t.Fatalf("recorded write is not whole frames: %v (%d bytes left)", err, r.Len())
		}
		tags = append(tags, tag)
		payloads = append(payloads, payload)
	}
	return tags, payloads
}

// The regression the all-or-nothing rewrite fixes: a write error used
// to leave half a frame buffered, and the next send would flush the
// remainder onto the stream — frame-shifting every byte after it. Now
// a failed write poisons the client: the same error latches on every
// later Send/Flush/Close, and the bytes that did reach the connection
// are exclusively whole frames.
func TestClientWriteErrorPoisons(t *testing.T) {
	fo := ldp.NewSOLH(16, 4, 2)
	key, err := ecies.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	reports := ldp.RandomizeParallel(fo, []int{1, 2, 3, 4, 5, 6}, 9, 0)

	t.Run("legacy", func(t *testing.T) {
		w := &flakyWriter{failAt: 3, partial: 5}
		cl, err := service.NewClient(fo, key.Public(), nil, w)
		if err != nil {
			t.Fatal(err)
		}
		var sendErr error
		sent := 0
		for _, rep := range reports {
			if sendErr = cl.SendReport(rep); sendErr != nil {
				break
			}
			sent++
		}
		if sendErr == nil || !errors.Is(sendErr, errFlaky) {
			t.Fatalf("write failure not surfaced: sent %d, err %v", sent, sendErr)
		}
		if sent != 3 {
			t.Fatalf("%d sends succeeded before the failing write, want 3", sent)
		}
		// Poisoned: every later call returns the same latched error and
		// writes nothing more.
		if err := cl.SendReport(reports[0]); !errors.Is(err, errFlaky) {
			t.Fatalf("send after write failure: %v, want the latched error", err)
		}
		if err := cl.Flush(); !errors.Is(err, errFlaky) {
			t.Fatalf("flush after write failure: %v, want the latched error", err)
		}
		if err := cl.Close(); !errors.Is(err, errFlaky) {
			t.Fatalf("close after write failure: %v, want the latched error", err)
		}
		if len(w.calls) != 3 {
			t.Fatalf("connection saw %d writes after poisoning, want 3", len(w.calls))
		}
		codec, err := service.NewCodec(fo)
		if err != nil {
			t.Fatal(err)
		}
		for i, call := range w.calls {
			tags, payloads := parseFrames(t, call)
			if len(tags) != 1 {
				t.Fatalf("write %d carries %d frames, want exactly 1", i, len(tags))
			}
			if len(payloads[0]) != codec.Size()+ecies.Overhead {
				t.Fatalf("write %d payload is %d bytes, want one ECIES report (%d)", i, len(payloads[0]), codec.Size()+ecies.Overhead)
			}
		}
	})

	t.Run("session", func(t *testing.T) {
		w := &flakyWriter{failAt: 0, partial: 10}
		cl, err := service.NewSessionClient(fo, key.Public(), nil, w, 2)
		if err != nil {
			t.Fatal(err)
		}
		// First report buffers; the second fills the batch and triggers
		// the first write — hello plus batch — which fails mid-frame.
		if err := cl.SendReport(reports[0]); err != nil {
			t.Fatal(err)
		}
		err = cl.SendReport(reports[1])
		if err == nil || !errors.Is(err, errFlaky) {
			t.Fatalf("write failure not surfaced: %v", err)
		}
		if err := cl.SendReport(reports[2]); !errors.Is(err, errFlaky) {
			t.Fatalf("send after write failure: %v, want the latched error", err)
		}
		if err := cl.Flush(); !errors.Is(err, errFlaky) {
			t.Fatalf("flush after write failure: %v, want the latched error", err)
		}
		if len(w.calls) != 0 {
			t.Fatalf("poisoned session client completed %d writes, want 0", len(w.calls))
		}
	})
}

// The session handshake must never travel as its own fragment: the
// hello frame rides in the same single Write as the first batch, and
// every write holds only whole frames.
func TestSessionClientFrameLayout(t *testing.T) {
	fo := ldp.NewSOLH(16, 4, 2)
	key, err := ecies.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	codec, err := service.NewCodec(fo)
	if err != nil {
		t.Fatal(err)
	}
	w := &flakyWriter{failAt: 1 << 30}
	cl, err := service.NewSessionClient(fo, key.Public(), nil, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	reports := ldp.RandomizeParallel(fo, []int{0, 1, 2, 3, 4, 5, 6}, 21, 0)
	for _, rep := range reports {
		if err := cl.SendReport(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	// 7 reports, batch 3: two full batches plus a flushed ragged one.
	if len(w.calls) != 3 {
		t.Fatalf("connection saw %d writes, want 3", len(w.calls))
	}
	for i, call := range w.calls {
		tags, payloads := parseFrames(t, call)
		wantFrames, batch := 1, 3
		if i == 0 {
			wantFrames = 2 // hello + first batch, one write
		}
		if i == 2 {
			batch = 1
		}
		if len(tags) != wantFrames {
			t.Fatalf("write %d carries %d frames, want %d", i, len(tags), wantFrames)
		}
		if i == 0 {
			if tags[0] != service.SessionHelloTag {
				t.Fatalf("first frame tag %#x, want the session hello tag", tags[0])
			}
			if len(payloads[0]) != ecies.HelloSize {
				t.Fatalf("hello payload is %d bytes, want %d", len(payloads[0]), ecies.HelloSize)
			}
			tags, payloads = tags[1:], payloads[1:]
		}
		if want := batch*codec.Size() + ecies.SessionOverhead; len(payloads[0]) != want {
			t.Fatalf("write %d batch frame is %d bytes, want %d", i, len(payloads[0]), want)
		}
		if tags[0] != service.EpochCurrent {
			t.Fatalf("write %d batch frame tag %#x, want EpochCurrent", i, tags[0])
		}
	}
}

// waitKicked polls until the service has kicked n connections.
func waitKicked(t *testing.T, svc *service.Service, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for svc.Snapshot().Kicked < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d kicked connections (have %d)", n, svc.Snapshot().Kicked)
		}
		time.Sleep(time.Millisecond)
	}
}

// sendLegacy pushes reports through one legacy connection and closes it.
func sendLegacy(t *testing.T, svc *service.Service, fo ldp.FrequencyOracle, key *ecies.PrivateKey, reports []ldp.Report) {
	t.Helper()
	clientSide, serverSide := net.Pipe()
	if err := svc.Ingest(serverSide); err != nil {
		t.Fatal(err)
	}
	cl, err := service.NewClient(fo, key.Public(), nil, clientSide)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if err := cl.SendReport(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
}

// A frame whose length prefix exceeds Config.MaxFrame must drop that
// connection — counted in Snapshot.Kicked, before any payload byte is
// read — while the service and every other connection carry on.
func TestServiceKicksOversizedFrame(t *testing.T) {
	fo := ldp.NewSOLH(16, 4, 2)
	key, err := ecies.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{FO: fo, Key: key, MaxFrame: 1024, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	attacker, serverSide := net.Pipe()
	defer attacker.Close()
	if err := svc.Ingest(serverSide); err != nil {
		t.Fatal(err)
	}
	// The reader rejects on the length prefix alone and closes the
	// connection, so this blocking pipe write ends in an error — which
	// is the expected outcome, not a test failure.
	go transport.WriteTaggedFrame(attacker, 7, make([]byte, 4096))
	waitKicked(t, svc, 1)

	// The rest of the service is unharmed: a conforming client on a new
	// connection still streams.
	reports := ldp.RandomizeParallel(fo, []int{1, 2, 3}, 11, 0)
	sendLegacy(t, svc, fo, key, reports)
	snap, err := svc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Reports != 3 || snap.Kicked != 1 {
		t.Fatalf("want 3 reports and 1 kick, got %+v", snap)
	}
}

// Malformed session hellos — truncated, wrong version, not a curve
// point — kick only the offending connection. The service keeps
// serving, and the kicks are counted.
func TestSessionHandshakeViolationsKick(t *testing.T) {
	fo := ldp.NewSOLH(16, 4, 2)
	key, err := ecies.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{FO: fo, Key: key, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	truncated := make([]byte, 10)
	truncated[0] = ecies.SessionVersion
	wrongVersion := make([]byte, ecies.HelloSize)
	wrongVersion[0] = 99
	badPoint := make([]byte, ecies.HelloSize)
	badPoint[0] = ecies.SessionVersion // version ok, point bytes all zero

	for i, hello := range [][]byte{truncated, wrongVersion, badPoint} {
		clientSide, serverSide := net.Pipe()
		if err := svc.Ingest(serverSide); err != nil {
			t.Fatal(err)
		}
		if err := transport.WriteTaggedFrame(clientSide, service.SessionHelloTag, hello); err != nil {
			t.Fatalf("hello %d: %v", i, err)
		}
		waitKicked(t, svc, int64(i+1))
		clientSide.Close()
	}

	reports := ldp.RandomizeParallel(fo, []int{1, 2}, 13, 0)
	sendLegacy(t, svc, fo, key, reports)
	snap, err := svc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Reports != 2 || snap.Kicked != 3 {
		t.Fatalf("want 2 reports and 3 kicks, got %+v", snap)
	}
}

// sessionConn hand-rolls the client side of a session — hello frame
// written, ecies.Session ready — so tests can put precisely crafted
// frames on the wire.
func sessionConn(t *testing.T, svc *service.Service, key *ecies.PrivateKey) (net.Conn, *ecies.Session) {
	t.Helper()
	clientSide, serverSide := net.Pipe()
	if err := svc.Ingest(serverSide); err != nil {
		t.Fatal(err)
	}
	sess, hello, err := ecies.NewClientSession(key.Public())
	if err != nil {
		t.Fatal(err)
	}
	if err := transport.WriteTaggedFrame(clientSide, service.SessionHelloTag, hello); err != nil {
		t.Fatal(err)
	}
	return clientSide, sess
}

// Replayed, tampered, and misaligned session frames kick the
// connection; reports accepted before the violation stand, nothing
// after it lands, and the service survives to drain cleanly.
func TestSessionFrameViolationsKick(t *testing.T) {
	fo := ldp.NewSOLH(16, 4, 2)
	key, err := ecies.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	codec, err := service.NewCodec(fo)
	if err != nil {
		t.Fatal(err)
	}
	reports := ldp.RandomizeParallel(fo, []int{3, 5}, 17, 0)
	var batch []byte
	for _, rep := range reports {
		if batch, err = codec.AppendMarshal(batch, rep); err != nil {
			t.Fatal(err)
		}
	}
	newSvc := func() *service.Service {
		svc, err := service.New(service.Config{FO: fo, Key: key, BatchSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}
	drain := func(svc *service.Service, wantReports int) {
		t.Helper()
		snap, err := svc.Drain()
		if err != nil {
			t.Fatalf("violation escalated past the connection: %v", err)
		}
		if snap.Reports != wantReports || snap.Kicked != 1 {
			t.Fatalf("want %d reports and 1 kick, got %+v", wantReports, snap)
		}
	}

	t.Run("replay", func(t *testing.T) {
		svc := newSvc()
		defer svc.Close()
		conn, sess := sessionConn(t, svc, key)
		defer conn.Close()
		frame, err := sess.Seal(nil, batch)
		if err != nil {
			t.Fatal(err)
		}
		if err := transport.WriteTaggedFrame(conn, service.EpochCurrent, frame); err != nil {
			t.Fatal(err)
		}
		waitReceived(t, svc, 2)
		// The identical bytes again: same counter, so the server must
		// refuse and kick, never double-count.
		if err := transport.WriteTaggedFrame(conn, service.EpochCurrent, frame); err != nil {
			t.Fatal(err)
		}
		waitKicked(t, svc, 1)
		drain(svc, 2)
	})

	t.Run("tamper", func(t *testing.T) {
		svc := newSvc()
		defer svc.Close()
		conn, sess := sessionConn(t, svc, key)
		defer conn.Close()
		frame, err := sess.Seal(nil, batch)
		if err != nil {
			t.Fatal(err)
		}
		frame[len(frame)-1] ^= 0xff
		if err := transport.WriteTaggedFrame(conn, service.EpochCurrent, frame); err != nil {
			t.Fatal(err)
		}
		waitKicked(t, svc, 1)
		drain(svc, 0)
	})

	t.Run("ragged-batch", func(t *testing.T) {
		svc := newSvc()
		defer svc.Close()
		conn, sess := sessionConn(t, svc, key)
		defer conn.Close()
		// Authentic frame, but the plaintext is not a whole number of
		// reports — a protocol violation past the AEAD layer.
		frame, err := sess.Seal(nil, append(append([]byte(nil), batch...), 0x7f))
		if err != nil {
			t.Fatal(err)
		}
		if err := transport.WriteTaggedFrame(conn, service.EpochCurrent, frame); err != nil {
			t.Fatal(err)
		}
		waitKicked(t, svc, 1)
		drain(svc, 0)
	})

	t.Run("hello-tag-mid-stream", func(t *testing.T) {
		// A SessionHelloTag on a later frame is NOT a new handshake:
		// the protocol is fixed at the first frame, and the tag is just
		// this batch's (nonsensical) epoch assertion — the frame itself
		// still authenticates, so the reports land as Late, not as a
		// session reset.
		svc := newSvc()
		defer svc.Close()
		conn, sess := sessionConn(t, svc, key)
		defer conn.Close()
		frame, err := sess.Seal(nil, batch)
		if err != nil {
			t.Fatal(err)
		}
		if err := transport.WriteTaggedFrame(conn, service.SessionHelloTag, frame); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for svc.Snapshot().Late < 2 {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for 2 late drops (have %d)", svc.Snapshot().Late)
			}
			time.Sleep(time.Millisecond)
		}
		conn.Close()
		snap, err := svc.Drain()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Kicked != 0 {
			t.Fatalf("mid-stream hello tag kicked the connection: %+v", snap)
		}
		if snap.Reports != 0 || snap.Late != 2 {
			t.Fatalf("want 0 reports and 2 late (epoch %#x is long sealed), got %+v", service.SessionHelloTag, snap)
		}
	})
}

// Session clients over a real TCP accept loop: batched clients finish
// so fast their connections can still sit in the listener backlog when
// the last client returns, so the caller-side contract (documented on
// Serve) is to wait until Snapshot accounts for every frame before
// draining. With that discipline no report is lost.
func TestSessionOverTCPServe(t *testing.T) {
	const n, clients = 3000, 4
	fo := ldp.NewSOLH(64, 4, 2)
	key, err := ecies.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{FO: fo, Key: key, BatchSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- svc.Serve(ln) }()

	reports := ldp.RandomizeParallel(fo, make([]int, n), 1, 0)
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				errc <- err
				return
			}
			cl, err := service.NewSessionClient(fo, key.Public(), nil, conn, 0)
			if err != nil {
				errc <- err
				return
			}
			for i := c; i < len(reports); i += clients {
				if err := cl.SendReport(reports[i]); err != nil {
					errc <- err
					return
				}
			}
			errc <- cl.Close()
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errc; err != nil {
			t.Fatalf("client: %v", err)
		}
	}
	// All clients returned, but their frames may still be in kernel
	// buffers behind an unaccepted connection: account before draining.
	waitReceived(t, svc, n)
	snap, err := svc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}
	if snap.Reports != n {
		t.Fatalf("aggregated %d reports, want %d", snap.Reports, n)
	}
}

// Session reports reach the WAL re-sealed under the at-rest storage
// key (the connection key dies with the connection), and recovery
// opens them back into the epoch bit-identically — alongside legacy
// ECIES records in the same log.
func TestRecoverSealedSessionReports(t *testing.T) {
	const d, n = 32, 24
	fo := ldp.NewSOLH(d, 8, 2)
	key, err := ecies.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int, n)
	for i := range values {
		values[i] = (i * 3) % d
	}
	reports := ldp.RandomizeParallel(fo, values, 31, 0)
	cfg := service.Config{
		FO: fo, Key: key, BatchSize: 8, ShuffleSeed: 3,
		DataDir: t.TempDir(), Sync: store.SyncBatch,
	}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// 16 reports over a session connection (sealed WAL records), 8 over
	// a legacy one (ECIES WAL records) — one log, both record types.
	clientSide, serverSide := net.Pipe()
	if err := svc.Ingest(serverSide); err != nil {
		t.Fatal(err)
	}
	cl, err := service.NewSessionClient(fo, key.Public(), nil, clientSide, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports[:16] {
		if err := cl.SendReport(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	sendLegacy(t, svc, fo, key, reports[16:])

	// Three full shuffle batches forwarded means three WAL commits: all
	// 24 reports are durable regardless of the crash below.
	deadline := time.Now().Add(10 * time.Second)
	for svc.Snapshot().Batches < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for 3 batches (have %d)", svc.Snapshot().Batches)
		}
		time.Sleep(time.Millisecond)
	}
	svc.Crash()

	rec, err := service.Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := rec.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Reports != n || snap.Received != n {
		t.Fatalf("recovered %d reports (%d received), want %d", snap.Reports, snap.Received, n)
	}
	agg := fo.NewAggregator()
	for _, rep := range reports {
		agg.Add(rep)
	}
	want := agg.Estimates()
	for v := range want {
		if snap.Estimates[v] != want[v] {
			t.Fatalf("recovered estimate[%d] = %v, direct aggregation = %v (not bit-identical)", v, snap.Estimates[v], want[v])
		}
	}
}

var _ io.Writer = (*flakyWriter)(nil)
