package service

// Crash recovery: Recover rebuilds a durable service from its data
// directory — the latest checkpoint plus a replay of the WAL tail —
// to a state bit-identical to an uninterrupted run over the same
// durable reports (DESIGN.md §8). The recovery invariants:
//
//   - Sealed epochs come from the checkpoint: history roots, the
//     all-time aggregate, and the ledger's charged count load exactly
//     as written (aggregator blobs restore bit-identical estimates).
//   - The open epoch is rebuilt entirely from the WAL tail: every
//     checkpoint is taken at a rotation boundary, so the tail's report
//     records are precisely the open epoch's reports.
//   - A rotation marker in the tail (the crash hit between the marker
//     and its checkpoint) replays the seal: the rebuilt epoch freezes
//     into history, the ledger is charged exactly once, and the seal's
//     checkpoint is re-written — re-durabilizing the rotation the
//     crash interrupted.
//   - Privacy budget is never re-spent: the ledger restores to the
//     recorded charged count, and an exhausted ledger recovers
//     exhausted — the service keeps refusing ingestion.
//
// What recovery deliberately does NOT preserve: reports that were in
// flight (client buffers, the intake queue, an unflushed WAL buffer)
// are gone, exactly as the fsync policy allows — clients resume from
// Snapshot().Received, the count of durably accepted reports. And
// Snapshot().Batches counts only pre-crash forwarded batches; replayed
// reports fold directly into the epoch root without re-batching.

import (
	"errors"
	"fmt"

	"shuffledp/internal/budget"
	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/store"
)

// Recover rebuilds the durable service persisted under cfg.DataDir
// and starts it. cfg must carry the same oracle parameters, key, and
// ledger parameters the original service ran with — the oracle and
// domain are validated against the checkpoint, the rest is the
// caller's contract (a fresh budget.Ledger is restored to the
// recorded charged count via Ledger.Restore). The returned service is
// running and ready to Serve/Ingest the rest of the stream.
func Recover(cfg Config) (*Service, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("service: Recover needs Config.DataDir")
	}
	s, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	st, rec, err := store.Open(s.cfg.DataDir, s.storeMeta(), s.cfg.Sync)
	if err != nil {
		return nil, err
	}
	s.st = st
	if s.sealer, err = ecies.NewStorageSealer(s.cfg.Key); err != nil {
		st.Close()
		return nil, err
	}
	if err := s.restore(rec); err != nil {
		st.Close()
		return nil, err
	}
	s.start()
	// A recovered open epoch may already be past the auto-rotation
	// threshold (the crash hit after the hint was generated but before
	// the rotator acted on it); re-arm the hint, since the equality
	// trigger in the shuffler will not fire again.
	if s.cfg.EpochReports > 0 && s.cur.Load().accepted.Load() >= int64(s.cfg.EpochReports) {
		select {
		case s.rotateHint <- struct{}{}:
		default:
		}
	}
	return s, nil
}

// restore applies the checkpoint and replays the WAL tail. It runs
// before any pipeline goroutine exists, so it mutates state freely.
func (s *Service) restore(rec *store.Recovered) error {
	openEpoch := 0
	exhausted := false
	if cp := rec.Checkpoint; cp != nil {
		openEpoch = cp.OpenEpoch
		exhausted = cp.Exhausted
		s.wal = walCounters{received: cp.Received, late: cp.Late, rejected: cp.Rejected, batches: cp.Batches}
		if s.cfg.Ledger != nil {
			if err := s.cfg.Ledger.Restore(cp.LedgerCharged); err != nil {
				return fmt.Errorf("service: restoring ledger: %w", err)
			}
		}
		if len(cp.AllTime) > 0 {
			allTime, err := ldp.UnmarshalAggregator(s.cfg.FO, cp.AllTime)
			if err != nil {
				return fmt.Errorf("service: restoring all-time aggregate: %w", err)
			}
			s.allTime = allTime
		}
		for _, h := range cp.History {
			root, err := ldp.UnmarshalAggregator(s.cfg.FO, h.Root)
			if err != nil {
				return fmt.Errorf("service: restoring epoch %d root: %w", h.Epoch, err)
			}
			s.history = append(s.history, epochRecord{
				snap: EpochSnapshot{
					Epoch:     h.Epoch,
					Estimates: root.Estimates(),
					Reports:   h.Reports,
					Batches:   h.Batches,
					Guarantee: h.Guarantee,
				},
				agg: root,
			})
		}
	} else if s.cfg.Ledger != nil {
		// No checkpoint was ever written, but New charged epoch 0
		// before the crash.
		if err := s.cfg.Ledger.Restore(1); err != nil {
			return fmt.Errorf("service: restoring ledger: %w", err)
		}
	}
	if cp := rec.Checkpoint; cp != nil && !exhausted && !cp.OpenCharged && s.cfg.Ledger != nil {
		// A drain seal wrote this checkpoint: the epoch it left open
		// was never charged, because in the original process it never
		// opened. Recovering opens it, so it is charged now — exactly
		// as New charges epoch 0 — and never re-charged on a later
		// recovery (the ledger restarts from cp.LedgerCharged each
		// time). If the budget is already spent, the service recovers
		// exhausted: queryable, refusing ingestion.
		if err := s.cfg.Ledger.Charge(); err != nil {
			if !errors.Is(err, budget.ErrExhausted) {
				return fmt.Errorf("service: charging recovered epoch %d: %w", cp.OpenEpoch, err)
			}
			exhausted = true
		}
	}

	cur := newEpochState(openEpoch, s.cfg.FO, s.cfg.Workers)
	if exhausted {
		// The stored pointer is only the sealed final epoch kept for
		// queries; recover its frozen state from the history so
		// Snapshot answers match the pre-crash service.
		cur = s.sealedFinalEpoch(openEpoch - 1)
	}
	for _, r := range rec.Tail {
		switch r.Type {
		case store.RecordReport, store.RecordSealedReport:
			if exhausted || r.Epoch != uint32(cur.id) {
				return fmt.Errorf("service: WAL report for epoch %d while epoch %d is open", r.Epoch, cur.id)
			}
			var pt []byte
			var err error
			if r.Type == store.RecordSealedReport {
				// A session report, re-sealed under the at-rest storage
				// key (the connection key is gone with the connection).
				pt, err = s.sealer.Open(nil, r.Payload)
				if err != nil {
					return fmt.Errorf("service: opening sealed WAL report: %w", err)
				}
			} else {
				pt, err = ecies.Decrypt(s.cfg.Key, r.Payload)
				if err != nil {
					return fmt.Errorf("service: decrypting WAL report: %w", err)
				}
			}
			rep, err := s.codec.Unmarshal(pt)
			if err != nil {
				return fmt.Errorf("service: decoding WAL report: %w", err)
			}
			cur.root.Add(rep)
			cur.accepted.Add(1)
			s.wal.received++
		case store.RecordDrop:
			if r.Reason == store.DropLate {
				s.wal.late++
			} else {
				s.wal.rejected++
			}
		case store.RecordRotate:
			if int64(cur.id) != int64(r.Epoch) {
				return fmt.Errorf("service: WAL rotate marker seals epoch %d while epoch %d is open", r.Epoch, cur.id)
			}
			// Replay the interrupted rotation: charge, seal (which
			// re-writes the checkpoint the crash lost), and open the
			// next epoch — or latch exhaustion, exactly as the live
			// Rotate would have.
			var chargeErr error
			if s.cfg.Ledger != nil {
				chargeErr = s.cfg.Ledger.Charge()
				if chargeErr != nil && !errors.Is(chargeErr, budget.ErrExhausted) {
					return fmt.Errorf("service: recharging epoch %d: %w", r.Epoch+1, chargeErr)
				}
			}
			if r.Next >= 0 && chargeErr != nil {
				return fmt.Errorf("service: WAL opened epoch %d but the restored ledger refuses it: %w", r.Next, chargeErr)
			}
			if r.Next < 0 {
				if s.cfg.Ledger != nil && chargeErr == nil {
					return fmt.Errorf("service: WAL records budget exhaustion at epoch %d but the restored ledger still admits epochs", r.Epoch)
				}
				exhausted = true
				s.exhausted.Store(true)
			}
			cur.bnd = s.wal
			s.seal(cur, r.Next >= 0)
			if r.Next >= 0 {
				cur = newEpochState(int(r.Next), s.cfg.FO, s.cfg.Workers)
			}
		}
	}
	if exhausted {
		s.exhausted.Store(true)
	}
	s.cur.Store(cur)
	s.received.Store(s.wal.received)
	s.late.Store(s.wal.late)
	s.rejected.Store(s.wal.rejected)
	s.shuffled.Store(s.wal.batches)
	return nil
}

// sealedFinalEpoch rebuilds the frozen shell of the last sealed epoch
// for a service recovered in the exhausted state, so queries against
// the current epoch keep answering with its frozen estimate.
func (s *Service) sealedFinalEpoch(id int) *epochState {
	e := newEpochState(id, s.cfg.FO, s.cfg.Workers)
	e.sealed = true
	e.frozen = true
	e.frozenEst = make([]float64, s.cfg.FO.Domain())
	if n := len(s.history); n > 0 && s.history[n-1].snap.Epoch == id {
		last := s.history[n-1]
		e.root = last.agg
		e.frozenEst = last.snap.Estimates
		e.frozenN = last.snap.Reports
		e.batches.Store(last.snap.Batches)
	}
	return e
}
