package service

import (
	"bytes"
	"testing"

	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
)

// fuzzOracles is the cross-oracle lineup the codec must be safe for:
// every report wire format the service speaks (word, unary bitmap,
// AUE counts), with a domain that is not a multiple of 8 so the
// bitmap padding path is exercised.
func fuzzOracles() []ldp.FrequencyOracle {
	return []ldp.FrequencyOracle{
		ldp.NewGRR(13, 1),
		ldp.NewSOLH(13, 5, 1),
		ldp.NewOLH(13, 1.5),
		ldp.NewHadamard(13, 1),
		ldp.NewRAP(13, 1),
		ldp.NewRAPR(13, 0.8),
		ldp.NewOUE(13, 1),
		ldp.NewAUE(13, 1, 1e-6, 50),
	}
}

// FuzzCodec locks in the codec's safety contract across every oracle:
// an arbitrary payload either fails Unmarshal or yields a report that
// (a) the oracle's aggregator accepts without panicking — a corrupt
// report must flag the run, never crash a worker — and (b) marshals
// back to the identical bytes (the encoding is canonical: no two
// payloads decode to the same report, no report re-encodes
// differently than it arrived).
func FuzzCodec(f *testing.F) {
	// Seed with one valid report per oracle plus structural edge cases.
	r := rng.New(7)
	for _, fo := range fuzzOracles() {
		codec, err := NewCodec(fo)
		if err != nil {
			f.Fatal(err)
		}
		payload, err := codec.Marshal(fo.Randomize(3, r))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0x80}, 13))

	oracles := fuzzOracles()
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, fo := range oracles {
			codec, err := NewCodec(fo)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := codec.Unmarshal(data)
			if err != nil {
				continue // rejected is always fine
			}
			// Accepted reports must be aggregator-safe.
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("%s: Add panicked on unmarshaled report %+v: %v", fo.Name(), rep, p)
					}
				}()
				fo.NewAggregator().Add(rep)
			}()
			// And canonical: re-marshal reproduces the exact payload.
			out, err := codec.Marshal(rep)
			if err != nil {
				t.Fatalf("%s: Marshal of unmarshaled report failed: %v", fo.Name(), err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("%s: round trip not canonical: in %x, out %x", fo.Name(), data, out)
			}
			again, err := codec.Unmarshal(out)
			if err != nil {
				t.Fatalf("%s: re-unmarshal failed: %v", fo.Name(), err)
			}
			if again.Seed != rep.Seed || again.Value != rep.Value || !bytes.Equal(again.Bits, rep.Bits) {
				t.Fatalf("%s: reports differ across round trips: %+v vs %+v", fo.Name(), rep, again)
			}
		}
	})
}

// FuzzSessionFrame throws arbitrary bytes at both ends of the session
// handshake and the batch frame AEAD. The locked-in contract:
//
//   - NewServerSession must never panic on a malformed hello — it
//     either errors or yields a working session.
//   - Session.Open must never panic, and must accept NOTHING but the
//     exact frame the peer sealed: any fuzz input that opens must be
//     byte-identical to the genuine frame (no forgery, no malleability).
//   - A rejected frame must not advance the replay counter: after any
//     number of garbage frames, the genuine next frame still opens and
//     its batch still splits into valid codec records.
func FuzzSessionFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, ecies.HelloSize))
	versioned := make([]byte, ecies.HelloSize)
	versioned[0] = ecies.SessionVersion
	f.Add(versioned)
	f.Add(bytes.Repeat([]byte{0x5a}, ecies.SessionOverhead+8))
	f.Add(bytes.Repeat([]byte{0x01}, ecies.SessionOverhead-1))
	counterOnly := make([]byte, ecies.SessionOverhead+16)
	counterOnly[7] = 1 // claims frame counter 1
	f.Add(counterOnly)

	f.Fuzz(func(t *testing.T, data []byte) {
		key, err := ecies.GenerateKey()
		if err != nil {
			t.Fatal(err)
		}
		client, hello, err := ecies.NewClientSession(key.Public())
		if err != nil {
			t.Fatal(err)
		}
		server, err := ecies.NewServerSession(key, hello)
		if err != nil {
			t.Fatal(err)
		}
		// Arbitrary bytes as a hello: error or working session, no panic.
		if _, err := ecies.NewServerSession(key, data); err == nil && len(data) != ecies.HelloSize {
			t.Fatalf("server session accepted a %d-byte hello, want %d", len(data), ecies.HelloSize)
		}

		fo := ldp.NewSOLH(13, 5, 1)
		codec, err := NewCodec(fo)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(5)
		var batch []byte
		for v := 0; v < 3; v++ {
			if batch, err = codec.AppendMarshal(batch, fo.Randomize(v, r)); err != nil {
				t.Fatal(err)
			}
		}
		frame, err := client.Seal(nil, batch)
		if err != nil {
			t.Fatal(err)
		}
		if pt, err := server.Open(nil, data); err == nil {
			if !bytes.Equal(data, frame) {
				t.Fatalf("forged frame of %d bytes opened", len(data))
			}
			if !bytes.Equal(pt, batch) {
				t.Fatal("genuine frame opened to different plaintext")
			}
			return
		}
		// The garbage was rejected; the counter must be untouched so the
		// genuine frame still lands, end to end through the codec.
		pt, err := server.Open(nil, frame)
		if err != nil {
			t.Fatalf("genuine frame refused after rejected garbage: %v", err)
		}
		if len(pt)%codec.Size() != 0 {
			t.Fatalf("batch of %d bytes is not whole %d-byte records", len(pt), codec.Size())
		}
		for off := 0; off < len(pt); off += codec.Size() {
			if _, err := codec.Unmarshal(pt[off : off+codec.Size()]); err != nil {
				t.Fatalf("batch record %d does not decode: %v", off/codec.Size(), err)
			}
		}
	})
}

// The codec's size contract: every report of one oracle marshals to
// exactly Size() bytes (frames must not leak content through length).
func TestCodecFixedSize(t *testing.T) {
	r := rng.New(11)
	for _, fo := range fuzzOracles() {
		codec, err := NewCodec(fo)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < fo.Domain(); v++ {
			payload, err := codec.Marshal(fo.Randomize(v, r))
			if err != nil {
				t.Fatalf("%s: %v", fo.Name(), err)
			}
			if len(payload) != codec.Size() {
				t.Fatalf("%s: payload %d bytes, Size() says %d", fo.Name(), len(payload), codec.Size())
			}
		}
	}
}

// A word payload past the oracle's report group must be rejected, not
// silently wrapped into some other user's report — and a Hadamard row
// past the matrix order must be rejected, not panic the aggregator.
func TestCodecRejectsNonCanonical(t *testing.T) {
	grr, err := NewCodec(ldp.NewGRR(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := grr.Unmarshal([]byte{4, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("GRR word past the domain accepted")
	}
	had, err := NewCodec(ldp.NewHadamard(13, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Order is 16; row 16, value 0 packs as 16*2 = 32.
	if _, err := had.Unmarshal([]byte{32, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("Hadamard row past the order accepted")
	}
	if _, err := had.Unmarshal([]byte{31, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatalf("Hadamard row 15 rejected: %v", err)
	}
	// An AUE location can carry at most one increment per blanket round
	// plus the true bit; a larger count is unproducible by Randomize
	// and must flag the run, not skew the histogram.
	aue, err := NewCodec(ldp.NewAUE(4, 3, 1e-9, 1000)) // rounds=1: counts <= 2
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aue.Unmarshal([]byte{3, 0, 0, 0}); err == nil {
		t.Fatal("AUE count past rounds+1 accepted")
	}
	if _, err := aue.Unmarshal([]byte{2, 1, 0, 0}); err != nil {
		t.Fatalf("valid AUE counts rejected: %v", err)
	}
}
