package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
	"shuffledp/internal/transport"
)

// Client submits encrypted reports to a Service over one connection,
// in one of two wire modes:
//
//   - NewClient: the legacy per-report protocol — every report is
//     individually ECIES-encrypted and framed.
//   - NewSessionClient: the session protocol — one handshake frame on
//     first write, then batches of reports sealed under the
//     per-connection AEAD key (a small fraction of the legacy CPU
//     cost on both ends).
//
// Every frame is written all-or-nothing: the full frame (header and
// payload) is assembled in one buffer and handed to the connection in
// a single Write, and any write error poisons the client — every
// later call returns the same error instead of resuming mid-frame on
// a stream whose framing is no longer trustworthy. A Client is not
// safe for concurrent use — run one Client per goroutine, which is
// also the deployment shape (one connection per reporting device or
// per collector gateway).
type Client struct {
	fo    ldp.FrequencyOracle
	codec *Codec
	key   *ecies.PublicKey
	rand  *rng.Rand
	conn  io.Writer
	epoch uint32
	// broken latches the first write failure; the stream past it
	// cannot be trusted to be frame-aligned.
	broken error

	// wire is the frame assembly buffer (header plus payload, written
	// in one call); frameStart is where the current frame's header
	// begins in it (after the hello frame on a session's first write).
	wire       []byte
	frameStart int

	// Session mode (nil sess means legacy).
	sess       *ecies.Session
	hello      []byte // handshake frame payload, pending until first write
	helloSent  bool
	batchSize  int
	batch      []byte // marshalled reports pending in the open batch
	batchCount int
	batchEpoch uint32 // epoch the open batch asserts
}

// NewClient prepares a legacy per-report submission client. rand may
// be nil if only SendReport (pre-randomized reports) will be used.
func NewClient(fo ldp.FrequencyOracle, serverKey *ecies.PublicKey, rand *rng.Rand, conn io.Writer) (*Client, error) {
	return newClient(fo, serverKey, rand, conn)
}

// NewSessionClient prepares a session-mode submission client: its
// first write leads with the session hello, and reports are packed
// batchSize to a frame under the session key (batchSize <= 0 means
// DefaultClientBatch). Buffered reports are pushed by Flush or Close
// — like any buffered writer, a batch that is never flushed is never
// sent.
func NewSessionClient(fo ldp.FrequencyOracle, serverKey *ecies.PublicKey, rand *rng.Rand, conn io.Writer, batchSize int) (*Client, error) {
	c, err := newClient(fo, serverKey, rand, conn)
	if err != nil {
		return nil, err
	}
	if batchSize <= 0 {
		batchSize = DefaultClientBatch
	}
	sess, hello, err := ecies.NewClientSession(serverKey)
	if err != nil {
		return nil, fmt.Errorf("service: client session handshake: %w", err)
	}
	c.sess = sess
	c.hello = hello
	c.batchSize = batchSize
	c.batch = make([]byte, 0, batchSize*c.codec.Size())
	return c, nil
}

func newClient(fo ldp.FrequencyOracle, serverKey *ecies.PublicKey, rand *rng.Rand, conn io.Writer) (*Client, error) {
	if fo == nil {
		return nil, errors.New("service: client needs a frequency oracle")
	}
	if serverKey == nil {
		return nil, errors.New("service: client needs the server's public key")
	}
	if conn == nil {
		return nil, errors.New("service: client needs a connection")
	}
	codec, err := NewCodec(fo)
	if err != nil {
		return nil, err
	}
	return &Client{fo: fo, codec: codec, key: serverKey, rand: rand, conn: conn, epoch: EpochCurrent}, nil
}

// SetEpoch stamps subsequent reports with a specific epoch id instead
// of the default EpochCurrent ("whatever epoch the service has open").
// A report asserting an epoch the service has already sealed is
// dropped and counted as Late rather than folded into the wrong
// collection round. A session batch asserts one epoch for all its
// reports, so changing the epoch flushes the open batch first (any
// flush error latches and surfaces on the next send or Flush).
func (c *Client) SetEpoch(epoch uint32) {
	if c.sess != nil && c.batchCount > 0 && epoch != c.batchEpoch {
		_ = c.flushBatch()
	}
	c.epoch = epoch
}

// Send randomizes v with the oracle and submits the encrypted report.
func (c *Client) Send(v int) error {
	if c.rand == nil {
		return errors.New("service: client has no randomness for Send")
	}
	return c.SendReport(c.fo.Randomize(v, c.rand))
}

// SendValues randomizes and submits every value in order.
func (c *Client) SendValues(values []int) error {
	for _, v := range values {
		if err := c.Send(v); err != nil {
			return err
		}
	}
	return nil
}

// SendReport encrypts an already-randomized report end-to-end for the
// server and submits it: immediately as one ECIES frame in legacy
// mode, or into the open session batch (flushed when full).
func (c *Client) SendReport(rep ldp.Report) error {
	if c.broken != nil {
		return c.broken
	}
	if c.sess != nil {
		if c.batchCount == 0 {
			c.batchEpoch = c.epoch
		}
		var err error
		if c.batch, err = c.codec.AppendMarshal(c.batch, rep); err != nil {
			return err
		}
		c.batchCount++
		if c.batchCount >= c.batchSize {
			return c.flushBatch()
		}
		return nil
	}
	payload, err := c.codec.Marshal(rep)
	if err != nil {
		return err
	}
	wire := c.beginFrame()
	wire, err = ecies.EncryptTo(c.key, wire, payload)
	if err != nil {
		return fmt.Errorf("service: client encrypt: %w", err)
	}
	return c.finishFrame(wire, c.epoch)
}

// flushBatch seals and writes the open session batch as one frame.
func (c *Client) flushBatch() error {
	if c.broken != nil {
		return c.broken
	}
	if c.batchCount == 0 {
		return nil
	}
	wire := c.beginFrame()
	wire, err := c.sess.Seal(wire, c.batch)
	if err != nil {
		c.broken = fmt.Errorf("service: client seal batch: %w", err)
		return c.broken
	}
	c.batch = c.batch[:0]
	c.batchCount = 0
	return c.finishFrame(wire, c.batchEpoch)
}

// beginFrame resets the wire buffer and lays down an 8-byte header
// placeholder for the frame about to be assembled. On a session
// client whose hello has not gone out yet, the complete hello frame
// is laid down first, so the handshake rides in the same write as the
// first batch — never a frame fragment on its own.
func (c *Client) beginFrame() []byte {
	wire := c.wire[:0]
	if c.sess != nil && !c.helloSent {
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(c.hello)))
		binary.BigEndian.PutUint32(hdr[4:], SessionHelloTag)
		wire = append(wire, hdr[:]...)
		wire = append(wire, c.hello...)
	}
	c.frameStart = len(wire)
	return append(wire, 0, 0, 0, 0, 0, 0, 0, 0)
}

// finishFrame fixes up the header of the frame begun by beginFrame
// and hands the whole buffer to the connection in a single Write. A
// write error poisons the client: part of a frame may be on the wire,
// so no later write could ever be frame-aligned.
func (c *Client) finishFrame(wire []byte, tag uint32) error {
	c.wire = wire
	frame := wire[c.frameStart:]
	if len(frame)-8 > transport.MaxFrameSize {
		return transport.ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-8))
	binary.BigEndian.PutUint32(frame[4:8], tag)
	if _, err := c.conn.Write(wire); err != nil {
		c.broken = fmt.Errorf("service: client write: %w", err)
		return c.broken
	}
	c.helloSent = c.helloSent || c.sess != nil
	return nil
}

// Flush pushes the open session batch, if any, to the connection
// (legacy mode buffers nothing between frames).
func (c *Client) Flush() error {
	if c.sess != nil {
		return c.flushBatch()
	}
	return c.broken
}

// Close flushes and, if the connection is a closer, closes it —
// signalling "this client is done" to the service (its reader sees
// EOF, which is what Drain waits for).
func (c *Client) Close() error {
	if err := c.Flush(); err != nil {
		return err
	}
	if cl, ok := c.conn.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}
