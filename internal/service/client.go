package service

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
	"shuffledp/internal/transport"
)

// Client submits encrypted reports to a Service over one connection.
// Writes are buffered; Flush (or Close) pushes the tail. A Client is
// not safe for concurrent use — run one Client per goroutine, which is
// also the deployment shape (one connection per reporting device or
// per collector gateway).
type Client struct {
	fo    ldp.FrequencyOracle
	codec *Codec
	key   *ecies.PublicKey
	rand  *rng.Rand
	w     *bufio.Writer
	conn  io.Writer
	epoch uint32
}

// NewClient prepares a submission client. rand may be nil if only
// SendReport (pre-randomized reports) will be used.
func NewClient(fo ldp.FrequencyOracle, serverKey *ecies.PublicKey, rand *rng.Rand, conn io.Writer) (*Client, error) {
	if fo == nil {
		return nil, errors.New("service: client needs a frequency oracle")
	}
	if serverKey == nil {
		return nil, errors.New("service: client needs the server's public key")
	}
	if conn == nil {
		return nil, errors.New("service: client needs a connection")
	}
	codec, err := NewCodec(fo)
	if err != nil {
		return nil, err
	}
	return &Client{fo: fo, codec: codec, key: serverKey, rand: rand, w: bufio.NewWriter(conn), conn: conn, epoch: EpochCurrent}, nil
}

// SetEpoch stamps subsequent reports with a specific epoch id instead
// of the default EpochCurrent ("whatever epoch the service has open").
// A report asserting an epoch the service has already sealed is
// dropped and counted as Late rather than folded into the wrong
// collection round.
func (c *Client) SetEpoch(epoch uint32) { c.epoch = epoch }

// Send randomizes v with the oracle and submits the encrypted report.
func (c *Client) Send(v int) error {
	if c.rand == nil {
		return errors.New("service: client has no randomness for Send")
	}
	return c.SendReport(c.fo.Randomize(v, c.rand))
}

// SendValues randomizes and submits every value in order.
func (c *Client) SendValues(values []int) error {
	for _, v := range values {
		if err := c.Send(v); err != nil {
			return err
		}
	}
	return nil
}

// SendReport encrypts an already-randomized report end-to-end for the
// server and frames it onto the connection.
func (c *Client) SendReport(rep ldp.Report) error {
	payload, err := c.codec.Marshal(rep)
	if err != nil {
		return err
	}
	ct, err := ecies.Encrypt(c.key, payload)
	if err != nil {
		return fmt.Errorf("service: client encrypt: %w", err)
	}
	return transport.WriteTaggedFrame(c.w, c.epoch, ct)
}

// Flush pushes buffered frames to the connection.
func (c *Client) Flush() error {
	return c.w.Flush()
}

// Close flushes and, if the connection is a closer, closes it —
// signalling "this client is done" to the service (its reader sees
// EOF, which is what Drain waits for).
func (c *Client) Close() error {
	if err := c.w.Flush(); err != nil {
		return err
	}
	if cl, ok := c.conn.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}
