package service_test

import (
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/netproto"
	"shuffledp/internal/rng"
	"shuffledp/internal/service"
	"shuffledp/internal/transport"
)

// runConcurrent pushes the given pre-randomized reports through a
// service using `clients` concurrent connections (report i goes to
// client i%clients) and returns the drained snapshot.
func runConcurrent(t *testing.T, fo ldp.FrequencyOracle, reports []ldp.Report, clients int, cfg service.Config) service.Snapshot {
	t.Helper()
	key, err := ecies.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	cfg.FO = fo
	cfg.Key = key
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		clientSide, serverSide := net.Pipe()
		if err := svc.Ingest(serverSide); err != nil {
			t.Fatal(err)
		}
		cl, err := service.NewClient(fo, key.Public(), nil, clientSide)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, cl *service.Client) {
			defer wg.Done()
			// Close on every exit path: an error return that left the
			// conn open would hang Drain's wait for reader EOFs.
			defer clientSide.Close()
			for i := c; i < len(reports); i += clients {
				if err := cl.SendReport(reports[i]); err != nil {
					errc <- fmt.Errorf("client %d: %w", c, err)
					return
				}
			}
			errc <- cl.Close()
		}(c, cl)
	}

	// Poll snapshots mid-stream: ingestion must keep flowing and every
	// snapshot must be a valid partial estimate.
	quit := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		prev := 0
		for {
			snap := svc.Snapshot()
			if len(snap.Estimates) != fo.Domain() {
				t.Errorf("mid-stream snapshot has %d estimates, want %d", len(snap.Estimates), fo.Domain())
				return
			}
			if snap.Reports < prev {
				t.Errorf("snapshot reports went backwards: %d -> %d", prev, snap.Reports)
				return
			}
			prev = snap.Reports
			select {
			case <-quit:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()

	snap, err := svc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(quit)
	<-snapDone
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
	return snap
}

// TestRaceConcurrentClientsBitIdentical is the acceptance test of the
// streaming tier (run it under -race): ten concurrent clients stream
// interleaved reports through small shuffle batches and many workers,
// and the final merged histogram must be bit-identical — every float64
// exactly equal — to the sequential netproto.RunPipeline reference for
// the same seed.
func TestRaceConcurrentClientsBitIdentical(t *testing.T) {
	const (
		d       = 64
		seed    = 41
		clients = 10
	)
	n := ldp.ShardSize + 1357 // cover a full and a partial randomization shard
	values := make([]int, n)
	for i := range values {
		values[i] = (i * i) % d
	}
	fo := ldp.NewSOLH(d, 16, 3)

	want, err := netproto.RunPipeline(fo, values, seed)
	if err != nil {
		t.Fatal(err)
	}

	// RunPipeline itself runs on the service, so it cannot be the only
	// reference (a defect shared by every client count would cancel
	// out). Anchor to the independent sequential path: a plain
	// aggregator fed the same report multiset directly, no service, no
	// codec, no crypto.
	reports := ldp.RandomizeParallel(fo, values, seed, 0)
	seqAgg := fo.NewAggregator()
	for _, rep := range reports {
		seqAgg.Add(rep)
	}
	seq := seqAgg.Estimates()
	for v := range want {
		if want[v] != seq[v] {
			t.Fatalf("RunPipeline estimate[%d] = %v, direct sequential aggregation = %v",
				v, want[v], seq[v])
		}
	}

	// The same report multiset, split across concurrent clients;
	// estimates depend only on the multiset, so the result must match
	// exactly.
	snap := runConcurrent(t, fo, reports, clients, service.Config{
		BatchSize:   128,
		ShuffleSeed: seed + 1,
	})

	if snap.Reports != n {
		t.Fatalf("aggregated %d reports, want %d", snap.Reports, n)
	}
	if len(snap.Estimates) != d {
		t.Fatalf("estimate length %d, want %d", len(snap.Estimates), d)
	}
	for v := range want {
		if snap.Estimates[v] != want[v] {
			t.Fatalf("estimate[%d] = %v, sequential pipeline = %v (not bit-identical)",
				v, snap.Estimates[v], want[v])
		}
	}
}

// The GRR path must be bit-identical too (different aggregator type).
func TestRaceConcurrentClientsBitIdenticalGRR(t *testing.T) {
	const d, seed, clients, n = 16, 43, 8, 3000
	values := make([]int, n)
	for i := range values {
		values[i] = i % 5
	}
	fo := ldp.NewGRR(d, 2)
	want, err := netproto.RunPipeline(fo, values, seed)
	if err != nil {
		t.Fatal(err)
	}
	reports := ldp.RandomizeParallel(fo, values, seed, 0)
	snap := runConcurrent(t, fo, reports, clients, service.Config{
		BatchSize:   64,
		ShuffleSeed: seed + 1,
	})
	for v := range want {
		if snap.Estimates[v] != want[v] {
			t.Fatalf("estimate[%d] = %v, want %v", v, snap.Estimates[v], want[v])
		}
	}
}

// Unary oracles (here OUE) have no word encoding and could never ride
// netproto; through the service codec they stream end-to-end.
func TestServiceStreamsUnaryOracle(t *testing.T) {
	const d, n, clients = 12, 1500, 4
	values := make([]int, n)
	for i := range values {
		values[i] = i % 3
	}
	fo := ldp.NewOUE(d, 3)
	reports := ldp.RandomizeParallel(fo, values, 7, 0)
	snap := runConcurrent(t, fo, reports, clients, service.Config{BatchSize: 100, ShuffleSeed: 8})
	if snap.Reports != n {
		t.Fatalf("aggregated %d, want %d", snap.Reports, n)
	}
	// Must equal the sequential aggregate of the same reports exactly.
	agg := fo.NewAggregator()
	for _, rep := range reports {
		agg.Add(rep)
	}
	want := agg.Estimates()
	for v := range want {
		if snap.Estimates[v] != want[v] {
			t.Fatalf("estimate[%d] = %v, want %v", v, snap.Estimates[v], want[v])
		}
	}
}

func TestServiceOverTCP(t *testing.T) {
	const d, n, clients = 8, 600, 3
	fo := ldp.NewGRR(d, 4)
	key, err := ecies.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	var meter transport.Meter
	svc, err := service.New(service.Config{
		FO: fo, Key: key, BatchSize: 50, ShuffleSeed: 5, Meter: &meter,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- svc.Serve(ln) }()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			cl, err := service.NewClient(fo, key.Public(), rng.New(uint64(100+c)), conn)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n/clients; i++ {
				if err := cl.Send(i % d); err != nil {
					t.Error(err)
					return
				}
			}
			if err := cl.Close(); err != nil {
				t.Error(err)
			}
		}(c)
	}
	wg.Wait()
	snap, err := svc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}
	if snap.Reports != n {
		t.Fatalf("aggregated %d, want %d", snap.Reports, n)
	}
	sum := 0.0
	for _, e := range snap.Estimates {
		sum += e
	}
	if math.Abs(sum-1) > 0.2 {
		t.Fatalf("estimates sum to %v, want ~1", sum)
	}
	if meter.Stats(service.PartyUsers).SentBytes == 0 ||
		meter.Stats(service.PartyServer).RecvBytes == 0 {
		t.Fatalf("meter not accounting:\n%s", meter.String())
	}
}

func TestDrainEmptyService(t *testing.T) {
	fo := ldp.NewGRR(4, 1)
	key, _ := ecies.GenerateKey()
	svc, err := service.New(service.Config{FO: fo, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Reports != 0 || len(snap.Estimates) != 4 {
		t.Fatalf("empty drain snapshot %+v", snap)
	}
	// Drain is idempotent.
	if _, err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	// New connections are rejected after drain.
	a, b := net.Pipe()
	defer a.Close()
	if err := svc.Ingest(b); err == nil {
		t.Fatal("Ingest accepted after Drain")
	}
}

// A report encrypted under the wrong key must surface as a drain
// error, never silently skew the histogram.
func TestWrongKeyReportSurfacesError(t *testing.T) {
	fo := ldp.NewGRR(4, 1)
	key, _ := ecies.GenerateKey()
	wrong, _ := ecies.GenerateKey()
	svc, err := service.New(service.Config{FO: fo, Key: key, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	clientSide, serverSide := net.Pipe()
	if err := svc.Ingest(serverSide); err != nil {
		t.Fatal(err)
	}
	cl, err := service.NewClient(fo, wrong.Public(), rng.New(1), clientSide)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := cl.Send(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Drain()
	if err == nil {
		t.Fatal("undecryptable reports did not surface an error")
	}
	if snap.Reports != 0 {
		t.Fatalf("undecryptable reports were aggregated: %d", snap.Reports)
	}
}

// unknownOracle hides the concrete oracle type from the codec's type
// switch: a mechanism the codec has no wire format for.
type unknownOracle struct{ ldp.FrequencyOracle }

func TestNewValidation(t *testing.T) {
	key, _ := ecies.GenerateKey()
	if _, err := service.New(service.Config{Key: key}); err == nil {
		t.Error("nil oracle accepted")
	}
	if _, err := service.New(service.Config{FO: ldp.NewGRR(4, 1)}); err == nil {
		t.Error("nil key accepted")
	}
	if _, err := service.New(service.Config{FO: unknownOracle{ldp.NewGRR(4, 1)}, Key: key}); err == nil {
		t.Error("codec-less oracle accepted")
	}
	// AUE reports carry per-location counts; since the count codec they
	// stream like every other oracle.
	svc, err := service.New(service.Config{FO: ldp.NewAUE(4, 1, 1e-9, 100), Key: key})
	if err != nil {
		t.Fatalf("AUE rejected: %v", err)
	}
	svc.Close()
}

// Ingest racing Drain must never panic or hang: either the connection
// is registered before Drain's cutoff (and Drain waits for its EOF) or
// it is rejected — no reader may outlive Drain and write into the
// closed intake. Run under -race.
func TestIngestDrainRace(t *testing.T) {
	fo := ldp.NewGRR(4, 1)
	key, _ := ecies.GenerateKey()
	for round := 0; round < 25; round++ {
		svc, err := service.New(service.Config{FO: fo, Key: key})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				clientSide, serverSide := net.Pipe()
				if err := svc.Ingest(serverSide); err != nil {
					clientSide.Close()
					return
				}
				clientSide.Close() // immediate EOF
			}()
		}
		if _, err := svc.Drain(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	}
}

func TestCloseAbortsPromptly(t *testing.T) {
	fo := ldp.NewGRR(4, 1)
	key, _ := ecies.GenerateKey()
	svc, err := service.New(service.Config{FO: fo, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	clientSide, serverSide := net.Pipe()
	defer clientSide.Close()
	if err := svc.Ingest(serverSide); err != nil {
		t.Fatal(err)
	}
	// Client never closes; Close must still return immediately and a
	// subsequent Drain must not hang.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		svc.Drain()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain hung after Close")
	}
}

// A client that stalls mid-stream (sends some reports, then goes
// silent without closing) must not pin its reader goroutine — and,
// transitively, Drain — forever. The idle deadline disconnects it,
// counts it, and the drain completes with the reports that did arrive.
func TestIdleClientDisconnectedAndDrainCompletes(t *testing.T) {
	fo := ldp.NewGRR(4, 1)
	key, _ := ecies.GenerateKey()
	svc, err := service.New(service.Config{
		FO:          fo,
		Key:         key,
		IdleTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	clientSide, serverSide := net.Pipe()
	defer clientSide.Close()
	if err := svc.Ingest(serverSide); err != nil {
		t.Fatal(err)
	}
	cl, err := service.NewClient(fo, key.Public(), rng.New(1), clientSide)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Send(2); err != nil {
		t.Fatal(err)
	}
	// net.Pipe is synchronous: once Flush returns, the reader has the
	// frame. From here the client stalls without ever closing.
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}

	type result struct {
		snap service.Snapshot
		err  error
	}
	done := make(chan result, 1)
	go func() {
		snap, err := svc.Drain()
		done <- result{snap, err}
	}()
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatalf("drain after idle disconnect: %v", res.err)
		}
		if res.snap.Reports != 1 || res.snap.Received != 1 {
			t.Fatalf("want the 1 pre-stall report, got %+v", res.snap)
		}
		if res.snap.IdleClosed != 1 {
			t.Fatalf("want IdleClosed=1, got %d", res.snap.IdleClosed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain hung on a stalled client: idle deadline not applied")
	}
}

// Without an idle timeout a healthy slow client is never disconnected:
// gaps longer than any internal deadline are fine as long as the
// client eventually finishes.
func TestNoIdleTimeoutKeepsSlowClient(t *testing.T) {
	fo := ldp.NewGRR(4, 1)
	key, _ := ecies.GenerateKey()
	svc, err := service.New(service.Config{FO: fo, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	clientSide, serverSide := net.Pipe()
	if err := svc.Ingest(serverSide); err != nil {
		t.Fatal(err)
	}
	cl, err := service.NewClient(fo, key.Public(), rng.New(1), clientSide)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := cl.Send(i); err != nil {
			t.Fatal(err)
		}
		if err := cl.Flush(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(30 * time.Millisecond)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Reports != 3 || snap.IdleClosed != 0 {
		t.Fatalf("slow client dropped: %+v", snap)
	}
}
