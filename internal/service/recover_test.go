package service_test

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"shuffledp/internal/budget"
	"shuffledp/internal/composition"
	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/service"
	"shuffledp/internal/store"
)

// recoveryWorld is the fixed workload the crash-recovery tests drive:
// pre-randomized reports, manual rotation boundaries, and a fresh
// ledger per "process" (a recovered service must get a new Ledger
// instance, exactly like a restarted analyzer would).
type recoveryWorld struct {
	fo        ldp.FrequencyOracle
	key       *ecies.PrivateKey
	reports   []ldp.Report
	bounds    []int // rotation boundaries (report counts), ascending
	totalEps  float64
	perEps    float64
	batchSize int
}

func newRecoveryWorld(t *testing.T) *recoveryWorld {
	t.Helper()
	const (
		d        = 32
		n        = 1800
		seed     = 99
		perEps   = 1.5
		epochs   = 3
		perEpoch = n / epochs
	)
	fo := ldp.NewSOLH(d, 8, 2)
	values := make([]int, n)
	for i := range values {
		values[i] = (i * 7) % d
	}
	key, err := ecies.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	return &recoveryWorld{
		fo:        fo,
		key:       key,
		reports:   ldp.RandomizeParallel(fo, values, seed, 0),
		bounds:    []int{perEpoch, 2 * perEpoch},
		totalEps:  perEps * epochs,
		perEps:    perEps,
		batchSize: 128,
	}
}

func (w *recoveryWorld) ledger(t *testing.T) *budget.Ledger {
	t.Helper()
	l, err := budget.NewLedger(
		composition.Guarantee{Eps: w.totalEps, Delta: 3e-9},
		composition.Guarantee{Eps: w.perEps, Delta: 1e-9},
		budget.Naive{},
	)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func (w *recoveryWorld) config(ledger *budget.Ledger, dir string, sync store.SyncPolicy) service.Config {
	return service.Config{
		FO: w.fo, Key: w.key, BatchSize: w.batchSize, ShuffleSeed: 5,
		Ledger: ledger, DataDir: dir, Sync: sync,
	}
}

// send pushes reports[from:to] through one connection and waits until
// the service has accepted all `to` frames.
func (w *recoveryWorld) send(t *testing.T, svc *service.Service, from, to int) {
	t.Helper()
	clientSide, serverSide := net.Pipe()
	if err := svc.Ingest(serverSide); err != nil {
		t.Fatal(err)
	}
	cl, err := service.NewClient(w.fo, w.key.Public(), nil, clientSide)
	if err != nil {
		t.Fatal(err)
	}
	for i := from; i < to; i++ {
		if err := cl.SendReport(w.reports[i]); err != nil {
			t.Fatalf("sending report %d: %v", i, err)
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	waitReceived(t, svc, int64(to))
}

// run drives the full workload on svc from its current position:
// rotations happen at the fixed boundaries, already-sealed epochs
// (svc.Epoch) are skipped, and the stream resumes at the durable
// Received count. Returns the drain snapshot.
func (w *recoveryWorld) run(t *testing.T, svc *service.Service) service.Snapshot {
	t.Helper()
	sent := int(svc.Snapshot().Received)
	for _, b := range w.bounds[svc.Epoch():] {
		if sent < b {
			w.send(t, svc, sent, b)
			sent = b
		}
		if _, err := svc.Rotate(); err != nil {
			t.Fatalf("rotating at %d reports: %v", b, err)
		}
	}
	if sent < len(w.reports) {
		w.send(t, svc, sent, len(w.reports))
	}
	snap, err := svc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// sameEstimates requires exact (bit-identical) equality.
func sameEstimates(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d estimates, want %d", label, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: estimate[%d] = %v, want %v (not bit-identical)", label, v, got[v], want[v])
		}
	}
}

// The crash-recovery conformance test: the same stream of reports cut
// into three epochs, hard-stopped at one or more points mid-stream,
// recovered, and finished — the final window estimate, per-epoch
// history, all-time drain estimate, and remaining privacy budget must
// be bit-identical to an uninterrupted run. Runs under -race in CI.
func TestCrashRecoveryConformance(t *testing.T) {
	w := newRecoveryWorld(t)

	// The uninterrupted reference: same workload, in-memory service.
	refLedger := w.ledger(t)
	ref, err := service.New(w.config(refLedger, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	refSnap := w.run(t, ref)
	refWin, err := ref.EstimateWindow(0)
	if err != nil {
		t.Fatal(err)
	}
	refHist := ref.History()

	cases := []struct {
		name  string
		sync  store.SyncPolicy
		kills []int
	}{
		{"early-epoch0-always", store.SyncAlways, []int{150}},
		{"mid-epoch1-batch", store.SyncBatch, []int{700}},
		{"double-crash-none", store.SyncNone, []int{400, 1300}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			svc, err := service.New(w.config(w.ledger(t), dir, tc.sync))
			if err != nil {
				t.Fatal(err)
			}
			var ledger *budget.Ledger
			for _, kill := range tc.kills {
				// Drive the workload up to the kill point, then pull
				// the plug.
				sent := int(svc.Snapshot().Received)
				for _, b := range w.bounds[svc.Epoch():] {
					if b >= kill {
						break
					}
					if sent < b {
						w.send(t, svc, sent, b)
						sent = b
					}
					if _, err := svc.Rotate(); err != nil {
						t.Fatal(err)
					}
				}
				if sent < kill {
					w.send(t, svc, sent, kill)
				}
				svc.Crash()

				// A restarted analyzer is a new process: fresh ledger
				// instance, state only from the data directory.
				ledger = w.ledger(t)
				svc, err = service.Recover(w.config(ledger, dir, tc.sync))
				if err != nil {
					t.Fatalf("recovering after crash at %d: %v", kill, err)
				}
				if got := int(svc.Snapshot().Received); got > kill {
					t.Fatalf("recovered Received = %d, beyond the %d reports ever sent", got, kill)
				}
			}
			snap := w.run(t, svc)

			sameEstimates(t, "all-time drain estimate", snap.Estimates, refSnap.Estimates)
			if snap.Reports != refSnap.Reports || snap.Received != refSnap.Received {
				t.Fatalf("drain reports/received = %d/%d, want %d/%d",
					snap.Reports, snap.Received, refSnap.Reports, refSnap.Received)
			}
			win, err := svc.EstimateWindow(0)
			if err != nil {
				t.Fatal(err)
			}
			if win.Epochs != refWin.Epochs || win.Reports != refWin.Reports {
				t.Fatalf("window covers %d epochs / %d reports, want %d / %d",
					win.Epochs, win.Reports, refWin.Epochs, refWin.Reports)
			}
			sameEstimates(t, "window estimate", win.Estimates, refWin.Estimates)
			hist := svc.History()
			if len(hist) != len(refHist) {
				t.Fatalf("%d sealed epochs, want %d", len(hist), len(refHist))
			}
			for i := range refHist {
				if hist[i].Epoch != refHist[i].Epoch || hist[i].Reports != refHist[i].Reports {
					t.Fatalf("epoch %d sealed with %d reports, want epoch %d with %d",
						hist[i].Epoch, hist[i].Reports, refHist[i].Epoch, refHist[i].Reports)
				}
				sameEstimates(t, "sealed epoch estimate", hist[i].Estimates, refHist[i].Estimates)
			}
			if got, want := ledger.Epochs(), refLedger.Epochs(); got != want {
				t.Fatalf("recovered ledger charged %d epochs, reference charged %d", got, want)
			}
			if got, want := ledger.Remaining(), refLedger.Remaining(); got != want {
				t.Fatalf("recovered remaining budget %+v, reference %+v (not bit-identical)", got, want)
			}
		})
	}
}

// A crash between the rotation marker and its checkpoint: the WAL
// tail ends with a rotate record whose seal never became a
// checkpoint. Recovery must replay the seal — charging the ledger
// exactly once and freezing the epoch into history — and re-write the
// lost checkpoint.
func TestRecoverReplaysInterruptedRotation(t *testing.T) {
	w := newRecoveryWorld(t)
	dir := t.TempDir()
	codec, err := service.NewCodec(w.fo)
	if err != nil {
		t.Fatal(err)
	}

	// Stage the directory exactly as a service that crashed right
	// after the shuffler wrote the marker: reports logged for epoch 0,
	// marker opening epoch 1, no checkpoint.
	st, err := store.Create(dir, store.Meta{Oracle: w.fo.Name(), Domain: w.fo.Domain()}, store.SyncBatch)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	agg := w.fo.NewAggregator()
	for _, rep := range w.reports[:n] {
		payload, err := codec.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := ecies.Encrypt(w.key.Public(), payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.AppendReport(0, ct); err != nil {
			t.Fatal(err)
		}
		agg.Add(rep)
	}
	if err := st.Rotate(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ledger := w.ledger(t)
	svc, err := service.Recover(w.config(ledger, dir, store.SyncBatch))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if got := svc.Epoch(); got != 1 {
		t.Fatalf("recovered open epoch %d, want 1", got)
	}
	// Epoch 0 charged at New plus the replayed rotation's charge.
	if got := ledger.Epochs(); got != 2 {
		t.Fatalf("recovered ledger charged %d epochs, want 2", got)
	}
	hist := svc.History()
	if len(hist) != 1 || hist[0].Epoch != 0 || hist[0].Reports != n {
		t.Fatalf("recovered history %+v, want epoch 0 sealed with %d reports", hist, n)
	}
	sameEstimates(t, "replayed epoch estimate", hist[0].Estimates, agg.Estimates())

	// The interrupted seal is re-durabilized: a checkpoint now exists.
	cks, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) == 0 {
		t.Fatal("recovery did not re-write the lost checkpoint")
	}
}

// Budget exhaustion must survive a restart: a recovered service whose
// ledger ran dry keeps refusing ingestion while staying queryable.
func TestRecoverExhaustedLedgerStillRefuses(t *testing.T) {
	w := newRecoveryWorld(t)
	dir := t.TempDir()

	// A ledger that affords exactly 2 epochs.
	twoEpochs := func() *budget.Ledger {
		l, err := budget.NewLedger(
			composition.Guarantee{Eps: 2 * w.perEps, Delta: 2e-9},
			composition.Guarantee{Eps: w.perEps, Delta: 1e-9},
			budget.Naive{},
		)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	svc, err := service.New(w.config(twoEpochs(), dir, store.SyncBatch))
	if err != nil {
		t.Fatal(err)
	}
	w.send(t, svc, 0, 200)
	if _, err := svc.Rotate(); err != nil {
		t.Fatal(err)
	}
	// A connection opened before exhaustion keeps sending afterwards:
	// its reports must be rejected, counted, and the count must be
	// durable.
	clientPre, serverPre := net.Pipe()
	if err := svc.Ingest(serverPre); err != nil {
		t.Fatal(err)
	}
	clPre, err := service.NewClient(w.fo, w.key.Public(), nil, clientPre)
	if err != nil {
		t.Fatal(err)
	}
	w.send(t, svc, 200, 400)
	if _, err := svc.Rotate(); err == nil || !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("third epoch rotated with err = %v, want ErrExhausted", err)
	}
	if !svc.Exhausted() {
		t.Fatal("service not exhausted after the refused rotation")
	}
	const lateSends = 7
	for i := 0; i < lateSends; i++ {
		if err := clPre.SendReport(w.reports[400+i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := clPre.Close(); err != nil {
		t.Fatal(err)
	}
	waitRejected(t, svc, lateSends)
	preHist := svc.History()
	svc.Crash()

	rec, err := service.Recover(w.config(twoEpochs(), dir, store.SyncBatch))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if !rec.Exhausted() {
		t.Fatal("recovered service lost the exhausted state")
	}
	clientSide, serverSide := net.Pipe()
	defer clientSide.Close()
	if err := rec.Ingest(serverSide); err == nil {
		t.Fatal("recovered exhausted service accepted a connection")
	}
	hist := rec.History()
	if len(hist) != len(preHist) {
		t.Fatalf("recovered %d sealed epochs, want %d", len(hist), len(preHist))
	}
	for i := range preHist {
		sameEstimates(t, "recovered sealed epoch", hist[i].Estimates, preHist[i].Estimates)
	}
	if win, err := rec.EstimateWindow(0); err != nil {
		t.Fatalf("recovered exhausted service not queryable: %v", err)
	} else if win.Epochs != 2 {
		t.Fatalf("recovered window covers %d epochs, want 2", win.Epochs)
	}
	snap := rec.Snapshot()
	if snap.Epoch != 1 {
		t.Fatalf("recovered snapshot reports epoch %d, want the sealed final epoch 1", snap.Epoch)
	}
	// The rejected count is durable: the drops were write-ahead logged
	// even though the exhausted service stopped checkpointing.
	if snap.Rejected != lateSends {
		t.Fatalf("recovered Rejected = %d, want the %d post-exhaustion drops", snap.Rejected, lateSends)
	}
}

// waitRejected blocks until the service has counted n rejected
// reports.
func waitRejected(t *testing.T, svc *service.Service, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for svc.Snapshot().Rejected < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d rejected reports (have %d)", n, svc.Snapshot().Rejected)
		}
		time.Sleep(time.Millisecond)
	}
}

// A WAL whose final record was torn mid-write (the crash hit inside a
// disk write) recovers cleanly to the last whole record.
func TestRecoverTornWALRecord(t *testing.T) {
	w := newRecoveryWorld(t)
	dir := t.TempDir()
	svc, err := service.New(w.config(nil, dir, store.SyncBatch))
	if err != nil {
		t.Fatal(err)
	}
	w.send(t, svc, 0, 100)
	svc.Crash()

	// Tear the tail: append a record fragment — a length prefix
	// claiming more bytes than follow.
	segs, err := filepath.Glob(filepath.Join(dir, "*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments found: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 200, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rec, err := service.Recover(w.config(nil, dir, store.SyncBatch))
	if err != nil {
		t.Fatalf("recovery failed on a torn tail: %v", err)
	}
	got := int(rec.Snapshot().Received)
	if got > 100 {
		t.Fatalf("recovered %d reports, more than the %d ever sent", got, 100)
	}
	// The recovered service keeps working: resume the stream at the
	// durable prefix and finish — the drained estimate must be
	// bit-identical to an offline aggregation of all 100 reports.
	w.send(t, rec, got, 100)
	snap, err := rec.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Reports != 100 {
		t.Fatalf("drained %d reports after resume, want 100", snap.Reports)
	}
	offline := w.fo.NewAggregator()
	for _, rep := range w.reports[:100] {
		offline.Add(rep)
	}
	sameEstimates(t, "resumed stream estimate", snap.Estimates, offline.Estimates())
}

// A checkpoint from a future format version is a clean, descriptive
// refusal — never a partial load, never a panic.
func TestRecoverFutureCheckpointVersion(t *testing.T) {
	w := newRecoveryWorld(t)
	dir := t.TempDir()
	svc, err := service.New(w.config(w.ledger(t), dir, store.SyncBatch))
	if err != nil {
		t.Fatal(err)
	}
	w.send(t, svc, 0, 100)
	if _, err := svc.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Drain(); err != nil {
		t.Fatal(err)
	}

	cks, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil || len(cks) == 0 {
		t.Fatalf("no checkpoint found: %v", err)
	}
	data, err := os.ReadFile(cks[len(cks)-1])
	if err != nil {
		t.Fatal(err)
	}
	data[4] += 7 // the version byte follows the 4-byte magic
	if err := os.WriteFile(cks[len(cks)-1], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := service.Recover(w.config(w.ledger(t), dir, store.SyncBatch)); !errors.Is(err, store.ErrFutureVersion) {
		t.Fatalf("future checkpoint recovered with err = %v, want store.ErrFutureVersion", err)
	}
}

// New must refuse a data directory that already holds state — losing
// a run to a typo'd restart would be unrecoverable.
func TestNewRefusesExistingState(t *testing.T) {
	w := newRecoveryWorld(t)
	dir := t.TempDir()
	svc, err := service.New(w.config(nil, dir, store.SyncBatch))
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if _, err := service.New(w.config(nil, dir, store.SyncBatch)); !errors.Is(err, store.ErrExists) {
		t.Fatalf("New over existing state: err = %v, want store.ErrExists", err)
	}
}

// The Snapshot/Rotate race: a Snapshot that loads the epoch pointer
// just as a Rotate seals it must never observe (or corrupt) a
// half-sealed epoch. Sealed estimates are frozen, so any snapshot of
// a sealed epoch must exactly equal its history entry. Run with -race.
func TestSnapshotDuringRotate(t *testing.T) {
	w := newRecoveryWorld(t)
	svc, err := service.New(service.Config{
		FO: w.fo, Key: w.key, BatchSize: 32, ShuffleSeed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := svc.Snapshot()
				if snap.Reports < 0 {
					t.Error("negative report count")
					return
				}
				_, _ = svc.EstimateWindow(0)
				_ = svc.History()
			}
		}()
	}

	sent := 0
	for e := 0; e < 6; e++ {
		w.send(t, svc, sent, sent+120)
		sent += 120
		snap, err := svc.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		hist := svc.History()
		last := hist[len(hist)-1]
		if last.Epoch != snap.Epoch || last.Reports != snap.Reports {
			t.Fatalf("seal returned epoch %d/%d reports but history holds %d/%d",
				snap.Epoch, snap.Reports, last.Epoch, last.Reports)
		}
		sameEstimates(t, "sealed epoch vs history", snap.Estimates, last.Estimates)
	}
	close(stop)
	wg.Wait()
	if _, err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	if win, err := svc.EstimateWindow(0); err != nil {
		t.Fatal(err)
	} else if win.Reports != sent {
		t.Fatalf("window covers %d reports, want %d", win.Reports, sent)
	}
}

// Recovering a gracefully drained directory opens the next epoch —
// which the drain never charged — and must spend exactly one more
// guarantee for it: the epoch count across drain/recover cycles must
// equal the epochs that actually collected data, never one less (the
// uncharged-open-epoch accounting hole this test pins shut).
func TestRecoverAfterDrainChargesOpenEpoch(t *testing.T) {
	w := newRecoveryWorld(t)
	dir := t.TempDir()
	svc, err := service.New(w.config(w.ledger(t), dir, store.SyncBatch))
	if err != nil {
		t.Fatal(err)
	}
	w.send(t, svc, 0, 200)
	if _, err := svc.Drain(); err != nil {
		t.Fatal(err)
	}

	// Restart: epoch 1 opens and must cost the second of the ledger's
	// three epochs.
	ledger := w.ledger(t)
	svc, err = service.Recover(w.config(ledger, dir, store.SyncBatch))
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Epoch(); got != 1 {
		t.Fatalf("recovered open epoch %d, want 1", got)
	}
	if got := ledger.Epochs(); got != 2 {
		t.Fatalf("ledger charged %d epochs after drain+recover, want 2 (epoch 0 and the newly opened epoch 1)", got)
	}
	w.send(t, svc, 200, 400)
	if _, err := svc.Drain(); err != nil {
		t.Fatal(err)
	}

	// Third cycle exhausts the 3-epoch budget; a fourth must recover
	// exhausted instead of collecting uncharged data.
	ledger = w.ledger(t)
	svc, err = service.Recover(w.config(ledger, dir, store.SyncBatch))
	if err != nil {
		t.Fatal(err)
	}
	if got := ledger.Epochs(); got != 3 {
		t.Fatalf("ledger charged %d epochs after second recover, want 3", got)
	}
	w.send(t, svc, 400, 600)
	if _, err := svc.Drain(); err != nil {
		t.Fatal(err)
	}

	ledger = w.ledger(t)
	svc, err = service.Recover(w.config(ledger, dir, store.SyncBatch))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if !svc.Exhausted() {
		t.Fatal("fourth drain/recover cycle did not exhaust the 3-epoch budget")
	}
	clientSide, serverSide := net.Pipe()
	defer clientSide.Close()
	if err := svc.Ingest(serverSide); err == nil {
		t.Fatal("exhausted recovered service accepted a connection")
	}
	if hist := svc.History(); len(hist) != 3 {
		t.Fatalf("recovered %d sealed epochs, want 3", len(hist))
	}
}
