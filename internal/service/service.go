// Package service is the concurrent streaming face of the basic
// shuffle model (Figure 1): a long-running ingestion tier that accepts
// framed, ECIES-encrypted reports from many client connections at
// once, batches and shuffles them, and folds the decrypted reports
// into mergeable per-worker aggregators so the running histogram is
// available at any point mid-stream.
//
// Pipeline stages, each a bounded queue ahead of it (backpressure
// propagates from a slow stage back to the clients' writes):
//
//	conn readers  --intake-->  shuffler  --batches-->  workers
//	(one per conn)             (batch +                (decrypt,
//	                            permute)                decode, Add)
//
// The shuffler stage permutes every fixed-size batch before any worker
// sees it, so the linkage between an arrival (which connection, which
// position) and a decrypted report is broken batch by batch — the
// streaming analogue of netproto.Shuffler's collect-all-then-permute.
// Note the privacy unit is the batch: an adversarial server observing
// worker order learns which batch (of BatchSize reports) a report came
// from, the anonymity-set granularity the deployment chooses with
// Config.BatchSize.
//
// Aggregation relies on PR 1's mergeable aggregators: every oracle
// accumulates exactly representable integer statistics, so the merged
// estimates are bit-identical to a sequential pass over the same
// reports in any order, at any worker count, for any batch boundary.
package service

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
	"shuffledp/internal/transport"
)

// Party names used for transport.Meter accounting, matching the rows
// of the paper's Table III.
const (
	PartyUsers    = "users"
	PartyShuffler = "shuffler"
	PartyServer   = "server"
)

// DefaultBatchSize is the shuffle-batch size when Config.BatchSize is
// zero: large enough that a batch is a meaningful anonymity set, small
// enough that snapshots stay fresh under light traffic.
const DefaultBatchSize = 512

// Config parameterizes a Service.
type Config struct {
	// FO is the frequency oracle every client reports through.
	FO ldp.FrequencyOracle
	// Key decrypts the end-to-end encrypted reports (the analysis
	// server's role).
	Key *ecies.PrivateKey
	// BatchSize is the number of reports shuffled together before any
	// worker may decrypt them. 0 means DefaultBatchSize.
	BatchSize int
	// Workers is the decrypt/aggregate pool size. <1 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds how many shuffled batches may wait for workers
	// before the shuffler (and transitively the clients) block. 0 means
	// 2 * Workers.
	QueueDepth int
	// ShuffleSeed drives the batch permutations.
	ShuffleSeed uint64
	// Meter, when non-nil, accounts bytes and CPU to users/shuffler/
	// server.
	Meter *transport.Meter
}

// Snapshot is the service's state at one instant.
type Snapshot struct {
	// Estimates is the calibrated frequency estimate over the reports
	// aggregated so far (all zeros before any report lands).
	Estimates []float64
	// Reports is how many reports Estimates covers.
	Reports int
	// Received is how many report frames the readers have accepted;
	// Received - Reports is the in-flight backlog.
	Received int64
	// Batches is how many shuffled batches have been forwarded to the
	// workers.
	Batches int64
}

// Service is a running ingestion pipeline. Create with New, feed it
// connections with Serve or Ingest, read the live estimate with
// Snapshot, and finish with Drain (graceful) or Close (abort).
type Service struct {
	cfg   Config
	codec *Codec

	intake  chan []byte   // ciphertext frames, readers -> shuffler
	batches chan [][]byte // shuffled batches, shuffler -> workers

	stop     chan struct{}
	stopOnce sync.Once
	draining atomic.Bool

	conns      sync.WaitGroup // active connection readers
	shufflerWG sync.WaitGroup
	workerWG   sync.WaitGroup

	mu        sync.Mutex
	listeners []net.Listener
	active    map[net.Conn]struct{}
	firstErr  error

	workers []*worker
	rootMu  sync.Mutex
	root    ldp.Aggregator

	received atomic.Int64
	shuffled atomic.Int64

	drainOnce sync.Once
	drainSnap Snapshot
	drainErr  error
}

// worker owns one shard aggregator. The mutex is held while a batch is
// folded in and while Snapshot swaps the aggregator out.
type worker struct {
	mu  sync.Mutex
	agg ldp.Aggregator
}

// New validates cfg, starts the shuffler and worker stages, and
// returns the running (but not yet listening) service.
func New(cfg Config) (*Service, error) {
	if cfg.FO == nil {
		return nil, errors.New("service: config needs a frequency oracle")
	}
	if cfg.Key == nil {
		return nil, errors.New("service: config needs the server's private key")
	}
	codec, err := NewCodec(cfg.FO)
	if err != nil {
		return nil, err
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	cfg.Workers = ldp.Workers(cfg.Workers)
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}

	s := &Service{
		cfg:   cfg,
		codec: codec,
		// One batch of intake slack keeps readers and the shuffler
		// decoupled; beyond that, readers block and the clients feel
		// backpressure through their connection writes.
		intake:  make(chan []byte, cfg.BatchSize),
		batches: make(chan [][]byte, cfg.QueueDepth),
		stop:    make(chan struct{}),
		root:    cfg.FO.NewAggregator(),
	}
	s.workers = make([]*worker, cfg.Workers)
	for i := range s.workers {
		s.workers[i] = &worker{agg: cfg.FO.NewAggregator()}
	}

	s.shufflerWG.Add(1)
	go s.runShuffler()
	for _, w := range s.workers {
		s.workerWG.Add(1)
		go s.runWorker(w)
	}
	return s, nil
}

// Serve accepts connections from ln and ingests each until ln is
// closed (Drain and Close close every listener handed to Serve).
func (s *Service) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		ln.Close()
		return errors.New("service: draining")
	}
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		_ = s.Ingest(conn)
	}
}

// Ingest registers one established connection: a reader goroutine
// consumes its report frames until the peer closes (EOF is the
// client's "done"). Drain waits for every ingested connection.
//
// The draining check and the registration are one critical section:
// Drain flips draining under the same mutex, so once Drain proceeds to
// conns.Wait no connection can slip in behind it (whose reader would
// outlive the wait and write to the closed intake channel).
func (s *Service) Ingest(conn net.Conn) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		conn.Close()
		return errors.New("service: draining")
	}
	if s.active == nil {
		s.active = make(map[net.Conn]struct{})
	}
	s.active[conn] = struct{}{}
	s.conns.Add(1)
	s.mu.Unlock()
	if s.stopped() {
		// Close raced with Ingest: drop the connection rather than
		// leaving a reader Drain would wait on forever.
		s.conns.Done()
		s.forget(conn)
		conn.Close()
		return errors.New("service: closed")
	}
	go s.readConn(conn)
	return nil
}

func (s *Service) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.active, conn)
	s.mu.Unlock()
}

func (s *Service) readConn(conn net.Conn) {
	defer s.conns.Done()
	defer s.forget(conn)
	defer conn.Close()
	for {
		frame, err := transport.ReadFrame(conn)
		if err != nil {
			if errors.Is(err, io.EOF) || s.stopped() {
				return
			}
			s.fail(fmt.Errorf("service: read report frame: %w", err))
			return
		}
		s.cfg.Meter.Send(PartyUsers, PartyShuffler, len(frame))
		select {
		case s.intake <- frame:
			s.received.Add(1)
		case <-s.stop:
			return
		}
	}
}

// runShuffler buffers ciphertexts into BatchSize batches, permutes
// each, and forwards it to the worker queue. The partial final batch
// is flushed when the intake closes (graceful drain).
func (s *Service) runShuffler() {
	defer s.shufflerWG.Done()
	defer close(s.batches)
	r := rng.New(s.cfg.ShuffleSeed)
	buf := make([][]byte, 0, s.cfg.BatchSize)
	flush := func() {
		if len(buf) == 0 {
			return
		}
		r.Shuffle(len(buf), func(i, j int) {
			buf[i], buf[j] = buf[j], buf[i]
		})
		batch := make([][]byte, len(buf))
		copy(batch, buf)
		buf = buf[:0]
		n := 0
		for _, ct := range batch {
			n += len(ct)
		}
		select {
		case s.batches <- batch:
			s.shuffled.Add(1)
			s.cfg.Meter.Send(PartyShuffler, PartyServer, n)
		case <-s.stop:
		}
	}
	for {
		select {
		case ct, ok := <-s.intake:
			if !ok {
				flush()
				return
			}
			buf = append(buf, ct)
			if len(buf) >= s.cfg.BatchSize {
				flush()
			}
		case <-s.stop:
			return
		}
	}
}

// runWorker decrypts and decodes each batch and folds it into the
// worker's shard aggregator. Corrupt reports are dropped and surfaced
// as the service error rather than silently mis-estimating.
func (s *Service) runWorker(w *worker) {
	defer s.workerWG.Done()
	for batch := range s.batches {
		start := time.Now()
		reports := make([]ldp.Report, 0, len(batch))
		for _, ct := range batch {
			pt, err := ecies.Decrypt(s.cfg.Key, ct)
			if err != nil {
				s.fail(fmt.Errorf("service: decrypt report: %w", err))
				continue
			}
			rep, err := s.codec.Unmarshal(pt)
			if err != nil {
				s.fail(err)
				continue
			}
			reports = append(reports, rep)
		}
		w.mu.Lock()
		for _, rep := range reports {
			w.agg.Add(rep)
		}
		w.mu.Unlock()
		s.cfg.Meter.AddCPU(PartyServer, time.Since(start))
	}
}

// Snapshot returns the current estimate without stopping ingestion:
// each worker's shard aggregator is swapped for a fresh one and merged
// into the root, so the snapshot is a consistent prefix of the stream
// and costs the workers only the swap, never a full recompute.
func (s *Service) Snapshot() Snapshot {
	s.rootMu.Lock()
	defer s.rootMu.Unlock()
	for _, w := range s.workers {
		w.mu.Lock()
		if w.agg.Count() > 0 {
			full := w.agg
			w.agg = s.cfg.FO.NewAggregator()
			s.root.Merge(full)
		}
		w.mu.Unlock()
	}
	return Snapshot{
		Estimates: s.root.Estimates(),
		Reports:   s.root.Count(),
		Received:  s.received.Load(),
		Batches:   s.shuffled.Load(),
	}
}

// Drain gracefully shuts the pipeline down: stop accepting, wait for
// every ingested connection to close, flush the partial batch, wait
// for the workers, and return the final snapshot. The returned error
// is the first failure observed anywhere in the pipeline (a run with a
// corrupt or undecryptable report is not silently trusted).
func (s *Service) Drain() (Snapshot, error) {
	s.drainOnce.Do(func() {
		// Under mu so the flip is atomic with Ingest's check-and-register:
		// after this section, every registered reader is counted in conns.
		s.mu.Lock()
		s.draining.Store(true)
		s.mu.Unlock()
		s.closeListeners()
		s.conns.Wait()
		close(s.intake)
		s.shufflerWG.Wait()
		s.workerWG.Wait()
		s.drainSnap = s.Snapshot()
		s.drainErr = s.Err()
	})
	return s.drainSnap, s.drainErr
}

// Close aborts the pipeline: listeners and active connections close,
// readers, shuffler, and workers exit at the next opportunity,
// in-flight reports may be dropped. Safe to call after Drain (it is
// then a no-op).
func (s *Service) Close() error {
	s.mu.Lock()
	s.draining.Store(true)
	s.mu.Unlock()
	s.closeListeners()
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	for conn := range s.active {
		conn.Close()
	}
	s.mu.Unlock()
	return nil
}

// Err returns the first pipeline failure, if any.
func (s *Service) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}

func (s *Service) fail(err error) {
	s.mu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.mu.Unlock()
}

func (s *Service) closeListeners() {
	s.mu.Lock()
	lns := s.listeners
	s.listeners = nil
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
}

func (s *Service) stopped() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}
