// Package service is the concurrent streaming face of the basic
// shuffle model (Figure 1): a long-running ingestion tier that accepts
// framed, end-to-end encrypted reports from many client connections at
// once, batches and shuffles them, and folds the decrypted reports
// into mergeable per-worker aggregators so the running histogram is
// available at any point mid-stream.
//
// Pipeline stages, each a bounded queue ahead of it (backpressure
// propagates from a slow stage back to the clients' writes):
//
//	conn readers  --intake-->  shuffler  --batches-->  decrypt  --decoded-->  aggregate
//	(one per conn,             (batch +                (ECIES or              (shard
//	 session open)              permute)                decode)                Add)
//
// # Wire protocols
//
// A connection speaks one of two protocols, decided by its first
// frame (see readConn). The session protocol — the default client —
// pays one ECIES-grade handshake (ecies.NewClientSession) when it
// connects and then streams batches of reports sealed under a
// per-connection AES-GCM key with a strict monotonic frame counter:
// per-report crypto cost collapses from an ECDH exchange to a slice
// of one AEAD open. The legacy protocol encrypts every report
// individually under full ECIES; it remains fully supported for old
// clients, and conformance tests pin both protocols to bit-identical
// estimates. DESIGN.md ("Session wire protocol") specifies the
// handshake transcript, nonce discipline, and downgrade rules.
//
// The shuffler stage permutes every fixed-size batch before any worker
// sees it, so the linkage between an arrival (which connection, which
// position) and a decrypted report is broken batch by batch — the
// streaming analogue of netproto.Shuffler's collect-all-then-permute.
// Note the privacy unit is the batch: an adversarial server observing
// worker order learns which batch (of BatchSize reports) a report came
// from, the anonymity-set granularity the deployment chooses with
// Config.BatchSize.
//
// # Epochs
//
// The paper analyzes one collection round; a deployed service
// re-collects the same population every epoch, so the tier is epochal:
// the stream is cut into epochs, each owning its own shard-aggregator
// set and a fresh shuffle-RNG substream. Rotate seals the open epoch —
// freezing its estimate into History — and opens the next; sealed
// epochs answer sliding-window queries through EstimateWindow, which
// clone-merges their aggregators. A budget.Ledger composes the
// per-epoch (eps, delta) loss across rotations (naive or advanced
// composition) and, once the configured total budget is exhausted, the
// service refuses further ingestion while staying queryable. Report
// frames carry the epoch id the client asserts (transport tagged
// frames); EpochCurrent means "whatever is open", and reports
// asserting a closed epoch are dropped and counted rather than
// silently folded into the wrong round.
//
// Aggregation relies on PR 1's mergeable aggregators: every oracle
// accumulates exactly representable integer statistics, so the merged
// estimates are bit-identical to a sequential pass over the same
// reports in any order, at any worker count, for any batch boundary —
// and, with epochs, for any rotation boundary once the epochs are
// merged back together.
package service

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"shuffledp/internal/budget"
	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/pipeline"
	"shuffledp/internal/store"
	"shuffledp/internal/transport"
)

// Party names used for transport.Meter accounting, matching the rows
// of the paper's Table III.
const (
	PartyUsers    = "users"
	PartyShuffler = "shuffler"
	PartyServer   = "server"
)

// DefaultBatchSize is the shuffle-batch size when Config.BatchSize is
// zero: large enough that a batch is a meaningful anonymity set, small
// enough that snapshots stay fresh under light traffic.
const DefaultBatchSize = 512

// DefaultMaxFrame is the per-connection frame cap when Config.MaxFrame
// is zero: comfortably above any real hello, report, or batch frame,
// far below transport.MaxFrameSize's 1 GiB defensive ceiling — a
// client claiming more is kicked, not honored.
const DefaultMaxFrame = 4 << 20

// DefaultClientBatch is the session client's reports-per-frame when
// NewSessionClient is given a batch size of zero: large enough to
// amortize framing and AEAD costs, small enough that a flush stays
// well under DefaultMaxFrame for every oracle in the repo.
const DefaultClientBatch = 256

// SessionHelloTag is the frame tag of a session hello — the tag a
// session client stamps on the FIRST frame of a connection. The
// service decides the connection's protocol by that first frame alone:
// this tag starts a session handshake, anything else is a legacy
// per-report ECIES stream (the tag is then the epoch id, and epoch
// ids count up from zero, far from this magic). A hello tag on any
// later frame is not special — downgrade or upgrade mid-connection is
// impossible by construction.
const SessionHelloTag = 0x53445031 // "SDP1"

// rejectedLogCap bounds how many post-exhaustion rejected drops are
// write-ahead logged (~14 bytes each, so about 2 MiB of WAL at the
// cap). An exhausted service never checkpoints again, so these
// records are never pruned; beyond the cap drops are still counted
// in-memory but no longer durable.
const rejectedLogCap = 1 << 17

// Config parameterizes a Service.
type Config struct {
	// FO is the frequency oracle every client reports through.
	FO ldp.FrequencyOracle
	// Key decrypts the end-to-end encrypted reports (the analysis
	// server's role).
	Key *ecies.PrivateKey
	// BatchSize is the number of reports shuffled together before any
	// worker may decrypt them. 0 means DefaultBatchSize.
	BatchSize int
	// Workers is the aggregate pool size. <1 means GOMAXPROCS.
	Workers int
	// DecryptWorkers sizes the decrypt/decode pool independently from
	// the aggregate pool: decryption is the expensive stage for legacy
	// per-report ECIES traffic but near-free for session batches, so
	// the two stages scale separately. <1 means Workers.
	DecryptWorkers int
	// QueueDepth bounds how many shuffled batches may wait for workers
	// before the shuffler (and transitively the clients) block. 0 means
	// 2 * Workers.
	QueueDepth int
	// ShuffleSeed drives the batch permutations; each epoch shuffles
	// from its own substream of it.
	ShuffleSeed uint64
	// Meter, when non-nil, accounts bytes and CPU to users/shuffler/
	// server.
	Meter *transport.Meter

	// IdleTimeout bounds the silence a connection reader tolerates
	// between report frames. A client that stalls past it is
	// disconnected (and counted in Snapshot.IdleClosed) instead of
	// pinning its reader goroutine — and, transitively, Drain —
	// forever. 0 means no bound, the pre-PR-5 behavior.
	IdleTimeout time.Duration

	// MaxFrame caps a single report frame's length prefix. A
	// connection claiming a larger frame is kicked — closed and
	// counted in Snapshot.Kicked — before any payload byte is read,
	// so one hostile length prefix can neither fail the service nor
	// balloon its memory. 0 means DefaultMaxFrame.
	MaxFrame int

	// Ledger, when non-nil, is charged one per-epoch guarantee every
	// time an epoch opens (including epoch 0 at New). Once it refuses,
	// the service seals the open epoch at the next Rotate and rejects
	// ingestion from then on.
	Ledger *budget.Ledger
	// EpochReports, when > 0, auto-rotates once the open epoch has
	// accepted at least this many reports (rotation happens at a
	// shuffle-batch boundary, so epochs run a partial batch long).
	// 0 means epochs rotate only through explicit Rotate calls.
	EpochReports int
	// WindowRetain bounds how many sealed epochs are kept for
	// History/EstimateWindow; older epochs are dropped (their reports
	// remain in the all-time drain estimate). 0 retains every epoch.
	WindowRetain int

	// DataDir, when non-empty, makes the service durable: accepted
	// report frames are write-ahead logged before any worker
	// aggregates them, and every epoch seal writes a checkpoint, so a
	// crashed service restarts with Recover to a state bit-identical
	// to an uninterrupted run (DESIGN.md §8). New requires the
	// directory to hold no prior state — recovering over it is
	// Recover's job, never an accident.
	DataDir string
	// Sync is the WAL fsync policy (store.SyncBatch when zero).
	// Rotation markers and checkpoints are always fsynced.
	Sync store.SyncPolicy
}

// Snapshot is the service's state at one instant.
type Snapshot struct {
	// Estimates is the calibrated frequency estimate over the open
	// epoch's reports so far (all epochs merged when returned by
	// Drain; all zeros before any report lands).
	Estimates []float64
	// Reports is how many reports Estimates covers.
	Reports int
	// Received is how many report frames are in the pipeline or
	// aggregated: frames the readers accepted minus frames later
	// dropped (those move to Late or Rejected instead, the three
	// counters are disjoint). Received is cumulative across epochs
	// while Reports covers the open epoch only, so mid-stream the
	// in-flight backlog is Received minus Reports minus the reports
	// already sealed into History; in a Drain snapshot (all epochs
	// merged) it is simply Received - Reports.
	Received int64
	// Batches is how many shuffled batches have been forwarded to the
	// workers (across all epochs).
	Batches int64
	// Epoch is the open epoch's id (the last epoch's id once the
	// budget is exhausted).
	Epoch int
	// Late counts reports dropped because they asserted an epoch that
	// is not the open one.
	Late int64
	// Rejected counts reports dropped after the budget ledger
	// exhausted.
	Rejected int64
	// IdleClosed counts connections dropped for staying silent past
	// Config.IdleTimeout. Reports those connections delivered before
	// stalling were accepted normally; the counter is in-memory only
	// (an operator signal, not part of the durable stream accounting).
	IdleClosed int64
	// Kicked counts connections dropped for a protocol violation: a
	// frame past Config.MaxFrame, a malformed session hello, or a
	// session frame that failed authentication or arrived out of
	// sequence. Reports the connection delivered before violating
	// were accepted normally; like IdleClosed the counter is
	// in-memory only.
	Kicked int64
}

// taggedReport is one ciphertext frame with the epoch id its sender
// asserted.
type taggedReport struct {
	epoch uint32
	ct    []byte
}

// epochBatch is one shuffled batch routed to the epoch that was open
// when it was flushed. Items are either legacy ECIES ciphertexts
// (codec.Size() + ecies.Overhead bytes) or already-decrypted session
// records (exactly codec.Size() bytes); the two lengths can never
// coincide, so the decrypt stage discriminates by length alone.
type epochBatch struct {
	ep  *epochState
	cts [][]byte
}

// decodedBatch is one batch past the decrypt/decode stage, headed for
// an aggregate worker. The reports slice is pool-owned: the aggregate
// worker returns it after folding.
type decodedBatch struct {
	ep      *epochState
	reports *[]ldp.Report
}

// Service is a running ingestion pipeline. Create with New, feed it
// connections with Serve or Ingest, read the live estimate with
// Snapshot, cut the stream into collection rounds with Rotate (or
// Config.EpochReports), query rounds with History and EstimateWindow,
// and finish with Drain (graceful) or Close (abort).
type Service struct {
	cfg   Config
	codec *Codec

	intake  chan taggedReport // report items, readers -> shuffler
	batches chan epochBatch   // shuffled batches, shuffler -> decrypt pool
	decoded chan decodedBatch // decoded batches, decrypt pool -> aggregate pool

	stop     chan struct{}
	stopOnce sync.Once
	draining atomic.Bool

	conns        sync.WaitGroup // active connection readers
	shufflerPool pipeline.Pool  // the single batch-shuffler stage goroutine
	decryptPool  pipeline.Pool  // decrypt/decode stage workers
	workerPool   pipeline.Pool  // aggregate stage workers

	// reportsPool recycles the decoded-report slices that flow between
	// the decrypt and aggregate stages, so steady-state ingestion
	// allocates per batch, not per report.
	reportsPool sync.Pool

	// sealer re-encrypts session reports for the WAL (their wire
	// framing is under a connection-ephemeral key recovery could never
	// re-derive). Nil for an in-memory service.
	sealer *ecies.StorageSealer

	mu        sync.Mutex
	listeners []net.Listener
	active    map[net.Conn]struct{}
	firstErr  error

	// cur is the open epoch (stays on the last epoch once exhausted).
	cur       atomic.Pointer[epochState]
	exhausted atomic.Bool

	// rotateMu serializes Rotate and Drain's final seal.
	rotateMu     sync.Mutex
	rotateCh     chan rotateReq
	rotateHint   chan struct{}
	rotatorWG    sync.WaitGroup
	shufflerDone chan struct{}
	drainStart   chan struct{}

	histMu  sync.Mutex
	history []epochRecord

	allMu   sync.Mutex
	allTime ldp.Aggregator

	// st is the durability layer, nil for an in-memory service. wal is
	// the shuffler-owned durable-counter mirror (Recover seeds it
	// before the shuffler starts).
	st  *store.Store
	wal walCounters

	received   atomic.Int64
	shuffled   atomic.Int64
	late       atomic.Int64
	rejected   atomic.Int64
	idleClosed atomic.Int64
	kicked     atomic.Int64

	drainOnce sync.Once
	drainSnap Snapshot
	drainErr  error
}

// New validates cfg, charges the ledger for epoch 0, opens the data
// directory when the service is durable, starts the shuffler and
// worker stages, and returns the running (but not yet listening)
// service.
func New(cfg Config) (*Service, error) {
	s, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	if s.cfg.Ledger != nil {
		if err := s.cfg.Ledger.Charge(); err != nil {
			return nil, fmt.Errorf("service: charging epoch 0: %w", err)
		}
	}
	if s.cfg.DataDir != "" {
		st, err := store.Create(s.cfg.DataDir, s.storeMeta(), s.cfg.Sync)
		if err != nil {
			if errors.Is(err, store.ErrExists) {
				return nil, fmt.Errorf("service: %w (restart it with Recover instead of New)", err)
			}
			return nil, err
		}
		s.st = st
		if s.sealer, err = ecies.NewStorageSealer(s.cfg.Key); err != nil {
			st.Close()
			return nil, err
		}
	}
	s.cur.Store(newEpochState(0, s.cfg.FO, s.cfg.Workers))
	s.start()
	return s, nil
}

// prepare validates and normalizes cfg and builds the service shell:
// channels and the all-time aggregate, but no epoch, no ledger charge,
// no store, and no goroutines. New and Recover share it and differ
// only in how they produce the initial state.
func prepare(cfg Config) (*Service, error) {
	if cfg.FO == nil {
		return nil, errors.New("service: config needs a frequency oracle")
	}
	if cfg.Key == nil {
		return nil, errors.New("service: config needs the server's private key")
	}
	codec, err := NewCodec(cfg.FO)
	if err != nil {
		return nil, err
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	cfg.Workers = ldp.Workers(cfg.Workers)
	if cfg.DecryptWorkers <= 0 {
		cfg.DecryptWorkers = cfg.Workers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	batchSize := cfg.BatchSize
	s := &Service{
		cfg:   cfg,
		codec: codec,
		// One batch of intake slack keeps readers and the shuffler
		// decoupled; beyond that, readers block and the clients feel
		// backpressure through their connection writes.
		intake:       make(chan taggedReport, cfg.BatchSize),
		batches:      make(chan epochBatch, cfg.QueueDepth),
		decoded:      make(chan decodedBatch, cfg.QueueDepth),
		stop:         make(chan struct{}),
		rotateCh:     make(chan rotateReq),
		rotateHint:   make(chan struct{}, 1),
		shufflerDone: make(chan struct{}),
		drainStart:   make(chan struct{}),
		allTime:      cfg.FO.NewAggregator(),
	}
	s.reportsPool.New = func() any {
		sl := make([]ldp.Report, 0, batchSize)
		return &sl
	}
	return s, nil
}

// storeMeta is the configuration fingerprint stamped into checkpoints.
func (s *Service) storeMeta() store.Meta {
	return store.Meta{Oracle: s.cfg.FO.Name(), Domain: s.cfg.FO.Domain()}
}

// start launches the pipeline goroutines over the already-installed
// current epoch.
func (s *Service) start() {
	s.shufflerPool.Go(1, func(int) { s.runShuffler() })
	s.decryptPool.Go(s.cfg.DecryptWorkers, s.runDecryptWorker)
	// The decoded queue closes exactly when the decrypt stage exits —
	// on drain (batches closed by the shuffler) and abort (stop) alike
	// — so the aggregate workers always terminate.
	go func() {
		s.decryptPool.Wait()
		close(s.decoded)
	}()
	s.workerPool.Go(s.cfg.Workers, s.runWorker)
	if s.cfg.EpochReports > 0 {
		s.rotatorWG.Add(1)
		go s.runRotator()
	}
}

// Serve accepts connections from ln and ingests each until ln is
// closed (Drain and Close close every listener handed to Serve).
// Serve accepts connections from ln and ingests each until the
// listener closes (Drain and Close close registered listeners, which
// makes Serve return nil).
//
// Drain waits only for connections Serve has already accepted: a
// connection still sitting in the listener's backlog at the cutoff is
// discarded with whatever frames it carried. A client that writes its
// frames into kernel buffers and disconnects — cheap with the batched
// session protocol — can therefore outrun the accept loop. Callers
// coordinating a fixed workload should wait until Snapshot accounts
// for every frame (as cmd/shuffled does) before draining.
func (s *Service) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		ln.Close()
		return errors.New("service: draining")
	}
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		_ = s.Ingest(conn)
	}
}

// Ingest registers one established connection: a reader goroutine
// consumes its report frames until the peer closes (EOF is the
// client's "done"). Drain waits for every ingested connection. An
// exhausted budget refuses the connection.
//
// The draining check and the registration are one critical section:
// Drain flips draining under the same mutex, so once Drain proceeds to
// conns.Wait no connection can slip in behind it (whose reader would
// outlive the wait and write to the closed intake channel).
func (s *Service) Ingest(conn net.Conn) error {
	if s.exhausted.Load() {
		conn.Close()
		return fmt.Errorf("service: refusing connection: %w", budget.ErrExhausted)
	}
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		conn.Close()
		return errors.New("service: draining")
	}
	if s.active == nil {
		s.active = make(map[net.Conn]struct{})
	}
	s.active[conn] = struct{}{}
	s.conns.Add(1)
	s.mu.Unlock()
	if s.stopped() {
		// Close raced with Ingest: drop the connection rather than
		// leaving a reader Drain would wait on forever.
		s.conns.Done()
		s.forget(conn)
		conn.Close()
		return errors.New("service: closed")
	}
	go s.readConn(conn)
	return nil
}

func (s *Service) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.active, conn)
	s.mu.Unlock()
}

// errStopIngest is the reader sentinel for "the service is stopping":
// the loop ends, but the connection did not fail.
var errStopIngest = errors.New("service: stopping")

// errKickConn wraps connection-scoped protocol violations — a bad
// session hello, a session frame failing authentication or sequence,
// a misaligned batch. The connection is dropped and counted in
// Snapshot.Kicked; the service (and every other connection) carries
// on.
var errKickConn = errors.New("service: kicking connection")

// enqueue hands one report item to the shuffler, or reports the stop.
func (s *Service) enqueue(epoch uint32, item []byte) error {
	// Post-exhaustion frames flow to the shuffler too: it is the
	// single goroutine that counts AND write-ahead logs rejected
	// drops, so the Rejected counter survives a crash like the
	// others.
	select {
	case s.intake <- taggedReport{epoch: epoch, ct: item}:
		s.received.Add(1)
		return nil
	case <-s.stop:
		return errStopIngest
	}
}

// readConn is the ingest stage for one connection: a pipeline.Reader
// feeding the intake queue, deadline-guarded so a stalled client is
// disconnected (Snapshot.IdleClosed) instead of pinning this goroutine
// — and Drain's conns.Wait — forever.
//
// The first frame decides the connection's protocol. A SessionHelloTag
// frame performs the session handshake: every later frame is then one
// AEAD-sealed batch of codec-marshalled reports, opened and split here
// so the rest of the pipeline sees plain Size()-byte records. Any
// other first frame is a legacy per-report ECIES stream: each frame is
// one ciphertext, forwarded as-is for the decrypt stage. Protocol
// violations (oversized frame, bad hello, failed AEAD, replayed or
// reordered counter, misaligned batch) kick only this connection.
func (s *Service) readConn(conn net.Conn) {
	defer s.conns.Done()
	defer s.forget(conn)
	defer conn.Close()
	var sess *ecies.Session
	first := true
	size := s.codec.Size()
	rd := &pipeline.Reader{
		Conn:        conn,
		IdleTimeout: s.cfg.IdleTimeout,
		MaxFrame:    s.cfg.MaxFrame,
		Reuse:       true,
		Handle: func(tag uint32, frame []byte) error {
			if first {
				first = false
				if tag == SessionHelloTag {
					ns, err := ecies.NewServerSession(s.cfg.Key, frame)
					if err != nil {
						return fmt.Errorf("%w: %v", errKickConn, err)
					}
					sess = ns
					return nil
				}
			}
			s.cfg.Meter.Send(PartyUsers, PartyShuffler, len(frame))
			if sess == nil {
				// Legacy per-report frame. The reader's buffer is
				// recycled, and the pipeline retains the ciphertext
				// until a worker decrypts it, so copy.
				return s.enqueue(tag, append([]byte(nil), frame...))
			}
			// Session batch frame: the tag is the epoch the whole
			// batch asserts. The plaintext buffer is a fresh
			// allocation per frame — its records are subslices that
			// live until aggregation — amortized over the batch.
			if len(frame) < ecies.SessionOverhead+size {
				return fmt.Errorf("%w: short session frame (%d bytes)", errKickConn, len(frame))
			}
			pt, err := sess.Open(make([]byte, 0, len(frame)-ecies.SessionOverhead), frame)
			if err != nil {
				return fmt.Errorf("%w: %v", errKickConn, err)
			}
			if len(pt)%size != 0 {
				return fmt.Errorf("%w: session batch of %d bytes is not a whole number of %d-byte reports", errKickConn, len(pt), size)
			}
			for off := 0; off < len(pt); off += size {
				if err := s.enqueue(tag, pt[off:off+size:off+size]); err != nil {
					return err
				}
			}
			return nil
		},
	}
	switch err := rd.Run(); {
	case err == nil || errors.Is(err, errStopIngest):
	case errors.Is(err, pipeline.ErrIdleTimeout):
		s.idleClosed.Add(1)
	case errors.Is(err, errKickConn), errors.Is(err, transport.ErrFrameTooLarge):
		s.kicked.Add(1)
	case s.stopped():
	default:
		s.fail(fmt.Errorf("service: read report frame: %w", err))
	}
}

// runShuffler is the batch + shuffle stage: a pipeline.Batcher buffers
// ciphertexts into BatchSize batches, permutes each, and the flush
// callback forwards it to the worker queue tagged with the open epoch.
// Rotation requests land here — between batches, never inside one — so
// every batch belongs to exactly one epoch and each epoch's
// permutations come from its own RNG substream. The partial final
// batch is flushed when the intake closes (graceful drain).
func (s *Service) runShuffler() {
	defer close(s.shufflerDone)
	defer close(s.batches)
	cur := s.cur.Load()
	// rejectEpoch is the id the next epoch would have had — the tag
	// rejected-drop records carry so replay filters them correctly
	// (they always sort at or past the latest checkpoint's open epoch).
	rejectEpoch := uint32(cur.id + 1)
	if s.exhausted.Load() {
		// A service recovered into the exhausted state has no open
		// epoch: the stored pointer is the sealed final epoch kept for
		// queries, and nothing may aggregate into it.
		cur = nil
	}
	batcher := &pipeline.Batcher{
		Size: s.cfg.BatchSize,
		Flush: func(batch [][]byte) {
			// The WAL hits the platters (policy permitting) before the
			// batch reaches any worker: a report can only influence an
			// estimate once it is on its way to disk. The batcher only
			// ever holds reports accepted into the open epoch, so cur is
			// non-nil whenever a flush fires.
			if s.st != nil {
				if err := s.st.Commit(); err != nil {
					s.fail(fmt.Errorf("service: committing WAL batch: %w", err))
				}
			}
			n := 0
			for _, ct := range batch {
				n += len(ct)
			}
			cur.pending.Add(1)
			select {
			case s.batches <- epochBatch{ep: cur, cts: batch}:
				s.shuffled.Add(1)
				cur.batches.Add(1)
				s.wal.batches++
				s.cfg.Meter.Send(PartyShuffler, PartyServer, n)
			case <-s.stop:
				cur.pending.Done()
			}
		},
	}
	if cur != nil {
		batcher.SetRand(s.shufflerEpochRNG(cur.id))
	}
	recordSize := s.codec.Size()
	var sealBuf []byte
	accept := func(tr taggedReport) {
		// Dropped frames move out of Received into exactly one of the
		// drop counters, so Received / Late / Rejected stay disjoint
		// and the Snapshot backlog arithmetic holds.
		if cur == nil {
			// The budget ran out: count the report, log the drop (the
			// service has stopped checkpointing, so the WAL is the only
			// thing that carries Rejected across a restart), never
			// aggregate it. Logging stops at rejectedLogCap: an
			// exhausted service writes no more checkpoints, so nothing
			// would ever prune these records, and a client flooding a
			// still-open connection must not grow the WAL (or the next
			// recovery's replay) without bound. Past the cap the
			// recovered Rejected count is a lower bound.
			s.rejected.Add(1)
			s.received.Add(-1)
			if s.st != nil && s.wal.rejected < rejectedLogCap {
				if err := s.st.AppendDrop(rejectEpoch, store.DropRejected); err != nil {
					s.fail(err)
				}
				// No batch flush will ever run again (nothing
				// aggregates), so commit the drop record now — the
				// exhausted service has no other work to slow down.
				if err := s.st.Commit(); err != nil {
					s.fail(err)
				}
				s.wal.rejected++
			}
			return
		}
		if tr.epoch != EpochCurrent && tr.epoch != uint32(cur.id) {
			s.late.Add(1)
			s.received.Add(-1)
			if s.st != nil {
				if err := s.st.AppendDrop(uint32(cur.id), store.DropLate); err != nil {
					s.fail(err)
				}
				s.wal.late++
			}
			return
		}
		if s.st != nil {
			if len(tr.ct) == recordSize {
				// A session report: its wire frame was sealed under a
				// connection-ephemeral key recovery could never re-derive,
				// so re-seal the record under the at-rest storage key
				// before logging — the WAL still never holds plaintext
				// reports. The scratch is safe to reuse: the store's
				// record encoder copies the payload.
				sealBuf = s.sealer.Seal(sealBuf[:0], tr.ct)
				if err := s.st.AppendSealedReport(uint32(cur.id), sealBuf); err != nil {
					s.fail(err)
				}
			} else {
				if err := s.st.AppendReport(uint32(cur.id), tr.ct); err != nil {
					s.fail(err)
				}
			}
			s.wal.received++
		}
		batcher.Add(tr.ct)
		accepted := cur.accepted.Add(1)
		if s.cfg.EpochReports > 0 && accepted == int64(s.cfg.EpochReports) {
			select {
			case s.rotateHint <- struct{}{}:
			default:
			}
		}
	}
	for {
		select {
		case tr, ok := <-s.intake:
			if !ok {
				batcher.FlushNow()
				return
			}
			accept(tr)
		case req := <-s.rotateCh:
			// A rotation cuts the stream *after* everything already
			// received: drain the intake into the closing epoch first,
			// so a caller that saw Received == n before rotating knows
			// all n reports belong to the sealed epoch.
			closed := false
			for !closed {
				select {
				case tr, ok := <-s.intake:
					if !ok {
						closed = true
						break
					}
					accept(tr)
				default:
					closed = true
				}
			}
			batcher.FlushNow()
			old := cur
			if s.st != nil && old != nil {
				// The marker and everything before it go durable now:
				// no record of the next epoch can reach disk ahead of
				// the boundary that separates the epochs, and the
				// sealing checkpoint gets a counter snapshot taken
				// exactly at the cut.
				next := int64(-1)
				if req.next != nil {
					next = int64(req.next.id)
				}
				if err := s.st.Rotate(uint32(old.id), next); err != nil {
					s.fail(fmt.Errorf("service: WAL rotate marker: %w", err))
				}
				old.bnd = s.wal
			}
			cur = req.next
			if cur != nil {
				s.cur.Store(cur)
				batcher.SetRand(s.shufflerEpochRNG(cur.id))
				rejectEpoch = uint32(cur.id + 1)
			}
			// A hint generated by the epoch that just closed is stale;
			// dropping it here (the rotator re-checks anyway) keeps the
			// fresh epoch from being cut near-empty.
			select {
			case <-s.rotateHint:
			default:
			}
			req.done <- old
		case <-s.stop:
			return
		}
	}
}

// runDecryptWorker is the decrypt/decode stage: each batch item is
// either a legacy ECIES ciphertext (decrypted into a reused scratch)
// or an already-open session record (codec.Size() bytes exactly — the
// two lengths can never coincide), decoded either way into a
// pool-recycled report slice headed for the aggregate stage. Corrupt
// reports are dropped and surfaced as the service error rather than
// silently mis-estimating.
func (s *Service) runDecryptWorker(int) {
	size := s.codec.Size()
	var ptBuf []byte
	for eb := range s.batches {
		start := time.Now()
		rp := s.reportsPool.Get().(*[]ldp.Report)
		reports := (*rp)[:0]
		for _, ct := range eb.cts {
			data := ct
			if len(ct) != size {
				pt, err := ecies.DecryptTo(s.cfg.Key, ptBuf[:0], ct)
				if err != nil {
					s.fail(fmt.Errorf("service: decrypt report: %w", err))
					continue
				}
				ptBuf, data = pt, pt
			}
			// Unmarshal never aliases its input, so the scratch is free
			// for the next ciphertext.
			rep, err := s.codec.Unmarshal(data)
			if err != nil {
				s.fail(err)
				continue
			}
			reports = append(reports, rep)
		}
		*rp = reports
		s.cfg.Meter.AddCPU(PartyServer, time.Since(start))
		select {
		case s.decoded <- decodedBatch{ep: eb.ep, reports: rp}:
		case <-s.stop:
			eb.ep.pending.Done()
			s.reportsPool.Put(rp)
		}
	}
}

// runWorker is the aggregate stage: it folds each decoded batch into
// the batch's epoch shard owned by this worker and recycles the
// report slice.
func (s *Service) runWorker(i int) {
	for db := range s.decoded {
		start := time.Now()
		sh := db.ep.shards[i]
		sh.mu.Lock()
		for _, rep := range *db.reports {
			sh.agg.Add(rep)
		}
		sh.mu.Unlock()
		db.ep.pending.Done()
		s.reportsPool.Put(db.reports)
		s.cfg.Meter.AddCPU(PartyServer, time.Since(start))
	}
}

// Snapshot returns the open epoch's current estimate without stopping
// ingestion: each shard aggregator is swapped for a fresh one and
// merged into the epoch root, so the snapshot is a consistent prefix
// of the epoch's stream and costs the workers only the swap, never a
// full recompute.
func (s *Service) Snapshot() Snapshot {
	e := s.cur.Load()
	est, n := e.gather()
	return Snapshot{
		Estimates:  est,
		Reports:    n,
		Received:   s.received.Load(),
		Batches:    s.shuffled.Load(),
		Epoch:      e.id,
		Late:       s.late.Load(),
		Rejected:   s.rejected.Load(),
		IdleClosed: s.idleClosed.Load(),
		Kicked:     s.kicked.Load(),
	}
}

// Drain gracefully shuts the pipeline down: stop accepting, wait for
// every ingested connection to close, flush the partial batch, wait
// for the workers, seal the final epoch into History, and return the
// all-time snapshot — every epoch's reports merged, bit-identical to
// a sequential pass over the full stream. The returned error is the
// first failure observed anywhere in the pipeline (a run with a
// corrupt or undecryptable report is not silently trusted).
func (s *Service) Drain() (Snapshot, error) {
	s.drainOnce.Do(func() {
		// Under mu so the flip is atomic with Ingest's check-and-register:
		// after this section, every registered reader is counted in conns.
		s.mu.Lock()
		s.draining.Store(true)
		s.mu.Unlock()
		close(s.drainStart)
		s.rotatorWG.Wait()
		s.closeListeners()
		s.conns.Wait()
		close(s.intake)
		s.shufflerPool.Wait()
		s.workerPool.Wait()
		// Every batch is folded; seal the final epoch (a no-op if an
		// exhausting Rotate already did).
		s.rotateMu.Lock()
		e := s.cur.Load()
		if s.st != nil {
			// The shuffler has exited, so its counter mirror is final:
			// the drain seal's checkpoint covers the whole stream. The
			// epoch the checkpoint leaves "open" only ever opens if the
			// directory is recovered — and is charged then, not now.
			e.bnd = s.wal
		}
		s.seal(e, false)
		if s.st != nil {
			if err := s.st.Close(); err != nil {
				s.fail(fmt.Errorf("service: closing WAL: %w", err))
			}
		}
		s.rotateMu.Unlock()
		s.allMu.Lock()
		s.drainSnap = Snapshot{
			Estimates:  s.allTime.Estimates(),
			Reports:    s.allTime.Count(),
			Received:   s.received.Load(),
			Batches:    s.shuffled.Load(),
			Epoch:      e.id,
			Late:       s.late.Load(),
			Rejected:   s.rejected.Load(),
			IdleClosed: s.idleClosed.Load(),
			Kicked:     s.kicked.Load(),
		}
		s.allMu.Unlock()
		s.drainErr = s.Err()
	})
	return s.drainSnap, s.drainErr
}

// Close aborts the pipeline: listeners and active connections close,
// readers, shuffler, and workers exit at the next opportunity,
// in-flight reports may be dropped. A durable service flushes and
// closes its WAL (after the shuffler exits), so Close is an orderly
// stop — for the simulated power cut, use Crash. Safe to call after
// Drain (it is then a no-op).
func (s *Service) Close() error {
	s.shutdown(false)
	return nil
}

// Crash hard-stops a durable service the way a power cut would: the
// pipeline aborts and the WAL is closed WITHOUT flushing, so records
// still buffered in-process are torn away and only what the fsync
// policy already made durable survives. The recovery tests and
// examples/durable_monitor restart the data directory with Recover
// afterwards. On an in-memory service Crash behaves like Close.
func (s *Service) Crash() {
	s.shutdown(true)
}

func (s *Service) shutdown(crash bool) {
	s.mu.Lock()
	s.draining.Store(true)
	s.mu.Unlock()
	s.closeListeners()
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	for conn := range s.active {
		conn.Close()
	}
	s.mu.Unlock()
	if s.st == nil {
		return
	}
	// Wait out the shuffler (it exits promptly on the stop signal) so
	// the WAL teardown below cannot interleave with its appends, then
	// serialize with any in-flight checkpoint through rotateMu.
	s.shufflerPool.Wait()
	s.rotateMu.Lock()
	defer s.rotateMu.Unlock()
	if crash {
		s.st.Abort()
		return
	}
	if err := s.st.Close(); err != nil {
		s.fail(fmt.Errorf("service: closing WAL: %w", err))
	}
}

// Err returns the first pipeline failure, if any.
func (s *Service) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}

func (s *Service) fail(err error) {
	s.mu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.mu.Unlock()
}

func (s *Service) closeListeners() {
	s.mu.Lock()
	lns := s.listeners
	s.listeners = nil
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
}

func (s *Service) stopped() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}
