package service_test

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"shuffledp/internal/budget"
	"shuffledp/internal/composition"
	"shuffledp/internal/ecies"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
	"shuffledp/internal/service"
)

// waitReceived blocks until the service has accepted n report frames
// into the pipeline (not necessarily folded yet).
func waitReceived(t *testing.T, svc *service.Service, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for svc.Snapshot().Received < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d received reports (have %d)", n, svc.Snapshot().Received)
		}
		time.Sleep(time.Millisecond)
	}
}

// The acceptance test of the window-query machinery: epochs with
// known report membership must seal to estimates bit-identical to
// offline per-epoch aggregation, and EstimateWindow(k) must be
// bit-identical to merging those k epochs' aggregates offline.
func TestEpochWindowBitIdenticalToOfflineMerge(t *testing.T) {
	const (
		d         = 48
		seed      = 77
		epochs    = 4
		perEpoch  = 700
		batchSize = 64 // does not divide perEpoch: partial batches seal too
	)
	fo := ldp.NewSOLH(d, 12, 2)
	values := make([]int, epochs*perEpoch)
	for i := range values {
		values[i] = (i * 13) % d
	}
	reports := ldp.RandomizeParallel(fo, values, seed, 0)

	key, err := ecies.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{
		FO: fo, Key: key, BatchSize: batchSize, ShuffleSeed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	clientSide, serverSide := net.Pipe()
	if err := svc.Ingest(serverSide); err != nil {
		t.Fatal(err)
	}
	cl, err := service.NewClient(fo, key.Public(), nil, clientSide)
	if err != nil {
		t.Fatal(err)
	}

	// Send epoch by epoch; Rotate drains the intake into the closing
	// epoch, so waiting on Received pins each report's epoch exactly.
	rotated := make(chan struct{})
	sendErr := make(chan error, 1)
	go func() {
		defer clientSide.Close()
		for e := 0; e < epochs; e++ {
			for _, rep := range reports[e*perEpoch : (e+1)*perEpoch] {
				if err := cl.SendReport(rep); err != nil {
					sendErr <- err
					return
				}
			}
			if err := cl.Flush(); err != nil {
				sendErr <- err
				return
			}
			sendErr <- nil
			<-rotated // main goroutine rotated; next epoch may start
		}
	}()
	for e := 0; e < epochs; e++ {
		if err := <-sendErr; err != nil {
			t.Fatal(err)
		}
		waitReceived(t, svc, int64((e+1)*perEpoch))
		if e < epochs-1 {
			snap, err := svc.Rotate()
			if err != nil {
				t.Fatal(err)
			}
			if snap.Epoch != e {
				t.Fatalf("rotation %d sealed epoch %d", e, snap.Epoch)
			}
			if snap.Reports != perEpoch {
				t.Fatalf("epoch %d sealed %d reports, want %d", e, snap.Reports, perEpoch)
			}
		}
		rotated <- struct{}{}
	}
	if _, err := svc.Drain(); err != nil {
		t.Fatal(err)
	}

	// Offline reference: one aggregator per epoch, merged with the
	// same machinery the service uses.
	offline := make([]ldp.Aggregator, epochs)
	for e := range offline {
		offline[e] = fo.NewAggregator()
		for _, rep := range reports[e*perEpoch : (e+1)*perEpoch] {
			offline[e].Add(rep)
		}
	}

	hist := svc.History()
	if len(hist) != epochs {
		t.Fatalf("history has %d epochs, want %d", len(hist), epochs)
	}
	for e, snap := range hist {
		want := offline[e].Clone().Estimates()
		if snap.Reports != perEpoch {
			t.Fatalf("epoch %d: %d reports, want %d", e, snap.Reports, perEpoch)
		}
		for v := range want {
			if snap.Estimates[v] != want[v] {
				t.Fatalf("epoch %d estimate[%d] = %v, offline %v (not bit-identical)",
					e, v, snap.Estimates[v], want[v])
			}
		}
	}

	for k := 1; k <= epochs; k++ {
		win, err := svc.EstimateWindow(k)
		if err != nil {
			t.Fatal(err)
		}
		if win.Epochs != k || win.ToEpoch != epochs-1 || win.FromEpoch != epochs-k {
			t.Fatalf("window k=%d spans [%d, %d] over %d epochs", k, win.FromEpoch, win.ToEpoch, win.Epochs)
		}
		ref := offline[epochs-k].Clone()
		for _, o := range offline[epochs-k+1:] {
			ref.Merge(o.Clone())
		}
		if win.Reports != k*perEpoch {
			t.Fatalf("window k=%d covers %d reports, want %d", k, win.Reports, k*perEpoch)
		}
		want := ref.Estimates()
		for v := range want {
			if win.Estimates[v] != want[v] {
				t.Fatalf("window k=%d estimate[%d] = %v, offline merge %v (not bit-identical)",
					k, v, win.Estimates[v], want[v])
			}
		}
	}

	// Window queries are repeatable: clone-merge must not drain the
	// sealed epochs.
	again, err := svc.EstimateWindow(epochs)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := svc.EstimateWindow(0) // 0 = everything retained
	for v := range again.Estimates {
		if again.Estimates[v] != full.Estimates[v] {
			t.Fatal("repeated window query changed the result")
		}
	}
}

// The budget acceptance criterion: with total budget B and per-epoch
// eps under naive accounting, the service serves exactly floor(B/eps)
// epochs and then refuses ingestion.
func TestServiceBudgetExhaustionFloor(t *testing.T) {
	const totalEps, perEps = 1.0, 0.3 // floor(1.0/0.3) = 3 epochs
	fo := ldp.NewGRR(8, 1)
	key, _ := ecies.GenerateKey()
	ledger, err := budget.NewLedger(
		composition.Guarantee{Eps: totalEps, Delta: 1e-6},
		composition.Guarantee{Eps: perEps, Delta: 1e-9},
		budget.Naive{},
	)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{FO: fo, Key: key, Ledger: ledger})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Epoch 0 charged at New; two more rotations fit the budget.
	for i := 0; i < 2; i++ {
		snap, err := svc.Rotate()
		if err != nil {
			t.Fatalf("rotation %d within budget failed: %v", i, err)
		}
		if snap.Guarantee.Eps != perEps {
			t.Fatalf("sealed epoch carries guarantee eps %v, want %v", snap.Guarantee.Eps, perEps)
		}
	}
	if svc.Epoch() != 2 || svc.Exhausted() {
		t.Fatalf("after floor(B/eps) epochs: epoch %d, exhausted %v", svc.Epoch(), svc.Exhausted())
	}

	// The fourth epoch does not fit: the current epoch still seals but
	// ingestion is refused from here on.
	snap, err := svc.Rotate()
	if !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("rotation past the budget returned %v, want ErrExhausted", err)
	}
	if snap.Epoch != 2 {
		t.Fatalf("exhausting rotation sealed epoch %d, want 2", snap.Epoch)
	}
	if !svc.Exhausted() {
		t.Fatal("service not exhausted after refused charge")
	}
	a, b := net.Pipe()
	defer a.Close()
	if err := svc.Ingest(b); !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("Ingest after exhaustion returned %v, want ErrExhausted", err)
	}
	if _, err := svc.Rotate(); !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("second exhausted rotation returned %v, want ErrExhausted", err)
	}
	// Queries still work: all floor(B/eps) epochs are sealed.
	if got := len(svc.History()); got != 3 {
		t.Fatalf("history has %d sealed epochs, want floor(B/eps) = 3", got)
	}
	if _, err := svc.EstimateWindow(3); err != nil {
		t.Fatalf("window query on exhausted service: %v", err)
	}
	if _, err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
}

// Advanced composition must let the same total budget serve strictly
// more epochs than naive accounting — here at the service level, with
// the epoch count where naive accounting must refuse.
func TestServiceAdvancedCompositionOutlivesNaive(t *testing.T) {
	total := composition.Guarantee{Eps: 1, Delta: 1e-4}
	per := composition.Guarantee{Eps: 0.01, Delta: 1e-9}
	fo := ldp.NewGRR(4, 1)
	key, _ := ecies.GenerateKey()

	naiveLedger, err := budget.NewLedger(total, per, budget.Naive{})
	if err != nil {
		t.Fatal(err)
	}
	advLedger, err := budget.NewLedger(total, per, budget.Advanced{Slack: 5e-5})
	if err != nil {
		t.Fatal(err)
	}
	naiveMax := naiveLedger.MaxEpochs() // floor(1/0.01) = 100
	if naiveMax != 100 {
		t.Fatalf("naive MaxEpochs = %d, want 100", naiveMax)
	}
	if advLedger.MaxEpochs() <= naiveMax {
		t.Fatalf("advanced MaxEpochs = %d, not strictly more than naive's %d", advLedger.MaxEpochs(), naiveMax)
	}

	svcN, err := service.New(service.Config{FO: fo, Key: key, Ledger: naiveLedger})
	if err != nil {
		t.Fatal(err)
	}
	defer svcN.Close()
	svcA, err := service.New(service.Config{FO: fo, Key: key, Ledger: advLedger})
	if err != nil {
		t.Fatal(err)
	}
	defer svcA.Close()

	// Rotate both through naive's limit: the naive service exhausts at
	// exactly naiveMax epochs, the advanced one keeps going.
	for i := 0; i < naiveMax+5; i++ {
		_, errN := svcN.Rotate()
		_, errA := svcA.Rotate()
		wantExhausted := i >= naiveMax-1 // epoch naiveMax would be one too many
		if gotExhausted := errors.Is(errN, budget.ErrExhausted); gotExhausted != wantExhausted {
			t.Fatalf("naive rotation %d: exhausted=%v, want %v (err %v)", i, gotExhausted, wantExhausted, errN)
		}
		if errA != nil {
			t.Fatalf("advanced rotation %d failed: %v", i, errA)
		}
	}
}

// The epoch-rotation race test (run under -race): concurrent clients
// stream while the service rotates; no report may be lost, and both
// the all-time drain estimate and the all-epochs window merge must be
// bit-identical to a sequential aggregation of the full multiset —
// whatever epoch each report happened to land in.
func TestRaceIngestDuringRotate(t *testing.T) {
	const (
		d       = 32
		seed    = 99
		clients = 8
		n       = 6000
	)
	fo := ldp.NewSOLH(d, 8, 2)
	values := make([]int, n)
	for i := range values {
		values[i] = (i * 5) % d
	}
	reports := ldp.RandomizeParallel(fo, values, seed, 0)
	seq := fo.NewAggregator()
	for _, rep := range reports {
		seq.Add(rep)
	}
	want := seq.Estimates()

	key, err := ecies.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{
		FO: fo, Key: key, BatchSize: 32, ShuffleSeed: seed + 1, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		clientSide, serverSide := net.Pipe()
		if err := svc.Ingest(serverSide); err != nil {
			t.Fatal(err)
		}
		cl, err := service.NewClient(fo, key.Public(), nil, clientSide)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, cl *service.Client) {
			defer wg.Done()
			defer clientSide.Close()
			for i := c; i < len(reports); i += clients {
				if err := cl.SendReport(reports[i]); err != nil {
					errc <- fmt.Errorf("client %d: %w", c, err)
					return
				}
			}
			errc <- cl.Close()
		}(c, cl)
	}

	// Rotate concurrently with the stream.
	rotateDone := make(chan struct{})
	go func() {
		defer close(rotateDone)
		for i := 0; i < 5; i++ {
			time.Sleep(3 * time.Millisecond)
			if _, err := svc.Rotate(); err != nil {
				t.Errorf("rotation %d: %v", i, err)
				return
			}
		}
	}()

	wg.Wait()
	<-rotateDone
	snap, err := svc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}

	if snap.Reports != n {
		t.Fatalf("drained %d reports, want %d (reports lost across rotations)", snap.Reports, n)
	}
	if snap.Late != 0 || snap.Rejected != 0 {
		t.Fatalf("unexpected drops: late %d, rejected %d", snap.Late, snap.Rejected)
	}
	for v := range want {
		if snap.Estimates[v] != want[v] {
			t.Fatalf("drain estimate[%d] = %v, sequential %v (not bit-identical)", v, snap.Estimates[v], want[v])
		}
	}
	hist := svc.History()
	if len(hist) != 6 { // 5 rotations + the final drain seal
		t.Fatalf("history has %d epochs, want 6", len(hist))
	}
	total := 0
	for _, es := range hist {
		total += es.Reports
	}
	if total != n {
		t.Fatalf("epochs sum to %d reports, want %d", total, n)
	}
	win, err := svc.EstimateWindow(len(hist))
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if win.Estimates[v] != want[v] {
			t.Fatalf("all-epochs window estimate[%d] = %v, sequential %v (not bit-identical)", v, win.Estimates[v], want[v])
		}
	}
}

// Reports asserting a sealed (or future) epoch are dropped and counted
// Late, never folded into the wrong collection round.
func TestLateEpochReportsDropped(t *testing.T) {
	fo := ldp.NewGRR(8, 2)
	key, _ := ecies.GenerateKey()
	svc, err := service.New(service.Config{FO: fo, Key: key, BatchSize: 4, ShuffleSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	clientSide, serverSide := net.Pipe()
	if err := svc.Ingest(serverSide); err != nil {
		t.Fatal(err)
	}
	cl, err := service.NewClient(fo, key.Public(), nil, clientSide)
	if err != nil {
		t.Fatal(err)
	}
	// Pinning the open epoch works like EpochCurrent...
	cl.SetEpoch(0)
	for i := 0; i < 6; i++ {
		if err := cl.SendReport(ldp.Report{Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// ...but a stale epoch assertion is dropped.
	cl.SetEpoch(7)
	for i := 0; i < 4; i++ {
		if err := cl.SendReport(ldp.Report{Value: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Reports != 6 {
		t.Fatalf("aggregated %d reports, want the 6 current-epoch ones", snap.Reports)
	}
	if snap.Late != 4 {
		t.Fatalf("late count %d, want 4", snap.Late)
	}
	// Dropped frames must leave Received: the three counters are
	// disjoint and the drained backlog is empty.
	if snap.Received != 6 {
		t.Fatalf("received %d, want 6 (late frames must not stay counted)", snap.Received)
	}
}

// WindowRetain bounds the sealed-epoch history; the all-time drain
// estimate still covers the trimmed epochs.
func TestWindowRetainTrims(t *testing.T) {
	fo := ldp.NewGRR(4, 1)
	key, _ := ecies.GenerateKey()
	svc, err := service.New(service.Config{FO: fo, Key: key, WindowRetain: 2, ShuffleSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	clientSide, serverSide := net.Pipe()
	if err := svc.Ingest(serverSide); err != nil {
		t.Fatal(err)
	}
	cl, err := service.NewClient(fo, key.Public(), nil, clientSide)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 4; e++ {
		if err := cl.SendReport(ldp.Report{Value: e % 4}); err != nil {
			t.Fatal(err)
		}
		if err := cl.Flush(); err != nil {
			t.Fatal(err)
		}
		waitReceived(t, svc, int64(e+1))
		if e < 3 {
			if _, err := svc.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	hist := svc.History()
	if len(hist) != 2 {
		t.Fatalf("retained %d epochs, want 2", len(hist))
	}
	if hist[0].Epoch != 2 || hist[1].Epoch != 3 {
		t.Fatalf("retained epochs [%d, %d], want [2, 3]", hist[0].Epoch, hist[1].Epoch)
	}
	if _, err := svc.EstimateWindow(3); err == nil {
		t.Fatal("window past the retention succeeded")
	}
	win, err := svc.EstimateWindow(2)
	if err != nil {
		t.Fatal(err)
	}
	if win.Reports != 2 {
		t.Fatalf("2-epoch window covers %d reports, want 2", win.Reports)
	}
	if snap.Reports != 4 {
		t.Fatalf("all-time drain covers %d reports, want 4 (trim must not touch it)", snap.Reports)
	}
}

// Config.EpochReports auto-rotates without explicit Rotate calls.
func TestAutoRotationByReportCount(t *testing.T) {
	const n, perEpoch = 300, 100
	fo := ldp.NewGRR(8, 2)
	key, _ := ecies.GenerateKey()
	svc, err := service.New(service.Config{
		FO: fo, Key: key, BatchSize: 16, ShuffleSeed: 5, EpochReports: perEpoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	clientSide, serverSide := net.Pipe()
	if err := svc.Ingest(serverSide); err != nil {
		t.Fatal(err)
	}
	cl, err := service.NewClient(fo, key.Public(), rng.New(12), clientSide)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := cl.Send(i % 8); err != nil {
			t.Fatal(err)
		}
		if (i+1)%perEpoch == 0 {
			// Let the rotation land before streaming on so every epoch
			// actually triggers one.
			if err := cl.Flush(); err != nil {
				t.Fatal(err)
			}
			wantEpoch := (i + 1) / perEpoch
			deadline := time.Now().Add(10 * time.Second)
			for svc.Epoch() < wantEpoch {
				if time.Now().After(deadline) {
					t.Fatalf("auto-rotation to epoch %d never happened (at %d)", wantEpoch, svc.Epoch())
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Reports != n {
		t.Fatalf("drained %d reports, want %d", snap.Reports, n)
	}
	hist := svc.History()
	if len(hist) < 3 {
		t.Fatalf("auto-rotation produced %d epochs, want >= 3", len(hist))
	}
	total := 0
	for _, es := range hist {
		total += es.Reports
	}
	if total != n {
		t.Fatalf("epochs sum to %d, want %d", total, n)
	}
}

// NewClient needs a rand only for Send; epoch stamping and rotation
// must not disturb netproto's single-epoch bit-identical contract —
// covered by the PR 2 tests in service_test.go — so here only the
// budget-at-New path: a ledger that cannot afford epoch 0 refuses
// construction.
func TestNewRefusedByEmptyLedger(t *testing.T) {
	ledger, err := budget.NewLedger(
		composition.Guarantee{Eps: 0.1, Delta: 1e-6},
		composition.Guarantee{Eps: 0.3, Delta: 1e-9},
		budget.Naive{},
	)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := ecies.GenerateKey()
	if _, err := service.New(service.Config{FO: ldp.NewGRR(4, 1), Key: key, Ledger: ledger}); !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("New with an unaffordable ledger returned %v, want ErrExhausted", err)
	}
}
