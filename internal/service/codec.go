package service

import (
	"encoding/binary"
	"errors"
	"fmt"

	"shuffledp/internal/ldp"
)

// Codec maps ldp.Reports to and from wire payloads. It extends the
// 8-byte word encoding of ldp.WordEncoder (GRR, OLH/SOLH, Hadamard —
// the format netproto has always used) with a packed-bitmap encoding
// for the unary oracles (RAP, RAP_R, OUE) and a byte-per-location
// count encoding for AUE, so every frequency oracle in the repo can
// report through the streaming service.
//
// Unmarshal is strict: a payload either decodes to exactly one valid
// report of the oracle — one that Aggregator.Add accepts — or errors,
// and Marshal(Unmarshal(data)) reproduces data byte for byte. The
// canonical round-trip is what FuzzCodec locks in; a decrypted report
// that parses ambiguously (wrapped words, set padding bits,
// out-of-range Hadamard rows) flags the run instead of skewing the
// histogram or panicking a worker.
type Codec struct {
	word     *ldp.WordEncoder
	maxSeed  uint64 // exclusive bound on Report.Seed for word oracles; 0 = no bound
	d        int    // unary bitmap / AUE count length; 0 for word-encoded oracles
	maxCount byte   // AUE: inclusive per-location count bound; 0 = bitmap encoding
}

// NewCodec returns the codec for the oracle, or an error if the oracle
// has no report wire format.
func NewCodec(fo ldp.FrequencyOracle) (*Codec, error) {
	if word, err := ldp.NewWordEncoder(fo); err == nil {
		c := &Codec{word: word}
		if h, ok := fo.(*ldp.Hadamard); ok {
			// The word encoding admits any 32-bit row; the oracle only
			// accepts rows below the Hadamard order.
			c.maxSeed = uint64(h.Order())
		}
		return c, nil
	}
	switch o := fo.(type) {
	case *ldp.UnaryEncoding, *ldp.OUE:
		return &Codec{d: fo.Domain()}, nil
	case *ldp.AUE:
		// A location can carry the true one-hot bit plus at most one
		// increment per blanket round; anything larger is unproducible
		// by Randomize and must flag the run.
		maxCount := o.Rounds() + 1
		if maxCount > 255 {
			maxCount = 255 // Randomize saturates its byte counters there
		}
		return &Codec{d: fo.Domain(), maxCount: byte(maxCount)}, nil
	}
	return nil, fmt.Errorf("service: oracle %s has no report codec", fo.Name())
}

// Size returns the fixed payload size in bytes: every report of one
// oracle marshals to the same length, so frames leak nothing about the
// content through their size.
func (c *Codec) Size() int {
	switch {
	case c.word != nil:
		return 8
	case c.maxCount > 0:
		return c.d
	default:
		return (c.d + 7) / 8
	}
}

// Marshal packs a report into its wire payload.
func (c *Codec) Marshal(rep ldp.Report) ([]byte, error) {
	return c.AppendMarshal(make([]byte, 0, c.Size()), rep)
}

// AppendMarshal is the append-style form of Marshal: the Size()-byte
// payload is appended to dst and the extended slice returned, so the
// session client can pack a whole batch of reports into one plaintext
// buffer without a per-report allocation.
func (c *Codec) AppendMarshal(dst []byte, rep ldp.Report) ([]byte, error) {
	if c.word != nil {
		if c.maxSeed > 0 && uint64(rep.Seed) >= c.maxSeed {
			return nil, fmt.Errorf("service: report seed %d outside oracle range %d", rep.Seed, c.maxSeed)
		}
		return binary.LittleEndian.AppendUint64(dst, c.word.Encode(rep)), nil
	}
	if len(rep.Bits) != c.d {
		return nil, fmt.Errorf("service: report has %d locations, oracle domain is %d", len(rep.Bits), c.d)
	}
	if c.maxCount > 0 {
		for j, b := range rep.Bits {
			if b > c.maxCount {
				return nil, fmt.Errorf("service: count report location %d holds %d increments, oracle maximum is %d", j, b, c.maxCount)
			}
		}
		return append(dst, rep.Bits...), nil
	}
	base := len(dst)
	dst = append(dst, make([]byte, (c.d+7)/8)...)
	out := dst[base:]
	for j, b := range rep.Bits {
		switch b {
		case 0:
		case 1:
			out[j/8] |= 1 << (j % 8)
		default:
			return nil, errors.New("service: unary report bit outside {0, 1}")
		}
	}
	return dst, nil
}

// Unmarshal reverses Marshal. Payloads of the wrong length, word
// payloads outside the oracle's report group (which Decode would wrap
// rather than reject), Hadamard rows past the matrix order, and bitmap
// payloads with set padding bits are all rejected — a decrypted report
// must parse unambiguously or the run is flagged.
func (c *Codec) Unmarshal(data []byte) (ldp.Report, error) {
	if c.word != nil {
		if len(data) != 8 {
			return ldp.Report{}, fmt.Errorf("service: word report payload is %d bytes, want 8", len(data))
		}
		w := binary.LittleEndian.Uint64(data)
		if w >= c.word.GroupOrder() {
			return ldp.Report{}, fmt.Errorf("service: word report %d outside group order %d", w, c.word.GroupOrder())
		}
		rep := c.word.Decode(w)
		if c.maxSeed > 0 && uint64(rep.Seed) >= c.maxSeed {
			return ldp.Report{}, fmt.Errorf("service: report seed %d outside oracle range %d", rep.Seed, c.maxSeed)
		}
		return rep, nil
	}
	if c.maxCount > 0 {
		if len(data) != c.d {
			return ldp.Report{}, fmt.Errorf("service: count report payload is %d bytes, want %d", len(data), c.d)
		}
		bits := make([]byte, c.d)
		for j, b := range data {
			if b > c.maxCount {
				return ldp.Report{}, fmt.Errorf("service: count report location %d holds %d increments, oracle maximum is %d", j, b, c.maxCount)
			}
			bits[j] = b
		}
		return ldp.Report{Bits: bits}, nil
	}
	if len(data) != (c.d+7)/8 {
		return ldp.Report{}, fmt.Errorf("service: unary report payload is %d bytes, want %d", len(data), (c.d+7)/8)
	}
	bits := make([]byte, c.d)
	for j := range bits {
		bits[j] = (data[j/8] >> (j % 8)) & 1
	}
	for j := c.d; j < 8*len(data); j++ {
		if (data[j/8]>>(j%8))&1 != 0 {
			return ldp.Report{}, errors.New("service: unary report has set padding bits")
		}
	}
	return ldp.Report{Bits: bits}, nil
}
