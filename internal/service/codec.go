package service

import (
	"encoding/binary"
	"errors"
	"fmt"

	"shuffledp/internal/ldp"
)

// Codec maps ldp.Reports to and from wire payloads. It extends the
// 8-byte word encoding of ldp.WordEncoder (GRR, OLH/SOLH, Hadamard —
// the format netproto has always used) with a packed-bitmap encoding
// for the unary oracles (RAP, RAP_R, OUE), so every LDP mechanism in
// the repo can report through the streaming service. AUE reports carry
// increment counts rather than bits and have no codec.
type Codec struct {
	word *ldp.WordEncoder
	d    int // unary bitmap length; 0 for word-encoded oracles
}

// NewCodec returns the codec for the oracle, or an error if the oracle
// has no report wire format.
func NewCodec(fo ldp.FrequencyOracle) (*Codec, error) {
	if word, err := ldp.NewWordEncoder(fo); err == nil {
		return &Codec{word: word}, nil
	}
	switch fo.(type) {
	case *ldp.UnaryEncoding, *ldp.OUE:
		return &Codec{d: fo.Domain()}, nil
	}
	return nil, fmt.Errorf("service: oracle %s has no report codec", fo.Name())
}

// Size returns the fixed payload size in bytes: every report of one
// oracle marshals to the same length, so frames leak nothing about the
// content through their size.
func (c *Codec) Size() int {
	if c.word != nil {
		return 8
	}
	return (c.d + 7) / 8
}

// Marshal packs a report into its wire payload.
func (c *Codec) Marshal(rep ldp.Report) ([]byte, error) {
	if c.word != nil {
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, c.word.Encode(rep))
		return out, nil
	}
	if len(rep.Bits) != c.d {
		return nil, fmt.Errorf("service: unary report has %d bits, oracle domain is %d", len(rep.Bits), c.d)
	}
	out := make([]byte, (c.d+7)/8)
	for j, b := range rep.Bits {
		switch b {
		case 0:
		case 1:
			out[j/8] |= 1 << (j % 8)
		default:
			return nil, errors.New("service: unary report bit outside {0, 1}")
		}
	}
	return out, nil
}

// Unmarshal reverses Marshal. Payloads of the wrong length, or bitmap
// payloads with set padding bits, are rejected — a decrypted report
// must parse unambiguously or the run is flagged.
func (c *Codec) Unmarshal(data []byte) (ldp.Report, error) {
	if c.word != nil {
		if len(data) != 8 {
			return ldp.Report{}, fmt.Errorf("service: word report payload is %d bytes, want 8", len(data))
		}
		return c.word.Decode(binary.LittleEndian.Uint64(data)), nil
	}
	if len(data) != (c.d+7)/8 {
		return ldp.Report{}, fmt.Errorf("service: unary report payload is %d bytes, want %d", len(data), (c.d+7)/8)
	}
	bits := make([]byte, c.d)
	for j := range bits {
		bits[j] = (data[j/8] >> (j % 8)) & 1
	}
	for j := c.d; j < 8*len(data); j++ {
		if (data[j/8]>>(j%8))&1 != 0 {
			return ldp.Report{}, errors.New("service: unary report has set padding bits")
		}
	}
	return ldp.Report{Bits: bits}, nil
}
