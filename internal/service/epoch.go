package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"shuffledp/internal/budget"
	"shuffledp/internal/composition"
	"shuffledp/internal/ldp"
	"shuffledp/internal/rng"
	"shuffledp/internal/store"
)

// EpochCurrent is the frame tag a client stamps when it reports into
// whatever epoch the service currently has open (the common case: the
// client does not track the server's rotation schedule). Any other tag
// asserts a specific epoch id; the shuffler drops reports whose
// asserted epoch is not the open one and counts them as Late.
const EpochCurrent = ^uint32(0)

// EpochSnapshot is one sealed epoch: the collection round's estimate,
// frozen at rotation.
type EpochSnapshot struct {
	// Epoch is the epoch id, starting at 0.
	Epoch int
	// Estimates is the calibrated frequency estimate over the epoch's
	// reports.
	Estimates []float64
	// Reports is how many reports the epoch aggregated.
	Reports int
	// Batches is how many shuffled batches the epoch received.
	Batches int64
	// Guarantee is the per-epoch privacy guarantee the budget ledger
	// charged for this epoch (zero without a ledger).
	Guarantee composition.Guarantee
}

// WindowSnapshot is the merge of the last k sealed epochs — the
// service's sliding-window estimate.
type WindowSnapshot struct {
	// FromEpoch and ToEpoch bound the merged epoch ids (inclusive).
	FromEpoch, ToEpoch int
	// Epochs is how many epochs the window merged.
	Epochs int
	// Estimates is the merged calibrated estimate, bit-identical to a
	// sequential aggregation of the window's report multiset.
	Estimates []float64
	// Reports is the total report count across the window.
	Reports int
}

// walCounters is a consistent view of the durable service counters:
// reports write-ahead logged (received), drops logged (late,
// rejected), and batches forwarded. The shuffler goroutine owns the
// live copy and snapshots it into the sealing epoch at each rotation
// boundary, so checkpoints never mix counts from two epochs.
type walCounters struct {
	received, late, rejected, batches int64
}

// epochState is one epoch's aggregation state: a shard aggregator per
// worker plus the root they gather into. The pending WaitGroup counts
// batches forwarded to the workers but not yet folded; sealing waits
// on it so a sealed epoch provably covers every report routed to it.
type epochState struct {
	id     int
	fo     ldp.FrequencyOracle
	shards []*shard
	// pending counts forwarded-but-unfolded batches.
	pending sync.WaitGroup
	batches atomic.Int64
	// accepted counts reports the shuffler routed to this epoch
	// (batched or still buffered) — the auto-rotation trigger.
	accepted atomic.Int64
	sealed   bool // guarded by Service.rotateMu

	// bnd is the durable-counter snapshot at this epoch's rotation
	// boundary; written by the shuffler at the marker (or by Drain
	// after the shuffler exits), read by seal for the checkpoint.
	bnd walCounters

	rootMu sync.Mutex
	root   ldp.Aggregator
	// frozen flips at seal: from then on gather returns the cached
	// estimate and never touches root again, so window queries and the
	// all-time merge can read sealed roots without racing a stale
	// Snapshot that still holds this epoch's pointer.
	frozen    bool
	frozenEst []float64
	frozenN   int
}

// shard is one worker's slice of an epoch's aggregate. The mutex is
// held while a batch is folded in and while gather swaps the
// aggregator out.
type shard struct {
	mu  sync.Mutex
	agg ldp.Aggregator
}

func newEpochState(id int, fo ldp.FrequencyOracle, workers int) *epochState {
	e := &epochState{
		id:     id,
		fo:     fo,
		shards: make([]*shard, workers),
		root:   fo.NewAggregator(),
	}
	for i := range e.shards {
		e.shards[i] = &shard{agg: fo.NewAggregator()}
	}
	return e
}

// gather folds every non-empty shard into the epoch root (swapping in
// fresh shard aggregators) and returns the root's running estimate.
// It is the per-epoch form of PR 2's Snapshot swap: a consistent
// prefix of the epoch's stream at the cost of a pointer swap per
// shard, never a recompute. On a sealed (frozen) epoch it returns a
// copy of the frozen estimate instead — a Snapshot that loaded the
// epoch pointer just before a Rotate sealed it must never mutate, or
// half-observe, the sealed root.
func (e *epochState) gather() ([]float64, int) {
	e.rootMu.Lock()
	defer e.rootMu.Unlock()
	if e.frozen {
		return append([]float64(nil), e.frozenEst...), e.frozenN
	}
	e.fold()
	return e.root.Estimates(), e.root.Count()
}

// fold drains every non-empty shard into the root. Callers hold
// rootMu.
func (e *epochState) fold() {
	for _, sh := range e.shards {
		sh.mu.Lock()
		if sh.agg.Count() > 0 {
			full := sh.agg
			sh.agg = e.fo.NewAggregator()
			e.root.Merge(full)
		}
		sh.mu.Unlock()
	}
}

// freeze folds the shards one final time, caches the estimate, and
// marks the epoch sealed: from here on the root is immutable (gather
// no-ops into the cache), which is what makes cloning it for the
// all-time merge and the window queries race-free. Idempotent; called
// by seal with every batch already folded (pending waited out).
func (e *epochState) freeze() ([]float64, int) {
	e.rootMu.Lock()
	defer e.rootMu.Unlock()
	if !e.frozen {
		e.fold()
		e.frozenEst = e.root.Estimates()
		e.frozenN = e.root.Count()
		e.frozen = true
	}
	return e.frozenEst, e.frozenN
}

// epochRecord is a sealed epoch in the retained history: the frozen
// snapshot plus the root aggregator window queries clone-merge from.
type epochRecord struct {
	snap EpochSnapshot
	agg  ldp.Aggregator
}

// rotateReq asks the shuffler to swap epochs at a batch boundary.
// next == nil closes the epoch sequence (budget exhausted): the
// shuffler then rejects further reports instead of aggregating them.
type rotateReq struct {
	next *epochState
	done chan *epochState // receives the epoch being sealed
}

// Rotate seals the current epoch and opens the next one: the shuffler
// flushes the epoch's partial batch and switches, every batch already
// routed to the sealed epoch is waited for, the epoch's estimate is
// frozen into History, and its reports join the all-time aggregate.
//
// When a budget ledger is configured, opening the next epoch charges
// it one per-epoch guarantee. If the ledger refuses, the current epoch
// still seals — its collection already happened — but no new epoch
// opens: Rotate returns the sealed snapshot together with an error
// wrapping budget.ErrExhausted, and from then on the service refuses
// ingestion (Ingest errors, frames from connected clients are dropped
// and counted as Snapshot.Rejected).
func (s *Service) Rotate() (EpochSnapshot, error) {
	s.rotateMu.Lock()
	defer s.rotateMu.Unlock()
	if s.stopped() {
		return EpochSnapshot{}, errors.New("service: closed")
	}
	if s.exhausted.Load() {
		return EpochSnapshot{}, fmt.Errorf("service: no epoch open: %w", budget.ErrExhausted)
	}
	cur := s.cur.Load()

	// Charge the next epoch before swapping so an exhausted ledger
	// never opens an epoch it cannot pay for.
	var next *epochState
	var chargeErr error
	if s.cfg.Ledger != nil {
		chargeErr = s.cfg.Ledger.Charge()
		if chargeErr != nil && !errors.Is(chargeErr, budget.ErrExhausted) {
			return EpochSnapshot{}, fmt.Errorf("service: charging epoch %d: %w", cur.id+1, chargeErr)
		}
	}
	if chargeErr == nil {
		next = newEpochState(cur.id+1, s.cfg.FO, s.cfg.Workers)
	}

	req := rotateReq{next: next, done: make(chan *epochState, 1)}
	select {
	case s.rotateCh <- req:
	case <-s.shufflerDone:
		return EpochSnapshot{}, errors.New("service: draining")
	case <-s.stop:
		return EpochSnapshot{}, errors.New("service: closed")
	}
	old := <-req.done
	if next == nil {
		s.exhausted.Store(true)
	}

	// Wait for every batch routed to the sealed epoch to be folded,
	// then freeze it. The charge for the opened epoch (if any) is
	// already in the ledger, which the seal's checkpoint records.
	old.pending.Wait()
	snap := s.seal(old, next != nil)
	if chargeErr != nil {
		return snap, fmt.Errorf("service: epoch %d sealed, next refused: %w", old.id, chargeErr)
	}
	return snap, nil
}

// seal freezes a fully-folded epoch: fold the shards one last time,
// record the snapshot in the retained history, fold a clone of the
// epoch root into the all-time aggregate, and — when the service is
// durable — write the checkpoint that makes the seal survive a crash.
// openCharged says whether the ledger already holds a charge for the
// epoch the seal leaves open (true after a successful rotation charge,
// false for a drain seal and an exhausting rotation); the checkpoint
// records it so recovery knows whether opening that epoch still costs
// a guarantee. Callers hold rotateMu. The freeze happens before the
// root is cloned or shared, so a Snapshot still holding this epoch's
// pointer can only read the frozen cache, never mutate a sealed root
// (the Snapshot/Rotate race TestSnapshotDuringRotate locks in).
func (s *Service) seal(e *epochState, openCharged bool) EpochSnapshot {
	if e.sealed {
		// Drain after an exhausting Rotate: the final epoch is already
		// in the history.
		return s.lastSealed()
	}
	e.sealed = true
	est, n := e.freeze()
	snap := EpochSnapshot{
		Epoch:     e.id,
		Estimates: est,
		Reports:   n,
		Batches:   e.batches.Load(),
	}
	if s.cfg.Ledger != nil {
		snap.Guarantee = s.cfg.Ledger.PerEpoch()
	}
	s.allMu.Lock()
	s.allTime.Merge(e.root.Clone())
	s.allMu.Unlock()

	s.histMu.Lock()
	s.history = append(s.history, epochRecord{snap: snap, agg: e.root})
	if s.cfg.WindowRetain > 0 && len(s.history) > s.cfg.WindowRetain {
		trim := len(s.history) - s.cfg.WindowRetain
		// Drop the aggregator references too: retention is what bounds
		// the tier's memory under sustained traffic.
		s.history = append([]epochRecord(nil), s.history[trim:]...)
	}
	s.histMu.Unlock()

	if s.st != nil {
		if err := s.writeCheckpoint(e, openCharged); err != nil {
			s.fail(fmt.Errorf("service: checkpointing epoch %d seal: %w", e.id, err))
		}
	}
	return snap
}

// writeCheckpoint snapshots the whole durable state after sealing e:
// the retained history roots, the all-time aggregate, the ledger's
// charged count, and the boundary counters the shuffler stamped into
// e at the rotation marker. Callers hold rotateMu, which orders
// checkpoints with rotations and Drain's final seal.
func (s *Service) writeCheckpoint(e *epochState, openCharged bool) error {
	cp := &store.Checkpoint{
		OpenEpoch:   e.id + 1,
		Exhausted:   s.exhausted.Load(),
		OpenCharged: openCharged,
		Received:    e.bnd.received,
		Late:        e.bnd.late,
		Rejected:    e.bnd.rejected,
		Batches:     e.bnd.batches,
	}
	if s.cfg.Ledger != nil {
		cp.LedgerCharged = s.cfg.Ledger.Epochs()
	}
	s.allMu.Lock()
	allTime, err := s.allTime.MarshalBinary()
	s.allMu.Unlock()
	if err != nil {
		return err
	}
	cp.AllTime = allTime
	// Marshal the history under histMu, but run the checkpoint's disk
	// writes (fsync, rename, fsync) outside it: History, EstimateWindow,
	// and Snapshot must not stall behind a slow disk. rotateMu — which
	// every seal holds — is what serializes checkpoint writers.
	s.histMu.Lock()
	for _, rec := range s.history {
		root, err := rec.agg.MarshalBinary()
		if err != nil {
			s.histMu.Unlock()
			return err
		}
		cp.History = append(cp.History, store.EpochCheckpoint{
			Epoch:     rec.snap.Epoch,
			Reports:   rec.snap.Reports,
			Batches:   rec.snap.Batches,
			Guarantee: rec.snap.Guarantee,
			Root:      root,
		})
	}
	s.histMu.Unlock()
	return s.st.WriteCheckpoint(cp)
}

// lastSealed returns the most recent history snapshot (zero value if
// none).
func (s *Service) lastSealed() EpochSnapshot {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	if len(s.history) == 0 {
		return EpochSnapshot{}
	}
	return s.history[len(s.history)-1].snap
}

// Epoch returns the id of the epoch currently open (the id of the last
// epoch once the budget is exhausted).
func (s *Service) Epoch() int { return s.cur.Load().id }

// Exhausted reports whether the budget ledger has refused to open
// another epoch; an exhausted service rejects ingestion but stays
// queryable.
func (s *Service) Exhausted() bool { return s.exhausted.Load() }

// History returns the retained sealed-epoch snapshots, oldest first.
func (s *Service) History() []EpochSnapshot {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	out := make([]EpochSnapshot, len(s.history))
	for i, r := range s.history {
		out[i] = r.snap
	}
	return out
}

// EstimateWindow merges the last k sealed epochs into one estimate
// using the oracle Merge machinery over clones of the sealed roots, so
// the result is bit-identical to aggregating the window's report
// multiset sequentially — and the sealed epochs themselves are
// untouched and can be window-queried again. k <= 0 means every
// retained epoch; k larger than the retained history is an error.
func (s *Service) EstimateWindow(k int) (WindowSnapshot, error) {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	if len(s.history) == 0 {
		return WindowSnapshot{}, errors.New("service: no sealed epochs to window over")
	}
	if k > len(s.history) {
		return WindowSnapshot{}, fmt.Errorf("service: window of %d epochs, only %d sealed epochs retained", k, len(s.history))
	}
	if k <= 0 {
		k = len(s.history)
	}
	recs := s.history[len(s.history)-k:]
	agg := recs[0].agg.Clone()
	for _, r := range recs[1:] {
		agg.Merge(r.agg.Clone())
	}
	return WindowSnapshot{
		FromEpoch: recs[0].snap.Epoch,
		ToEpoch:   recs[len(recs)-1].snap.Epoch,
		Epochs:    k,
		Estimates: agg.Estimates(),
		Reports:   agg.Count(),
	}, nil
}

// runRotator turns the shuffler's report-count hints into rotations
// when Config.EpochReports is set. A hint can outlive the epoch that
// generated it (a manual Rotate may land in between), so the rotator
// re-checks the open epoch's accepted count before cutting — a stale
// hint must not seal a near-empty epoch and burn one of the ledger's
// finite per-epoch charges. Skipping is safe: every epoch fires its
// own hint when its count crosses the threshold. Rotation errors are
// deliberately not fatal here: an exhausted ledger flips the service
// into its rejected-ingestion state, which Ingest and Snapshot
// surface.
func (s *Service) runRotator() {
	defer s.rotatorWG.Done()
	for {
		select {
		case <-s.rotateHint:
			if s.cur.Load().accepted.Load() >= int64(s.cfg.EpochReports) {
				_, _ = s.Rotate()
			}
		case <-s.drainStart:
			return
		case <-s.stop:
			return
		}
	}
}

// shufflerEpochRNG returns the shuffle permutation stream for one
// epoch: a fresh substream per epoch id, so an epoch's batch
// permutations are a pure function of (ShuffleSeed, epoch) no matter
// how much shuffling earlier epochs consumed.
func (s *Service) shufflerEpochRNG(epoch int) *rng.Rand {
	return rng.Substream(s.cfg.ShuffleSeed, uint64(epoch))
}
